(* Shared cmdliner terms for the command-line tools. *)

open Cmdliner

let clip_arg =
  let doc =
    "Workload clip name. One of: " ^ String.concat ", " Video.Workloads.names ^ "."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "clip" ] ~docv:"CLIP" ~doc)

let device_arg =
  let doc =
    "Target device. One of: "
    ^ String.concat ", " (List.map (fun d -> d.Display.Device.name) Display.Device.all)
    ^ "."
  in
  Arg.(
    value
    & opt string "ipaq_h5555"
    & info [ "d"; "device" ] ~docv:"DEVICE" ~doc)

let device_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "device-file" ] ~docv:"FILE"
        ~doc:
          "Load the target device from a key = value profile (see \
           Display.Device_config); overrides $(b,--device).")

let quality_arg =
  let doc = "Quality level: allowed percentage of clipped bright pixels (0-100)." in
  Arg.(value & opt float 10. & info [ "q"; "quality" ] ~docv:"PERCENT" ~doc)

let width_arg =
  Arg.(value & opt int 160 & info [ "width" ] ~docv:"PX" ~doc:"Frame width.")

let height_arg =
  Arg.(value & opt int 120 & info [ "height" ] ~docv:"PX" ~doc:"Frame height.")

let fps_arg =
  Arg.(value & opt float 12. & info [ "fps" ] ~docv:"FPS" ~doc:"Frame rate.")

let resolve_clip name ~width ~height ~fps =
  match Video.Workloads.find name with
  | Some profile -> Ok (Video.Clip_gen.render ~width ~height ~fps profile)
  | None ->
    Error
      (Printf.sprintf "unknown clip %S (try one of: %s)" name
         (String.concat ", " Video.Workloads.names))

let resolve_device name =
  match Display.Device.find name with
  | Some d -> Ok d
  | None ->
    Error
      (Printf.sprintf "unknown device %S (try one of: %s)" name
         (String.concat ", "
            (List.map (fun d -> d.Display.Device.name) Display.Device.all)))

let resolve_device_with_file ~file name =
  match file with
  | Some path -> Display.Device_config.load ~path
  | None -> resolve_device name

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

let loss_model_arg =
  Arg.(
    value
    & opt (some (enum [ ("bernoulli", `Bernoulli); ("gilbert", `Gilbert) ])) None
    & info [ "loss-model" ] ~docv:"MODEL"
        ~doc:
          "Inject packet loss on the wireless hop: $(b,bernoulli) (i.i.d.) or \
           $(b,gilbert) (Gilbert-Elliott burst loss). Mean rate comes from \
           $(b,--loss), burst length from $(b,--burst).")

let loss_rate_arg =
  Arg.(
    value & opt float 0.05
    & info [ "loss" ] ~docv:"RATE"
        ~doc:"Mean loss rate in [0, 1] for $(b,--loss-model).")

let burst_arg =
  Arg.(
    value & opt float 4.
    & info [ "burst" ] ~docv:"PACKETS"
        ~doc:"Mean burst length for $(b,--loss-model) gilbert.")

let fault_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-profile" ] ~docv:"FILE"
        ~doc:
          "Load a fault profile (key = value lines: loss model, corruption, \
           reorder, jitter, bandwidth collapse — see examples/*.fault). \
           Overrides $(b,--loss-model).")

(* The fault model the flags describe, if any. *)
let resolve_fault ~loss_model ~loss ~burst ~fault_profile =
  match fault_profile with
  | Some path -> (
    match Streaming.Fault.load ~path with
    | Ok f -> Some f
    | Error msg ->
      prerr_endline ("error: " ^ path ^ ": " ^ msg);
      exit 1)
  | None -> (
    match loss_model with
    | None -> None
    | Some model -> (
      try
        match model with
        | `Bernoulli -> Some (Streaming.Fault.bernoulli ~rate:loss)
        | `Gilbert ->
          Some (Streaming.Fault.gilbert ~mean_loss:loss ~burst_length:burst ())
      with Invalid_argument msg ->
        prerr_endline ("error: " ^ msg);
        exit 1))

let resilience_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resilience" ] ~docv:"PROFILE"
        ~doc:
          "Load a resilience profile (key = value lines: retry schedule, \
           circuit breaker, bulkhead, degradation ladder, stage deadline — \
           see examples/*.resilience). Only takes effect on the faulty path \
           ($(b,--fault-profile) / $(b,--loss-model)); without it every run \
           is byte-identical to one without this flag. Audit a profile \
           offline with $(b,lint verify).")

(* The resilience profile the flag names, if any. A no-op profile is
   accepted (the verifier's V505 warns about it); a malformed one is
   fatal, same as a malformed fault profile. *)
let resolve_resilience = function
  | None -> None
  | Some path -> (
    match Resilience.Profile.load ~path with
    | Ok p -> Some p
    | Error msg ->
      prerr_endline ("error: " ^ path ^ ": " ^ msg);
      exit 1)

(* The session-config additions a resilience profile implies for an
   end-to-end faulty run: the profile itself, plus — when its ladder
   offers the stale rung — a stale annotation track prepared the way
   an earlier session would have: the same clip through a server at
   the most conservative quality (0 %), server-side mapping, the
   profile's bulkhead guarding the build. Deterministic: one prepare,
   one cache entry, same bytes every run. *)
let session_resilience ~device clip = function
  | None -> (None, None)
  | Some (p : Resilience.Profile.t) ->
    let wants_stale =
      match p.Resilience.Profile.ladder with
      | [] -> true
      | rungs -> List.mem Resilience.Degrade.Stale_cache rungs
    in
    let stale =
      if not wants_stale then None
      else begin
        let server = Streaming.Server.create () in
        Streaming.Server.add_clip server clip;
        let bulkhead =
          Option.map
            (fun cfg ->
              Resilience.Bulkhead.create ~config:cfg ~name:"prepare" ())
            p.Resilience.Profile.bulkhead
        in
        match
          Streaming.Negotiation.negotiate
            {
              Streaming.Negotiation.device;
              requested_quality = Annotation.Quality_level.of_percent 0.;
            }
        with
        | Error _ -> None
        | Ok session -> (
          match
            Streaming.Server.prepare ?bulkhead server
              ~name:clip.Video.Clip.name ~session
          with
          | Ok prep -> Some prep.Streaming.Server.track
          | Error _ -> None)
      end
    in
    (Some p, stale)

let jobs_arg =
  Arg.(
    value
    & opt int (Par.Pool.env_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Spread the profiling pass over $(docv) domains. Output is \
           byte-identical at any $(docv); only wall clock changes. Defaults \
           to $(b,PAR_JOBS) from the environment, else 1.")

(* [with_jobs jobs f] hands [f] a pool of [jobs] domains (or [None]
   for a sequential run) and tears the pool down afterwards. The
   count is normalized, not validated: 0, negative and oversized
   requests clamp (Par.Pool.normalize_jobs) instead of erroring,
   because the domain count is a performance knob that never changes
   results. *)
let with_jobs jobs f =
  let jobs = Par.Pool.normalize_jobs jobs in
  if jobs = 1 then f None
  else Par.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

let obs_arg =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Enable the observability layer: collect pipeline metrics and spans \
           and print a summary on exit.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's span tree as Chrome trace_event JSON to $(docv) \
           (open with chrome://tracing). Implies $(b,--obs).")

let monitor_arg =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Enable health monitoring: sliding-window SLO evaluation and \
           quantile sketches on every histogram. Prints a health report on \
           exit and exits with status 3 when an objective is breached. \
           Implies $(b,--obs).")

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"FILE"
        ~doc:
          "Load SLO rules from $(docv) (one `metric op threshold` per line, \
           see examples/default.slo) instead of the built-in defaults. \
           Implies $(b,--monitor).")

let energy_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "energy-profile" ] ~docv:"FILE"
        ~doc:
          "Attribute simulated joules per stage/scene/component with the \
           energy profiler and write a collapsed-stack energy flame graph \
           (integer microjoules) to $(docv); feed it to flamegraph.pl or \
           speedscope. Adds a per-component summary to the obs output and a \
           counter track to $(b,--trace-out). Implies $(b,--obs).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Record every pipeline decision (scene backlight choices, channel \
           losses, NACK rounds, degradations, DVFS picks, SLO breaches) into \
           a CRC-framed binary journal at $(docv). Read it back with \
           $(b,inspect), audit it offline with $(b,lint verify). Implies \
           $(b,--obs).")

let log_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-out" ] ~docv:"FILE"
        ~doc:
          "Attach a JSONL sink to the structured logger: every log event \
           becomes one JSON object per line in $(docv), flushed as written. \
           Implies $(b,--obs).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the final registry snapshot as OpenMetrics/Prometheus text \
           (quantile summaries and trace critical path included) to $(docv). \
           Implies $(b,--monitor).")

(* Run [f] (returning an exit code) with observability / monitoring
   switched on as requested. The obs summary and trace file go to
   stderr so the tools' stdout stays script-friendly; the health
   report is the monitoring deliverable and goes to stdout. An SLO
   breach turns a successful exit into code 3. *)
let with_instrumentation ?(default_quality = 0.10) ?(energy_profile = None)
    ?(journal = None) ?(log_out = None) ~obs ~trace_out ~monitor ~slo
    ~metrics_out f =
  let monitoring = monitor || slo <> None || metrics_out <> None in
  let enabled =
    obs || trace_out <> None || energy_profile <> None || journal <> None
    || log_out <> None || monitoring
  in
  if not enabled then f ()
  else begin
    Obs.enable ();
    let log_sink =
      match log_out with
      | None -> None
      | Some path -> Some (Obs.Log.attach_jsonl ~path)
    in
    let recorder =
      match journal with
      | None -> None
      | Some _ ->
        let j = Obs.Journal.create () in
        Obs.Journal.install j;
        Some j
    in
    let profiler =
      match energy_profile with
      | None -> None
      | Some _ ->
        let p = Obs.Profile.create () in
        Obs.Profile.install p;
        Some p
    in
    let mon =
      if not monitoring then None
      else begin
        let rules =
          match slo with
          | None -> Obs.Slo.defaults ~quality:default_quality
          | Some path -> (
            match Obs.Slo.load ~path with
            | Ok rules -> rules
            | Error msg ->
              prerr_endline ("error: " ^ path ^ ": " ^ msg);
              exit 1)
        in
        let m = Obs.Monitor.create ~rules () in
        Obs.Monitor.install m;
        Some m
      end
    in
    let code =
      Fun.protect f ~finally:(fun () ->
          (* The trace is written while the profiler is still
             installed so its counter track rides along. *)
          (match trace_out with
          | None -> ()
          | Some path -> (
            try
              Obs.write_chrome_trace ~path;
              Printf.eprintf "obs: wrote %s\n%!" path
            with Sys_error msg ->
              Printf.eprintf "obs: cannot write trace: %s\n%!" msg));
          (match (energy_profile, profiler) with
          | Some path, Some p ->
            (try
               Obs.write_file ~path (Obs.Profile.flamegraph p);
               Printf.eprintf "obs: wrote %s\n%!" path
             with Sys_error msg ->
               Printf.eprintf "obs: cannot write energy profile: %s\n%!" msg);
            Format.eprintf "%a@." Obs.Profile.pp_summary p;
            Obs.Profile.uninstall ()
          | _ -> ());
          if obs || trace_out <> None then Format.eprintf "%a@." Obs.pp_summary ())
    in
    let code =
      match mon with
      | None -> code
      | Some m ->
        let report = Obs.Monitor.report m in
        Format.printf "%a@." Obs.Monitor.pp_report report;
        (match metrics_out with
        | None -> ()
        | Some path -> (
          match Obs.Openmetrics.write_file ~path (Obs.Openmetrics.of_registry ()) with
          | Ok () -> Printf.eprintf "obs: wrote %s\n%!" path
          | Error msg -> Printf.eprintf "obs: cannot write metrics: %s\n%!" msg));
        Obs.Monitor.uninstall ();
        if code <> 0 then code else if Obs.Monitor.healthy report then 0 else 3
    in
    (* The journal is sealed last: the monitor's final window closes
       inside [Obs.Monitor.report] above, and the Slo_breach events it
       emits belong in the file. *)
    (match (journal, recorder) with
    | Some path, Some j ->
      Obs.Journal.uninstall ();
      (try
         Obs.Journal.write j ~path;
         Printf.eprintf "obs: wrote %s (%d events, %d bytes)\n%!" path
           (Obs.Journal.length j) (Obs.Journal.size_bytes j)
       with Sys_error msg ->
         Printf.eprintf "obs: cannot write journal: %s\n%!" msg)
    | _ -> ());
    (match log_sink with None -> () | Some id -> Obs.Log.detach id);
    code
  end
