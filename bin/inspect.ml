(* inspect: read decision journals back — timeline, run diff, breach
   explanation. The journal is written by any tool's --journal flag;
   this is the operator's side of the flight recorder. *)

open Cmdliner

let journal_pos ~docv ~doc n =
  Arg.(required & pos n (some string) None & info [] ~docv ~doc)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

(* Decode for reading back: never raises, never refuses a partially
   damaged file — [lint verify] is the strict gate; inspect's job is
   to salvage whatever story the intact frames still tell. *)
let load_events ~label path =
  match read_file path with
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" label msg;
    None
  | Ok data ->
    let partial = Obs.Journal.decode_partial data in
    (match partial.Obs.Journal.error with
    | Some msg ->
      Printf.eprintf "error: %s: %s\n" label msg;
      None
    | None ->
      if partial.Obs.Journal.corrupt_frames > 0 then
        Printf.eprintf
          "warning: %s: skipped %d corrupt frame(s); timeline is partial\n"
          label partial.Obs.Journal.corrupt_frames;
      if partial.Obs.Journal.truncated then
        Printf.eprintf
          "warning: %s: journal is truncated; timeline stops early\n" label;
      Some partial.Obs.Journal.events)

(* Surface the offline verifier's findings alongside the readback, so
   a damaged journal shows *why* its timeline is partial. *)
let print_verifier_findings path =
  match Check.Artifact.check_file path with
  | [] -> ()
  | diags ->
    List.iter (Format.eprintf "%a@." Check.Diagnostic.pp) diags

let energy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "energy" ] ~docv:"FILE"
        ~doc:
          "Join per-scene energy context from a collapsed-stack energy flame \
           graph (the $(b,--energy-profile) output of the same run).")

let timeline journal energy =
  print_verifier_findings journal;
  match load_events ~label:journal journal with
  | None -> 2
  | Some events ->
    let scene_energy_uj =
      match energy with
      | None -> []
      | Some path -> (
        match read_file path with
        | Ok text -> Obs.Explain.scene_energy_of_folded text
        | Error msg ->
          Printf.eprintf "warning: %s: %s; skipping energy join\n" path msg;
          [])
    in
    Format.printf "%a@." (Obs.Explain.pp_timeline ~scene_energy_uj) events;
    0

let timeline_cmd =
  let doc = "render a journal as a per-session decision timeline" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Decodes a decision journal and prints every recorded event in \
         order, grouped by session: scene backlight decisions (with the \
         candidate registers across the quality grid), channel passes, NACK \
         rounds, FEC outcomes, degradations, DVFS picks, scene cuts, \
         deadline misses, backlight switches and SLO breaches.";
      `P
        "With $(b,--energy), scene-decision lines are joined with the \
         microjoules the energy profiler attributed to each scene. A \
         corrupt or truncated journal yields a partial timeline plus the \
         offline verifier's V4xx findings on stderr; only an unreadable \
         header fails the command.";
    ]
  in
  Cmd.v
    (Cmd.info "timeline" ~doc ~man)
    Term.(
      const timeline
      $ journal_pos ~docv:"JOURNAL" ~doc:"Journal file to render." 0
      $ energy_arg)

let diff a b =
  match (load_events ~label:a a, load_events ~label:b b) with
  | None, _ | _, None -> 2
  | Some left, Some right -> (
    let d = Obs.Explain.diff left right in
    Format.printf "%a@." Obs.Explain.pp_diff d;
    match d with None -> 0 | Some _ -> 1)

let diff_cmd =
  let doc = "localise the first divergent decision between two journals" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Aligns two journals event for event. The whole pipeline is a pure \
         function of its inputs, so two runs of the same configuration \
         produce byte-identical journals; the first mismatching event \
         between two runs that differ (a changed seed, a different fault \
         profile, a new code path) is the first decision the change \
         actually altered — everything before it is provably common.";
      `P
        "Prints the divergent event on each side plus a kind histogram of \
         each causal suffix. Exits 0 when the journals are identical, 1 on \
         divergence, 2 when either file is unreadable.";
    ]
  in
  Cmd.v
    (Cmd.info "diff" ~doc ~man)
    Term.(
      const diff
      $ journal_pos ~docv:"JOURNAL_A" ~doc:"Left journal." 0
      $ journal_pos ~docv:"JOURNAL_B" ~doc:"Right journal." 1)

let slo_filter_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"FILE"
        ~doc:
          "Only explain breaches of the rules in $(docv) (same format the \
           $(b,--slo) run flag takes); default: every breach in the \
           journal.")

let explain journal slo =
  match load_events ~label:journal journal with
  | None -> 2
  | Some events ->
    let rules =
      match slo with
      | None -> None
      | Some path -> (
        match Obs.Slo.load ~path with
        | Ok rules -> Some (List.map (fun r -> r.Obs.Slo.source) rules)
        | Error msg ->
          Printf.eprintf "error: %s: %s\n" path msg;
          exit 2)
    in
    Format.printf "%a@."
      Obs.Explain.pp_explain
      (Obs.Explain.explain ?rules events);
    0

let explain_cmd =
  let doc = "walk back from each SLO breach to its likely causes" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For every SLO breach the monitor recorded into the journal, lists \
         the playback decisions that fell inside the breached window and \
         the session-scope decisions (channel losses, NACK rounds, \
         degradations, DVFS picks) that preceded it, and ranks likely \
         causes — in-window coincidence counts double against session-wide \
         context.";
    ]
  in
  Cmd.v
    (Cmd.info "explain" ~doc ~man)
    Term.(
      const explain
      $ journal_pos ~docv:"JOURNAL" ~doc:"Journal file to explain." 0
      $ slo_filter_arg)

let cmd =
  let doc = "read decision journals back: timeline, diff, explanation" in
  Cmd.group (Cmd.info "inspect" ~doc) [ timeline_cmd; diff_cmd; explain_cmd ]

let () = exit (Cmd.eval' cmd)
