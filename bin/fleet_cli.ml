(* fleet: drive thousands of interleaved streaming sessions through
   the deterministic shard scheduler and report fleet-level health. *)

open Cmdliner

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N"
        ~doc:"Number of consistent-hash shards fronting the prepared cache.")

let vnodes_arg =
  Arg.(
    value & opt int 64
    & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per shard on the ring.")

let capacity_arg =
  Arg.(
    value & opt int 64
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Concurrent sessions admitted per shard.")

let queue_limit_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:"Waiting-room depth per shard before arrivals are shed.")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:
          "Load profile (key = value lines: arrival model, session count, \
           rate, Zipf skew, diurnal swing, flash-crowd spike — see \
           examples/*.load). Defaults to an open loop of 1000 sessions at \
           100/s.")

let sessions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sessions" ] ~docv:"N"
        ~doc:"Override the profile's session count.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Override the profile's seed.")

let journal_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write the fleet decision journal (every shard's arrivals, \
           admission verdicts and session outcomes, concatenated in shard \
           order) to $(docv). Audit it offline with $(b,lint verify).")

let monitor_arg =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Print the fleet-wide SLO rollup and exit with status 3 when an \
           objective is breached.")

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"FILE"
        ~doc:
          "Evaluate the rollup against the rules in $(docv) (one `metric op \
           threshold` per line) instead of the fleet defaults. Implies \
           $(b,--monitor).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Also print the per-shard breakdown.")

let fleet_width_arg =
  Arg.(value & opt int 32 & info [ "width" ] ~docv:"PX" ~doc:"Catalog frame width.")

let fleet_height_arg =
  Arg.(
    value & opt int 24 & info [ "height" ] ~docv:"PX" ~doc:"Catalog frame height.")

let fleet_fps_arg =
  Arg.(value & opt float 8. & info [ "fps" ] ~docv:"FPS" ~doc:"Catalog frame rate.")

let run shards vnodes capacity queue_limit load_file sessions seed device_name
    device_file quality width height fps loss_model loss burst fault_profile
    journal_out monitor slo verbose jobs =
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  let load =
    match load_file with
    | None -> Fleet.Load.default
    | Some path -> (
      match Fleet.Load.load ~path with
      | Ok l -> l
      | Error msg ->
        prerr_endline ("error: " ^ path ^ ": " ^ msg);
        exit 1)
  in
  let load =
    match sessions with
    | None -> load
    | Some n ->
      if n < 1 then begin
        prerr_endline "error: --sessions must be at least 1";
        exit 1
      end;
      { load with Fleet.Load.sessions = n }
  in
  let load =
    match seed with None -> load | Some s -> { load with Fleet.Load.seed = s }
  in
  let rules =
    match slo with
    | None -> Fleet.Scheduler.default_rules ()
    | Some path -> (
      match Obs.Slo.load ~path with
      | Ok rules -> rules
      | Error msg ->
        prerr_endline ("error: " ^ path ^ ": " ^ msg);
        exit 1)
  in
  let config = { Fleet.Scheduler.shards; vnodes; capacity; queue_limit; rules } in
  let fault = Common.resolve_fault ~loss_model ~loss ~burst ~fault_profile in
  let session_config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.quality = Annotation.Quality_level.of_percent quality;
      fault;
    }
  in
  (* The whole catalog, rendered small: fleet throughput comes from
     interleaving many sessions, not from large frames. *)
  let clips =
    Array.of_list
      (List.map
         (fun name ->
           Common.or_die (Common.resolve_clip name ~width ~height ~fps))
         Video.Workloads.names)
  in
  let report =
    try
      Common.with_jobs jobs (fun pool ->
          Fleet.Scheduler.run ?pool config ~session_config ~clips ~load)
    with Invalid_argument msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
  in
  Format.printf "%a@." Fleet.Scheduler.pp_report
    (if verbose then report
     else { report with Fleet.Scheduler.shard_reports = [||] });
  (match journal_out with
  | None -> ()
  | Some path -> (
    let bytes = Fleet.Scheduler.journal report in
    try
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
      Printf.eprintf "fleet: wrote %s (%d events, %d bytes)\n%!" path
        (List.length report.Fleet.Scheduler.journal_events)
        (String.length bytes)
    with Sys_error msg ->
      prerr_endline ("error: cannot write journal: " ^ msg);
      exit 1));
  if monitor || slo <> None then begin
    Format.printf "%a@." Obs.Monitor.pp_report report.Fleet.Scheduler.monitor;
    if Obs.Monitor.healthy report.Fleet.Scheduler.monitor then 0 else 3
  end
  else 0

let cmd =
  let doc = "run a fleet of streaming sessions through the shard scheduler" in
  Cmd.v
    (Cmd.info "fleet" ~doc)
    Term.(
      const run $ shards_arg $ vnodes_arg $ capacity_arg $ queue_limit_arg
      $ load_arg $ sessions_arg $ seed_arg $ Common.device_arg
      $ Common.device_file_arg $ Common.quality_arg $ fleet_width_arg
      $ fleet_height_arg $ fleet_fps_arg $ Common.loss_model_arg
      $ Common.loss_rate_arg $ Common.burst_arg $ Common.fault_profile_arg
      $ journal_out_arg $ monitor_arg $ slo_arg $ verbose_arg $ Common.jobs_arg)

let () = exit (Cmd.eval' cmd)
