(* annotate: profile a clip and emit its backlight annotation track —
   what the paper's server runs offline. *)

open Cmdliner

let per_frame_arg =
  Arg.(
    value & flag
    & info [ "per-frame" ]
        ~doc:"Annotate every frame instead of detected scenes (more savings, more flicker).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the binary annotation track to $(docv).")

let run clip_name device_name device_file quality_percent per_frame output width height fps obs trace_out monitor slo metrics_out =
  Common.with_instrumentation ~default_quality:(quality_percent /. 100.) ~obs
    ~trace_out ~monitor ~slo ~metrics_out
  @@ fun () ->
  let clip =
    Common.or_die (Common.resolve_clip clip_name ~width ~height ~fps)
  in
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  let quality = Annot.Quality_level.of_percent quality_percent in
  let scene_params =
    if per_frame then Annot.Scene_detect.per_frame_params
    else Annot.Scene_detect.default_params
  in
  let track = Annot.Annotator.annotate ~scene_params ~device ~quality clip in
  let encoded = Annot.Encoding.encode track in
  Printf.printf "clip      : %s (%d frames, %.1f s at %.1f fps, %dx%d)\n"
    clip.Video.Clip.name clip.Video.Clip.frame_count
    (Video.Clip.duration_seconds clip) fps width height;
  Printf.printf "device    : %s\n" device.Display.Device.name;
  Printf.printf "quality   : %s clipped-pixel budget\n" (Annot.Quality_level.label quality);
  Printf.printf "scenes    : %d entries, %d backlight switches\n"
    (Annot.Track.entry_count track)
    (Annot.Track.switch_count track);
  Printf.printf "wire size : %d bytes (RLE varint encoding)\n" (String.length encoded);
  Printf.printf "\n%-8s %-8s %-10s %-10s %s\n" "first" "frames" "register" "eff.max"
    "compensation";
  print_endline (String.make 50 '-');
  Array.iter
    (fun (e : Annot.Track.entry) ->
      Printf.printf "%-8d %-8d %-10d %-10d x%.2f\n" e.Annot.Track.first_frame
        e.Annot.Track.frame_count e.Annot.Track.register e.Annot.Track.effective_max
        e.Annot.Track.compensation)
    (Annot.Track.merge_runs track).Annot.Track.entries;
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    output_string oc encoded;
    close_out oc;
    Printf.printf "\nwrote %s\n" path);
  0

let cmd =
  let doc = "profile a video clip and compute its backlight annotations" in
  Cmd.v
    (Cmd.info "annotate" ~doc)
    Term.(
      const run $ Common.clip_arg $ Common.device_arg $ Common.device_file_arg
      $ Common.quality_arg $ per_frame_arg $ output_arg $ Common.width_arg
      $ Common.height_arg $ Common.fps_arg $ Common.obs_arg
      $ Common.trace_out_arg $ Common.monitor_arg $ Common.slo_arg
      $ Common.metrics_out_arg)

let () = exit (Cmd.eval' cmd)
