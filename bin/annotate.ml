(* annotate: profile a clip and emit its backlight annotation track —
   what the paper's server runs offline. *)

open Cmdliner

let per_frame_arg =
  Arg.(
    value & flag
    & info [ "per-frame" ]
        ~doc:"Annotate every frame instead of detected scenes (more savings, more flicker).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the binary annotation track to $(docv).")

(* Simulate the annotation track's own trip over a faulty side
   channel: FEC, the NACK loop, then a partial decode — the server-side
   view of what the client will actually be able to use. *)
let simulate_side_channel ~fault ~resilience encoded =
  let protected_ = Streaming.Fec.protect ~packet_size:24 ~group_size:3 encoded in
  let arrival = Streaming.Fault.apply fault ~seed:1 protected_.Streaming.Fec.packets in
  let policy =
    Option.bind resilience (fun p -> p.Resilience.Profile.retry)
  in
  let breaker =
    match resilience with
    | Some { Resilience.Profile.breaker = Some bc; _ } ->
      Some (Resilience.Breaker.create ~config:bc ~name:"nack" ())
    | _ -> None
  in
  let arrival, nack =
    Streaming.Transport.nack_retransmit ?policy ?breaker ~fault
      ~link:Streaming.Netsim.wlan_80211b
      ~budget_s:0.04 ~seed:32 ~packets:protected_.Streaming.Fec.packets arrival
  in
  let recovery = Streaming.Fec.recover_detail protected_ ~present:arrival in
  Format.printf "@.side channel under %a:@." Streaming.Fault.pp fault;
  Printf.printf "  %d packets shipped, %d retransmitted over %d NACK rounds\n"
    (Array.length protected_.Streaming.Fec.packets)
    nack.Streaming.Transport.packets_retransmitted
    nack.Streaming.Transport.nack_rounds;
  (match breaker with
  | None -> ()
  | Some b ->
    Printf.printf "  breaker: %s (%d transition(s), failure rate %.1f%%)\n"
      (Resilience.Breaker.state_label (Resilience.Breaker.state b))
      (List.length (Resilience.Breaker.transitions b))
      (float_of_int (Resilience.Breaker.failure_permille b) /. 10.));
  match
    Annotation.Encoding.decode_partial ~byte_ok:recovery.Streaming.Fec.byte_ok
      recovery.Streaming.Fec.payload
  with
  | Error msg ->
    Printf.printf "  track unusable (%s): client plays full backlight\n" msg
  | Ok partial ->
    let intact =
      Array.fold_left
        (fun acc e -> if e = None then acc else acc + 1)
        0 partial.Annotation.Encoding.entries
    in
    Printf.printf "  records: %d intact, %d missing, %d corrupt of %d\n" intact
      partial.Annotation.Encoding.missing_records
      partial.Annotation.Encoding.corrupt_records
      (Array.length partial.Annotation.Encoding.entries)

let run clip_name device_name device_file quality_percent per_frame output width height fps fault_profile resilience_file jobs obs trace_out energy_profile journal log_out monitor slo metrics_out =
  Common.with_instrumentation ~default_quality:(quality_percent /. 100.)
    ~energy_profile ~journal ~log_out ~obs ~trace_out ~monitor ~slo ~metrics_out
  @@ fun () ->
  Common.with_jobs jobs
  @@ fun pool ->
  let clip =
    Common.or_die (Common.resolve_clip clip_name ~width ~height ~fps)
  in
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  let quality = Annotation.Quality_level.of_percent quality_percent in
  let scene_params =
    if per_frame then Annotation.Scene_detect.per_frame_params
    else Annotation.Scene_detect.default_params
  in
  let track =
    Annotation.Annotator.annotate ~scene_params ?pool ~device ~quality clip
  in
  let encoded = Annotation.Encoding.encode track in
  Printf.printf "clip      : %s (%d frames, %.1f s at %.1f fps, %dx%d)\n"
    clip.Video.Clip.name clip.Video.Clip.frame_count
    (Video.Clip.duration_seconds clip) fps width height;
  Printf.printf "device    : %s\n" device.Display.Device.name;
  Printf.printf "quality   : %s clipped-pixel budget\n" (Annotation.Quality_level.label quality);
  Printf.printf "scenes    : %d entries, %d backlight switches\n"
    (Annotation.Track.entry_count track)
    (Annotation.Track.switch_count track);
  Printf.printf "wire size : %d bytes (v2: varint header + CRC32 records)\n"
    (String.length encoded);
  Printf.printf "\n%-8s %-8s %-10s %-10s %s\n" "first" "frames" "register" "eff.max"
    "compensation";
  print_endline (String.make 50 '-');
  Array.iter
    (fun (e : Annotation.Track.entry) ->
      Printf.printf "%-8d %-8d %-10d %-10d x%.2f\n" e.Annotation.Track.first_frame
        e.Annotation.Track.frame_count e.Annotation.Track.register e.Annotation.Track.effective_max
        e.Annotation.Track.compensation)
    (Annotation.Track.merge_runs track).Annotation.Track.entries;
  let resilience = Common.resolve_resilience resilience_file in
  (match
     Common.resolve_fault ~loss_model:None ~loss:0. ~burst:1. ~fault_profile
   with
  | None -> ()
  | Some fault -> simulate_side_channel ~fault ~resilience encoded);
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    output_string oc encoded;
    close_out oc;
    Printf.printf "\nwrote %s\n" path);
  0

let cmd =
  let doc = "profile a video clip and compute its backlight annotations" in
  Cmd.v
    (Cmd.info "annotate" ~doc)
    Term.(
      const run $ Common.clip_arg $ Common.device_arg $ Common.device_file_arg
      $ Common.quality_arg $ per_frame_arg $ output_arg $ Common.width_arg
      $ Common.height_arg $ Common.fps_arg $ Common.fault_profile_arg
      $ Common.resilience_arg $ Common.jobs_arg $ Common.obs_arg
      $ Common.trace_out_arg $ Common.energy_profile_arg $ Common.journal_arg
      $ Common.log_out_arg $ Common.monitor_arg
      $ Common.slo_arg $ Common.metrics_out_arg)

let () = exit (Cmd.eval' cmd)
