(* playback: simulate annotated playback on a device and report the
   power savings and quality verdicts — the client side of the paper's
   measurements. *)

open Cmdliner

let camera_arg =
  Arg.(
    value & flag
    & info [ "camera" ]
        ~doc:"Also validate quality with camera snapshots on sampled frames (Fig 2).")

let dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~docv:"PREFIX"
        ~doc:
          "Write the Fig-4 artefact pair for the dimmest contentful scene: \
           $(docv)-reference.ppm (original frame photographed at full \
           backlight) and $(docv)-compensated.ppm (compensated frame at the \
           annotated register).")

let ramp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "ramp" ] ~docv:"STEP"
        ~doc:
          "Slew-limit backlight dimming to $(docv) register counts per frame \
           (brightening stays immediate).")

let dump_snapshots ~device ~clip ~track prefix =
  (* The dimmest scene that still shows content, as in the bench's
     Fig 4 selection. *)
  let frame_index =
    let best = ref 0 and best_reg = ref 256 in
    Array.iter
      (fun (e : Annotation.Track.entry) ->
        if e.Annotation.Track.register < !best_reg && e.Annotation.Track.effective_max >= 80
        then begin
          best_reg := e.Annotation.Track.register;
          best := e.Annotation.Track.first_frame + (e.Annotation.Track.frame_count / 2)
        end)
      track.Annotation.Track.entries;
    !best
  in
  let original = clip.Video.Clip.render frame_index in
  let entry = Annotation.Track.lookup track frame_index in
  let compensated = Annotation.Compensate.frame track frame_index original in
  let rig = Camera.Snapshot.default_rig device in
  let reference_snap =
    Camera.Snapshot.capture rig device ~backlight_register:255 original
  in
  let compensated_snap =
    Camera.Snapshot.capture rig device
      ~backlight_register:entry.Annotation.Track.register compensated
  in
  let ref_path = prefix ^ "-reference.ppm" in
  let cmp_path = prefix ^ "-compensated.ppm" in
  Image.Ppm.write ~path:ref_path reference_snap;
  Image.Ppm.write ~path:cmp_path compensated_snap;
  Printf.printf "\nwrote %s and %s (frame %d, register %d)\n" ref_path cmp_path
    frame_index entry.Annotation.Track.register

(* Chaos path: run the full end-to-end session (FEC, NACK loop,
   per-scene degradation) under the requested fault model instead of
   the clean playback report. A resilience profile adds the control
   plane: retry schedule, breaker, watchdog and the degradation
   ladder, with a server-prepared stale track backing the stale rung. *)
let run_faulty ~device ~quality ~ramp ~fault ~resilience clip =
  let resilience, stale_track =
    Common.session_resilience ~device clip resilience
  in
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.quality;
      ramp_step = ramp;
      fault = Some fault;
      resilience;
      stale_track;
    }
  in
  Format.printf "fault model: %a@.@." Streaming.Fault.pp fault;
  (match resilience with
  | Some p -> Format.printf "resilience: %a@.@." Resilience.Profile.pp p
  | None -> ());
  match Streaming.Session.run config clip with
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    1
  | Ok report ->
    Format.printf "%a@." Streaming.Session.pp_report report;
    0

let run clip_name device_name device_file quality_percent with_camera dump ramp width height fps loss_model loss burst fault_profile resilience_file obs trace_out energy_profile journal log_out monitor slo metrics_out =
  Common.with_instrumentation ~default_quality:(quality_percent /. 100.)
    ~energy_profile ~journal ~log_out ~obs ~trace_out ~monitor ~slo ~metrics_out
  @@ fun () ->
  let clip = Common.or_die (Common.resolve_clip clip_name ~width ~height ~fps) in
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  let quality = Annotation.Quality_level.of_percent quality_percent in
  let resilience = Common.resolve_resilience resilience_file in
  match Common.resolve_fault ~loss_model ~loss ~burst ~fault_profile with
  | Some fault -> run_faulty ~device ~quality ~ramp ~fault ~resilience clip
  | None ->
  let profiled = Annotation.Annotator.profile clip in
  (* One annotation pass serves the report, the snapshot dump and the
     camera sweep — annotating again inside [run_profiled] would both
     waste the work and journal a second phase-1 decision pass. *)
  let track = Annotation.Annotator.annotate_profiled ~device ~quality profiled in
  let registers =
    match ramp with
    | None -> Annotation.Track.register_track track
    | Some max_dim_step ->
      Streaming.Ramp.slew_limit ~max_dim_step (Annotation.Track.register_track track)
  in
  let report =
    Streaming.Playback.run_with_registers ~device ~quality
      ~clip_name:clip.Video.Clip.name ~fps
      ~annotation_bytes:(Annotation.Encoding.encoded_size track)
      registers
  in
  Format.printf "%a@." Streaming.Playback.pp_report report;
  Printf.printf "\nbacklight energy : %8.1f mJ (baseline %8.1f mJ) -> %.1f%% saved\n"
    report.Streaming.Playback.backlight_energy_mj
    report.Streaming.Playback.backlight_baseline_mj
    (100. *. report.Streaming.Playback.backlight_savings);
  Printf.printf "device energy    : %8.1f mJ (baseline %8.1f mJ) -> %.1f%% saved\n"
    report.Streaming.Playback.total_energy_mj
    report.Streaming.Playback.total_baseline_mj
    (100. *. report.Streaming.Playback.total_savings);
  let baseline_power =
    report.Streaming.Playback.total_baseline_mj /. report.Streaming.Playback.duration_s
  in
  let optimised_power =
    report.Streaming.Playback.total_energy_mj /. report.Streaming.Playback.duration_s
  in
  Printf.printf "battery runtime  : %+.1f%% playback time on a standard pack\n"
    (100.
     *. Power.Battery.extension_ratio ~baseline_power_mw:baseline_power
          ~optimized_power_mw:optimised_power);
  (match dump with
  | None -> ()
  | Some prefix -> dump_snapshots ~device ~clip ~track prefix);
  if with_camera then begin
    Printf.printf "\ncamera validation (every 24th frame):\n";
    let rig = Camera.Snapshot.default_rig device in
    List.iter
      (fun (i, verdict) ->
        Format.printf "  frame %4d: %a — %s@." i Camera.Quality.pp_verdict verdict
          (if Camera.Quality.acceptable verdict then "ok" else "DEGRADED"))
      (Streaming.Playback.evaluate_quality ~rig ~device ~clip ~track ~sample_every:24)
  end;
  0

let cmd =
  let doc = "simulate annotated playback and report power savings" in
  Cmd.v
    (Cmd.info "playback" ~doc)
    Term.(
      const run $ Common.clip_arg $ Common.device_arg $ Common.device_file_arg
      $ Common.quality_arg $ camera_arg $ dump_arg $ ramp_arg $ Common.width_arg
      $ Common.height_arg $ Common.fps_arg $ Common.loss_model_arg
      $ Common.loss_rate_arg $ Common.burst_arg $ Common.fault_profile_arg
      $ Common.resilience_arg $ Common.obs_arg
      $ Common.trace_out_arg $ Common.energy_profile_arg $ Common.journal_arg
      $ Common.log_out_arg $ Common.monitor_arg
      $ Common.slo_arg $ Common.metrics_out_arg)

let () = exit (Cmd.eval' cmd)
