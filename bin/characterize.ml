(* characterize: run the gray-patch display characterisation (§5)
   through the camera model and report the recovered transfer curve. *)

open Cmdliner

let steps_arg =
  Arg.(value & opt int 18 & info [ "steps" ] ~docv:"N" ~doc:"Sweep sample count.")

let run device_name device_file steps resilience_file obs trace_out energy_profile journal log_out monitor slo metrics_out =
  Common.with_instrumentation ~energy_profile ~journal ~log_out ~obs ~trace_out
    ~monitor ~slo ~metrics_out
  @@ fun () ->
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  (* Characterisation has no streaming stage; the profile is loaded so
     a sweep can pass every tool the same flags (a malformed one fails
     fast here too), then announced and otherwise unused. *)
  (match Common.resolve_resilience resilience_file with
  | Some p ->
    Format.printf "resilience: %a (no streaming stage; profile inert)@."
      Resilience.Profile.pp p
  | None -> ());
  let rig = Camera.Snapshot.default_rig device in
  let measure = Camera.Snapshot.measure_patch rig device in
  Printf.printf "device: %s\n\n" device.Display.Device.name;
  Printf.printf "backlight sweep at white=255 (Fig 7):\n";
  let sweep = Display.Characterize.backlight_sweep ~steps measure in
  Array.iteri
    (fun i level ->
      Printf.printf "  backlight %3d -> brightness %5.1f\n" level
        sweep.Display.Characterize.readings.(i))
    sweep.Display.Characterize.levels;
  Printf.printf "\nwhite sweeps (Fig 8):\n";
  let full = Display.Characterize.white_sweep ~steps ~backlight:255 measure in
  let half = Display.Characterize.white_sweep ~steps ~backlight:128 measure in
  Printf.printf "  %-8s %-14s %s\n" "white" "backlight=255" "backlight=128";
  Array.iteri
    (fun i level ->
      Printf.printf "  %-8d %-14.1f %.1f\n" level
        full.Display.Characterize.readings.(i)
        half.Display.Characterize.readings.(i))
    full.Display.Characterize.levels;
  let recovered = Display.Characterize.recover_transfer ~steps measure in
  let err =
    Display.Characterize.max_relative_error recovered
      device.Display.Device.panel.Display.Panel.transfer
  in
  Printf.printf "\nrecovered transfer function vs factory curve: max error %.3f\n" err;
  Printf.printf "register needed for half luminance: recovered %d, factory %d\n"
    (Display.Transfer.inverse recovered 0.5)
    (Display.Device.register_for_gain device 0.5);
  0

let cmd =
  let doc = "characterise a device display with the camera rig" in
  Cmd.v
    (Cmd.info "characterize" ~doc)
    Term.(
      const run $ Common.device_arg $ Common.device_file_arg $ steps_arg
      $ Common.resilience_arg $ Common.obs_arg $ Common.trace_out_arg $ Common.energy_profile_arg
      $ Common.journal_arg $ Common.log_out_arg
      $ Common.monitor_arg $ Common.slo_arg $ Common.metrics_out_arg)

let () = exit (Cmd.eval' cmd)
