(* plan: pick the least lossy quality level that reaches a target
   battery runtime for a given clip and device. *)

open Cmdliner

let target_arg =
  Arg.(
    value & opt float 4.
    & info [ "t"; "target-hours" ] ~docv:"HOURS" ~doc:"Target playback runtime.")

let capacity_arg =
  Arg.(
    value & opt float 4600.
    & info [ "capacity" ] ~docv:"MWH" ~doc:"Battery capacity in milliwatt-hours.")

(* Re-validate a chosen plan under a hostile channel: does the quality
   level's saving survive burst loss and corruption on the annotation
   side channel, and how many scenes degrade? *)
let validate_under_fault ~device ~quality ~fault ~resilience clip =
  let resilience, stale_track =
    Common.session_resilience ~device clip resilience
  in
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.quality;
      fault = Some fault;
      resilience;
      stale_track;
    }
  in
  Format.printf "@.validation under fault model %a:@." Streaming.Fault.pp fault;
  (match resilience with
  | Some p -> Format.printf "resilience: %a@." Resilience.Profile.pp p
  | None -> ());
  match Streaming.Session.run config clip with
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    1
  | Ok report ->
    Format.printf "%a@." Streaming.Session.pp_report report;
    0

let run clip_name device_name device_file target_hours capacity_mwh width height fps loss_model loss burst fault_profile resilience_file obs trace_out energy_profile journal log_out monitor slo metrics_out =
  Common.with_instrumentation ~energy_profile ~journal ~log_out ~obs ~trace_out
    ~monitor ~slo ~metrics_out
  @@ fun () ->
  let clip = Common.or_die (Common.resolve_clip clip_name ~width ~height ~fps) in
  let device =
    Common.or_die (Common.resolve_device_with_file ~file:device_file device_name)
  in
  let fault = Common.resolve_fault ~loss_model ~loss ~burst ~fault_profile in
  let resilience = Common.resolve_resilience resilience_file in
  let battery = Power.Battery.make ~capacity_mwh in
  let profiled = Annotation.Annotator.profile clip in
  Printf.printf "clip %s on %s, battery %.0f mWh, target %.1f h\n\n" clip_name
    device_name capacity_mwh target_hours;
  (* Show the whole menu, then the decision. *)
  List.iter
    (fun quality ->
      let power = Streaming.Planner.project ~device ~quality profiled in
      Printf.printf "  %-4s -> %6.0f mW, %5.1f h\n"
        (Annotation.Quality_level.label quality)
        power
        (Power.Battery.runtime_hours battery ~average_power_mw:power))
    Annotation.Quality_level.standard_grid;
  print_newline ();
  (* Return the exit code instead of calling [exit] here, so the obs
     summary in [with_obs]'s cleanup still runs on the failure path. *)
  match Streaming.Planner.plan ~battery ~target_hours ~device profiled with
  | Ok plan ->
    Format.printf "selected: %a@." Streaming.Planner.pp_plan plan;
    (match fault with
    | None -> 0
    | Some fault ->
      validate_under_fault ~device ~quality:plan.Streaming.Planner.quality
        ~fault ~resilience clip)
  | Error best ->
    Format.printf "target unreachable; best effort: %a@." Streaming.Planner.pp_plan best;
    2

let cmd =
  let doc = "select the quality level meeting a battery-runtime target" in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(
      const run $ Common.clip_arg $ Common.device_arg $ Common.device_file_arg
      $ target_arg $ capacity_arg $ Common.width_arg $ Common.height_arg
      $ Common.fps_arg $ Common.loss_model_arg $ Common.loss_rate_arg
      $ Common.burst_arg $ Common.fault_profile_arg $ Common.resilience_arg
      $ Common.obs_arg $ Common.trace_out_arg $ Common.energy_profile_arg
      $ Common.journal_arg $ Common.log_out_arg
      $ Common.monitor_arg $ Common.slo_arg $ Common.metrics_out_arg)

let () = exit (Cmd.eval' cmd)
