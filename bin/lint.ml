(* The static gatekeepers. [sources] runs the determinism linter over
   the OCaml tree; [verify] audits annotation blobs, SLO files and
   fault profiles at rest. Both speak Check.Diagnostic and exit 1
   when any error-severity finding survives. *)

open Cmdliner
module Lint = Check_lint.Lint

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit findings as a JSON array of objects $(b,{file, line, col, \
           code, severity, message}) instead of the human one-per-line form.")

(* Shared reporting tail: render, summarise, pick the exit code. *)
let report ~json ~what ~files diags =
  let diags = List.sort Check.Diagnostic.compare diags in
  if json then
    print_endline
      (Obs.Json.to_string
         (Obs.Json.List (List.map Check.Diagnostic.to_json diags)))
  else begin
    List.iter (Format.printf "%a@." Check.Diagnostic.pp) diags;
    let errors = Check.Diagnostic.errors diags in
    let warnings = Check.Diagnostic.warnings diags in
    Format.printf "%s: %d file(s), %d error(s), %d warning(s)@." what files
      errors warnings
  end;
  if Check.Diagnostic.errors diags > 0 then 1 else 0

let expand_paths paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then Lint.ml_files_under path
      else [ path ])
    paths

let sources_cmd =
  let paths_arg =
    Arg.(
      value
      & pos_all string [ "lib"; "bin" ]
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint; directories are walked \
             recursively for .ml files. Defaults to $(b,lib bin).")
  in
  let run json paths =
    match expand_paths paths with
    | exception Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      2
    | files ->
      let diags = List.concat_map Lint.lint_file files in
      report ~json ~what:"lint" ~files:(List.length files) diags
  in
  let doc = "lint the OCaml sources for nondeterminism and hygiene" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses each source with the compiler front end and applies the rule \
         registry: ambient clocks (L001), ambient randomness (L002), \
         hash-order iteration feeding output (L003), wildcard exception \
         swallowing (L004), console output from the library (L005), missing \
         .mli (L006), float (in)equality (L007), malformed suppressions \
         (L008), ad-hoc domain spawns outside lib/par (L009), direct \
         power-meter sampling outside lib/power and lib/obs (L010), \
         journal emission outside lib/obs and the sanctioned pipeline \
         hooks (L011), breaker/ladder state mutation outside \
         lib/resilience and the sanctioned streaming integration sites \
         (L012). Suppress a finding with an inline comment \
         $(b,(* lint: allow L0nn reason *)) — the reason is mandatory.";
    ]
  in
  Cmd.v (Cmd.info "sources" ~doc ~man) Term.(const run $ json_arg $ paths_arg)

let verify_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Artifacts to audit: $(b,.slo) rule files, $(b,.fault) profiles, \
             $(b,.resilience) profiles, $(b,.journal) decision journals; \
             anything else is checked as an encoded annotation stream.")
  in
  let run json files =
    let diags = List.concat_map Check.Artifact.check_file files in
    report ~json ~what:"verify" ~files:(List.length files) diags
  in
  let doc = "statically audit annotation artifacts at rest" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Validates artifacts without running a session: annotation streams \
         (framing, header and record CRCs, varint bounds, scene-index \
         monotonicity and coverage, backlight range for the named panel — \
         V1xx), SLO rule files (syntax, metric catalog, contradictions — \
         V2xx), fault profiles (V3xx), decision journals written by the \
         tools' $(b,--journal) flag (framing, header and frame CRCs, \
         per-phase timestamp monotonicity, event schema — V4xx) and \
         resilience profiles (syntax, positive budgets, ladder rung order, \
         breaker thresholds in [0,1] — V5xx). Exit status 1 if any \
         error-level finding, 0 otherwise.";
    ]
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) Term.(const run $ json_arg $ files_arg)

let () =
  let doc = "static verification: source linter and artifact auditor" in
  let info = Cmd.info "lint" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ sources_cmd; verify_cmd ]))
