(* The static gatekeepers. [sources] runs every source pass — the
   per-file determinism rules, the cross-module transitive effect
   closure, and the concurrency-safety analyzer — over one shared
   parse of the tree; [concurrency] runs just the call-graph passes;
   [verify] audits annotation blobs, SLO files and fault profiles at
   rest. All speak Check.Diagnostic and exit 1 when any
   error-severity finding survives. *)

open Cmdliner
module Lint = Check_lint.Lint
module Callgraph = Check_lint.Callgraph
module Concurrency = Check_lint.Concurrency

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit machine-readable JSON instead of the human one-per-line \
           form. $(b,sources) emits $(b,{diagnostics, passes, summary}) \
           with per-pass wall time; $(b,verify) emits the array of \
           findings.")

(* Shared human-readable reporting tail. *)
let report_human ~what ~files diags =
  List.iter (Format.printf "%a@." Check.Diagnostic.pp) diags;
  let errors = Check.Diagnostic.errors diags in
  let warnings = Check.Diagnostic.warnings diags in
  Format.printf "%s: %d file(s), %d error(s), %d warning(s)@." what files
    errors warnings

let exit_code diags = if Check.Diagnostic.errors diags > 0 then 1 else 0

let expand_paths paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then Lint.ml_files_under path else [ path ])
    paths

(* Wall-clock per pass. The linter itself is the one place allowed to
   look at the clock for its own telemetry: the timings feed
   EXPERIMENTS, never an annotation stream. *)
let timed passes name f =
  (* lint: allow L001 linter self-telemetry, never reaches artifacts *)
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (* lint: allow L001 linter self-telemetry, never reaches artifacts *)
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  passes := (name, ms) :: !passes;
  r

type run = {
  r_files : int;
  r_diags : Check.Diagnostic.t list;
  r_allows : Lint.allow list;
  r_passes : (string * float) list;  (** (pass, ms) in run order *)
}

(* Parse once, fan out to the requested passes. *)
let run_passes ~per_file ~graph_passes paths =
  let passes = ref [] in
  let files = expand_paths paths in
  let sources = timed passes "parse" (fun () -> List.map Lint.load_file files) in
  let file_diags =
    if per_file then
      timed passes "rules" (fun () -> List.concat_map Lint.lint_parsed sources)
    else
      (* Parse failures still surface: the graph passes are blind to a
         file they could not read. *)
      List.concat_map
        (fun (s : Lint.source) ->
          Lint.filter_suppressed s s.Lint.src_parse_diags)
        sources
  in
  let graph_diags =
    if not graph_passes then []
    else begin
      let graph = timed passes "callgraph" (fun () -> Callgraph.build sources) in
      let effects =
        timed passes "effects" (fun () -> Callgraph.transitive_effects graph)
      in
      let conc =
        timed passes "concurrency" (fun () -> Concurrency.check graph sources)
      in
      effects @ conc
    end
  in
  {
    r_files = List.length files;
    r_diags = List.sort Check.Diagnostic.compare (file_diags @ graph_diags);
    r_allows = List.concat_map Lint.allows sources;
    r_passes = List.rev !passes;
  }

let run_json ~what run =
  let summary =
    Obs.Json.Obj
      [
        ("files", Obs.Json.Int run.r_files);
        ("errors", Obs.Json.Int (Check.Diagnostic.errors run.r_diags));
        ("warnings", Obs.Json.Int (Check.Diagnostic.warnings run.r_diags));
        ("allows", Obs.Json.Int (List.length run.r_allows));
      ]
  in
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String what);
      ( "diagnostics",
        Obs.Json.List (List.map Check.Diagnostic.to_json run.r_diags) );
      ( "passes",
        Obs.Json.List
          (List.map
             (fun (name, ms) ->
               Obs.Json.Obj
                 [ ("pass", Obs.Json.String name); ("ms", Obs.Json.Float ms) ])
             run.r_passes) );
      ("summary", summary);
    ]

let print_allows allows =
  List.iter
    (fun (a : Lint.allow) ->
      Format.printf "%s:%d: allow %s  %s@." a.Lint.a_file a.Lint.a_line
        a.Lint.a_code a.Lint.a_reason)
    allows;
  Format.printf "%d reasoned allow(s)@." (List.length allows)

let paths_arg =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint; directories are walked recursively \
           for .ml files. Defaults to $(b,lib bin).")

let sources_cmd =
  let list_allows_arg =
    Arg.(
      value & flag
      & info [ "list-allows" ]
        ~doc:
          "Instead of findings, enumerate every reasoned $(b,lint: allow) \
           in the tree with its rule, location and reason — the audit feed \
           for stale suppressions. Exits 0.")
  in
  let run json list_allows paths =
    match run_passes ~per_file:true ~graph_passes:true paths with
    | exception Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      2
    | run ->
      if list_allows then begin
        if json then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.List
                  (List.map
                     (fun (a : Lint.allow) ->
                       Obs.Json.Obj
                         [
                           ("file", Obs.Json.String a.Lint.a_file);
                           ("line", Obs.Json.Int a.Lint.a_line);
                           ("code", Obs.Json.String a.Lint.a_code);
                           ("reason", Obs.Json.String a.Lint.a_reason);
                         ])
                     run.r_allows)))
        else print_allows run.r_allows;
        0
      end
      else begin
        if json then print_endline (Obs.Json.to_string (run_json ~what:"lint" run))
        else report_human ~what:"lint" ~files:run.r_files run.r_diags;
        exit_code run.r_diags
      end
  in
  let doc = "lint the OCaml sources for nondeterminism, hygiene and concurrency" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses each source once with the compiler front end and applies \
         every pass over the shared AST: the per-file rule registry \
         (ambient clocks L001, ambient randomness L002, hash-order \
         iteration feeding output L003, wildcard exception swallowing \
         L004, console output from the library L005, missing .mli L006, \
         float (in)equality L007, malformed suppressions L008, ad-hoc \
         domain spawns outside lib/par L009, direct power-meter sampling \
         outside lib/power and lib/obs L010, journal emission outside the \
         sanctioned hooks L011, breaker/ladder mutation outside the \
         sanctioned sites L012); the cross-module call graph's transitive \
         closure of L001/L002 (a function that reaches an ambient clock \
         or RNG through any call chain is flagged at its own definition \
         with the witness chain); and the concurrency-safety analyzer \
         (C001–C006, see $(b,lint concurrency)). Suppress a finding with \
         an inline comment $(b,(* lint: allow CODE reason *)) — the \
         reason is mandatory.";
    ]
  in
  Cmd.v
    (Cmd.info "sources" ~doc ~man)
    Term.(const run $ json_arg $ list_allows_arg $ paths_arg)

let concurrency_cmd =
  let run json paths =
    match run_passes ~per_file:false ~graph_passes:true paths with
    | exception Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      2
    | run ->
      if json then
        print_endline (Obs.Json.to_string (run_json ~what:"concurrency" run))
      else report_human ~what:"concurrency" ~files:run.r_files run.r_diags;
      exit_code run.r_diags
  in
  let doc = "run only the call-graph passes: concurrency safety and effects" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds the cross-module call graph and runs the concurrency \
         analyzer plus the transitive effect closure, without the \
         per-file rules: unguarded module-level mutable state in \
         par-linked libraries (C001), guarded_by fields accessed without \
         their mutex (C002), locks not released on every path (C003), \
         blocking operations — including transitive ones through the \
         call graph — while holding a lock (C004), lock-order cycles \
         (C005), and raw concurrency primitives outside the sanctioned \
         modules (C006). Annotate shared state with \
         $(b,(* guarded_by: mutex *)) or $(b,(* owned_by: reason *)); \
         suppress a deliberate finding with \
         $(b,(* lint: allow C00n reason *)).";
    ]
  in
  Cmd.v
    (Cmd.info "concurrency" ~doc ~man)
    Term.(const run $ json_arg $ paths_arg)

let verify_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Artifacts to audit: $(b,.slo) rule files, $(b,.fault) profiles, \
             $(b,.resilience) profiles, $(b,.journal) decision journals; \
             anything else is checked as an encoded annotation stream.")
  in
  let run json files =
    let diags =
      List.sort Check.Diagnostic.compare
        (List.concat_map Check.Artifact.check_file files)
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.List (List.map Check.Diagnostic.to_json diags)))
    else report_human ~what:"verify" ~files:(List.length files) diags;
    exit_code diags
  in
  let doc = "statically audit annotation artifacts at rest" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Validates artifacts without running a session: annotation streams \
         (framing, header and record CRCs, varint bounds, scene-index \
         monotonicity and coverage, backlight range for the named panel — \
         V1xx), SLO rule files (syntax, metric catalog, contradictions — \
         V2xx), fault profiles (V3xx), decision journals written by the \
         tools' $(b,--journal) flag (framing, header and frame CRCs, \
         per-phase timestamp monotonicity, event schema — V4xx) and \
         resilience profiles (syntax, positive budgets, ladder rung order, \
         breaker thresholds in [0,1] — V5xx). Exit status 1 if any \
         error-level finding, 0 otherwise.";
    ]
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) Term.(const run $ json_arg $ files_arg)

let () =
  let doc = "static verification: source linter and artifact auditor" in
  let info = Cmd.info "lint" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ sources_cmd; concurrency_cmd; verify_cmd ]))
