(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index).

   Usage:
     main.exe                 run every figure/table experiment
     main.exe fig9 fig10      run selected experiments
     main.exe micro           Bechamel micro-benchmarks of hot kernels
     main.exe --list          list experiment ids *)

let device = Display.Device.ipaq_h5555

(* Resolution used for the sweeps. Small frames keep the full harness
   in seconds while preserving histogram shape (the technique only
   consumes luminance distributions). *)
let sweep_width = 160
let sweep_height = 120
let sweep_fps = 12.

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let rule () = print_endline (String.make 78 '-')

(* Workload profiles are rendered and profiled once per run. *)
let profiled_cache : (string, Annotation.Annotator.profiled) Hashtbl.t = Hashtbl.create 16

let render_workload profile =
  Video.Clip_gen.render ~width:sweep_width ~height:sweep_height ~fps:sweep_fps profile

let profiled_workload profile =
  let name = profile.Video.Profile.name in
  match Hashtbl.find_opt profiled_cache name with
  | Some p -> p
  | None ->
    let p = Annotation.Annotator.profile (render_workload profile) in
    Hashtbl.add profiled_cache name p;
    p

(* A 16-bucket rendering of a 256-bin histogram, as an ASCII bar
   chart — the textual analogue of the paper's histogram figures. *)
let print_histogram label hist =
  let buckets = Array.make 16 0 in
  Array.iteri
    (fun level count -> buckets.(level / 16) <- buckets.(level / 16) + count)
    (Image.Histogram.to_array hist);
  let top = Array.fold_left max 1 buckets in
  Printf.printf "%s  (mean %.1f, range [%d, %d])\n" label
    (Image.Histogram.mean hist)
    (Image.Histogram.min_level hist)
    (Image.Histogram.max_level hist);
  Array.iteri
    (fun i count ->
      let bar = String.make (count * 48 / top) '#' in
      Printf.printf "  %3d-%3d %7d %s\n" (i * 16) ((i * 16) + 15) count bar)
    buckets

(* --- Fig 3: image histogram properties -------------------------------- *)

let fig3 () =
  section "Fig 3 — image histogram properties (average point, dynamic range)";
  (* A representative mixed frame: gradient background, one subject,
     a few highlights. *)
  let img = Image.Raster.create ~width:sweep_width ~height:sweep_height in
  Image.Draw.fill_vertical_gradient img ~top:(Image.Pixel.gray 40)
    ~bottom:(Image.Pixel.gray 110);
  Image.Draw.disc img ~cx:(sweep_width / 2) ~cy:(sweep_height / 2)
    ~radius:(sweep_width / 6) (Image.Pixel.gray 170);
  Image.Draw.glow img ~cx:(sweep_width / 4) ~cy:(sweep_height / 4)
    ~radius:(sweep_width / 12) ~intensity:180;
  let hist = Image.Histogram.of_raster img in
  print_histogram "sample frame" hist;
  Printf.printf "average point   : %.1f\n" (Image.Histogram.mean hist);
  Printf.printf "dynamic range   : %d (min %d, max %d)\n"
    (Image.Histogram.dynamic_range hist)
    (Image.Histogram.min_level hist)
    (Image.Histogram.max_level hist)

(* --- Fig 4: original vs compensated camera snapshots ------------------- *)

let fig4 () =
  section
    "Fig 4 — original (full backlight) vs compensated (dimmed) camera snapshots";
  (* A dark news-style frame: dark interior with highlights. *)
  let clip = render_workload Video.Workloads.themovie in
  let profiled = profiled_workload Video.Workloads.themovie in
  let track =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
      profiled
  in
  (* Pick the dimmest *contentful* scene: fades and credits are nearly
     black and make a degenerate demo, so require a reasonable
     effective maximum, as the paper's news-clip frame has. *)
  let frame_index =
    let best = ref 0 and best_reg = ref 256 in
    Array.iter
      (fun (e : Annotation.Track.entry) ->
        if e.Annotation.Track.register < !best_reg && e.Annotation.Track.effective_max >= 80
        then begin
          best_reg := e.Annotation.Track.register;
          best := e.Annotation.Track.first_frame + (e.Annotation.Track.frame_count / 2)
        end)
      track.Annotation.Track.entries;
    !best
  in
  let original = clip.Video.Clip.render frame_index in
  let entry = Annotation.Track.lookup track frame_index in
  let compensated = Annotation.Compensate.frame track frame_index original in
  let rig = Camera.Snapshot.default_rig device in
  let reference_snap =
    Camera.Snapshot.capture_histogram rig device ~backlight_register:255 original
  in
  let compensated_snap =
    Camera.Snapshot.capture_histogram rig device
      ~backlight_register:entry.Annotation.Track.register compensated
  in
  Printf.printf "frame %d, backlight register %d (%.0f%% of full), compensation x%.2f\n"
    frame_index entry.Annotation.Track.register
    (100. *. float_of_int entry.Annotation.Track.register /. 255.)
    entry.Annotation.Track.compensation;
  print_histogram "reference snapshot  " reference_snap;
  print_histogram "compensated snapshot" compensated_snap;
  let verdict =
    Camera.Quality.compare_histograms ~reference:reference_snap
      ~compensated:compensated_snap
  in
  Format.printf "verdict: %a — %s@." Camera.Quality.pp_verdict verdict
    (if Camera.Quality.acceptable verdict then "differences hardly noticeable"
     else "visible degradation")

(* --- Fig 5: quality trade-off in a histogram --------------------------- *)

let fig5 () =
  section "Fig 5 — quality trade-off: clipped high-luminance pixels per level";
  let profiled = profiled_workload Video.Workloads.catwoman in
  (* Merge the whole clip into one histogram for a stable picture. *)
  let hist = Image.Histogram.create () in
  Array.iter (fun h -> Image.Histogram.merge_into ~dst:hist h)
    profiled.Annotation.Annotator.histograms;
  Printf.printf "%-8s %-14s %-12s %-10s %-14s %s\n" "quality" "eff. max lum"
    "clipped px" "register" "compensation" "backlight level";
  rule ();
  List.iter
    (fun q ->
      let sol = Annotation.Backlight_solver.solve ~device ~quality:q hist in
      Printf.printf "%-8s %-14d %-12s %-10d x%-13.2f %.0f%%\n"
        (Annotation.Quality_level.label q)
        sol.Annotation.Backlight_solver.effective_max
        (Printf.sprintf "%.2f%%" (100. *. sol.Annotation.Backlight_solver.clipped_fraction))
        sol.Annotation.Backlight_solver.register
        sol.Annotation.Backlight_solver.compensation
        (100. *. float_of_int sol.Annotation.Backlight_solver.register /. 255.))
    Annotation.Quality_level.standard_grid

(* --- Fig 6: scene grouping during playback ----------------------------- *)

let fig6 () =
  section
    "Fig 6 — scene grouping during playback (10% quality): per-frame max \
     luminance, scene max, instantaneous backlight power saved";
  let profiled = profiled_workload Video.Workloads.themovie in
  let track =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
      profiled
  in
  let savings = Streaming.Playback.instantaneous_backlight_savings ~device track in
  let scene_max =
    Array.init profiled.Annotation.Annotator.total_frames (fun i ->
        (Annotation.Track.lookup track i).Annotation.Track.effective_max)
  in
  Printf.printf "%-8s %-10s %-16s %-10s %s\n" "time(s)" "max lum" "scene eff. max"
    "register" "power saved";
  rule ();
  let n = profiled.Annotation.Annotator.total_frames in
  let stride = max 1 (n / 80) in
  let i = ref 0 in
  while !i < n do
    let t = float_of_int !i /. sweep_fps in
    Printf.printf "%-8.2f %-10d %-16d %-10d %5.1f%%\n" t
      profiled.Annotation.Annotator.max_track.(!i)
      scene_max.(!i)
      (Annotation.Track.lookup track !i).Annotation.Track.register
      (100. *. savings.(!i));
    i := !i + stride
  done;
  Printf.printf "\nscenes: %d, backlight switches: %d, mean power saved: %.1f%%\n"
    (Annotation.Track.entry_count track)
    (Annotation.Track.switch_count track)
    (100. *. Array.fold_left ( +. ) 0. savings /. float_of_int n)

(* --- Fig 7 / Fig 8: display characterisation --------------------------- *)

let fig7 () =
  section "Fig 7 — measured brightness vs backlight value (white = 255)";
  let rig = Camera.Snapshot.default_rig device in
  Printf.printf "device: %s (%s backlight)\n" device.Display.Device.name
    (match device.Display.Device.panel.Display.Panel.technology with
    | Display.Panel.Led -> "LED"
    | Display.Panel.Ccfl -> "CCFL");
  let sweep =
    Display.Characterize.backlight_sweep ~steps:18
      (Camera.Snapshot.measure_patch rig device)
  in
  Printf.printf "%-10s %-18s %s\n" "backlight" "measured" "";
  rule ();
  Array.iteri
    (fun i level ->
      let reading = sweep.Display.Characterize.readings.(i) in
      let bar = String.make (int_of_float reading * 48 / 256) '#' in
      Printf.printf "%-10d %-18.1f %s\n" level reading bar)
    sweep.Display.Characterize.levels;
  (* Also show the CCFL device for contrast, as the paper notes each
     technology has its own curve. *)
  let ccfl = Display.Device.ipaq_h3650 in
  let rig_ccfl = Camera.Snapshot.default_rig ccfl in
  let sweep_ccfl =
    Display.Characterize.backlight_sweep ~steps:18
      (Camera.Snapshot.measure_patch rig_ccfl ccfl)
  in
  Printf.printf "\ndevice: %s (CCFL) — note the strike threshold\n"
    ccfl.Display.Device.name;
  Array.iteri
    (fun i level ->
      let reading = sweep_ccfl.Display.Characterize.readings.(i) in
      let bar = String.make (int_of_float reading * 48 / 256) '#' in
      Printf.printf "%-10d %-18.1f %s\n" level reading bar)
    sweep_ccfl.Display.Characterize.levels

let fig8 () =
  section "Fig 8 — measured brightness vs white level (backlight 255 and 128)";
  let rig = Camera.Snapshot.default_rig device in
  let full =
    Display.Characterize.white_sweep ~steps:18 ~backlight:255
      (Camera.Snapshot.measure_patch rig device)
  in
  let half =
    Display.Characterize.white_sweep ~steps:18 ~backlight:128
      (Camera.Snapshot.measure_patch rig device)
  in
  Printf.printf "%-8s %-16s %s\n" "white" "backlight=255" "backlight=128";
  rule ();
  Array.iteri
    (fun i level ->
      Printf.printf "%-8d %-16.1f %.1f\n" level
        full.Display.Characterize.readings.(i)
        half.Display.Characterize.readings.(i))
    full.Display.Characterize.levels

(* --- Fig 9 / Fig 10: the power-savings sweeps --------------------------- *)

let quality_columns = Annotation.Quality_level.standard_grid

let print_sweep_header () =
  Printf.printf "%-22s" "clip";
  List.iter (fun q -> Printf.printf "%8s" (Annotation.Quality_level.label q)) quality_columns;
  print_newline ();
  rule ()

let sweep_savings ~extract () =
  print_sweep_header ();
  let totals = Array.make (List.length quality_columns) 0. in
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      Printf.printf "%-22s" profile.Video.Profile.name;
      List.iteri
        (fun qi q ->
          let report = Streaming.Playback.run_profiled ~device ~quality:q profiled in
          let v = extract report in
          totals.(qi) <- totals.(qi) +. v;
          Printf.printf "%7.1f%%" (100. *. v))
        quality_columns;
      print_newline ())
    Video.Workloads.all;
  rule ();
  Printf.printf "%-22s" "mean";
  Array.iter
    (fun t -> Printf.printf "%7.1f%%" (100. *. t /. float_of_int (List.length Video.Workloads.all)))
    totals;
  print_newline ()

let fig9 () =
  section "Fig 9 — LCD backlight power savings (simulated), 10 clips x 5 levels";
  sweep_savings ~extract:(fun r -> r.Streaming.Playback.backlight_savings) ()

let fig10 () =
  section
    "Fig 10 — total device power savings (DAQ-style measured), 10 clips x 5 levels";
  sweep_savings ~extract:(fun r -> r.Streaming.Playback.total_savings) ()

(* --- Annotation overhead ------------------------------------------------ *)

let overhead () =
  section
    "Annotation overhead (§4.3): RLE-compressed annotations vs encoded video";
  (* Encoding all ten clips through the codec at a reduced resolution
     keeps this experiment fast; annotation size is
     resolution-independent, so the reported ratios are conservative
     (a larger video only shrinks them). *)
  let width = 96 and height = 72 in
  let link = Streaming.Netsim.wlan_80211b in
  Printf.printf "%-22s %12s %12s %10s %12s\n" "clip" "video bytes" "annot bytes"
    "ratio" "wire ratio";
  rule ();
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width ~height ~fps:sweep_fps profile in
      let encoded = Codec.Encoder.encode_clip clip in
      let track =
        Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip
      in
      let annotation_bytes = Annotation.Encoding.encoded_size track in
      let video_bytes = Codec.Encoder.total_bytes encoded in
      Printf.printf "%-22s %12d %12d %9.4f%% %11.4f%%\n" profile.Video.Profile.name
        video_bytes annotation_bytes
        (100. *. float_of_int annotation_bytes /. float_of_int video_bytes)
        (100. *. Streaming.Netsim.annotation_overhead_ratio link ~video_bytes
             ~annotation_bytes))
    Video.Workloads.all

(* --- Ablation A1: scene-level vs per-frame annotation ------------------- *)

let ablation_scene () =
  section
    "Ablation A1 — scene-level vs per-frame backlight changes (10% quality)";
  Printf.printf "%-22s %16s %16s %10s %10s\n" "clip" "scene savings"
    "frame savings" "scene sw" "frame sw";
  rule ();
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      let run strategy =
        Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
          strategy
      in
      let scene = run (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params) in
      let frame = run Baselines.Strategy.Annotated_per_frame in
      Printf.printf "%-22s %15.1f%% %15.1f%% %10d %10d\n" profile.Video.Profile.name
        (100. *. scene.Baselines.Runner.report.Streaming.Playback.backlight_savings)
        (100. *. frame.Baselines.Runner.report.Streaming.Playback.backlight_savings)
        scene.Baselines.Runner.report.Streaming.Playback.switch_count
        frame.Baselines.Runner.report.Streaming.Playback.switch_count)
    Video.Workloads.all

(* --- Ablation A2: annotation vs client-side alternatives ---------------- *)

let ablation_baselines () =
  section
    "Ablation A2 — annotation vs client-side strategies (10% quality, 4 clips)";
  let clips =
    [
      Video.Workloads.themovie;
      Video.Workloads.returnoftheking;
      Video.Workloads.ice_age;
      Video.Workloads.officexp;
    ]
  in
  List.iter
    (fun profile ->
      Printf.printf "\n%s:\n" profile.Video.Profile.name;
      Printf.printf "  %-20s %10s %10s %9s %11s %7s %7s\n" "strategy" "backlight"
        "total" "switches" "violations" "worst" "annot";
      Printf.printf "  %s\n" (String.make 80 '-');
      let profiled = profiled_workload profile in
      List.iter
        (fun strategy ->
          let o =
            Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10
              profiled strategy
          in
          Printf.printf "  %-20s %9.1f%% %9.1f%% %9d %11d %6.1f%% %6dB\n"
            (Baselines.Strategy.name strategy)
            (100. *. o.Baselines.Runner.report.Streaming.Playback.backlight_savings)
            (100. *. o.Baselines.Runner.report.Streaming.Playback.total_savings)
            o.Baselines.Runner.report.Streaming.Playback.switch_count
            o.Baselines.Runner.violations
            (100. *. o.Baselines.Runner.worst_excess_clip)
            o.Baselines.Runner.annotation_bytes)
        Baselines.Runner.standard_lineup)
    clips

(* --- Ablation: compensation operator ------------------------------------ *)

let ablation_operator () =
  section
    "Ablation — contrast enhancement vs brightness compensation (§4.1, 10% quality)";
  Printf.printf "%-22s | %-28s | %-28s\n" "" "contrast enhancement"
    "brightness compensation";
  Printf.printf "%-22s | %8s %9s %8s | %8s %9s %8s\n" "clip" "register" "savings"
    "error" "register" "savings" "error";
  rule ();
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      let hist = Image.Histogram.create () in
      Array.iter (fun h -> Image.Histogram.merge_into ~dst:hist h)
        profiled.Annotation.Annotator.histograms;
      let solve op =
        Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Loss_10 op hist
      in
      let contrast = solve Annotation.Operator.Contrast_enhancement in
      let brightness = solve Annotation.Operator.Brightness_compensation in
      let savings (s : Annotation.Operator.solution) =
        100. *. (1. -. (float_of_int s.Annotation.Operator.register /. 255.))
      in
      Printf.printf "%-22s | %8d %8.1f%% %8.4f | %8d %8.1f%% %8.4f\n"
        profile.Video.Profile.name contrast.Annotation.Operator.register
        (savings contrast) contrast.Annotation.Operator.mean_error
        brightness.Annotation.Operator.register (savings brightness)
        brightness.Annotation.Operator.mean_error)
    Video.Workloads.all;
  print_endline
    "\n(error = mean perceived-intensity deviation, fraction of full scale;\n\
    \ contrast enhancement is exact for non-clipped pixels, the additive\n\
    \ offset cannot be, which is why the paper selects the former)"

(* --- Extension: DVFS from workload annotations --------------------------- *)

let dvfs () =
  section
    "Extension — CPU frequency scaling from workload annotations (§3), 4 clips";
  let fps = 12. in
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width:160 ~height:120 ~fps profile in
      let encoded = Codec.Encoder.encode_clip clip in
      let cycles = Streaming.Dvfs_playback.decode_cycles encoded in
      Printf.printf "\n%s (annotations %d bytes):\n" profile.Video.Profile.name
        (Streaming.Dvfs_playback.annotation_bytes cycles);
      List.iter
        (fun policy ->
          let report = Streaming.Dvfs_playback.run ~fps cycles policy in
          Format.printf "  %a@." Streaming.Dvfs_playback.pp_report report)
        [
          Streaming.Dvfs_playback.Always_full;
          Streaming.Dvfs_playback.Annotated_workload;
          Streaming.Dvfs_playback.History_max { window = 6; margin = 1.1 };
        ])
    [
      Video.Workloads.themovie;
      Video.Workloads.catwoman;
      Video.Workloads.ice_age;
      Video.Workloads.officexp;
    ]

(* --- Extension: radio power-save from burst annotations ------------------ *)

let radio () =
  section
    "Extension — WLAN power-save from stream-burst annotations (§3), 4 clips";
  let fps = 12. and gop = 12 in
  let link = Streaming.Netsim.wlan_80211b in
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width:160 ~height:120 ~fps profile in
      let encoded =
        Codec.Encoder.encode_clip
          ~params:{ Codec.Stream.default_params with gop } clip
      in
      let frame_bytes =
        Array.map (fun bits -> (bits + 7) / 8) encoded.Codec.Encoder.frame_sizes_bits
      in
      Printf.printf "\n%s (%d KB stream):\n" profile.Video.Profile.name
        (Codec.Encoder.total_bytes encoded / 1024);
      List.iter
        (fun policy ->
          let report = Streaming.Radio.run ~link ~fps ~gop ~frame_bytes policy in
          Format.printf "  %a@." Streaming.Radio.pp_report report)
        [
          Streaming.Radio.Always_on;
          Streaming.Radio.Annotated_bursts;
          Streaming.Radio.History_bursts { margin = 1.1 };
        ])
    [
      Video.Workloads.themovie;
      Video.Workloads.catwoman;
      Video.Workloads.ice_age;
      Video.Workloads.officexp;
    ]

(* --- Extension: ROI-protected annotation --------------------------------- *)

let roi () =
  section
    "Extension — user-supervised (ROI-protected) annotation on end credits (§3)";
  (* A credits-dominated clip: the paper's noted failure case for the
     percentage clipping heuristic. *)
  let profile =
    {
      Video.Profile.name = "credits-roll";
      seed = 777;
      scenes =
        [
          Video.Profile.scene ~seconds:4. ~noise_sigma:0. (Video.Profile.Flat 35);
          Video.Profile.scene ~seconds:16. ~credits:true ~noise_sigma:1.5
            (Video.Profile.Flat 8);
        ];
    }
  in
  let clip = Video.Clip_gen.render ~width:sweep_width ~height:sweep_height ~fps:sweep_fps profile in
  let band =
    Image.Roi.center_band ~width:sweep_width ~height:sweep_height ~fraction:0.6
  in
  let protected_profile = Annotation.Protected.profile ~roi:band clip in
  let quality = Annotation.Quality_level.Loss_10 in
  let unprotected = Annotation.Annotator.annotate ~device ~quality clip in
  let protected_track = Annotation.Protected.annotate ~device ~quality protected_profile in
  let report track label =
    let r =
      Streaming.Playback.run_with_registers ~device ~quality
        ~clip_name:clip.Video.Clip.name ~fps:sweep_fps
        ~annotation_bytes:(Annotation.Encoding.encoded_size track)
        (Annotation.Track.register_track track)
    in
    let text_clipped =
      Annotation.Protected.roi_clipped_fraction ~device protected_profile track
    in
    Printf.printf "  %-14s backlight saved %5.1f%%  credit text clipped %5.1f%%\n"
      label
      (100. *. r.Streaming.Playback.backlight_savings)
      (100. *. text_clipped)
  in
  Printf.printf "protected region: centre band, %.0f%% of frame height\n" 60.;
  report unprotected "unprotected";
  report protected_track "protected";
  print_endline
    "\n(the unprotected run clips the bright credit text wholesale — the\n\
    \ paper's §4.3 failure case; protecting the text band trades some of\n\
    \ the savings for intact text)"

(* --- Extension: live (windowed) annotation at a proxy -------------------- *)

let live () =
  section
    "Extension — on-the-fly proxy annotation (videoconferencing, §3), 10% quality";
  Printf.printf "%-22s %-10s %12s %10s %10s\n" "clip" "lookahead" "latency"
    "backlight" "switches";
  rule ();
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      let quality = Annotation.Quality_level.Loss_10 in
      let evaluate label track =
        let report =
          Streaming.Playback.run_with_registers ~device ~quality
            ~clip_name:profile.Video.Profile.name ~fps:sweep_fps
            ~annotation_bytes:(Annotation.Encoding.encoded_size track)
            (Annotation.Track.register_track track)
        in
        Printf.printf "%-22s %-10s %12s %9.1f%% %10d\n" profile.Video.Profile.name
          label
          (match label with
          | "offline" -> "-"
          | _ -> Printf.sprintf "%.1f s"
                   (Annotation.Live.added_latency_s
                      ~lookahead:(int_of_string label) ~fps:sweep_fps))
          (100. *. report.Streaming.Playback.backlight_savings)
          report.Streaming.Playback.switch_count
      in
      evaluate "offline" (Annotation.Annotator.annotate_profiled ~device ~quality profiled);
      List.iter
        (fun lookahead ->
          evaluate (string_of_int lookahead)
            (Annotation.Live.annotate ~lookahead ~device ~quality profiled))
        [ 36; 12; 6 ])
    [ Video.Workloads.themovie; Video.Workloads.returnoftheking ]

(* --- Extension: OLED counter-example ------------------------------------- *)

let oled () =
  section
    "Extension — emissive (OLED) panels invert the trade: compensation costs power";
  let panel = Power.Oled.typical_amoled in
  Printf.printf "%-22s %14s %16s %10s\n" "clip" "original (mJ)" "compensated (mJ)"
    "change";
  rule ();
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:8. profile in
      let track =
        Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip
      in
      let compensated = Annotation.Compensate.clip clip track in
      let original_mj = Power.Oled.clip_energy_mj panel ~fps:8. clip in
      let compensated_mj = Power.Oled.clip_energy_mj panel ~fps:8. compensated in
      Printf.printf "%-22s %14.1f %16.1f %+9.1f%%\n" profile.Video.Profile.name
        original_mj compensated_mj
        (100. *. ((compensated_mj /. original_mj) -. 1.)))
    [
      Video.Workloads.themovie;
      Video.Workloads.catwoman;
      Video.Workloads.ice_age;
    ];
  print_endline
    "\n(an emissive panel has no backlight to dim: showing the brightened\n\
    \ stream raises display power instead of lowering it — the technique\n\
    \ is specific to backlit LCDs, as the paper's power model assumes)"

(* --- Extension: colour-accurate clipping prediction ----------------------- *)

let color_accuracy () =
  section
    "Extension — clipping prediction on saturated colours: luma vs channel-max";
  (* A frame with saturated colour regions: luma says red is dark, but
     its R channel saturates early under compensation. *)
  let img = Image.Raster.create ~width:sweep_width ~height:sweep_height in
  Image.Raster.fill img (Image.Pixel.gray 40);
  Image.Draw.rect img ~x:0 ~y:0 ~w:(sweep_width / 4) ~h:sweep_height
    (Image.Pixel.v 220 30 30);
  Image.Draw.rect img ~x:(sweep_width / 4) ~y:0 ~w:(sweep_width / 4) ~h:sweep_height
    (Image.Pixel.v 30 30 220);
  let luma_hist = Image.Histogram.of_raster img in
  let chan_hist =
    Image.Histogram.of_luminance_plane (Image.Raster.channel_max_plane img)
  in
  Printf.printf "%-8s %16s %18s %14s\n" "gain k" "luma predicts" "channel-max predicts"
    "actual clipped";
  rule ();
  List.iter
    (fun k ->
      let predict hist =
        let threshold = int_of_float (255. /. k) in
        float_of_int (Image.Histogram.samples_above hist threshold)
        /. float_of_int (Image.Histogram.total hist)
      in
      Printf.printf "%-8.2f %15.1f%% %17.1f%% %13.1f%%\n" k
        (100. *. predict luma_hist)
        (100. *. predict chan_hist)
        (100. *. Image.Ops.clipped_fraction ~k img))
    [ 1.2; 1.5; 2.0; 3.0 ];
  print_endline
    "\n(the channel-max histogram predicts actual clipping exactly; the\n\
    \ luma histogram misses saturated colours — on colour content the\n\
    \ annotator should be fed channel-max histograms for its budget)"

(* --- Extension: backlight ramp smoothing ---------------------------------- *)

let ramp () =
  section
    "Extension — slew-limited dimming vs abrupt switching (QABS-style post-pass)";
  Printf.printf "%-22s %12s %14s %14s %14s\n" "clip" "worst step" "smoothed step"
    "extra energy" "(dim step 8/frame)";
  rule ();
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      let track =
        Annotation.Annotator.annotate_profiled ~device
          ~quality:Annotation.Quality_level.Loss_10 profiled
      in
      let registers = Annotation.Track.register_track track in
      let cost = Streaming.Ramp.smoothing_cost ~device ~max_dim_step:8 registers in
      Printf.printf "%-22s %12d %14d %13.2f%%\n" profile.Video.Profile.name
        cost.Streaming.Ramp.original_largest_dim_step
        cost.Streaming.Ramp.smoothed_largest_dim_step
        (100. *. cost.Streaming.Ramp.extra_energy_fraction))
    Video.Workloads.all;
  print_endline
    "\n(smoothing bounds the visible backlight step at a fraction of a\n\
    \ percent of extra energy; the paper instead relies on the scene\n\
    \ hysteresis to keep switches rare)"

(* --- Extension: packet loss and concealment -------------------------------- *)

let loss () =
  section
    "Extension — packet loss, concealment and GOP length (streaming substrate)";
  let profile = Video.Workloads.spiderman2 in
  let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:12. profile in
  Printf.printf "clip %s, loss swept at two GOP lengths\n\n" profile.Video.Profile.name;
  Printf.printf "%-6s %-6s %10s %10s %10s %12s\n" "gop" "loss" "PSNR dB" "concealed"
    "drifted" "stream KB";
  rule ();
  List.iter
    (fun gop ->
      let encoded =
        Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with gop } clip
      in
      let clean = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
      let packetized =
        match Streaming.Transport.packetize encoded with
        | Ok p -> p
        | Error e -> failwith e
      in
      List.iter
        (fun rate ->
          let lost =
            Streaming.Transport.bernoulli_loss ~rate ~seed:99
              ~frames:clip.Video.Clip.frame_count
          in
          lost.(0) <- false (* keep the session bootstrappable *);
          match Streaming.Transport.decode_with_concealment packetized ~lost with
          | Error e -> Printf.printf "%-6d %-6.2f decode failed: %s\n" gop rate e
          | Ok received ->
            Printf.printf "%-6d %-5.0f%% %10.1f %10d %10d %12d\n" gop
              (100. *. rate)
              (Streaming.Transport.mean_psnr
                 ~reference:clean.Codec.Decoder.frames
                 received.Streaming.Transport.pictures)
              received.Streaming.Transport.concealed
              received.Streaming.Transport.drifted
              (Codec.Encoder.total_bytes encoded / 1024))
        [ 0.; 0.01; 0.05; 0.10 ])
    [ 6; 24 ];
  print_endline
    "\n(shorter GOPs spend more bytes on I-frames but stop loss-induced\n\
    \ drift sooner; annotations ride a reliable side channel and stay\n\
    \ valid regardless)"

(* --- Extension: annotation-driven GOP placement --------------------------- *)

let gop_plan () =
  section
    "Extension — scene-aligned I-frames from profiling annotations vs fixed GOP";
  let profile = Video.Workloads.shrek2 in
  let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:12. profile in
  let profiled = Annotation.Annotator.profile clip in
  let scenes =
    Annotation.Scene_detect.segment_with_means Annotation.Scene_detect.default_params
      ~max_track:profiled.Annotation.Annotator.max_track
      ~mean_track:profiled.Annotation.Annotator.mean_track
  in
  let planner =
    Codec.Gop_planner.of_scene_intervals ~max_interval:48
      ~frame_count:clip.Video.Clip.frame_count
      (List.map
         (fun (s : Annotation.Scene_detect.scene) ->
           (s.Annotation.Scene_detect.first, s.Annotation.Scene_detect.last))
         scenes)
  in
  let fixed =
    Codec.Encoder.encode_clip
      ~params:{ Codec.Stream.default_params with gop = 48 } clip
  in
  let aligned =
    Codec.Encoder.encode_clip
      ~params:{ Codec.Stream.default_params with gop = 48 }
      ~i_frame_at:(Codec.Gop_planner.i_frame_at planner) clip
  in
  let i_count e =
    Array.fold_left
      (fun acc t -> if t = Codec.Stream.I_frame then acc + 1 else acc)
      0 e.Codec.Encoder.frame_types
  in
  let drift e =
    match Streaming.Transport.packetize e with
    | Error msg -> failwith msg
    | Ok packetized ->
      let lost =
        Streaming.Transport.bernoulli_loss ~rate:0.05 ~seed:7
          ~frames:clip.Video.Clip.frame_count
      in
      lost.(0) <- false;
      (match Streaming.Transport.decode_with_concealment packetized ~lost with
      | Error msg -> failwith msg
      | Ok received -> received.Streaming.Transport.drifted)
  in
  Printf.printf "%-14s %10s %10s %18s\n" "placement" "I-frames" "bytes"
    "drift @5% loss";
  rule ();
  Printf.printf "%-14s %10d %10d %18d\n" "fixed-48" (i_count fixed)
    (Codec.Encoder.total_bytes fixed) (drift fixed);
  Printf.printf "%-14s %10d %10d %18d\n" "scene-aligned" (i_count aligned)
    (Codec.Encoder.total_bytes aligned) (drift aligned);
  print_endline
    "\n(the profile the server computes anyway tells the encoder where\n\
    \ prediction will fail: I-frames land on scene cuts, paying bytes\n\
    \ where P-frames were expensive and stopping loss drift at cuts)"

(* --- Extension: FEC for the annotation side channel ----------------------- *)

let fec () =
  section
    "Extension — annotation side-channel survival under packet loss (XOR FEC)";
  let profiled = profiled_workload Video.Workloads.returnoftheking in
  let track =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
      profiled
  in
  let payload = Annotation.Encoding.encode track in
  (* Small packets so a tiny track still spans a few packets; the
     parity cost remains tens of bytes either way. *)
  let protected_payload = Streaming.Fec.protect ~packet_size:24 ~group_size:3 payload in
  Printf.printf "annotation track: %d bytes in %d packets (+%.0f%% parity)\n\n"
    (String.length payload)
    (Array.length protected_payload.Streaming.Fec.packets)
    (100. *. Streaming.Fec.overhead_ratio protected_payload);
  let trials = 2000 in
  Printf.printf "%-8s %20s %20s\n" "loss" "unprotected survives" "protected survives";
  rule ();
  List.iter
    (fun rate ->
      let survived_plain = ref 0 and survived_fec = ref 0 in
      for seed = 1 to trials do
        let present = Streaming.Fec.transmit protected_payload ~rate ~seed in
        (* Unprotected: every data packet must arrive. *)
        let data_ok = ref true in
        for i = 0 to protected_payload.Streaming.Fec.data_packets - 1 do
          if present.(i) = None then data_ok := false
        done;
        if !data_ok then incr survived_plain;
        if Streaming.Fec.recover protected_payload ~present = Ok payload then
          incr survived_fec
      done;
      Printf.printf "%-7.0f%% %19.1f%% %19.1f%%\n" (100. *. rate)
        (100. *. float_of_int !survived_plain /. float_of_int trials)
        (100. *. float_of_int !survived_fec /. float_of_int trials))
    [ 0.01; 0.05; 0.10; 0.20 ]

(* --- Extension: resilience sweep ------------------------------------------- *)

(* Rows land in BENCH_report.json (see report_obs) so the sweep is
   reviewable without re-running the bench. *)
let resilience_rows : Obs.Json.t list ref = ref []

let resilience () =
  section
    "Extension — resilience: savings vs burst length at fixed 10% mean loss";
  (* A short clip with several distinct scenes, so losing one FEC group
     degrades some scenes while the rest keep dimming. Small frames:
     the sweep runs dozens of full sessions. *)
  let profile =
    let scene level =
      Video.Profile.scene ~seconds:0.75 ~noise_sigma:0. (Video.Profile.Flat level)
    in
    {
      Video.Profile.name = "resilience-sweep";
      seed = 11;
      scenes = [ scene 40; scene 200; scene 60; scene 180; scene 50; scene 220 ];
    }
  in
  let clip = Video.Clip_gen.render ~width:64 ~height:48 ~fps:8. profile in
  let seeds = 20 in
  let clean =
    match
      Streaming.Session.run
        { (Streaming.Session.default_config ~device) with
          Streaming.Session.fault = Some Streaming.Fault.none }
        clip
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "clip %s: clean-channel backlight savings %.1f%%, %d seeds per row\n\n"
    clip.Video.Clip.name
    (100. *. clean.Streaming.Session.backlight_savings)
    seeds;
  Printf.printf "%-8s | %-32s | %-32s\n" ""
    "no retransmission budget" "40 ms NACK budget";
  Printf.printf "%-8s | %9s %9s %10s | %9s %9s %10s\n" "burst" "survived"
    "degraded" "savings" "survived" "degraded" "savings";
  rule ();
  let sweep_row burst =
    let fault =
      if burst <= 1. then Streaming.Fault.bernoulli ~rate:0.10
      else Streaming.Fault.gilbert ~mean_loss:0.10 ~burst_length:burst ()
    in
    let run ~budget =
      let survived = ref 0 and degraded = ref 0 and savings = ref 0. in
      for seed = 1 to seeds do
        match
          Streaming.Session.run
            { (Streaming.Session.default_config ~device) with
              Streaming.Session.fault = Some fault;
              nack_budget_s = budget;
              seed }
            clip
        with
        | Error e -> failwith e
        | Ok r ->
          if r.Streaming.Session.annotations_survived then incr survived;
          degraded := !degraded + r.Streaming.Session.degraded_scenes;
          savings := !savings +. r.Streaming.Session.backlight_savings
      done;
      ( 100. *. float_of_int !survived /. float_of_int seeds,
        float_of_int !degraded /. float_of_int seeds,
        100. *. !savings /. float_of_int seeds )
    in
    let s0, d0, v0 = run ~budget:0. in
    let s1, d1, v1 = run ~budget:0.04 in
    Printf.printf "%-8.0f | %8.0f%% %9.2f %9.1f%% | %8.0f%% %9.2f %9.1f%%\n" burst
      s0 d0 v0 s1 d1 v1;
    let record nack v =
      Obs.Metrics.Gauge.set
        (Obs.Registry.gauge
           ~help:"mean backlight savings under the resilience sweep"
           "bench_resilience_savings_pct"
           [ ("burst", Printf.sprintf "%.0f" burst); ("nack", nack) ])
        v
    in
    record "0ms" v0;
    record "40ms" v1;
    resilience_rows :=
      !resilience_rows
      @ [
          Obs.Json.Obj
            [
              ("burst_length", Obs.Json.Float burst);
              ("mean_loss", Obs.Json.Float 0.10);
              ("seeds", Obs.Json.Int seeds);
              ( "no_nack",
                Obs.Json.Obj
                  [
                    ("survived_pct", Obs.Json.Float s0);
                    ("mean_degraded_scenes", Obs.Json.Float d0);
                    ("mean_backlight_savings_pct", Obs.Json.Float v0);
                  ] );
              ( "nack_40ms",
                Obs.Json.Obj
                  [
                    ("survived_pct", Obs.Json.Float s1);
                    ("mean_degraded_scenes", Obs.Json.Float d1);
                    ("mean_backlight_savings_pct", Obs.Json.Float v1);
                  ] );
              ( "clean_savings_pct",
                Obs.Json.Float (100. *. clean.Streaming.Session.backlight_savings)
              );
            ];
        ]
  in
  List.iter sweep_row [ 1.; 2.; 4.; 8.; 16. ];
  print_endline
    "\n(at fixed mean loss, longer bursts concentrate damage into whole\n\
    \ FEC groups: group repair fails more often, but per-scene\n\
    \ degradation keeps the surviving scenes dimmed where the old\n\
    \ whole-clip fallback would have thrown every scene away; the NACK\n\
    \ budget buys back most of the losses at every burst length)"

(* --- Extension: multicore annotation farm ---------------------------------- *)

(* Largest domain count the [parallel] experiment sweeps; override
   with [--jobs N] on the bench command line. Speedup above 1x needs a
   multi-core host — the row records what the host offers so a 1-core
   CI run is readable as such. *)
let bench_jobs = ref 4

let parallel_rows : Obs.Json.t list ref = ref []

let parallel () =
  section
    "Extension — multicore annotation farm: profile speedup vs domains, \
     prepared-stream cache";
  let clip = render_workload Video.Workloads.returnoftheking in
  (* Best of three keeps scheduler noise out of the speedup column. *)
  let time_best f =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let t0 = Obs.Clock.now_ns () in
      let r = f () in
      let ms = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0) *. 1e3 in
      if ms < !best then best := ms;
      result := Some r
    done;
    match !result with Some r -> (r, !best) | None -> assert false
  in
  let encoded profiled =
    Annotation.Encoding.encode
      (Annotation.Annotator.annotate_profiled ~device
         ~quality:Annotation.Quality_level.Loss_10 profiled)
  in
  let seq, seq_ms = time_best (fun () -> Annotation.Annotator.profile clip) in
  let seq_bytes = encoded seq in
  let domains =
    let rec up d acc =
      if d >= !bench_jobs then List.rev (!bench_jobs :: acc)
      else up (d * 2) (d :: acc)
    in
    up 1 []
  in
  Printf.printf
    "clip %s (%d frames at %dx%d); host offers %d domains, sweeping up to %d\n\n"
    clip.Video.Clip.name clip.Video.Clip.frame_count sweep_width sweep_height
    (Par.Pool.recommended ()) !bench_jobs;
  Printf.printf "%-8s %12s %9s %12s\n" "domains" "profile ms" "speedup"
    "bytes equal";
  rule ();
  let profile_rows =
    List.map
      (fun jobs ->
        let profiled, ms =
          if jobs = 1 then (seq, seq_ms)
          else
            Par.Pool.with_pool ~domains:jobs (fun pool ->
                time_best (fun () -> Annotation.Annotator.profile ~pool clip))
        in
        (* The tentpole invariant: parallelism must not change a byte. *)
        if not (String.equal (encoded profiled) seq_bytes) then
          failwith
            (Printf.sprintf
               "parallel profiling diverged from sequential at %d domains" jobs);
        let speedup = seq_ms /. ms in
        Printf.printf "%-8d %12.2f %8.2fx %12s\n" jobs ms speedup "yes";
        Obs.Metrics.Gauge.set
          (Obs.Registry.gauge
             ~help:"profile-phase speedup over a one-domain run"
             "bench_parallel_profile_speedup"
             [ ("domains", string_of_int jobs) ])
          speedup;
        Obs.Json.Obj
          [
            ("domains", Obs.Json.Int jobs);
            ("profile_ms", Obs.Json.Float ms);
            ("speedup_vs_1", Obs.Json.Float speedup);
            ("bytes_equal", Obs.Json.Bool true);
          ])
      domains
  in
  (* The prepared-stream cache under a batched fan-out: first batch
     builds every stream, the rerun is pure cache hits. *)
  let server = Streaming.Server.create () in
  let clip2 = render_workload Video.Workloads.themovie in
  Streaming.Server.add_clip server clip;
  Streaming.Server.add_clip server clip2;
  let session quality mapping =
    { Streaming.Negotiation.device; quality; mapping }
  in
  let specs =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun q ->
            [
              (name, session q Streaming.Negotiation.Server_side);
              (name, session q Streaming.Negotiation.Client_side);
            ])
          [ Annotation.Quality_level.Loss_5; Annotation.Quality_level.Loss_10 ])
      [ clip.Video.Clip.name; clip2.Video.Clip.name ]
  in
  let run_batch () =
    if !bench_jobs = 1 then Streaming.Server.prepare_many server specs
    else
      Par.Pool.with_pool ~domains:!bench_jobs (fun pool ->
          Streaming.Server.prepare_many ~pool server specs)
  in
  let annotation_bytes batch =
    List.map
      (function
        | Ok p -> p.Streaming.Server.annotation_bytes
        | Error e -> failwith ("prepare_many: " ^ e))
      batch
  in
  let first = annotation_bytes (run_batch ()) in
  let h1, m1 = Streaming.Server.cache_stats server in
  let rerun = annotation_bytes (run_batch ()) in
  let h2, m2 = Streaming.Server.cache_stats server in
  if not (List.equal String.equal first rerun) then
    failwith "cached prepare returned different annotation bytes";
  Printf.printf
    "\nprepared %d (clip x session) specs twice: %d misses then %d hits \
     (%d streams cached)\n"
    (List.length specs) m1 (h2 - h1)
    (Streaming.Server.cache_size server);
  if m2 <> m1 then failwith "cache rerun was expected to miss nothing";
  parallel_rows :=
    [
      Obs.Json.Obj
        [
          ("host_domains", Obs.Json.Int (Par.Pool.recommended ()));
          ("clip", Obs.Json.String clip.Video.Clip.name);
          ("frames", Obs.Json.Int clip.Video.Clip.frame_count);
          ("profile", Obs.Json.List profile_rows);
          ( "prepared_cache",
            Obs.Json.Obj
              [
                ("specs", Obs.Json.Int (List.length specs));
                ("first_pass_misses", Obs.Json.Int m1);
                ("rerun_hits", Obs.Json.Int (h2 - h1));
                ("cached_streams", Obs.Json.Int (Streaming.Server.cache_size server));
                ("bytes_equal", Obs.Json.Bool true);
              ] );
        ];
    ];
  print_endline
    "\n(the domain pool splits the per-frame histogram pass; chunking is a\n\
    \ pure function of the frame count, so any domain count produces the\n\
    \ same track byte for byte — speedup needs a multi-core host)"

(* --- Extension: savings vs content brightness ----------------------------- *)

let content_sweep () =
  section
    "Extension — backlight savings vs content brightness (the technique's knee)";
  Printf.printf "%-12s %-12s" "base level" "mean luma";
  List.iter (fun q -> Printf.printf "%8s" (Annotation.Quality_level.label q)) quality_columns;
  print_newline ();
  rule ();
  List.iter
    (fun base_level ->
      let profile =
        Video.Workloads.parametric ~seconds:6. ~base_level ~highlight_peak:200 ()
      in
      let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:8. profile in
      let profiled = Annotation.Annotator.profile clip in
      let mean_luma =
        Array.fold_left ( +. ) 0. profiled.Annotation.Annotator.mean_track
        /. float_of_int profiled.Annotation.Annotator.total_frames
      in
      Printf.printf "%-12d %-12.0f" base_level mean_luma;
      List.iter
        (fun q ->
          let report = Streaming.Playback.run_profiled ~device ~quality:q profiled in
          Printf.printf "%7.1f%%" (100. *. report.Streaming.Playback.backlight_savings))
        quality_columns;
      print_newline ())
    [ 10; 30; 60; 90; 120; 150; 180; 210; 240 ];
  print_endline
    "\n(savings collapse once the background itself approaches full\n\
    \ luminance — the ice_age/hunter_subres regime of Fig 9)"

(* --- Extension: HEBS-style tone-mapping baseline --------------------------- *)

let hebs () =
  section
    "Extension — histogram-equalisation backlight scaling (HEBS/DTM family) vs \
     the paper's clipping";
  Printf.printf "%-22s | %-19s | %-19s | %-19s\n" "" "paper (10% clip)"
    "HEBS lambda 0.5" "HEBS lambda 1.0";
  Printf.printf "%-22s | %9s %9s | %9s %9s | %9s %9s\n" "clip" "savings" "error"
    "savings" "error" "savings" "error";
  rule ();
  List.iter
    (fun profile ->
      let profiled = profiled_workload profile in
      let hist = Image.Histogram.create () in
      Array.iter (fun h -> Image.Histogram.merge_into ~dst:hist h)
        profiled.Annotation.Annotator.histograms;
      let paper =
        Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Loss_10
          Annotation.Operator.Contrast_enhancement hist
      in
      let hebs_05 = Baselines.Hebs.solve ~device ~lambda:0.5 hist in
      let hebs_10 = Baselines.Hebs.solve ~device ~lambda:1.0 hist in
      let savings register = 100. *. (1. -. (float_of_int register /. 255.)) in
      Printf.printf "%-22s | %8.1f%% %9.4f | %8.1f%% %9.4f | %8.1f%% %9.4f\n"
        profile.Video.Profile.name
        (savings paper.Annotation.Operator.register)
        paper.Annotation.Operator.mean_error
        (savings hebs_05.Baselines.Hebs.register)
        hebs_05.Baselines.Hebs.mean_error
        (savings hebs_10.Baselines.Hebs.register)
        hebs_10.Baselines.Hebs.mean_error)
    [
      Video.Workloads.returnoftheking;
      Video.Workloads.officexp;
      Video.Workloads.hunter_subres;
      Video.Workloads.ice_age;
    ];
  print_endline
    "\n(full equalisation out-dims the paper's scheme on very dark clips,\n\
    \ but at 4-5x its distortion; on bright content equalisation darkens\n\
    \ the mid-tones, the brightness-preserving constraint then forbids\n\
    \ dimming, and HEBS pays distortion for nothing — the paper's\n\
    \ clipping scheme stays exact outside the sanctioned tail)"

(* --- Extension: full-session combined savings ------------------------------ *)

let session () =
  section
    "Extension — full sessions: all three annotation applications combined";
  Printf.printf "%-22s %10s %8s %8s %8s %10s %10s\n" "clip" "backlight" "cpu"
    "radio" "device" "PSNR dB" "annot";
  rule ();
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:12. profile in
      let config =
        { (Streaming.Session.default_config ~device) with
          Streaming.Session.loss_rate = 0.01 }
      in
      match Streaming.Session.run config clip with
      | Error e -> Printf.printf "%-22s failed: %s\n" profile.Video.Profile.name e
      | Ok r ->
        Printf.printf "%-22s %9.1f%% %7.1f%% %7.1f%% %7.1f%% %10.1f %9dB\n"
          profile.Video.Profile.name
          (100. *. r.Streaming.Session.backlight_savings)
          (100. *. r.Streaming.Session.cpu_savings)
          (100. *. r.Streaming.Session.radio_savings)
          (100. *. r.Streaming.Session.device_savings)
          r.Streaming.Session.video_mean_psnr r.Streaming.Session.annotation_bytes)
    [
      Video.Workloads.themovie;
      Video.Workloads.returnoftheking;
      Video.Workloads.ice_age;
      Video.Workloads.officexp;
    ];
  print_endline
    "\n(1% packet loss on the hop; annotations FEC-protected; the device\n\
    \ column is whole-device energy vs full backlight + full CPU speed +\n\
    \ always-on radio)"

(* --- Bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let frame =
    let img = Image.Raster.create ~width:sweep_width ~height:sweep_height in
    Image.Draw.fill_vertical_gradient img ~top:(Image.Pixel.gray 20)
      ~bottom:(Image.Pixel.gray 180);
    img
  in
  let hist = Image.Histogram.of_raster frame in
  let max_track = Array.init 600 (fun i -> 40 + (i * 97 mod 180)) in
  let block =
    let rng = Image.Prng.create ~seed:3 in
    Array.init 64 (fun _ -> float_of_int (Image.Prng.int rng 256))
  in
  let tests =
    [
      Test.make ~name:"histogram/of_raster (160x120)"
        (Staged.stage (fun () -> ignore (Image.Histogram.of_raster frame)));
      Test.make ~name:"ops/contrast_enhance (160x120)"
        (Staged.stage (fun () -> ignore (Image.Ops.contrast_enhance ~k:1.7 frame)));
      Test.make ~name:"scene_detect/segment (600 frames)"
        (Staged.stage (fun () ->
             ignore (Annotation.Scene_detect.segment Annotation.Scene_detect.default_params max_track)));
      Test.make ~name:"solver/solve"
        (Staged.stage (fun () ->
             ignore
               (Annotation.Backlight_solver.solve ~device
                  ~quality:Annotation.Quality_level.Loss_10 hist)));
      Test.make ~name:"dct/forward+inverse"
        (Staged.stage (fun () -> ignore (Codec.Dct.inverse (Codec.Dct.forward block))));
      Test.make ~name:"transfer/inverse"
        (Staged.stage (fun () ->
             ignore (Display.Device.register_for_gain device 0.37)));
      Test.make ~name:"metrics/ssim (160x120)"
        (Staged.stage (fun () -> ignore (Image.Metrics.ssim frame frame)));
      Test.make ~name:"deblock/filter (160x120)"
        (Staged.stage (fun () -> ignore (Codec.Deblock.filter frame)));
      Test.make ~name:"histogram/emd"
        (Staged.stage (fun () ->
             ignore (Image.Histogram.earth_movers_distance hist hist)));
      Test.make ~name:"encoding/annotation track"
        (Staged.stage
           (let track =
              Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10
                (Video.Clip_gen.render ~width:32 ~height:24 ~fps:8.
                   Video.Workloads.officexp)
            in
            fun () -> ignore (Annotation.Encoding.encode track)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let results = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
        | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
      ols
  in
  List.iter benchmark tests

(* --- Extension: E17 energy attribution + regression gate ------------------- *)

(* Rows for the report's "energy" section; the regression gate diffs
   them against BENCH_baseline.json. *)
let energy_rows : Obs.Json.t list ref = ref []

(* Synthetic energy regression in percent, injected at reporting time
   by [--inject-regression] so `make check` can prove the gate trips
   on drift without touching the simulator. *)
let inject_regression_pct = ref 0.

(* Top-level run summary for BENCH_report.json: headline savings and
   throughput. [savings_pct] is deterministic and gated with the usual
   half-point tolerance; [frames_per_s] is wall-clock and gated
   presence-only (see [metric_ok]). *)
let energy_summary : (string * Obs.Json.t) list ref = ref []

let energy () =
  section "Extension — E17: energy attribution (joules per stage/scene/component)";
  let profiler = Obs.Profile.create () in
  Obs.Profile.install profiler;
  Fun.protect ~finally:Obs.Profile.uninstall @@ fun () ->
  (* One journal across all four sessions: the sample exercises the
     per-session timestamp reset the verifier checks (V406), and its
     size answers "what does the flight recorder cost at rest". *)
  let journal = Obs.Journal.create () in
  Obs.Journal.install journal;
  Fun.protect ~finally:Obs.Journal.uninstall @@ fun () ->
  let clips =
    [
      Video.Workloads.themovie;
      Video.Workloads.returnoftheking;
      Video.Workloads.ice_age;
      Video.Workloads.officexp;
    ]
  in
  Printf.printf "%-18s %12s %12s %9s %11s %7s %7s %8s %8s\n" "clip" "device mJ"
    "baseline mJ" "saved" "backlight" "cpu" "radio" "jrnl ev" "jrnl B";
  rule ();
  let t0 = Obs.Clock.now_ns () in
  let sum_savings_pct = ref 0. and total_frames = ref 0 in
  List.iter
    (fun profile ->
      let name = profile.Video.Profile.name in
      let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:12. profile in
      let before = Obs.Profile.by_component profiler in
      let journal_ev0 = Obs.Journal.length journal in
      let journal_b0 = Obs.Journal.size_bytes journal in
      let report =
        Obs.Trace.with_span ("clip." ^ name) @@ fun () ->
        match
          Streaming.Session.run
            { (Streaming.Session.default_config ~device) with
              Streaming.Session.loss_rate = 0.01 }
            clip
        with
        | Ok r -> r
        | Error e -> failwith e
      in
      let after = Obs.Profile.by_component profiler in
      (* This clip's share of each component: the profiler accumulates
         across clips, so diff the totals around the run. *)
      let components =
        List.map
          (fun (c, v) ->
            let v0 =
              match List.assoc_opt c before with Some v0 -> v0 | None -> 0.
            in
            (c, v -. v0))
          after
      in
      (* Joules per pipeline stage, from the attribution hierarchy:
         group this clip's stacks by their innermost session.* span.
         Today all metered energy lands under session.playback; the
         grouping picks up new metered stages automatically. *)
      let stages =
        List.filter_map
          (fun (path, mj) ->
            if List.mem ("clip." ^ name) path then
              let stage =
                List.fold_left
                  (fun acc seg ->
                    if String.length seg > 8 && String.sub seg 0 8 = "session." then
                      seg
                    else acc)
                  "(unattributed)" path
              in
              Some (stage, mj)
            else None)
          (Obs.Profile.stacks profiler)
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.fold_left
             (fun acc (stage, mj) ->
               match acc with
               | (s, v) :: rest when s = stage -> (s, v +. mj) :: rest
               | _ -> (stage, mj) :: acc)
             []
        |> List.rev
      in
      let scale = 1. +. (!inject_regression_pct /. 100.) in
      let device_mj = report.Streaming.Session.device_energy_mj *. scale in
      let baseline_mj = report.Streaming.Session.baseline_energy_mj in
      let device_savings_pct = 100. *. (baseline_mj -. device_mj) /. baseline_mj in
      (* This clip's share of the shared journal: both counts are pure
         functions of the session, so the gate compares them exactly. *)
      let journal_events = Obs.Journal.length journal - journal_ev0 in
      let journal_bytes = Obs.Journal.size_bytes journal - journal_b0 in
      sum_savings_pct := !sum_savings_pct +. device_savings_pct;
      total_frames := !total_frames + report.Streaming.Session.frames;
      Printf.printf "%-18s %12.1f %12.1f %8.1f%% %10.1f%% %6.1f%% %6.1f%% %8d %8d\n"
        name device_mj baseline_mj device_savings_pct
        (100. *. report.Streaming.Session.backlight_savings)
        (100. *. report.Streaming.Session.cpu_savings)
        (100. *. report.Streaming.Session.radio_savings)
        journal_events journal_bytes;
      energy_rows :=
        !energy_rows
        @ [
            Obs.Json.Obj
              [
                ("clip", Obs.Json.String name);
                ("frames", Obs.Json.Int report.Streaming.Session.frames);
                ("device_energy_mj", Obs.Json.Float device_mj);
                ("baseline_energy_mj", Obs.Json.Float baseline_mj);
                ("device_savings_pct", Obs.Json.Float device_savings_pct);
                ( "backlight_savings_pct",
                  Obs.Json.Float (100. *. report.Streaming.Session.backlight_savings)
                );
                ( "cpu_savings_pct",
                  Obs.Json.Float (100. *. report.Streaming.Session.cpu_savings) );
                ( "radio_savings_pct",
                  Obs.Json.Float (100. *. report.Streaming.Session.radio_savings) );
                ("journal_events", Obs.Json.Int journal_events);
                ("journal_bytes", Obs.Json.Int journal_bytes);
                ( "components_mj",
                  Obs.Json.Obj
                    (List.map (fun (c, v) -> (c, Obs.Json.Float v)) components) );
                ( "stages_mj",
                  Obs.Json.Obj
                    (List.map (fun (s, v) -> (s, Obs.Json.Float v)) stages) );
              ];
          ])
    clips;
  let wall_s = Float.max 1e-9 (Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0)) in
  energy_summary :=
    [
      ( "savings_pct",
        Obs.Json.Float (!sum_savings_pct /. float_of_int (List.length clips)) );
      ("frames_per_s", Obs.Json.Float (float_of_int !total_frames /. wall_s));
    ];
  Obs.Journal.write journal ~path:"BENCH_session.journal";
  Printf.printf
    "\nwrote BENCH_session.journal (%d sessions, %d events, %d bytes — read \
     back with `inspect timeline`, audit with `lint verify`)\n"
    (List.length clips) (Obs.Journal.length journal)
    (Obs.Journal.size_bytes journal);
  Obs.write_file ~path:"BENCH_energy.folded" (Obs.Profile.flamegraph profiler);
  Printf.printf
    "\nwrote BENCH_energy.folded (collapsed stacks, microjoules — render \
     with flamegraph.pl or speedscope)\n";
  Format.printf "@.%a@." Obs.Profile.pp_summary profiler

(* --- Extension: E19 resilience ladder (chaos sweep) ------------------------ *)

(* Rows for the report's "resilience_ladder" section; the regression
   gate diffs them against BENCH_baseline.json alongside the energy
   rows. Every count is a pure function of the seeds, so the gate
   compares them exactly. *)
let resilience_ladder_rows : Obs.Json.t list ref = ref []

let resilience_ladder () =
  section
    "Extension — E19: degradation ladder under chaos (zero-abort sweep)";
  (* The two shipped control planes, inline so the bench does not
     depend on its working directory. Kept equivalent to
     examples/default.resilience and examples/aggressive.resilience;
     the gate pins the resulting behaviour either way. *)
  let parse_profile text =
    match Resilience.Profile.parse text with
    | Ok p -> p
    | Error e -> failwith ("resilience ladder: bad inline profile: " ^ e)
  in
  let default_profile =
    parse_profile
      "retry_budget_s = 0.04\n\
       retry_base_s = 0.002\n\
       retry_multiplier = 2.0\n\
       retry_jitter = 0.0\n\
       retry_max_rounds = 16\n\
       breaker_threshold = 0.5\n\
       breaker_window = 8\n\
       breaker_min_samples = 4\n\
       breaker_cooldown_ms = 10\n\
       breaker_probes = 2\n\
       bulkhead_capacity = 2\n\
       bulkhead_queue = 2\n\
       ladder = fresh, stale, clamp, full\n\
       stage_deadline_ms = 40\n"
  in
  let aggressive_profile =
    parse_profile
      "retry_budget_s = 0.02\n\
       retry_base_s = 0.001\n\
       retry_multiplier = 3.0\n\
       retry_max_rounds = 6\n\
       breaker_threshold = 0.25\n\
       breaker_window = 4\n\
       breaker_min_samples = 2\n\
       breaker_cooldown_ms = 20\n\
       breaker_probes = 1\n\
       bulkhead_capacity = 1\n\
       bulkhead_queue = 0\n\
       ladder = fresh, clamp, full\n\
       stage_deadline_ms = 20\n"
  in
  (* examples/chaos.fault, inline: bursty loss, byte corruption, late
     arrivals, jitter, and a mid-stream bandwidth collapse. *)
  let fault =
    {
      (Streaming.Fault.gilbert ~mean_loss:0.08 ~burst_length:3. ()) with
      Streaming.Fault.corrupt_rate = 0.002;
      reorder_rate = 0.02;
      jitter_s = 0.005;
      collapse = Some { Streaming.Fault.at_fraction = 0.5; factor = 0.25 };
    }
  in
  let clip_profile =
    let scene level =
      Video.Profile.scene ~seconds:0.75 ~noise_sigma:0. (Video.Profile.Flat level)
    in
    {
      Video.Profile.name = "ladder-chaos";
      seed = 23;
      scenes = [ scene 45; scene 210; scene 70; scene 190; scene 55; scene 230 ];
    }
  in
  let clip = Video.Clip_gen.render ~width:64 ~height:48 ~fps:8. clip_profile in
  let seeds = 50 in
  Printf.printf
    "%d seeds per profile under gilbert(8%%, burst 3) + corrupt + reorder + \
     collapse\n\n"
    seeds;
  Printf.printf "%-18s %6s %8s %6s %6s %5s %7s %5s %6s %8s\n" "profile" "abort"
    "survived" "stale" "clamp" "full" "breaker" "wdog" "replay" "savings";
  rule ();
  (* One sweep per profile. [with_stale] prepares the same clip through
     a server at the most conservative quality, guarded by the
     profile's bulkhead — exactly what the CLIs do for the stale rung;
     done inside the journal so the admission verdict lands in the
     artifact. [journal_path] writes the sweep's combined journal. *)
  let sweep ~label ~profile ~with_stale ~journal_path =
    let journal = Obs.Journal.create () in
    Obs.Journal.install journal;
    let stale = ref None in
    let aborts = ref 0 and survived = ref 0 in
    let sum_savings = ref 0. and sum_degraded = ref 0 in
    let config seed =
      {
        (Streaming.Session.default_config ~device) with
        Streaming.Session.fault = Some fault;
        nack_budget_s = 0.04;
        resilience = Some profile;
        stale_track = !stale;
        seed;
      }
    in
    Fun.protect ~finally:Obs.Journal.uninstall (fun () ->
        if with_stale then begin
          let server = Streaming.Server.create () in
          Streaming.Server.add_clip server clip;
          let bulkhead =
            Option.map
              (fun cfg ->
                Resilience.Bulkhead.create ~config:cfg ~name:"prepare" ())
              profile.Resilience.Profile.bulkhead
          in
          match
            Streaming.Negotiation.negotiate
              {
                Streaming.Negotiation.device;
                requested_quality = Annotation.Quality_level.of_percent 0.;
              }
          with
          | Error e -> failwith e
          | Ok session -> (
            match
              Streaming.Server.prepare ?bulkhead server
                ~name:clip.Video.Clip.name ~session
            with
            | Ok prep -> stale := Some prep.Streaming.Server.track
            | Error e -> failwith e)
        end;
        for seed = 1 to seeds do
          match Streaming.Session.run (config seed) clip with
          | Ok r ->
            if r.Streaming.Session.annotations_survived then incr survived;
            sum_savings :=
              !sum_savings +. r.Streaming.Session.backlight_savings;
            sum_degraded := !sum_degraded + r.Streaming.Session.degraded_scenes
          | Error e ->
            incr aborts;
            Printf.printf "  seed %d ABORTED: %s\n" seed e
        done);
    (* Control-plane events the sweep journaled, by kind. *)
    let stale_steps = ref 0 and clamp_steps = ref 0 and full_steps = ref 0 in
    let breaker_transitions = ref 0 and watchdog_trips = ref 0 in
    let bulkhead_sheds = ref 0 in
    List.iter
      (fun (e : Obs.Journal.event) ->
        match e.Obs.Journal.kind with
        | Obs.Journal.Ladder_step { depth = 1; _ } -> incr stale_steps
        | Obs.Journal.Ladder_step { depth = 2; _ } -> incr clamp_steps
        | Obs.Journal.Ladder_step _ -> incr full_steps
        | Obs.Journal.Breaker_transition _ -> incr breaker_transitions
        | Obs.Journal.Watchdog_trip _ -> incr watchdog_trips
        | Obs.Journal.Bulkhead_decision { decision = "shed"; _ } ->
          incr bulkhead_sheds
        | _ -> ())
      (Obs.Journal.events journal);
    (* Determinism: equal seeds must journal byte-identically. *)
    let replay_seeds = [ 1; 17; 42 ] in
    let replay_mismatches = ref 0 in
    List.iter
      (fun seed ->
        let run_once () =
          let j = Obs.Journal.create () in
          Obs.Journal.install j;
          Fun.protect ~finally:Obs.Journal.uninstall (fun () ->
              match Streaming.Session.run (config seed) clip with
              | Ok _ -> ()
              | Error e -> failwith e);
          Obs.Journal.to_string j
        in
        if not (String.equal (run_once ()) (run_once ())) then begin
          incr replay_mismatches;
          Printf.printf "  seed %d: equal-seed journals DIVERGED\n" seed
        end)
      replay_seeds;
    (match journal_path with
    | None -> ()
    | Some path -> Obs.Journal.write journal ~path);
    Printf.printf "%-18s %6d %8d %6d %6d %5d %7d %5d %3d/%-2d %7.1f%%\n" label
      !aborts !survived !stale_steps !clamp_steps !full_steps
      !breaker_transitions !watchdog_trips
      (List.length replay_seeds - !replay_mismatches)
      (List.length replay_seeds)
      (100. *. !sum_savings /. float_of_int seeds);
    resilience_ladder_rows :=
      !resilience_ladder_rows
      @ [
          Obs.Json.Obj
            [
              ("clip", Obs.Json.String label);
              ("seeds", Obs.Json.Int seeds);
              ("aborts", Obs.Json.Int !aborts);
              ("survived_sessions", Obs.Json.Int !survived);
              ("ladder_steps_stale", Obs.Json.Int !stale_steps);
              ("ladder_steps_clamp", Obs.Json.Int !clamp_steps);
              ("ladder_steps_full", Obs.Json.Int !full_steps);
              ("breaker_transitions", Obs.Json.Int !breaker_transitions);
              ("watchdog_trips", Obs.Json.Int !watchdog_trips);
              ("bulkhead_sheds", Obs.Json.Int !bulkhead_sheds);
              ("journal_events", Obs.Json.Int (Obs.Journal.length journal));
              ("journal_bytes", Obs.Json.Int (Obs.Journal.size_bytes journal));
              ("replay_seeds", Obs.Json.Int (List.length replay_seeds));
              ("replay_mismatches", Obs.Json.Int !replay_mismatches);
              ( "mean_backlight_savings_pct",
                Obs.Json.Float (100. *. !sum_savings /. float_of_int seeds) );
              ( "mean_degraded_scenes",
                Obs.Json.Float
                  (float_of_int !sum_degraded /. float_of_int seeds) );
            ];
        ];
    (Obs.Journal.length journal, Obs.Journal.size_bytes journal)
  in
  let events, bytes =
    sweep ~label:"ladder-default" ~profile:default_profile ~with_stale:true
      ~journal_path:(Some "BENCH_ladder.journal")
  in
  let _ =
    sweep ~label:"ladder-aggressive" ~profile:aggressive_profile
      ~with_stale:false ~journal_path:None
  in
  Printf.printf
    "\nwrote BENCH_ladder.journal (%d events, %d bytes — read back with \
     `inspect timeline`, audit with `lint verify`)\n"
    events bytes;
  print_endline
    "\n(the default plane absorbs chaos at the stale rung — an earlier\n\
    \ prepared track covers the dead scenes; the aggressive plane skips\n\
    \ stale, so the same damage walks through clamp to full backlight,\n\
    \ and its tighter breaker opens on the NACK loop instead of retrying)"

(* --- Extension: E20 fleet-scale scheduler ---------------------------------- *)

(* Rows for the report's "fleet" section; everything except the
   wall-clock throughput column is a pure function of the seeds, so
   the gate compares it exactly. *)
let fleet_rows : Obs.Json.t list ref = ref []

let fleet_bench () =
  section "Extension — E20: fleet-scale streaming fabric (shard scheduler)";
  (* Catalog: sixteen tiny parametric clips. Fleet throughput comes
     from interleaving thousands of sessions, not from frame sizes —
     one simulated second at 8 fps keeps 10,000 sessions inside a
     bench budget while every session still walks the full pipeline.
     Sixteen distinct names (vs the ring's 4 shards) keeps the
     consistent-hash assignment from leaving any shard idle. *)
  let clips =
    Array.init 16 (fun i ->
        Video.Clip_gen.render ~width:16 ~height:12 ~fps:8.
          (Video.Workloads.parametric ~seconds:1.0
             ~base_level:(30 + (12 * i))
             ~highlight_peak:(140 + (5 * i))
             ()))
  in
  let session_config = Streaming.Session.default_config ~device in
  (* Open loop with every load feature on: Zipf popularity, a diurnal
     swing, and a flash crowd that overruns the admission queues so
     the shed path is exercised deterministically. *)
  let load =
    {
      Fleet.Load.default with
      Fleet.Load.sessions = 10_000;
      rate_per_s = 150.;
      diurnal_amplitude = 0.3;
      diurnal_period_s = 40.;
      spike_at_s = Some 30.;
      spike_factor = 4.;
      spike_width_s = 10.;
    }
  in
  (* Sized so the steady state (including the hottest shard's share of
     the Zipf-skewed traffic) fits under [capacity], while the x4
     flash crowd overruns capacity and queue on the hot shards — the
     shed path must show up in the gated counts. *)
  let config =
    {
      Fleet.Scheduler.default_config with
      Fleet.Scheduler.shards = 4;
      capacity = 96;
      queue_limit = 64;
    }
  in
  let domains = !bench_jobs in
  let run_fleet ~domains load =
    if domains = 1 then
      Fleet.Scheduler.run config ~session_config ~clips ~load
    else
      Par.Pool.with_pool ~domains (fun pool ->
          Fleet.Scheduler.run ~pool config ~session_config ~clips ~load)
  in
  let t0 = Obs.Clock.now_ns () in
  let report = run_fleet ~domains load in
  let wall_s = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns ~since:t0) in
  let sessions_per_domain_per_s =
    float_of_int report.Fleet.Scheduler.completed
    /. wall_s /. float_of_int domains
  in
  Printf.printf "%d domains, %d shards:\n%s\n\n" domains
    config.Fleet.Scheduler.shards
    (Format.asprintf "%a" Fleet.Scheduler.pp_report
       { report with Fleet.Scheduler.shard_reports = [||] });
  Printf.printf "%-8s %9s %10s %9s %6s %8s %11s\n" "shard" "assigned"
    "completed" "degraded" "shed" "peak" "cache h/m";
  rule ();
  Array.iter
    (fun (sr : Fleet.Scheduler.shard_report) ->
      Printf.printf "%-8d %9d %10d %9d %6d %8d %6d/%-4d\n"
        sr.Fleet.Scheduler.shard sr.Fleet.Scheduler.assigned
        sr.Fleet.Scheduler.completed sr.Fleet.Scheduler.degraded
        sr.Fleet.Scheduler.shed sr.Fleet.Scheduler.peak_in_flight
        sr.Fleet.Scheduler.cache_hits sr.Fleet.Scheduler.cache_misses)
    report.Fleet.Scheduler.shard_reports;
  Printf.printf
    "\nwall %.2f s — %.0f sessions/s/domain (wall), %.1f sessions per \
     simulated second\n"
    wall_s sessions_per_domain_per_s
    report.Fleet.Scheduler.sessions_per_sim_second;
  (* Determinism: the shard loops share no state, so the journal and
     every report number must be byte-identical at any domain count —
     checked on a smaller fleet so the bench stays fast. *)
  let replay_load = { load with Fleet.Load.sessions = 1_500 } in
  let j1 = Fleet.Scheduler.journal (run_fleet ~domains:1 replay_load) in
  let j2 = Fleet.Scheduler.journal (run_fleet ~domains:2 replay_load) in
  let j1' = Fleet.Scheduler.journal (run_fleet ~domains:1 replay_load) in
  let replay_mismatches =
    (if String.equal j1 j2 then 0 else 1)
    + if String.equal j1 j1' then 0 else 1
  in
  if replay_mismatches > 0 then
    Printf.printf "  fleet journals DIVERGED across domain counts\n";
  Printf.printf "replay: %d mismatch(es) across 1/2-domain runs and a rerun\n"
    replay_mismatches;
  let journal_bytes = Fleet.Scheduler.journal report in
  Obs.write_file ~path:"BENCH_fleet.journal" journal_bytes;
  Printf.printf
    "wrote BENCH_fleet.journal (%d events, %d bytes — read back with \
     `inspect timeline`, audit with `lint verify`)\n"
    (List.length report.Fleet.Scheduler.journal_events)
    (String.length journal_bytes);
  let healthy = Obs.Monitor.healthy report.Fleet.Scheduler.monitor in
  Printf.printf "fleet SLO rollup: %s\n" (if healthy then "OK" else "BREACHED");
  fleet_rows :=
    !fleet_rows
    @ [
        Obs.Json.Obj
          [
            ("clip", Obs.Json.String "fleet-10k");
            ("sessions", Obs.Json.Int report.Fleet.Scheduler.sessions);
            ("completed", Obs.Json.Int report.Fleet.Scheduler.completed);
            ("degraded", Obs.Json.Int report.Fleet.Scheduler.degraded);
            ("failed", Obs.Json.Int report.Fleet.Scheduler.failed);
            ("shed", Obs.Json.Int report.Fleet.Scheduler.shed);
            ("machine_ticks", Obs.Json.Int report.Fleet.Scheduler.ticks);
            ( "journal_events",
              Obs.Json.Int (List.length report.Fleet.Scheduler.journal_events)
            );
            ("journal_bytes", Obs.Json.Int (String.length journal_bytes));
            ( "sim_duration_s",
              Obs.Json.Float report.Fleet.Scheduler.sim_duration_s );
            ( "sessions_per_sim_second",
              Obs.Json.Float report.Fleet.Scheduler.sessions_per_sim_second );
            ( "mean_device_savings_pct",
              Obs.Json.Float
                (100. *. report.Fleet.Scheduler.mean_device_savings) );
            ("monitor_healthy", Obs.Json.Int (if healthy then 1 else 0));
            ("replay_mismatches", Obs.Json.Int replay_mismatches);
            ( "sessions_per_domain_per_s",
              Obs.Json.Float sessions_per_domain_per_s );
          ];
      ]

(* --- regression gate ------------------------------------------------------- *)

let baseline_comment =
  "Committed bench baseline for `bench --baseline FILE --gate`. Regenerate \
   with `make baseline` ONLY alongside a reasoned diff: state in the PR what \
   moved, by how much, and why the new numbers are correct."

let energy_section () =
  if !energy_rows = [] then []
  else [ ("energy", Obs.Json.List !energy_rows) ]

let summary_section () =
  if !energy_summary = [] then []
  else [ ("summary", Obs.Json.Obj !energy_summary) ]

let ladder_section () =
  if !resilience_ladder_rows = [] then []
  else [ ("resilience_ladder", Obs.Json.List !resilience_ladder_rows) ]

let fleet_section () =
  if !fleet_rows = [] then [] else [ ("fleet", Obs.Json.List !fleet_rows) ]

let write_baseline ~path =
  if !energy_rows = [] then begin
    prerr_endline
      "bench: --write-baseline needs the energy experiment in the same run \
       (e.g. `bench energy --write-baseline FILE`)";
    exit 1
  end;
  Obs.write_file ~path
    (Obs.Json.to_string
       (Obs.Json.Obj
          ([
             ("_comment", Obs.Json.String baseline_comment);
             ("energy", Obs.Json.List !energy_rows);
           ]
          @ summary_section () @ ladder_section () @ fleet_section ())));
  Printf.printf "wrote %s\n" path

(* Flatten a report row into (metric path, numeric value) pairs;
   strings identify the row and are not compared. *)
let rec flatten_metrics prefix json acc =
  match json with
  | Obs.Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) -> flatten_metrics (prefix ^ "." ^ k) v acc)
      acc fields
  | Obs.Json.Float v -> (prefix, `Float v) :: acc
  | Obs.Json.Int i -> (prefix, `Int i) :: acc
  | _ -> acc

let flatten_rows rows =
  List.concat_map
    (fun row ->
      let clip =
        match Obs.Json.member "clip" row with
        | Some (Obs.Json.String c) -> c
        | _ -> "?"
      in
      flatten_metrics clip row [])
    rows

(* Per-metric tolerance: percentage columns drift absolutely (half a
   point), energies and other floats relatively (1%), counts exactly.
   Throughput columns ([_per_s]) are wall-clock-dependent and gated
   presence-only: both sides must exist and be finite, the values are
   not compared. *)
let metric_ok name base current =
  match (base, current) with
  | _ when String.ends_with ~suffix:"_per_s" name ->
    let f = function `Int i -> float_of_int i | `Float v -> v in
    Float.is_finite (f base) && Float.is_finite (f current)
  | `Int a, `Int b -> a = b
  | _ ->
    let f = function `Int i -> float_of_int i | `Float v -> v in
    let a = f base and b = f current in
    if String.ends_with ~suffix:"_pct" name then Float.abs (a -. b) <= 0.5
    else Float.abs (a -. b) <= Float.max (0.01 *. Float.abs a) 1e-9

let metric_value = function
  | `Int i -> string_of_int i
  | `Float v -> Printf.sprintf "%.6g" v

let gate ~baseline_path =
  if !energy_rows = [] then begin
    prerr_endline
      "bench: --gate needs the energy experiment in the same run \
       (e.g. `bench energy --baseline FILE --gate`)";
    exit 1
  end;
  let baseline_json =
    let parsed =
      match In_channel.with_open_text baseline_path In_channel.input_all with
      | text -> Obs.Json.of_string text
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error msg ->
      Printf.eprintf "bench: cannot read baseline %s: %s\n" baseline_path msg;
      exit 1
    | Ok json -> json
  in
  let baseline_rows =
    match Obs.Json.member "energy" baseline_json with
    | Some (Obs.Json.List rows) -> rows
    | Some _ | None ->
      Printf.eprintf "bench: %s has no \"energy\" section\n" baseline_path;
      exit 1
  in
  (* The top-level summary rides the same comparison, prefixed so its
     metrics cannot collide with a clip named "summary". *)
  let flatten_summary = function
    | Some json -> flatten_metrics "summary" json []
    | None -> []
  in
  (* The resilience-ladder section rides the same comparison; its rows
     carry a "clip" field like the energy rows, so the flattened names
     cannot collide. Absent on either side just means the section's
     experiment was not in that run — the additive-diff rule for
     missing/extra metrics then applies as usual. *)
  let ladder_rows json =
    match Obs.Json.member "resilience_ladder" json with
    | Some (Obs.Json.List rows) -> rows
    | Some _ | None -> []
  in
  (* The fleet section rides the same comparison under the same
     additive-diff rule; its single row is keyed "fleet-10k". *)
  let baseline_fleet_rows json =
    match Obs.Json.member "fleet" json with
    | Some (Obs.Json.List rows) -> rows
    | Some _ | None -> []
  in
  let base =
    flatten_rows baseline_rows
    @ flatten_rows (ladder_rows baseline_json)
    @ flatten_rows (baseline_fleet_rows baseline_json)
    @ flatten_summary (Obs.Json.member "summary" baseline_json)
  in
  let current =
    flatten_rows !energy_rows
    @ flatten_rows !resilience_ladder_rows
    @ flatten_rows !fleet_rows
    @ flatten_summary
        (match !energy_summary with
        | [] -> None
        | fields -> Some (Obs.Json.Obj fields))
  in
  section (Printf.sprintf "regression gate vs %s" baseline_path);
  let failures = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (name, bv) ->
      incr total;
      match List.assoc_opt name current with
      | None ->
        incr failures;
        Printf.printf "  DRIFT %-52s baseline %s, missing from this run\n" name
          (metric_value bv)
      | Some cv ->
        if not (metric_ok name bv cv) then begin
          incr failures;
          Printf.printf "  DRIFT %-52s baseline %s, now %s\n" name
            (metric_value bv) (metric_value cv)
        end)
    base;
  List.iter
    (fun (name, cv) ->
      if List.assoc_opt name base = None then begin
        incr total;
        incr failures;
        Printf.printf
          "  DRIFT %-52s %s in this run, absent from baseline (regenerate \
           with `make baseline` + reasoned diff)\n"
          name (metric_value cv)
      end)
    current;
  if !failures = 0 then begin
    Printf.printf "  %d metrics within tolerance — gate passed\n" !total;
    true
  end
  else begin
    Printf.printf "  %d of %d metrics drifted — gate FAILED\n" !failures !total;
    false
  end

(* --- driver -------------------------------------------------------------- *)

let experiments =
  [
    ("fig3", "histogram properties", fig3);
    ("fig4", "original vs compensated snapshots", fig4);
    ("fig5", "quality trade-off table", fig5);
    ("fig6", "scene grouping time series", fig6);
    ("fig7", "brightness vs backlight", fig7);
    ("fig8", "brightness vs white level", fig8);
    ("fig9", "backlight power savings sweep", fig9);
    ("fig10", "total power savings sweep", fig10);
    ("overhead", "annotation overhead", overhead);
    ("ablation-scene", "scene vs per-frame (A1)", ablation_scene);
    ("ablation-baselines", "strategy comparison (A2)", ablation_baselines);
    ("ablation-operator", "compensation operator comparison", ablation_operator);
    ("dvfs", "CPU scaling from workload annotations", dvfs);
    ("radio", "WLAN power-save from burst annotations", radio);
    ("roi", "ROI-protected annotation (end credits)", roi);
    ("live", "on-the-fly proxy annotation", live);
    ("oled", "OLED counter-example", oled);
    ("color-accuracy", "luma vs channel-max clipping prediction", color_accuracy);
    ("ramp", "slew-limited backlight transitions", ramp);
    ("loss", "packet loss, concealment, GOP length", loss);
    ("gop-plan", "scene-aligned I-frame placement", gop_plan);
    ("fec", "annotation side-channel FEC", fec);
    ("resilience", "savings vs burst length under fault injection", resilience);
    ( "resilience-ladder",
      "chaos ladder: zero-abort sweep under the default profile (E19)",
      resilience_ladder );
    ( "fleet",
      "fleet-scale shard scheduler: 10k interleaved sessions (E20)",
      fleet_bench );
    ("parallel", "domain-pool profiling speedup and prepared cache", parallel);
    ("content-sweep", "savings vs content brightness", content_sweep);
    ("hebs", "histogram-equalisation baseline", hebs);
    ("session", "combined full-session savings", session);
    ("energy", "attributed joules per stage/scene/component (E17)", energy);
  ]

let list_experiments () =
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-20s %s\n" id descr) experiments;
  Printf.printf "  %-20s %s\n" "micro" "Bechamel micro-benchmarks"

(* Each experiment runs as a top-level span, so the harness ends with a
   per-phase wall-clock table and a machine-readable BENCH_obs.json
   (phase timings + full metrics snapshot). *)
let observed id run = Obs.Trace.with_span ("bench." ^ id) run

(* Percentile columns: sketch-backed quantiles of every histogram
   family (monitoring is on for the whole bench run). *)
let quantiles_json () =
  Obs.Json.List
    (List.map
       (fun (qs : Obs.Registry.quantile_series) ->
         Obs.Json.Obj
           [
             ("family", Obs.Json.String qs.Obs.Registry.q_family);
             ( "labels",
               Obs.Json.Obj
                 (List.map
                    (fun (k, v) -> (k, Obs.Json.String v))
                    qs.Obs.Registry.q_labels) );
             ("count", Obs.Json.Int qs.Obs.Registry.q_count);
             ( "quantiles",
               Obs.Json.Obj
                 (List.map
                    (fun (q, v) ->
                      (Printf.sprintf "p%g" (q *. 100.), Obs.Json.Float v))
                    qs.Obs.Registry.q_values) );
           ])
       (Obs.Registry.quantiles ()))

(* Exact percentile over a sorted array (nearest-rank). *)
let pct sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Per-experiment summary: top-level wall clock plus percentiles over
   the durations of every span recorded underneath it. *)
let phase_json (s : Obs.Trace.span) =
  let durations = ref [] in
  let rec collect (sp : Obs.Trace.span) =
    List.iter
      (fun (c : Obs.Trace.span) ->
        durations := Obs.Clock.ns_to_s c.Obs.Trace.duration_ns *. 1e3 :: !durations;
        collect c)
      sp.Obs.Trace.children
  in
  collect s;
  let sorted = Array.of_list !durations in
  Array.sort compare sorted;
  let base =
    [
      ("phase", Obs.Json.String s.Obs.Trace.name);
      ("wall_s", Obs.Json.Float (Obs.Clock.ns_to_s s.Obs.Trace.duration_ns));
    ]
  in
  let spans =
    if Array.length sorted = 0 then []
    else
      [
        ( "spans",
          Obs.Json.Obj
            [
              ("count", Obs.Json.Int (Array.length sorted));
              ("p50_ms", Obs.Json.Float (pct sorted 0.5));
              ("p90_ms", Obs.Json.Float (pct sorted 0.9));
              ("p99_ms", Obs.Json.Float (pct sorted 0.99));
              ("max_ms", Obs.Json.Float sorted.(Array.length sorted - 1));
            ] );
      ]
  in
  Obs.Json.Obj (base @ spans)

let report_obs () =
  let roots = Obs.Trace.roots () in
  if roots <> [] then begin
    Printf.printf "\n=== per-phase wall clock ===\n";
    List.iter
      (fun (s : Obs.Trace.span) ->
        Printf.printf "  %-24s %10.1f ms\n" s.Obs.Trace.name
          (Obs.Clock.ns_to_s s.Obs.Trace.duration_ns *. 1e3))
      roots;
    let phases = Obs.Json.List (List.map phase_json roots) in
    let critical_path = Obs.Trace.hotspots_to_json (Obs.Trace.critical_path ()) in
    let json =
      Obs.Json.Obj
        [
          ("phases", phases);
          ("quantiles", quantiles_json ());
          ("critical_path", critical_path);
          ("metrics", Obs.Registry.to_json (Obs.Registry.snapshot ()));
        ]
    in
    Obs.write_file ~path:"BENCH_obs.json" (Obs.Json.to_string json);
    (* The committed, reviewable slice of the same data: wall clock
       and span percentiles per experiment, no raw metric dump (see
       EXPERIMENTS.md, "Bench reports"). *)
    let resilience =
      if !resilience_rows = [] then []
      else [ ("resilience", Obs.Json.List !resilience_rows) ]
    in
    let parallel =
      if !parallel_rows = [] then []
      else [ ("parallel", Obs.Json.List !parallel_rows) ]
    in
    let report =
      Obs.Json.Obj
        ([ ("phases", phases); ("critical_path", critical_path) ]
        @ summary_section () @ resilience @ ladder_section () @ fleet_section ()
        @ parallel @ energy_section ())
    in
    Obs.write_file ~path:"BENCH_report.json" (Obs.Json.to_string report);
    Printf.printf "\nwrote BENCH_obs.json and BENCH_report.json\n"
  end

let () =
  Obs.enable ();
  (* Monitoring adds the quantile sketches behind the percentile
     columns in BENCH_obs.json / BENCH_report.json. *)
  Obs.enable_monitoring ();
  (* Harness flags, not experiment ids — strip them before dispatch.
     [--jobs N] bounds the [parallel] experiment's domain sweep; the
     baseline/gate flags drive the energy regression gate. *)
  let baseline_path = ref None in
  let gate_requested = ref false in
  let write_baseline_path = ref None in
  let rec strip_flags = function
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n ->
        bench_jobs := Par.Pool.normalize_jobs n;
        strip_flags rest
      | None ->
        prerr_endline "bench: --jobs expects an integer";
        exit 1)
    | [ "--jobs" ] ->
      prerr_endline "bench: --jobs expects an integer";
      exit 1
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      strip_flags rest
    | [ "--baseline" ] ->
      prerr_endline "bench: --baseline expects a file";
      exit 1
    | "--gate" :: rest ->
      gate_requested := true;
      strip_flags rest
    | "--write-baseline" :: path :: rest ->
      write_baseline_path := Some path;
      strip_flags rest
    | [ "--write-baseline" ] ->
      prerr_endline "bench: --write-baseline expects a file";
      exit 1
    | "--inject-regression" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some v ->
        inject_regression_pct := v;
        strip_flags rest
      | None ->
        prerr_endline "bench: --inject-regression expects a percentage";
        exit 1)
    | [ "--inject-regression" ] ->
      prerr_endline "bench: --inject-regression expects a percentage";
      exit 1
    | arg :: rest -> arg :: strip_flags rest
    | [] -> []
  in
  (match strip_flags (Array.to_list Sys.argv) with
  | _ :: [] ->
    (* Everything except the micro-benchmarks, which have their own id. *)
    List.iter (fun (id, _, run) -> observed id run) experiments
  | _ :: args ->
    List.iter
      (fun arg ->
        match arg with
        | "--list" | "-l" -> list_experiments ()
        | "micro" -> observed "micro" micro
        | id -> (
          match List.find_opt (fun (name, _, _) -> name = id) experiments with
          | Some (_, _, run) -> observed id run
          | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            list_experiments ();
            exit 1))
      args
  | [] -> assert false);
  report_obs ();
  (match !write_baseline_path with
  | Some path -> write_baseline ~path
  | None -> ());
  if !gate_requested then begin
    match !baseline_path with
    | None ->
      prerr_endline "bench: --gate requires --baseline FILE";
      exit 1
    | Some path -> if not (gate ~baseline_path:path) then exit 1
  end
