examples/live_conference.mli:
