examples/quickstart.ml: Annot Display Format Streaming Video
