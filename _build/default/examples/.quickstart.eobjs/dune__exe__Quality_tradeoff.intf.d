examples/quality_tradeoff.mli:
