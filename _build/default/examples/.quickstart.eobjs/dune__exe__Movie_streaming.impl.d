examples/movie_streaming.ml: Annot Codec Display List Printf Streaming String Video
