examples/movie_streaming.mli:
