examples/device_comparison.ml: Annot Display Format List Power Printf Streaming String Video
