examples/quality_tradeoff.ml: Annot Camera Display List Printf Streaming String Video
