examples/device_comparison.mli:
