examples/live_conference.ml: Annot Array Codec Display Printf Streaming String Video
