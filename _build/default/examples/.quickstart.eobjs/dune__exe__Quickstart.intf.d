examples/quickstart.mli:
