examples/custom_device.ml: Annot Array Camera Display Float Format Printf Streaming Video
