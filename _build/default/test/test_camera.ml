(* Tests for the camera model and histogram-based quality evaluation. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let device = Display.Device.ipaq_h5555

(* --- Response --------------------------------------------------------- *)

let test_response_monotone () =
  List.iter
    (fun (name, r) ->
      check bool (name ^ " monotone") true (Camera.Response.is_monotone r))
    [
      ("linear", Camera.Response.linear);
      ("srgb", Camera.Response.srgb_like);
      ("s-curve", Camera.Response.s_curve);
    ]

let test_response_endpoints () =
  List.iter
    (fun (name, r) ->
      check int (name ^ " at 0") 0 (Camera.Response.apply r 0.);
      check int (name ^ " at 1") 255 (Camera.Response.apply r 1.);
      check int (name ^ " below 0") 0 (Camera.Response.apply r (-0.5));
      check int (name ^ " above 1") 255 (Camera.Response.apply r 2.))
    [
      ("linear", Camera.Response.linear);
      ("srgb", Camera.Response.srgb_like);
      ("s-curve", Camera.Response.s_curve);
    ]

let test_response_nonlinearity () =
  (* The consumer curves must bend: midpoint well away from 127. *)
  check bool "srgb midpoint lifted" true
    (Camera.Response.apply Camera.Response.srgb_like 0.5 > 150);
  let linear_mid = Camera.Response.apply Camera.Response.linear 0.5 in
  check bool "linear midpoint straight" true (abs (linear_mid - 127) <= 1)

(* --- Snapshot --------------------------------------------------------- *)

let gray_frame level =
  let img = Image.Raster.create ~width:24 ~height:18 in
  Image.Raster.fill img (Image.Pixel.gray level);
  img

let test_snapshot_dimensions_and_grayscale () =
  let rig = Camera.Snapshot.default_rig device in
  let snap =
    Camera.Snapshot.capture rig device ~backlight_register:255 (gray_frame 128)
  in
  check int "width" 24 (Image.Raster.width snap);
  check int "height" 18 (Image.Raster.height snap);
  Image.Raster.iter
    (fun ~x:_ ~y:_ p ->
      check bool "grayscale" true
        (p.Image.Pixel.r = p.Image.Pixel.g && p.Image.Pixel.g = p.Image.Pixel.b))
    snap

let test_snapshot_dimmer_backlight_darker () =
  let rig = Camera.Snapshot.noiseless_rig device in
  let frame = gray_frame 180 in
  let bright = Camera.Snapshot.capture rig device ~backlight_register:255 frame in
  let dim = Camera.Snapshot.capture rig device ~backlight_register:80 frame in
  check bool "dimmer backlight reads darker" true
    (Image.Raster.mean_luminance dim < Image.Raster.mean_luminance bright -. 10.)

let test_snapshot_white_nearly_saturates () =
  (* Exposure calibration targets ~0.97 relative radiance for white at
     full backlight. *)
  let rig = Camera.Snapshot.noiseless_rig device in
  let snap = Camera.Snapshot.capture rig device ~backlight_register:255 (gray_frame 255) in
  let level = (Image.Raster.get snap ~x:0 ~y:0).Image.Pixel.r in
  check bool "white lands just under saturation" true (level >= 240 && level <= 255)

let test_snapshot_histogram_matches_capture () =
  let rig = Camera.Snapshot.noiseless_rig device in
  let frame = gray_frame 140 in
  let direct =
    Image.Histogram.of_raster
      (Camera.Snapshot.capture rig device ~backlight_register:200 frame)
  in
  let fast = Camera.Snapshot.capture_histogram rig device ~backlight_register:200 frame in
  check bool "same histogram" true (Image.Histogram.equal direct fast)

let test_snapshot_deterministic_noise () =
  let rig = Camera.Snapshot.default_rig device in
  let frame = gray_frame 90 in
  let a = Camera.Snapshot.capture rig device ~backlight_register:255 frame in
  let b = Camera.Snapshot.capture rig device ~backlight_register:255 frame in
  check bool "noise is reproducible" true (Image.Raster.equal a b)

let test_measure_patch_monotone_in_white () =
  let rig = Camera.Snapshot.noiseless_rig device in
  let previous = ref (-1.) in
  List.iter
    (fun w ->
      let m = Camera.Snapshot.measure_patch rig device ~backlight:255 ~white:w in
      check bool (Printf.sprintf "monotone at white %d" w) true (m >= !previous);
      previous := m)
    [ 0; 32; 64; 96; 128; 160; 192; 224; 255 ]

let test_camera_loop_characterisation () =
  (* End-to-end §5 flow: characterise the display *through the camera*
     and recover a usable transfer. The non-linear camera response
     distorts the curve, but the recovered inverse must still give
     registers that achieve the desired gain on the true panel. *)
  let rig = Camera.Snapshot.noiseless_rig device in
  let measure = Camera.Snapshot.measure_patch rig device in
  let recovered = Display.Characterize.recover_transfer ~steps:18 measure in
  List.iter
    (fun f ->
      let r = Display.Transfer.inverse recovered f in
      let achieved = Display.Device.backlight_gain device r in
      check bool (Printf.sprintf "gain %.2f achieved (got %.2f)" f achieved) true
        (achieved >= f -. 0.05))
    [ 0.2; 0.4; 0.6; 0.8 ]

(* --- Quality ---------------------------------------------------------- *)

let histogram_of_levels levels =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) levels;
  h

let test_quality_identical_histograms () =
  let h = histogram_of_levels [ 10; 20; 30; 200 ] in
  let v = Camera.Quality.compare_histograms ~reference:h ~compensated:h in
  check (Alcotest.float 1e-9) "no mean shift" 0. v.Camera.Quality.mean_shift;
  check int "no range change" 0 v.Camera.Quality.range_change;
  check (Alcotest.float 1e-9) "zero distance" 0. v.Camera.Quality.l1_distance;
  check bool "acceptable" true (Camera.Quality.acceptable v)

let test_quality_detects_brightness_shift () =
  let reference = histogram_of_levels [ 100; 100; 100; 100 ] in
  let compensated = histogram_of_levels [ 160; 160; 160; 160 ] in
  let v = Camera.Quality.compare_histograms ~reference ~compensated in
  check (Alcotest.float 1e-9) "shift of 60" 60. v.Camera.Quality.mean_shift;
  check bool "unacceptable" false (Camera.Quality.acceptable v)

let test_quality_good_compensation_accepted () =
  (* Fig 4 flow: a dark frame, compensated and photographed at a dim
     register, should look close to the original at full backlight. *)
  let frame =
    Image.Raster.init ~width:32 ~height:24 (fun ~x ~y ->
        Image.Pixel.gray (20 + ((x + y) mod 60)))
  in
  let rig = Camera.Snapshot.noiseless_rig device in
  (* Effective max 80-ish: dim to gain 80/255 and compensate. *)
  let gain = 80. /. 255. in
  let register = Display.Device.register_for_gain device gain in
  let realised = Display.Device.backlight_gain device register in
  let compensated = Image.Ops.contrast_enhance ~k:(1. /. realised) frame in
  let v =
    Camera.Quality.evaluate ~rig ~device ~original:frame ~compensated
      ~reduced_register:register
  in
  check bool
    (Format.asprintf "verdict acceptable: %a" Camera.Quality.pp_verdict v)
    true
    (Camera.Quality.acceptable v)

let test_quality_uncompensated_dimming_rejected () =
  (* Dimming without compensation must fail the histogram check —
     this is what separates the technique from simply dimming. *)
  let frame = gray_frame 150 in
  let rig = Camera.Snapshot.noiseless_rig device in
  let v =
    Camera.Quality.evaluate ~rig ~device ~original:frame ~compensated:frame
      ~reduced_register:80
  in
  check bool "dimming alone rejected" false (Camera.Quality.acceptable v)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"snapshot level is monotone in backlight"
        QCheck2.Gen.(pair (0 -- 255) (0 -- 255))
        (fun (r1, r2) ->
          let lo = min r1 r2 and hi = max r1 r2 in
          let rig = Camera.Snapshot.noiseless_rig device in
          Camera.Snapshot.measure_patch rig device ~backlight:lo ~white:200
          <= Camera.Snapshot.measure_patch rig device ~backlight:hi ~white:200);
      QCheck2.Test.make ~name:"quality verdict symmetric fields are consistent"
        QCheck2.Gen.(pair (1 -- 255) (1 -- 255))
        (fun (a, b) ->
          let ha = histogram_of_levels [ a; a / 2 ] in
          let hb = histogram_of_levels [ b; b / 2 ] in
          let v = Camera.Quality.compare_histograms ~reference:ha ~compensated:hb in
          abs_float
            (v.Camera.Quality.mean_shift
             -. (v.Camera.Quality.compensated_mean -. v.Camera.Quality.reference_mean))
          < 1e-9);
    ]

let () =
  Alcotest.run "camera"
    [
      ( "response",
        [
          Alcotest.test_case "monotone" `Quick test_response_monotone;
          Alcotest.test_case "endpoints" `Quick test_response_endpoints;
          Alcotest.test_case "nonlinearity" `Quick test_response_nonlinearity;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "dimensions/grayscale" `Quick
            test_snapshot_dimensions_and_grayscale;
          Alcotest.test_case "dimmer is darker" `Quick test_snapshot_dimmer_backlight_darker;
          Alcotest.test_case "white exposure" `Quick test_snapshot_white_nearly_saturates;
          Alcotest.test_case "fast histogram path" `Quick
            test_snapshot_histogram_matches_capture;
          Alcotest.test_case "deterministic noise" `Quick test_snapshot_deterministic_noise;
          Alcotest.test_case "patch monotone" `Quick test_measure_patch_monotone_in_white;
          Alcotest.test_case "camera-loop characterisation" `Quick
            test_camera_loop_characterisation;
        ] );
      ( "quality",
        [
          Alcotest.test_case "identical histograms" `Quick test_quality_identical_histograms;
          Alcotest.test_case "brightness shift detected" `Quick
            test_quality_detects_brightness_shift;
          Alcotest.test_case "good compensation accepted" `Quick
            test_quality_good_compensation_accepted;
          Alcotest.test_case "uncompensated dimming rejected" `Quick
            test_quality_uncompensated_dimming_rejected;
        ] );
      ("properties", qtests);
    ]
