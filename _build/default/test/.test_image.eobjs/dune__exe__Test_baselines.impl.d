test/test_baselines.ml: Alcotest Annot Array Baselines Display Fun Image Lazy List QCheck2 QCheck_alcotest Streaming Video
