test/test_video.ml: Alcotest Array Image List Printf QCheck2 QCheck_alcotest Result Video
