test/test_camera.ml: Alcotest Camera Display Format Image List Printf QCheck2 QCheck_alcotest
