test/test_annot.ml: Alcotest Annot Array Bytes Char Display Float Format Image List Printf QCheck2 QCheck_alcotest Result String Video
