test/test_camera.mli:
