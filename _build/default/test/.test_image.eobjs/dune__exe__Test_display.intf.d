test/test_display.mli:
