test/test_image.ml: Alcotest Bytes Char Filename Float Fun Image List Printf QCheck2 QCheck_alcotest Result String Sys
