test/test_streaming.ml: Alcotest Annot Array Camera Char Codec Display Format Image Lazy List Option Power Printf QCheck2 QCheck_alcotest Result Streaming String Video
