test/test_codec.ml: Alcotest Array Bytes Char Codec Fun Image List Printf QCheck2 QCheck_alcotest Result String Video
