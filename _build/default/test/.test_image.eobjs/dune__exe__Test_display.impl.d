test/test_display.ml: Alcotest Array Display List Printf QCheck2 QCheck_alcotest Result String
