test/test_integration.ml: Alcotest Annot Array Baselines Camera Codec Display Format List Power Printf Streaming String Video
