test/test_power.ml: Alcotest Display Image List Power Printf QCheck2 QCheck_alcotest
