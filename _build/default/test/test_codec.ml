(* Tests for the video codec substrate: bit I/O, entropy codes, the
   transform pipeline and full encode/decode round trips. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Bitio ------------------------------------------------------------ *)

let test_bitio_single_bits () =
  let w = Codec.Bitio.Writer.create () in
  List.iter (Codec.Bitio.Writer.put_bit w) [ true; false; true; true ];
  check int "bit length" 4 (Codec.Bitio.Writer.bit_length w);
  let r = Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w) in
  Alcotest.(check (list bool))
    "bits back"
    [ true; false; true; true ]
    (List.init 4 (fun _ -> Codec.Bitio.Reader.get_bit r))

let test_bitio_multibit_values () =
  let w = Codec.Bitio.Writer.create () in
  Codec.Bitio.Writer.put_bits w ~value:0b101101 ~bits:6;
  Codec.Bitio.Writer.put_bits w ~value:0 ~bits:0;
  Codec.Bitio.Writer.put_bits w ~value:1023 ~bits:10;
  let r = Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w) in
  check int "first value" 0b101101 (Codec.Bitio.Reader.get_bits r 6);
  check int "second value" 1023 (Codec.Bitio.Reader.get_bits r 10)

let test_bitio_value_too_wide () =
  let w = Codec.Bitio.Writer.create () in
  Alcotest.check_raises "does not fit"
    (Invalid_argument "Bitio.put_bits: value does not fit") (fun () ->
      Codec.Bitio.Writer.put_bits w ~value:4 ~bits:2)

let test_bitio_alignment () =
  let w = Codec.Bitio.Writer.create () in
  Codec.Bitio.Writer.put_bit w true;
  Codec.Bitio.Writer.put_byte_aligned w 0xAB;
  let s = Codec.Bitio.Writer.contents w in
  check int "two bytes" 2 (String.length s);
  let r = Codec.Bitio.Reader.of_string s in
  check bool "first bit" true (Codec.Bitio.Reader.get_bit r);
  check int "aligned byte" 0xAB (Codec.Bitio.Reader.get_byte_aligned r)

let test_bitio_out_of_bits () =
  let r = Codec.Bitio.Reader.of_string "" in
  check bool "raises at end" true
    (match Codec.Bitio.Reader.get_bit r with
    | exception Codec.Bitio.Reader.Out_of_bits -> true
    | _ -> false)

let prop_bitio_roundtrip =
  QCheck2.Test.make ~name:"bitio round-trips random bit sequences"
    QCheck2.Gen.(small_list (pair (0 -- 1023) (0 -- 10)))
    (fun pairs ->
      let pairs = List.map (fun (v, b) -> (v land ((1 lsl b) - 1), b)) pairs in
      let w = Codec.Bitio.Writer.create () in
      List.iter (fun (v, b) -> Codec.Bitio.Writer.put_bits w ~value:v ~bits:b) pairs;
      let r = Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w) in
      List.for_all (fun (v, b) -> Codec.Bitio.Reader.get_bits r b = v) pairs)

(* --- Golomb ----------------------------------------------------------- *)

let roundtrip_ue n =
  let w = Codec.Bitio.Writer.create () in
  Codec.Golomb.write_ue w n;
  Codec.Golomb.read_ue (Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w))

let roundtrip_se n =
  let w = Codec.Bitio.Writer.create () in
  Codec.Golomb.write_se w n;
  Codec.Golomb.read_se (Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w))

let test_golomb_small_values () =
  List.iter (fun n -> check int (Printf.sprintf "ue %d" n) n (roundtrip_ue n))
    [ 0; 1; 2; 3; 7; 8; 255; 256; 65535 ];
  List.iter (fun n -> check int (Printf.sprintf "se %d" n) n (roundtrip_se n))
    [ 0; 1; -1; 2; -2; 100; -100; 32767; -32768 ]

let test_golomb_code_lengths () =
  (* ue(0) = "1" (1 bit), ue(1) = "010" (3 bits), ue(2) = "011". *)
  check int "ue 0 length" 1 (Codec.Golomb.ue_bit_length 0);
  check int "ue 1 length" 3 (Codec.Golomb.ue_bit_length 1);
  check int "ue 6 length" 5 (Codec.Golomb.ue_bit_length 6);
  let w = Codec.Bitio.Writer.create () in
  Codec.Golomb.write_ue w 6;
  check int "declared length matches written" 5 (Codec.Bitio.Writer.bit_length w)

let test_golomb_negative_rejected () =
  let w = Codec.Bitio.Writer.create () in
  Alcotest.check_raises "negative ue" (Invalid_argument "Golomb.write_ue: negative")
    (fun () -> Codec.Golomb.write_ue w (-1))

let prop_golomb_ue_roundtrip =
  QCheck2.Test.make ~name:"exp-golomb ue round-trip" QCheck2.Gen.(0 -- 1_000_000)
    (fun n -> roundtrip_ue n = n)

let prop_golomb_se_roundtrip =
  QCheck2.Test.make ~name:"exp-golomb se round-trip"
    QCheck2.Gen.(-100_000 -- 100_000) (fun n -> roundtrip_se n = n)

(* --- Zigzag ----------------------------------------------------------- *)

let test_zigzag_is_permutation () =
  let sorted = Array.copy Codec.Zigzag.scan_order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..63" (Array.init 64 Fun.id) sorted

let test_zigzag_starts_at_dc () =
  check int "first is DC" 0 Codec.Zigzag.scan_order.(0);
  (* The second and third entries are the two neighbours of DC. *)
  check bool "low frequencies first" true
    (List.mem Codec.Zigzag.scan_order.(1) [ 1; 8 ]
     && List.mem Codec.Zigzag.scan_order.(2) [ 1; 8 ])

let prop_zigzag_roundtrip =
  QCheck2.Test.make ~name:"zigzag inverse . forward = id"
    QCheck2.Gen.(array_size (return 64) (-100 -- 100))
    (fun a -> Codec.Zigzag.inverse (Codec.Zigzag.forward a) = a)

(* --- Dct -------------------------------------------------------------- *)

let random_block seed =
  let rng = Image.Prng.create ~seed in
  Array.init 64 (fun _ -> float_of_int (Image.Prng.int rng 256))

let test_dct_roundtrip_accuracy () =
  let block = random_block 1 in
  let back = Codec.Dct.inverse (Codec.Dct.forward block) in
  Array.iteri
    (fun i v -> check bool (Printf.sprintf "sample %d" i) true (abs_float (v -. block.(i)) < 1e-9))
    back

let test_dct_dc_of_flat_block () =
  let block = Array.make 64 100. in
  let coeffs = Codec.Dct.forward block in
  (* Orthonormal DCT: DC = 8 * sample value for a flat block. *)
  check (Alcotest.float 1e-6) "dc" 800. coeffs.(0);
  for i = 1 to 63 do
    check (Alcotest.float 1e-9) (Printf.sprintf "ac %d" i) 0. coeffs.(i)
  done

let test_dct_parseval () =
  (* Orthonormality: energy is preserved. *)
  let block = random_block 2 in
  let coeffs = Codec.Dct.forward block in
  let energy a = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. a in
  check (Alcotest.float 1e-6) "energy preserved" (energy block) (energy coeffs)

let test_dct_bad_size () =
  Alcotest.check_raises "wrong size" (Invalid_argument "Dct: block must have 64 samples")
    (fun () -> ignore (Codec.Dct.forward [| 1. |]))

(* --- Quant ------------------------------------------------------------ *)

let test_quant_zero_preserved () =
  let q = Codec.Quant.make ~qp:8 in
  let zeros = Array.make 64 0. in
  Alcotest.(check (array int)) "zeros stay zero" (Array.make 64 0)
    (Codec.Quant.quantise q Codec.Quant.Luma zeros)

let test_quant_coarser_at_higher_qp () =
  let coeffs = random_block 3 in
  let nnz qp =
    Codec.Quant.quantise (Codec.Quant.make ~qp) Codec.Quant.Luma coeffs
    |> Array.to_list
    |> List.filter (fun l -> l <> 0)
    |> List.length
  in
  check bool "higher qp kills more coefficients" true (nnz 31 <= nnz 1)

let test_quant_dequant_bounded_error () =
  let q = Codec.Quant.make ~qp:8 in
  let coeffs = random_block 4 in
  let levels = Codec.Quant.quantise q Codec.Quant.Luma coeffs in
  let back = Codec.Quant.dequantise q Codec.Quant.Luma levels in
  (* Error per coefficient is at most half the quantisation step;
     the largest step at qp 8 is 121. *)
  Array.iteri
    (fun i v ->
      check bool (Printf.sprintf "coef %d" i) true (abs_float (v -. coeffs.(i)) <= 61.))
    back

let test_quant_invalid_qp () =
  Alcotest.check_raises "qp 0" (Invalid_argument "Quant.make: qp out of [1, 31]")
    (fun () -> ignore (Codec.Quant.make ~qp:0))

(* --- Coeff ------------------------------------------------------------ *)

let roundtrip_block levels =
  let w = Codec.Bitio.Writer.create () in
  Codec.Coeff.write_block w levels;
  Codec.Coeff.read_block (Codec.Bitio.Reader.of_string (Codec.Bitio.Writer.contents w))

let test_coeff_all_zero_block () =
  let zeros = Array.make 64 0 in
  Alcotest.(check (array int)) "zeros round-trip" zeros (roundtrip_block zeros);
  check int "all-zero block costs one ue(0)" 1 (Codec.Coeff.bit_cost zeros)

let test_coeff_sparse_block () =
  let levels = Array.make 64 0 in
  levels.(0) <- 50;
  levels.(63) <- -3;
  Alcotest.(check (array int)) "sparse round-trip" levels (roundtrip_block levels)

let test_coeff_bit_cost_exact () =
  let levels = Array.init 64 (fun i -> if i mod 7 = 0 then (i mod 5) - 2 else 0) in
  let w = Codec.Bitio.Writer.create () in
  Codec.Coeff.write_block w levels;
  check int "bit cost matches writer" (Codec.Bitio.Writer.bit_length w)
    (Codec.Coeff.bit_cost levels)

let prop_coeff_roundtrip =
  QCheck2.Test.make ~name:"coefficient blocks round-trip"
    QCheck2.Gen.(array_size (return 64) (-40 -- 40))
    (fun levels -> roundtrip_block levels = levels)

(* --- Plane ------------------------------------------------------------ *)

let test_plane_edge_clamped_reads () =
  let p = Codec.Plane.create ~width:2 ~height:2 in
  Codec.Plane.set p ~x:0 ~y:0 7;
  Codec.Plane.set p ~x:1 ~y:1 9;
  check int "negative x clamps" 7 (Codec.Plane.get p ~x:(-5) ~y:0);
  check int "overflow clamps" 9 (Codec.Plane.get p ~x:10 ~y:10)

let test_plane_pad_and_crop () =
  let p = Codec.Plane.create ~width:5 ~height:3 in
  Codec.Plane.set p ~x:4 ~y:2 42;
  let padded = Codec.Plane.pad_to_multiple p 8 in
  check int "padded width" 8 padded.Codec.Plane.width;
  check int "padded height" 8 padded.Codec.Plane.height;
  check int "edge replicated" 42 (Codec.Plane.get padded ~x:7 ~y:7);
  let cropped = Codec.Plane.crop padded ~width:5 ~height:3 in
  check bool "crop restores" true (Codec.Plane.equal p cropped)

let test_plane_pad_identity_when_aligned () =
  let p = Codec.Plane.create ~width:8 ~height:16 in
  check bool "no-op pad is physical identity" true
    (Codec.Plane.pad_to_multiple p 8 == p)

let test_plane_ycbcr_gray_roundtrip () =
  (* Grays survive the colour transform exactly. *)
  let img = Image.Raster.init ~width:8 ~height:8 (fun ~x ~y ->
      Image.Pixel.gray ((x + (y * 8)) * 4 mod 256))
  in
  let back = Codec.Plane.to_raster (Codec.Plane.of_raster img) in
  check bool "gray image round-trips" true
    (Image.Metrics.max_absolute_error img back <= 1)

let test_plane_ycbcr_color_bounded () =
  let rng = Image.Prng.create ~seed:77 in
  let img = Image.Raster.init ~width:16 ~height:16 (fun ~x:_ ~y:_ ->
      Image.Pixel.v (Image.Prng.int rng 256) (Image.Prng.int rng 256)
        (Image.Prng.int rng 256))
  in
  let back = Codec.Plane.to_raster (Codec.Plane.of_raster img) in
  (* Chroma subsampling loses high-frequency colour, so compare
     luminance, which is carried at full resolution. *)
  let y_err =
    Codec.Plane.mean_absolute_difference
      (Codec.Plane.of_raster img).Codec.Plane.y
      (Codec.Plane.of_raster back).Codec.Plane.y
  in
  check bool "luma nearly preserved" true (y_err < 3.)

(* --- Motion ----------------------------------------------------------- *)

let shifted_plane ~dx ~dy src =
  let out = Codec.Plane.create ~width:src.Codec.Plane.width ~height:src.Codec.Plane.height in
  for y = 0 to out.Codec.Plane.height - 1 do
    for x = 0 to out.Codec.Plane.width - 1 do
      Codec.Plane.set out ~x ~y (Codec.Plane.get src ~x:(x - dx) ~y:(y - dy))
    done
  done;
  out

let textured_plane seed =
  let rng = Image.Prng.create ~seed in
  let p = Codec.Plane.create ~width:32 ~height:32 in
  for y = 0 to 31 do
    for x = 0 to 31 do
      Codec.Plane.set p ~x ~y (Image.Prng.int rng 256)
    done
  done;
  p

let test_motion_finds_exact_shift () =
  let reference = textured_plane 5 in
  (* Content moves right by 3 and up by 2: current(x,y) =
     reference(x-3, y+2). The prediction vector points back into the
     reference, so the search must return (-3, +2). *)
  let current = shifted_plane ~dx:3 ~dy:(-2) reference in
  let v, sad = Codec.Motion.search ~range:4 ~current ~reference ~x:8 ~y:8 () in
  check int "dx" (-3) v.Codec.Motion.dx;
  check int "dy" 2 v.Codec.Motion.dy;
  check int "sad is zero" 0 sad

let test_motion_zero_preferred_on_tie () =
  let reference = Codec.Plane.create ~width:16 ~height:16 in
  let current = Codec.Plane.create ~width:16 ~height:16 in
  let v, sad = Codec.Motion.search ~range:3 ~current ~reference ~x:4 ~y:4 () in
  check int "zero dx" 0 v.Codec.Motion.dx;
  check int "zero dy" 0 v.Codec.Motion.dy;
  check int "flat sad" 0 sad

let test_motion_halve () =
  let h = Codec.Motion.halve { Codec.Motion.dx = 5; dy = -5 } in
  check int "halved dx towards zero" 2 h.Codec.Motion.dx;
  check int "halved dy towards zero" (-2) h.Codec.Motion.dy

let test_motion_halfpel_integer_positions_exact () =
  (* At even half-pel coordinates the interpolated prediction equals
     the integer-pel one. *)
  let p = textured_plane 11 in
  let v_int = { Codec.Motion.dx = 2; dy = -1 } in
  let v_half = Codec.Motion.to_halfpel v_int in
  check bool "same block" true
    (Codec.Motion.extract_predicted p ~x:8 ~y:8 v_int
    = Codec.Motion.extract_predicted_halfpel p ~x:8 ~y:8 v_half)

let test_motion_halfpel_interpolates () =
  (* A horizontal ramp: the half-pel sample between columns is their
     rounded average. *)
  let p = Codec.Plane.create ~width:16 ~height:16 in
  for y = 0 to 15 do
    for x = 0 to 15 do
      Codec.Plane.set p ~x ~y (x * 10)
    done
  done;
  let block =
    Codec.Motion.extract_predicted_halfpel p ~x:4 ~y:4 { Codec.Motion.dx = 1; dy = 0 }
  in
  (* Sample at (4.5, 4): average of 40 and 50. *)
  check (Alcotest.float 1e-9) "bilinear midpoint" 45. block.(0)

let test_motion_halfpel_refinement_wins_on_subpel_shift () =
  (* Content shifted by half a pixel: the refined vector must beat the
     integer-pel one on SAD. *)
  let reference = Codec.Plane.create ~width:32 ~height:32 in
  for y = 0 to 31 do
    for x = 0 to 31 do
      Codec.Plane.set reference ~x ~y (((x * 13) + (y * 7)) mod 256)
    done
  done;
  let current = Codec.Plane.create ~width:32 ~height:32 in
  for y = 0 to 31 do
    for x = 0 to 31 do
      (* current(x) = average of reference(x) and reference(x+1): a
         half-pel shift left. *)
      let a = Codec.Plane.get reference ~x ~y and b = Codec.Plane.get reference ~x:(x + 1) ~y in
      Codec.Plane.set current ~x ~y ((a + b + 1) / 2)
    done
  done;
  let integer_vec, integer_sad =
    Codec.Motion.search ~range:2 ~current ~reference ~x:8 ~y:8 ()
  in
  let refined, refined_sad =
    Codec.Motion.refine_halfpel ~current ~reference ~x:8 ~y:8 integer_vec
  in
  check bool "refinement strictly better" true (refined_sad < integer_sad);
  check int "finds the half-pel shift" 1 refined.Codec.Motion.dx

let test_motion_chroma_vector () =
  let v = { Codec.Motion.dx = 9; dy = -9 } in
  let c = Codec.Motion.chroma_vector v in
  check int "dx floors" 2 c.Codec.Motion.dx;
  check int "dy floors" (-3) c.Codec.Motion.dy

let test_motion_extract_store_roundtrip () =
  let p = textured_plane 9 in
  let block = Codec.Motion.extract_block p ~x:8 ~y:16 in
  let q = Codec.Plane.create ~width:32 ~height:32 in
  Codec.Motion.store_block q ~x:8 ~y:16 block;
  let block' = Codec.Motion.extract_block q ~x:8 ~y:16 in
  check bool "block preserved" true (block = block')

(* --- Encoder / Decoder ------------------------------------------------ *)

let test_clip ?(width = 48) ?(height = 32) ?(frames = 8) ?(seed = 21) () =
  let profile =
    {
      Video.Profile.name = "codec-test";
      seed;
      scenes =
        [
          Video.Profile.scene ~seconds:(float_of_int frames /. 8.)
            ~subjects:
              [
                {
                  Video.Profile.level = 220;
                  size = 150;
                  speed = 10.;
                  vertical_phase = 0.5;
                };
              ]
            ~noise_sigma:1.5
            (Video.Profile.Vertical { top = 40; bottom = 90 });
        ];
    }
  in
  Video.Clip_gen.render ~width ~height ~fps:8. profile

let test_codec_roundtrip_psnr () =
  let clip = test_clip () in
  let encoded = Codec.Encoder.encode_clip clip in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  check int "frame count" clip.Video.Clip.frame_count
    (Array.length decoded.Codec.Decoder.frames);
  check int "width" clip.Video.Clip.width decoded.Codec.Decoder.width;
  Array.iteri
    (fun i frame ->
      let psnr = Image.Metrics.psnr (clip.Video.Clip.render i) frame in
      check bool (Printf.sprintf "frame %d psnr %.1f > 27dB" i psnr) true (psnr > 27.))
    decoded.Codec.Decoder.frames

let test_codec_p_frames_smaller () =
  let clip = test_clip ~frames:8 () in
  let encoded = Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with gop = 8 } clip in
  check bool "first frame is I" true
    (encoded.Codec.Encoder.frame_types.(0) = Codec.Stream.I_frame);
  check bool "second frame is P" true
    (encoded.Codec.Encoder.frame_types.(1) = Codec.Stream.P_frame);
  (* Slow panning content: P frames should cost well under an I frame. *)
  check bool "P smaller than I" true
    (encoded.Codec.Encoder.frame_sizes_bits.(1)
     < encoded.Codec.Encoder.frame_sizes_bits.(0))

let test_codec_gop_structure () =
  let clip = test_clip ~frames:8 () in
  let encoded =
    Codec.Encoder.encode_clip
      ~params:{ Codec.Stream.default_params with gop = 3 } clip
  in
  Array.iteri
    (fun i t ->
      let expected = if i mod 3 = 0 then Codec.Stream.I_frame else Codec.Stream.P_frame in
      check bool (Printf.sprintf "frame %d type" i) true (t = expected))
    encoded.Codec.Encoder.frame_types

let test_codec_higher_qp_smaller_stream () =
  let clip = test_clip () in
  let size qp =
    Codec.Encoder.total_bytes
      (Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with qp } clip)
  in
  check bool "qp 20 smaller than qp 4" true (size 20 < size 4)

let test_codec_higher_qp_lower_quality () =
  let clip = test_clip () in
  let psnr qp =
    let e = Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with qp } clip in
    let d = Codec.Decoder.decode_exn e.Codec.Encoder.data in
    Image.Metrics.psnr (clip.Video.Clip.render 0) d.Codec.Decoder.frames.(0)
  in
  check bool "qp 2 beats qp 25" true (psnr 2 > psnr 25)

let test_codec_odd_dimensions () =
  (* Dimensions not divisible by 8 or 16 exercise padding and chroma
     geometry. *)
  let clip = test_clip ~width:37 ~height:21 ~frames:4 () in
  let encoded = Codec.Encoder.encode_clip clip in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  check int "width preserved" 37 decoded.Codec.Decoder.width;
  check int "height preserved" 21 decoded.Codec.Decoder.height;
  Array.iteri
    (fun i frame ->
      let psnr = Image.Metrics.psnr (clip.Video.Clip.render i) frame in
      check bool (Printf.sprintf "frame %d decodes" i) true (psnr > 28.))
    decoded.Codec.Decoder.frames

let test_codec_single_frame () =
  let clip = test_clip ~frames:1 () in
  let encoded = Codec.Encoder.encode_clip clip in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  check int "one frame" 1 (Array.length decoded.Codec.Decoder.frames)

let test_codec_rejects_bad_params () =
  let clip = test_clip ~frames:1 () in
  Alcotest.check_raises "bad qp" (Invalid_argument "Encoder: qp out of [1, 31]")
    (fun () ->
      ignore
        (Codec.Encoder.encode_clip
           ~params:{ Codec.Stream.default_params with qp = 0 } clip))

let test_decoder_rejects_garbage () =
  check bool "garbage rejected" true
    (Result.is_error (Codec.Decoder.decode "not a stream at all"));
  check bool "empty rejected" true (Result.is_error (Codec.Decoder.decode ""))

let test_decoder_rejects_truncation () =
  let clip = test_clip ~frames:4 () in
  let encoded = Codec.Encoder.encode_clip clip in
  let data = encoded.Codec.Encoder.data in
  let truncated = String.sub data 0 (String.length data / 2) in
  check bool "truncated rejected" true (Result.is_error (Codec.Decoder.decode truncated))

let test_decoder_mutation_fuzz () =
  (* Flipping arbitrary bytes in a valid stream must never escape as an
     exception: the decoder returns Ok (the damage landed in
     recoverable coefficient data) or Error, nothing else. *)
  let clip = test_clip ~frames:4 () in
  let encoded = Codec.Encoder.encode_clip clip in
  let data = encoded.Codec.Encoder.data in
  let rng = Image.Prng.create ~seed:2024 in
  for _ = 1 to 200 do
    let mutated = Bytes.of_string data in
    (* One to three byte flips per trial. *)
    for _ = 0 to Image.Prng.int rng 3 do
      let pos = Image.Prng.int rng (Bytes.length mutated) in
      Bytes.set mutated pos (Char.chr (Image.Prng.int rng 256))
    done;
    match Codec.Decoder.decode (Bytes.to_string mutated) with
    | Ok _ | Error _ -> ()
  done;
  check bool "no escaped exceptions over 200 mutations" true true

let test_decoder_rejects_bad_magic () =
  let clip = test_clip ~frames:1 () in
  let encoded = Codec.Encoder.encode_clip clip in
  let data = Bytes.of_string encoded.Codec.Encoder.data in
  Bytes.set data 0 'X';
  (match Codec.Decoder.decode (Bytes.to_string data) with
  | Error msg -> check bool "mentions magic" true (msg = "bad magic")
  | Ok _ -> Alcotest.fail "bad magic accepted")

let test_codec_static_clip_compresses_well () =
  (* A fully static clip with smooth structure: the I frame carries the
     content, every P frame should collapse to skip-like blocks because
     prediction from the reconstructed reference is near-exact. *)
  let frame = Image.Raster.create ~width:32 ~height:32 in
  Image.Draw.fill_vertical_gradient frame ~top:(Image.Pixel.gray 30)
    ~bottom:(Image.Pixel.gray 200);
  Image.Draw.disc frame ~cx:16 ~cy:16 ~radius:7 (Image.Pixel.gray 240);
  let clip = Video.Clip.of_frames ~name:"static" ~fps:8. (Array.make 8 frame) in
  let encoded = Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with gop = 8 } clip in
  let i_size = encoded.Codec.Encoder.frame_sizes_bits.(0) in
  for i = 1 to 7 do
    check bool (Printf.sprintf "P frame %d tiny" i) true
      (encoded.Codec.Encoder.frame_sizes_bits.(i) * 4 < i_size)
  done

(* --- Deblock -------------------------------------------------------------- *)

let blocky_frame () =
  (* Constant 8x8 tiles of alternating levels: maximal grid artefact. *)
  Image.Raster.init ~width:32 ~height:32 (fun ~x ~y ->
      Image.Pixel.gray (if ((x / 8) + (y / 8)) mod 2 = 0 then 100 else 112))

let test_deblock_blockiness_metric () =
  let blocky = blocky_frame () in
  let smooth = Image.Raster.create ~width:32 ~height:32 in
  Image.Draw.fill_vertical_gradient smooth ~top:(Image.Pixel.gray 60)
    ~bottom:(Image.Pixel.gray 180);
  check bool "tiles are blocky" true (Codec.Deblock.blockiness blocky > 5.);
  check bool "gradient is clean" true (Codec.Deblock.blockiness smooth < 1.)

let test_deblock_reduces_blockiness () =
  let blocky = blocky_frame () in
  let filtered = Codec.Deblock.filter blocky in
  check bool "filter reduces the metric" true
    (Codec.Deblock.blockiness filtered < Codec.Deblock.blockiness blocky)

let test_deblock_preserves_strong_edges () =
  (* A hard 100-level edge aligned to the grid is image content. *)
  let img = Image.Raster.init ~width:32 ~height:32 (fun ~x ~y ->
      ignore y;
      Image.Pixel.gray (if x < 16 then 40 else 160))
  in
  let filtered = Codec.Deblock.filter img in
  check bool "strong edge untouched" true (Image.Raster.equal img filtered)

let test_deblock_on_coarse_stream () =
  (* Decoding a coarse-quantiser stream and filtering must reduce
     blockiness without wrecking PSNR. *)
  let clip = test_clip ~frames:2 () in
  let encoded =
    Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with qp = 28 } clip
  in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  let raw = decoded.Codec.Decoder.frames.(0) in
  let filtered = Codec.Deblock.filter raw in
  check bool "blockiness reduced" true
    (Codec.Deblock.blockiness filtered <= Codec.Deblock.blockiness raw);
  let original = clip.Video.Clip.render 0 in
  check bool "psnr within 1.5 dB" true
    (Image.Metrics.psnr original filtered > Image.Metrics.psnr original raw -. 1.5)

(* --- Gop planner --------------------------------------------------------- *)

let test_gop_planner_anchors () =
  let t = Codec.Gop_planner.plan ~max_interval:100 ~scene_starts:[ 10; 25 ] ~frame_count:40 in
  Alcotest.(check (list int)) "anchors" [ 0; 10; 25 ] (Codec.Gop_planner.positions t);
  check bool "predicate true at anchor" true (Codec.Gop_planner.i_frame_at t 10);
  check bool "predicate false elsewhere" false (Codec.Gop_planner.i_frame_at t 11)

let test_gop_planner_refresh_inside_long_scene () =
  let t = Codec.Gop_planner.plan ~max_interval:10 ~scene_starts:[] ~frame_count:35 in
  Alcotest.(check (list int)) "periodic refreshes" [ 0; 10; 20; 30 ]
    (Codec.Gop_planner.positions t);
  (* No gap between consecutive marks (or the end) exceeds the interval. *)
  let rec gaps = function
    | a :: (b :: _ as rest) ->
      check bool "gap bounded" true (b - a <= 10);
      gaps rest
    | [ last ] -> check bool "tail bounded" true (35 - last <= 10)
    | [] -> ()
  in
  gaps (Codec.Gop_planner.positions t)

let test_gop_planner_validation () =
  Alcotest.check_raises "bad start"
    (Invalid_argument "Gop_planner.plan: scene start out of range") (fun () ->
      ignore (Codec.Gop_planner.plan ~max_interval:5 ~scene_starts:[ 50 ] ~frame_count:10))

let test_encoder_custom_i_frames () =
  let clip = test_clip ~frames:8 () in
  let encoded =
    Codec.Encoder.encode_clip
      ~params:{ Codec.Stream.default_params with gop = 100 }
      ~i_frame_at:(fun i -> i = 0 || i = 5)
      clip
  in
  Array.iteri
    (fun i t ->
      let expected = if i = 0 || i = 5 then Codec.Stream.I_frame else Codec.Stream.P_frame in
      check bool (Printf.sprintf "frame %d type" i) true (t = expected))
    encoded.Codec.Encoder.frame_types;
  (* The stream still decodes losslessly at the container level. *)
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  check int "decodes fully" 8 (Array.length decoded.Codec.Decoder.frames)

(* --- Rate control ------------------------------------------------------ *)

let test_rate_control_fits_budget () =
  let clip = test_clip ~frames:6 () in
  let generous = Codec.Encoder.total_bytes (Codec.Encoder.encode_clip clip) in
  let target_bytes = generous * 2 / 3 in
  let outcome = Codec.Rate_control.for_target_bytes ~target_bytes clip in
  check bool "fits" true outcome.Codec.Rate_control.fits;
  check bool "within budget" true
    (Codec.Encoder.total_bytes outcome.Codec.Rate_control.encoded <= target_bytes);
  check bool "bounded search" true (outcome.Codec.Rate_control.encodes_tried <= 6)

let test_rate_control_tight_budget_reports () =
  let clip = test_clip ~frames:4 () in
  (* An absurd one-byte budget cannot be met. *)
  let outcome = Codec.Rate_control.for_target_bytes ~target_bytes:1 clip in
  check bool "does not fit" false outcome.Codec.Rate_control.fits;
  check int "delivers the coarsest quantiser" 31
    outcome.Codec.Rate_control.encoded.Codec.Encoder.params.Codec.Stream.qp

let test_rate_control_finest_feasible () =
  (* The chosen qp is minimal: one step finer must overshoot. *)
  let clip = test_clip ~frames:6 () in
  let generous = Codec.Encoder.total_bytes (Codec.Encoder.encode_clip clip) in
  let target_bytes = generous * 3 / 4 in
  let outcome = Codec.Rate_control.for_target_bytes ~target_bytes clip in
  let qp = outcome.Codec.Rate_control.encoded.Codec.Encoder.params.Codec.Stream.qp in
  if qp > 1 then begin
    let finer =
      Codec.Encoder.encode_clip
        ~params:{ Codec.Stream.default_params with qp = qp - 1 }
        clip
    in
    check bool "one step finer overshoots" true
      (Codec.Encoder.total_bytes finer > target_bytes)
  end

let test_rate_control_for_link () =
  let clip = test_clip ~frames:8 () in
  (* A link sized to roughly half the default-quality stream. *)
  let default_bytes = Codec.Encoder.total_bytes (Codec.Encoder.encode_clip clip) in
  let duration = Video.Clip.duration_seconds clip in
  let link_bps = float_of_int default_bytes *. 8. /. duration /. 2. in
  let outcome = Codec.Rate_control.for_link ~link_bps clip in
  if outcome.Codec.Rate_control.fits then
    check bool "stream fits the link budget" true
      (float_of_int (Codec.Encoder.total_bytes outcome.Codec.Rate_control.encoded)
       <= 0.8 *. link_bps *. duration /. 8. +. 1.)

let test_per_frame_qp_roundtrip () =
  (* Alternating quantisers frame to frame: the stream must decode and
     the finer frames must look better. *)
  let clip = test_clip ~frames:6 () in
  let encoded =
    Codec.Encoder.encode_clip
      ~qp_for:(fun ~index ~total_bits:_ -> if index mod 2 = 0 then 2 else 28)
      clip
  in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  check int "all frames decode" 6 (Array.length decoded.Codec.Decoder.frames);
  let psnr i = Image.Metrics.psnr (clip.Video.Clip.render i) decoded.Codec.Decoder.frames.(i) in
  (* Frame 0 (qp 2, intra) is much cleaner than a qp-28 I-frame would
     be; compare I-frame 0 against a qp-28 constant encode. *)
  let coarse =
    Codec.Decoder.decode_exn
      (Codec.Encoder.encode_clip
         ~params:{ Codec.Stream.default_params with qp = 28 } clip)
        .Codec.Encoder.data
  in
  check bool "fine I-frame beats coarse I-frame" true
    (psnr 0 > Image.Metrics.psnr (clip.Video.Clip.render 0) coarse.Codec.Decoder.frames.(0))

let test_per_frame_qp_validated () =
  let clip = test_clip ~frames:2 () in
  Alcotest.check_raises "controller qp out of range"
    (Invalid_argument "Encoder: controller qp out of [1, 31]") (fun () ->
      ignore (Codec.Encoder.encode_clip ~qp_for:(fun ~index:_ ~total_bits:_ -> 0) clip))

let test_single_pass_lands_near_budget () =
  (* A proportional controller carries steady-state error, so the
     landing is loose; what matters is a single pass that tracks the
     budget's ballpark instead of ignoring it. *)
  let clip = test_clip ~frames:24 () in
  let reference = Codec.Encoder.total_bytes (Codec.Encoder.encode_clip clip) in
  let target_bytes = reference * 6 / 10 in
  let outcome = Codec.Rate_control.single_pass ~target_bytes clip in
  check int "single encode" 1 outcome.Codec.Rate_control.encodes_tried;
  let produced = Codec.Encoder.total_bytes outcome.Codec.Rate_control.encoded in
  check bool
    (Printf.sprintf "landed within 35%% of budget (%d vs %d)" produced target_bytes)
    true
    (produced < target_bytes * 135 / 100 && produced > target_bytes / 2);
  check bool "well below the uncontrolled size" true (produced < reference * 85 / 100)

let test_rate_control_min_qp_floor () =
  let clip = test_clip ~frames:4 () in
  let outcome =
    Codec.Rate_control.for_target_bytes ~min_qp:12 ~target_bytes:10_000_000 clip
  in
  check bool "floor respected even with a huge budget" true
    (outcome.Codec.Rate_control.encoded.Codec.Encoder.params.Codec.Stream.qp >= 12)

let test_rate_control_validation () =
  let clip = test_clip ~frames:1 () in
  Alcotest.check_raises "bad target"
    (Invalid_argument "Rate_control.for_target_bytes: target must be positive")
    (fun () -> ignore (Codec.Rate_control.for_target_bytes ~target_bytes:0 clip))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bitio_roundtrip;
      prop_golomb_ue_roundtrip;
      prop_golomb_se_roundtrip;
      prop_zigzag_roundtrip;
      prop_coeff_roundtrip;
    ]

let () =
  Alcotest.run "codec"
    [
      ( "bitio",
        [
          Alcotest.test_case "single bits" `Quick test_bitio_single_bits;
          Alcotest.test_case "multibit values" `Quick test_bitio_multibit_values;
          Alcotest.test_case "value too wide" `Quick test_bitio_value_too_wide;
          Alcotest.test_case "alignment" `Quick test_bitio_alignment;
          Alcotest.test_case "out of bits" `Quick test_bitio_out_of_bits;
        ] );
      ( "golomb",
        [
          Alcotest.test_case "small values" `Quick test_golomb_small_values;
          Alcotest.test_case "code lengths" `Quick test_golomb_code_lengths;
          Alcotest.test_case "negative rejected" `Quick test_golomb_negative_rejected;
        ] );
      ( "zigzag",
        [
          Alcotest.test_case "permutation" `Quick test_zigzag_is_permutation;
          Alcotest.test_case "starts at DC" `Quick test_zigzag_starts_at_dc;
        ] );
      ( "dct",
        [
          Alcotest.test_case "roundtrip accuracy" `Quick test_dct_roundtrip_accuracy;
          Alcotest.test_case "flat block DC" `Quick test_dct_dc_of_flat_block;
          Alcotest.test_case "parseval" `Quick test_dct_parseval;
          Alcotest.test_case "bad size" `Quick test_dct_bad_size;
        ] );
      ( "quant",
        [
          Alcotest.test_case "zero preserved" `Quick test_quant_zero_preserved;
          Alcotest.test_case "coarser at higher qp" `Quick test_quant_coarser_at_higher_qp;
          Alcotest.test_case "bounded error" `Quick test_quant_dequant_bounded_error;
          Alcotest.test_case "invalid qp" `Quick test_quant_invalid_qp;
        ] );
      ( "coeff",
        [
          Alcotest.test_case "all-zero block" `Quick test_coeff_all_zero_block;
          Alcotest.test_case "sparse block" `Quick test_coeff_sparse_block;
          Alcotest.test_case "exact bit cost" `Quick test_coeff_bit_cost_exact;
        ] );
      ( "plane",
        [
          Alcotest.test_case "edge clamped reads" `Quick test_plane_edge_clamped_reads;
          Alcotest.test_case "pad and crop" `Quick test_plane_pad_and_crop;
          Alcotest.test_case "aligned pad no-op" `Quick test_plane_pad_identity_when_aligned;
          Alcotest.test_case "ycbcr gray roundtrip" `Quick test_plane_ycbcr_gray_roundtrip;
          Alcotest.test_case "ycbcr color bounded" `Quick test_plane_ycbcr_color_bounded;
        ] );
      ( "motion",
        [
          Alcotest.test_case "finds exact shift" `Quick test_motion_finds_exact_shift;
          Alcotest.test_case "zero preferred on tie" `Quick test_motion_zero_preferred_on_tie;
          Alcotest.test_case "halve" `Quick test_motion_halve;
          Alcotest.test_case "halfpel exact at integers" `Quick
            test_motion_halfpel_integer_positions_exact;
          Alcotest.test_case "halfpel interpolates" `Quick test_motion_halfpel_interpolates;
          Alcotest.test_case "halfpel refinement" `Quick
            test_motion_halfpel_refinement_wins_on_subpel_shift;
          Alcotest.test_case "chroma vector" `Quick test_motion_chroma_vector;
          Alcotest.test_case "extract/store roundtrip" `Quick
            test_motion_extract_store_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "roundtrip PSNR" `Quick test_codec_roundtrip_psnr;
          Alcotest.test_case "P frames smaller" `Quick test_codec_p_frames_smaller;
          Alcotest.test_case "gop structure" `Quick test_codec_gop_structure;
          Alcotest.test_case "qp vs size" `Quick test_codec_higher_qp_smaller_stream;
          Alcotest.test_case "qp vs quality" `Quick test_codec_higher_qp_lower_quality;
          Alcotest.test_case "odd dimensions" `Quick test_codec_odd_dimensions;
          Alcotest.test_case "single frame" `Quick test_codec_single_frame;
          Alcotest.test_case "rejects bad params" `Quick test_codec_rejects_bad_params;
          Alcotest.test_case "static clip compresses" `Quick
            test_codec_static_clip_compresses_well;
        ] );
      ( "deblock",
        [
          Alcotest.test_case "blockiness metric" `Quick test_deblock_blockiness_metric;
          Alcotest.test_case "reduces blockiness" `Quick test_deblock_reduces_blockiness;
          Alcotest.test_case "preserves strong edges" `Quick
            test_deblock_preserves_strong_edges;
          Alcotest.test_case "coarse stream" `Quick test_deblock_on_coarse_stream;
        ] );
      ( "gop planner",
        [
          Alcotest.test_case "anchors" `Quick test_gop_planner_anchors;
          Alcotest.test_case "refresh in long scenes" `Quick
            test_gop_planner_refresh_inside_long_scene;
          Alcotest.test_case "validation" `Quick test_gop_planner_validation;
          Alcotest.test_case "encoder custom I frames" `Quick test_encoder_custom_i_frames;
        ] );
      ( "rate control",
        [
          Alcotest.test_case "fits budget" `Quick test_rate_control_fits_budget;
          Alcotest.test_case "tight budget" `Quick test_rate_control_tight_budget_reports;
          Alcotest.test_case "finest feasible" `Quick test_rate_control_finest_feasible;
          Alcotest.test_case "for link" `Quick test_rate_control_for_link;
          Alcotest.test_case "min qp floor" `Quick test_rate_control_min_qp_floor;
          Alcotest.test_case "per-frame qp roundtrip" `Quick test_per_frame_qp_roundtrip;
          Alcotest.test_case "per-frame qp validated" `Quick test_per_frame_qp_validated;
          Alcotest.test_case "single-pass control" `Quick test_single_pass_lands_near_budget;
          Alcotest.test_case "validation" `Quick test_rate_control_validation;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "garbage rejected" `Quick test_decoder_rejects_garbage;
          Alcotest.test_case "truncation rejected" `Quick test_decoder_rejects_truncation;
          Alcotest.test_case "bad magic rejected" `Quick test_decoder_rejects_bad_magic;
          Alcotest.test_case "mutation fuzz" `Quick test_decoder_mutation_fuzz;
        ] );
      ("properties", qtests);
    ]
