(* Tests for the power models, the sampling meter and the battery
   accounting. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let device = Display.Device.ipaq_h5555

(* --- Model ------------------------------------------------------------ *)

let test_backlight_power_endpoints () =
  check (Alcotest.float 1e-9) "off is zero" 0.
    (Power.Model.backlight_power_mw device ~on:false ~register:255);
  check (Alcotest.float 1e-9) "full register"
    device.Display.Device.backlight_power_full_mw
    (Power.Model.backlight_power_mw device ~on:true ~register:255);
  check (Alcotest.float 1e-9) "zero register is the floor"
    device.Display.Device.backlight_power_floor_mw
    (Power.Model.backlight_power_mw device ~on:true ~register:0)

let test_backlight_power_proportional () =
  (* §5: power is almost proportional to backlight level. Our model is
     exactly affine in the register. *)
  let p r = Power.Model.backlight_power_mw device ~on:true ~register:r in
  let midpoint = (p 0 +. p 255) /. 2. in
  check bool "register clamps below" true (p (-10) = p 0);
  check bool "register clamps above" true (p 400 = p 255);
  check (Alcotest.float 0.9) "affine midpoint" midpoint (p 128)

let test_backlight_power_monotone () =
  let previous = ref (-1.) in
  for r = 0 to 255 do
    let p = Power.Model.backlight_power_mw device ~on:true ~register:r in
    check bool (Printf.sprintf "monotone at %d" r) true (p >= !previous);
    previous := p
  done

let test_device_power_components () =
  let b = Power.Model.component_breakdown device Power.State.playback_full in
  check bool "all components positive" true
    (b.Power.Model.backlight_mw > 0. && b.Power.Model.lcd_logic_mw > 0.
     && b.Power.Model.cpu_mw > 0. && b.Power.Model.network_mw > 0.
     && b.Power.Model.base_mw > 0.);
  check (Alcotest.float 1e-9) "total is the sum"
    (b.Power.Model.backlight_mw +. b.Power.Model.lcd_logic_mw
     +. b.Power.Model.cpu_mw +. b.Power.Model.network_mw +. b.Power.Model.base_mw)
    (Power.Model.total_mw b)

let test_backlight_share_in_paper_band () =
  (* §4: "the backlight dominates other components, with about 25-30% of
     total power consumption" — check all three devices at playback. *)
  List.iter
    (fun d ->
      let share = Power.Model.backlight_share d Power.State.playback_full in
      check bool
        (Printf.sprintf "%s share %.2f in [0.20, 0.35]" d.Display.Device.name share)
        true
        (share >= 0.20 && share <= 0.35))
    Display.Device.all

let test_cpu_and_network_states_matter () =
  let base = Power.State.playback_full in
  let idle_cpu = { base with Power.State.cpu = Power.State.Cpu_idle } in
  let idle_net = { base with Power.State.network = Power.State.Net_idle } in
  check bool "busy cpu costs more" true
    (Power.Model.device_power_mw device base > Power.Model.device_power_mw device idle_cpu);
  check bool "receiving costs more" true
    (Power.Model.device_power_mw device base > Power.Model.device_power_mw device idle_net)

(* --- Meter ------------------------------------------------------------ *)

let test_meter_constant_power () =
  let m = Power.Meter.create ~sample_rate_hz:1000. () in
  let r = Power.Meter.measure m ~duration_s:2. (fun _ -> 100.) in
  check (Alcotest.float 1e-6) "energy" 200. r.Power.Meter.energy_mj;
  check (Alcotest.float 1e-6) "average" 100. r.Power.Meter.average_power_mw;
  check (Alcotest.float 1e-6) "peak" 100. r.Power.Meter.peak_power_mw;
  check int "samples" 2000 r.Power.Meter.samples

let test_meter_step_signal () =
  let m = Power.Meter.create ~sample_rate_hz:1000. () in
  let r =
    Power.Meter.measure m ~duration_s:1. (fun t -> if t < 0.5 then 100. else 300.)
  in
  check (Alcotest.float 0.5) "energy of step" 200. r.Power.Meter.energy_mj;
  check (Alcotest.float 1e-6) "peak" 300. r.Power.Meter.peak_power_mw;
  check (Alcotest.float 1e-6) "min" 100. r.Power.Meter.min_power_mw

let test_meter_trace_resampling () =
  let m = Power.Meter.create ~sample_rate_hz:2000. () in
  (* Three frames at 10 fps: 0.3 s total. *)
  let r = Power.Meter.measure_trace m ~dt_s:0.1 [| 100.; 200.; 300. |] in
  check (Alcotest.float 0.5) "trace energy" 60. r.Power.Meter.energy_mj;
  check (Alcotest.float 1e-9) "duration" 0.3 r.Power.Meter.duration_s

let test_meter_default_rate_matches_paper () =
  check (Alcotest.float 1e-9) "2 kS/s like the DAQ" 2000.
    (Power.Meter.sample_rate_hz (Power.Meter.create ()))

let test_meter_savings () =
  let m = Power.Meter.create () in
  let baseline = Power.Meter.measure m ~duration_s:1. (fun _ -> 200.) in
  let optimised = Power.Meter.measure m ~duration_s:1. (fun _ -> 150.) in
  check (Alcotest.float 1e-6) "25%% saving" 0.25
    (Power.Meter.savings_vs ~baseline optimised)

let test_meter_validation () =
  let m = Power.Meter.create () in
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Meter.measure: duration must be positive") (fun () ->
      ignore (Power.Meter.measure m ~duration_s:0. (fun _ -> 1.)));
  Alcotest.check_raises "empty trace"
    (Invalid_argument "Meter.measure_trace: empty trace") (fun () ->
      ignore (Power.Meter.measure_trace m ~dt_s:0.1 [||]));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Meter.create: rate must be positive") (fun () ->
      ignore (Power.Meter.create ~sample_rate_hz:0. ()))

(* --- Oled --------------------------------------------------------------- *)

let oled = Power.Oled.typical_amoled

let gray_frame level =
  let img = Image.Raster.create ~width:8 ~height:8 in
  Image.Raster.fill img (Image.Pixel.gray level);
  img

let test_oled_black_and_white () =
  check (Alcotest.float 1e-6) "black costs base" oled.Power.Oled.base_mw
    (Power.Oled.frame_power_mw oled (gray_frame 0));
  check (Alcotest.float 1e-6) "white costs base + full"
    (oled.Power.Oled.base_mw +. oled.Power.Oled.full_white_mw)
    (Power.Oled.frame_power_mw oled (gray_frame 255))

let test_oled_content_dependent () =
  check bool "brighter content costs more" true
    (Power.Oled.frame_power_mw oled (gray_frame 200)
     > Power.Oled.frame_power_mw oled (gray_frame 50))

let test_oled_blue_expensive () =
  let solid c =
    let img = Image.Raster.create ~width:8 ~height:8 in
    Image.Raster.fill img c;
    img
  in
  check bool "blue costs more than green" true
    (Power.Oled.frame_power_mw oled (solid (Image.Pixel.v 0 0 255))
     > Power.Oled.frame_power_mw oled (solid (Image.Pixel.v 0 255 0)))

let test_oled_compensation_costs_power () =
  (* The inversion the bench demonstrates: brightening a dark frame
     raises OLED power. *)
  let frame = gray_frame 60 in
  let brightened = Image.Ops.contrast_enhance ~k:2.5 frame in
  check bool "compensation raises emission" true
    (Power.Oled.frame_power_mw oled brightened > Power.Oled.frame_power_mw oled frame)

(* --- Battery ---------------------------------------------------------- *)

let test_battery_runtime () =
  let b = Power.Battery.make ~capacity_mwh:1000. in
  check (Alcotest.float 1e-9) "10 hours at 100mW" 10.
    (Power.Battery.runtime_hours b ~average_power_mw:100.)

let test_battery_extension () =
  let b = Power.Battery.make ~capacity_mwh:1000. in
  let ext =
    Power.Battery.runtime_extension b ~baseline_power_mw:200. ~optimized_power_mw:160.
  in
  check (Alcotest.float 1e-9) "extension hours" 1.25 ext;
  check (Alcotest.float 1e-9) "ratio capacity-independent" 0.25
    (Power.Battery.extension_ratio ~baseline_power_mw:200. ~optimized_power_mw:160.)

let test_battery_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Battery.make: capacity must be positive") (fun () ->
      ignore (Power.Battery.make ~capacity_mwh:0.))

(* --- Dvfs --------------------------------------------------------------- *)

let test_dvfs_levels_ordered () =
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      a.Power.Dvfs.frequency_mhz < b.Power.Dvfs.frequency_mhz
      && a.Power.Dvfs.busy_power_mw < b.Power.Dvfs.busy_power_mw
      && ordered rest
    | _ -> true
  in
  check bool "levels ascend in frequency and power" true
    (ordered Power.Dvfs.xscale_levels);
  check int "full speed is 400MHz" 400 Power.Dvfs.full_speed.Power.Dvfs.frequency_mhz;
  check (Alcotest.float 1e-6) "top busy power matches device profile" 600.
    Power.Dvfs.full_speed.Power.Dvfs.busy_power_mw

let test_dvfs_lowest_feasible () =
  (* 5M cycles in 83 ms fits at 100 MHz (8.3M available). *)
  (match Power.Dvfs.lowest_feasible ~cycles:5e6 ~deadline_s:0.083 with
  | Some l -> check int "small frame at 100MHz" 100 l.Power.Dvfs.frequency_mhz
  | None -> Alcotest.fail "expected a feasible level");
  (* 30M cycles needs the 400 MHz point. *)
  (match Power.Dvfs.lowest_feasible ~cycles:30e6 ~deadline_s:0.083 with
  | Some l -> check int "large frame at 400MHz" 400 l.Power.Dvfs.frequency_mhz
  | None -> Alcotest.fail "expected a feasible level");
  (* 50M cycles in 83 ms is infeasible even at full speed. *)
  check bool "infeasible detected" true
    (Power.Dvfs.lowest_feasible ~cycles:5e7 ~deadline_s:0.083 = None)

let test_dvfs_energy_lower_at_lower_level () =
  let cycles = 4e6 and deadline_s = 0.083 in
  let slow = List.hd Power.Dvfs.xscale_levels in
  let e_slow = Power.Dvfs.frame_energy_mj slow ~cycles ~deadline_s in
  let e_fast = Power.Dvfs.frame_energy_mj Power.Dvfs.full_speed ~cycles ~deadline_s in
  check bool "race-to-idle loses to slow-and-steady here" true (e_slow < e_fast)

let test_dvfs_validation () =
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Dvfs.lowest_feasible: non-positive deadline") (fun () ->
      ignore (Power.Dvfs.lowest_feasible ~cycles:1e6 ~deadline_s:0.))

(* --- Properties ------------------------------------------------------- *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"device power monotone in backlight register"
        QCheck2.Gen.(pair (0 -- 255) (0 -- 255))
        (fun (r1, r2) ->
          let lo = min r1 r2 and hi = max r1 r2 in
          let power r =
            Power.Model.device_power_mw device
              (Power.State.with_backlight r Power.State.playback_full)
          in
          power lo <= power hi);
      QCheck2.Test.make ~name:"meter energy scales linearly with power"
        QCheck2.Gen.(float_range 1. 1000.)
        (fun p ->
          let m = Power.Meter.create ~sample_rate_hz:100. () in
          let e1 = (Power.Meter.measure m ~duration_s:1. (fun _ -> p)).Power.Meter.energy_mj in
          let e2 =
            (Power.Meter.measure m ~duration_s:1. (fun _ -> 2. *. p)).Power.Meter.energy_mj
          in
          abs_float (e2 -. (2. *. e1)) < 1e-6);
      QCheck2.Test.make ~name:"savings_vs is antisymmetric around zero"
        QCheck2.Gen.(float_range 10. 500.)
        (fun p ->
          let m = Power.Meter.create ~sample_rate_hz:100. () in
          let a = Power.Meter.measure m ~duration_s:1. (fun _ -> p) in
          abs_float (Power.Meter.savings_vs ~baseline:a a) < 1e-12);
    ]

let () =
  Alcotest.run "power"
    [
      ( "model",
        [
          Alcotest.test_case "backlight endpoints" `Quick test_backlight_power_endpoints;
          Alcotest.test_case "proportionality" `Quick test_backlight_power_proportional;
          Alcotest.test_case "monotonicity" `Quick test_backlight_power_monotone;
          Alcotest.test_case "component breakdown" `Quick test_device_power_components;
          Alcotest.test_case "backlight share 25-30%" `Quick
            test_backlight_share_in_paper_band;
          Alcotest.test_case "cpu/network states" `Quick test_cpu_and_network_states_matter;
        ] );
      ( "meter",
        [
          Alcotest.test_case "constant power" `Quick test_meter_constant_power;
          Alcotest.test_case "step signal" `Quick test_meter_step_signal;
          Alcotest.test_case "trace resampling" `Quick test_meter_trace_resampling;
          Alcotest.test_case "paper sample rate" `Quick test_meter_default_rate_matches_paper;
          Alcotest.test_case "savings" `Quick test_meter_savings;
          Alcotest.test_case "validation" `Quick test_meter_validation;
        ] );
      ( "dvfs",
        [
          Alcotest.test_case "levels ordered" `Quick test_dvfs_levels_ordered;
          Alcotest.test_case "lowest feasible" `Quick test_dvfs_lowest_feasible;
          Alcotest.test_case "energy at lower level" `Quick
            test_dvfs_energy_lower_at_lower_level;
          Alcotest.test_case "validation" `Quick test_dvfs_validation;
        ] );
      ( "oled",
        [
          Alcotest.test_case "black and white" `Quick test_oled_black_and_white;
          Alcotest.test_case "content dependent" `Quick test_oled_content_dependent;
          Alcotest.test_case "blue expensive" `Quick test_oled_blue_expensive;
          Alcotest.test_case "compensation costs power" `Quick
            test_oled_compensation_costs_power;
        ] );
      ( "battery",
        [
          Alcotest.test_case "runtime" `Quick test_battery_runtime;
          Alcotest.test_case "extension" `Quick test_battery_extension;
          Alcotest.test_case "validation" `Quick test_battery_validation;
        ] );
      ("properties", qtests);
    ]
