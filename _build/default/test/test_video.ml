(* Tests for clips, profiles and the synthetic workload generator. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let tiny_profile =
  {
    Video.Profile.name = "tiny";
    seed = 42;
    scenes =
      [
        Video.Profile.scene ~seconds:1. (Video.Profile.Flat 30);
        Video.Profile.scene ~seconds:0.5 (Video.Profile.Flat 200);
      ];
  }

(* --- Clip ------------------------------------------------------------- *)

let test_clip_of_frames () =
  let frames =
    Array.init 3 (fun i ->
        let img = Image.Raster.create ~width:4 ~height:4 in
        Image.Raster.fill img (Image.Pixel.gray (i * 50));
        img)
  in
  let clip = Video.Clip.of_frames ~name:"t" ~fps:10. frames in
  check int "frame count" 3 clip.Video.Clip.frame_count;
  check (Alcotest.float 1e-9) "duration" 0.3 (Video.Clip.duration_seconds clip);
  check (Alcotest.float 1e-9) "frame time" 0.2 (Video.Clip.frame_time clip 2);
  check int "render frame 1" 50 (Image.Raster.max_luminance (clip.Video.Clip.render 1))

let test_clip_of_frames_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Clip.of_frames: empty clip")
    (fun () -> ignore (Video.Clip.of_frames ~name:"e" ~fps:10. [||]));
  let a = Image.Raster.create ~width:2 ~height:2 in
  let b = Image.Raster.create ~width:3 ~height:2 in
  Alcotest.check_raises "dims"
    (Invalid_argument "Clip.of_frames: inconsistent frame dimensions") (fun () ->
      ignore (Video.Clip.of_frames ~name:"d" ~fps:10. [| a; b |]))

let test_clip_render_bounds () =
  let clip =
    Video.Clip.make ~name:"b" ~width:2 ~height:2 ~fps:5. ~frame_count:2 (fun _ ->
        Image.Raster.create ~width:2 ~height:2)
  in
  Alcotest.check_raises "negative"
    (Invalid_argument "Clip.render: frame index out of range") (fun () ->
      ignore (clip.Video.Clip.render (-1)));
  Alcotest.check_raises "past end"
    (Invalid_argument "Clip.render: frame index out of range") (fun () ->
      ignore (clip.Video.Clip.render 2))

let test_clip_iter_order () =
  let clip =
    Video.Clip.make ~name:"o" ~width:1 ~height:1 ~fps:1. ~frame_count:4 (fun i ->
        let img = Image.Raster.create ~width:1 ~height:1 in
        Image.Raster.fill img (Image.Pixel.gray (i * 10));
        img)
  in
  let seen = ref [] in
  Video.Clip.iter_frames (fun i f ->
      seen := (i, Image.Raster.max_luminance f) :: !seen) clip;
  Alcotest.(check (list (pair int int)))
    "ordered" [ (0, 0); (1, 10); (2, 20); (3, 30) ] (List.rev !seen)

let test_clip_map_frames () =
  let clip =
    Video.Clip.make ~name:"m" ~width:2 ~height:2 ~fps:1. ~frame_count:1 (fun _ ->
        let img = Image.Raster.create ~width:2 ~height:2 in
        Image.Raster.fill img (Image.Pixel.gray 100);
        img)
  in
  let doubled =
    Video.Clip.map_frames ~name:"m2"
      (fun _ f -> Image.Ops.contrast_enhance ~k:2. f)
      clip
  in
  check int "mapped" 200 (Image.Raster.max_luminance (doubled.Video.Clip.render 0))

let test_max_luminance_track () =
  let clip = Video.Clip_gen.render ~width:16 ~height:12 ~fps:4. tiny_profile in
  let track = Video.Clip.max_luminance_track clip in
  check int "track length" clip.Video.Clip.frame_count (Array.length track);
  (* The flat-200 scene is brighter than the flat-30 scene. *)
  check bool "second scene brighter" true
    (track.(Array.length track - 1) > track.(0))

(* --- Profile ---------------------------------------------------------- *)

let test_profile_validation_ok () =
  Alcotest.(check (result unit string))
    "tiny profile valid" (Ok ())
    (Video.Profile.validate tiny_profile)

let test_profile_validation_errors () =
  let bad_scene scene = { tiny_profile with Video.Profile.scenes = [ scene ] } in
  let is_error p = Result.is_error (Video.Profile.validate p) in
  check bool "empty profile" true
    (is_error { tiny_profile with Video.Profile.scenes = [] });
  check bool "negative duration" true
    (is_error
       (bad_scene (Video.Profile.scene ~seconds:(-1.) (Video.Profile.Flat 10))));
  check bool "bad background level" true
    (is_error (bad_scene (Video.Profile.scene ~seconds:1. (Video.Profile.Flat 400))));
  check bool "bad vignette" true
    (is_error
       (bad_scene
          (Video.Profile.scene ~seconds:1. ~vignette:1.5 (Video.Profile.Flat 10))))

let test_profile_total_seconds () =
  check (Alcotest.float 1e-9) "total" 1.5 (Video.Profile.total_seconds tiny_profile);
  check int "scene count" 2 (Video.Profile.scene_count tiny_profile)

(* --- Clip_gen --------------------------------------------------------- *)

let test_clip_gen_dimensions () =
  let clip = Video.Clip_gen.render ~width:32 ~height:24 ~fps:8. tiny_profile in
  check int "width" 32 clip.Video.Clip.width;
  check int "height" 24 clip.Video.Clip.height;
  (* 1s at 8fps + 0.5s at 8fps = 8 + 4 frames. *)
  check int "frame count" 12 clip.Video.Clip.frame_count

let test_clip_gen_deterministic () =
  let c1 = Video.Clip_gen.render ~width:16 ~height:12 tiny_profile in
  let c2 = Video.Clip_gen.render ~width:16 ~height:12 tiny_profile in
  for i = 0 to c1.Video.Clip.frame_count - 1 do
    check bool
      (Printf.sprintf "frame %d equal" i)
      true
      (Image.Raster.equal (c1.Video.Clip.render i) (c2.Video.Clip.render i))
  done

let test_clip_gen_order_independent () =
  let clip = Video.Clip_gen.render ~width:16 ~height:12 tiny_profile in
  let last = clip.Video.Clip.frame_count - 1 in
  let rendered_last_first = clip.Video.Clip.render last in
  ignore (clip.Video.Clip.render 0);
  check bool "same frame regardless of render order" true
    (Image.Raster.equal rendered_last_first (clip.Video.Clip.render last))

let test_clip_gen_scene_boundaries () =
  let bounds = Video.Clip_gen.scene_boundaries ~fps:8. tiny_profile in
  Alcotest.(check (list (pair int int))) "boundaries" [ (0, 7); (8, 11) ] bounds

let test_clip_gen_brightness_follows_profile () =
  let clip = Video.Clip_gen.render ~width:16 ~height:12 ~fps:8. tiny_profile in
  let dark = Image.Raster.mean_luminance (clip.Video.Clip.render 2) in
  let bright = Image.Raster.mean_luminance (clip.Video.Clip.render 10) in
  check bool "flat 30 scene is dark" true (dark < 60.);
  check bool "flat 200 scene is bright" true (bright > 150.)

let test_clip_gen_fade_out () =
  let profile =
    {
      Video.Profile.name = "fade";
      seed = 1;
      scenes =
        [
          Video.Profile.scene ~seconds:2. ~fade:Video.Profile.Fade_out
            ~noise_sigma:0. (Video.Profile.Flat 200);
        ];
    }
  in
  let clip = Video.Clip_gen.render ~width:16 ~height:12 ~fps:8. profile in
  let first = Image.Raster.mean_luminance (clip.Video.Clip.render 0) in
  let last =
    Image.Raster.mean_luminance
      (clip.Video.Clip.render (clip.Video.Clip.frame_count - 1))
  in
  check bool "starts bright" true (first > 150.);
  check (Alcotest.float 0.5) "ends black" 0. last

let test_clip_gen_rejects_invalid () =
  let bad = { tiny_profile with Video.Profile.scenes = [] } in
  Alcotest.check_raises "invalid profile"
    (Invalid_argument "Clip_gen.render: profile has no scenes") (fun () ->
      ignore (Video.Clip_gen.render bad))

let test_clip_gen_highlights_raise_max () =
  let base_scene =
    Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 30)
  in
  let with_hl =
    {
      base_scene with
      Video.Profile.highlights =
        Some { Video.Profile.count = 3; peak = 200; radius = 60; drift = 0. };
    }
  in
  let render scenes =
    Video.Clip_gen.render ~width:32 ~height:24 ~fps:4.
      { Video.Profile.name = "h"; seed = 3; scenes }
  in
  let plain = render [ base_scene ] and lit = render [ with_hl ] in
  check bool "highlights raise the max" true
    (Image.Raster.max_luminance (lit.Video.Clip.render 0)
     > Image.Raster.max_luminance (plain.Video.Clip.render 0))

let test_clip_gen_vignette_darkens_corners () =
  let base = Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 150) in
  let render scenes =
    (Video.Clip_gen.render ~width:32 ~height:24 ~fps:4.
       { Video.Profile.name = "v"; seed = 2; scenes }).Video.Clip.render 0
  in
  let flat = render [ base ] in
  let vignetted = render [ { base with Video.Profile.vignette = 0.6 } ] in
  let corner img = (Image.Raster.get img ~x:0 ~y:0).Image.Pixel.r in
  let centre img = (Image.Raster.get img ~x:16 ~y:12).Image.Pixel.r in
  check bool "corner darkened" true (corner vignetted < corner flat - 30);
  check bool "centre kept" true (abs (centre vignetted - centre flat) < 12)

let test_clip_gen_credits_bright_dashes () =
  let clip =
    Video.Clip_gen.render ~width:64 ~height:48 ~fps:4.
      {
        Video.Profile.name = "c";
        seed = 6;
        scenes =
          [ Video.Profile.scene ~seconds:1. ~credits:true ~noise_sigma:0.
              (Video.Profile.Flat 8) ];
      }
  in
  let frame = clip.Video.Clip.render 0 in
  check int "ink level present" 230 (Image.Raster.max_luminance frame);
  (* Dashes are sparse: most of the frame stays near-black. *)
  let hist = Image.Histogram.of_raster frame in
  check bool "text is a small fraction" true
    (float_of_int (Image.Histogram.samples_above hist 128)
     < 0.3 *. float_of_int (Image.Histogram.total hist))

let test_clip_gen_motion_changes_frames () =
  let subject speed =
    { Video.Profile.level = 220; size = 150; speed; vertical_phase = 0.5 }
  in
  let clip speed =
    Video.Clip_gen.render ~width:48 ~height:32 ~fps:8.
      {
        Video.Profile.name = "m";
        seed = 9;
        scenes =
          [
            Video.Profile.scene ~seconds:1. ~noise_sigma:0.
              ~subjects:[ subject speed ] (Video.Profile.Flat 30);
          ];
      }
  in
  let frame_diff c =
    Image.Metrics.mean_absolute_error (c.Video.Clip.render 0) (c.Video.Clip.render 1)
  in
  check bool "faster subject, bigger frame difference" true
    (frame_diff (clip 30.) > frame_diff (clip 2.))

let test_parametric_workload_shape () =
  let p = Video.Workloads.parametric ~base_level:50 ~highlight_peak:180 () in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Video.Profile.validate p);
  let dark = Video.Clip_gen.render ~width:32 ~height:24 ~fps:4.
      (Video.Workloads.parametric ~seconds:1. ~base_level:20 ~highlight_peak:180 ())
  in
  let bright = Video.Clip_gen.render ~width:32 ~height:24 ~fps:4.
      (Video.Workloads.parametric ~seconds:1. ~base_level:220 ~highlight_peak:30 ())
  in
  check bool "base level controls brightness" true
    (Image.Raster.mean_luminance (bright.Video.Clip.render 0)
     > Image.Raster.mean_luminance (dark.Video.Clip.render 0) +. 100.)

(* --- Workloads -------------------------------------------------------- *)

let test_workloads_all_valid () =
  List.iter
    (fun p ->
      Alcotest.(check (result unit string))
        (p.Video.Profile.name ^ " valid") (Ok ()) (Video.Profile.validate p))
    Video.Workloads.all

let test_workloads_count_and_names () =
  check int "ten workloads" 10 (List.length Video.Workloads.all);
  check bool "find by paper name" true
    (Video.Workloads.find "theincredibles-tlr2" <> None);
  check bool "unknown name" true (Video.Workloads.find "nosuchclip" = None)

let test_workloads_unique_seeds () =
  let seeds = List.map (fun p -> p.Video.Profile.seed) Video.Workloads.all in
  check int "seeds unique" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let test_workloads_brightness_ordering () =
  (* The paper's bright-background clips must be brighter on average
     than the dark epics — that ordering is what drives Fig 9. *)
  let mean_luma profile =
    let clip = Video.Clip_gen.render ~width:32 ~height:24 ~fps:4. profile in
    let total = ref 0. in
    Video.Clip.iter_frames
      (fun _ f -> total := !total +. Image.Raster.mean_luminance f)
      clip;
    !total /. float_of_int clip.Video.Clip.frame_count
  in
  let ice = mean_luma Video.Workloads.ice_age in
  let hunter = mean_luma Video.Workloads.hunter_subres in
  let rotk = mean_luma Video.Workloads.returnoftheking in
  let catwoman = mean_luma Video.Workloads.catwoman in
  check bool "ice_age brighter than rotk" true (ice > rotk +. 50.);
  check bool "hunter brighter than catwoman" true (hunter > catwoman +. 50.)

let qtests =
  let profile_gen =
    let open QCheck2.Gen in
    let* seed = 0 -- 1000 in
    let* n_scenes = 1 -- 4 in
    let* scenes =
      list_size (return n_scenes)
        (let* seconds = float_range 0.25 2. in
         let* level = 0 -- 255 in
         return (Video.Profile.scene ~seconds (Video.Profile.Flat level)))
    in
    return { Video.Profile.name = "gen"; seed; scenes }
  in
  [
    QCheck2.Test.make ~name:"scene boundaries partition the clip" profile_gen
      (fun profile ->
        let clip = Video.Clip_gen.render ~width:8 ~height:8 ~fps:4. profile in
        let bounds = Video.Clip_gen.scene_boundaries ~fps:4. profile in
        let rec covers expected = function
          | [] -> expected = clip.Video.Clip.frame_count
          | (first, last) :: rest ->
            first = expected && last >= first && covers (last + 1) rest
        in
        covers 0 bounds);
    QCheck2.Test.make ~name:"generated frames match profile dimensions" profile_gen
      (fun profile ->
        let clip = Video.Clip_gen.render ~width:24 ~height:16 ~fps:4. profile in
        let f = clip.Video.Clip.render 0 in
        Image.Raster.width f = 24 && Image.Raster.height f = 16);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "video"
    [
      ( "clip",
        [
          Alcotest.test_case "of_frames" `Quick test_clip_of_frames;
          Alcotest.test_case "of_frames validation" `Quick test_clip_of_frames_validation;
          Alcotest.test_case "render bounds" `Quick test_clip_render_bounds;
          Alcotest.test_case "iter order" `Quick test_clip_iter_order;
          Alcotest.test_case "map frames" `Quick test_clip_map_frames;
          Alcotest.test_case "max luminance track" `Quick test_max_luminance_track;
        ] );
      ( "profile",
        [
          Alcotest.test_case "validation ok" `Quick test_profile_validation_ok;
          Alcotest.test_case "validation errors" `Quick test_profile_validation_errors;
          Alcotest.test_case "totals" `Quick test_profile_total_seconds;
        ] );
      ( "clip_gen",
        [
          Alcotest.test_case "dimensions" `Quick test_clip_gen_dimensions;
          Alcotest.test_case "deterministic" `Quick test_clip_gen_deterministic;
          Alcotest.test_case "order independent" `Quick test_clip_gen_order_independent;
          Alcotest.test_case "scene boundaries" `Quick test_clip_gen_scene_boundaries;
          Alcotest.test_case "brightness follows profile" `Quick
            test_clip_gen_brightness_follows_profile;
          Alcotest.test_case "fade out" `Quick test_clip_gen_fade_out;
          Alcotest.test_case "rejects invalid" `Quick test_clip_gen_rejects_invalid;
          Alcotest.test_case "highlights raise max" `Quick
            test_clip_gen_highlights_raise_max;
          Alcotest.test_case "vignette corners" `Quick test_clip_gen_vignette_darkens_corners;
          Alcotest.test_case "credit dashes" `Quick test_clip_gen_credits_bright_dashes;
          Alcotest.test_case "motion changes frames" `Quick test_clip_gen_motion_changes_frames;
          Alcotest.test_case "parametric workload" `Quick test_parametric_workload_shape;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all valid" `Quick test_workloads_all_valid;
          Alcotest.test_case "count and names" `Quick test_workloads_count_and_names;
          Alcotest.test_case "unique seeds" `Quick test_workloads_unique_seeds;
          Alcotest.test_case "brightness ordering" `Slow test_workloads_brightness_ordering;
        ] );
      ("properties", qtests);
    ]
