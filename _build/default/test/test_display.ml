(* Tests for the display substrate: transfer functions, panel models,
   device profiles and the gray-patch characterisation. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Transfer --------------------------------------------------------- *)

let test_transfer_linear_endpoints () =
  let t = Display.Transfer.gamma 1. in
  check (Alcotest.float 1e-9) "zero register" 0. (Display.Transfer.apply t 0);
  check (Alcotest.float 1e-9) "full register" 1. (Display.Transfer.apply t 255);
  check (Alcotest.float 1e-3) "midpoint" (128. /. 255.) (Display.Transfer.apply t 128)

let test_transfer_monotone_forced () =
  (* A decreasing function is rectified to its running maximum. *)
  let t = Display.Transfer.of_function (fun r -> float_of_int (255 - r)) in
  let ok = ref true in
  for r = 1 to 255 do
    if Display.Transfer.apply t r < Display.Transfer.apply t (r - 1) then ok := false
  done;
  check bool "monotone after rectification" true !ok;
  check (Alcotest.float 1e-9) "normalised top" 1. (Display.Transfer.apply t 255)

let test_transfer_inverse_basics () =
  let t = Display.Transfer.gamma 1. in
  check int "inverse of 0" 0 (Display.Transfer.inverse t 0.);
  check int "inverse of 1" 255 (Display.Transfer.inverse t 1.);
  check int "inverse of half" 128 (Display.Transfer.inverse t 0.5)

let test_transfer_inverse_is_smallest () =
  List.iter
    (fun t ->
      List.iter
        (fun f ->
          let r = Display.Transfer.inverse t f in
          check bool "achieves the gain" true (Display.Transfer.apply t r >= f -. 1e-12);
          if r > 0 then
            check bool "predecessor does not" true
              (Display.Transfer.apply t (r - 1) < f))
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.999 ])
    [ Display.Transfer.gamma 1.; Display.Transfer.led_typical; Display.Transfer.ccfl_typical ]

let test_transfer_inverse_clamps () =
  let t = Display.Transfer.gamma 1. in
  check int "above 1 clamps" 255 (Display.Transfer.inverse t 2.);
  check int "below 0 clamps" 0 (Display.Transfer.inverse t (-1.))

let test_transfer_led_concave () =
  (* The LED curve rises faster than linear at low registers: the
     luminance at register 64 exceeds 64/255 of full. *)
  let t = Display.Transfer.led_typical in
  check bool "concave" true (Display.Transfer.apply t 64 > 64. /. 255.)

let test_transfer_ccfl_dead_zone () =
  let t = Display.Transfer.ccfl_typical in
  check (Alcotest.float 1e-9) "dark below strike threshold" 0.
    (Display.Transfer.apply t 30);
  check bool "lit above threshold" true (Display.Transfer.apply t 60 > 0.)

let test_transfer_of_table_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Transfer.of_table: need 256 samples") (fun () ->
      ignore (Display.Transfer.of_table [| 1.; 2. |]));
  Alcotest.check_raises "all dark"
    (Invalid_argument "Transfer: zero luminance at full register") (fun () ->
      ignore (Display.Transfer.of_table (Array.make 256 0.)))

let prop_transfer_inverse_roundtrip =
  QCheck2.Test.make ~name:"inverse(apply r) <= r for monotone transfers"
    QCheck2.Gen.(pair (float_range 0.3 3.) (0 -- 255))
    (fun (g, r) ->
      let t = Display.Transfer.gamma g in
      Display.Transfer.inverse t (Display.Transfer.apply t r) <= r)

(* --- Panel ------------------------------------------------------------ *)

let test_panel_perceived_intensity_formula () =
  let panel =
    Display.Panel.make ~transmittance:0.1 ~white_gamma:1.
      ~panel_type:Display.Panel.Transmissive ~technology:Display.Panel.Led
      (Display.Transfer.gamma 1.)
  in
  (* I = rho * L * Y with everything linear. *)
  check (Alcotest.float 1e-9) "full" 0.1
    (Display.Panel.perceived_intensity panel ~backlight_gain:1. ~image_level:255);
  check (Alcotest.float 1e-4) "half backlight, half image" 0.025
    (Display.Panel.perceived_intensity panel ~backlight_gain:0.5
       ~image_level:128)

let test_panel_compensation_invariant () =
  (* The paper's equation: dimming to gain f while scaling the image by
     1/f preserves I for non-clipped pixels. *)
  let panel =
    Display.Panel.make ~white_gamma:1. ~panel_type:Display.Panel.Transflective
      ~technology:Display.Panel.Led (Display.Transfer.gamma 1.)
  in
  let f = 0.5 in
  let original_level = 100 in
  let compensated_level = int_of_float ((float_of_int original_level /. f) +. 0.5) in
  let i_orig =
    Display.Panel.perceived_intensity panel ~backlight_gain:1.
      ~image_level:original_level
  in
  let i_comp =
    Display.Panel.perceived_intensity panel ~backlight_gain:f
      ~image_level:compensated_level
  in
  check bool "intensity preserved within rounding" true
    (abs_float (i_orig -. i_comp) /. i_orig < 0.01)

let test_panel_emitted_uses_transfer () =
  let panel =
    Display.Panel.make ~white_gamma:1. ~panel_type:Display.Panel.Transmissive
      ~technology:Display.Panel.Ccfl Display.Transfer.ccfl_typical
  in
  check (Alcotest.float 1e-12) "below strike: dark" 0.
    (Display.Panel.emitted_luminance panel ~backlight_register:20 ~image_level:255)

let test_panel_validation () =
  Alcotest.check_raises "bad transmittance"
    (Invalid_argument "Panel.make: transmittance out of (0, 1]") (fun () ->
      ignore
        (Display.Panel.make ~transmittance:0. ~panel_type:Display.Panel.Transmissive
           ~technology:Display.Panel.Led (Display.Transfer.gamma 1.)))

(* --- Device ----------------------------------------------------------- *)

let test_devices_present () =
  check int "three devices" 3 (List.length Display.Device.all);
  check bool "h5555 is LED" true
    (Display.Device.ipaq_h5555.Display.Device.panel.Display.Panel.technology
     = Display.Panel.Led);
  check bool "h3650 is CCFL" true
    (Display.Device.ipaq_h3650.Display.Device.panel.Display.Panel.technology
     = Display.Panel.Ccfl);
  check bool "find works" true (Display.Device.find "zaurus_sl5600" <> None);
  check bool "unknown device" true (Display.Device.find "nokia" = None)

let test_device_register_for_gain_roundtrip () =
  List.iter
    (fun d ->
      List.iter
        (fun f ->
          let r = Display.Device.register_for_gain d f in
          check bool
            (Printf.sprintf "%s gain %.2f" d.Display.Device.name f)
            true
            (Display.Device.backlight_gain d r >= f -. 1e-12))
        [ 0.05; 0.2; 0.5; 0.8; 1. ])
    Display.Device.all

let test_device_distinct_transfer_shapes () =
  (* "Each display technology showed a different transfer
     characteristic" — at the same register the LED and CCFL devices
     must disagree noticeably. *)
  let led = Display.Device.backlight_gain Display.Device.ipaq_h5555 100 in
  let ccfl = Display.Device.backlight_gain Display.Device.ipaq_h3650 100 in
  check bool "different technologies differ" true (abs_float (led -. ccfl) > 0.05)

(* --- Characterize ----------------------------------------------------- *)

let analytic d = Display.Characterize.analytic_measurement d.Display.Device.panel

let test_backlight_sweep_shape () =
  let d = Display.Device.ipaq_h5555 in
  let sweep = Display.Characterize.backlight_sweep ~steps:18 (analytic d) in
  check int "sample count" 18 (Array.length sweep.Display.Characterize.levels);
  check int "first level" 0 sweep.Display.Characterize.levels.(0);
  check int "last level" 255 sweep.Display.Characterize.levels.(17);
  (* Readings grow with the register (Fig 7). *)
  let increasing = ref true in
  for i = 1 to 17 do
    if sweep.Display.Characterize.readings.(i)
       < sweep.Display.Characterize.readings.(i - 1)
    then increasing := false
  done;
  check bool "monotone readings" true !increasing

let test_white_sweep_near_linear_on_h5555 () =
  (* Fig 8: on the h5555, brightness is almost linear in the white
     level. Check correlation of reading vs level is high. *)
  let d = Display.Device.ipaq_h5555 in
  let sweep = Display.Characterize.white_sweep ~steps:18 ~backlight:255 (analytic d) in
  let xs = Array.map float_of_int sweep.Display.Characterize.levels in
  let ys = sweep.Display.Characterize.readings in
  let n = float_of_int (Array.length xs) in
  let mean a = Array.fold_left ( +. ) 0. a /. n in
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  let corr = !cov /. sqrt (!vx *. !vy) in
  check bool "near-linear white response" true (corr > 0.995)

let test_white_sweep_scales_with_backlight () =
  (* Fig 8 plots backlight 255 vs 128: the dimmer curve must sit
     strictly below at every white level. *)
  let d = Display.Device.ipaq_h5555 in
  let full = Display.Characterize.white_sweep ~steps:10 ~backlight:255 (analytic d) in
  let half = Display.Characterize.white_sweep ~steps:10 ~backlight:128 (analytic d) in
  Array.iteri
    (fun i r ->
      if full.Display.Characterize.levels.(i) > 0 then
        check bool (Printf.sprintf "dimmer at level %d" i) true
          (half.Display.Characterize.readings.(i) < r))
    full.Display.Characterize.readings

let test_recover_transfer_fidelity () =
  (* Recovering the transfer from 18 analytic measurements should match
     the true curve closely everywhere. *)
  List.iter
    (fun d ->
      let recovered = Display.Characterize.recover_transfer ~steps:18 (analytic d) in
      let err =
        Display.Characterize.max_relative_error recovered
          d.Display.Device.panel.Display.Panel.transfer
      in
      (* 18 manual samples linearly interpolated: a few percent of
         error at the steep low end of the LED curve is expected. *)
      check bool (Printf.sprintf "%s recovery error %.3f" d.Display.Device.name err)
        true (err < 0.05))
    Display.Device.all

let test_recover_transfer_usable_for_inverse () =
  let d = Display.Device.ipaq_h5555 in
  let recovered = Display.Characterize.recover_transfer (analytic d) in
  let true_t = d.Display.Device.panel.Display.Panel.transfer in
  List.iter
    (fun f ->
      let r_rec = Display.Transfer.inverse recovered f in
      let r_true = Display.Transfer.inverse true_t f in
      check bool (Printf.sprintf "inverse near truth at %.2f" f) true
        (abs (r_rec - r_true) <= 8))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_sweep_step_validation () =
  let d = Display.Device.ipaq_h5555 in
  Alcotest.check_raises "one step"
    (Invalid_argument "Characterize: need at least 2 steps") (fun () ->
      ignore (Display.Characterize.backlight_sweep ~steps:1 (analytic d)))

(* --- Device_config ----------------------------------------------------- *)

let test_config_minimal_inherits_defaults () =
  match Display.Device_config.of_string "name = custom\n" with
  | Error e -> Alcotest.fail e
  | Ok d ->
    check bool "name set" true (d.Display.Device.name = "custom");
    check (Alcotest.float 1e-9) "default backlight power"
      Display.Device.ipaq_h5555.Display.Device.backlight_power_full_mw
      d.Display.Device.backlight_power_full_mw

let test_config_full_profile () =
  let text =
    "# a CCFL test device\n\
     name = testpad\n\
     panel = reflective\n\
     technology = ccfl\n\
     transfer = gamma:0.9\n\
     white_gamma = 1.2\n\
     screen = 240x320\n\
     backlight_full_mw = 500\n\
     backlight_floor_mw = 70\n\
     lcd_mw = 140  # inline comment\n\
     cpu_busy_mw = 650\n\
     cpu_idle_mw = 170\n\
     net_rx_mw = 280\n\
     net_idle_mw = 55\n\
     base_mw = 210\n"
  in
  match Display.Device_config.of_string text with
  | Error e -> Alcotest.fail e
  | Ok d ->
    check bool "panel type" true
      (d.Display.Device.panel.Display.Panel.panel_type = Display.Panel.Reflective);
    check int "screen width" 240 d.Display.Device.screen_width;
    check (Alcotest.float 1e-9) "floor power" 70.
      d.Display.Device.backlight_power_floor_mw;
    (* gamma:0.9 transfer is honoured. *)
    check bool "transfer is the gamma curve" true
      (abs_float
         (Display.Device.backlight_gain d 128
          -. ((128. /. 255.) ** 0.9))
       < 1e-9)

let test_config_errors_carry_line_numbers () =
  let bad_key = "name = x\nbogus_key = 3\n" in
  (match Display.Device_config.of_string bad_key with
  | Error msg -> check bool "line number cited" true (String.length msg > 0
      && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "unknown key accepted");
  let bad_value = "screen = wide\n" in
  check bool "bad screen rejected" true
    (Result.is_error (Display.Device_config.of_string bad_value));
  let no_equals = "just words\n" in
  check bool "missing = rejected" true
    (Result.is_error (Display.Device_config.of_string no_equals))

let test_config_roundtrip () =
  List.iter
    (fun d ->
      match Display.Device_config.of_string (Display.Device_config.to_string d) with
      | Error e -> Alcotest.fail e
      | Ok back ->
        check bool (d.Display.Device.name ^ " name") true
          (back.Display.Device.name = d.Display.Device.name);
        check (Alcotest.float 1e-9)
          (d.Display.Device.name ^ " base power")
          d.Display.Device.base_power_mw back.Display.Device.base_power_mw;
        check int (d.Display.Device.name ^ " width") d.Display.Device.screen_width
          back.Display.Device.screen_width)
    Display.Device.all

(* --- Aging ------------------------------------------------------------ *)

let test_aging_shifts_threshold () =
  let fresh = Display.Device.ipaq_h3650 in
  let aged = Display.Device.with_aged_backlight ~hours:3000. fresh in
  (* At a register just above the fresh strike threshold the worn tube
     is still dark. *)
  let fresh_first_lit =
    Display.Device.register_for_gain fresh 0.01
  in
  check bool "worn tube darker at the fresh threshold" true
    (Display.Device.backlight_gain aged fresh_first_lit
     < Display.Device.backlight_gain fresh fresh_first_lit);
  check bool "name records the wear" true
    (aged.Display.Device.name = "ipaq_h3650+3000h")

let test_aging_zero_hours_identity () =
  let fresh = Display.Device.ipaq_h5555 in
  let aged = Display.Device.with_aged_backlight ~hours:0. fresh in
  let same = ref true in
  for r = 0 to 255 do
    if abs_float
         (Display.Device.backlight_gain aged r -. Display.Device.backlight_gain fresh r)
       > 1e-9
    then same := false
  done;
  check bool "zero wear is the factory curve" true !same

let test_aging_requires_higher_registers () =
  let fresh = Display.Device.ipaq_h3650 in
  let aged = Display.Device.with_aged_backlight ~hours:5000. fresh in
  List.iter
    (fun gain ->
      check bool
        (Printf.sprintf "gain %.1f needs a higher register when worn" gain)
        true
        (Display.Device.register_for_gain aged gain
         >= Display.Device.register_for_gain fresh gain))
    [ 0.2; 0.5; 0.8 ]

let test_aging_recalibration_restores_accuracy () =
  (* A stale factory table on a worn panel under-lights; a camera
     re-characterisation recovers a faithful inverse. *)
  let fresh = Display.Device.ipaq_h3650 in
  let aged = Display.Device.with_aged_backlight ~hours:5000. fresh in
  let stale_register = Display.Device.register_for_gain fresh 0.5 in
  let achieved_with_stale = Display.Device.backlight_gain aged stale_register in
  check bool "stale table under-lights" true (achieved_with_stale < 0.45);
  let recovered = Display.Characterize.recover_transfer ~steps:24 (analytic aged) in
  let recalibrated = Display.Transfer.inverse recovered 0.5 in
  check bool "recalibrated register achieves the gain" true
    (Display.Device.backlight_gain aged recalibrated >= 0.45)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_transfer_inverse_roundtrip ]

let () =
  Alcotest.run "display"
    [
      ( "transfer",
        [
          Alcotest.test_case "linear endpoints" `Quick test_transfer_linear_endpoints;
          Alcotest.test_case "monotone forced" `Quick test_transfer_monotone_forced;
          Alcotest.test_case "inverse basics" `Quick test_transfer_inverse_basics;
          Alcotest.test_case "inverse minimality" `Quick test_transfer_inverse_is_smallest;
          Alcotest.test_case "inverse clamps" `Quick test_transfer_inverse_clamps;
          Alcotest.test_case "led concave" `Quick test_transfer_led_concave;
          Alcotest.test_case "ccfl dead zone" `Quick test_transfer_ccfl_dead_zone;
          Alcotest.test_case "of_table validation" `Quick test_transfer_of_table_validation;
        ] );
      ( "panel",
        [
          Alcotest.test_case "intensity formula" `Quick
            test_panel_perceived_intensity_formula;
          Alcotest.test_case "compensation invariant" `Quick
            test_panel_compensation_invariant;
          Alcotest.test_case "emitted uses transfer" `Quick test_panel_emitted_uses_transfer;
          Alcotest.test_case "validation" `Quick test_panel_validation;
        ] );
      ( "device",
        [
          Alcotest.test_case "profiles present" `Quick test_devices_present;
          Alcotest.test_case "register for gain" `Quick
            test_device_register_for_gain_roundtrip;
          Alcotest.test_case "distinct transfer shapes" `Quick
            test_device_distinct_transfer_shapes;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "backlight sweep (fig 7)" `Quick test_backlight_sweep_shape;
          Alcotest.test_case "white sweep near-linear (fig 8)" `Quick
            test_white_sweep_near_linear_on_h5555;
          Alcotest.test_case "white sweep scales (fig 8)" `Quick
            test_white_sweep_scales_with_backlight;
          Alcotest.test_case "transfer recovery" `Quick test_recover_transfer_fidelity;
          Alcotest.test_case "recovered inverse" `Quick
            test_recover_transfer_usable_for_inverse;
          Alcotest.test_case "step validation" `Quick test_sweep_step_validation;
        ] );
      ( "device_config",
        [
          Alcotest.test_case "minimal profile" `Quick test_config_minimal_inherits_defaults;
          Alcotest.test_case "full profile" `Quick test_config_full_profile;
          Alcotest.test_case "error reporting" `Quick test_config_errors_carry_line_numbers;
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
        ] );
      ( "aging",
        [
          Alcotest.test_case "threshold creep" `Quick test_aging_shifts_threshold;
          Alcotest.test_case "zero hours identity" `Quick test_aging_zero_hours_identity;
          Alcotest.test_case "higher registers when worn" `Quick
            test_aging_requires_higher_registers;
          Alcotest.test_case "recalibration" `Quick
            test_aging_recalibration_restores_accuracy;
        ] );
      ("properties", qtests);
    ]
