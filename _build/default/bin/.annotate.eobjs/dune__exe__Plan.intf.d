bin/plan.mli:
