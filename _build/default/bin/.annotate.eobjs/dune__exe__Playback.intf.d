bin/playback.mli:
