bin/characterize.mli:
