bin/playback.ml: Annot Arg Array Camera Cmd Cmdliner Common Format Image List Power Printf Streaming Term Video
