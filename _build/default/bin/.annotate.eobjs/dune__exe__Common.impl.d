bin/common.ml: Arg Cmdliner Display List Printf String Video
