bin/annotate.mli:
