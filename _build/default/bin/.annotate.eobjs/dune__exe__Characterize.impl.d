bin/characterize.ml: Arg Array Camera Cmd Cmdliner Common Display Printf Term
