bin/annotate.ml: Annot Arg Array Cmd Cmdliner Common Display Printf String Term Video
