bin/plan.ml: Annot Arg Cmd Cmdliner Common Format List Power Printf Streaming Term
