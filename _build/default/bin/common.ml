(* Shared cmdliner terms for the command-line tools. *)

open Cmdliner

let clip_arg =
  let doc =
    "Workload clip name. One of: " ^ String.concat ", " Video.Workloads.names ^ "."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "clip" ] ~docv:"CLIP" ~doc)

let device_arg =
  let doc =
    "Target device. One of: "
    ^ String.concat ", " (List.map (fun d -> d.Display.Device.name) Display.Device.all)
    ^ "."
  in
  Arg.(
    value
    & opt string "ipaq_h5555"
    & info [ "d"; "device" ] ~docv:"DEVICE" ~doc)

let device_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "device-file" ] ~docv:"FILE"
        ~doc:
          "Load the target device from a key = value profile (see \
           Display.Device_config); overrides $(b,--device).")

let quality_arg =
  let doc = "Quality level: allowed percentage of clipped bright pixels (0-100)." in
  Arg.(value & opt float 10. & info [ "q"; "quality" ] ~docv:"PERCENT" ~doc)

let width_arg =
  Arg.(value & opt int 160 & info [ "width" ] ~docv:"PX" ~doc:"Frame width.")

let height_arg =
  Arg.(value & opt int 120 & info [ "height" ] ~docv:"PX" ~doc:"Frame height.")

let fps_arg =
  Arg.(value & opt float 12. & info [ "fps" ] ~docv:"FPS" ~doc:"Frame rate.")

let resolve_clip name ~width ~height ~fps =
  match Video.Workloads.find name with
  | Some profile -> Ok (Video.Clip_gen.render ~width ~height ~fps profile)
  | None ->
    Error
      (Printf.sprintf "unknown clip %S (try one of: %s)" name
         (String.concat ", " Video.Workloads.names))

let resolve_device name =
  match Display.Device.find name with
  | Some d -> Ok d
  | None ->
    Error
      (Printf.sprintf "unknown device %S (try one of: %s)" name
         (String.concat ", "
            (List.map (fun d -> d.Display.Device.name) Display.Device.all)))

let resolve_device_with_file ~file name =
  match file with
  | Some path -> Display.Device_config.load ~path
  | None -> resolve_device name

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1
