(* Responses are tabulated over 4096 radiance steps in [0, 1]; the
   resolution is invisible at 8-bit output but keeps [apply] cheap. *)
type t = { table : int array }

let resolution = 4096

let of_function f =
  let table = Array.make resolution 0 in
  let running = ref 0 in
  for i = 0 to resolution - 1 do
    let x = float_of_int i /. float_of_int (resolution - 1) in
    let v = f x in
    let v = int_of_float ((Float.max 0. (Float.min 1. v) *. 255.) +. 0.5) in
    running := max !running v;
    table.(i) <- !running
  done;
  { table }

let apply r radiance =
  if radiance <= 0. then r.table.(0)
  else if radiance >= 1. then r.table.(resolution - 1)
  else r.table.(int_of_float (radiance *. float_of_int (resolution - 1)))

let srgb_like = of_function (fun x -> x ** (1. /. 2.2))

let linear = of_function (fun x -> x)

let s_curve =
  (* Toe, near-linear midsection, soft shoulder: a logistic remapped to
     hit 0 at 0 and 1 at 1. *)
  of_function (fun x ->
      let sigm v = 1. /. (1. +. exp (-.v)) in
      let k = 7. in
      let lo = sigm (-.k /. 2.) and hi = sigm (k /. 2.) in
      (sigm (k *. (x -. 0.5)) -. lo) /. (hi -. lo))

let is_monotone r =
  let rec check i = i >= resolution || (r.table.(i) >= r.table.(i - 1) && check (i + 1)) in
  check 1
