(** Digital-camera response curves.

    §4.2: "A digital camera has a monotonic nonlinear transfer
    function [Debevec–Malik] and allows us to objectively estimate the
    similarity between two images." A response maps scene radiance
    (relative, non-negative) to an 8-bit pixel value. All curves here
    are strictly monotone over the exposure range and saturate at
    255. *)

type t

val apply : t -> float -> int
(** [apply r radiance] is the 8-bit sensor output for a relative
    radiance (1.0 = the radiance that just saturates the sensor).
    Negative radiance reads as 0. *)

val srgb_like : t
(** A gamma-2.2-style curve, typical of consumer cameras. *)

val linear : t
(** An idealised linear sensor (useful in tests: it makes snapshot
    arithmetic exactly invertible). *)

val s_curve : t
(** A filmic S-shaped curve with toe and shoulder, the closest to the
    Debevec–Malik recovered responses. *)

val of_function : (float -> float) -> t
(** [of_function f] wraps [f : radiance -> [0,1]]; the result is
    clamped, quantised and forced monotone by tabulation. *)

val is_monotone : t -> bool
(** Always [true] for curves built by this module; exposed so property
    tests can assert the invariant. *)
