(** Photographing a device screen — the validation rig of Fig 2.

    A snapshot composes the device's forward display model (panel
    transmittance, backlight transfer, white-level response) with the
    camera response, pixel by pixel: exactly what a photograph of the
    PDA captures, including "the actual characteristics of the handheld
    display, which are not otherwise captured by a simulation"
    (§4.2). *)

type rig = {
  response : Response.t;
  exposure : float;
      (** scales scene radiance before the sensor; calibrated so a
          white frame at full backlight sits just below saturation *)
  noise_sigma : float;  (** sensor noise in output levels; 0 = none *)
  seed : int;  (** sensor-noise seed; snapshots are deterministic *)
}

val default_rig : Display.Device.t -> rig
(** A rig with the S-curve response, exposure calibrated against the
    given device's white point, and mild sensor noise. *)

val noiseless_rig : Display.Device.t -> rig
(** Same calibration, linear response, no noise — for exact tests. *)

val capture :
  rig -> Display.Device.t -> backlight_register:int -> Image.Raster.t ->
  Image.Raster.t
(** [capture rig device ~backlight_register frame] photographs [frame]
    as shown on [device] with the given backlight register. The result
    has the frame's dimensions; it is grayscale (the luminance image
    the paper's histograms are computed from), stored with equal RGB
    channels. *)

val capture_histogram :
  rig -> Display.Device.t -> backlight_register:int -> Image.Raster.t ->
  Image.Histogram.t
(** Histogram of the snapshot without materialising it — the common
    fast path for quality evaluation. *)

val measure_patch :
  rig -> Display.Device.t -> backlight:int -> white:int -> float
(** [measure_patch rig device ~backlight ~white] photographs a solid
    gray patch and returns its mean snapshot level — the measurement
    function driving {!Display.Characterize} sweeps (Figs 7, 8). *)
