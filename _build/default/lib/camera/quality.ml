type verdict = {
  reference_mean : float;
  compensated_mean : float;
  mean_shift : float;
  reference_range : int;
  compensated_range : int;
  range_change : int;
  l1_distance : float;
  emd : float;
  intersection : float;
}

let compare_histograms ~reference ~compensated =
  let reference_mean = Image.Histogram.mean reference
  and compensated_mean = Image.Histogram.mean compensated in
  let reference_range = Image.Histogram.dynamic_range reference
  and compensated_range = Image.Histogram.dynamic_range compensated in
  {
    reference_mean;
    compensated_mean;
    mean_shift = compensated_mean -. reference_mean;
    reference_range;
    compensated_range;
    range_change = compensated_range - reference_range;
    l1_distance = Image.Histogram.l1_distance reference compensated;
    emd = Image.Histogram.earth_movers_distance reference compensated;
    intersection = Image.Histogram.intersection reference compensated;
  }

let evaluate ~rig ~device ~original ~compensated ~reduced_register =
  let reference =
    Snapshot.capture_histogram rig device ~backlight_register:255 original
  in
  let compensated =
    Snapshot.capture_histogram rig device ~backlight_register:reduced_register
      compensated
  in
  compare_histograms ~reference ~compensated

let acceptable ?(mean_tolerance = 12.) ?(emd_tolerance = 20.) v =
  abs_float v.mean_shift <= mean_tolerance && v.emd <= emd_tolerance

let pp_verdict ppf v =
  Format.fprintf ppf
    "mean %.1f -> %.1f (shift %+.1f), range %d -> %d, EMD %.1f, L1 %.3f, inters %.3f"
    v.reference_mean v.compensated_mean v.mean_shift v.reference_range
    v.compensated_range v.emd v.l1_distance v.intersection
