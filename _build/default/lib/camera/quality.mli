(** Histogram-based quality evaluation (Fig 2, Fig 4).

    The paper validates compensation by photographing the PDA showing
    the original frame at full backlight (reference snapshot) and the
    compensated frame at the reduced backlight (compensated snapshot),
    then comparing the two histograms: a good compensation leaves the
    average brightness and dynamic range nearly unchanged. *)

type verdict = {
  reference_mean : float;
  compensated_mean : float;
  mean_shift : float;  (** compensated - reference average brightness *)
  reference_range : int;
  compensated_range : int;
  range_change : int;
  l1_distance : float;  (** normalised histogram L1 distance, [0, 2] *)
  emd : float;
      (** earth-mover's distance in luminance levels: the average
          number of levels each pixel's brightness moved — the robust
          histogram comparison *)
  intersection : float;  (** histogram intersection similarity, [0, 1] *)
}

val compare_histograms :
  reference:Image.Histogram.t -> compensated:Image.Histogram.t -> verdict
(** Raw comparison of two snapshot histograms. *)

val evaluate :
  rig:Snapshot.rig ->
  device:Display.Device.t ->
  original:Image.Raster.t ->
  compensated:Image.Raster.t ->
  reduced_register:int ->
  verdict
(** [evaluate ~rig ~device ~original ~compensated ~reduced_register]
    performs the full Fig 2 flow: photograph [original] at register
    255 and [compensated] at [reduced_register], and compare. *)

val acceptable : ?mean_tolerance:float -> ?emd_tolerance:float -> verdict -> bool
(** [acceptable v] decides whether the degradation is within tolerance
    (defaults: mean shift at most 12 levels, earth-mover's distance at
    most 20 levels — enough headroom for a sanctioned 20 % clipping
    budget) — the "minimal or no visible quality degradation"
    judgement. *)

val pp_verdict : Format.formatter -> verdict -> unit
