lib/camera/quality.mli: Display Format Image Snapshot
