lib/camera/response.ml: Array Float
