lib/camera/snapshot.ml: Array Bytes Char Display Image Response
