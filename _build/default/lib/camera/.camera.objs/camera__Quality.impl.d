lib/camera/quality.ml: Format Image Snapshot
