lib/camera/response.mli:
