lib/camera/snapshot.mli: Display Image Response
