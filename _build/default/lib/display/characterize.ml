type measurement = backlight:int -> white:int -> float

type sweep = { levels : int array; readings : float array }

let spaced_levels steps =
  if steps < 2 then invalid_arg "Characterize: need at least 2 steps";
  Array.init steps (fun i -> i * 255 / (steps - 1))

let backlight_sweep ?(steps = 18) measure =
  let levels = spaced_levels steps in
  let readings = Array.map (fun b -> measure ~backlight:b ~white:255) levels in
  { levels; readings }

let white_sweep ?(steps = 18) ~backlight measure =
  let levels = spaced_levels steps in
  let readings = Array.map (fun w -> measure ~backlight ~white:w) levels in
  { levels; readings }

(* Piecewise-linear interpolation of a sweep onto the full 0-255 grid. *)
let interpolate sweep =
  let n = Array.length sweep.levels in
  let full = Array.make 256 0. in
  for r = 0 to 255 do
    (* Find the bracketing samples. *)
    let rec seg i = if i >= n - 1 || sweep.levels.(i + 1) >= r then i else seg (i + 1) in
    let i = seg 0 in
    let x0 = sweep.levels.(i) and x1 = sweep.levels.(min (n - 1) (i + 1)) in
    let y0 = sweep.readings.(i) and y1 = sweep.readings.(min (n - 1) (i + 1)) in
    full.(r) <-
      (if x1 = x0 then y0
       else y0 +. ((y1 -. y0) *. float_of_int (r - x0) /. float_of_int (x1 - x0)))
  done;
  full

let recover_transfer ?(steps = 18) measure =
  Transfer.of_table (interpolate (backlight_sweep ~steps measure))

let max_relative_error a b =
  let worst = ref 0. in
  for r = 0 to 255 do
    let d = abs_float (Transfer.apply a r -. Transfer.apply b r) in
    if d > !worst then worst := d
  done;
  !worst

let analytic_measurement panel ~backlight ~white =
  Panel.emitted_luminance panel ~backlight_register:backlight ~image_level:white
