let default = Device.ipaq_h5555

let parse_transfer value =
  match String.split_on_char ':' value with
  | [ "led" ] -> Ok Transfer.led_typical
  | [ "ccfl" ] -> Ok Transfer.ccfl_typical
  | [ "linear" ] -> Ok (Transfer.gamma 1.)
  | [ "gamma"; g ] -> (
    match float_of_string_opt g with
    | Some g when g > 0. -> Ok (Transfer.gamma g)
    | Some _ | None -> Error "gamma must be a positive number")
  | _ -> Error "expected led | ccfl | linear | gamma:<g>"

let parse_panel_type = function
  | "reflective" -> Ok Panel.Reflective
  | "transmissive" -> Ok Panel.Transmissive
  | "transflective" -> Ok Panel.Transflective
  | _ -> Error "expected reflective | transmissive | transflective"

let parse_technology = function
  | "led" -> Ok Panel.Led
  | "ccfl" -> Ok Panel.Ccfl
  | _ -> Error "expected led | ccfl"

let parse_screen value =
  match String.split_on_char 'x' value with
  | [ w; h ] -> (
    match (int_of_string_opt w, int_of_string_opt h) with
    | Some w, Some h when w > 0 && h > 0 -> Ok (w, h)
    | _ -> Error "expected <width>x<height> with positive integers")
  | _ -> Error "expected <width>x<height>"

let parse_power value =
  match float_of_string_opt value with
  | Some v when v >= 0. -> Ok v
  | Some _ | None -> Error "expected a non-negative number"

(* Mutable assembly state while folding over lines. *)
type builder = {
  mutable name : string;
  mutable panel_type : Panel.panel_type;
  mutable technology : Panel.backlight_technology;
  mutable transfer : Transfer.t option;  (* None = derive from technology *)
  mutable white_gamma : float;
  mutable screen : int * int;
  mutable backlight_full : float;
  mutable backlight_floor : float;
  mutable lcd : float;
  mutable cpu_busy : float;
  mutable cpu_idle : float;
  mutable net_rx : float;
  mutable net_idle : float;
  mutable base : float;
}

let builder_of_default () =
  {
    name = default.Device.name;
    panel_type = default.Device.panel.Panel.panel_type;
    technology = default.Device.panel.Panel.technology;
    transfer = None;
    white_gamma = default.Device.panel.Panel.white_gamma;
    screen = (default.Device.screen_width, default.Device.screen_height);
    backlight_full = default.Device.backlight_power_full_mw;
    backlight_floor = default.Device.backlight_power_floor_mw;
    lcd = default.Device.lcd_logic_power_mw;
    cpu_busy = default.Device.cpu_busy_power_mw;
    cpu_idle = default.Device.cpu_idle_power_mw;
    net_rx = default.Device.network_rx_power_mw;
    net_idle = default.Device.network_idle_power_mw;
    base = default.Device.base_power_mw;
  }

let apply_key b key value =
  let power setter = Result.map setter (parse_power value) in
  match key with
  | "name" ->
    if value = "" then Error "name must not be empty"
    else begin
      b.name <- value;
      Ok ()
    end
  | "panel" -> Result.map (fun p -> b.panel_type <- p) (parse_panel_type value)
  | "technology" -> Result.map (fun t -> b.technology <- t) (parse_technology value)
  | "transfer" -> Result.map (fun t -> b.transfer <- Some t) (parse_transfer value)
  | "white_gamma" -> (
    match float_of_string_opt value with
    | Some g when g > 0. ->
      b.white_gamma <- g;
      Ok ()
    | Some _ | None -> Error "white_gamma must be positive")
  | "screen" -> Result.map (fun s -> b.screen <- s) (parse_screen value)
  | "backlight_full_mw" -> power (fun v -> b.backlight_full <- v)
  | "backlight_floor_mw" -> power (fun v -> b.backlight_floor <- v)
  | "lcd_mw" -> power (fun v -> b.lcd <- v)
  | "cpu_busy_mw" -> power (fun v -> b.cpu_busy <- v)
  | "cpu_idle_mw" -> power (fun v -> b.cpu_idle <- v)
  | "net_rx_mw" -> power (fun v -> b.net_rx <- v)
  | "net_idle_mw" -> power (fun v -> b.net_idle <- v)
  | key -> Error (Printf.sprintf "unknown key %S" key)

(* "base_mw" clashes with the catch-all above if forgotten; keep it in
   the match. *)
let apply_key b key value =
  match key with
  | "base_mw" -> Result.map (fun v -> b.base <- v) (parse_power value)
  | _ -> apply_key b key value

let strip s = String.trim s

let of_string text =
  let b = builder_of_default () in
  let lines = String.split_on_char '\n' text in
  let rec process line_number = function
    | [] -> Ok ()
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = strip line in
      if line = "" then process (line_number + 1) rest
      else
        match String.index_opt line '=' with
        | None -> Error (Printf.sprintf "line %d: expected key = value" line_number)
        | Some i -> (
          let key = strip (String.sub line 0 i) in
          let value = strip (String.sub line (i + 1) (String.length line - i - 1)) in
          match apply_key b key value with
          | Ok () -> process (line_number + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" line_number msg)))
  in
  Result.map
    (fun () ->
      let transfer =
        match b.transfer with
        | Some t -> t
        | None -> (
          match b.technology with
          | Panel.Led -> Transfer.led_typical
          | Panel.Ccfl -> Transfer.ccfl_typical)
      in
      let width, height = b.screen in
      {
        Device.name = b.name;
        panel =
          Panel.make ~white_gamma:b.white_gamma ~panel_type:b.panel_type
            ~technology:b.technology transfer;
        screen_width = width;
        screen_height = height;
        backlight_levels = 256;
        backlight_power_full_mw = b.backlight_full;
        backlight_power_floor_mw = b.backlight_floor;
        lcd_logic_power_mw = b.lcd;
        cpu_busy_power_mw = b.cpu_busy;
        cpu_idle_power_mw = b.cpu_idle;
        network_rx_power_mw = b.net_rx;
        network_idle_power_mw = b.net_idle;
        base_power_mw = b.base;
      })
    (process 1 lines)

let to_string (d : Device.t) =
  let panel = d.Device.panel in
  let technology_name =
    match panel.Panel.technology with Panel.Led -> "led" | Panel.Ccfl -> "ccfl"
  in
  String.concat "\n"
    [
      Printf.sprintf "name = %s" d.Device.name;
      Printf.sprintf "panel = %s"
        (match panel.Panel.panel_type with
        | Panel.Reflective -> "reflective"
        | Panel.Transmissive -> "transmissive"
        | Panel.Transflective -> "transflective");
      Printf.sprintf "technology = %s" technology_name;
      "# transfer emitted as the technology's named curve";
      Printf.sprintf "transfer = %s" technology_name;
      Printf.sprintf "white_gamma = %g" panel.Panel.white_gamma;
      Printf.sprintf "screen = %dx%d" d.Device.screen_width d.Device.screen_height;
      Printf.sprintf "backlight_full_mw = %g" d.Device.backlight_power_full_mw;
      Printf.sprintf "backlight_floor_mw = %g" d.Device.backlight_power_floor_mw;
      Printf.sprintf "lcd_mw = %g" d.Device.lcd_logic_power_mw;
      Printf.sprintf "cpu_busy_mw = %g" d.Device.cpu_busy_power_mw;
      Printf.sprintf "cpu_idle_mw = %g" d.Device.cpu_idle_power_mw;
      Printf.sprintf "net_rx_mw = %g" d.Device.network_rx_power_mw;
      Printf.sprintf "net_idle_mw = %g" d.Device.network_idle_power_mw;
      Printf.sprintf "base_mw = %g" d.Device.base_power_mw;
      "";
    ]

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string (really_input_string ic n))
