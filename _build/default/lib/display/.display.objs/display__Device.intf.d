lib/display/device.mli: Format Panel
