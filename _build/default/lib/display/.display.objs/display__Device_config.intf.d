lib/display/device_config.mli: Device
