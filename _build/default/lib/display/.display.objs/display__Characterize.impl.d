lib/display/characterize.ml: Array Panel Transfer
