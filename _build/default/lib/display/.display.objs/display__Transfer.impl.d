lib/display/transfer.ml: Array Float Format
