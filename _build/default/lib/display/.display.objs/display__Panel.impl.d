lib/display/panel.ml: Format Image Transfer
