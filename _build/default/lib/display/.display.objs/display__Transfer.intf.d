lib/display/transfer.mli: Format
