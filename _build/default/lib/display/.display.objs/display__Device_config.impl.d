lib/display/device_config.ml: Device Fun Panel Printf Result String Transfer
