lib/display/panel.mli: Format Transfer
