lib/display/device.ml: Format List Panel Printf String Transfer
