lib/display/characterize.mli: Panel Transfer
