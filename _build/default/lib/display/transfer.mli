(** Backlight-to-luminance transfer functions.

    The paper measured that on the iPAQ h5555 the screen luminance is
    "almost linear with the luminance of the image (Fig 7), but not
    linear with the backlight level (Fig 8)", and that "each display
    technology showed a different transfer characteristic". A transfer
    function captures exactly that: the relative luminance emitted by
    the panel as a function of the 0–255 backlight register, normalised
    so that register 255 maps to 1.0.

    The inverse lookup is the annotation pipeline's key primitive: the
    server computes a *desired* relative luminance per scene, and the
    device-specific transfer inverse turns it into the smallest
    backlight register that achieves it ("The resulted value is later
    plugged into the backlight-luminance function for computing the
    required backlight level", §4.3). *)

type t
(** A monotone non-decreasing map from register 0–255 to relative
    luminance in [0, 1], with [apply t 255 = 1.0]. *)

val of_function : (int -> float) -> t
(** [of_function f] tabulates [f] over 0–255, clamps to [0, 1], forces
    monotonicity (running maximum) and normalises so register 255 maps
    to 1. [f] must be non-negative at 255. *)

val of_table : float array -> t
(** [of_table samples] builds a transfer from 256 measured samples
    (the output of display characterisation). Same normalisation as
    {!of_function}. Raises [Invalid_argument] unless length is 256. *)

val apply : t -> int -> float
(** [apply t register] is the relative luminance for a register value,
    clamped to 0–255. *)

val inverse : t -> float -> int
(** [inverse t f] is the smallest register whose relative luminance is
    at least [f] (with [f] clamped to [0, 1]). [inverse t 1. = ]
    smallest register reaching full luminance; [inverse t 0.] is the
    smallest register (usually 0). *)

val gamma : float -> t
(** [gamma g] is the idealised transfer [register -> (register/255)^g].
    [g = 1.] is perfectly linear. *)

val led_typical : t
(** Transfer shaped like the paper's h5555 LED measurement: concave
    (fast luminance rise at low registers, saturating towards 255) —
    modelled as a gamma of 0.75 with a small PWM dead zone at the very
    bottom. *)

val ccfl_typical : t
(** CCFL transfer: the lamp does not ignite below a threshold register,
    then brightens almost linearly. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
