(** Display characterisation — the gray-patch procedure of §5.

    "We start by first characterizing the display and backlight of our
    PDAs. This is performed by displaying images of different solid
    gray levels on the handhelds and capturing snapshots of the screen
    with a digital camera."

    The procedure is parameterised by a measurement function (the
    camera library provides a realistic one; tests can pass the panel's
    own analytic response) and produces the data behind Fig 7
    (brightness vs backlight at white 255) and Fig 8 (brightness vs
    white level at fixed backlight), plus a {!Transfer.t} recovered
    from the measurements that the annotation pipeline can use in place
    of the factory curve. *)

type measurement = backlight:int -> white:int -> float
(** [measure ~backlight ~white] is the observed screen brightness for a
    solid patch of gray level [white] under the given backlight
    register; non-negative, arbitrary units. *)

type sweep = { levels : int array; readings : float array }
(** Paired samples: [readings.(i)] was observed at [levels.(i)]. *)

val backlight_sweep : ?steps:int -> measurement -> sweep
(** [backlight_sweep ?steps measure] holds white at 255 and sweeps the
    backlight register over [steps] evenly spaced values (default 18,
    a realistic manual-measurement count) — Fig 7. *)

val white_sweep : ?steps:int -> backlight:int -> measurement -> sweep
(** [white_sweep ?steps ~backlight measure] holds the backlight and
    sweeps the displayed gray level — Fig 8 plots this at backlight
    255 and 128. *)

val recover_transfer : ?steps:int -> measurement -> Transfer.t
(** [recover_transfer ?steps measure] runs a backlight sweep and
    interpolates it into a full 256-entry transfer function. The
    recovered transfer lets the scheme "tailor the technique to each
    PDA" (§2) without trusting a datasheet curve. *)

val max_relative_error : Transfer.t -> Transfer.t -> float
(** [max_relative_error a b] is the largest absolute difference between
    two transfers over all registers — used to check recovery
    fidelity. *)

val analytic_measurement : Panel.t -> measurement
(** [analytic_measurement panel] is a noise-free measurement straight
    from the panel model, for tests and for quick characterisation
    without the camera in the loop. *)
