type panel_type = Reflective | Transmissive | Transflective

type backlight_technology = Ccfl | Led

type t = {
  panel_type : panel_type;
  technology : backlight_technology;
  transmittance : float;
  white_gamma : float;
  transfer : Transfer.t;
  ambient_reflection : float;
}

let make ?(transmittance = 0.06) ?(white_gamma = 1.0) ?ambient_reflection
    ~panel_type ~technology transfer =
  if transmittance <= 0. || transmittance > 1. then
    invalid_arg "Panel.make: transmittance out of (0, 1]";
  if white_gamma <= 0. then invalid_arg "Panel.make: white gamma must be positive";
  let ambient_reflection =
    match ambient_reflection with
    | Some r -> r
    | None -> (
      match panel_type with
      | Transmissive -> 0.
      | Reflective -> 0.05
      | Transflective -> 0.02)
  in
  { panel_type; technology; transmittance; white_gamma; transfer; ambient_reflection }

let image_response t image_level =
  let w = float_of_int (Image.Pixel.clamp_channel image_level) /. 255. in
  w ** t.white_gamma

let emitted_luminance t ~backlight_register ~image_level =
  t.transmittance
  *. Transfer.apply t.transfer backlight_register
  *. image_response t image_level

let perceived_intensity t ~backlight_gain ~image_level =
  if backlight_gain < 0. || backlight_gain > 1. then
    invalid_arg "Panel.perceived_intensity: gain out of [0, 1]";
  t.transmittance *. backlight_gain *. image_response t image_level

let pp_panel_type ppf = function
  | Reflective -> Format.pp_print_string ppf "reflective"
  | Transmissive -> Format.pp_print_string ppf "transmissive"
  | Transflective -> Format.pp_print_string ppf "transflective"

let pp_technology ppf = function
  | Ccfl -> Format.pp_print_string ppf "CCFL"
  | Led -> Format.pp_print_string ppf "LED"
