type t = {
  name : string;
  panel : Panel.t;
  screen_width : int;
  screen_height : int;
  backlight_levels : int;
  backlight_power_full_mw : float;
  backlight_power_floor_mw : float;
  lcd_logic_power_mw : float;
  cpu_busy_power_mw : float;
  cpu_idle_power_mw : float;
  network_rx_power_mw : float;
  network_idle_power_mw : float;
  base_power_mw : float;
}

(* Power budget sketch (full backlight, decoding, receiving):
   backlight 450 + lcd 130 + cpu 600 + net 300 + base 220 = 1700 mW,
   putting the backlight at ~26 % of device power — inside the paper's
   25-30 % statement for a typical PDA. *)
let ipaq_h5555 =
  {
    name = "ipaq_h5555";
    panel =
      Panel.make ~panel_type:Panel.Transflective ~technology:Panel.Led
        ~white_gamma:1.05 Transfer.led_typical;
    screen_width = 320;
    screen_height = 240;
    backlight_levels = 256;
    backlight_power_full_mw = 450.;
    backlight_power_floor_mw = 15.;
    lcd_logic_power_mw = 130.;
    cpu_busy_power_mw = 600.;
    cpu_idle_power_mw = 160.;
    network_rx_power_mw = 300.;
    network_idle_power_mw = 60.;
    base_power_mw = 220.;
  }

(* CCFL panels need a high-voltage inverter: a higher floor and a
   slightly higher full-power draw, with the lamp dead below the strike
   threshold encoded in the transfer curve. *)
let ipaq_h3650 =
  {
    name = "ipaq_h3650";
    panel =
      Panel.make ~panel_type:Panel.Reflective ~technology:Panel.Ccfl
        ~white_gamma:1.15 Transfer.ccfl_typical;
    screen_width = 320;
    screen_height = 240;
    backlight_levels = 256;
    backlight_power_full_mw = 560.;
    backlight_power_floor_mw = 90.;
    lcd_logic_power_mw = 150.;
    cpu_busy_power_mw = 700.;
    cpu_idle_power_mw = 200.;
    network_rx_power_mw = 320.;
    network_idle_power_mw = 70.;
    base_power_mw = 240.;
  }

let zaurus_sl5600 =
  {
    name = "zaurus_sl5600";
    panel =
      Panel.make ~panel_type:Panel.Reflective ~technology:Panel.Ccfl
        ~white_gamma:1.1 Transfer.ccfl_typical;
    screen_width = 240;
    screen_height = 320;
    backlight_levels = 256;
    backlight_power_full_mw = 520.;
    backlight_power_floor_mw = 80.;
    lcd_logic_power_mw = 140.;
    cpu_busy_power_mw = 650.;
    cpu_idle_power_mw = 180.;
    network_rx_power_mw = 310.;
    network_idle_power_mw = 65.;
    base_power_mw = 230.;
  }

let all = [ ipaq_h5555; ipaq_h3650; zaurus_sl5600 ]

let find name = List.find_opt (fun d -> String.equal d.name name) all

let backlight_gain d register = Transfer.apply d.panel.Panel.transfer register

let register_for_gain d f = Transfer.inverse d.panel.Panel.transfer f

let with_aged_backlight ~hours d =
  if hours < 0. then invalid_arg "Device.with_aged_backlight: negative hours";
  let panel = d.panel in
  let old_transfer = panel.Panel.transfer in
  (* Threshold creep: the drive level below which the lamp emits
     nothing rises with wear — fast for CCFL tubes (electrode wear),
     slow for LED strings. Response also sags towards the bottom. *)
  let creep_per_khour =
    match panel.Panel.technology with Panel.Ccfl -> 14. | Panel.Led -> 4.
  in
  let shift = int_of_float (creep_per_khour *. hours /. 1000.) in
  let sag = 1. +. (0.08 *. hours /. 1000.) in
  let aged =
    Transfer.of_function (fun r ->
        if r <= shift then 0.
        else Transfer.apply old_transfer (r - shift) ** sag)
  in
  {
    d with
    name = Printf.sprintf "%s+%.0fh" d.name hours;
    panel = { panel with Panel.transfer = aged };
  }

let pp ppf d =
  Format.fprintf ppf "<%s %a/%a %dx%d>" d.name Panel.pp_panel_type
    d.panel.Panel.panel_type Panel.pp_technology d.panel.Panel.technology
    d.screen_width d.screen_height
