(** LCD panel models.

    The perceived intensity of a pixel is [I = rho * L * Y] (§4.1):
    panel transmittance times backlight luminance times image
    luminance. Panels differ in type (the paper's three devices span
    reflective and transflective) and in how image luminance maps to
    emitted light (the white-level response of Fig 8, near-linear on
    the h5555). *)

type panel_type = Reflective | Transmissive | Transflective

type backlight_technology = Ccfl | Led

type t = {
  panel_type : panel_type;
  technology : backlight_technology;
  transmittance : float;  (** [rho] in [0, 1] *)
  white_gamma : float;
      (** exponent of the image-luminance response; 1.0 = linear
          (Fig 8 shows the h5555 close to linear) *)
  transfer : Transfer.t;  (** backlight register -> relative luminance *)
  ambient_reflection : float;
      (** fraction of ambient light reflected back to the viewer;
          nonzero for reflective/transflective panels *)
}

val make :
  ?transmittance:float ->
  ?white_gamma:float ->
  ?ambient_reflection:float ->
  panel_type:panel_type ->
  technology:backlight_technology ->
  Transfer.t ->
  t
(** Constructor with physically sensible defaults (transmittance 0.06,
    linear white response, reflection 0.02 for transflective panels and
    0 for transmissive). *)

val emitted_luminance :
  t -> backlight_register:int -> image_level:int -> float
(** [emitted_luminance panel ~backlight_register ~image_level] is the
    light reaching the viewer for a pixel of luma [image_level]
    (0–255) with the given backlight register, in arbitrary units
    normalised so that full backlight and white image give
    [transmittance]. Ambient contribution is excluded (dark-room
    viewing, like the paper's camera rig). *)

val perceived_intensity :
  t -> backlight_gain:float -> image_level:int -> float
(** [perceived_intensity panel ~backlight_gain ~image_level] is
    [rho * L * Y] with an explicit relative backlight luminance
    [backlight_gain] in [0, 1] — the analytic form used by the
    compensation equations. *)

val pp_panel_type : Format.formatter -> panel_type -> unit
val pp_technology : Format.formatter -> backlight_technology -> unit
