type t = { table : float array (* 256 entries, monotone, table.(255) = 1. *) }

let normalise raw =
  let table = Array.make 256 0. in
  let running = ref 0. in
  for i = 0 to 255 do
    let v = Float.max 0. raw.(i) in
    running := Float.max !running v;
    table.(i) <- !running
  done;
  let top = table.(255) in
  if top <= 0. then invalid_arg "Transfer: zero luminance at full register";
  for i = 0 to 255 do
    table.(i) <- Float.min 1. (table.(i) /. top)
  done;
  { table }

let of_function f = normalise (Array.init 256 f)

let of_table samples =
  if Array.length samples <> 256 then invalid_arg "Transfer.of_table: need 256 samples";
  normalise (Array.copy samples)

let clamp_register r = if r < 0 then 0 else if r > 255 then 255 else r

let apply t register = t.table.(clamp_register register)

let inverse t f =
  let f = Float.max 0. (Float.min 1. f) in
  (* Monotone table: binary search for the first index >= f. *)
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.table.(mid) >= f then bisect lo mid else bisect (mid + 1) hi
  in
  bisect 0 255

let gamma g = of_function (fun r -> (float_of_int r /. 255.) ** g)

let led_typical =
  of_function (fun r ->
      (* PWM dead zone below register 8, then concave response. *)
      if r < 8 then 0. else ((float_of_int r -. 8.) /. 247.) ** 0.75)

let ccfl_typical =
  of_function (fun r ->
      (* The inverter cannot strike the lamp below ~40/255; past the
         threshold the tube brightens nearly linearly with drive. *)
      if r < 40 then 0. else (float_of_int r -. 40.) /. 215.)

let equal a b = a.table = b.table

let pp ppf t =
  Format.fprintf ppf "<transfer 0->%.3f 64->%.3f 128->%.3f 192->%.3f 255->%.3f>"
    t.table.(0) t.table.(64) t.table.(128) t.table.(192) t.table.(255)
