(** Text-format device profiles.

    §4.3's negotiation ships "client characteristics" to the server;
    for a real deployment those characteristics must be definable
    without recompiling. The format is one `key = value` per line with
    `#` comments; any omitted key inherits the iPAQ h5555 default, so a
    minimal file can be just a name and a transfer curve.

    {v
    name = my_pda
    panel = transflective        # reflective | transmissive | transflective
    technology = led             # led | ccfl
    transfer = gamma:0.8         # led | ccfl | linear | gamma:<g>
    white_gamma = 1.05
    screen = 320x240
    backlight_full_mw = 450
    backlight_floor_mw = 15
    lcd_mw = 130
    cpu_busy_mw = 600
    cpu_idle_mw = 160
    net_rx_mw = 300
    net_idle_mw = 60
    base_mw = 220
    v} *)

val of_string : string -> (Device.t, string) result
(** [of_string text] parses a profile. Unknown keys, malformed values
    and out-of-range numbers are reported with the offending line. *)

val to_string : Device.t -> string
(** [to_string device] renders a profile. Power figures, geometry and
    panel parameters round-trip exactly; the transfer curve is emitted
    as the technology's named curve ([led] or [ccfl]), so devices with
    hand-built or recovered curves serialise to their technology
    default (noted in a comment). *)

val load : path:string -> (Device.t, string) result
(** [load ~path] reads and parses a profile file. *)
