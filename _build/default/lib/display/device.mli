(** Device profiles for the paper's three experimental handhelds.

    §5: "Three devices with different LCD technology were used in our
    experiments: iPAQ 3650 and Zaurus SL-5600 (reflective display, CCFL
    backlight) and iPAQ 5555 (transflective display, LED backlight)."
    Power figures follow the paper's statements that backlight
    dominates at roughly 25–30 % of total device power and that LCD
    power is "almost proportional to backlight level, but little
    dependent of pixel values". Absolute milliwatt numbers are
    representative of the device class, not measured; the benches only
    rely on the proportions. *)

type t = {
  name : string;
  panel : Panel.t;
  screen_width : int;
  screen_height : int;
  backlight_levels : int;  (** number of register steps, usually 256 *)
  backlight_power_full_mw : float;
      (** backlight power at register 255 *)
  backlight_power_floor_mw : float;
      (** fixed driver/inverter power whenever the backlight is on *)
  lcd_logic_power_mw : float;  (** panel controller, independent of level *)
  cpu_busy_power_mw : float;  (** XScale-class core, decoding *)
  cpu_idle_power_mw : float;
  network_rx_power_mw : float;  (** WLAN receiving *)
  network_idle_power_mw : float;
  base_power_mw : float;  (** RAM, audio, regulators *)
}

val ipaq_h5555 : t
(** LED transflective device: the implementation/measurement platform
    of §5 (400 MHz XScale, 64K-colour transflective LCD). *)

val ipaq_h3650 : t
(** CCFL reflective device. *)

val zaurus_sl5600 : t
(** CCFL reflective device. *)

val all : t list

val find : string -> t option
(** Lookup by name, e.g. ["ipaq_h5555"]. *)

val backlight_gain : t -> int -> float
(** [backlight_gain d register] is the relative backlight luminance for
    a register, through the device's transfer function. *)

val register_for_gain : t -> float -> int
(** [register_for_gain d f] is the smallest register achieving relative
    luminance [f] — the table lookup the client performs at playback
    (§4.3: "a simple multiplication, followed by a table look-up"). *)

val with_aged_backlight : hours:float -> t -> t
(** [with_aged_backlight ~hours d] is [d] with the backlight worn by
    the given operating hours: the drive threshold creeps upward
    (strongly for CCFL tubes, mildly for LED PWM stages) and the
    response sags, changing the transfer curve's *shape* — which is
    what invalidates a stale factory table and motivates periodic
    re-characterisation through the camera rig (§2: the scheme tailors
    the technique "to each PDA ... by including the display properties
    in the loop"). Raises [Invalid_argument] on negative hours. *)

val pp : Format.formatter -> t -> unit
