type entry = {
  first_frame : int;
  frame_count : int;
  register : int;
  compensation : float;
  effective_max : int;
}

type t = {
  clip_name : string;
  device_name : string;
  quality : Quality_level.t;
  fps : float;
  total_frames : int;
  entries : entry array;
}

let validate_entry e =
  e.frame_count > 0 && e.register >= 0 && e.register <= 255
  && e.compensation >= 1.
  && e.effective_max >= 0 && e.effective_max <= 255

let make ~clip_name ~device_name ~quality ~fps ~total_frames entries =
  if fps <= 0. then invalid_arg "Track.make: fps must be positive";
  if total_frames < 0 then invalid_arg "Track.make: negative frame count";
  let covered =
    Array.fold_left
      (fun next e ->
        if not (validate_entry e) then invalid_arg "Track.make: invalid entry";
        if e.first_frame <> next then invalid_arg "Track.make: entries not contiguous";
        next + e.frame_count)
      0 entries
  in
  if covered <> total_frames then
    invalid_arg "Track.make: entries do not cover the clip";
  { clip_name; device_name; quality; fps; total_frames; entries }

let lookup t frame =
  if frame < 0 || frame >= t.total_frames then
    invalid_arg "Track.lookup: frame out of range";
  let rec bisect lo hi =
    if lo >= hi then t.entries.(lo)
    else
      let mid = (lo + hi + 1) / 2 in
      if t.entries.(mid).first_frame <= frame then bisect mid hi
      else bisect lo (mid - 1)
  in
  bisect 0 (Array.length t.entries - 1)

let expand f t =
  let out = Array.make t.total_frames (f t.entries.(0)) in
  Array.iter
    (fun e ->
      for i = e.first_frame to e.first_frame + e.frame_count - 1 do
        out.(i) <- f e
      done)
    t.entries;
  out

let register_track t =
  if t.total_frames = 0 then [||] else expand (fun e -> e.register) t

let compensation_track t =
  if t.total_frames = 0 then [||] else expand (fun e -> e.compensation) t

let switch_count t =
  let regs = register_track t in
  let switches = ref 0 in
  for i = 1 to Array.length regs - 1 do
    if regs.(i) <> regs.(i - 1) then incr switches
  done;
  !switches

let same_settings a b =
  a.register = b.register
  && Float.equal a.compensation b.compensation
  && a.effective_max = b.effective_max

let merge_runs t =
  let merged =
    Array.fold_left
      (fun acc e ->
        match acc with
        | prev :: rest when same_settings prev e ->
          { prev with frame_count = prev.frame_count + e.frame_count } :: rest
        | _ -> e :: acc)
      [] t.entries
  in
  { t with entries = Array.of_list (List.rev merged) }

let entry_count t = Array.length t.entries

let pp ppf t =
  Format.fprintf ppf "<track %s@%s q=%a %d frames %d entries %d switches>"
    t.clip_name t.device_name Quality_level.pp t.quality t.total_frames
    (entry_count t) (switch_count t)
