type t = Lossless | Loss_5 | Loss_10 | Loss_15 | Loss_20 | Custom of float

let allowed_loss = function
  | Lossless -> 0.
  | Loss_5 -> 0.05
  | Loss_10 -> 0.10
  | Loss_15 -> 0.15
  | Loss_20 -> 0.20
  | Custom f ->
    if f < 0. || f > 1. then invalid_arg "Quality_level: custom loss out of [0, 1]";
    f

let standard_grid = [ Lossless; Loss_5; Loss_10; Loss_15; Loss_20 ]

let of_percent p =
  match p with
  | 0. -> Lossless
  | 5. -> Loss_5
  | 10. -> Loss_10
  | 15. -> Loss_15
  | 20. -> Loss_20
  | p -> Custom (p /. 100.)

let to_percent t = allowed_loss t *. 100.

let label t =
  match t with
  | Lossless -> "0%"
  | Loss_5 -> "5%"
  | Loss_10 -> "10%"
  | Loss_15 -> "15%"
  | Loss_20 -> "20%"
  | Custom f -> Printf.sprintf "%.1f%%" (f *. 100.)

let compare a b = Float.compare (allowed_loss a) (allowed_loss b)

let pp ppf t = Format.pp_print_string ppf (label t)
