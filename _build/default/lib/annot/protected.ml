type profiled = {
  clip_name : string;
  fps : float;
  total_frames : int;
  inside : Image.Histogram.t array;
  outside : Image.Histogram.t array;
  max_track : int array;
  mean_track : float array;
}

let profile ~roi clip =
  let n = clip.Video.Clip.frame_count in
  let inside = Array.init n (fun _ -> Image.Histogram.create ()) in
  let outside = Array.init n (fun _ -> Image.Histogram.create ()) in
  Video.Clip.iter_frames
    (fun i frame ->
      Image.Roi.split_histograms roi frame ~inside:inside.(i) ~outside:outside.(i))
    clip;
  let whole i = Image.Histogram.merge inside.(i) outside.(i) in
  let max_track =
    Array.init n (fun i ->
        let h = whole i in
        if Image.Histogram.total h = 0 then 0 else Image.Histogram.max_level h)
  in
  let mean_track =
    Array.init n (fun i ->
        let h = whole i in
        if Image.Histogram.total h = 0 then 0. else Image.Histogram.mean h)
  in
  {
    clip_name = clip.Video.Clip.name;
    fps = clip.Video.Clip.fps;
    total_frames = n;
    inside;
    outside;
    max_track;
    mean_track;
  }

let solve_scene ~device ~quality ~inside ~outside =
  let inside_total = Image.Histogram.total inside in
  let outside_total = Image.Histogram.total outside in
  if inside_total = 0 && outside_total = 0 then
    invalid_arg "Protected.solve_scene: empty scene";
  let allowed = Quality_level.allowed_loss quality in
  let outside_level =
    if outside_total = 0 then 0
    else Image.Histogram.clip_level outside ~allowed_loss:allowed
  in
  let inside_level =
    if inside_total = 0 then 0 else Image.Histogram.max_level inside
  in
  let effective_max = max outside_level inside_level in
  let clipped =
    Image.Histogram.samples_above outside effective_max
    + Image.Histogram.samples_above inside effective_max
  in
  let clipped_fraction =
    float_of_int clipped /. float_of_int (inside_total + outside_total)
  in
  Backlight_solver.of_effective_max ~device ~effective_max ~clipped_fraction

let annotate ?(scene_params = Scene_detect.default_params) ~device ~quality
    profiled =
  let scenes =
    Scene_detect.segment_with_means scene_params ~max_track:profiled.max_track
      ~mean_track:profiled.mean_track
  in
  let merged histograms (scene : Scene_detect.scene) =
    let acc = Image.Histogram.create () in
    for i = scene.Scene_detect.first to scene.Scene_detect.last do
      Image.Histogram.merge_into ~dst:acc histograms.(i)
    done;
    acc
  in
  let entries =
    List.map
      (fun (scene : Scene_detect.scene) ->
        let sol =
          solve_scene ~device ~quality ~inside:(merged profiled.inside scene)
            ~outside:(merged profiled.outside scene)
        in
        {
          Track.first_frame = scene.Scene_detect.first;
          frame_count = scene.Scene_detect.last - scene.Scene_detect.first + 1;
          register = sol.Backlight_solver.register;
          compensation = sol.Backlight_solver.compensation;
          effective_max = sol.Backlight_solver.effective_max;
        })
      scenes
  in
  Track.make ~clip_name:profiled.clip_name ~device_name:device.Display.Device.name
    ~quality ~fps:profiled.fps ~total_frames:profiled.total_frames
    (Array.of_list entries)

let roi_clipped_fraction ~device profiled track =
  let clipped = ref 0 and total = ref 0 in
  for i = 0 to profiled.total_frames - 1 do
    let entry = Track.lookup track i in
    let gain = Display.Device.backlight_gain device entry.Track.register in
    let threshold = int_of_float (255. *. gain) in
    clipped := !clipped + Image.Histogram.samples_above profiled.inside.(i) threshold;
    total := !total + Image.Histogram.total profiled.inside.(i)
  done;
  if !total = 0 then 0. else float_of_int !clipped /. float_of_int !total
