(** The two compensation operators of §4.1, solved and compared.

    The paper lists brightness compensation ([C' = min(1, C + dC)]) and
    contrast enhancement ([C' = min(1, C*k)]) and selects the latter.
    This module makes the choice measurable: it solves a scene under
    either operator and reports the *analytic distortion* — the mean
    absolute error between the perceived intensity of the compensated
    frame on the dimmed backlight and the original at full backlight,
    normalised to full scale. Contrast enhancement with [k = 1/gain] is
    exact for every non-clipped pixel; an additive offset can be exact
    for at most one luminance level, which is why the paper prefers the
    multiplicative form. *)

type t =
  | Contrast_enhancement  (** the paper's choice *)
  | Brightness_compensation  (** the §4.1 alternative *)

val name : t -> string

type solution = {
  operator : t;
  register : int;  (** backlight register for the device *)
  realised_gain : float;  (** transfer(register) *)
  parameter : float;
      (** the operator parameter: the gain [k] for contrast
          enhancement, the offset [delta] (in levels) for brightness
          compensation *)
  clipped_fraction : float;  (** histogram-predicted clipping *)
  mean_error : float;
      (** mean absolute perceived-intensity error over the scene
          histogram, normalised to full scale (0 = exact) *)
}

val solve :
  device:Display.Device.t ->
  quality:Quality_level.t ->
  t ->
  Image.Histogram.t ->
  solution
(** [solve ~device ~quality operator hist] dims as far as the clipping
    budget allows under the given operator and computes the residual
    distortion. Raises [Invalid_argument] on an empty histogram. *)

val apply : solution -> Image.Raster.t -> Image.Raster.t
(** [apply solution frame] performs the server-side compensation the
    solution prescribes. *)

val pp : Format.formatter -> solution -> unit
