(** On-the-fly annotation at a proxy — the videoconferencing case.

    §3: the stream "can be routed through a proxy node — a high-end
    machine with the ability to process the video stream in real-time,
    on-the-fly (example in videoconferencing)". A live proxy cannot
    profile the whole clip; it buffers a [lookahead] window, annotates
    the window it has seen, forwards it, and repeats. The cost of
    liveness is the buffering latency and scene fragmentation at
    window boundaries — not quality: every decision is still made on
    actual histograms, never predictions. *)

val added_latency_s : lookahead:int -> fps:float -> float
(** The buffering delay the proxy adds to the stream. *)

val annotate :
  ?scene_params:Scene_detect.params ->
  lookahead:int ->
  device:Display.Device.t ->
  quality:Quality_level.t ->
  Annotator.profiled ->
  Track.t
(** [annotate ~lookahead ~device ~quality profiled] annotates in
    windows of [lookahead] frames: scene detection and solving run
    independently per window, so no annotation depends on frames more
    than [lookahead] ahead. With a window at least the clip length the
    result equals offline annotation. Raises [Invalid_argument] on a
    non-positive lookahead. *)
