let frame track i raster =
  let entry = Track.lookup track i in
  Image.Ops.contrast_enhance ~k:entry.Track.compensation raster

let clip c track =
  if c.Video.Clip.frame_count <> track.Track.total_frames then
    invalid_arg "Compensate.clip: track does not match clip";
  Video.Clip.map_frames ~name:(c.Video.Clip.name ^ "+compensated")
    (fun i raster -> frame track i raster)
    c

let perceived_error ~device ~original ~compensated ~register =
  let panel = device.Display.Device.panel in
  let full = 255 in
  let white =
    Display.Panel.emitted_luminance panel ~backlight_register:full ~image_level:255
  in
  (* Per-luma emitted light, tabulated for both backlight settings. *)
  let table_ref =
    Array.init 256 (fun l ->
        Display.Panel.emitted_luminance panel ~backlight_register:full ~image_level:l)
  and table_cmp =
    Array.init 256 (fun l ->
        Display.Panel.emitted_luminance panel ~backlight_register:register
          ~image_level:l)
  in
  let w = Image.Raster.width original and h = Image.Raster.height original in
  if w <> Image.Raster.width compensated || h <> Image.Raster.height compensated then
    invalid_arg "Compensate.perceived_error: dimension mismatch";
  let sum = ref 0. in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let lo = Image.Pixel.luminance (Image.Raster.get original ~x ~y)
      and lc = Image.Pixel.luminance (Image.Raster.get compensated ~x ~y) in
      sum := !sum +. abs_float (table_ref.(lo) -. table_cmp.(lc))
    done
  done;
  !sum /. (float_of_int (w * h) *. white)
