(** User-selected quality levels.

    §4.2: "The user specifies the quality level when he requests the
    video clip from the server"; §4.3 fixes the experimental grid to
    0, 5, 10, 15 and 20 % of high-luminance pixels allowed to clip, and
    §4.3 notes the server "provides a number of different video
    qualities as exemplified above (5 in our case), same for all types
    of PDA clients". *)

type t =
  | Lossless  (** 0 % clipped: no degradation at all *)
  | Loss_5
  | Loss_10
  | Loss_15
  | Loss_20
  | Custom of float  (** an arbitrary allowed clipped fraction in [0, 1] *)

val allowed_loss : t -> float
(** The clipped-pixel budget as a fraction in [0, 1]. Raises
    [Invalid_argument] for a [Custom] value outside the range. *)

val standard_grid : t list
(** The paper's five levels, in ascending-loss order. *)

val of_percent : float -> t
(** [of_percent 10.] is [Loss_10]; non-grid values become [Custom]. *)

val to_percent : t -> float

val label : t -> string
(** Short label as used in figure legends, e.g. ["10%"]. *)

val compare : t -> t -> int
(** Orders by allowed loss. *)

val pp : Format.formatter -> t -> unit
