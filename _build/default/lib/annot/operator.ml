type t = Contrast_enhancement | Brightness_compensation

let name = function
  | Contrast_enhancement -> "contrast-enhancement"
  | Brightness_compensation -> "brightness-compensation"

type solution = {
  operator : t;
  register : int;
  realised_gain : float;
  parameter : float;
  clipped_fraction : float;
  mean_error : float;
}

(* Mean |displayed - original| over the histogram, normalised to full
   scale, where [displayed y] is the perceived level of a pixel of
   original luma [y] after compensation and dimming. *)
let histogram_error hist displayed =
  let total = float_of_int (Image.Histogram.total hist) in
  let err = ref 0. in
  for y = 0 to 255 do
    let count = Image.Histogram.count hist y in
    if count > 0 then
      err := !err +. (float_of_int count *. abs_float (displayed y -. float_of_int y))
  done;
  !err /. (total *. 255.)

let solve_contrast ~device ~quality hist =
  let sol = Backlight_solver.solve ~device ~quality hist in
  let gain = sol.Backlight_solver.realised_gain in
  let k = sol.Backlight_solver.compensation in
  let displayed y = gain *. Float.min 255. (k *. float_of_int y) in
  {
    operator = Contrast_enhancement;
    register = sol.Backlight_solver.register;
    realised_gain = gain;
    parameter = k;
    clipped_fraction = sol.Backlight_solver.clipped_fraction;
    mean_error = histogram_error hist displayed;
  }

let solve_brightness ~device ~quality hist =
  let allowed = Quality_level.allowed_loss quality in
  let effective_max = Image.Histogram.clip_level hist ~allowed_loss:allowed in
  (* The offset is capped by the clipping budget: pixels above
     [255 - delta] saturate. *)
  let delta = float_of_int (255 - effective_max) in
  let compensated y = Float.min 255. (float_of_int y +. delta) in
  (* Least-squares gain over the compensated histogram: the dimming
     level that best restores original levels. An additive offset
     cannot be exact for more than one level, so there is a residual. *)
  let num = ref 0. and den = ref 0. in
  for y = 0 to 255 do
    let count = float_of_int (Image.Histogram.count hist y) in
    if count > 0. then begin
      let d = compensated y in
      num := !num +. (count *. float_of_int y *. d);
      den := !den +. (count *. d *. d)
    end
  done;
  let ideal_gain = if !den > 0. then !num /. !den else 1. in
  let ideal_gain = Float.max 0. (Float.min 1. ideal_gain) in
  let register = Display.Device.register_for_gain device ideal_gain in
  let realised_gain = Display.Device.backlight_gain device register in
  let displayed y = realised_gain *. compensated y in
  let total = Image.Histogram.total hist in
  let clipped_fraction =
    float_of_int (Image.Histogram.samples_above hist effective_max)
    /. float_of_int total
  in
  {
    operator = Brightness_compensation;
    register;
    realised_gain;
    parameter = delta;
    clipped_fraction;
    mean_error = histogram_error hist displayed;
  }

let solve ~device ~quality operator hist =
  match operator with
  | Contrast_enhancement -> solve_contrast ~device ~quality hist
  | Brightness_compensation -> solve_brightness ~device ~quality hist

let apply solution frame =
  match solution.operator with
  | Contrast_enhancement -> Image.Ops.contrast_enhance ~k:solution.parameter frame
  | Brightness_compensation ->
    Image.Ops.brightness_compensate
      ~delta:(int_of_float (solution.parameter +. 0.5))
      frame

let pp ppf s =
  Format.fprintf ppf "<%s reg %d gain %.3f param %.2f clip %.2f%% err %.4f>"
    (name s.operator) s.register s.realised_gain s.parameter
    (100. *. s.clipped_fraction) s.mean_error
