(** Applying annotation tracks to frames.

    The compensation itself runs at the server or proxy ("To reduce the
    load on the client device at runtime, the compensation of the
    frames in the video stream is performed at either the server or the
    intermediary proxy node", §4.3); these helpers are what that node
    executes, plus an end-to-end perceived-intensity check used by the
    validation tests. *)

val frame : Track.t -> int -> Image.Raster.t -> Image.Raster.t
(** [frame track i raster] is frame [i] brightened by its entry's
    compensation gain (contrast enhancement, §4.1). The gain-1.0 case
    returns a copy. *)

val clip : Video.Clip.t -> Track.t -> Video.Clip.t
(** [clip c track] is the compensated stream the client receives: each
    frame pre-brightened according to the track. Frame counts must
    match. *)

val perceived_error :
  device:Display.Device.t ->
  original:Image.Raster.t ->
  compensated:Image.Raster.t ->
  register:int ->
  float
(** [perceived_error ~device ~original ~compensated ~register] compares
    the perceived intensity ([rho * L * Y], through the device panel)
    of the original at full backlight against the compensated frame at
    the reduced [register], returning the mean absolute error in
    intensity units normalised to the full-backlight white level
    (0 = identical appearance). This is the analytic counterpart of
    the camera check. *)
