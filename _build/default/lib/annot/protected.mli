(** Region-of-interest-protected annotation — the user-supervised mode
    of §3.

    The clipping budget applies only to pixels *outside* the protected
    region; pixels inside must never clip, so a scene's effective
    maximum is at least the region's own maximum luminance. Protecting
    the credit-text band removes the paper's noted end-credit
    distortion at the cost of whatever dimming the text's brightness
    forbids. *)

type profiled = {
  clip_name : string;
  fps : float;
  total_frames : int;
  inside : Image.Histogram.t array;  (** per-frame, protected pixels *)
  outside : Image.Histogram.t array;  (** per-frame, expendable pixels *)
  max_track : int array;  (** per-frame maximum over the whole frame *)
  mean_track : float array;
}

val profile : roi:Image.Roi.t -> Video.Clip.t -> profiled
(** Single-pass split profiling. An empty region puts every pixel in
    [outside]. *)

val solve_scene :
  device:Display.Device.t ->
  quality:Quality_level.t ->
  inside:Image.Histogram.t ->
  outside:Image.Histogram.t ->
  Backlight_solver.solution
(** [solve_scene ~device ~quality ~inside ~outside] clips only outside
    pixels, then raises the effective maximum to cover the protected
    region's brightest pixel. Raises [Invalid_argument] if both
    histograms are empty. *)

val annotate :
  ?scene_params:Scene_detect.params ->
  device:Display.Device.t ->
  quality:Quality_level.t ->
  profiled ->
  Track.t
(** Scene detection and per-scene protected solving, mirroring
    {!Annotator.annotate_profiled}. *)

val roi_clipped_fraction :
  device:Display.Device.t -> profiled -> Track.t -> float
(** Fraction of *protected* pixels across the whole clip that would
    clip under the track's registers — 0 for tracks produced by
    {!annotate}, positive when an unprotected track damages the
    region. *)
