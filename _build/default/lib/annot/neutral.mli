(** Device-neutral annotations and client-side mapping.

    §4.3 offers two deployments: the server computes final backlight
    registers from the client's device profile (server-side mapping,
    {!Annotator}), or it ships *device-neutral* luminance factors —
    "same for all types of PDA clients" — and each client turns them
    into registers itself: "a simple multiplication, followed by a
    table look-up". Neutral tracks let one annotation pass serve a
    heterogeneous fleet; the cost is that compensation must also be
    device-neutral ([k = 255 / effective_max]), so the realised
    backlight may sit one register step above the ideal. *)

val generic_device_name : string
(** The [device_name] marking a neutral track (["generic"]). *)

val annotate :
  ?scene_params:Scene_detect.params ->
  quality:Quality_level.t ->
  Annotator.profiled ->
  Track.t
(** [annotate ~quality profiled] produces a neutral track: each entry's
    [register] field carries the *desired relative luminance* quantised
    to 0–255 (the "multiplication" input), and [compensation] is the
    device-independent [255 / effective_max]. *)

val map_to_device : Display.Device.t -> Track.t -> Track.t
(** [map_to_device device track] is the client-side table look-up:
    every neutral gain becomes the device's smallest register achieving
    it. Tracks already mapped to a device pass through by recomputing
    from their [effective_max], so mapping is idempotent. *)
