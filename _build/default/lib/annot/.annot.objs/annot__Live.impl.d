lib/annot/live.ml: Annotator Array Backlight_solver Display Image List Scene_detect Track
