lib/annot/scene_detect.ml: Array Float Format List
