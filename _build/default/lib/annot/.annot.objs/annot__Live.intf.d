lib/annot/live.mli: Annotator Display Quality_level Scene_detect Track
