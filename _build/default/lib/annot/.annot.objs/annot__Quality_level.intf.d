lib/annot/quality_level.mli: Format
