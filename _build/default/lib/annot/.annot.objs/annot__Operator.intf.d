lib/annot/operator.mli: Display Format Image Quality_level
