lib/annot/annotator.ml: Array Backlight_solver Display Image List Scene_detect Track Video
