lib/annot/track.ml: Array Float Format List Quality_level
