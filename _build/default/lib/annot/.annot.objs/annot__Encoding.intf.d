lib/annot/encoding.mli: Track
