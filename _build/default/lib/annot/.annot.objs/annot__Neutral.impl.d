lib/annot/neutral.ml: Annotator Array Display Float Image List Quality_level Scene_detect Track
