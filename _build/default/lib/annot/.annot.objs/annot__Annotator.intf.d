lib/annot/annotator.mli: Display Image Quality_level Scene_detect Track Video
