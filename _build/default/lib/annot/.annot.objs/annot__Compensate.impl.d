lib/annot/compensate.ml: Array Display Image Track Video
