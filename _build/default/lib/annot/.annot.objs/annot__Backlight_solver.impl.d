lib/annot/backlight_solver.ml: Display Float Format Image Quality_level
