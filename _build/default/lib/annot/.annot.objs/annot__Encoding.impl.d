lib/annot/encoding.ml: Array Buffer Char Printf Quality_level String Track
