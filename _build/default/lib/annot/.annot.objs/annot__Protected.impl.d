lib/annot/protected.ml: Array Backlight_solver Display Image List Quality_level Scene_detect Track Video
