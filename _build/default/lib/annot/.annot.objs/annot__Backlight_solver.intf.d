lib/annot/backlight_solver.mli: Display Format Image Quality_level
