lib/annot/operator.ml: Backlight_solver Display Float Format Image Quality_level
