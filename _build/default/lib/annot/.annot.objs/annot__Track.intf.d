lib/annot/track.mli: Format Quality_level
