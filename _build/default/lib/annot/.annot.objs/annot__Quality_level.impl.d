lib/annot/quality_level.ml: Float Format Printf
