lib/annot/scene_detect.mli: Format
