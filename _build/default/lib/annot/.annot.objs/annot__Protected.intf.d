lib/annot/protected.mli: Backlight_solver Display Image Quality_level Scene_detect Track Video
