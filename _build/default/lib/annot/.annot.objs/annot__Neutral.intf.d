lib/annot/neutral.mli: Annotator Display Quality_level Scene_detect Track
