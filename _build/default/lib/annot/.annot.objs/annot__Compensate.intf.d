lib/annot/compensate.mli: Display Image Track Video
