let added_latency_s ~lookahead ~fps =
  if lookahead < 1 then invalid_arg "Live: lookahead must be positive";
  if fps <= 0. then invalid_arg "Live: fps must be positive";
  float_of_int lookahead /. fps

let annotate ?(scene_params = Scene_detect.default_params) ~lookahead ~device
    ~quality (profiled : Annotator.profiled) =
  if lookahead < 1 then invalid_arg "Live.annotate: lookahead must be positive";
  let n = profiled.Annotator.total_frames in
  let entries = ref [] in
  let window_start = ref 0 in
  while !window_start < n do
    let first = !window_start in
    let count = min lookahead (n - first) in
    let max_window = Array.sub profiled.Annotator.max_track first count in
    let mean_window = Array.sub profiled.Annotator.mean_track first count in
    let scenes =
      Scene_detect.segment_with_means scene_params ~max_track:max_window
        ~mean_track:mean_window
    in
    List.iter
      (fun (scene : Scene_detect.scene) ->
        let abs_first = first + scene.Scene_detect.first in
        let abs_last = first + scene.Scene_detect.last in
        let hist = Image.Histogram.create () in
        for i = abs_first to abs_last do
          Image.Histogram.merge_into ~dst:hist profiled.Annotator.histograms.(i)
        done;
        let sol = Backlight_solver.solve ~device ~quality hist in
        entries :=
          {
            Track.first_frame = abs_first;
            frame_count = abs_last - abs_first + 1;
            register = sol.Backlight_solver.register;
            compensation = sol.Backlight_solver.compensation;
            effective_max = sol.Backlight_solver.effective_max;
          }
          :: !entries)
      scenes;
    window_start := first + count
  done;
  Track.make ~clip_name:profiled.Annotator.clip_name
    ~device_name:device.Display.Device.name ~quality ~fps:profiled.Annotator.fps
    ~total_frames:n
    (Array.of_list (List.rev !entries))
