(** Per-scene backlight / compensation solver.

    Given the merged luminance histogram of a scene and the
    user-selected quality level, the solver finds the scene's
    *effective* maximum luminance — the smallest level such that the
    fraction of pixels above it fits in the clipping budget (Fig 5) —
    and from it:

    - the compensation gain [k = 255 / effective_max]: brightening the
      image by [k] maps the effective maximum to full scale;
    - the required relative backlight luminance
      [f = effective_max / 255]: dimming the backlight by [f] while
      brightening by [k = 1/f] keeps the perceived intensity
      [I = rho * L * Y] of every non-clipped pixel unchanged (§4.1);
    - the device register realising at least [f] through the
      backlight-luminance transfer function (§4.3: "The resulted value
      is later plugged into the backlight-luminance function for
      computing the required backlight level").

    Because registers are discrete the realised gain can exceed [f];
    the solver then *weakens* the compensation to [k = 1 / realised]
    so the output never clips more than the histogram predicted. *)

type solution = {
  effective_max : int;  (** clip level in [0, 255] *)
  desired_gain : float;  (** [effective_max / 255], in [0, 1] *)
  register : int;  (** backlight register for the device *)
  realised_gain : float;  (** transfer(register), at least desired *)
  compensation : float;  (** image gain [1 / realised_gain], at least 1 *)
  clipped_fraction : float;
      (** histogram-predicted fraction of pixels that clip *)
}

val solve :
  device:Display.Device.t ->
  quality:Quality_level.t ->
  Image.Histogram.t ->
  solution
(** [solve ~device ~quality hist] computes the scene solution. An
    all-black scene (effective max 0) maps to the smallest register
    with any light output and compensation 1 (nothing to show). Raises
    [Invalid_argument] on an empty histogram. *)

val of_effective_max :
  device:Display.Device.t ->
  effective_max:int ->
  clipped_fraction:float ->
  solution
(** [of_effective_max ~device ~effective_max ~clipped_fraction] derives
    the register/gain/compensation for an externally chosen clip level
    — the entry point for solvers with additional constraints (e.g.
    region-of-interest protection). [effective_max] must be in
    [0, 255]. *)

val backlight_power_fraction : solution -> float
(** Relative backlight *level* after optimisation, [register / 255] —
    the quantity whose complement Fig 6 plots as "Backlight Power
    Saved", given the near-proportionality of backlight power to level
    (§5). *)

val pp : Format.formatter -> solution -> unit
