(** Scene detection over the per-frame maximum-luminance track.

    §4.3: "we grouped frames into scenes based on their maximum
    luminance levels: a change of 10 % or more in frame maximum
    luminance level is considered a scene change, but only if it does
    not occur more frequently than a threshold interval. [...] Both
    these thresholds were experimentally set for minimizing visible
    spikes."

    The detector therefore opens a new scene when the frame maximum
    departs by at least [change_threshold] (relative) either from the
    previous frame (hard cuts) or from the first frame of the current
    scene (fades and slow pans, whose per-frame steps never reach the
    threshold but whose cumulative drift does), provided the current
    scene is at least [min_scene_frames] long — the hysteresis that
    prevents backlight flicker. *)

type params = {
  change_threshold : float;
      (** relative max-luminance change that signals a cut; the paper
          uses 0.10 *)
  min_scene_frames : int;
      (** minimum scene length in frames (the "threshold interval");
          must be at least 1 *)
  mean_change_threshold : float;
      (** relative *mean*-luminance change that also signals a cut in
          {!segment_with_means}. The paper's heuristic is max-only, but
          notes "different heuristics can be applied, depending on the
          nature of the video" (§2): flashes and explosions keep the
          frame maximum pinned while the mean jumps, and only a mean
          cut isolates them. [infinity] disables the criterion. *)
}

val default_params : params
(** 10 % max threshold, 40 % mean threshold, half a second at 12 fps
    (6 frames). *)

val per_frame_params : params
(** Degenerate parameters making every frame its own scene — the
    "backlight changes for each frame" variant the paper says can do
    better at the cost of flicker (ablation A1). *)

type scene = { first : int; last : int }
(** Inclusive frame interval. *)

val segment : params -> int array -> scene list
(** [segment params max_track] partitions frame indices
    [0 .. length-1] into scenes using the paper's max-luminance
    heuristic only (the mean criterion is ignored). The result is a
    partition: scenes are contiguous, ordered, non-overlapping, and
    cover every frame. An empty track yields no scenes. Raises
    [Invalid_argument] on bad parameters. *)

val segment_with_means :
  params -> max_track:int array -> mean_track:float array -> scene list
(** Like {!segment} but also cuts when the frame mean departs from the
    previous frame or drifts from the scene start by
    [mean_change_threshold] — the extended heuristic the annotator
    uses. The two tracks must have equal length. *)

val scene_count : params -> int array -> int

val scene_max : int array -> scene -> int
(** [scene_max track s] is the maximum of [track] over the scene — the
    "Scene Max. Lum." series of Fig 6. *)

val switches : scene list -> int
(** Number of scene boundaries (backlight switching opportunities):
    [max 0 (scenes - 1)]. *)

val pp_scene : Format.formatter -> scene -> unit
