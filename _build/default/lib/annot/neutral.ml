let generic_device_name = "generic"

let annotate ?(scene_params = Scene_detect.default_params) ~quality
    (profiled : Annotator.profiled) =
  let scenes =
    Scene_detect.segment_with_means scene_params
      ~max_track:profiled.Annotator.max_track
      ~mean_track:profiled.Annotator.mean_track
  in
  let entries =
    List.map
      (fun (scene : Scene_detect.scene) ->
        let hist = Annotator.scene_histogram profiled scene in
        let allowed = Quality_level.allowed_loss quality in
        let effective_max = Image.Histogram.clip_level hist ~allowed_loss:allowed in
        (* The desired gain is effective_max / 255, so on the 0-255
           wire scale the neutral "register" is effective_max itself. *)
        let gain_wire = effective_max in
        let compensation =
          if effective_max = 0 then 1. else 255. /. float_of_int effective_max
        in
        {
          Track.first_frame = scene.Scene_detect.first;
          frame_count = scene.Scene_detect.last - scene.Scene_detect.first + 1;
          register = gain_wire;
          compensation = Float.max 1. compensation;
          effective_max;
        })
      scenes
  in
  Track.make ~clip_name:profiled.Annotator.clip_name
    ~device_name:generic_device_name ~quality ~fps:profiled.Annotator.fps
    ~total_frames:profiled.Annotator.total_frames (Array.of_list entries)

let map_to_device device track =
  let entries =
    Array.map
      (fun (e : Track.entry) ->
        (* The multiplication: effective_max / 255 is the desired
           relative luminance; the look-up: the device transfer
           inverse. *)
        let desired = float_of_int e.Track.effective_max /. 255. in
        let register = Display.Device.register_for_gain device desired in
        { e with Track.register })
      track.Track.entries
  in
  Track.make ~clip_name:track.Track.clip_name
    ~device_name:device.Display.Device.name ~quality:track.Track.quality
    ~fps:track.Track.fps ~total_frames:track.Track.total_frames entries
