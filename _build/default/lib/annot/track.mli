(** Annotation tracks — the data attached to a video stream.

    A track is the sequence of per-scene backlight instructions the
    server computes offline. At playback "the only extra operation that
    the device has to perform [...] is to adjust the backlight level
    periodically, according to the annotations in the video stream"
    (§4.3) — a constant-time lookup here. *)

type entry = {
  first_frame : int;
  frame_count : int;  (** positive *)
  register : int;  (** backlight register, 0–255 *)
  compensation : float;  (** image gain applied server-side, >= 1 *)
  effective_max : int;  (** scene effective max luminance, 0–255 *)
}

type t = {
  clip_name : string;
  device_name : string;
  quality : Quality_level.t;
  fps : float;
  total_frames : int;
  entries : entry array;
}

val make :
  clip_name:string ->
  device_name:string ->
  quality:Quality_level.t ->
  fps:float ->
  total_frames:int ->
  entry array ->
  t
(** Validates the invariants: entries are contiguous starting at frame
    0, cover exactly [total_frames], registers and luminances are in
    range, compensations are at least 1. Raises [Invalid_argument]
    otherwise. An empty clip (0 frames) has no entries. *)

val lookup : t -> int -> entry
(** [lookup track frame] is the entry governing [frame] (binary
    search). Raises [Invalid_argument] out of range. *)

val register_track : t -> int array
(** Per-frame backlight register, expanded — handy for power traces. *)

val compensation_track : t -> float array
(** Per-frame compensation gain, expanded. *)

val switch_count : t -> int
(** Number of frames at which the register actually changes — the
    flicker metric of ablation A1. *)

val merge_runs : t -> t
(** Coalesces adjacent entries with identical settings (register,
    compensation, effective max). This is the "RLE" step that makes
    per-frame annotation tracks collapse back to scene-sized runs when
    content is stable (§4.3: "The annotations are RLE compressed"). *)

val entry_count : t -> int

val pp : Format.formatter -> t -> unit
