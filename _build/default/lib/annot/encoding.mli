(** Binary wire format for annotation tracks.

    §4.3: "The annotations are RLE compressed, so the overhead is
    minimal, in the order of hundreds of bytes for our video clips
    which are on the order of a few megabytes."

    Layout (all multi-byte integers are LEB128 varints):

    {v
    magic   "ANPW"            4 bytes
    version u8                currently 1
    quality varint            allowed loss in permille
    fps     varint            fps * 1000
    frames  varint            total frame count
    names   2 x (len varint, bytes)   clip name, device name
    count   varint            entry count (after run merging)
    entries count x (frame_count varint, register u8,
                     compensation varint (gain * 4096), effective u8)
    v} *)

val encode : Track.t -> string
(** [encode track] serialises after {!Track.merge_runs}. *)

val decode : string -> (Track.t, string) result
(** [decode bytes] parses and re-validates; any corruption yields
    [Error] with a human-readable reason, never an exception. *)

val encoded_size : Track.t -> int
(** [encoded_size track] is [String.length (encode track)] — the
    overhead the bench reports against the encoded video size. *)

val version : int
