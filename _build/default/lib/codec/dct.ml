let block_size = 8

let n = block_size

(* cosine.(u).(x) = alpha(u) * cos((2x+1) u pi / 16); rows of the 1-D
   orthonormal DCT matrix. *)
let cosine =
  Array.init n (fun u ->
      let alpha = if u = 0 then sqrt (1. /. float_of_int n) else sqrt (2. /. float_of_int n) in
      Array.init n (fun x ->
          alpha
          *. cos (((2. *. float_of_int x) +. 1.) *. float_of_int u *. Float.pi
                  /. (2. *. float_of_int n))))

let check block =
  if Array.length block <> n * n then invalid_arg "Dct: block must have 64 samples"

(* Separable transform: rows then columns. *)
let transform matrix_row block =
  check block;
  let tmp = Array.make (n * n) 0. in
  (* Rows. *)
  for y = 0 to n - 1 do
    for u = 0 to n - 1 do
      let acc = ref 0. in
      for x = 0 to n - 1 do
        acc := !acc +. (matrix_row u x *. block.((y * n) + x))
      done;
      tmp.((y * n) + u) <- !acc
    done
  done;
  (* Columns. *)
  let out = Array.make (n * n) 0. in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let acc = ref 0. in
      for y = 0 to n - 1 do
        acc := !acc +. (matrix_row v y *. tmp.((y * n) + u))
      done;
      out.((v * n) + u) <- !acc
    done
  done;
  out

let forward block = transform (fun u x -> cosine.(u).(x)) block

let inverse block = transform (fun u x -> cosine.(x).(u)) block
