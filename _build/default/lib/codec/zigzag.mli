(** The 8x8 zig-zag scan that orders coefficients from low to high
    spatial frequency, concentrating the trailing zeros the run-length
    coder exploits. *)

val scan_order : int array
(** [scan_order.(k)] is the row-major index of the [k]-th coefficient
    in zig-zag order; a permutation of [0..63] starting at the DC
    term. *)

val forward : int array -> int array
(** Reorders 64 row-major levels into zig-zag order. *)

val inverse : int array -> int array
(** Restores row-major order; [inverse (forward a) = a]. *)
