(** Exp-Golomb entropy codes (order 0), as used by H.26x syntax.

    [ue] codes non-negative integers; [se] maps signed integers through
    the standard zig-zag ([0, 1, -1, 2, -2, ...]) before [ue]. Small
    magnitudes — the common case for quantised DCT coefficients and
    motion vector deltas — cost few bits. *)

val write_ue : Bitio.Writer.t -> int -> unit
(** Raises [Invalid_argument] on negative input. *)

val read_ue : Bitio.Reader.t -> int

val write_se : Bitio.Writer.t -> int -> unit

val read_se : Bitio.Reader.t -> int

val ue_bit_length : int -> int
(** [ue_bit_length n] is the number of bits [write_ue] emits for [n] —
    used by the encoder's rate estimation. *)
