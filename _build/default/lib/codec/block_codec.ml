let code_intra q kind samples =
  let centred = Array.map (fun s -> s -. 128.) samples in
  Quant.quantise q kind (Dct.forward centred)

let reconstruct_intra q kind levels =
  let spatial = Dct.inverse (Quant.dequantise q kind levels) in
  Array.map (fun s -> s +. 128.) spatial

let code_inter q kind ~samples ~prediction =
  let residual = Array.init 64 (fun i -> samples.(i) -. prediction.(i)) in
  Quant.quantise q kind (Dct.forward residual)

let reconstruct_inter q kind ~prediction levels =
  let residual = Dct.inverse (Quant.dequantise q kind levels) in
  Array.init 64 (fun i -> prediction.(i) +. residual.(i))
