let nonzero_pairs zz =
  (* (run-of-zeros-before, level) for each non-zero coefficient. *)
  let pairs = ref [] in
  let run = ref 0 in
  for k = 0 to 63 do
    if zz.(k) = 0 then incr run
    else begin
      pairs := (!run, zz.(k)) :: !pairs;
      run := 0
    end
  done;
  List.rev !pairs

let write_block w levels =
  let zz = Zigzag.forward levels in
  let pairs = nonzero_pairs zz in
  Golomb.write_ue w (List.length pairs);
  List.iter
    (fun (run, level) ->
      Golomb.write_ue w run;
      Golomb.write_se w level)
    pairs

let read_block r =
  let nnz = Golomb.read_ue r in
  if nnz > 64 then invalid_arg "Coeff.read_block: too many coefficients";
  let zz = Array.make 64 0 in
  let pos = ref 0 in
  for _ = 1 to nnz do
    let run = Golomb.read_ue r in
    let level = Golomb.read_se r in
    let k = !pos + run in
    if k > 63 then invalid_arg "Coeff.read_block: run past end of block";
    if level = 0 then invalid_arg "Coeff.read_block: zero level";
    zz.(k) <- level;
    pos := k + 1
  done;
  Zigzag.inverse zz

let bit_cost levels =
  let zz = Zigzag.forward levels in
  let pairs = nonzero_pairs zz in
  List.fold_left
    (fun acc (run, level) ->
      let z = if level > 0 then (2 * level) - 1 else -2 * level in
      acc + Golomb.ue_bit_length run + Golomb.ue_bit_length z)
    (Golomb.ue_bit_length (List.length pairs))
    pairs
