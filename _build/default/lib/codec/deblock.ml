let blockiness img =
  let w = Image.Raster.width img and h = Image.Raster.height img in
  let plane = Image.Raster.luminance_plane img in
  let sample x y = Char.code (Bytes.get plane ((y * w) + x)) in
  (* Mean |step| across vertical boundaries at x = 8,16,... and the
     mean |step| at off-grid columns, and likewise for rows. *)
  let col_step x =
    let acc = ref 0 in
    for y = 0 to h - 1 do
      acc := !acc + abs (sample x y - sample (x - 1) y)
    done;
    float_of_int !acc /. float_of_int h
  in
  let row_step y =
    let acc = ref 0 in
    for x = 0 to w - 1 do
      acc := !acc + abs (sample x y - sample x (y - 1))
    done;
    float_of_int !acc /. float_of_int w
  in
  let mean steps = function
    | [] -> 0.
    | positions ->
      List.fold_left (fun acc p -> acc +. steps p) 0. positions
      /. float_of_int (List.length positions)
  in
  let grid_cols = List.init (w / 8) (fun i -> (i + 1) * 8) |> List.filter (fun x -> x < w) in
  let off_cols =
    List.init (w - 1) (fun i -> i + 1) |> List.filter (fun x -> x mod 8 <> 0)
  in
  let grid_rows = List.init (h / 8) (fun i -> (i + 1) * 8) |> List.filter (fun y -> y < h) in
  let off_rows =
    List.init (h - 1) (fun i -> i + 1) |> List.filter (fun y -> y mod 8 <> 0)
  in
  let vertical = mean col_step grid_cols -. mean col_step off_cols in
  let horizontal = mean row_step grid_rows -. mean row_step off_rows in
  Float.max 0. ((vertical +. horizontal) /. 2.)

(* Soften one boundary pair (a | b): the two samples move a quarter of
   the way towards each other, but only for small steps (large steps
   are image content). *)
let soften strength a b =
  let step = b - a in
  if abs step > strength then (a, b)
  else begin
    let d = step / 4 in
    (a + d, b - d)
  end

let filter_plane ?(strength = 24) (plane : Plane.t) =
  let w = plane.Plane.width and h = plane.Plane.height in
  (* Vertical boundaries. *)
  let x = ref 8 in
  while !x < w do
    for y = 0 to h - 1 do
      let a = Plane.get plane ~x:(!x - 1) ~y and b = Plane.get plane ~x:!x ~y in
      let a', b' = soften strength a b in
      if a' <> a then Plane.set plane ~x:(!x - 1) ~y a';
      if b' <> b then Plane.set plane ~x:!x ~y b'
    done;
    x := !x + 8
  done;
  (* Horizontal boundaries. *)
  let y = ref 8 in
  while !y < h do
    for x = 0 to w - 1 do
      let a = Plane.get plane ~x ~y:(!y - 1) and b = Plane.get plane ~x ~y:!y in
      let a', b' = soften strength a b in
      if a' <> a then Plane.set plane ~x ~y:(!y - 1) a';
      if b' <> b then Plane.set plane ~x ~y:!y b'
    done;
    y := !y + 8
  done

let filter ?strength img =
  let planes = Plane.of_raster img in
  filter_plane ?strength planes.Plane.y;
  filter_plane ?strength planes.Plane.cb;
  filter_plane ?strength planes.Plane.cr;
  Plane.to_raster planes
