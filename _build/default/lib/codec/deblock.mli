(** Deblocking post-filter.

    At coarse quantisers the 8x8 transform grid becomes visible as
    discontinuities along block edges. The post-filter smooths each
    block boundary with a short kernel, but only where the edge step is
    small enough to be ringing rather than real detail (an
    H.263-Annex-J-style smoothness test). It runs after decoding and
    changes no bitstream syntax. *)

val blockiness : Image.Raster.t -> float
(** [blockiness img] measures grid artefacts on the luminance plane:
    the mean absolute luma step across 8x8 block boundaries, minus the
    mean step at off-grid columns/rows (natural image gradient). Near 0
    for clean images; grows with quantisation. *)

val filter_plane : ?strength:int -> Plane.t -> unit
(** [filter_plane plane] smooths samples adjacent to each 8-aligned
    boundary in place. An edge is filtered only when its step is at
    most [strength] (default 24) — larger steps are treated as real
    edges and left alone. *)

val filter : ?strength:int -> Image.Raster.t -> Image.Raster.t
(** Whole-picture filtering through YCbCr (luma filtered, chroma
    filtered at its own grid). *)
