lib/codec/gop_planner.mli:
