lib/codec/block_codec.ml: Array Dct Quant
