lib/codec/plane.mli: Image
