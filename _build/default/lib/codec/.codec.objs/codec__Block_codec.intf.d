lib/codec/block_codec.mli: Quant
