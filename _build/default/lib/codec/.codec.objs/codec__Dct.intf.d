lib/codec/dct.mli:
