lib/codec/golomb.ml: Bitio
