lib/codec/motion.mli: Plane
