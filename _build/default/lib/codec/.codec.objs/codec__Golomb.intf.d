lib/codec/golomb.mli: Bitio
