lib/codec/dct.ml: Array Float
