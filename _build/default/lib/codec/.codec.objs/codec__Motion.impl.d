lib/codec/motion.ml: Array Float Plane
