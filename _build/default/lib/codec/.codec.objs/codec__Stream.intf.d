lib/codec/stream.mli: Format
