lib/codec/decoder.mli: Image Stream
