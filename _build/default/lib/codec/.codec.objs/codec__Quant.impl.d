lib/codec/quant.ml: Array Float
