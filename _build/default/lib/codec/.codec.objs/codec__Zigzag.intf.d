lib/codec/zigzag.mli:
