lib/codec/encoder.ml: Array Bitio Block_codec Char Coeff Format Golomb List Motion Plane Quant Stream String Video
