lib/codec/rate_control.ml: Encoder Stream Video
