lib/codec/rate_control.mli: Encoder Stream Video
