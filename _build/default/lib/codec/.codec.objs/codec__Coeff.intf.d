lib/codec/coeff.mli: Bitio
