lib/codec/stream.ml: Format
