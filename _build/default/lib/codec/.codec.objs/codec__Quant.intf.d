lib/codec/quant.mli:
