lib/codec/decoder.ml: Array Bitio Block_codec Char Coeff Golomb Image Motion Option Plane Printf Quant Stream String
