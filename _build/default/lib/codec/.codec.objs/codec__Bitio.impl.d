lib/codec/bitio.ml: Buffer Char String
