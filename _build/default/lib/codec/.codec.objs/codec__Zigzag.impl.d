lib/codec/zigzag.ml: Array List
