lib/codec/bitio.mli:
