lib/codec/deblock.mli: Image Plane
