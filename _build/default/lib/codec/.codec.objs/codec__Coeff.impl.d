lib/codec/coeff.ml: Array Golomb List Zigzag
