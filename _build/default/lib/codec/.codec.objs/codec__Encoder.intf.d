lib/codec/encoder.mli: Format Stream Video
