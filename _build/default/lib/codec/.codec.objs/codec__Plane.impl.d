lib/codec/plane.ml: Array Image
