lib/codec/deblock.ml: Bytes Char Float Image List Plane
