lib/codec/gop_planner.ml: Int List Set
