let bit_width n =
  (* Number of bits in the binary representation of n >= 1. *)
  let rec loop acc n = if n = 0 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let write_ue w n =
  if n < 0 then invalid_arg "Golomb.write_ue: negative";
  let v = n + 1 in
  let len = bit_width v in
  (* len-1 zero bits, then v in len bits. *)
  Bitio.Writer.put_bits w ~value:0 ~bits:(len - 1);
  Bitio.Writer.put_bits w ~value:v ~bits:len

let read_ue r =
  let rec count_zeros acc =
    if Bitio.Reader.get_bit r then acc else count_zeros (acc + 1)
  in
  let zeros = count_zeros 0 in
  let rest = Bitio.Reader.get_bits r zeros in
  ((1 lsl zeros) lor rest) - 1

let zigzag_of_int n = if n > 0 then (2 * n) - 1 else -2 * n

let int_of_zigzag z = if z land 1 = 1 then (z + 1) / 2 else -(z / 2)

let write_se w n = write_ue w (zigzag_of_int n)

let read_se r = int_of_zigzag (read_ue r)

let ue_bit_length n =
  let v = n + 1 in
  (2 * bit_width v) - 1
