(** Sample planes and RGB <-> YCbCr conversion.

    The codec works on three planes in BT.601 YCbCr with 4:2:0 chroma
    subsampling, like MPEG-1. Samples are ints; Y is in [0, 255],
    chroma is stored offset by +128 so it also occupies [0, 255]. *)

type t = { width : int; height : int; samples : int array }
(** Row-major plane. Samples may temporarily leave [0, 255] inside the
    codec (residuals); [clamp] restores range. *)

val create : width:int -> height:int -> t

val get : t -> x:int -> y:int -> int
(** Edge-clamped access: coordinates outside the plane read the nearest
    edge sample (used by motion compensation at borders). *)

val set : t -> x:int -> y:int -> int -> unit
(** Raises [Invalid_argument] out of bounds. *)

val clamp : t -> unit
(** Clamps every sample to [0, 255]. *)

val copy : t -> t

val pad_to_multiple : t -> int -> t
(** [pad_to_multiple p m] extends the plane to dimensions that are
    multiples of [m] by edge replication; returns [p] itself if it is
    already aligned. *)

val crop : t -> width:int -> height:int -> t
(** [crop p ~width ~height] keeps the top-left region. *)

val equal : t -> t -> bool

type ycbcr = { y : t; cb : t; cr : t }
(** 4:2:0 frame: chroma planes have half resolution in each dimension
    (rounded up). *)

val of_raster : Image.Raster.t -> ycbcr
(** BT.601 conversion with 2x2 chroma averaging. *)

val to_raster : ycbcr -> Image.Raster.t
(** Inverse conversion with chroma upsampling (nearest-neighbour). *)

val mean_absolute_difference : t -> t -> float
(** Over the common dimensions, which must match. *)
