type vector = { dx : int; dy : int }

let zero = { dx = 0; dy = 0 }

let block = 8

let sad current reference ~x ~y v =
  let acc = ref 0 in
  for by = 0 to block - 1 do
    for bx = 0 to block - 1 do
      let c = Plane.get current ~x:(x + bx) ~y:(y + by) in
      let r = Plane.get reference ~x:(x + bx + v.dx) ~y:(y + by + v.dy) in
      acc := !acc + abs (c - r)
    done
  done;
  !acc

let vector_norm v = abs v.dx + abs v.dy

let search ?(range = 7) ~current ~reference ~x ~y () =
  let best = ref zero and best_sad = ref (sad current reference ~x ~y zero) in
  for dy = -range to range do
    for dx = -range to range do
      let v = { dx; dy } in
      let s = sad current reference ~x ~y v in
      if s < !best_sad || (s = !best_sad && vector_norm v < vector_norm !best)
      then begin
        best := v;
        best_sad := s
      end
    done
  done;
  (!best, !best_sad)

let extract_block p ~x ~y =
  Array.init (block * block) (fun i ->
      let bx = i mod block and by = i / block in
      float_of_int (Plane.get p ~x:(x + bx) ~y:(y + by)))

let extract_predicted p ~x ~y v =
  Array.init (block * block) (fun i ->
      let bx = i mod block and by = i / block in
      float_of_int (Plane.get p ~x:(x + bx + v.dx) ~y:(y + by + v.dy)))

let store_block p ~x ~y samples =
  for i = 0 to (block * block) - 1 do
    let bx = i mod block and by = i / block in
    let px = x + bx and py = y + by in
    if px >= 0 && px < p.Plane.width && py >= 0 && py < p.Plane.height then
      Plane.set p ~x:px ~y:py (int_of_float (Float.round samples.(i)))
  done

let halve v = { dx = v.dx / 2; dy = v.dy / 2 }

let to_halfpel v = { dx = 2 * v.dx; dy = 2 * v.dy }

(* Bilinear sample at half-pel position (2*px + fx, 2*py + fy)/2 where
   fx, fy are the fractional half-pel bits. Integer parts use
   arithmetic shifts so negative vectors floor correctly. *)
let halfpel_sample p ~hx ~hy =
  let ix = hx asr 1 and iy = hy asr 1 in
  let fx = hx land 1 and fy = hy land 1 in
  let s dx dy = Plane.get p ~x:(ix + dx) ~y:(iy + dy) in
  match (fx, fy) with
  | 0, 0 -> s 0 0
  | 1, 0 -> (s 0 0 + s 1 0 + 1) / 2
  | 0, 1 -> (s 0 0 + s 0 1 + 1) / 2
  | _ -> (s 0 0 + s 1 0 + s 0 1 + s 1 1 + 2) / 4

let extract_predicted_halfpel p ~x ~y v =
  Array.init (block * block) (fun i ->
      let bx = i mod block and by = i / block in
      float_of_int
        (halfpel_sample p ~hx:((2 * (x + bx)) + v.dx) ~hy:((2 * (y + by)) + v.dy)))

let sad_halfpel current reference ~x ~y v =
  let acc = ref 0 in
  for by = 0 to block - 1 do
    for bx = 0 to block - 1 do
      let c = Plane.get current ~x:(x + bx) ~y:(y + by) in
      let r =
        halfpel_sample reference ~hx:((2 * (x + bx)) + v.dx)
          ~hy:((2 * (y + by)) + v.dy)
      in
      acc := !acc + abs (c - r)
    done
  done;
  !acc

let refine_halfpel ~current ~reference ~x ~y best_integer =
  let centre = to_halfpel best_integer in
  let best = ref centre and best_sad = ref (sad_halfpel current reference ~x ~y centre) in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      if dx <> 0 || dy <> 0 then begin
        let v = { dx = centre.dx + dx; dy = centre.dy + dy } in
        let s = sad_halfpel current reference ~x ~y v in
        if s < !best_sad then begin
          best := v;
          best_sad := s
        end
      end
    done
  done;
  (!best, !best_sad)

let chroma_vector v = { dx = v.dx asr 2; dy = v.dy asr 2 }
