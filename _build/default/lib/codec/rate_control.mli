(** Rate control: fitting a stream to a byte budget.

    The proxy of Fig 1 transcodes for the wireless hop; the natural
    contract is a byte (or bitrate) budget derived from the link. The
    bitstream carries a single quantiser, so control is two-pass: a
    monotone search over [qp] for the finest quantiser whose encode
    fits the budget (sizes decrease monotonically in [qp], which the
    codec test suite asserts). *)

type outcome = {
  encoded : Encoder.encoded;
  fits : bool;  (** whether the budget was met (false only at qp 31) *)
  encodes_tried : int;  (** encoder passes the search spent *)
}

val for_target_bytes :
  ?params:Stream.params -> ?min_qp:int -> target_bytes:int -> Video.Clip.t ->
  outcome
(** [for_target_bytes ~target_bytes clip] is the finest-quantiser
    encode of [clip] no larger than [target_bytes]; when even the
    coarsest quantiser overshoots, returns that encode with
    [fits = false]. The [qp] of [params] is ignored (it is the search
    variable); [gop] and [search_range] are honoured. [min_qp]
    (default 1) floors the search — a transcoder passes its source's
    quantiser, since re-encoding cannot add quality. Raises
    [Invalid_argument] on a non-positive target or a [min_qp] outside
    [1, 31]. *)

val for_link :
  ?params:Stream.params ->
  ?min_qp:int ->
  ?utilisation:float ->
  link_bps:float ->
  Video.Clip.t ->
  outcome
(** [for_link ~link_bps clip] budgets the stream at
    [utilisation * link_bps * duration] (default utilisation 0.8,
    leaving headroom for packet overhead and retransmissions). *)

val single_pass :
  ?params:Stream.params -> target_bytes:int -> Video.Clip.t -> outcome
(** [single_pass ~target_bytes clip] encodes exactly once, steering the
    per-frame quantiser with a leaky-bucket controller: each frame
    compares the bits actually spent against the pro-rated budget and
    nudges [qp] to drain or fill the debt. Landing is looser than the
    two-pass search (typically within ~15 % of the budget) but costs a
    single encoder pass — the live-proxy regime, where the clip cannot
    be encoded twice. [fits] reports whether the final stream met the
    budget. Raises [Invalid_argument] on a non-positive target. *)
