type outcome = {
  encoded : Encoder.encoded;
  fits : bool;
  encodes_tried : int;
}

let qp_min = 1
let qp_max = 31

let for_target_bytes ?(params = Stream.default_params) ?(min_qp = qp_min)
    ~target_bytes clip =
  if target_bytes <= 0 then
    invalid_arg "Rate_control.for_target_bytes: target must be positive";
  if min_qp < qp_min || min_qp > qp_max then
    invalid_arg "Rate_control.for_target_bytes: min_qp out of [1, 31]";
  let tried = ref 0 in
  let encode qp =
    incr tried;
    Encoder.encode_clip ~params:{ params with Stream.qp } clip
  in
  (* Binary search for the smallest qp that fits: stream size is
     non-increasing in qp. *)
  let rec search lo hi best =
    if lo > hi then best
    else begin
      let qp = (lo + hi) / 2 in
      let encoded = encode qp in
      if Encoder.total_bytes encoded <= target_bytes then
        search lo (qp - 1) (Some encoded)
      else search (qp + 1) hi best
    end
  in
  match search min_qp qp_max None with
  | Some encoded -> { encoded; fits = true; encodes_tried = !tried }
  | None ->
    (* Even the coarsest quantiser overshoots; deliver it anyway. The
       search always visits an endpoint neighbourhood, so re-encoding
       qp 31 at most adds one pass. *)
    let encoded = encode qp_max in
    { encoded; fits = false; encodes_tried = !tried }

(* Leaky-bucket single-pass control: frame k should have spent
   [k * budget / frames] bits; the deviation steers qp around the
   running operating point. I-frames cost several times a P-frame, so
   the controller reacts to the *cumulative* debt rather than per-frame
   spikes. *)
let single_pass ?(params = Stream.default_params) ~target_bytes clip =
  if target_bytes <= 0 then
    invalid_arg "Rate_control.single_pass: target must be positive";
  let frames = clip.Video.Clip.frame_count in
  if frames = 0 then invalid_arg "Rate_control.single_pass: empty clip";
  let budget_bits = float_of_int (target_bytes * 8) in
  let per_frame = budget_bits /. float_of_int frames in
  let qp_for ~index ~total_bits =
    if index = 0 then params.Stream.qp
    else begin
      let expected = per_frame *. float_of_int index in
      (* Proportional control on the cumulative debt, measured in
         per-frame budgets: one frame of debt is worth one qp step. *)
      let debt = (float_of_int total_bits -. expected) /. per_frame in
      max qp_min (min qp_max (params.Stream.qp + int_of_float debt))
    end
  in
  let encoded = Encoder.encode_clip ~params ~qp_for clip in
  {
    encoded;
    fits = Encoder.total_bytes encoded <= target_bytes;
    encodes_tried = 1;
  }

let for_link ?params ?min_qp ?(utilisation = 0.8) ~link_bps clip =
  if link_bps <= 0. then invalid_arg "Rate_control.for_link: bad link rate";
  if utilisation <= 0. || utilisation > 1. then
    invalid_arg "Rate_control.for_link: utilisation out of (0, 1]";
  let duration = Video.Clip.duration_seconds clip in
  let target_bytes =
    max 1 (int_of_float (utilisation *. link_bps *. duration /. 8.))
  in
  for_target_bytes ?params ?min_qp ~target_bytes clip
