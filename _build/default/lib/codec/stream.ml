type frame_type = I_frame | P_frame

type params = { qp : int; gop : int; search_range : int }

let default_params = { qp = 8; gop = 12; search_range = 4 }

let magic = "MVC1"

let version = 3

let pp_frame_type ppf = function
  | I_frame -> Format.pp_print_char ppf 'I'
  | P_frame -> Format.pp_print_char ppf 'P'
