(** The video decoder — the client-side workload of the paper's
    playback experiments.

    Two entry points: {!decode} consumes a whole bitstream; the
    frame-level API ({!parse_header}, {!decode_frame}) lets a transport
    layer drive decoding frame by frame with explicit reference
    injection, which is what loss concealment needs (a lost frame is
    replaced by the previous picture, and later frames predict from
    the *concealed* picture, drifting until the next I-frame). *)

type decoded = {
  width : int;
  height : int;
  fps : float;
  params : Stream.params;
  frames : Image.Raster.t array;
}

val decode : string -> (decoded, string) result
(** [decode data] parses a bitstream produced by {!Encoder.encode_clip}
    and reconstructs every frame. Corrupt input yields [Error] with a
    reason; decoding never raises. *)

val decode_exn : string -> decoded
(** Like {!decode} but raises [Failure] on corrupt input. *)

(** {1 Frame-level decoding} *)

type stream_info = {
  info_width : int;
  info_height : int;
  info_fps : float;
  info_frame_count : int;
  info_params : Stream.params;
  header_bytes : int;  (** frame payloads start at this offset *)
}

val parse_header : string -> (stream_info, string) result

type reference
(** A decoded picture in the decoder's internal (padded-plane) form,
    usable as the prediction reference for the next frame. *)

val reference_of_raster : Image.Raster.t -> reference
(** Converts any picture into a reference — the concealment path: when
    a frame is lost, the transport repeats the previous picture and
    injects it as the reference for what follows. *)

val raster_of_reference : width:int -> height:int -> reference -> Image.Raster.t
(** The displayable picture of a reference (cropped to the stream
    dimensions). *)

val decode_frame :
  info:stream_info ->
  reference:reference option ->
  string ->
  (Image.Raster.t * reference, string) result
(** [decode_frame ~info ~reference payload] decodes exactly one frame
    from its own byte string (as produced by
    {!Encoder.frame_payloads}). P-frames require [reference]; I-frames
    ignore it. *)
