(** Content-aware GOP planning from profiling annotations.

    A fourth use of the offline profile: the scene boundaries the
    annotator already detects are exactly where P-frames are expensive
    (prediction across a cut fails block by block) and where loss
    recovery matters most (a fresh scene deserves a fresh prediction
    chain). The planner turns a scene segmentation into the encoder's
    [i_frame_at] predicate: an I-frame at every scene start, plus
    periodic refreshes inside scenes longer than [max_interval]. *)

type t
(** A planned set of I-frame positions. *)

val plan : max_interval:int -> scene_starts:int list -> frame_count:int -> t
(** [plan ~max_interval ~scene_starts ~frame_count] places I-frames at
    frame 0, every listed scene start, and at most [max_interval]
    frames apart within scenes. Raises [Invalid_argument] on a
    non-positive interval, a non-positive frame count, or out-of-range
    scene starts. *)

val of_scene_intervals :
  max_interval:int -> frame_count:int -> (int * int) list -> t
(** Convenience over [plan] taking [(first, last)] scene intervals (as
    produced by scene detection or by the clip generator's ground
    truth). *)

val i_frame_at : t -> int -> bool
(** The predicate to pass to {!Encoder.encode_clip}. *)

val positions : t -> int list
(** All planned I-frame positions, ascending. *)

val count : t -> int
