type t = { width : int; height : int; samples : int array }

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Plane.create: bad dimensions";
  { width; height; samples = Array.make (width * height) 0 }

let clamp_coord v limit = if v < 0 then 0 else if v >= limit then limit - 1 else v

let get p ~x ~y =
  let x = clamp_coord x p.width and y = clamp_coord y p.height in
  p.samples.((y * p.width) + x)

let set p ~x ~y v =
  if x < 0 || x >= p.width || y < 0 || y >= p.height then
    invalid_arg "Plane.set: out of bounds";
  p.samples.((y * p.width) + x) <- v

let clamp p =
  for i = 0 to Array.length p.samples - 1 do
    let v = p.samples.(i) in
    p.samples.(i) <- (if v < 0 then 0 else if v > 255 then 255 else v)
  done

let copy p = { p with samples = Array.copy p.samples }

let pad_to_multiple p m =
  if m <= 0 then invalid_arg "Plane.pad_to_multiple: bad multiple";
  let round v = (v + m - 1) / m * m in
  let w = round p.width and h = round p.height in
  if w = p.width && h = p.height then p
  else begin
    let out = create ~width:w ~height:h in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        out.samples.((y * w) + x) <- get p ~x ~y
      done
    done;
    out
  end

let crop p ~width ~height =
  if width > p.width || height > p.height || width <= 0 || height <= 0 then
    invalid_arg "Plane.crop: bad dimensions";
  if width = p.width && height = p.height then p
  else begin
    let out = create ~width ~height in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        out.samples.((y * width) + x) <- p.samples.((y * p.width) + x)
      done
    done;
    out
  end

let equal a b = a.width = b.width && a.height = b.height && a.samples = b.samples

type ycbcr = { y : t; cb : t; cr : t }

let chroma_dim d = (d + 1) / 2

(* Integer BT.601 full-range conversion. *)
let rgb_to_ycbcr r g b =
  let y = ((19595 * r) + (38470 * g) + (7471 * b) + 32768) lsr 16 in
  let cb = 128 + (((-11056 * r) - (21712 * g) + (32768 * b)) asr 16) in
  let cr = 128 + (((32768 * r) - (27440 * g) - (5328 * b)) asr 16) in
  (y, cb, cr)

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v

let ycbcr_to_rgb y cb cr =
  let cb = cb - 128 and cr = cr - 128 in
  let r = y + ((91881 * cr) asr 16) in
  let g = y - ((22554 * cb) asr 16) - ((46802 * cr) asr 16) in
  let b = y + ((116130 * cb) asr 16) in
  (clamp255 r, clamp255 g, clamp255 b)

let of_raster img =
  let w = Image.Raster.width img and h = Image.Raster.height img in
  let cw = chroma_dim w and ch = chroma_dim h in
  let yp = create ~width:w ~height:h in
  let cbp = create ~width:cw ~height:ch in
  let crp = create ~width:cw ~height:ch in
  (* Accumulate chroma over 2x2 sites. *)
  let cb_acc = Array.make (cw * ch) 0
  and cr_acc = Array.make (cw * ch) 0
  and cnt = Array.make (cw * ch) 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let { Image.Pixel.r; g; b } = Image.Raster.get img ~x ~y in
      let ly, cb, cr = rgb_to_ycbcr r g b in
      yp.samples.((y * w) + x) <- ly;
      let ci = ((y / 2) * cw) + (x / 2) in
      cb_acc.(ci) <- cb_acc.(ci) + cb;
      cr_acc.(ci) <- cr_acc.(ci) + cr;
      cnt.(ci) <- cnt.(ci) + 1
    done
  done;
  for i = 0 to (cw * ch) - 1 do
    cbp.samples.(i) <- cb_acc.(i) / max 1 cnt.(i);
    crp.samples.(i) <- cr_acc.(i) / max 1 cnt.(i)
  done;
  { y = yp; cb = cbp; cr = crp }

let to_raster { y = yp; cb = cbp; cr = crp } =
  let w = yp.width and h = yp.height in
  Image.Raster.init ~width:w ~height:h (fun ~x ~y ->
      let ly = get yp ~x ~y in
      let cb = get cbp ~x:(x / 2) ~y:(y / 2) in
      let cr = get crp ~x:(x / 2) ~y:(y / 2) in
      let r, g, b = ycbcr_to_rgb ly cb cr in
      { Image.Pixel.r; g; b })

let mean_absolute_difference a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Plane.mean_absolute_difference: dimension mismatch";
  let sum = ref 0 in
  for i = 0 to Array.length a.samples - 1 do
    sum := !sum + abs (a.samples.(i) - b.samples.(i))
  done;
  float_of_int !sum /. float_of_int (Array.length a.samples)
