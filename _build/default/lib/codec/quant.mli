(** Coefficient quantisation.

    JPEG-style base matrices (a flatter one for luma, a steeper one for
    chroma) scaled by a quantiser parameter [qp] in [1, 31], MPEG-1
    style: higher [qp] means coarser steps and a smaller stream. *)

type t
(** A quantiser: a pair of effective step matrices. *)

val make : qp:int -> t
(** Raises [Invalid_argument] for [qp] outside [1, 31]. *)

val qp : t -> int

type plane_kind = Luma | Chroma

val quantise : t -> plane_kind -> float array -> int array
(** [quantise q kind coeffs] divides 64 DCT coefficients by the step
    matrix and rounds to nearest. *)

val dequantise : t -> plane_kind -> int array -> float array
(** Multiplies back by the step matrix. *)
