(** The video encoder.

    An MPEG-1-style closed-loop encoder: I-frames are fully
    intra-coded; P-frames predict each 8x8 luma block from the
    *reconstructed* previous frame via full-search motion estimation,
    choosing intra or inter per block by exact bit cost. Chroma blocks
    derive mode and (halved) vector from the co-located luma block, so
    they need no mode syntax of their own. *)

type encoded = {
  data : string;  (** the complete bitstream, header included *)
  width : int;
  height : int;
  fps : float;
  frame_count : int;
  params : Stream.params;
  frame_sizes_bits : int array;  (** per-frame payload size *)
  frame_types : Stream.frame_type array;
}

val encode_clip :
  ?params:Stream.params ->
  ?i_frame_at:(int -> bool) ->
  ?qp_for:(index:int -> total_bits:int -> int) ->
  Video.Clip.t ->
  encoded
(** [encode_clip ?params clip] encodes every frame. [i_frame_at]
    overrides the fixed-period GOP structure: frame [i] is intra-coded
    whenever [i_frame_at i] holds (frame 0 is always intra). Content-
    aware callers place I-frames at scene cuts, where a P-frame would
    be nearly as large but leave the GOP open (see {!Gop_planner}).
    [qp_for] chooses each frame's quantiser, receiving the bits written
    so far — the hook single-pass rate control steers (see
    {!Rate_control.single_pass}); it must return values in [1, 31].
    Raises [Invalid_argument] on invalid parameters or an empty
    clip. *)

val total_bytes : encoded -> int

val mean_frame_bytes : encoded -> float

val pp_summary : Format.formatter -> encoded -> unit
