(** Block motion estimation and compensation.

    Full-search over a square window on 8x8 luma blocks with
    sum-of-absolute-differences matching; ties prefer the shorter
    vector so static content codes as (0, 0). Chroma reuses the luma
    vector halved (4:2:0 geometry). *)

type vector = { dx : int; dy : int }

val zero : vector

val sad :
  Plane.t -> Plane.t -> x:int -> y:int -> vector -> int
(** [sad current reference ~x ~y v] is the SAD between the 8x8 block of
    [current] at [(x, y)] and the reference block displaced by [v]
    (edge-clamped). *)

val search :
  ?range:int -> current:Plane.t -> reference:Plane.t -> x:int -> y:int ->
  unit -> vector * int
(** [search ?range ~current ~reference ~x ~y ()] is the best vector
    within [[-range, range]] on both axes (default 7) and its SAD. *)

val extract_block : Plane.t -> x:int -> y:int -> float array
(** 8x8 block as floats (edge-clamped reads). *)

val extract_predicted : Plane.t -> x:int -> y:int -> vector -> float array
(** Reference block displaced by a vector, as floats. *)

val store_block : Plane.t -> x:int -> y:int -> float array -> unit
(** Rounds, then writes the 8x8 block; samples falling outside the
    plane are dropped (blocks may overhang padded edges). *)

val halve : vector -> vector
(** Chroma vector: arithmetic halving towards zero. *)

(** {1 Half-pel precision}

    Half-pel vectors measure displacement in half-sample units;
    fractional positions are bilinearly interpolated from the four
    surrounding integer samples (MPEG-1 style, with round-to-nearest
    averaging). *)

val to_halfpel : vector -> vector
(** [to_halfpel v] converts an integer-pel vector to half-pel units
    (doubles both components). *)

val extract_predicted_halfpel : Plane.t -> x:int -> y:int -> vector -> float array
(** Reference block displaced by a *half-pel* vector, bilinearly
    interpolated, as floats. *)

val sad_halfpel : Plane.t -> Plane.t -> x:int -> y:int -> vector -> int
(** SAD against the interpolated prediction for a half-pel vector. *)

val refine_halfpel :
  current:Plane.t -> reference:Plane.t -> x:int -> y:int -> vector -> vector * int
(** [refine_halfpel ~current ~reference ~x ~y best_integer] searches
    the eight half-pel positions around an integer-pel winner and
    returns the best *half-pel* vector (possibly the doubled integer
    one) with its SAD. *)

val chroma_vector : vector -> vector
(** [chroma_vector v] maps a luma half-pel vector to the co-located
    chroma displacement in integer chroma samples (divide by four,
    flooring) — 4:2:0 geometry with integer-pel chroma prediction. *)
