module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int;  (* bits accumulated, left-aligned in low bits *)
    mutable used : int;  (* number of valid bits in acc, 0-7 *)
    mutable written_bits : int;
  }

  let create () = { buf = Buffer.create 1024; acc = 0; used = 0; written_bits = 0 }

  let put_bit w bit =
    w.acc <- (w.acc lsl 1) lor (if bit then 1 else 0);
    w.used <- w.used + 1;
    w.written_bits <- w.written_bits + 1;
    if w.used = 8 then begin
      Buffer.add_char w.buf (Char.unsafe_chr (w.acc land 0xff));
      w.acc <- 0;
      w.used <- 0
    end

  let put_bits w ~value ~bits =
    if bits < 0 || bits > 62 then invalid_arg "Bitio.put_bits: bits out of [0, 62]";
    if value < 0 then invalid_arg "Bitio.put_bits: negative value";
    if bits < 62 && value lsr bits <> 0 then
      invalid_arg "Bitio.put_bits: value does not fit";
    for i = bits - 1 downto 0 do
      put_bit w ((value lsr i) land 1 = 1)
    done

  let align w = while w.used <> 0 do put_bit w false done

  let put_byte_aligned w b =
    align w;
    put_bits w ~value:(b land 0xff) ~bits:8

  let bit_length w = w.written_bits

  let contents w =
    align w;
    Buffer.contents w.buf
end

module Reader = struct
  type t = { data : string; mutable bit_pos : int }

  exception Out_of_bits

  let of_string data = { data; bit_pos = 0 }

  let total_bits r = String.length r.data * 8

  let get_bit r =
    if r.bit_pos >= total_bits r then raise Out_of_bits;
    let byte = Char.code r.data.[r.bit_pos lsr 3] in
    let bit = (byte lsr (7 - (r.bit_pos land 7))) land 1 = 1 in
    r.bit_pos <- r.bit_pos + 1;
    bit

  let get_bits r n =
    if n < 0 || n > 62 then invalid_arg "Bitio.get_bits: bits out of [0, 62]";
    let acc = ref 0 in
    for _ = 1 to n do
      acc := (!acc lsl 1) lor (if get_bit r then 1 else 0)
    done;
    !acc

  let align r =
    let rem = r.bit_pos land 7 in
    if rem <> 0 then begin
      let skip = 8 - rem in
      if r.bit_pos + skip > total_bits r then raise Out_of_bits;
      r.bit_pos <- r.bit_pos + skip
    end

  let get_byte_aligned r =
    align r;
    get_bits r 8

  let bits_remaining r = total_bits r - r.bit_pos

  let position_bits r = r.bit_pos
end
