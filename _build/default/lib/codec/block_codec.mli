(** Transform coding of a single 8x8 block — the kernel shared by the
    encoder (which also reconstructs, to keep its reference frames in
    lock-step with the decoder) and the decoder. *)

val code_intra : Quant.t -> Quant.plane_kind -> float array -> int array
(** [code_intra q kind samples] centres the 64 samples at 0, applies
    the DCT and quantises. *)

val reconstruct_intra : Quant.t -> Quant.plane_kind -> int array -> float array
(** Inverse of {!code_intra} up to quantisation loss: dequantise,
    inverse-DCT, un-centre. *)

val code_inter :
  Quant.t -> Quant.plane_kind -> samples:float array -> prediction:float array ->
  int array
(** [code_inter q kind ~samples ~prediction] codes the residual
    [samples - prediction]. *)

val reconstruct_inter :
  Quant.t -> Quant.plane_kind -> prediction:float array -> int array ->
  float array
(** Adds the decoded residual back onto the prediction. *)
