(** 8x8 type-II DCT and its inverse, the transform of MPEG/JPEG.

    Blocks are 64-element float arrays in row-major order. The pair is
    orthonormal: [idct (dct b) = b] up to floating-point rounding, so
    the quantiser is the codec's only source of loss. *)

val block_size : int
(** 8. *)

val forward : float array -> float array
(** [forward block] transforms a 64-sample spatial block into 64
    coefficients, DC first. Raises [Invalid_argument] unless the input
    has 64 elements. *)

val inverse : float array -> float array
(** [inverse coeffs] reconstructs the spatial block. *)
