(** Bitstream container types shared by the encoder and decoder. *)

type frame_type = I_frame | P_frame

type params = {
  qp : int;  (** quantiser, 1–31; default 8 *)
  gop : int;  (** I-frame period; default 12 *)
  search_range : int;  (** motion search window; default 4 *)
}

val default_params : params

val magic : string
(** ["MVC1"]. *)

val version : int

val pp_frame_type : Format.formatter -> frame_type -> unit
