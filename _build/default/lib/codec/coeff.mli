(** Entropy coding of quantised coefficient blocks.

    A block is coded as the count of non-zero coefficients in zig-zag
    order, followed by (zero-run, level) pairs — runs as unsigned and
    levels as signed Exp-Golomb. All-zero blocks cost a single [ue 0]
    symbol, which keeps skipped regions in P-frames nearly free. *)

val write_block : Bitio.Writer.t -> int array -> unit
(** [write_block w levels] encodes 64 row-major quantised levels. *)

val read_block : Bitio.Reader.t -> int array
(** Decodes 64 row-major levels. Raises [Bitio.Reader.Out_of_bits] or
    [Invalid_argument] on corrupt data. *)

val bit_cost : int array -> int
(** Exact number of bits [write_block] would emit — used by the
    encoder's mode decision. *)
