(** Bit-level I/O for the codec bitstream.

    Bits are written most-significant first within each byte; the final
    partial byte is zero-padded. *)

module Writer : sig
  type t

  val create : unit -> t

  val put_bit : t -> bool -> unit

  val put_bits : t -> value:int -> bits:int -> unit
  (** [put_bits w ~value ~bits] writes the low [bits] bits of [value],
      most significant first. [bits] must be in [0, 62] and [value]
      non-negative and representable in [bits] bits. *)

  val put_byte_aligned : t -> int -> unit
  (** [put_byte_aligned w b] pads to a byte boundary then writes byte
      [b]. *)

  val align : t -> unit
  (** Zero-pads to the next byte boundary. *)

  val bit_length : t -> int
  (** Number of bits written so far. *)

  val contents : t -> string
  (** Final byte string (implicitly aligns). *)
end

module Reader : sig
  type t

  exception Out_of_bits
  (** Raised when reading past the end of the stream. *)

  val of_string : string -> t

  val get_bit : t -> bool

  val get_bits : t -> int -> int
  (** [get_bits r n] reads [n] bits (0-62) as a non-negative integer,
      most significant first. *)

  val align : t -> unit
  (** Skips to the next byte boundary. *)

  val get_byte_aligned : t -> int

  val bits_remaining : t -> int

  val position_bits : t -> int
end
