module Int_set = Set.Make (Int)

type t = { marks : Int_set.t; frame_count : int }

let plan ~max_interval ~scene_starts ~frame_count =
  if max_interval < 1 then invalid_arg "Gop_planner.plan: interval must be positive";
  if frame_count < 1 then invalid_arg "Gop_planner.plan: empty clip";
  List.iter
    (fun s ->
      if s < 0 || s >= frame_count then
        invalid_arg "Gop_planner.plan: scene start out of range")
    scene_starts;
  let anchors = Int_set.add 0 (Int_set.of_list scene_starts) in
  (* Refresh inside any stretch that would otherwise exceed the
     interval: walk anchor to anchor. *)
  let marks = ref anchors in
  let rec refresh from until =
    if until - from > max_interval then begin
      let mid = from + max_interval in
      marks := Int_set.add mid !marks;
      refresh mid until
    end
  in
  let sorted = Int_set.elements anchors @ [ frame_count ] in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      refresh a b;
      walk rest
    | [ _ ] | [] -> ()
  in
  walk sorted;
  { marks = !marks; frame_count }

let of_scene_intervals ~max_interval ~frame_count intervals =
  plan ~max_interval ~frame_count ~scene_starts:(List.map fst intervals)

let i_frame_at t i = Int_set.mem i t.marks

let positions t = Int_set.elements t.marks

let count t = Int_set.cardinal t.marks
