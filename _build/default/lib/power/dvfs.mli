(** CPU dynamic voltage/frequency scaling.

    §3 argues that annotations enable "optimizations like
    frequency/voltage scaling ... before decoding is finished, because
    the annotated information is available early from the data
    stream". This module models an XScale-class core (the h5555's
    PXA255 scales 100–400 MHz) with the classic [P ~ C V^2 f] law;
    {!Streaming.Dvfs_playback} builds the per-frame policy on top. *)

type level = {
  frequency_mhz : int;
  voltage_v : float;
  busy_power_mw : float;
  idle_power_mw : float;
}

val xscale_levels : level list
(** The four operating points, ascending frequency; the top one matches
    the 600 mW busy figure of the device profiles. *)

val full_speed : level
(** The highest operating point. *)

val cycles_available : level -> seconds:float -> float
(** [cycles_available level ~seconds] is how many cycles the core
    retires in the given wall time. *)

val lowest_feasible : cycles:float -> deadline_s:float -> level option
(** [lowest_feasible ~cycles ~deadline_s] is the slowest operating
    point that retires [cycles] within the deadline, or [None] if even
    {!full_speed} cannot (an unavoidable deadline miss). Raises
    [Invalid_argument] on non-positive deadline or negative cycles. *)

val busy_seconds : level -> cycles:float -> float
(** Time to retire [cycles] at the level. *)

val frame_energy_mj : level -> cycles:float -> deadline_s:float -> float
(** Energy to decode one frame: busy at the level for the cycles, then
    idle at the level for the remainder of the frame interval (clamped
    at zero when the frame overruns). *)

val pp_level : Format.formatter -> level -> unit
