type t = { capacity_mwh : float }

let make ~capacity_mwh =
  if capacity_mwh <= 0. then invalid_arg "Battery.make: capacity must be positive";
  { capacity_mwh }

let ipaq_standard = make ~capacity_mwh:4600.

let runtime_hours b ~average_power_mw =
  if average_power_mw <= 0. then invalid_arg "Battery.runtime_hours: power must be positive";
  b.capacity_mwh /. average_power_mw

let runtime_extension b ~baseline_power_mw ~optimized_power_mw =
  runtime_hours b ~average_power_mw:optimized_power_mw
  -. runtime_hours b ~average_power_mw:baseline_power_mw

let extension_ratio ~baseline_power_mw ~optimized_power_mw =
  if optimized_power_mw <= 0. then
    invalid_arg "Battery.extension_ratio: power must be positive";
  (baseline_power_mw /. optimized_power_mw) -. 1.
