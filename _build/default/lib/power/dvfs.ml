type level = {
  frequency_mhz : int;
  voltage_v : float;
  busy_power_mw : float;
  idle_power_mw : float;
}

(* PXA255-style operating points. Busy power follows C V^2 f scaled so
   the 400 MHz point matches the 600 mW of the device profiles; idle
   power scales with voltage only (leakage + clock tree). *)
let operating_point ~frequency_mhz ~voltage_v =
  let top_f = 400. and top_v = 1.3 in
  let scale =
    (voltage_v /. top_v) ** 2. *. (float_of_int frequency_mhz /. top_f)
  in
  {
    frequency_mhz;
    voltage_v;
    busy_power_mw = 600. *. scale;
    idle_power_mw = 40. +. (120. *. ((voltage_v /. top_v) ** 2.));
  }

let xscale_levels =
  [
    operating_point ~frequency_mhz:100 ~voltage_v:0.85;
    operating_point ~frequency_mhz:200 ~voltage_v:1.0;
    operating_point ~frequency_mhz:300 ~voltage_v:1.1;
    operating_point ~frequency_mhz:400 ~voltage_v:1.3;
  ]

let full_speed =
  match List.rev xscale_levels with
  | top :: _ -> top
  | [] -> assert false

let cycles_available level ~seconds =
  float_of_int level.frequency_mhz *. 1e6 *. seconds

let lowest_feasible ~cycles ~deadline_s =
  if deadline_s <= 0. then invalid_arg "Dvfs.lowest_feasible: non-positive deadline";
  if cycles < 0. then invalid_arg "Dvfs.lowest_feasible: negative cycles";
  List.find_opt
    (fun level -> cycles_available level ~seconds:deadline_s >= cycles)
    xscale_levels

let busy_seconds level ~cycles = cycles /. (float_of_int level.frequency_mhz *. 1e6)

let frame_energy_mj level ~cycles ~deadline_s =
  let busy = busy_seconds level ~cycles in
  let idle = Float.max 0. (deadline_s -. busy) in
  (level.busy_power_mw *. busy) +. (level.idle_power_mw *. idle)

let pp_level ppf l =
  Format.fprintf ppf "%dMHz@%.2fV (%.0f mW busy)" l.frequency_mhz l.voltage_v
    l.busy_power_mw
