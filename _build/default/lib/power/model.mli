(** Component and whole-device power models.

    §5: "the power consumption of the LCD is almost proportional to
    backlight level, but little dependent of pixel values, allowing us
    to analytically estimate the power savings through simulation."
    Backlight power is therefore modelled as a fixed driver floor plus
    a term linear in the register value, and is independent of frame
    content. *)

type breakdown = {
  backlight_mw : float;
  lcd_logic_mw : float;
  cpu_mw : float;
  network_mw : float;
  base_mw : float;
}

val backlight_power_mw : Display.Device.t -> on:bool -> register:int -> float
(** Power drawn by the backlight subsystem. Zero when off; otherwise
    [floor + (full - floor) * register / 255]. The register is clamped
    to 0–255. *)

val component_breakdown : Display.Device.t -> State.t -> breakdown
(** Per-component power at an instant. *)

val total_mw : breakdown -> float
(** Sum of all components. *)

val device_power_mw : Display.Device.t -> State.t -> float
(** [device_power_mw d s] is [total_mw (component_breakdown d s)]. *)

val backlight_share : Display.Device.t -> State.t -> float
(** Fraction of device power drawn by the backlight in the given state.
    At full backlight during playback this lands in the 25–30 % band
    the paper quotes for typical PDAs. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
