type cpu_state = Cpu_busy | Cpu_idle

type network_state = Net_receiving | Net_idle

type t = {
  backlight_on : bool;
  backlight_register : int;
  cpu : cpu_state;
  network : network_state;
}

let playback_full =
  { backlight_on = true; backlight_register = 255; cpu = Cpu_busy; network = Net_receiving }

let clamp r = if r < 0 then 0 else if r > 255 then 255 else r

let with_backlight register state = { state with backlight_register = clamp register }

let pp ppf s =
  Format.fprintf ppf "<bl=%s/%d cpu=%s net=%s>"
    (if s.backlight_on then "on" else "off")
    s.backlight_register
    (match s.cpu with Cpu_busy -> "busy" | Cpu_idle -> "idle")
    (match s.network with Net_receiving -> "rx" | Net_idle -> "idle")
