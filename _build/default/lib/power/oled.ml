type t = {
  base_mw : float;
  full_white_mw : float;
  red_weight : float;
  green_weight : float;
  blue_weight : float;
}

let typical_amoled =
  {
    base_mw = 40.;
    full_white_mw = 900.;
    red_weight = 0.28;
    green_weight = 0.30;
    blue_weight = 0.42;
  }

let frame_power_mw panel frame =
  let r = ref 0 and g = ref 0 and b = ref 0 in
  Image.Raster.iter
    (fun ~x:_ ~y:_ p ->
      r := !r + p.Image.Pixel.r;
      g := !g + p.Image.Pixel.g;
      b := !b + p.Image.Pixel.b)
    frame;
  let n = float_of_int (Image.Raster.pixel_count frame) in
  let drive =
    ((panel.red_weight *. float_of_int !r)
    +. (panel.green_weight *. float_of_int !g)
    +. (panel.blue_weight *. float_of_int !b))
    /. (n *. 255.)
  in
  panel.base_mw +. (panel.full_white_mw *. drive)

let clip_energy_mj panel ~fps clip =
  let dt = 1. /. fps in
  Video.Clip.fold_frames
    (fun acc _ frame -> acc +. (frame_power_mw panel frame *. dt))
    0. clip
