(** Instantaneous device activity state.

    The whole-device power at any instant is a function of this record;
    the playback simulator drives a state trace through the meter to
    reproduce the paper's DAQ measurements (Fig 10). *)

type cpu_state =
  | Cpu_busy  (** decoding or analysing a frame *)
  | Cpu_idle  (** waiting for the next frame *)

type network_state =
  | Net_receiving  (** stream packets arriving *)
  | Net_idle

type t = {
  backlight_on : bool;
  backlight_register : int;  (** 0–255; only meaningful when on *)
  cpu : cpu_state;
  network : network_state;
}

val playback_full : t
(** Decoding and receiving with the backlight at full: the baseline
    state of the paper's measurements. *)

val with_backlight : int -> t -> t
(** [with_backlight register state] sets the backlight register
    (clamped to 0–255). *)

val pp : Format.formatter -> t -> unit
