type breakdown = {
  backlight_mw : float;
  lcd_logic_mw : float;
  cpu_mw : float;
  network_mw : float;
  base_mw : float;
}

let clamp r = if r < 0 then 0 else if r > 255 then 255 else r

let backlight_power_mw (d : Display.Device.t) ~on ~register =
  if not on then 0.
  else
    let r = float_of_int (clamp register) /. 255. in
    d.Display.Device.backlight_power_floor_mw
    +. ((d.Display.Device.backlight_power_full_mw
         -. d.Display.Device.backlight_power_floor_mw)
        *. r)

let component_breakdown (d : Display.Device.t) (s : State.t) =
  {
    backlight_mw =
      backlight_power_mw d ~on:s.State.backlight_on ~register:s.State.backlight_register;
    lcd_logic_mw = d.Display.Device.lcd_logic_power_mw;
    cpu_mw =
      (match s.State.cpu with
      | State.Cpu_busy -> d.Display.Device.cpu_busy_power_mw
      | State.Cpu_idle -> d.Display.Device.cpu_idle_power_mw);
    network_mw =
      (match s.State.network with
      | State.Net_receiving -> d.Display.Device.network_rx_power_mw
      | State.Net_idle -> d.Display.Device.network_idle_power_mw);
    base_mw = d.Display.Device.base_power_mw;
  }

let total_mw b = b.backlight_mw +. b.lcd_logic_mw +. b.cpu_mw +. b.network_mw +. b.base_mw

let device_power_mw d s = total_mw (component_breakdown d s)

let backlight_share d s =
  let b = component_breakdown d s in
  b.backlight_mw /. total_mw b

let pp_breakdown ppf b =
  Format.fprintf ppf
    "backlight %.0f + lcd %.0f + cpu %.0f + net %.0f + base %.0f = %.0f mW"
    b.backlight_mw b.lcd_logic_mw b.cpu_mw b.network_mw b.base_mw (total_mw b)
