(** Battery and runtime accounting.

    The paper motivates the whole technique by battery life ("battery
    life still remains a major limitation of portable devices"); this
    module converts power savings to runtime extensions, the number a
    user actually experiences. *)

type t = { capacity_mwh : float }
(** An ideal battery of the given capacity (the h5555 shipped with a
    ~1250 mAh, 3.7 V pack, about 4600 mWh). *)

val ipaq_standard : t

val make : capacity_mwh:float -> t
(** Raises [Invalid_argument] on non-positive capacity. *)

val runtime_hours : t -> average_power_mw:float -> float
(** Ideal runtime at a constant average power. *)

val runtime_extension :
  t -> baseline_power_mw:float -> optimized_power_mw:float -> float
(** [runtime_extension b ~baseline_power_mw ~optimized_power_mw] is the
    additional runtime in hours gained by the optimisation. *)

val extension_ratio :
  baseline_power_mw:float -> optimized_power_mw:float -> float
(** Relative runtime gain, e.g. [0.25] for 25 % longer playback;
    capacity-independent. *)
