(** Emissive (OLED/AMOLED) display power — a counter-model.

    The paper's technique assumes a backlit LCD: display power depends
    on the backlight level and is "little dependent of pixel values"
    (§5). Emissive panels invert that: each pixel draws power in
    proportion to its drive, there is no backlight to dim, and
    *brightening the image* — exactly what the compensation step does —
    *increases* display power. This module quantifies that inversion so
    the benches can show where the technique's applicability ends. *)

type t = {
  base_mw : float;  (** panel logic, independent of content *)
  full_white_mw : float;  (** emission power of an all-white frame *)
  red_weight : float;
  green_weight : float;
  blue_weight : float;
      (** relative per-channel emission efficiency; blue OLEDs are the
          least efficient, so blue-heavy content costs most. Weights
          sum to 1. *)
}

val typical_amoled : t
(** A small AMOLED panel: 40 mW base, 900 mW full white, blue-heavy
    weighting (0.28 / 0.30 / 0.42). *)

val frame_power_mw : t -> Image.Raster.t -> float
(** [frame_power_mw panel frame] is the panel power showing [frame]:
    base plus emission proportional to the weighted mean channel
    drive. Black costs [base_mw]; full white costs
    [base_mw + full_white_mw]. *)

val clip_energy_mj : t -> fps:float -> Video.Clip.t -> float
(** Total display energy across a clip. *)
