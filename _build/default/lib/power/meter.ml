type t = { sample_rate_hz : float }

type reading = {
  duration_s : float;
  samples : int;
  energy_mj : float;
  average_power_mw : float;
  peak_power_mw : float;
  min_power_mw : float;
}

let create ?(sample_rate_hz = 2000.) () =
  if sample_rate_hz <= 0. then invalid_arg "Meter.create: rate must be positive";
  { sample_rate_hz }

let sample_rate_hz m = m.sample_rate_hz

let measure m ~duration_s power =
  if duration_s <= 0. then invalid_arg "Meter.measure: duration must be positive";
  let dt = 1. /. m.sample_rate_hz in
  let n = max 1 (int_of_float (duration_s /. dt)) in
  let energy = ref 0. and peak = ref neg_infinity and low = ref infinity in
  for i = 0 to n - 1 do
    let p = power (float_of_int i *. dt) in
    energy := !energy +. (p *. dt);
    if p > !peak then peak := p;
    if p < !low then low := p
  done;
  {
    duration_s;
    samples = n;
    energy_mj = !energy;
    average_power_mw = !energy /. (float_of_int n *. dt);
    peak_power_mw = !peak;
    min_power_mw = !low;
  }

let measure_trace m ~dt_s trace =
  if dt_s <= 0. then invalid_arg "Meter.measure_trace: dt must be positive";
  let frames = Array.length trace in
  if frames = 0 then invalid_arg "Meter.measure_trace: empty trace";
  let duration_s = dt_s *. float_of_int frames in
  let power t =
    let i = int_of_float (t /. dt_s) in
    trace.(min (frames - 1) (max 0 i))
  in
  measure m ~duration_s power

let savings_vs ~baseline r =
  if baseline.energy_mj <= 0. then invalid_arg "Meter.savings_vs: zero baseline";
  (baseline.energy_mj -. r.energy_mj) /. baseline.energy_mj

let pp_reading ppf r =
  Format.fprintf ppf "%.2f s, %d samples, %.1f mJ, avg %.1f mW (min %.1f, peak %.1f)"
    r.duration_s r.samples r.energy_mj r.average_power_mw r.min_power_mw
    r.peak_power_mw
