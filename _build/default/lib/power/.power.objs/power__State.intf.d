lib/power/state.mli: Format
