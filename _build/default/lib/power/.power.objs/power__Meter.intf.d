lib/power/meter.mli: Format
