lib/power/model.mli: Display Format State
