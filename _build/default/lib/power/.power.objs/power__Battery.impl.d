lib/power/battery.ml:
