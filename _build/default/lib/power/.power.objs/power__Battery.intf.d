lib/power/battery.mli:
