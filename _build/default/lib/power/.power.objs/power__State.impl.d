lib/power/state.ml: Format
