lib/power/meter.ml: Array Format
