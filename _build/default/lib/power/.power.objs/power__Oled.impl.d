lib/power/oled.ml: Image Video
