lib/power/oled.mli: Image Video
