lib/power/model.ml: Display Format State
