lib/power/dvfs.mli: Format
