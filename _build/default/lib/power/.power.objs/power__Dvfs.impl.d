lib/power/dvfs.ml: Float Format List
