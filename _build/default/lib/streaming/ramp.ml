let slew_limit ~max_dim_step registers =
  if max_dim_step <= 0 then invalid_arg "Ramp.slew_limit: step must be positive";
  let n = Array.length registers in
  if n = 0 then [||]
  else begin
    let out = Array.make n registers.(0) in
    for i = 1 to n - 1 do
      let target = registers.(i) in
      out.(i) <- (if target >= out.(i - 1) then target
                  else max target (out.(i - 1) - max_dim_step))
    done;
    out
  end

let largest_dim_step registers =
  let worst = ref 0 in
  for i = 1 to Array.length registers - 1 do
    let drop = registers.(i - 1) - registers.(i) in
    if drop > !worst then worst := drop
  done;
  !worst

type cost = {
  extra_energy_fraction : float;
  smoothed_largest_dim_step : int;
  original_largest_dim_step : int;
}

let backlight_energy device registers =
  Array.fold_left
    (fun acc register ->
      acc +. Power.Model.backlight_power_mw device ~on:true ~register)
    0. registers

let smoothing_cost ~device ~max_dim_step registers =
  let smoothed = slew_limit ~max_dim_step registers in
  let original_energy = backlight_energy device registers in
  let smoothed_energy = backlight_energy device smoothed in
  {
    extra_energy_fraction =
      (if original_energy > 0. then (smoothed_energy -. original_energy) /. original_energy
       else 0.);
    smoothed_largest_dim_step = largest_dim_step smoothed;
    original_largest_dim_step = largest_dim_step registers;
  }
