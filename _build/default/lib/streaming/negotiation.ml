type mapping_site = Server_side | Client_side

type client_hello = {
  device : Display.Device.t;
  requested_quality : Annot.Quality_level.t;
}

type session = {
  device : Display.Device.t;
  quality : Annot.Quality_level.t;
  mapping : mapping_site;
}

let offer_qualities = Annot.Quality_level.standard_grid

let nearest_offered requested =
  let loss = Annot.Quality_level.allowed_loss requested in
  let by_distance a b =
    Float.compare
      (abs_float (Annot.Quality_level.allowed_loss a -. loss))
      (abs_float (Annot.Quality_level.allowed_loss b -. loss))
  in
  match List.sort by_distance offer_qualities with
  | best :: _ -> best
  | [] -> assert false

let negotiate ?(prefer = Server_side) hello =
  match Annot.Quality_level.allowed_loss hello.requested_quality with
  | exception Invalid_argument msg -> Error msg
  | _ ->
    let quality =
      if List.exists (fun q -> Annot.Quality_level.compare q hello.requested_quality = 0)
           offer_qualities
      then hello.requested_quality
      else nearest_offered hello.requested_quality
    in
    Ok { device = hello.device; quality; mapping = prefer }

let pp_session ppf s =
  Format.fprintf ppf "<session %s q=%a %s>" s.device.Display.Device.name
    Annot.Quality_level.pp s.quality
    (match s.mapping with Server_side -> "server-mapped" | Client_side -> "client-mapped")
