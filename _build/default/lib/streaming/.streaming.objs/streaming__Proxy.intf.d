lib/streaming/proxy.mli: Annot Codec Display Netsim Video
