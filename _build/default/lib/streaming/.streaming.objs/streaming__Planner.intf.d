lib/streaming/planner.mli: Annot Display Format Playback Power
