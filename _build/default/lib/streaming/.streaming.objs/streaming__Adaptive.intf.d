lib/streaming/adaptive.mli: Annot Display Format Playback
