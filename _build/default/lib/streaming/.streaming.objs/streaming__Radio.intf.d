lib/streaming/radio.mli: Format Netsim
