lib/streaming/fec.ml: Array Bytes Char Image List Printf String
