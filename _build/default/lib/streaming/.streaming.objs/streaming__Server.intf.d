lib/streaming/server.mli: Annot Codec Negotiation Video
