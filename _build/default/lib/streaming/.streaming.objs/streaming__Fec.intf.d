lib/streaming/fec.mli:
