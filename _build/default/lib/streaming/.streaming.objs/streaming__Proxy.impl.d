lib/streaming/proxy.ml: Annot Codec Netsim Result Video
