lib/streaming/ramp.ml: Array Power
