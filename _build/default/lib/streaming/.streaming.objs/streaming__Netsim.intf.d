lib/streaming/netsim.mli:
