lib/streaming/netsim.ml:
