lib/streaming/dvfs_playback.mli: Codec Format
