lib/streaming/negotiation.ml: Annot Display Float Format List
