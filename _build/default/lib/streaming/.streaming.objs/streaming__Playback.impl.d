lib/streaming/playback.ml: Annot Array Camera Display Format List Power Video
