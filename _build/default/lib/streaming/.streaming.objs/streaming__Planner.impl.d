lib/streaming/planner.ml: Annot Format Playback Power
