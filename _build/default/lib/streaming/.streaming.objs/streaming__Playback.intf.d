lib/streaming/playback.mli: Annot Camera Display Format Power Video
