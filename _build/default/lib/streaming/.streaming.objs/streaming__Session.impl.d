lib/streaming/session.ml: Annot Array Codec Display Dvfs_playback Fec Format Negotiation Netsim Power Radio Ramp Result String Transport Video
