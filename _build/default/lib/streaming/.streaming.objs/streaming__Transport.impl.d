lib/streaming/transport.ml: Array Codec Float Image Result String
