lib/streaming/session.mli: Annot Display Format Negotiation Netsim Video
