lib/streaming/ramp.mli: Display
