lib/streaming/dvfs_playback.ml: Array Codec Float Format List Power Printf
