lib/streaming/radio.ml: Array Float Format Netsim Printf
