lib/streaming/adaptive.ml: Annot Array Float Format List Playback
