lib/streaming/server.ml: Annot Codec Hashtbl List Negotiation Printf Result Video
