lib/streaming/negotiation.mli: Annot Display Format
