lib/streaming/transport.mli: Codec Image
