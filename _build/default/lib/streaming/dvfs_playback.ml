type policy =
  | Annotated_workload
  | History_max of { window : int; margin : float }
  | Always_full

let policy_name = function
  | Annotated_workload -> "annotated"
  | History_max { window; margin } -> Printf.sprintf "history-%d-x%.1f" window margin
  | Always_full -> "full-speed"

type report = {
  policy : policy;
  frames : int;
  deadline_misses : int;
  cpu_energy_mj : float;
  baseline_energy_mj : float;
  savings : float;
  mean_frequency_mhz : float;
}

(* Decode cost model: per-pixel reconstruction work (inverse DCT,
   motion compensation, colour conversion) plus per-bit entropy work.
   The constants put a QVGA-class stream near real time at 400 MHz —
   the Berkeley-player-on-XScale regime of §5 — so I-frames demand the
   upper operating points while small P-frames coast at the bottom. *)
let cycles_per_pixel = 150.
let cycles_per_bit = 700.

let decode_cycles (encoded : Codec.Encoder.encoded) =
  let pixel_work =
    cycles_per_pixel
    *. float_of_int (encoded.Codec.Encoder.width * encoded.Codec.Encoder.height)
  in
  Array.map
    (fun bits -> pixel_work +. (cycles_per_bit *. float_of_int bits))
    encoded.Codec.Encoder.frame_sizes_bits

let choose_level policy ~cycles ~history ~deadline_s =
  match policy with
  | Always_full -> Power.Dvfs.full_speed
  | Annotated_workload -> (
    match Power.Dvfs.lowest_feasible ~cycles ~deadline_s with
    | Some level -> level
    | None -> Power.Dvfs.full_speed)
  | History_max { window; margin } -> (
    match history with
    | [] -> Power.Dvfs.full_speed
    | _ ->
      let recent = List.filteri (fun i _ -> i < window) history in
      let predicted = margin *. List.fold_left Float.max 0. recent in
      (match Power.Dvfs.lowest_feasible ~cycles:predicted ~deadline_s with
      | Some level -> level
      | None -> Power.Dvfs.full_speed))

let run ~fps cycles policy =
  let frames = Array.length cycles in
  if frames = 0 then invalid_arg "Dvfs_playback.run: empty cycle track";
  if fps <= 0. then invalid_arg "Dvfs_playback.run: fps must be positive";
  let deadline_s = 1. /. fps in
  let energy = ref 0. and baseline = ref 0. in
  let misses = ref 0 in
  let freq_sum = ref 0. in
  let history = ref [] in
  Array.iter
    (fun frame_cycles ->
      let level = choose_level policy ~cycles:frame_cycles ~history:!history ~deadline_s in
      if Power.Dvfs.cycles_available level ~seconds:deadline_s < frame_cycles then
        incr misses;
      energy := !energy +. Power.Dvfs.frame_energy_mj level ~cycles:frame_cycles ~deadline_s;
      baseline :=
        !baseline
        +. Power.Dvfs.frame_energy_mj Power.Dvfs.full_speed ~cycles:frame_cycles
             ~deadline_s;
      freq_sum := !freq_sum +. float_of_int level.Power.Dvfs.frequency_mhz;
      history := frame_cycles :: !history)
    cycles;
  {
    policy;
    frames;
    deadline_misses = !misses;
    cpu_energy_mj = !energy;
    baseline_energy_mj = !baseline;
    savings = (!baseline -. !energy) /. !baseline;
    mean_frequency_mhz = !freq_sum /. float_of_int frames;
  }

let annotation_bytes cycles =
  (* Kilocycle quantisation in LEB128 varints: 2-4 bytes per frame. *)
  let varint_bytes n =
    let rec loop acc n = if n < 0x80 then acc + 1 else loop (acc + 1) (n lsr 7) in
    loop 0 (max 0 n)
  in
  Array.fold_left
    (fun acc c -> acc + varint_bytes (int_of_float (c /. 1000.)))
    0 cycles

let pp_report ppf r =
  Format.fprintf ppf
    "%-18s misses %3d/%3d  cpu %8.1f mJ (baseline %8.1f)  saved %5.1f%%  mean %3.0f MHz"
    (policy_name r.policy) r.deadline_misses r.frames r.cpu_energy_mj
    r.baseline_energy_mj (100. *. r.savings) r.mean_frequency_mhz
