type power = {
  rx_mw : float;
  idle_mw : float;
  sleep_mw : float;
  wake_overhead_s : float;
}

let wlan_card = { rx_mw = 300.; idle_mw = 160.; sleep_mw = 12.; wake_overhead_s = 0.003 }

type policy = Always_on | Annotated_bursts | History_bursts of { margin : float }

let policy_name = function
  | Always_on -> "always-on"
  | Annotated_bursts -> "annotated"
  | History_bursts { margin } -> Printf.sprintf "history-x%.1f" margin

type report = {
  policy : policy;
  gops : int;
  radio_energy_mj : float;
  baseline_energy_mj : float;
  savings : float;
  late_frames : int;
  sleep_fraction : float;
}

let gop_bytes ~gop frame_bytes =
  if gop <= 0 then invalid_arg "Radio.gop_bytes: gop must be positive";
  let frames = Array.length frame_bytes in
  if frames = 0 then invalid_arg "Radio.gop_bytes: empty stream";
  let groups = (frames + gop - 1) / gop in
  Array.init groups (fun g ->
      let first = g * gop in
      let last = min (frames - 1) (first + gop - 1) in
      let sum = ref 0 in
      for i = first to last do
        sum := !sum + frame_bytes.(i)
      done;
      !sum)

(* One GOP interval: [rx_s] receiving, then either idle (always-on) or
   dozing with wake overheads. Receive energy is common to all
   policies; only the residue differs. *)
let interval_energy power ~policy ~interval_s ~rx_s ~wakes =
  let rx_s = Float.min rx_s interval_s in
  let residue = interval_s -. rx_s in
  let rx_energy = power.rx_mw *. rx_s in
  match policy with
  | `Awake -> rx_energy +. (power.idle_mw *. residue)
  | `Doze ->
    let overhead = Float.min residue (float_of_int wakes *. power.wake_overhead_s) in
    rx_energy
    +. (power.idle_mw *. overhead)
    +. (power.sleep_mw *. (residue -. overhead))

let run ?(power = wlan_card) ~link ~fps ~gop ~frame_bytes policy =
  if fps <= 0. then invalid_arg "Radio.run: fps must be positive";
  let bursts = gop_bytes ~gop frame_bytes in
  let gops = Array.length bursts in
  let interval_s = float_of_int gop /. fps in
  let rx_times = Array.map (fun b -> Netsim.transfer_time_s link b) bursts in
  let energy = ref 0. and baseline = ref 0. in
  let late = ref 0 in
  let doze_s = ref 0. in
  Array.iteri
    (fun g rx_s ->
      baseline := !baseline +. interval_energy power ~policy:`Awake ~interval_s ~rx_s ~wakes:0;
      match policy with
      | Always_on ->
        energy := !energy +. interval_energy power ~policy:`Awake ~interval_s ~rx_s ~wakes:0
      | Annotated_bursts ->
        energy := !energy +. interval_energy power ~policy:`Doze ~interval_s ~rx_s ~wakes:1;
        doze_s := !doze_s +. Float.max 0. (interval_s -. rx_s -. power.wake_overhead_s)
      | History_bursts { margin } ->
        (* The wake window is sized from the previous burst; the
           shortfall slips to an extra wake and the frames it carried
           are late. *)
        let window =
          if g = 0 then interval_s else Float.min interval_s (margin *. rx_times.(g - 1))
        in
        let received = Float.min rx_s window in
        let shortfall = rx_s -. received in
        let wakes = if shortfall > 0. then 2 else 1 in
        if shortfall > 0. then begin
          let this_gop_frames =
            min gop (Array.length frame_bytes - (g * gop))
          in
          late :=
            !late
            + int_of_float
                (Float.round (float_of_int this_gop_frames *. shortfall /. rx_s))
        end;
        energy := !energy +. interval_energy power ~policy:`Doze ~interval_s ~rx_s ~wakes;
        doze_s :=
          !doze_s
          +. Float.max 0.
               (interval_s -. rx_s -. (float_of_int wakes *. power.wake_overhead_s)))
    rx_times;
  {
    policy;
    gops;
    radio_energy_mj = !energy;
    baseline_energy_mj = !baseline;
    savings = (!baseline -. !energy) /. !baseline;
    late_frames = !late;
    sleep_fraction = !doze_s /. (interval_s *. float_of_int gops);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%-14s radio %8.1f mJ (baseline %8.1f)  saved %5.1f%%  doze %4.1f%%  late %3d"
    (policy_name r.policy) r.radio_energy_mj r.baseline_energy_mj
    (100. *. r.savings) (100. *. r.sleep_fraction) r.late_frames
