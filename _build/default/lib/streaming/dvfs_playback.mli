(** Frequency/voltage scaling during playback — the second annotation
    application sketched in §3.

    The decode cost of a frame is dominated by its coded size (entropy
    decoding, coefficient reconstruction), so the server can annotate
    each frame with a cycle estimate straight from the bitstream. The
    client then runs the *slowest* operating point that still meets the
    frame deadline. Without annotations the client must predict from
    history and I-frames arriving after quiet stretches blow the
    deadline — the same stale-knowledge failure as backlight history
    prediction. *)

type policy =
  | Annotated_workload
      (** per-frame cycle annotations: clairvoyant, meets every
          feasible deadline at the minimum frequency *)
  | History_max of { window : int; margin : float }
      (** scale for [margin] times the largest cost among the previous
          [window] frames; the first frame runs at full speed *)
  | Always_full  (** no scaling: the baseline *)

val policy_name : policy -> string

type report = {
  policy : policy;
  frames : int;
  deadline_misses : int;
  cpu_energy_mj : float;
  baseline_energy_mj : float;  (** same workload under [Always_full] *)
  savings : float;  (** fractional CPU energy saving vs the baseline *)
  mean_frequency_mhz : float;
}

val decode_cycles : Codec.Encoder.encoded -> float array
(** [decode_cycles encoded] estimates per-frame decode cycles from the
    coded frame sizes: a fixed per-frame cost plus a per-bit cost.
    I-frames, being several times larger, cost several times more. *)

val run : fps:float -> float array -> policy -> report
(** [run ~fps cycles policy] simulates frame-by-frame level selection
    over the cycle track. A deadline miss is recorded whenever the
    chosen level cannot retire the frame's actual cycles within the
    frame interval. Raises [Invalid_argument] on an empty track or
    non-positive fps. *)

val annotation_bytes : float array -> int
(** Size of the cycle annotations on the wire (varint-encoded kilocycle
    quantisation) — the side-channel cost of the DVFS application. *)

val pp_report : Format.formatter -> report -> unit
