(** Wireless link model.

    The system model (Fig 1) streams video from a server, optionally
    through a proxy, over a WLAN access point to the handheld. The
    link model captures what the evaluation needs: wire sizes with
    per-packet overhead (to put the annotation overhead in context) and
    transfer times (to confirm annotations arrive before the frames
    they govern). *)

type t = {
  bandwidth_bps : float;  (** application-visible link rate *)
  packet_payload_bytes : int;  (** MTU-sized payload per packet *)
  per_packet_overhead_bytes : int;  (** RTP/UDP/IP/MAC headers *)
}

val wlan_80211b : t
(** 5 Mbit/s effective rate, 1400-byte payloads, 54 bytes of
    headers — a 2004-era PDA on 802.11b. *)

val make :
  bandwidth_bps:float ->
  packet_payload_bytes:int ->
  per_packet_overhead_bytes:int ->
  t
(** Raises [Invalid_argument] on non-positive bandwidth or payload. *)

val packet_count : t -> int -> int
(** [packet_count link bytes] is the number of packets needed for a
    payload of [bytes] (at least 1 for a non-empty payload). *)

val wire_bytes : t -> int -> int
(** Payload plus per-packet overhead. *)

val transfer_time_s : t -> int -> float
(** Time to push the wire bytes through the link. *)

val annotation_overhead_ratio : t -> video_bytes:int -> annotation_bytes:int -> float
(** Wire-level overhead of shipping the annotations along with the
    video: [extra wire bytes / video wire bytes]. *)
