(** Frame-aligned transport with loss and concealment.

    The wireless link of Fig 1 drops packets. The transport ships each
    coded frame as its own packet train; when a frame is lost the
    client conceals it by repeating the previous picture, and later
    P-frames predict from the *concealed* picture — drifting until the
    next I-frame refreshes the prediction chain. This quantifies the
    error-resilience side of the streaming substrate (the paper's group
    studied exactly this trade in the PBPAIR line of work) and, for the
    annotation pipeline, shows that backlight annotations shipped
    reliably out-of-band stay valid even when the video is damaged. *)

type packetized = {
  info : Codec.Decoder.stream_info;
  payloads : string array;  (** one byte string per coded frame *)
  frame_types : Codec.Stream.frame_type array;
}

val packetize : Codec.Encoder.encoded -> (packetized, string) result
(** Splits a bitstream at its (byte-aligned) frame boundaries. *)

val bernoulli_loss : rate:float -> seed:int -> frames:int -> bool array
(** [bernoulli_loss ~rate ~seed ~frames] marks each frame lost with
    probability [rate], deterministically from [seed]. Rate in
    [0, 1]. *)

type received = {
  pictures : Image.Raster.t array;
  concealed : int;  (** frames repeated because their data was lost *)
  drifted : int;
      (** received frames decoded against a concealed or drifted
          reference (visually degraded until the next I-frame) *)
}

val decode_with_concealment :
  packetized -> lost:bool array -> (received, string) result
(** Frame-by-frame decode with previous-picture concealment. Fails only
    when nothing displayable exists yet (the very first frame is lost
    before any picture was decoded) or on corrupt payload data. *)

val mean_psnr : reference:Image.Raster.t array -> Image.Raster.t array -> float
(** Mean PSNR (dB) against a reference frame sequence; [infinity]-free:
    identical frames are capped at 99 dB so the mean stays finite. *)
