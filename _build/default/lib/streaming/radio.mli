(** WLAN power management from stream annotations — the "network packet
    optimizations" §3 says become possible "because the information is
    available even before decoding the data".

    The server ships each GOP as one burst, one GOP ahead of playback.
    A radio that does not know when or how much data will arrive must
    stay awake (CAM, constantly-awake mode). If the stream is annotated
    with the burst sizes, the client can sleep the radio between bursts
    and wake exactly long enough to drain each one; predicting burst
    sizes from history instead under-provisions the receive window at
    I-frame-heavy GOPs and the tail of the burst slips to the next
    wake, making frames late. *)

type power = {
  rx_mw : float;  (** actively receiving *)
  idle_mw : float;  (** awake, listening *)
  sleep_mw : float;  (** power-save doze *)
  wake_overhead_s : float;  (** time spent awake around each wake-up *)
}

val wlan_card : power
(** A 2004-class 802.11b card: 300 mW receive, 160 mW idle listen,
    12 mW doze, 3 ms wake overhead. *)

type policy =
  | Always_on  (** CAM: the baseline; radio never sleeps *)
  | Annotated_bursts
      (** burst sizes annotated: sleep between bursts, wake windows
          sized exactly; never late *)
  | History_bursts of { margin : float }
      (** size each window as [margin] times the previous burst's
          receive time; the under-provisioned remainder slips to the
          next wake and the affected frames are late *)

val policy_name : policy -> string

type report = {
  policy : policy;
  gops : int;
  radio_energy_mj : float;
  baseline_energy_mj : float;  (** the same stream under [Always_on] *)
  savings : float;
  late_frames : int;
  sleep_fraction : float;  (** fraction of playback the radio dozes *)
}

val gop_bytes : gop:int -> int array -> int array
(** [gop_bytes ~gop frame_bytes] sums per-frame byte counts into
    per-GOP bursts (the last group may be short). Raises
    [Invalid_argument] on a non-positive gop or empty input. *)

val run :
  ?power:power ->
  link:Netsim.t ->
  fps:float ->
  gop:int ->
  frame_bytes:int array ->
  policy ->
  report
(** [run ~link ~fps ~gop ~frame_bytes policy] simulates radio state
    over the whole playback. All data is eventually received (receive
    energy is identical across policies); what differs is how much of
    the remaining time is spent dozing versus listening, and how many
    frames arrive after their deadline. *)

val pp_report : Format.formatter -> report -> unit
