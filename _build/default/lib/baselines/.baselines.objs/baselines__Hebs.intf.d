lib/baselines/hebs.mli: Display Image
