lib/baselines/runner.ml: Annot Array Display Float Format Image List Strategy Streaming
