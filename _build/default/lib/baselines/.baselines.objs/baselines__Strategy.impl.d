lib/baselines/strategy.ml: Annot Format Printf
