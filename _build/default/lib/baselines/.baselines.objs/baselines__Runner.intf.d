lib/baselines/runner.mli: Annot Display Format Strategy Streaming
