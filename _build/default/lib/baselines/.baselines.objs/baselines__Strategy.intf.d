lib/baselines/strategy.mli: Annot Format
