lib/baselines/hebs.ml: Array Display Float Image
