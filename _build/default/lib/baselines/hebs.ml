type solution = {
  register : int;
  realised_gain : float;
  map : int array;
  mean_error : float;
}

let equalisation_map hist ~lambda =
  if lambda < 0. || lambda > 1. then invalid_arg "Hebs: lambda out of [0, 1]";
  let total = Image.Histogram.total hist in
  if total = 0 then invalid_arg "Hebs: empty histogram";
  let map = Array.make 256 0 in
  let cumulative = ref 0 in
  for y = 0 to 255 do
    cumulative := !cumulative + Image.Histogram.count hist y;
    let equalised = 255. *. float_of_int !cumulative /. float_of_int total in
    let blended = ((1. -. lambda) *. float_of_int y) +. (lambda *. equalised) in
    map.(y) <- Image.Pixel.clamp_channel (int_of_float (blended +. 0.5))
  done;
  (* The blend of two non-decreasing curves is non-decreasing, but
     rounding could wobble by one; rectify. *)
  for y = 1 to 255 do
    if map.(y) < map.(y - 1) then map.(y) <- map.(y - 1)
  done;
  map

let solve ~device ~lambda hist =
  let map = equalisation_map hist ~lambda in
  (* Preserve the mean perceived brightness: gain * mean(mapped) =
     mean(original). *)
  let total = float_of_int (Image.Histogram.total hist) in
  let weighted f =
    let acc = ref 0. in
    for y = 0 to 255 do
      acc := !acc +. (float_of_int (Image.Histogram.count hist y) *. f y)
    done;
    !acc /. total
  in
  let mean_original = weighted float_of_int in
  let mean_mapped = weighted (fun y -> float_of_int map.(y)) in
  let ideal_gain =
    if mean_mapped <= 0. then 1. else Float.max 0. (Float.min 1. (mean_original /. mean_mapped))
  in
  let register = Display.Device.register_for_gain device ideal_gain in
  let realised_gain = Display.Device.backlight_gain device register in
  let mean_error =
    weighted (fun y ->
        abs_float ((realised_gain *. float_of_int map.(y)) -. float_of_int y))
    /. 255.
  in
  { register; realised_gain; map; mean_error }

let apply_map map frame =
  if Array.length map <> 256 then invalid_arg "Hebs.apply_map: need 256 entries";
  Image.Raster.map
    (fun { Image.Pixel.r; g; b } ->
      { Image.Pixel.r = map.(r); g = map.(g); b = map.(b) })
    frame
