(** Whole-image operations: the two compensation operators of §4.1 and
    supporting transforms. *)

val contrast_enhance : k:float -> Raster.t -> Raster.t
(** [contrast_enhance ~k img] multiplies every channel of every pixel
    by [k] and clamps ([C' = min(1, C*k)]); this is the compensation
    the paper selects, with [k = L / L'] so that the perceived
    intensity [I = rho * L * Y] is preserved after the backlight is
    dimmed from [L] to [L']. [k] must be non-negative. *)

val contrast_enhance_inplace : k:float -> Raster.t -> unit
(** In-place variant of {!contrast_enhance}. *)

val brightness_compensate : delta:int -> Raster.t -> Raster.t
(** [brightness_compensate ~delta img] adds [delta] to every channel
    and clamps ([C' = min(1, C + dC)]); the alternative operator of
    §4.1. Unlike contrast enhancement it shifts colours towards white
    for already-bright pixels, which is why the paper prefers
    contrast enhancement. *)

val clipped_fraction : k:float -> Raster.t -> float
(** [clipped_fraction ~k img] is the fraction of pixels in [0, 1] that
    lose information when scaled by [k] (at least one channel
    saturates). This measures the quality degradation of Fig 5 on
    actual pixels (as opposed to the histogram estimate). *)

val simulate_display : backlight_gain:float -> Raster.t -> Raster.t
(** [simulate_display ~backlight_gain img] is the image as emitted by
    an idealised panel whose backlight produces [backlight_gain] of
    full luminance: every channel is scaled by [backlight_gain]
    (no clamping issues since the gain is in [0, 1]). Device-accurate
    simulation lives in the [display] library; this helper is used by
    image-level tests. *)

val downsample : factor:int -> Raster.t -> Raster.t
(** [downsample ~factor img] averages [factor x factor] blocks. The
    dimensions must be divisible by [factor]. *)

val absolute_difference : Raster.t -> Raster.t -> Raster.t
(** [absolute_difference a b] is the per-channel absolute difference;
    dimensions must match. *)
