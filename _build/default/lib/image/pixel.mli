(** 8-bit RGB pixels and luminance arithmetic.

    All channel values live in the inclusive range [0, 255]. Luminance
    follows ITU-R BT.601: [y = 0.299 r + 0.587 g + 0.114 b], the formula
    the paper uses ("Y = rR + gG + bB, where r, g, b are known
    constants"). *)

type t = { r : int; g : int; b : int }
(** One RGB888 pixel. Invariant: every channel is in [0, 255]. *)

val v : int -> int -> int -> t
(** [v r g b] builds a pixel, clamping each channel to [0, 255]. *)

val black : t
val white : t

val gray : int -> t
(** [gray l] is the pixel with all three channels equal to [l] (clamped). *)

val clamp_channel : int -> int
(** [clamp_channel c] clamps [c] to [0, 255]. *)

val luminance : t -> int
(** [luminance p] is the BT.601 luma of [p], rounded to nearest, in
    [0, 255]. White maps to 255 and black to 0. *)

val luminance_exact : t -> float
(** [luminance_exact p] is the unrounded BT.601 luma of [p]. *)

val scale : float -> t -> t
(** [scale k p] multiplies every channel by [k] and clamps: the paper's
    contrast-enhancement compensation [C' = min(1, C*k)] applied
    per channel. [k] must be non-negative. *)

val add : int -> t -> t
(** [add d p] adds [d] to every channel and clamps: the paper's
    brightness compensation [C' = min(1, C + dC)]. *)

val is_clipped_by_scale : float -> t -> bool
(** [is_clipped_by_scale k p] is [true] iff scaling [p] by [k] saturates
    at least one channel, i.e. information is lost. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
