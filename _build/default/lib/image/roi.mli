(** Regions of interest.

    §3 allows annotation "under user supervision (for example, the user
    may specify which parts or objects of the video stream are more
    important in a power-quality trade-off scenario)". A region of
    interest is a union of axis-aligned rectangles whose pixels must
    not be sacrificed to the clipping budget — the fix for the paper's
    end-credits failure case, where thin bright text is exactly what a
    percentage heuristic throws away. *)

type rect = { x : int; y : int; w : int; h : int }
(** A rectangle with non-negative dimensions. *)

type t
(** A union of rectangles. The empty region protects nothing. *)

val empty : t

val of_rects : rect list -> t
(** Raises [Invalid_argument] on a rect with negative dimensions. *)

val center_band : width:int -> height:int -> fraction:float -> t
(** [center_band ~width ~height ~fraction] is a horizontal band of the
    given height fraction centred vertically in a [width x height]
    frame — the natural protection for rolling credits or subtitles.
    [fraction] in (0, 1]. *)

val is_empty : t -> bool

val contains : t -> x:int -> y:int -> bool

val pixel_count : t -> width:int -> height:int -> int
(** Number of frame pixels inside the region (rect overlaps within the
    union are counted once). *)

val split_histograms :
  t -> Raster.t -> inside:Histogram.t -> outside:Histogram.t -> unit
(** [split_histograms roi frame ~inside ~outside] adds each pixel's
    luminance to [inside] or [outside] according to membership — a
    single pass over the frame. *)
