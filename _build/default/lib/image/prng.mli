(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator (synthetic content,
    sensor noise, network jitter) draws from an explicit [Prng.t] so
    that clips, snapshots and experiments are bit-reproducible across
    runs — a requirement for the regression benches. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator; equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream,
    advancing [t]. Useful to give each frame or each scene its own
    stream so that content is stable under reordering. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound); [bound] must be
    positive. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution
    (Box–Muller). *)

val bool : t -> bool
