type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 finaliser (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the conversion to a 63-bit native int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  if bound <= 0. then invalid_arg "Prng.float: bound must be positive";
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0, 1). *)
  r /. 9007199254740992. *. bound

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1. in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1. in
      mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L
