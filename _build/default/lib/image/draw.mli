(** Drawing primitives for synthetic frame content.

    The synthetic clip generator composes frames from these primitives:
    gradients for backgrounds, discs and rectangles for moving subjects
    and highlights, film-grain noise, vignettes for dark cinematic
    scenes, and text-like blocks for end credits (the paper singles out
    end credits as a hard case for clipping heuristics). All functions
    mutate the target raster in place. *)

val fill_vertical_gradient : Raster.t -> top:Pixel.t -> bottom:Pixel.t -> unit
(** Linear vertical blend from [top] (row 0) to [bottom] (last row). *)

val fill_radial_gradient :
  Raster.t -> center:Pixel.t -> edge:Pixel.t -> cx:float -> cy:float -> unit
(** Radial blend from [center] at normalised position [(cx, cy)] (in
    [0, 1] per axis) to [edge] at the farthest corner. *)

val rect :
  Raster.t -> x:int -> y:int -> w:int -> h:int -> Pixel.t -> unit
(** Filled axis-aligned rectangle, silently cropped to the image. *)

val disc : Raster.t -> cx:int -> cy:int -> radius:int -> Pixel.t -> unit
(** Filled disc, silently cropped to the image. *)

val shaded_disc :
  Raster.t -> cx:int -> cy:int -> radius:int -> falloff:float -> Pixel.t -> unit
(** Disc with radial shading: the centre keeps the full pixel value
    and the rim is darkened by the [falloff] fraction (in [0, 1]).
    Shaded subjects give frames the smooth luminance distributions of
    real footage, instead of a single dense histogram spike. *)

val glow : Raster.t -> cx:int -> cy:int -> radius:int -> intensity:int -> unit
(** Additive highlight: brightens pixels within [radius] of the centre
    with a quadratic falloff of peak [intensity]. This is how sparse
    bright spots ("highlights concentrated in a few points") are
    injected into dark scenes. *)

val add_noise : Raster.t -> rng:Prng.t -> sigma:float -> unit
(** Per-pixel additive Gaussian film-grain noise of the given standard
    deviation, identical across the three channels of a pixel. *)

val vignette : Raster.t -> strength:float -> unit
(** Darkens pixels towards the corners; [strength] in [0, 1] is the
    fraction of luminance removed at the farthest corner. *)

val credit_lines :
  Raster.t -> rng:Prng.t -> lines:int -> ink:Pixel.t -> unit
(** Rows of short bright dashes approximating rolling end-credit text
    on the current background. *)
