type rect = { x : int; y : int; w : int; h : int }

type t = { rects : rect list }

let empty = { rects = [] }

let of_rects rects =
  List.iter
    (fun r -> if r.w < 0 || r.h < 0 then invalid_arg "Roi.of_rects: negative dimensions")
    rects;
  { rects = List.filter (fun r -> r.w > 0 && r.h > 0) rects }

let center_band ~width ~height ~fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Roi.center_band: fraction out of (0, 1]";
  let band_h = max 1 (int_of_float (float_of_int height *. fraction)) in
  let y = (height - band_h) / 2 in
  of_rects [ { x = 0; y; w = width; h = band_h } ]

let is_empty t = t.rects = []

let rect_contains r ~x ~y = x >= r.x && x < r.x + r.w && y >= r.y && y < r.y + r.h

let contains t ~x ~y = List.exists (fun r -> rect_contains r ~x ~y) t.rects

let pixel_count t ~width ~height =
  (* Counting by membership keeps overlapping rects exact; regions are
     small unions, frames are small, so the scan is fine. *)
  let count = ref 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if contains t ~x ~y then incr count
    done
  done;
  !count

let split_histograms t frame ~inside ~outside =
  Raster.iter
    (fun ~x ~y p ->
      let luma = Pixel.luminance p in
      if contains t ~x ~y then Histogram.add_sample inside luma
      else Histogram.add_sample outside luma)
    frame
