let contrast_enhance_inplace ~k img =
  if k < 0. then invalid_arg "Ops.contrast_enhance: negative gain";
  (* A 256-entry lookup table makes the per-pixel work a single index. *)
  let table = Array.init 256 (fun c ->
      Pixel.clamp_channel (int_of_float ((k *. float_of_int c) +. 0.5)))
  in
  Raster.map_inplace
    (fun { Pixel.r; g; b } ->
      { Pixel.r = table.(r); g = table.(g); b = table.(b) })
    img

let contrast_enhance ~k img =
  let out = Raster.copy img in
  contrast_enhance_inplace ~k out;
  out

let brightness_compensate ~delta img = Raster.map (Pixel.add delta) img

let clipped_fraction ~k img =
  let clipped =
    Raster.fold
      (fun acc p -> if Pixel.is_clipped_by_scale k p then acc + 1 else acc)
      0 img
  in
  float_of_int clipped /. float_of_int (Raster.pixel_count img)

let simulate_display ~backlight_gain img =
  if backlight_gain < 0. || backlight_gain > 1. then
    invalid_arg "Ops.simulate_display: gain out of [0, 1]";
  contrast_enhance ~k:backlight_gain img

let downsample ~factor img =
  if factor <= 0 then invalid_arg "Ops.downsample: factor must be positive";
  let w = Raster.width img and h = Raster.height img in
  if w mod factor <> 0 || h mod factor <> 0 then
    invalid_arg "Ops.downsample: dimensions not divisible by factor";
  let area = factor * factor in
  Raster.init ~width:(w / factor) ~height:(h / factor) (fun ~x ~y ->
      let sr = ref 0 and sg = ref 0 and sb = ref 0 in
      for dy = 0 to factor - 1 do
        for dx = 0 to factor - 1 do
          let p = Raster.get img ~x:((x * factor) + dx) ~y:((y * factor) + dy) in
          sr := !sr + p.Pixel.r;
          sg := !sg + p.Pixel.g;
          sb := !sb + p.Pixel.b
        done
      done;
      Pixel.v (!sr / area) (!sg / area) (!sb / area))

let absolute_difference a b =
  if Raster.width a <> Raster.width b || Raster.height a <> Raster.height b then
    invalid_arg "Ops.absolute_difference: dimension mismatch";
  Raster.init ~width:(Raster.width a) ~height:(Raster.height a) (fun ~x ~y ->
      let pa = Raster.get a ~x ~y and pb = Raster.get b ~x ~y in
      Pixel.v (abs (pa.Pixel.r - pb.Pixel.r)) (abs (pa.Pixel.g - pb.Pixel.g))
        (abs (pa.Pixel.b - pb.Pixel.b)))
