let lerp_pixel a b t =
  let mix ca cb = int_of_float (((1. -. t) *. float_of_int ca) +. (t *. float_of_int cb) +. 0.5) in
  Pixel.v (mix a.Pixel.r b.Pixel.r) (mix a.Pixel.g b.Pixel.g) (mix a.Pixel.b b.Pixel.b)

let fill_vertical_gradient img ~top ~bottom =
  let h = Raster.height img and w = Raster.width img in
  for y = 0 to h - 1 do
    let t = if h = 1 then 0. else float_of_int y /. float_of_int (h - 1) in
    let p = lerp_pixel top bottom t in
    for x = 0 to w - 1 do
      Raster.set img ~x ~y p
    done
  done

let fill_radial_gradient img ~center ~edge ~cx ~cy =
  let w = Raster.width img and h = Raster.height img in
  let fx = cx *. float_of_int (w - 1) and fy = cy *. float_of_int (h - 1) in
  (* Distance to the farthest corner normalises the blend parameter. *)
  let corner_dist x y = sqrt (((fx -. x) ** 2.) +. ((fy -. y) ** 2.)) in
  let dmax =
    List.fold_left max 0.
      [
        corner_dist 0. 0.;
        corner_dist (float_of_int (w - 1)) 0.;
        corner_dist 0. (float_of_int (h - 1));
        corner_dist (float_of_int (w - 1)) (float_of_int (h - 1));
      ]
  in
  let dmax = if dmax <= 0. then 1. else dmax in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let d = corner_dist (float_of_int x) (float_of_int y) /. dmax in
      Raster.set img ~x ~y (lerp_pixel center edge d)
    done
  done

let rect img ~x ~y ~w ~h p =
  let x0 = max 0 x and y0 = max 0 y in
  let x1 = min (Raster.width img) (x + w) and y1 = min (Raster.height img) (y + h) in
  for yy = y0 to y1 - 1 do
    for xx = x0 to x1 - 1 do
      Raster.set img ~x:xx ~y:yy p
    done
  done

let disc img ~cx ~cy ~radius p =
  let r2 = radius * radius in
  let x0 = max 0 (cx - radius) and y0 = max 0 (cy - radius) in
  let x1 = min (Raster.width img - 1) (cx + radius)
  and y1 = min (Raster.height img - 1) (cy + radius) in
  for y = y0 to y1 do
    for x = x0 to x1 do
      let dx = x - cx and dy = y - cy in
      if (dx * dx) + (dy * dy) <= r2 then Raster.set img ~x ~y p
    done
  done

let shaded_disc img ~cx ~cy ~radius ~falloff p =
  if falloff < 0. || falloff > 1. then invalid_arg "Draw.shaded_disc: falloff out of [0, 1]";
  let r2 = radius * radius in
  let x0 = max 0 (cx - radius) and y0 = max 0 (cy - radius) in
  let x1 = min (Raster.width img - 1) (cx + radius)
  and y1 = min (Raster.height img - 1) (cy + radius) in
  for y = y0 to y1 do
    for x = x0 to x1 do
      let dx = x - cx and dy = y - cy in
      let d2 = (dx * dx) + (dy * dy) in
      if d2 <= r2 then begin
        let k = 1. -. (falloff *. float_of_int d2 /. float_of_int (max 1 r2)) in
        Raster.set img ~x ~y (Pixel.scale k p)
      end
    done
  done

let glow img ~cx ~cy ~radius ~intensity =
  if radius > 0 then begin
    let r2 = float_of_int (radius * radius) in
    let x0 = max 0 (cx - radius) and y0 = max 0 (cy - radius) in
    let x1 = min (Raster.width img - 1) (cx + radius)
    and y1 = min (Raster.height img - 1) (cy + radius) in
    for y = y0 to y1 do
      for x = x0 to x1 do
        let dx = x - cx and dy = y - cy in
        let d2 = float_of_int ((dx * dx) + (dy * dy)) in
        if d2 <= r2 then begin
          let falloff = 1. -. (d2 /. r2) in
          let boost = int_of_float (float_of_int intensity *. falloff *. falloff) in
          if boost > 0 then Raster.set img ~x ~y (Pixel.add boost (Raster.get img ~x ~y))
        end
      done
    done
  end

let add_noise img ~rng ~sigma =
  Raster.map_inplace
    (fun p ->
      let d = int_of_float (Prng.gaussian rng ~mu:0. ~sigma) in
      Pixel.add d p)
    img

let vignette img ~strength =
  if strength < 0. || strength > 1. then invalid_arg "Draw.vignette: strength out of [0, 1]";
  let w = Raster.width img and h = Raster.height img in
  let fx = float_of_int (w - 1) /. 2. and fy = float_of_int (h - 1) /. 2. in
  let dmax = sqrt ((fx *. fx) +. (fy *. fy)) in
  let dmax = if dmax <= 0. then 1. else dmax in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let dx = float_of_int x -. fx and dy = float_of_int y -. fy in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) /. dmax in
      let k = 1. -. (strength *. d *. d) in
      Raster.set img ~x ~y (Pixel.scale k (Raster.get img ~x ~y))
    done
  done

let credit_lines img ~rng ~lines ~ink =
  let w = Raster.width img and h = Raster.height img in
  if lines > 0 && h >= 4 then begin
    let spacing = max 4 (h / (lines + 1)) in
    let line_height = max 1 (spacing / 3) in
    for i = 1 to lines do
      let y = i * spacing in
      if y + line_height < h then begin
        (* A line is a run of dashes of random width, roughly centred. *)
        let dashes = 2 + Prng.int rng 4 in
        let x = ref (w / 8) in
        for _ = 1 to dashes do
          let dash_w = (w / 16) + Prng.int rng (max 1 (w / 10)) in
          if !x + dash_w < w * 7 / 8 then
            rect img ~x:!x ~y ~w:dash_w ~h:line_height ink;
          x := !x + dash_w + (w / 20) + Prng.int rng (max 1 (w / 20))
        done
      end
    done
  end
