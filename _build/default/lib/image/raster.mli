(** Mutable 2-D RGB888 images.

    A raster is a densely packed, row-major, 3-bytes-per-pixel buffer.
    This is the frame representation shared by the whole system: the
    synthetic clip generator writes rasters, the codec encodes and
    decodes them, the compensation step rewrites them in place or into
    a copy, and the camera model samples them. *)

type t
(** An image of fixed dimensions. *)

val create : width:int -> height:int -> t
(** [create ~width ~height] is an all-black image. Both dimensions must
    be positive. *)

val fill : t -> Pixel.t -> unit
(** [fill img p] sets every pixel of [img] to [p]. *)

val width : t -> int
val height : t -> int

val pixel_count : t -> int
(** [pixel_count img] is [width img * height img]. *)

val get : t -> x:int -> y:int -> Pixel.t
(** [get img ~x ~y] reads a pixel. Raises [Invalid_argument] when out of
    bounds. *)

val set : t -> x:int -> y:int -> Pixel.t -> unit
(** [set img ~x ~y p] writes a pixel. Raises [Invalid_argument] when out
    of bounds. *)

val in_bounds : t -> x:int -> y:int -> bool

val copy : t -> t
(** [copy img] is a deep copy of [img]. *)

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies all pixels; dimensions must match. *)

val init : width:int -> height:int -> (x:int -> y:int -> Pixel.t) -> t
(** [init ~width ~height f] builds an image whose pixel at [(x, y)] is
    [f ~x ~y]. *)

val map_inplace : (Pixel.t -> Pixel.t) -> t -> unit
(** [map_inplace f img] replaces every pixel [p] by [f p]. *)

val map : (Pixel.t -> Pixel.t) -> t -> t
(** [map f img] is a fresh image with every pixel transformed by [f]. *)

val iter : (x:int -> y:int -> Pixel.t -> unit) -> t -> unit
(** [iter f img] applies [f] to every pixel in row-major order. *)

val fold : ('a -> Pixel.t -> 'a) -> 'a -> t -> 'a
(** [fold f acc img] folds over pixels in row-major order. *)

val luminance_plane : t -> Bytes.t
(** [luminance_plane img] is a [width*height] byte buffer of per-pixel
    BT.601 luma values in row-major order. *)

val channel_max_plane : t -> Bytes.t
(** [channel_max_plane img] is a [width*height] byte buffer of per-pixel
    [max(r, g, b)] values. A pixel clips under a gain [k] exactly when
    [k * channel_max > 255], so histograms of this plane predict
    clipping exactly even for saturated colours, where luma
    under-estimates it (a pure red pixel has luma 76 but clips like a
    224-luma gray). *)

val max_luminance : t -> int
(** [max_luminance img] is the largest per-pixel luma, in [0, 255]. *)

val mean_luminance : t -> float
(** [mean_luminance img] is the average per-pixel luma. *)

val equal : t -> t -> bool
(** Structural equality: same dimensions and identical pixels. *)

val pp : Format.formatter -> t -> unit
(** Prints dimensions and mean luminance; intended for debugging. *)
