type t = { width : int; height : int; data : Bytes.t }

let create ~width ~height =
  if width <= 0 || height <= 0 then
    invalid_arg "Raster.create: dimensions must be positive";
  { width; height; data = Bytes.make (width * height * 3) '\000' }

let width img = img.width
let height img = img.height
let pixel_count img = img.width * img.height

let in_bounds img ~x ~y = x >= 0 && x < img.width && y >= 0 && y < img.height

let offset img ~x ~y =
  if not (in_bounds img ~x ~y) then invalid_arg "Raster: out of bounds";
  ((y * img.width) + x) * 3

let get img ~x ~y =
  let o = offset img ~x ~y in
  {
    Pixel.r = Char.code (Bytes.unsafe_get img.data o);
    g = Char.code (Bytes.unsafe_get img.data (o + 1));
    b = Char.code (Bytes.unsafe_get img.data (o + 2));
  }

let set img ~x ~y { Pixel.r; g; b } =
  let o = offset img ~x ~y in
  Bytes.unsafe_set img.data o (Char.unsafe_chr r);
  Bytes.unsafe_set img.data (o + 1) (Char.unsafe_chr g);
  Bytes.unsafe_set img.data (o + 2) (Char.unsafe_chr b)

let fill img { Pixel.r; g; b } =
  let n = pixel_count img in
  for i = 0 to n - 1 do
    let o = i * 3 in
    Bytes.unsafe_set img.data o (Char.unsafe_chr r);
    Bytes.unsafe_set img.data (o + 1) (Char.unsafe_chr g);
    Bytes.unsafe_set img.data (o + 2) (Char.unsafe_chr b)
  done

let copy img = { img with data = Bytes.copy img.data }

let blit ~src ~dst =
  if src.width <> dst.width || src.height <> dst.height then
    invalid_arg "Raster.blit: dimension mismatch";
  Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)

let init ~width ~height f =
  let img = create ~width ~height in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      set img ~x ~y (f ~x ~y)
    done
  done;
  img

let unsafe_get_index img i =
  let o = i * 3 in
  {
    Pixel.r = Char.code (Bytes.unsafe_get img.data o);
    g = Char.code (Bytes.unsafe_get img.data (o + 1));
    b = Char.code (Bytes.unsafe_get img.data (o + 2));
  }

let unsafe_set_index img i { Pixel.r; g; b } =
  let o = i * 3 in
  Bytes.unsafe_set img.data o (Char.unsafe_chr r);
  Bytes.unsafe_set img.data (o + 1) (Char.unsafe_chr g);
  Bytes.unsafe_set img.data (o + 2) (Char.unsafe_chr b)

let map_inplace f img =
  let n = pixel_count img in
  for i = 0 to n - 1 do
    unsafe_set_index img i (f (unsafe_get_index img i))
  done

let map f img =
  let out = copy img in
  map_inplace f out;
  out

let iter f img =
  for y = 0 to img.height - 1 do
    for x = 0 to img.width - 1 do
      f ~x ~y (unsafe_get_index img ((y * img.width) + x))
    done
  done

let fold f acc img =
  let n = pixel_count img in
  let rec loop acc i =
    if i >= n then acc else loop (f acc (unsafe_get_index img i)) (i + 1)
  in
  loop acc 0

let luminance_plane img =
  let n = pixel_count img in
  let plane = Bytes.create n in
  for i = 0 to n - 1 do
    let y = Pixel.luminance (unsafe_get_index img i) in
    Bytes.unsafe_set plane i (Char.unsafe_chr y)
  done;
  plane

let channel_max_plane img =
  let n = pixel_count img in
  let plane = Bytes.create n in
  for i = 0 to n - 1 do
    let { Pixel.r; g; b } = unsafe_get_index img i in
    let m = max r (max g b) in
    Bytes.unsafe_set plane i (Char.unsafe_chr m)
  done;
  plane

let max_luminance img =
  let n = pixel_count img in
  let rec loop best i =
    if i >= n || best = 255 then best
    else
      let y = Pixel.luminance (unsafe_get_index img i) in
      loop (if y > best then y else best) (i + 1)
  in
  loop 0 0

let mean_luminance img =
  let n = pixel_count img in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + Pixel.luminance (unsafe_get_index img i)
  done;
  float_of_int !total /. float_of_int n

let equal a b =
  a.width = b.width && a.height = b.height && Bytes.equal a.data b.data

let pp ppf img =
  Format.fprintf ppf "<raster %dx%d mean-luma %.1f>" img.width img.height
    (mean_luminance img)
