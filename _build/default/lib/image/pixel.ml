type t = { r : int; g : int; b : int }

let clamp_channel c = if c < 0 then 0 else if c > 255 then 255 else c

let v r g b = { r = clamp_channel r; g = clamp_channel g; b = clamp_channel b }

let black = { r = 0; g = 0; b = 0 }
let white = { r = 255; g = 255; b = 255 }

let gray l =
  let l = clamp_channel l in
  { r = l; g = l; b = l }

(* BT.601 weights; the integer path uses a 16-bit fixed-point form so that
   gray levels map exactly to themselves (the weights sum to 65536). *)
let wr = 19595 (* round (0.299 * 65536) *)
let wg = 38470 (* round (0.587 * 65536) + 1 so that wr+wg+wb = 65536 *)
let wb = 7471 (* round (0.114 * 65536) *)

let luminance { r; g; b } = ((wr * r) + (wg * g) + (wb * b) + 32768) lsr 16

let luminance_exact { r; g; b } =
  (0.299 *. float_of_int r) +. (0.587 *. float_of_int g)
  +. (0.114 *. float_of_int b)

let scale k { r; g; b } =
  assert (k >= 0.);
  let s c = clamp_channel (int_of_float ((k *. float_of_int c) +. 0.5)) in
  { r = s r; g = s g; b = s b }

let add d { r; g; b } =
  { r = clamp_channel (r + d); g = clamp_channel (g + d); b = clamp_channel (b + d) }

let is_clipped_by_scale k { r; g; b } =
  let over c = k *. float_of_int c > 255.5 in
  over r || over g || over b

let equal a b = a.r = b.r && a.g = b.g && a.b = b.b

let pp ppf { r; g; b } = Format.fprintf ppf "#%02x%02x%02x" r g b
