lib/image/roi.mli: Histogram Raster
