lib/image/prng.mli:
