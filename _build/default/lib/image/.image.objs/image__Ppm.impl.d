lib/image/ppm.ml: Buffer Char Fun List Pixel Printf Raster String
