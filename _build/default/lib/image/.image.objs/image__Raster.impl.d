lib/image/raster.ml: Bytes Char Format Pixel
