lib/image/ops.mli: Raster
