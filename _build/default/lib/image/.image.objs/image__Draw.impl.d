lib/image/draw.ml: List Pixel Prng Raster
