lib/image/metrics.mli: Raster
