lib/image/ppm.mli: Raster
