lib/image/draw.mli: Pixel Prng Raster
