lib/image/histogram.ml: Array Bytes Char Format Raster
