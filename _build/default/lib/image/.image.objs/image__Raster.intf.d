lib/image/raster.mli: Bytes Format Pixel
