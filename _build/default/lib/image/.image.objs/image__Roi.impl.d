lib/image/roi.ml: Histogram List Pixel Raster
