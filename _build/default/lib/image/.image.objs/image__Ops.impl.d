lib/image/ops.ml: Array Pixel Raster
