lib/image/histogram.mli: Bytes Format Raster
