lib/image/prng.ml: Float Int64
