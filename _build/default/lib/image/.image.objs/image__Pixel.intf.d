lib/image/pixel.mli: Format
