lib/image/pixel.ml: Format
