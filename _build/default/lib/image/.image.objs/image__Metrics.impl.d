lib/image/metrics.ml: Bytes Char Pixel Raster
