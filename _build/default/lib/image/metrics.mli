(** Pixel-level image comparison metrics.

    The paper contrasts its histogram-based validation with the
    "pixel level difference" metrics of related work (QABS optimises
    PSNR). Both families are provided so the baselines can be compared
    on their own terms. *)

val mse : Raster.t -> Raster.t -> float
(** [mse a b] is the mean squared error over all channels of all
    pixels. Dimensions must match. *)

val psnr : Raster.t -> Raster.t -> float
(** [psnr a b] is the peak signal-to-noise ratio in dB (peak 255).
    Identical images give [infinity]. Dimensions must match. *)

val mean_absolute_error : Raster.t -> Raster.t -> float
(** [mean_absolute_error a b] is the mean per-channel absolute
    difference. Dimensions must match. *)

val max_absolute_error : Raster.t -> Raster.t -> int
(** [max_absolute_error a b] is the largest per-channel absolute
    difference. Dimensions must match. *)

val ssim : Raster.t -> Raster.t -> float
(** [ssim a b] is the mean structural similarity index over the
    luminance planes (Wang et al.), computed on 8x8 windows with
    stride 4 and the standard stabilisers [C1 = (0.01*255)^2],
    [C2 = (0.03*255)^2]. 1.0 means structurally identical; typical
    visible degradation lands below ~0.9. Dimensions must match and be
    at least 8x8. *)
