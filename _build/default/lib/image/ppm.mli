(** PPM (P6) image file I/O.

    The one image format that needs no dependency: binary PPM, readable
    by every viewer and converter. Used by the tools to dump frames and
    camera snapshots (e.g. the Fig 4 pair) for visual inspection. *)

val to_string : Raster.t -> string
(** [to_string img] is the binary P6 serialisation of [img]. *)

val of_string : string -> (Raster.t, string) result
(** [of_string data] parses a binary P6 file (maxval 255, comments
    allowed in the header). Malformed input yields [Error]. *)

val write : path:string -> Raster.t -> unit
(** [write ~path img] writes the P6 file, truncating any existing
    file. Raises [Sys_error] on I/O failure. *)

val read : path:string -> (Raster.t, string) result
(** [read ~path] loads a P6 file. I/O failures are reported as
    [Error], not exceptions. *)
