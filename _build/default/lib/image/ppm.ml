let to_string img =
  let w = Raster.width img and h = Raster.height img in
  let buf = Buffer.create ((w * h * 3) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" w h);
  Raster.iter
    (fun ~x:_ ~y:_ { Pixel.r; g; b } ->
      Buffer.add_char buf (Char.chr r);
      Buffer.add_char buf (Char.chr g);
      Buffer.add_char buf (Char.chr b))
    img;
  Buffer.contents buf

exception Malformed of string

let parse data =
  let pos = ref 0 in
  let len = String.length data in
  let peek () = if !pos >= len then raise (Malformed "truncated header") else data.[!pos] in
  let advance () = incr pos in
  let rec skip_space_and_comments () =
    if !pos < len then
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_space_and_comments ()
      | '#' ->
        while !pos < len && peek () <> '\n' do
          advance ()
        done;
        skip_space_and_comments ()
      | _ -> ()
  in
  let token () =
    skip_space_and_comments ();
    let start = !pos in
    while !pos < len && not (List.mem (peek ()) [ ' '; '\t'; '\n'; '\r' ]) do
      advance ()
    done;
    if !pos = start then raise (Malformed "missing header token");
    String.sub data start (!pos - start)
  in
  if token () <> "P6" then raise (Malformed "not a binary PPM (P6)");
  let int_token name =
    match int_of_string_opt (token ()) with
    | Some v when v > 0 -> v
    | Some _ | None -> raise (Malformed ("bad " ^ name))
  in
  let width = int_token "width" in
  let height = int_token "height" in
  let maxval = int_token "maxval" in
  if maxval <> 255 then raise (Malformed "only maxval 255 supported");
  (* Exactly one whitespace byte separates the header from the pixels. *)
  if !pos >= len then raise (Malformed "truncated header");
  advance ();
  if len - !pos < width * height * 3 then raise (Malformed "truncated pixel data");
  let base = !pos in
  Raster.init ~width ~height (fun ~x ~y ->
      let o = base + (((y * width) + x) * 3) in
      Pixel.v (Char.code data.[o]) (Char.code data.[o + 1]) (Char.code data.[o + 2]))

let of_string data =
  match parse data with
  | img -> Ok img
  | exception Malformed msg -> Error msg

let write ~path img =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string img))

let read ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string (really_input_string ic n))
