(** The ten evaluation workloads of the paper (Fig 9 / Fig 10).

    Each synthetic profile mirrors the qualitative luminance character
    the paper reports for the corresponding trailer: `ice_age` and
    `hunter_subres` have bright backgrounds ("pixels are concentrated
    in the high luminance range", so savings are limited), while the
    rest contain frequent dark scenes with sparse highlights (where the
    technique shines, the paper's best case being up to ~65 % backlight
    power saved). Durations are scaled to 20–40 s so a full Fig 9 sweep
    stays tractable; the technique is duration-insensitive because all
    decisions are per-scene. *)

val themovie : Profile.t
val catwoman : Profile.t
val hunter_subres : Profile.t
val i_robot : Profile.t
val ice_age : Profile.t
val officexp : Profile.t
val returnoftheking : Profile.t
val shrek2 : Profile.t
val spiderman2 : Profile.t
val theincredibles_tlr2 : Profile.t

val all : Profile.t list
(** All ten, in the order of the paper's figures. *)

val find : string -> Profile.t option
(** [find name] looks a workload up by its paper name
    (e.g. ["ice_age"], ["theincredibles-tlr2"]). *)

val names : string list

val parametric :
  ?seconds:float ->
  ?motion:float ->
  base_level:int ->
  highlight_peak:int ->
  unit ->
  Profile.t
(** [parametric ~base_level ~highlight_peak ()] is a single-scene
    profile whose background sits at [base_level] with sparse
    highlights peaking [highlight_peak] above it — the knob the
    content-sweep bench turns to trace savings as a function of
    content brightness. [motion] is the subject speed (default 6
    crossings per 100 frames); duration defaults to 10 s. *)
