(** Interpreter turning a {!Profile.t} into a renderable {!Clip.t}.

    Rendering is deterministic: frame [i] of a given profile at given
    dimensions is always the same raster, regardless of rendering
    order, because each frame derives its random stream from
    [(profile.seed, scene index, frame-in-scene)]. *)

val render :
  ?width:int -> ?height:int -> ?fps:float -> Profile.t -> Clip.t
(** [render ?width ?height ?fps profile] compiles the profile into a
    lazy clip. Defaults: 160x120 at 12 fps — small enough for the
    benches to sweep ten clips by five quality levels, while keeping
    the histogram shapes of larger frames. Raises [Invalid_argument]
    if the profile fails {!Profile.validate}. *)

val scene_boundaries : ?fps:float -> Profile.t -> (int * int) list
(** [scene_boundaries ?fps profile] is the ground-truth
    [(first_frame, last_frame)] interval of each scene — used by tests
    to score the scene-detection heuristic against the generator's own
    segmentation. *)
