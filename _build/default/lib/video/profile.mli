(** Declarative luminance profiles for synthetic clips.

    The paper's evaluation runs on ten movie trailers that cannot be
    redistributed; the reproduction replaces each with a profile — a
    sequence of scene specifications that control exactly the
    properties the technique depends on: the background luminance
    distribution, the number and brightness of sparse highlights,
    subject motion (which perturbs per-frame maxima), fades (which
    stress scene detection) and rolling credits (the paper's noted
    failure case). A profile is pure data; {!Clip_gen} interprets it. *)

type background =
  | Flat of int  (** uniform gray level *)
  | Vertical of { top : int; bottom : int }
      (** vertical gray gradient, e.g. sky over ground *)
  | Radial of { center : int; edge : int }
      (** radial gray gradient, e.g. a lamp-lit interior *)

type subject = {
  level : int;  (** gray level of the subject, 0–255 *)
  size : int;  (** radius in thousandths of the frame width *)
  speed : float;  (** horizontal crossings per 100 frames *)
  vertical_phase : float;  (** vertical placement in [0, 1] *)
}
(** A moving disc; subjects give scenes their frame-to-frame variation
    so per-frame maxima fluctuate realistically. *)

type highlights = {
  count : int;  (** number of bright spots *)
  peak : int;  (** additive peak intensity, 0–255 *)
  radius : int;  (** radius in thousandths of the frame width *)
  drift : float;  (** positional drift per frame, as fraction of width *)
}
(** Sparse bright points ("highlights concentrated in a few points or
    spots", §2) — the pixels the clipping budget may sacrifice. *)

type fade = No_fade | Fade_in | Fade_out

type scene = {
  seconds : float;  (** scene duration *)
  background : background;
  subjects : subject list;
  highlights : highlights option;
  noise_sigma : float;  (** film-grain standard deviation *)
  vignette : float;  (** corner darkening in [0, 1] *)
  fade : fade;
  credits : bool;  (** overlay rolling end-credit dashes *)
}

type t = {
  name : string;
  seed : int;  (** master seed for all stochastic content *)
  scenes : scene list;
}

val scene :
  ?subjects:subject list ->
  ?highlights:highlights ->
  ?noise_sigma:float ->
  ?vignette:float ->
  ?fade:fade ->
  ?credits:bool ->
  seconds:float ->
  background ->
  scene
(** Scene constructor with neutral defaults (no subjects, no
    highlights, sigma 2.0, no vignette, no fade, no credits). *)

val total_seconds : t -> float
(** Sum of scene durations. *)

val scene_count : t -> int

val validate : t -> (unit, string) result
(** [validate p] checks ranges: positive durations, levels within
    [0, 255], at least one scene. *)
