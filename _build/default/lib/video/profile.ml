type background =
  | Flat of int
  | Vertical of { top : int; bottom : int }
  | Radial of { center : int; edge : int }

type subject = {
  level : int;
  size : int;
  speed : float;
  vertical_phase : float;
}

type highlights = { count : int; peak : int; radius : int; drift : float }

type fade = No_fade | Fade_in | Fade_out

type scene = {
  seconds : float;
  background : background;
  subjects : subject list;
  highlights : highlights option;
  noise_sigma : float;
  vignette : float;
  fade : fade;
  credits : bool;
}

type t = { name : string; seed : int; scenes : scene list }

let scene ?(subjects = []) ?highlights ?(noise_sigma = 2.0) ?(vignette = 0.)
    ?(fade = No_fade) ?(credits = false) ~seconds background =
  { seconds; background; subjects; highlights; noise_sigma; vignette; fade; credits }

let total_seconds p = List.fold_left (fun acc s -> acc +. s.seconds) 0. p.scenes

let scene_count p = List.length p.scenes

let level_ok l = l >= 0 && l <= 255

let validate_scene i s =
  let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "scene %d: %s" i m)) fmt in
  if s.seconds <= 0. then err "non-positive duration"
  else if s.noise_sigma < 0. then err "negative noise sigma"
  else if s.vignette < 0. || s.vignette > 1. then err "vignette out of [0, 1]"
  else
    let bg_ok =
      match s.background with
      | Flat l -> level_ok l
      | Vertical { top; bottom } -> level_ok top && level_ok bottom
      | Radial { center; edge } -> level_ok center && level_ok edge
    in
    if not bg_ok then err "background level out of [0, 255]"
    else if List.exists (fun sub -> not (level_ok sub.level) || sub.size <= 0) s.subjects
    then err "invalid subject"
    else
      match s.highlights with
      | Some h when h.count < 0 || not (level_ok h.peak) || h.radius <= 0 ->
        err "invalid highlights"
      | Some _ | None -> Ok ()

let validate p =
  if p.scenes = [] then Error "profile has no scenes"
  else
    let rec check i = function
      | [] -> Ok ()
      | s :: rest -> (
        match validate_scene i s with Ok () -> check (i + 1) rest | Error _ as e -> e)
    in
    check 0 p.scenes
