open Profile

(* Building blocks shared by several workloads. Levels are gray values
   in 0-255; remember that savings come from scenes whose *effective*
   maximum luminance (after the clipping budget) sits well below 255. *)

let hl ?(drift = 0.002) ~count ~peak ~radius () = { count; peak; radius; drift }

let subject ?(speed = 3.) ~level ~size ~at () =
  { level; size; speed; vertical_phase = at }

(* Bright content must cover more area than the largest clipping
   budget (20 %): the solver then lands *inside* the lit subjects
   instead of discarding them wholesale, which keeps best-case savings
   in the paper's up-to-65 % band rather than collapsing scenes to
   their background level. Subject radii are sized so lit pixels are
   roughly 10-25 % of the frame in dark scenes. *)
let dark_interior ~seconds ~base ~lamps =
  scene ~seconds
    (Radial { center = base + 30; edge = base })
    ~subjects:
      [
        subject ~level:(base + 118) ~size:200 ~at:0.55 ();
        subject ~level:(base + 75) ~size:130 ~at:0.35 ~speed:2. ();
      ]
    ~highlights:(hl ~count:lamps ~peak:210 ~radius:18 ())
    ~vignette:0.35 ~noise_sigma:3.

(* Night action: very dark, fast subjects, sparse specular highlights. *)
let night_action ~seconds ~base =
  scene ~seconds
    (Vertical { top = base; bottom = base + 15 })
    ~subjects:
      [
        subject ~level:(base + 132) ~size:190 ~at:0.5 ~speed:9. ();
        subject ~level:(base + 85) ~size:140 ~at:0.7 ~speed:14. ();
      ]
    ~highlights:(hl ~count:4 ~peak:225 ~radius:12 ~drift:0.004 ())
    ~vignette:0.3 ~noise_sigma:4.

(* Bright exterior: sky-over-ground gradient near the top of the range;
   the histogram is concentrated high, so little can be clipped. *)
let bright_exterior ~seconds ~sky ~ground =
  scene ~seconds
    (Vertical { top = sky; bottom = ground })
    ~subjects:[ subject ~level:(ground - 60) ~size:140 ~at:0.65 ~speed:5. () ]
    ~noise_sigma:2.5

(* Mid-bright interior (office, daytime rooms). *)
let office ~seconds ~base =
  scene ~seconds
    (Flat base)
    ~subjects:
      [
        subject ~level:(min 255 (base + 80)) ~size:100 ~at:0.45 ~speed:2. ();
        subject ~level:(max 0 (base - 60)) ~size:160 ~at:0.75 ~speed:1. ();
      ]
    ~highlights:(hl ~count:2 ~peak:120 ~radius:25 ())
    ~noise_sigma:2.

(* A short, very bright burst (explosion, flash). *)
let explosion ~seconds =
  scene ~seconds
    (Radial { center = 250; edge = 120 })
    ~highlights:(hl ~count:6 ~peak:255 ~radius:30 ~drift:0.01 ())
    ~noise_sigma:5.

let credits ~seconds =
  scene ~seconds (Flat 8) ~credits:true ~noise_sigma:1.5

let fade_to_black ~seconds ~from_level =
  scene ~seconds (Flat from_level) ~fade:Fade_out ~noise_sigma:2.

(* --- The ten workloads ------------------------------------------------ *)

let themovie =
  {
    name = "themovie";
    seed = 101;
    scenes =
      [
        scene ~seconds:2. (Flat 12) ~fade:Fade_in ~noise_sigma:2.;
        dark_interior ~seconds:6. ~base:25 ~lamps:3;
        office ~seconds:5. ~base:110;
        night_action ~seconds:7. ~base:18;
        dark_interior ~seconds:5. ~base:35 ~lamps:2;
        fade_to_black ~seconds:2. ~from_level:60;
        credits ~seconds:3.;
      ];
  }

let catwoman =
  {
    name = "catwoman";
    seed = 102;
    scenes =
      [
        night_action ~seconds:8. ~base:12;
        dark_interior ~seconds:6. ~base:20 ~lamps:4;
        night_action ~seconds:7. ~base:15;
        explosion ~seconds:1.;
        night_action ~seconds:6. ~base:10;
        credits ~seconds:2.;
      ];
  }

let hunter_subres =
  (* "the background in the videos is bright, so the results are
     limited" — daylight hunting scenes dominated by sky and snow. *)
  {
    name = "hunter_subres";
    seed = 103;
    scenes =
      [
        bright_exterior ~seconds:8. ~sky:235 ~ground:180;
        bright_exterior ~seconds:7. ~sky:220 ~ground:160;
        office ~seconds:4. ~base:140;
        bright_exterior ~seconds:7. ~sky:240 ~ground:190;
      ];
  }

let i_robot =
  {
    name = "i_robot";
    seed = 104;
    scenes =
      [
        dark_interior ~seconds:6. ~base:30 ~lamps:3;
        night_action ~seconds:6. ~base:22;
        office ~seconds:4. ~base:95;
        explosion ~seconds:1.;
        dark_interior ~seconds:7. ~base:25 ~lamps:2;
        night_action ~seconds:5. ~base:18;
      ];
  }

let ice_age =
  (* Snowscapes: histogram pinned to the top; "almost no improvement"
     in Fig 10. *)
  {
    name = "ice_age";
    seed = 105;
    scenes =
      [
        bright_exterior ~seconds:9. ~sky:250 ~ground:215;
        bright_exterior ~seconds:8. ~sky:245 ~ground:225;
        office ~seconds:3. ~base:190;
        bright_exterior ~seconds:9. ~sky:252 ~ground:230;
      ];
  }

let officexp =
  {
    name = "officexp";
    seed = 106;
    scenes =
      [
        office ~seconds:6. ~base:120;
        dark_interior ~seconds:4. ~base:45 ~lamps:2;
        office ~seconds:6. ~base:100;
        scene ~seconds:4. (Flat 70)
          ~subjects:[ subject ~level:200 ~size:80 ~at:0.4 ~speed:2. () ]
          ~noise_sigma:2.;
        credits ~seconds:2.;
      ];
  }

let returnoftheking =
  (* Dark epic fantasy: the paper's best case class. *)
  {
    name = "returnoftheking";
    seed = 107;
    scenes =
      [
        scene ~seconds:2. (Flat 10) ~fade:Fade_in ~noise_sigma:2.;
        night_action ~seconds:8. ~base:8;
        dark_interior ~seconds:7. ~base:15 ~lamps:3;
        night_action ~seconds:8. ~base:12;
        explosion ~seconds:1.;
        dark_interior ~seconds:6. ~base:18 ~lamps:2;
        fade_to_black ~seconds:2. ~from_level:40;
      ];
  }

let shrek2 =
  {
    name = "shrek2";
    seed = 108;
    scenes =
      [
        bright_exterior ~seconds:5. ~sky:200 ~ground:130;
        dark_interior ~seconds:5. ~base:40 ~lamps:3;
        office ~seconds:5. ~base:115;
        night_action ~seconds:5. ~base:30;
        bright_exterior ~seconds:4. ~sky:190 ~ground:120;
        credits ~seconds:2.;
      ];
  }

let spiderman2 =
  {
    name = "spiderman2";
    seed = 109;
    scenes =
      [
        night_action ~seconds:7. ~base:20;
        office ~seconds:4. ~base:105;
        night_action ~seconds:6. ~base:16;
        explosion ~seconds:1.;
        dark_interior ~seconds:6. ~base:28 ~lamps:3;
        fade_to_black ~seconds:2. ~from_level:50;
      ];
  }

let theincredibles_tlr2 =
  {
    name = "theincredibles-tlr2";
    seed = 110;
    scenes =
      [
        office ~seconds:5. ~base:125;
        dark_interior ~seconds:5. ~base:35 ~lamps:2;
        bright_exterior ~seconds:4. ~sky:210 ~ground:140;
        night_action ~seconds:6. ~base:25;
        dark_interior ~seconds:5. ~base:30 ~lamps:3;
        credits ~seconds:2.;
      ];
  }

let all =
  [
    themovie;
    catwoman;
    hunter_subres;
    i_robot;
    ice_age;
    officexp;
    returnoftheking;
    shrek2;
    spiderman2;
    theincredibles_tlr2;
  ]

let names = List.map (fun p -> p.name) all

let find name = List.find_opt (fun p -> String.equal p.name name) all

let parametric ?(seconds = 10.) ?(motion = 6.) ~base_level ~highlight_peak () =
  let base_level = max 0 (min 255 base_level) in
  let subject_level = min 255 (base_level + 90) in
  {
    name = Printf.sprintf "parametric-b%d-h%d" base_level highlight_peak;
    seed = 40_000 + (base_level * 257) + highlight_peak;
    scenes =
      [
        scene ~seconds
          (Vertical { top = base_level; bottom = min 255 (base_level + 20) })
          ~subjects:
            [ subject ~level:subject_level ~size:180 ~at:0.5 ~speed:motion () ]
          ~highlights:(hl ~count:3 ~peak:highlight_peak ~radius:15 ())
          ~noise_sigma:3.;
      ];
  }
