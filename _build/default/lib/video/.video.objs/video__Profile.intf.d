lib/video/profile.mli:
