lib/video/workloads.mli: Profile
