lib/video/profile.ml: List Printf
