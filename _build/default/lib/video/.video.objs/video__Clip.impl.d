lib/video/clip.ml: Array Image
