lib/video/clip.mli: Image
