lib/video/clip_gen.mli: Clip Profile
