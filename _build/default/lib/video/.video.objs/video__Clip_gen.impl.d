lib/video/clip_gen.ml: Array Clip Float Image List Profile
