lib/video/workloads.ml: List Printf Profile String
