let default_width = 160
let default_height = 120
let default_fps = 12.

type compiled_scene = {
  spec : Profile.scene;
  first_frame : int;
  frames : int;
  scene_index : int;
}

let compile_scenes ~fps profile =
  let rec loop idx first acc = function
    | [] -> List.rev acc
    | (s : Profile.scene) :: rest ->
      let frames = max 1 (int_of_float ((s.seconds *. fps) +. 0.5)) in
      let c = { spec = s; first_frame = first; frames; scene_index = idx } in
      loop (idx + 1) (first + frames) (c :: acc) rest
  in
  loop 0 0 [] profile.Profile.scenes

let scene_boundaries ?(fps = default_fps) profile =
  compile_scenes ~fps profile
  |> List.map (fun c -> (c.first_frame, c.first_frame + c.frames - 1))

(* Frame-local generator: seeded from the profile seed, the scene index
   and the frame index within the scene, so frames are order-independent. *)
let frame_rng ~seed ~scene_index ~frame_in_scene =
  Image.Prng.create ~seed:((seed * 1_000_003) + (scene_index * 7919) + frame_in_scene)

(* Scene-local generator: stable across all frames of a scene; used for
   placement decisions that must not jitter frame to frame. *)
let scene_rng ~seed ~scene_index =
  Image.Prng.create ~seed:((seed * 1_000_003) + (scene_index * 7919) + 999_331)

let render_background img = function
  | Profile.Flat l -> Image.Raster.fill img (Image.Pixel.gray l)
  | Profile.Vertical { top; bottom } ->
    Image.Draw.fill_vertical_gradient img ~top:(Image.Pixel.gray top)
      ~bottom:(Image.Pixel.gray bottom)
  | Profile.Radial { center; edge } ->
    Image.Draw.fill_radial_gradient img ~center:(Image.Pixel.gray center)
      ~edge:(Image.Pixel.gray edge) ~cx:0.5 ~cy:0.4

let render_subject img ~frame_in_scene ~scene_frames (s : Profile.subject) =
  let w = Image.Raster.width img and h = Image.Raster.height img in
  ignore scene_frames;
  let radius = max 1 (s.size * w / 1000) in
  (* The subject sweeps horizontally; [speed] crossings per 100 frames. *)
  let travel = float_of_int frame_in_scene *. s.speed /. 100. in
  let pos = travel -. Float.of_int (int_of_float travel) in
  let cx = int_of_float (pos *. float_of_int (w - 1)) in
  let cy = int_of_float (s.vertical_phase *. float_of_int (h - 1)) in
  (* Shaded rather than flat: real subjects have smooth luminance
     falloff, which spreads the histogram instead of spiking it. *)
  Image.Draw.shaded_disc img ~cx ~cy ~radius ~falloff:0.35
    (Image.Pixel.gray s.level)

let render_highlights img ~rng_scene ~frame_in_scene (h : Profile.highlights) =
  let w = Image.Raster.width img and hgt = Image.Raster.height img in
  let radius = max 1 (h.radius * w / 1000) in
  for _ = 1 to h.count do
    (* Base position is stable per scene; drift moves it slowly. *)
    let bx = Image.Prng.int rng_scene w and by = Image.Prng.int rng_scene hgt in
    let drift_px = h.drift *. float_of_int w *. float_of_int frame_in_scene in
    let cx = (bx + int_of_float drift_px) mod w in
    Image.Draw.glow img ~cx ~cy:by ~radius ~intensity:h.peak
  done

let fade_gain ~fade ~frame_in_scene ~scene_frames =
  let t =
    if scene_frames <= 1 then 1.
    else float_of_int frame_in_scene /. float_of_int (scene_frames - 1)
  in
  match (fade : Profile.fade) with
  | No_fade -> 1.
  | Fade_in -> t
  | Fade_out -> 1. -. t

let render_frame ~seed ~width ~height scene frame_in_scene =
  let img = Image.Raster.create ~width ~height in
  let spec = scene.spec in
  render_background img spec.Profile.background;
  List.iter
    (render_subject img ~frame_in_scene ~scene_frames:scene.frames)
    spec.Profile.subjects;
  (match spec.Profile.highlights with
  | None -> ()
  | Some h ->
    let rng_scene = scene_rng ~seed ~scene_index:scene.scene_index in
    render_highlights img ~rng_scene ~frame_in_scene h);
  if spec.Profile.vignette > 0. then Image.Draw.vignette img ~strength:spec.Profile.vignette;
  if spec.Profile.credits then begin
    let rng_scene = scene_rng ~seed ~scene_index:scene.scene_index in
    Image.Draw.credit_lines img ~rng:rng_scene ~lines:(height / 12)
      ~ink:(Image.Pixel.gray 230)
  end;
  let gain = fade_gain ~fade:spec.Profile.fade ~frame_in_scene ~scene_frames:scene.frames in
  if gain < 1. then Image.Ops.contrast_enhance_inplace ~k:gain img;
  if spec.Profile.noise_sigma > 0. then begin
    let rng = frame_rng ~seed ~scene_index:scene.scene_index ~frame_in_scene in
    Image.Draw.add_noise img ~rng ~sigma:spec.Profile.noise_sigma
  end;
  img

let render ?(width = default_width) ?(height = default_height) ?(fps = default_fps)
    profile =
  (match Profile.validate profile with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Clip_gen.render: " ^ msg));
  let scenes = compile_scenes ~fps profile in
  let frame_count =
    match List.rev scenes with
    | [] -> 0
    | last :: _ -> last.first_frame + last.frames
  in
  let scenes_arr = Array.of_list scenes in
  let find_scene i =
    (* Scenes are few; linear scan from a binary search would be
       over-engineering, but the benches render thousands of frames, so
       bisect on first_frame. *)
    let rec bisect lo hi =
      if lo >= hi then scenes_arr.(lo)
      else
        let mid = (lo + hi + 1) / 2 in
        if scenes_arr.(mid).first_frame <= i then bisect mid hi else bisect lo (mid - 1)
    in
    bisect 0 (Array.length scenes_arr - 1)
  in
  let render_at i =
    let scene = find_scene i in
    render_frame ~seed:profile.Profile.seed ~width ~height scene (i - scene.first_frame)
  in
  Clip.make ~name:profile.Profile.name ~width ~height ~fps ~frame_count render_at
