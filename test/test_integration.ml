(* Cross-library integration tests: the full server -> network ->
   client flow on real synthetic workloads, and the headline claims of
   the paper checked end to end. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let device = Display.Device.ipaq_h5555

(* Small renderings of the actual paper workloads keep these tests
   fast while preserving the luminance structure. *)
let small_clip profile = Video.Clip_gen.render ~width:48 ~height:36 ~fps:8. profile

let test_full_pipeline_end_to_end () =
  (* Server stores a clip, negotiates a session, prepares the
     compensated annotated stream, the codec ships it, the client
     decodes, applies annotations and plays back — and the quality
     check on camera snapshots passes. *)
  let clip = small_clip Video.Workloads.themovie in
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server clip;
  let hello =
    { Streaming.Negotiation.device; requested_quality = Annotation.Quality_level.Loss_10 }
  in
  let session =
    match Streaming.Negotiation.negotiate hello with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let prepared =
    match Streaming.Server.prepare server ~name:"themovie" ~session with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (* The annotation side channel survives the wire. *)
  let wire_track =
    match Annotation.Encoding.decode prepared.Streaming.Server.annotation_bytes with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (* Client playback using only wire data. *)
  let registers = Annotation.Track.register_track wire_track in
  let report =
    Streaming.Playback.run_with_registers ~device
      ~quality:session.Streaming.Negotiation.quality ~clip_name:"themovie"
      ~fps:clip.Video.Clip.fps
      ~annotation_bytes:(String.length prepared.Streaming.Server.annotation_bytes)
      registers
  in
  check bool "meaningful savings" true
    (report.Streaming.Playback.backlight_savings > 0.2);
  (* Spot-check perceived quality with the camera on a mid-clip frame. *)
  let i = clip.Video.Clip.frame_count / 3 in
  let original = clip.Video.Clip.render i in
  let compensated = prepared.Streaming.Server.compensated.Video.Clip.render i in
  let entry = Annotation.Track.lookup wire_track i in
  let rig = Camera.Snapshot.noiseless_rig device in
  let verdict =
    Camera.Quality.evaluate ~rig ~device ~original ~compensated
      ~reduced_register:entry.Annotation.Track.register
  in
  check bool
    (Format.asprintf "camera verdict acceptable: %a" Camera.Quality.pp_verdict verdict)
    true
    (Camera.Quality.acceptable verdict)

let test_codec_carries_compensated_stream () =
  (* Ship the compensated frames through the codec and verify the
     decoded stream still achieves the intended perceived intensity. *)
  let clip = small_clip Video.Workloads.officexp in
  let track = Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip in
  let compensated = Annotation.Compensate.clip clip track in
  let encoded = Codec.Encoder.encode_clip compensated in
  let decoded = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  let i = 4 in
  let entry = Annotation.Track.lookup track i in
  let err =
    Annotation.Compensate.perceived_error ~device ~original:(clip.Video.Clip.render i)
      ~compensated:decoded.Codec.Decoder.frames.(i)
      ~register:entry.Annotation.Track.register
  in
  check bool (Printf.sprintf "perceived error %.4f small after codec" err) true
    (err < 0.05)

let test_annotation_overhead_hundreds_of_bytes () =
  (* §4.3's headline: RLE-compressed annotations are hundreds of bytes
     against a multi-megabyte-class video stream. *)
  let clip = small_clip Video.Workloads.spiderman2 in
  let track = Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip in
  let annotation_bytes = Annotation.Encoding.encoded_size track in
  let encoded = Codec.Encoder.encode_clip clip in
  let video_bytes = Codec.Encoder.total_bytes encoded in
  check bool
    (Printf.sprintf "annotations %dB are hundreds of bytes" annotation_bytes)
    true
    (annotation_bytes < 1000);
  let ratio = float_of_int annotation_bytes /. float_of_int video_bytes in
  check bool (Printf.sprintf "overhead ratio %.5f below 1%%" ratio) true (ratio < 0.01)

let test_dark_clips_beat_bright_clips () =
  (* The Fig 9 ordering on real workloads at 10% quality. *)
  let savings profile =
    let clip = small_clip profile in
    (Streaming.Playback.run ~device ~quality:Annotation.Quality_level.Loss_10 clip)
      .Streaming.Playback.backlight_savings
  in
  let rotk = savings Video.Workloads.returnoftheking in
  let ice = savings Video.Workloads.ice_age in
  let hunter = savings Video.Workloads.hunter_subres in
  check bool (Printf.sprintf "rotk %.2f > ice %.2f + 0.3" rotk ice) true
    (rotk > ice +. 0.3);
  check bool "bright clips limited" true (ice < 0.15 && hunter < 0.35)

let test_savings_monotone_in_quality () =
  let clip = small_clip Video.Workloads.catwoman in
  let profiled = Annotation.Annotator.profile clip in
  let savings =
    List.map
      (fun q ->
        (Streaming.Playback.run_profiled ~device ~quality:q profiled)
          .Streaming.Playback.backlight_savings)
      Annotation.Quality_level.standard_grid
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  check bool "savings grow with allowed loss" true (non_decreasing savings)

let test_annotated_beats_history_on_quality () =
  (* A2's point: with equal-ish power, annotations avoid the quality
     violations history prediction incurs at scene changes. *)
  let profiled = Annotation.Annotator.profile (small_clip Video.Workloads.i_robot) in
  let annotated =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params)
  in
  let history =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      (Baselines.Strategy.History_prediction { window = 6 })
  in
  check bool "history mispredicts more" true
    (history.Baselines.Runner.violations > annotated.Baselines.Runner.violations)

let test_annotated_beats_client_analysis_on_device_power () =
  (* Same per-frame register policy on both sides; the only difference
     is where the analysis runs, so the client-side CPU tax is the
     whole story (§3). *)
  let profiled = Annotation.Annotator.profile (small_clip Video.Workloads.shrek2) in
  let annotated =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      Baselines.Strategy.Annotated_per_frame
  in
  let client =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      (Baselines.Strategy.Client_analysis { cpu_overhead_fraction = 0.2 })
  in
  check bool "annotation avoids the client CPU tax" true
    (annotated.Baselines.Runner.report.Streaming.Playback.total_savings
     > client.Baselines.Runner.report.Streaming.Playback.total_savings)

let test_per_frame_switches_far_more () =
  (* A1: per-frame annotation flickers; scene-level stays calm. *)
  let profiled = Annotation.Annotator.profile (small_clip Video.Workloads.themovie) in
  let scene =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params)
  in
  let frame =
    Baselines.Runner.run ~device ~quality:Annotation.Quality_level.Loss_10 profiled
      Baselines.Strategy.Annotated_per_frame
  in
  check bool "per-frame switches more" true
    (frame.Baselines.Runner.report.Streaming.Playback.switch_count
     > 3 * scene.Baselines.Runner.report.Streaming.Playback.switch_count)

let test_recovered_transfer_drives_pipeline () =
  (* Characterise the display through the camera, build a device with
     the recovered transfer, and run the pipeline: savings must be
     within a few points of the factory-curve run. *)
  let rig = Camera.Snapshot.noiseless_rig device in
  let recovered =
    Display.Characterize.recover_transfer ~steps:18
      (Camera.Snapshot.measure_patch rig device)
  in
  let recovered_device =
    {
      device with
      Display.Device.name = "ipaq_h5555+recovered";
      panel = { device.Display.Device.panel with Display.Panel.transfer = recovered };
    }
  in
  let clip = small_clip Video.Workloads.theincredibles_tlr2 in
  let profiled = Annotation.Annotator.profile clip in
  let factory =
    (Streaming.Playback.run_profiled ~device ~quality:Annotation.Quality_level.Loss_10 profiled)
      .Streaming.Playback.backlight_savings
  in
  let recovered_savings =
    (Streaming.Playback.run_profiled ~device:recovered_device
       ~quality:Annotation.Quality_level.Loss_10 profiled)
      .Streaming.Playback.backlight_savings
  in
  check bool
    (Printf.sprintf "factory %.3f vs recovered %.3f" factory recovered_savings)
    true
    (abs_float (factory -. recovered_savings) < 0.05)

let test_battery_life_extension_visible () =
  let clip = small_clip Video.Workloads.returnoftheking in
  let report = Streaming.Playback.run ~device ~quality:Annotation.Quality_level.Loss_10 clip in
  let baseline_power =
    report.Streaming.Playback.total_baseline_mj /. report.Streaming.Playback.duration_s
  in
  let optimised_power =
    report.Streaming.Playback.total_energy_mj /. report.Streaming.Playback.duration_s
  in
  let ratio =
    Power.Battery.extension_ratio ~baseline_power_mw:baseline_power
      ~optimized_power_mw:optimised_power
  in
  check bool (Printf.sprintf "playback time extended by %.1f%%" (100. *. ratio)) true
    (ratio > 0.1)

let test_savings_monotone_in_content_brightness () =
  (* The content-sweep knee: darker content must never save less. *)
  let savings base_level =
    let profile =
      Video.Workloads.parametric ~seconds:3. ~base_level ~highlight_peak:200 ()
    in
    let clip = Video.Clip_gen.render ~width:48 ~height:36 ~fps:8. profile in
    (Streaming.Playback.run ~device ~quality:Annotation.Quality_level.Loss_10 clip)
      .Streaming.Playback.backlight_savings
  in
  let dark = savings 20 and mid = savings 120 and bright = savings 230 in
  check bool "dark saves most" true (dark > mid +. 0.05);
  check bool "bright saves least" true (mid > bright +. 0.05)

let test_ccfl_savings_bounded_by_floor () =
  (* A CCFL inverter draws its floor power at any visible level, so
     backlight savings can never reach the LED device's ceiling. *)
  let ccfl = Display.Device.ipaq_h3650 in
  let floor_bound =
    1.
    -. (ccfl.Display.Device.backlight_power_floor_mw
        /. ccfl.Display.Device.backlight_power_full_mw)
  in
  let clip = small_clip Video.Workloads.catwoman in
  let report =
    Streaming.Playback.run ~device:ccfl ~quality:Annotation.Quality_level.Loss_20 clip
  in
  check bool "savings below the inverter floor bound" true
    (report.Streaming.Playback.backlight_savings < floor_bound);
  check bool "still substantial" true
    (report.Streaming.Playback.backlight_savings > 0.2)

let test_quality_holds_on_every_device () =
  (* The Fig 2 verdict must pass on all three PDAs, not just the
     measurement platform. *)
  let clip = small_clip Video.Workloads.officexp in
  let profiled = Annotation.Annotator.profile clip in
  List.iter
    (fun dev ->
      let track =
        Annotation.Annotator.annotate_profiled ~device:dev
          ~quality:Annotation.Quality_level.Loss_5 profiled
      in
      let rig = Camera.Snapshot.noiseless_rig dev in
      List.iter
        (fun (i, verdict) ->
          check bool
            (Format.asprintf "%s frame %d: %a" dev.Display.Device.name i
               Camera.Quality.pp_verdict verdict)
            true
            (Camera.Quality.acceptable verdict))
        (Streaming.Playback.evaluate_quality ~rig ~device:dev ~clip ~track
           ~sample_every:(max 1 (clip.Video.Clip.frame_count / 4))))
    Display.Device.all

let test_session_runs_on_ccfl_device () =
  let clip = small_clip Video.Workloads.shrek2 in
  let config = Streaming.Session.default_config ~device:Display.Device.zaurus_sl5600 in
  match Streaming.Session.run config clip with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check bool "device savings positive" true (r.Streaming.Session.device_savings > 0.1)

let test_all_workloads_produce_valid_reports () =
  List.iter
    (fun profile ->
      let clip = Video.Clip_gen.render ~width:32 ~height:24 ~fps:6. profile in
      let report =
        Streaming.Playback.run ~device ~quality:Annotation.Quality_level.Loss_20 clip
      in
      let s = report.Streaming.Playback.backlight_savings in
      check bool
        (Printf.sprintf "%s savings %.2f in [0, 0.95]" profile.Video.Profile.name s)
        true
        (s >= 0. && s <= 0.95);
      check int
        (profile.Video.Profile.name ^ " frames")
        clip.Video.Clip.frame_count report.Streaming.Playback.frames)
    Video.Workloads.all

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "server to client" `Quick test_full_pipeline_end_to_end;
          Alcotest.test_case "codec carries stream" `Quick
            test_codec_carries_compensated_stream;
          Alcotest.test_case "annotation overhead" `Quick
            test_annotation_overhead_hundreds_of_bytes;
          Alcotest.test_case "recovered transfer" `Quick
            test_recovered_transfer_drives_pipeline;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "dark beats bright (fig 9)" `Quick
            test_dark_clips_beat_bright_clips;
          Alcotest.test_case "monotone in quality" `Quick test_savings_monotone_in_quality;
          Alcotest.test_case "beats history on quality (A2)" `Quick
            test_annotated_beats_history_on_quality;
          Alcotest.test_case "beats client analysis on power (A2)" `Quick
            test_annotated_beats_client_analysis_on_device_power;
          Alcotest.test_case "per-frame flicker (A1)" `Quick test_per_frame_switches_far_more;
          Alcotest.test_case "battery extension" `Quick test_battery_life_extension_visible;
          Alcotest.test_case "brightness knee" `Quick
            test_savings_monotone_in_content_brightness;
        ] );
      ( "devices",
        [
          Alcotest.test_case "ccfl floor bound" `Quick test_ccfl_savings_bounded_by_floor;
          Alcotest.test_case "quality on every device" `Quick
            test_quality_holds_on_every_device;
          Alcotest.test_case "session on ccfl" `Quick test_session_runs_on_ccfl_device;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all ten valid" `Slow test_all_workloads_produce_valid_reports;
        ] );
    ]
