(* The resilience control plane: retry-schedule edges (zero budget,
   budget exactly one round, a fully-dead channel), equivalence of the
   transport's NACK loop with and without an explicit default policy,
   the breaker state machine (deterministic lifecycle plus a QCheck
   property over arbitrary outcome sequences), bulkhead admission,
   profile parsing, the ladder walk — and the acceptance sweep: 50
   seeded chaos sessions that must all complete with a report, with
   equal seeds journaling byte-identically. *)

module Retry = Resilience.Retry
module Breaker = Resilience.Breaker
module Bulkhead = Resilience.Bulkhead
module Degrade = Resilience.Degrade
module Profile = Resilience.Profile
module Journal = Obs.Journal

let device = Display.Device.ipaq_h5555

(* --- retry schedules ----------------------------------------------------- *)

(* A schedule whose every attempt costs backoff + 4 ms and never
   finishes — the shape of a NACK round against a hopeless channel. *)
let hopeless policy =
  Retry.run policy ~seed:7 ~init:0
    ~pending:(fun _ -> true)
    ~cost:(fun (a : Retry.attempt) _ -> a.Retry.backoff_s +. 0.004)
    ~step:(fun _ ~now_s:_ n -> n + 1)

let test_retry_zero_budget () =
  let n, stats = hopeless { Retry.default with Retry.budget_s = 0. } in
  Alcotest.(check int) "no attempts" 0 n;
  Alcotest.(check int) "stats agree" 0 stats.Retry.attempts;
  Alcotest.(check bool) "budget exhausted" true stats.Retry.budget_exhausted;
  Alcotest.(check (float 1e-9)) "no time spent" 0. stats.Retry.time_s

let test_retry_budget_exactly_first_round () =
  (* Attempt 0 costs its 2 ms backoff + 4 ms: a budget of exactly that
     admits it (the check is strict: spent + cost > budget rejects),
     one epsilon less does not. *)
  let first_cost = Retry.default.Retry.base_backoff_s +. 0.004 in
  let n, stats = hopeless { Retry.default with Retry.budget_s = first_cost } in
  Alcotest.(check int) "exactly one attempt" 1 n;
  Alcotest.(check (float 1e-9)) "whole budget spent" first_cost
    stats.Retry.time_s;
  Alcotest.(check bool) "then exhausted" true stats.Retry.budget_exhausted;
  let n, stats =
    hopeless { Retry.default with Retry.budget_s = first_cost -. 1e-6 }
  in
  Alcotest.(check int) "one epsilon less: none" 0 n;
  Alcotest.(check bool) "exhausted immediately" true
    stats.Retry.budget_exhausted

let test_retry_round_seed_derivation () =
  Alcotest.(check int) "historical sub-stream" (32 + (3 * 7919))
    (Retry.round_seed ~seed:32 ~round:2)

(* --- the transport's NACK loop on the schedule ---------------------------- *)

let packets =
  Array.init 12 (fun i -> String.make 24 (Char.chr (Char.code 'a' + i)))

let nack ?policy ?breaker ~fault ~budget_s arrival =
  Streaming.Transport.nack_retransmit ?policy ?breaker ~fault
    ~link:Streaming.Netsim.wlan_80211b ~budget_s ~seed:32 ~packets arrival

let test_nack_zero_budget () =
  let fault = Streaming.Fault.bernoulli ~rate:0.4 in
  let arrival = Streaming.Fault.apply fault ~seed:5 packets in
  let out, stats = nack ~fault ~budget_s:0. arrival in
  Alcotest.(check bool) "arrival untouched" true (out = arrival);
  Alcotest.(check int) "no rounds" 0 stats.Streaming.Transport.nack_rounds;
  Alcotest.(check int) "nothing re-sent" 0
    stats.Streaming.Transport.packets_retransmitted

let test_nack_fully_dead_channel () =
  (* Every delivery fails, retransmissions included: the loop must
     re-cross the dead channel, repair nothing, and stop on budget —
     not spin. *)
  let fault = Streaming.Fault.bernoulli ~rate:1.0 in
  let arrival = Streaming.Fault.apply fault ~seed:5 packets in
  Alcotest.(check bool) "channel is dead" true
    (Array.for_all (fun p -> p = None) arrival);
  let out, stats = nack ~fault ~budget_s:0.04 arrival in
  Alcotest.(check bool) "still nothing delivered" true
    (Array.for_all (fun p -> p = None) out);
  Alcotest.(check bool) "rounds were attempted" true
    (stats.Streaming.Transport.nack_rounds > 0);
  Alcotest.(check int) "nothing repaired" 0
    stats.Streaming.Transport.packets_repaired;
  Alcotest.(check bool) "gave up on the deadline" true
    stats.Streaming.Transport.budget_exhausted

let test_nack_default_policy_equivalence () =
  (* The refactor invariant: the historical argument form and the
     explicit default policy are the same schedule, byte for byte. *)
  let fault = Streaming.Fault.gilbert ~mean_loss:0.3 ~burst_length:3. () in
  let arrival = Streaming.Fault.apply fault ~seed:5 packets in
  let out_legacy, stats_legacy = nack ~fault ~budget_s:0.04 arrival in
  let out_policy, stats_policy =
    nack ~policy:Retry.default ~fault ~budget_s:0.04 arrival
  in
  Alcotest.(check bool) "same arrivals" true (out_legacy = out_policy);
  Alcotest.(check bool) "same stats" true (stats_legacy = stats_policy)

(* --- breaker state machine ------------------------------------------------ *)

let quick_config =
  {
    Breaker.failure_threshold = 0.5;
    window = 4;
    min_samples = 2;
    cooldown_s = 0.01;
    probe_quota = 2;
  }

let test_breaker_lifecycle () =
  let b = Breaker.create ~config:quick_config ~name:"t" () in
  Alcotest.(check bool) "starts closed, admits" true (Breaker.allow b ~now_s:0.);
  Breaker.record b ~now_s:0. ~ok:false;
  Breaker.record b ~now_s:0.001 ~ok:false;
  Alcotest.(check string) "two failures trip it" "open"
    (Breaker.state_label (Breaker.state b));
  Alcotest.(check bool) "open rejects" false (Breaker.allow b ~now_s:0.002);
  (* Opened at the second failure (t = 1 ms): 9 ms of the 10 ms
     cooldown remain at t = 2 ms. *)
  (match Breaker.cooldown_remaining b ~now_s:0.002 with
  | Some r -> Alcotest.(check (float 1e-9)) "cooldown runs" 0.009 r
  | None -> Alcotest.fail "expected a cooldown");
  Alcotest.(check bool) "cooldown elapsed: first probe" true
    (Breaker.allow b ~now_s:0.02);
  Alcotest.(check string) "now half-open" "half_open"
    (Breaker.state_label (Breaker.state b));
  Alcotest.(check bool) "second probe" true (Breaker.allow b ~now_s:0.021);
  Alcotest.(check bool) "quota exhausted" false (Breaker.allow b ~now_s:0.022);
  Breaker.record b ~now_s:0.023 ~ok:true;
  Breaker.record b ~now_s:0.024 ~ok:true;
  Alcotest.(check string) "probe quota of successes closes" "closed"
    (Breaker.state_label (Breaker.state b));
  let shape =
    List.map
      (fun (tr : Breaker.transition) ->
        (Breaker.state_code tr.Breaker.from_state,
         Breaker.state_code tr.Breaker.to_state))
      (Breaker.transitions b)
  in
  Alcotest.(check (list (pair int int)))
    "closed -> open -> half-open -> closed"
    [ (0, 2); (2, 1); (1, 0) ]
    shape

let test_breaker_probe_failure_reopens () =
  let b = Breaker.create ~config:quick_config ~name:"t" () in
  Breaker.record b ~now_s:0. ~ok:false;
  Breaker.record b ~now_s:0. ~ok:false;
  ignore (Breaker.allow b ~now_s:0.02);
  Breaker.record b ~now_s:0.02 ~ok:false;
  Alcotest.(check string) "probe failure reopens" "open"
    (Breaker.state_label (Breaker.state b))

let legal_edges = [ (0, 2); (2, 1); (1, 0); (1, 2) ]

(* Drive a breaker with an arbitrary outcome sequence on a 1 ms grid
   and check the transition record: it must chain (no skipped states),
   use only legal edges, and carry non-decreasing timestamps. *)
let prop_breaker_never_skips =
  QCheck2.Test.make ~count:500
    ~name:"breaker transitions chain through legal edges only"
    QCheck2.Gen.(list_size (0 -- 64) bool)
    (fun outcomes ->
      let b = Breaker.create ~config:quick_config ~name:"prop" () in
      List.iteri
        (fun i ok ->
          let now_s = float_of_int i *. 0.001 in
          if Breaker.allow b ~now_s then Breaker.record b ~now_s ~ok)
        outcomes;
      let rec chained from_code at = function
        | [] -> true
        | (tr : Breaker.transition) :: rest ->
          Breaker.state_code tr.Breaker.from_state = from_code
          && List.mem
               ( Breaker.state_code tr.Breaker.from_state,
                 Breaker.state_code tr.Breaker.to_state )
               legal_edges
          && tr.Breaker.at_s >= at
          && chained (Breaker.state_code tr.Breaker.to_state) tr.Breaker.at_s
               rest
      in
      chained 0 0. (Breaker.transitions b))

(* Whatever the quota, a half-open breaker admits exactly that many
   probes before rejecting again. *)
let prop_breaker_probe_quota =
  QCheck2.Test.make ~count:100
    ~name:"half-open admits exactly the probe quota"
    QCheck2.Gen.(1 -- 4)
    (fun quota ->
      let b =
        Breaker.create
          ~config:{ quick_config with Breaker.probe_quota = quota }
          ~name:"prop" ()
      in
      Breaker.record b ~now_s:0. ~ok:false;
      Breaker.record b ~now_s:0. ~ok:false;
      let admitted = ref 0 in
      for i = 0 to quota + 2 do
        if Breaker.allow b ~now_s:(0.02 +. (float_of_int i *. 0.0001)) then
          incr admitted
      done;
      !admitted = quota)

(* --- bulkhead ------------------------------------------------------------- *)

let test_bulkhead_admit_and_shed () =
  let b =
    Bulkhead.create
      ~config:{ Bulkhead.capacity = 1; queue_limit = 0 }
      ~name:"t" ()
  in
  let first = Bulkhead.enter b in
  Alcotest.(check string) "first admitted" "admitted"
    (Bulkhead.decision_label first.Bulkhead.decision);
  let second = Bulkhead.enter b in
  Alcotest.(check string) "saturated compartment sheds" "shed"
    (Bulkhead.decision_label second.Bulkhead.decision);
  Bulkhead.release b;
  let third = Bulkhead.enter b in
  Alcotest.(check string) "freed slot admits again" "admitted"
    (Bulkhead.decision_label third.Bulkhead.decision);
  Bulkhead.release b;
  let a, q, s = Bulkhead.stats b in
  Alcotest.(check (triple int int int)) "lifetime totals" (2, 0, 1) (a, q, s)

let test_bulkhead_run_fallback () =
  let b =
    Bulkhead.create
      ~config:{ Bulkhead.capacity = 1; queue_limit = 0 }
      ~name:"t" ()
  in
  let inner =
    Bulkhead.run b ~shed:(fun () -> "shed")
      (fun () -> Bulkhead.run b ~shed:(fun () -> "shed") (fun () -> "ran"))
  in
  Alcotest.(check string) "nested work is shed, outer runs" "shed" inner;
  let after = Bulkhead.run b ~shed:(fun () -> "shed") (fun () -> "ran") in
  Alcotest.(check string) "slot released afterwards" "ran" after

(* --- degradation ladder --------------------------------------------------- *)

let test_ladder_steps () =
  let l = Degrade.create ~steps:[ Degrade.Stale_cache ] () in
  Alcotest.(check (list string)) "ends forced in, sorted"
    [ "fresh"; "stale"; "full" ]
    (List.map Degrade.label (Degrade.steps l));
  Alcotest.(check string) "disabled rung falls through" "full"
    (Degrade.label (Degrade.next_step l ~from:Degrade.Neighbour_clamp));
  Degrade.note l ~scene:0 Degrade.Fresh;
  Degrade.note l ~scene:1 Degrade.Stale_cache;
  Degrade.note l ~scene:(-1) Degrade.Full_backlight;
  Alcotest.(check int) "depth is the deepest rank" 3 (Degrade.depth l);
  Alcotest.(check (list (pair string int))) "per-rung counts"
    [ ("fresh", 1); ("stale", 1); ("full", 1) ]
    (List.map (fun (s, n) -> (Degrade.label s, n)) (Degrade.taken l))

(* --- profiles ------------------------------------------------------------- *)

let test_profile_parse () =
  match Profile.load ~path:"../examples/default.resilience" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    (match p.Profile.retry with
    | None -> Alcotest.fail "retry group expected"
    | Some r ->
      Alcotest.(check (float 1e-9)) "budget" 0.04 r.Retry.budget_s;
      Alcotest.(check int) "rounds" 16 r.Retry.max_attempts);
    (match p.Profile.breaker with
    | None -> Alcotest.fail "breaker group expected"
    | Some b ->
      Alcotest.(check (float 1e-9)) "cooldown in seconds" 0.01
        b.Breaker.cooldown_s);
    Alcotest.(check (list string)) "ladder order"
      [ "fresh"; "stale"; "clamp"; "full" ]
      (List.map Degrade.label p.Profile.ladder);
    Alcotest.(check (option (float 1e-9))) "watchdog in seconds" (Some 0.04)
      p.Profile.stage_deadline_s;
    Alcotest.(check bool) "not a no-op" false (Profile.is_noop p)

let test_profile_parse_errors () =
  Alcotest.(check bool) "unknown key" true
    (match Profile.parse "frobnicate = 1\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "unknown rung" true
    (match Profile.parse "ladder = fresh, sideways\n" with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "empty profile is a no-op" true
    (match Profile.parse "# nothing\n" with
    | Ok p -> Profile.is_noop p
    | Error _ -> false)

(* --- acceptance: the chaos sweep ------------------------------------------ *)

(* The journal only listens when observability is on — the state the
   CLIs' --journal flag sets up. *)
let () = Obs.enable ()

let chaos_fault =
  {
    (Streaming.Fault.gilbert ~mean_loss:0.08 ~burst_length:3. ()) with
    Streaming.Fault.corrupt_rate = 0.002;
    reorder_rate = 0.02;
    jitter_s = 0.005;
    collapse = Some { Streaming.Fault.at_fraction = 0.5; factor = 0.25 };
  }

let chaos_clip =
  let scene level =
    Video.Profile.scene ~seconds:0.75 ~noise_sigma:0. (Video.Profile.Flat level)
  in
  Video.Clip_gen.render ~width:64 ~height:48 ~fps:8.
    {
      Video.Profile.name = "ladder-accept";
      seed = 23;
      scenes = [ scene 45; scene 210; scene 70; scene 190; scene 55; scene 230 ];
    }

(* The aggressive shipped plane, minus the stale rung's prepared track:
   damage has to walk the ladder past stale, so the sweep exercises the
   deeper rungs and the journal gets Ladder_step events to compare. *)
let chaos_profile =
  match
    Profile.parse
      "retry_budget_s = 0.02\n\
       retry_base_s = 0.001\n\
       retry_multiplier = 3.0\n\
       retry_max_rounds = 6\n\
       breaker_threshold = 0.25\n\
       breaker_window = 4\n\
       breaker_min_samples = 2\n\
       breaker_cooldown_ms = 20\n\
       breaker_probes = 1\n\
       ladder = fresh, clamp, full\n\
       stage_deadline_ms = 20\n"
  with
  | Ok p -> p
  | Error e -> failwith e

let chaos_config seed =
  {
    (Streaming.Session.default_config ~device) with
    Streaming.Session.fault = Some chaos_fault;
    nack_budget_s = 0.04;
    resilience = Some chaos_profile;
    seed;
  }

let journal_of_run seed =
  let j = Journal.create () in
  Journal.install j;
  Fun.protect ~finally:Journal.uninstall (fun () ->
      match Streaming.Session.run (chaos_config seed) chaos_clip with
      | Ok r -> (Journal.to_string j, Journal.events j, r)
      | Error e -> Alcotest.fail ("seed aborted: " ^ e))

let is_ladder_step (e : Journal.event) =
  match e.Journal.kind with Journal.Ladder_step _ -> true | _ -> false

let test_chaos_sweep_never_aborts () =
  (* The acceptance criterion: 50 seeded chaos sessions, every one
     completes with a report — the control plane degrades, it never
     aborts. *)
  for seed = 1 to 50 do
    match Streaming.Session.run (chaos_config seed) chaos_clip with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d aborted: %s" seed e)
  done

let test_ladder_descent_journal_identity () =
  (* Find a seed whose session walks the ladder, then run it again:
     the two journals must be byte-identical, and the steps taken must
     be journaled. *)
  let rec find seed =
    if seed > 50 then Alcotest.fail "no seed walked the ladder under chaos"
    else
      let bytes, events, report = journal_of_run seed in
      if List.exists is_ladder_step events then (seed, bytes, events, report)
      else find (seed + 1)
  in
  let seed, bytes, events, report = find 1 in
  let bytes', _, _ = journal_of_run seed in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d journals byte-identically twice" seed)
    true
    (String.equal bytes bytes');
  (* Every non-fresh step the session reports corresponds to journaled
     evidence: as many Ladder_step events as degraded scenes (or one
     track-wide event when the whole track fell back). *)
  let steps = List.length (List.filter is_ladder_step events) in
  Alcotest.(check bool) "ladder steps journaled" true (steps > 0);
  Alcotest.(check bool) "steps cover the degraded scenes" true
    (steps >= min 1 report.Streaming.Session.degraded_scenes)

let test_unconfigured_is_instrumentation_neutral () =
  (* With no resilience profile the faulty path must not notice the
     control plane exists: the report is byte-identical with and
     without a journal recording the run. *)
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.fault = Some chaos_fault;
      seed = 9;
    }
  in
  let plain =
    match Streaming.Session.run config chaos_clip with
    | Ok r -> Format.asprintf "%a" Streaming.Session.pp_report r
    | Error e -> Alcotest.fail e
  in
  let j = Journal.create () in
  Journal.install j;
  let journaled =
    Fun.protect ~finally:Journal.uninstall (fun () ->
        match Streaming.Session.run config chaos_clip with
        | Ok r -> Format.asprintf "%a" Streaming.Session.pp_report r
        | Error e -> Alcotest.fail e)
  in
  Alcotest.(check string) "identical reports" plain journaled;
  Alcotest.(check bool) "and no resilience events recorded" false
    (List.exists
       (fun (e : Journal.event) ->
         match e.Journal.kind with
         | Journal.Ladder_step _ | Journal.Breaker_transition _
         | Journal.Bulkhead_decision _ | Journal.Watchdog_trip _ ->
           true
         | _ -> false)
       (Journal.events j))

let () =
  Alcotest.run "resilience"
    [
      ( "retry",
        [
          Alcotest.test_case "zero budget" `Quick test_retry_zero_budget;
          Alcotest.test_case "budget exactly one round" `Quick
            test_retry_budget_exactly_first_round;
          Alcotest.test_case "round seeds" `Quick test_retry_round_seed_derivation;
        ] );
      ( "nack on the schedule",
        [
          Alcotest.test_case "zero budget" `Quick test_nack_zero_budget;
          Alcotest.test_case "fully-dead channel" `Quick
            test_nack_fully_dead_channel;
          Alcotest.test_case "default-policy equivalence" `Quick
            test_nack_default_policy_equivalence;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_breaker_never_skips; prop_breaker_probe_quota ] );
      ( "bulkhead",
        [
          Alcotest.test_case "admit and shed" `Quick test_bulkhead_admit_and_shed;
          Alcotest.test_case "run fallback" `Quick test_bulkhead_run_fallback;
        ] );
      ( "ladder",
        [ Alcotest.test_case "steps and depth" `Quick test_ladder_steps ] );
      ( "profiles",
        [
          Alcotest.test_case "shipped default parses" `Quick test_profile_parse;
          Alcotest.test_case "parse errors" `Quick test_profile_parse_errors;
        ] );
      ( "chaos acceptance",
        [
          Alcotest.test_case "50 seeds, zero aborts" `Slow
            test_chaos_sweep_never_aborts;
          Alcotest.test_case "equal seeds, equal journals" `Quick
            test_ladder_descent_journal_identity;
          Alcotest.test_case "unconfigured is neutral" `Quick
            test_unconfigured_is_instrumentation_neutral;
        ] );
    ]
