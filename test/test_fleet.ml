(* Tests for the fleet layer: the consistent-hash ring, the load
   generator, and the deterministic shard scheduler. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let device = Display.Device.ipaq_h5555

(* --- Chash ---------------------------------------------------------------- *)

let synthetic_keys n = List.init n (fun i -> Printf.sprintf "clip-%04d" i)

let test_chash_deterministic () =
  let a = Fleet.Chash.create ~shards:8 () in
  let b = Fleet.Chash.create ~shards:8 () in
  List.iter
    (fun key ->
      check int ("stable owner for " ^ key) (Fleet.Chash.lookup a key)
        (Fleet.Chash.lookup b key))
    (synthetic_keys 500)

let test_chash_distribution () =
  let shards = 8 in
  let ring = Fleet.Chash.create ~shards () in
  let counts = Array.make shards 0 in
  List.iter
    (fun key ->
      let s = Fleet.Chash.lookup ring key in
      check bool "in range" true (s >= 0 && s < shards);
      counts.(s) <- counts.(s) + 1)
    (synthetic_keys 10_000);
  Array.iteri
    (fun s c ->
      check bool
        (Printf.sprintf "shard %d owns a sane share (%d keys)" s c)
        true
        (c > 0 && c < 10_000 / 2))
    counts

let test_chash_rebalance () =
  (* Growing n -> n+1 shards: only keys claimed by the new shard's
     virtual nodes move, about 1/(n+1) of the population — the cache
     survival property a modulo assignment would not have. *)
  let n = 4 in
  let before = Fleet.Chash.create ~shards:n () in
  let after = Fleet.Chash.create ~shards:(n + 1) () in
  let keys = synthetic_keys 10_000 in
  let moved = ref 0 in
  List.iter
    (fun key ->
      let a = Fleet.Chash.lookup before key in
      let b = Fleet.Chash.lookup after key in
      if a <> b then begin
        incr moved;
        check int ("moves only to the new shard: " ^ key) n b
      end)
    keys;
  let fraction = float_of_int !moved /. float_of_int (List.length keys) in
  let expected = 1. /. float_of_int (n + 1) in
  check bool
    (Printf.sprintf "moved fraction %.3f near 1/%d" fraction (n + 1))
    true
    (fraction > expected /. 3. && fraction < expected *. 2.)

let test_chash_validation () =
  Alcotest.check_raises "no shards"
    (Invalid_argument "Fleet.Chash.create: shards must be >= 1") (fun () ->
      ignore (Fleet.Chash.create ~shards:0 ()));
  Alcotest.check_raises "no vnodes"
    (Invalid_argument "Fleet.Chash.create: vnodes must be >= 1") (fun () ->
      ignore (Fleet.Chash.create ~vnodes:0 ~shards:2 ()))

(* --- Load ----------------------------------------------------------------- *)

let test_load_parse () =
  match
    Fleet.Load.parse
      "# a profile\n\
       arrival = closed\n\
       sessions = 500\n\
       concurrency = 16\n\
       zipf_s = 0.8  # inline comment\n\
       seed = 11\n"
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check bool "closed loop" true (t.Fleet.Load.arrival = Fleet.Load.Closed_loop);
    check int "sessions" 500 t.Fleet.Load.sessions;
    check int "concurrency" 16 t.Fleet.Load.concurrency;
    check int "seed" 11 t.Fleet.Load.seed

let test_load_parse_rejects () =
  let bad text =
    match Fleet.Load.parse text with Ok _ -> false | Error _ -> true
  in
  check bool "unknown key" true (bad "frobnicate = 3\n");
  check bool "bad arrival" true (bad "arrival = sometimes\n");
  check bool "no sessions" true (bad "sessions = 0\n");
  check bool "bad amplitude" true (bad "diurnal_amplitude = 1.5\n");
  check bool "missing =" true (bad "sessions 5\n")

let test_load_plan_deterministic () =
  let load = { Fleet.Load.default with Fleet.Load.sessions = 400 } in
  let a = Fleet.Load.plan load ~catalog:8 in
  let b = Fleet.Load.plan load ~catalog:8 in
  check (Alcotest.array int) "same clips" a.Fleet.Load.clip_of b.Fleet.Load.clip_of;
  check (Alcotest.array (Alcotest.float 0.)) "same arrivals"
    a.Fleet.Load.arrival_s b.Fleet.Load.arrival_s

let test_load_plan_shapes () =
  let load =
    { Fleet.Load.default with Fleet.Load.sessions = 2_000; zipf_s = 1.1 }
  in
  let plan = Fleet.Load.plan load ~catalog:8 in
  (* Zipf skew: the head clip strictly outdraws the tail clip. *)
  let count c =
    Array.fold_left
      (fun acc x -> if x = c then acc + 1 else acc)
      0 plan.Fleet.Load.clip_of
  in
  check bool "head beats tail" true (count 0 > count 7);
  (* Open-loop arrivals are non-decreasing and strictly positive. *)
  let ok = ref true in
  Array.iteri
    (fun i t ->
      if t <= 0. then ok := false;
      if i > 0 && t < plan.Fleet.Load.arrival_s.(i - 1) then ok := false)
    plan.Fleet.Load.arrival_s;
  check bool "arrivals non-decreasing" true !ok;
  (* Closed loop: no exogenous arrival times. *)
  let closed =
    Fleet.Load.plan
      { load with Fleet.Load.arrival = Fleet.Load.Closed_loop }
      ~catalog:8
  in
  Array.iter
    (fun t -> check (Alcotest.float 0.) "zero arrival" 0. t)
    closed.Fleet.Load.arrival_s;
  (* Reshaping arrivals never changes clip choice (and so sharding). *)
  check (Alcotest.array int) "clip choice independent of arrival shape"
    plan.Fleet.Load.clip_of closed.Fleet.Load.clip_of

let test_load_rate_modulation () =
  let base = { Fleet.Load.default with Fleet.Load.rate_per_s = 100. } in
  let diurnal =
    { base with Fleet.Load.diurnal_amplitude = 0.4; diurnal_period_s = 100. }
  in
  (* Peak of the sine (quarter period) vs the trough (three quarters). *)
  check bool "diurnal peak above mean" true (Fleet.Load.rate_at diurnal 25. > 130.);
  check bool "diurnal trough below mean" true (Fleet.Load.rate_at diurnal 75. < 70.);
  let spiky =
    {
      base with
      Fleet.Load.spike_at_s = Some 50.;
      spike_factor = 5.;
      spike_width_s = 10.;
    }
  in
  check bool "inside the flash crowd" true (Fleet.Load.rate_at spiky 50. > 400.);
  check bool "outside the flash crowd" true (Fleet.Load.rate_at spiky 70. < 110.)

(* --- Scheduler ------------------------------------------------------------ *)

(* A small catalog of tiny clips: the scheduler's cost is dominated by
   stepping session machines, so keep frames small and few. *)
let catalog =
  Array.init 6 (fun i ->
      Video.Clip_gen.render ~width:16 ~height:12 ~fps:8.
        (Video.Workloads.parametric ~seconds:1.0
           ~base_level:(40 + (30 * i))
           ~highlight_peak:(150 + (12 * i))
           ()))

let session_config = Streaming.Session.default_config ~device

let small_load =
  {
    Fleet.Load.default with
    Fleet.Load.sessions = 300;
    rate_per_s = 60.;
    diurnal_amplitude = 0.2;
    diurnal_period_s = 3.;
    spike_at_s = Some 2.5;
    spike_factor = 3.;
    spike_width_s = 1.;
  }

let small_config =
  {
    Fleet.Scheduler.default_config with
    Fleet.Scheduler.shards = 3;
    capacity = 24;
    queue_limit = 8;
  }

let run_fleet ?pool () =
  Fleet.Scheduler.run ?pool small_config ~session_config ~clips:catalog
    ~load:small_load

let fingerprint (r : Fleet.Scheduler.report) =
  ( Fleet.Scheduler.journal r,
    r.Fleet.Scheduler.completed,
    r.Fleet.Scheduler.shed,
    r.Fleet.Scheduler.ticks,
    r.Fleet.Scheduler.sessions_per_sim_second,
    Array.map
      (fun (sr : Fleet.Scheduler.shard_report) ->
        (sr.Fleet.Scheduler.assigned, sr.Fleet.Scheduler.completed))
      r.Fleet.Scheduler.shard_reports )

let test_scheduler_deterministic_across_domains () =
  (* The tentpole property: same seed and config give byte-identical
     journals and identical reports at 1, 2 and 8 domains, and across
     two runs at the same domain count. *)
  let sequential = fingerprint (run_fleet ()) in
  let again = fingerprint (run_fleet ()) in
  let with_domains n =
    Par.Pool.with_pool ~domains:n (fun pool -> fingerprint (run_fleet ~pool ()))
  in
  let j, _, _, _, _, _ = sequential in
  check bool "journal non-trivial" true (String.length j > 64);
  check bool "rerun identical" true (sequential = again);
  check bool "2 domains identical" true (sequential = with_domains 2);
  check bool "8 domains identical" true (sequential = with_domains 8)

let test_scheduler_accounts_every_session () =
  let r = run_fleet () in
  check int "admitted + shed = offered" r.Fleet.Scheduler.sessions
    (r.Fleet.Scheduler.completed + r.Fleet.Scheduler.shed);
  check int "no failures on a clean channel" 0 r.Fleet.Scheduler.failed;
  let by_shard =
    Array.fold_left
      (fun acc (sr : Fleet.Scheduler.shard_report) ->
        acc + sr.Fleet.Scheduler.assigned)
      0 r.Fleet.Scheduler.shard_reports
  in
  check int "every session routed to a shard" r.Fleet.Scheduler.sessions by_shard;
  check bool "savings roll up" true
    (r.Fleet.Scheduler.mean_device_savings > 0.1
    && r.Fleet.Scheduler.mean_device_savings < 0.9)

let test_scheduler_sheds_under_overload () =
  (* A flash crowd into tiny shards: the waiting rooms fill and the
     tail is shed — never an exception, never a lost count. *)
  let load =
    { small_load with Fleet.Load.rate_per_s = 2_000.; sessions = 400 }
  in
  let config =
    {
      small_config with
      Fleet.Scheduler.capacity = 4;
      queue_limit = 2;
    }
  in
  let r =
    Fleet.Scheduler.run config ~session_config ~clips:catalog ~load
  in
  check bool "overload sheds" true (r.Fleet.Scheduler.shed > 0);
  check int "shed + completed = offered" r.Fleet.Scheduler.sessions
    (r.Fleet.Scheduler.completed + r.Fleet.Scheduler.shed);
  (* Shed decisions are journaled for the audit trail. *)
  let shed_events =
    List.length
      (List.filter
         (fun (e : Obs.Journal.event) ->
           match e.Obs.Journal.kind with
           | Obs.Journal.Fleet_admission { decision = "shed"; _ } -> true
           | _ -> false)
         r.Fleet.Scheduler.journal_events)
  in
  check int "one journal entry per shed session" r.Fleet.Scheduler.shed
    shed_events

let test_scheduler_closed_loop_concurrency () =
  let load =
    {
      small_load with
      Fleet.Load.arrival = Fleet.Load.Closed_loop;
      sessions = 120;
      concurrency = 5;
    }
  in
  let r =
    Fleet.Scheduler.run small_config ~session_config ~clips:catalog ~load
  in
  check int "closed loop never sheds" 0 r.Fleet.Scheduler.shed;
  check int "every session completes" r.Fleet.Scheduler.sessions
    r.Fleet.Scheduler.completed;
  Array.iter
    (fun (sr : Fleet.Scheduler.shard_report) ->
      check bool
        (Printf.sprintf "shard %d holds at most the concurrency target"
           sr.Fleet.Scheduler.shard)
        true
        (sr.Fleet.Scheduler.peak_in_flight <= 5))
    r.Fleet.Scheduler.shard_reports

let test_scheduler_monitor_rollup () =
  let r = run_fleet () in
  check bool "clean fleet is healthy" true
    (Obs.Monitor.healthy r.Fleet.Scheduler.monitor);
  let report = r.Fleet.Scheduler.monitor in
  check bool "rules were evaluated" true
    (List.exists
       (fun (v : Obs.Monitor.verdict) -> v.Obs.Monitor.evaluated > 0)
       report.Obs.Monitor.verdicts)

let test_scheduler_journal_verifies () =
  (* The concatenated fleet journal must pass the offline V4xx audit:
     every shard block opens with Fleet_shard_start, which resets the
     verifier's monotonic clock. *)
  let r = run_fleet () in
  let diagnostics =
    Check.Artifact.check_journal ~file:"fleet.journal"
      (Fleet.Scheduler.journal r)
  in
  check int "no verifier errors" 0 (Check.Diagnostic.errors diagnostics)

let test_scheduler_validation () =
  Alcotest.check_raises "empty catalog"
    (Invalid_argument "Fleet.Scheduler.run: empty catalog") (fun () ->
      ignore
        (Fleet.Scheduler.run small_config ~session_config ~clips:[||]
           ~load:small_load))

let () =
  Alcotest.run "fleet"
    [
      ( "chash",
        [
          Alcotest.test_case "deterministic" `Quick test_chash_deterministic;
          Alcotest.test_case "distribution" `Quick test_chash_distribution;
          Alcotest.test_case "rebalance moves ~1/(n+1)" `Quick
            test_chash_rebalance;
          Alcotest.test_case "validation" `Quick test_chash_validation;
        ] );
      ( "load",
        [
          Alcotest.test_case "parse" `Quick test_load_parse;
          Alcotest.test_case "parse rejects" `Quick test_load_parse_rejects;
          Alcotest.test_case "plan deterministic" `Quick
            test_load_plan_deterministic;
          Alcotest.test_case "plan shapes" `Quick test_load_plan_shapes;
          Alcotest.test_case "rate modulation" `Quick test_load_rate_modulation;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_scheduler_deterministic_across_domains;
          Alcotest.test_case "accounts every session" `Quick
            test_scheduler_accounts_every_session;
          Alcotest.test_case "sheds under overload" `Quick
            test_scheduler_sheds_under_overload;
          Alcotest.test_case "closed-loop concurrency" `Quick
            test_scheduler_closed_loop_concurrency;
          Alcotest.test_case "monitor rollup" `Quick test_scheduler_monitor_rollup;
          Alcotest.test_case "journal verifies" `Quick
            test_scheduler_journal_verifies;
          Alcotest.test_case "validation" `Quick test_scheduler_validation;
        ] );
    ]
