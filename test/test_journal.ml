(* The flight recorder: wire round-trips for every event kind,
   salvage behaviour on damaged bytes, behaviour-neutrality of the
   hooks, the run-diff primitive on a deterministic session pair, and
   the offline verifier's V4xx corpus. *)

module Journal = Obs.Journal
module Explain = Obs.Explain
module Artifact = Check.Artifact
module Diagnostic = Check.Diagnostic

let device = Display.Device.ipaq_h5555

(* One event of every kind, timestamps shaped like a real session:
   each phase replays its own clock. *)
let all_kinds_events =
  let e t_us kind = { Journal.t_us; kind } in
  [
    e 0
      (Journal.Session_start
         {
           clip = "clip";
           device = "ipaq_h5555";
           quality = "10%";
           frames = 48;
           fps_milli = 8000;
         });
    e 0
      (Journal.Scene_decision
         {
           scene = 0;
           first_frame = 0;
           frame_count = 6;
           register = 78;
           effective_max = 99;
           compensation_fp = 10543;
           clipped_permille = 99;
           quality_permille = 100;
           candidates = [ 235; 95; 78; 64; 41 ];
         });
    e 750_000
      (Journal.Scene_decision
         {
           scene = 1;
           first_frame = 6;
           frame_count = 42;
           register = 255;
           effective_max = 255;
           compensation_fp = 4096;
           clipped_permille = 0;
           quality_permille = 100;
           candidates = [ 255; 255; 255; 255; 255 ];
         });
    e 0 (Journal.Channel { packets = 8; delivered = 7 });
    e 2_000 (Journal.Nack_round { round = 1; missing = 1; repaired = 1 });
    e 2_500 (Journal.Fec_outcome { failed_groups = 0; repaired_packets = 1 });
    e 3_000
      (Journal.Degradation
         { index = 2; trigger = Journal.Record_corrupt; policy = "neighbour_clamp" });
    e 3_000
      (Journal.Degradation
         { index = -1; trigger = Journal.Header_lost; policy = "full_backlight" });
    e 3_500
      (Journal.Degradation
         { index = 0; trigger = Journal.Record_lost; policy = "full_backlight" });
    e 0 (Journal.Dvfs_choice { policy = "annotated"; mean_mhz = 100; misses = 0 });
    e 750_000 (Journal.Scene_cut { scene = 1; frame = 6 });
    e 750_000
      (Journal.Backlight_switch { frame = 6; from_register = 78; to_register = 255 });
    e 800_000 (Journal.Deadline_miss { frame = 7; over_us = 1250 });
    e 900_000
      (Journal.Slo_breach
         {
           rule = "deadline_miss_rate < 0.05";
           window = 3;
           value_milli = 62;
           window_us = 500_000;
         });
    e 0
      (Journal.Bulkhead_decision
         { name = "prepare"; decision = "shed"; in_flight = 2; queued = 2 });
    e 2_600 (Journal.Ladder_step { scene = 2; depth = 1; step = "stale" });
    e 2_700 (Journal.Ladder_step { scene = -1; depth = 3; step = "full" });
    e 2_800
      (Journal.Breaker_transition
         { name = "nack"; from_state = 0; to_state = 2; failure_permille = 625 });
    e 2_900
      (Journal.Watchdog_trip
         { stage = "transmit"; budget_us = 40_000; over_us = 1_250 });
    e 6_000_000
      (Journal.Session_end
         { survived = true; degraded_scenes = 1; retransmissions = 1; corrupt_records = 1 });
    (* A fleet shard block: Fleet_shard_start resets the verifier's
       clock the same way Session_start does. *)
    e 0 (Journal.Fleet_shard_start { shard = 1; shards = 4; sessions = 2 });
    e 1_000 (Journal.Fleet_arrival { session = 7; clip = "clip" });
    e 1_000
      (Journal.Fleet_admission
         { session = 7; decision = "admitted"; in_flight = 3; queued = 0 });
    e 2_000_000
      (Journal.Fleet_session_end
         { session = 7; outcome = "degraded"; degraded_scenes = 1 });
  ]

let blob = Journal.encode all_kinds_events

(* --- wire round trip ---------------------------------------------------- *)

let test_round_trip () =
  match Journal.decode blob with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
    Alcotest.(check bool) "every kind survives encode/decode" true
      (events = all_kinds_events)

let test_recorder_round_trip () =
  (* The recorder path: record_in clamps seconds to microseconds. *)
  let j = Journal.create () in
  Journal.record_in j ~t_s:1.5 (Journal.Scene_cut { scene = 2; frame = 12 });
  Journal.record_in j (Journal.Scene_cut { scene = 0; frame = 0 });
  Journal.record_in j ~t_s:(-3.) (Journal.Scene_cut { scene = 0; frame = 0 });
  match Journal.decode (Journal.to_string j) with
  | Error msg -> Alcotest.fail msg
  | Ok [ a; b; c ] ->
    Alcotest.(check int) "seconds become microseconds" 1_500_000 a.Journal.t_us;
    Alcotest.(check int) "default is zero" 0 b.Journal.t_us;
    Alcotest.(check int) "negative clamps to zero" 0 c.Journal.t_us
  | Ok events ->
    Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length events))

(* --- salvage on damaged bytes ------------------------------------------- *)

(* Byte offset where frame [n] starts (frames are varint len + payload
   + 4-byte CRC; all test payloads are short enough for 1-byte
   varints). *)
let frame_offset n =
  let pos = ref 9 in
  for _ = 1 to n do
    let len = Char.code blob.[!pos] in
    pos := !pos + 1 + len + 4
  done;
  !pos

let test_partial_truncation () =
  (* Cut mid-way through the 4th frame: the first three events
     survive, the decoder reports the truncation, nothing raises. *)
  let cut = String.sub blob 0 (frame_offset 3 + 2) in
  let p = Journal.decode_partial cut in
  Alcotest.(check (option string)) "no header error" None p.Journal.error;
  Alcotest.(check bool) "truncated flagged" true p.Journal.truncated;
  Alcotest.(check int) "no corrupt frames" 0 p.Journal.corrupt_frames;
  Alcotest.(check bool) "prefix intact" true
    (p.Journal.events
    = [ List.nth all_kinds_events 0; List.nth all_kinds_events 1;
        List.nth all_kinds_events 2 ])

let test_partial_corrupt_frame () =
  (* Flip one payload byte of the 2nd frame without fixing its CRC:
     that frame is skipped, every other event survives. *)
  let b = Bytes.of_string blob in
  let off = frame_offset 1 + 3 in
  Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0xff);
  let p = Journal.decode_partial (Bytes.to_string b) in
  Alcotest.(check (option string)) "no header error" None p.Journal.error;
  Alcotest.(check bool) "not truncated" false p.Journal.truncated;
  Alcotest.(check int) "one corrupt frame" 1 p.Journal.corrupt_frames;
  Alcotest.(check int) "the rest decodes" (List.length all_kinds_events - 1)
    (List.length p.Journal.events);
  (* Strict decode refuses the same bytes. *)
  Alcotest.(check bool) "strict decode errors" true
    (match Journal.decode (Bytes.to_string b) with Error _ -> true | Ok _ -> false)

let test_partial_bad_header () =
  let p = Journal.decode_partial ("XXXX" ^ String.sub blob 4 (String.length blob - 4)) in
  Alcotest.(check bool) "header error reported" true (p.Journal.error <> None);
  Alcotest.(check (list reject)) "no events salvaged" [] p.Journal.events

(* --- deterministic sessions --------------------------------------------- *)

(* The recorder only listens when observability is on — exactly the
   state the CLIs' --journal flag sets up. *)
let () = Obs.enable ()

(* A tiny multi-scene clip: sessions run the whole pipeline (codec,
   FEC, NACK loop, playback), so keep the frames small and few. *)
let clip =
  let scene level =
    Video.Profile.scene ~seconds:0.75 ~noise_sigma:0. (Video.Profile.Flat level)
  in
  Video.Clip_gen.render ~width:64 ~height:48 ~fps:8.
    {
      Video.Profile.name = "journal-test";
      seed = 5;
      scenes = [ scene 40; scene 200; scene 60; scene 180 ];
    }

let run_session ~seed =
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.fault = Some (Streaming.Fault.bernoulli ~rate:0.3);
      nack_budget_s = 0.02;
      seed;
    }
  in
  match Streaming.Session.run config clip with
  | Ok report -> report
  | Error msg -> Alcotest.fail msg

let journaled ~seed =
  let j = Journal.create () in
  Journal.install j;
  Fun.protect ~finally:Journal.uninstall @@ fun () ->
  let report = run_session ~seed in
  (report, Journal.events j)

let test_journaling_is_behaviour_neutral () =
  (* The acceptance invariant: with the recorder off the session
     report is byte-identical to a journaled run's. *)
  let pp r = Format.asprintf "%a" Streaming.Session.pp_report r in
  let plain = pp (run_session ~seed:1) in
  let recorded, events = journaled ~seed:1 in
  Alcotest.(check bool) "the journal saw the session" true (events <> []);
  Alcotest.(check string) "report byte-identical with journaling on" plain
    (pp recorded)

let test_same_seed_same_journal () =
  let _, a = journaled ~seed:1 in
  let _, b = journaled ~seed:1 in
  Alcotest.(check bool) "byte-identical journals" true
    (String.equal (Journal.encode a) (Journal.encode b));
  Alcotest.(check bool) "diff finds nothing" true (Explain.diff a b = None)

let test_diff_localises_fault_seed () =
  (* Two runs differing ONLY in the fault seed: everything up to the
     first fault-injector pass is provably common, so the first
     divergent decision must be a transmit-phase event with different
     loss, and diff must pinpoint it. *)
  let _, a = journaled ~seed:1 in
  let _, b = journaled ~seed:2 in
  match Explain.diff a b with
  | None -> Alcotest.fail "seeds 1 and 2 produced identical journals"
  | Some d ->
    Alcotest.(check bool) "prefix is common" true
      (d.Explain.index <= min (List.length a) (List.length b));
    let phase_of = function
      | Some e -> Journal.phase e.Journal.kind
      | None -> -1
    in
    Alcotest.(check int) "divergence is a transmit-phase decision" 2
      (phase_of d.Explain.left);
    Alcotest.(check int) "on both sides" 2 (phase_of d.Explain.right);
    (* Everything before the divergence is equal on both sides. *)
    let prefix l = List.filteri (fun i _ -> i < d.Explain.index) l in
    Alcotest.(check bool) "events before it agree" true (prefix a = prefix b)

(* --- offline verifier corpus (V4xx) -------------------------------------- *)

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)

let check_codes what expected ds =
  Alcotest.(check (list string)) what expected (codes ds)

let check = Artifact.check_journal ~file:"t.journal"

let set_u32 b off v =
  for k = 0 to 3 do
    Bytes.set_uint8 b (off + k) ((v lsr (8 * k)) land 0xff)
  done

let test_pristine () = check_codes "pristine journal" [] (check blob)

let test_v401_bad_magic () =
  check_codes "V401" [ "V401" ]
    (check ("XXXX" ^ String.sub blob 4 (String.length blob - 4)))

let test_v402_bad_version () =
  let b = Bytes.of_string blob in
  Bytes.set_uint8 b 4 9;
  set_u32 b 5 (Journal.crc32 (String.sub (Bytes.to_string b) 0 5));
  check_codes "V402" [ "V402" ] (check (Bytes.to_string b))

let test_v403_truncated () =
  check_codes "V403 mid-header" [ "V403" ] (check (String.sub blob 0 7));
  check_codes "V403 mid-frame" [ "V403" ]
    (check (String.sub blob 0 (frame_offset 2 + 3)))

let test_v404_header_crc () =
  let b = Bytes.of_string blob in
  Bytes.set_uint8 b 5 (Bytes.get_uint8 b 5 lxor 0xff);
  check_codes "V404" [ "V404" ] (check (Bytes.to_string b))

let test_v405_frame_crc () =
  (* One flipped payload byte: V405 on that frame, and the walk
     continues — a second tampered frame is reported too. *)
  let b = Bytes.of_string blob in
  let flip n =
    let off = frame_offset n + 2 in
    Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0x01)
  in
  flip 1;
  flip 4;
  let ds = check (Bytes.to_string b) in
  check_codes "V405" [ "V405" ] ds;
  Alcotest.(check int) "walk continues past the first" 2 (List.length ds)

let test_v406_backwards_timestamp () =
  (* Swap the two scene decisions: both frames stay CRC-valid, but
     phase-1 time now runs backwards within one annotate pass. *)
  let f1 = frame_offset 1 and f2 = frame_offset 2 and f3 = frame_offset 3 in
  let swapped =
    String.sub blob 0 f1
    ^ String.sub blob f2 (f3 - f2)
    ^ String.sub blob f1 (f2 - f1)
    ^ String.sub blob f3 (String.length blob - f3)
  in
  check_codes "V406" [ "V406" ] (check swapped)

let test_v406_allows_stage_reruns () =
  (* A quality sweep annotates several times per process: phase-1 time
     restarting after an intervening phase is legitimate. *)
  let e t_us kind = { Journal.t_us; kind } in
  let decision scene t_us =
    e t_us
      (Journal.Scene_decision
         {
           scene;
           first_frame = scene * 6;
           frame_count = 6;
           register = 80;
           effective_max = 100;
           compensation_fp = 8192;
           clipped_permille = 50;
           quality_permille = 100;
           candidates = [ 80 ];
         })
  in
  let rerun =
    [
      decision 0 0;
      decision 1 750_000;
      e 0 (Journal.Dvfs_choice { policy = "annotated"; mean_mhz = 100; misses = 0 });
      decision 0 0;
      decision 1 750_000;
    ]
  in
  check_codes "stage reruns are clean" [] (check (Journal.encode rerun))

let test_v407_unknown_tag () =
  (* Hand-frame a payload with kind tag 99 and a valid CRC: framing is
     fine, the schema check must object. *)
  let payload = "\x63\x00" in
  let frame = Bytes.create (1 + String.length payload + 4) in
  Bytes.set_uint8 frame 0 (String.length payload);
  Bytes.blit_string payload 0 frame 1 (String.length payload);
  set_u32 frame (1 + String.length payload) (Journal.crc32 payload);
  check_codes "V407" [ "V407" ]
    (check (String.sub blob 0 9 ^ Bytes.to_string frame))

let test_v408_implausible_length () =
  (* A 3-byte varint declaring a 2MB frame: implausible, walk stops. *)
  let huge = "\x80\x80\x80\x01" in
  check_codes "V408" [ "V408" ] (check (String.sub blob 0 9 ^ huge))

let test_inspect_never_rejects_what_verify_accepts () =
  (* The salvage decoder must accept at least everything the strict
     verifier passes: a session journal straight off the recorder. *)
  let _, events = journaled ~seed:3 in
  let bytes = Journal.encode events in
  check_codes "verifier accepts the session journal" [] (check bytes);
  let p = Journal.decode_partial bytes in
  Alcotest.(check bool) "salvage decoder agrees" true
    (p.Journal.error = None && p.Journal.corrupt_frames = 0
    && (not p.Journal.truncated)
    && p.Journal.events = events)

let () =
  Alcotest.run "journal"
    [
      ( "wire",
        [
          Alcotest.test_case "all kinds round-trip" `Quick test_round_trip;
          Alcotest.test_case "recorder round-trip" `Quick test_recorder_round_trip;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "truncation keeps the prefix" `Quick test_partial_truncation;
          Alcotest.test_case "corrupt frame is skipped" `Quick test_partial_corrupt_frame;
          Alcotest.test_case "bad header salvages nothing" `Quick test_partial_bad_header;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "behaviour neutral" `Quick test_journaling_is_behaviour_neutral;
          Alcotest.test_case "same seed, same journal" `Quick test_same_seed_same_journal;
          Alcotest.test_case "diff localises the seed change" `Quick
            test_diff_localises_fault_seed;
        ] );
      ( "verifier corpus",
        [
          Alcotest.test_case "pristine" `Quick test_pristine;
          Alcotest.test_case "bad magic" `Quick test_v401_bad_magic;
          Alcotest.test_case "bad version" `Quick test_v402_bad_version;
          Alcotest.test_case "truncated" `Quick test_v403_truncated;
          Alcotest.test_case "header crc" `Quick test_v404_header_crc;
          Alcotest.test_case "frame crc" `Quick test_v405_frame_crc;
          Alcotest.test_case "backwards timestamp" `Quick test_v406_backwards_timestamp;
          Alcotest.test_case "stage reruns allowed" `Quick test_v406_allows_stage_reruns;
          Alcotest.test_case "unknown tag" `Quick test_v407_unknown_tag;
          Alcotest.test_case "implausible length" `Quick test_v408_implausible_length;
          Alcotest.test_case "verify/salvage agree" `Quick
            test_inspect_never_rejects_what_verify_accepts;
        ] );
    ]
