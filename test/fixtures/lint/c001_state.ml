(* Negative fixture for C001: module-level mutable state in a
   par-linked library with no concurrency story. Linted under the
   pretend path [lib/par/c001_state.ml]. *)

type t = {
  name : string;
  mutable count : int;
}

(* Annotated and atomic state does not fire. *)
type guarded = {
  lock : Mutex.t;
  mutable hits : int;  (* guarded_by: lock *)
  mutable scratch : int list;  (* owned_by: the domain that created it *)
}

let total = Atomic.make 0

let make name = { name; count = 0 }

let observe t = (t.name, t.count, Atomic.get total)
