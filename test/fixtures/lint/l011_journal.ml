(* Negative fixture: journal emission outside the sanctioned hooks (L011). *)
let note () = Obs.Journal.record (Obs.Journal.Scene_cut { scene = 1; frame = 6 })
