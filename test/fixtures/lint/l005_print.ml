(* Negative fixture: library code writing straight to the console. *)
let report n = Printf.printf "saw %d frames\n" n
