(* Clean concurrency fixture: annotated guarded state, a lock helper
   that releases on every path, accesses only under the helper. Linted
   under the pretend path [lib/par/c_clean.ml] — zero findings. *)

type t = {
  lock : Mutex.t;
  mutable hits : int;  (* guarded_by: lock *)
  mutable scratch : int list;  (* owned_by: the caller until publish *)
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create () = { lock = Mutex.create (); hits = 0; scratch = [] }

let hit t = with_lock t.lock (fun () -> t.hits <- t.hits + 1)

let hits t = with_lock t.lock (fun () -> t.hits)

let stash t v = with_lock t.lock (fun () -> t.scratch <- v :: t.scratch)
