(* Negative fixture for C002: Server.prepare's cache shape with the
   locked fast path removed — the unlocked probe races the guarded
   insert. Linted under the pretend path [lib/par/c002_cache.ml]. *)

type t = {
  cache_lock : Mutex.t;
  cache : (string, int) Hashtbl.t;  (* guarded_by: cache_lock *)
  build : string -> int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let prepare t name =
  (* double-checked locking with the locked check removed *)
  match Hashtbl.find_opt t.cache name with
  | Some v -> v
  | None ->
    let v = t.build name in
    with_lock t.cache_lock (fun () -> Hashtbl.replace t.cache name v);
    v
