(* Negative fixture for C006: a raw concurrency primitive outside the
   sanctioned modules. Linted under the pretend path
   [lib/annot/c006_primitive.ml] — par-linked, but not a sanctioned
   home for Domain/Mutex/Condition. *)

let spawn_worker f = Domain.spawn f
