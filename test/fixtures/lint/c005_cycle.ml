(* Negative fixture for C005: two bindings acquire the same two
   mutexes in opposite orders. The nested acquisitions themselves
   carry reasoned C004 allows so only the cycle fires. Linted under
   the pretend path [lib/par/c005_cycle.ml]. *)

let a = Mutex.create ()
let b = Mutex.create ()

let ab () =
  Mutex.lock a;
  (* lint: allow C004 fixture exercises the cycle rule, not nesting *)
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let ba () =
  Mutex.lock b;
  (* lint: allow C004 fixture exercises the cycle rule, not nesting *)
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
