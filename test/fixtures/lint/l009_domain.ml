(* Negative fixture: raw Domain.spawn outside lib/par (L009). *)
let result =
  let worker = Domain.spawn (fun () -> 6 * 7) in
  Domain.join worker
