(* Negative fixture: a suppression with no reason attached. *)
(* lint: allow L003 *)
let x = 1
