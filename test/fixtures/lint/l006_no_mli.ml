(* Negative fixture: perfectly clean code, but no .mli next to it. *)
let answer = 42
