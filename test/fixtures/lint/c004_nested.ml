(* Negative fixture for C004: taking a second mutex while one is
   already held. Linted under the pretend path
   [lib/par/c004_nested.ml]. *)

let a = Mutex.create ()
let b = Mutex.create ()

let nested () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

(* Sequential (non-nested) use does not fire. *)
let sequential () =
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.lock b;
  Mutex.unlock b
