(* Negative fixture: exact equality on a floating-point value. *)
let is_zero x = x = 0.0
