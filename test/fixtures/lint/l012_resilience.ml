(* Negative fixture: breaker state mutated outside lib/resilience and
   the sanctioned streaming integration sites (L012). *)
let bend breaker = Resilience.Breaker.record breaker ~now_s:0. ~ok:false
