(* Negative fixture: a wildcard handler that eats every exception. *)
let quietly f = try Some (f ()) with _ -> None
