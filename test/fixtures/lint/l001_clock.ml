(* Negative fixture: reads the ambient wall clock directly. *)
let stamp () = Unix.gettimeofday ()
