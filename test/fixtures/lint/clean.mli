val sorted_keys : (string, 'a) Hashtbl.t -> string list
val lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b option
val logged : (unit -> 'a) -> 'a
val nearly_zero : float -> bool
val stamp : unit -> float
