(* Negative fixture: raw Power.Meter sampling outside lib/power (L010). *)
let energy =
  let meter = Power.Meter.create () in
  meter
