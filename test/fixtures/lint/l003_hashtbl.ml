(* Negative fixture: hash-order fold whose result is never sorted. *)
let keys table = Hashtbl.fold (fun k _ acc -> k :: acc) table []
