(* Negative fixture for C003: a mutex locked but never released in
   the same binding. Linted under the pretend path
   [lib/par/c003_leak.ml]. *)

let m = Mutex.create ()

let bump cell =
  Mutex.lock m;
  incr cell

(* A balanced sibling does not fire. *)
let read cell =
  Mutex.lock m;
  let v = !cell in
  Mutex.unlock m;
  v
