(* Positive fixture: the allowed spellings of everything the linter
   polices. Must produce zero diagnostics. *)

(* Hash-order fold is fine when the result is sorted in-expression. *)
let sorted_keys table =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare

(* Catching a *specific* exception is not swallowing. *)
let lookup table k = try Some (Hashtbl.find table k) with Not_found -> None

(* A wildcard that re-raises is an annotation point, not a swallow. *)
let logged f =
  try f ()
  with e ->
    ignore e;
    raise e

(* Float comparison against a tolerance. *)
let nearly_zero x = Float.abs x < 1e-9

(* A reasoned suppression is honoured. *)
(* lint: allow L001 fixture demonstrating a well-formed suppression *)
let stamp () = Unix.gettimeofday ()
