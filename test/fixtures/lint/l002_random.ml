(* Negative fixture: seeds the global PRNG from the environment. *)
let scramble () = Random.self_init ()
