(* Interface present so only L005 fires on the implementation. *)
val report : int -> unit
