(* The domain pool: deterministic iteration, exception propagation,
   lifecycle — and the tentpole property, [profile ~pool] bit-identical
   to the sequential pass at every domain count. *)

module Pool = Par.Pool

(* Jobs the determinism properties sweep. 8 oversubscribes any CI
   host, which is exactly the point: the output must not care. *)
let job_counts = [ 1; 2; 4; 8 ]

(* --- parallel_for ------------------------------------------------------- *)

let test_parallel_for_covers_range () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          List.iter
            (fun n ->
              let hits = Array.make n 0 in
              Pool.parallel_for pool ~lo:0 ~hi:(n - 1) (fun i ->
                  hits.(i) <- hits.(i) + 1);
              Alcotest.(check (array int))
                (Printf.sprintf "each of %d indices once at %d jobs" n jobs)
                (Array.make n 1) hits)
            [ 1; 7; 64; 257 ]))
    job_counts

let test_parallel_for_empty_range () =
  Pool.with_pool ~domains:2 (fun pool ->
      let ran = ref false in
      Pool.parallel_for pool ~lo:3 ~hi:2 (fun _ -> ran := true);
      Alcotest.(check bool) "empty range is a no-op" false !ran)

let test_parallel_for_distinct_slots () =
  let n = 500 in
  let expected = Array.init n (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          let out = Array.make n 0 in
          Pool.parallel_for pool ~chunk_size:17 ~lo:0 ~hi:(n - 1) (fun i ->
              out.(i) <- i * i);
          Alcotest.(check (array int))
            (Printf.sprintf "slot writes at %d jobs" jobs)
            expected out))
    job_counts

(* --- map_reduce --------------------------------------------------------- *)

let test_map_reduce_matches_fold () =
  let lo = 2 and hi = 321 in
  let expected = ref 0 in
  for i = lo to hi do
    expected := !expected + (i * 3)
  done;
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          let got =
            Pool.map_reduce pool ~lo ~hi ~map:(fun i -> i * 3) ~reduce:( + )
              0
          in
          Alcotest.(check int)
            (Printf.sprintf "sum at %d jobs" jobs)
            !expected got))
    job_counts

let test_map_reduce_non_commutative () =
  (* String concatenation is non-commutative: only a strict
     left-to-right reduction over a pool-size-independent chunking
     yields the sequential answer at every domain count. *)
  let lo = 0 and hi = 99 in
  let map i = string_of_int i ^ ";" in
  let sequential = ref "" in
  for i = lo to hi do
    sequential := !sequential ^ map i
  done;
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          List.iter
            (fun chunk_size ->
              let got =
                Pool.map_reduce pool ~chunk_size ~lo ~hi ~map ~reduce:( ^ )
                  ""
              in
              Alcotest.(check string)
                (Printf.sprintf "concat at %d jobs, chunk %d" jobs chunk_size)
                !sequential got)
            [ 1; 7; 100 ]))
    job_counts

let test_map_reduce_empty_range () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check int) "empty range returns init" 42
        (Pool.map_reduce pool ~lo:1 ~hi:0
           ~map:(fun _ -> failwith "must not map")
           ~reduce:( + ) 42))

(* --- exception propagation ---------------------------------------------- *)

let test_lowest_failing_index_wins () =
  (* Indices 3 and 7 both fail; one chunk per index, so the caller
     must see index 3's exception — what a sequential run hits first —
     no matter which domain ran it. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "lowest failure at %d jobs" jobs)
            (Failure "body 3")
            (fun () ->
              Pool.parallel_for pool ~chunk_size:1 ~lo:0 ~hi:9 (fun i ->
                  if i = 3 || i = 7 then
                    failwith (Printf.sprintf "body %d" i)))))
    job_counts

let test_pool_survives_failure () =
  Pool.with_pool ~domains:4 (fun pool ->
      (try
         Pool.parallel_for pool ~chunk_size:1 ~lo:0 ~hi:7 (fun i ->
             if i >= 4 then failwith "boom")
       with Failure _ -> ());
      (* Every chunk still drained; the pool is reusable. *)
      let total =
        Pool.map_reduce pool ~lo:1 ~hi:10 ~map:Fun.id ~reduce:( + ) 0
      in
      Alcotest.(check int) "pool still works after a failed op" 55 total)

(* --- map_array / map_list ------------------------------------------------ *)

let test_map_array_order () =
  let input = Array.init 123 (fun i -> i) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "map_array at %d jobs" jobs)
            (Array.map (fun x -> (x * 2) + 1) input)
            (Pool.map_array pool (fun x -> (x * 2) + 1) input)))
    job_counts;
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (array int)) "empty array" [||]
        (Pool.map_array pool (fun x -> x) [||]))

let test_map_array_applies_once () =
  Pool.with_pool ~domains:4 (fun pool ->
      let calls = Array.make 50 0 in
      let _ =
        Pool.map_array pool
          (fun i ->
            calls.(i) <- calls.(i) + 1;
            i)
          (Array.init 50 (fun i -> i))
      in
      Alcotest.(check (array int)) "f once per element" (Array.make 50 1) calls)

let test_map_list_order () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = List.init 77 string_of_int in
      Alcotest.(check (list string))
        "map_list preserves order" input
        (Pool.map_list pool Fun.id input);
      Alcotest.(check (list int)) "empty list" [] (Pool.map_list pool Fun.id []))

(* --- lifecycle ----------------------------------------------------------- *)

let test_create_validates () =
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Par.Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_domains_reported () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "domains" 3 (Pool.domains pool));
  Alcotest.(check bool) "recommended is positive" true (Pool.recommended () >= 1)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "ops after shutdown raise"
    (Invalid_argument "Par.Pool: pool is shut down") (fun () ->
      Pool.parallel_for pool ~lo:0 ~hi:3 ignore)

let test_env_jobs_default () =
  (* PAR_JOBS is set by `make check` runs; all we can assert portably
     is that the parse never yields an invalid domain count. *)
  Alcotest.(check bool) "env_jobs is a valid count" true
    (Pool.env_jobs () >= 1);
  Alcotest.(check bool) "default honoured when sensible" true
    (Pool.env_jobs ~default:3 () >= 1)

let test_normalize_jobs_boundaries () =
  (* The single normalization point every CLI/env/scheduler path
     funnels through: clamp into [1, host], never error. *)
  let host = 4 in
  Alcotest.(check int) "zero clamps to 1" 1 (Pool.normalize_jobs ~host 0);
  Alcotest.(check int) "negative clamps to 1" 1 (Pool.normalize_jobs ~host (-7));
  Alcotest.(check int) "min_int clamps to 1" 1
    (Pool.normalize_jobs ~host min_int);
  Alcotest.(check int) "one passes through" 1 (Pool.normalize_jobs ~host 1);
  Alcotest.(check int) "in-range passes through" 3 (Pool.normalize_jobs ~host 3);
  Alcotest.(check int) "host boundary passes through" host
    (Pool.normalize_jobs ~host host);
  Alcotest.(check int) "oversized caps at host" host
    (Pool.normalize_jobs ~host 4096);
  Alcotest.(check int) "max_int caps at host" host
    (Pool.normalize_jobs ~host max_int);
  (* A nonsensical host hint falls back to the recommended count. *)
  Alcotest.(check bool) "invalid host ignored" true
    (Pool.normalize_jobs ~host:0 9 >= 1);
  Alcotest.(check bool) "default host is recommended" true
    (Pool.normalize_jobs max_int = Pool.normalize_jobs ~host:(Pool.recommended ()) max_int)

(* --- the tentpole property: parallel profiling is bit-identical ---------- *)

let check_profiled_equal ~what (a : Annotation.Annotator.profiled)
    (b : Annotation.Annotator.profiled) =
  Alcotest.(check string) (what ^ ": clip_name") a.Annotation.Annotator.clip_name
    b.Annotation.Annotator.clip_name;
  Alcotest.(check (float 0.)) (what ^ ": fps") a.Annotation.Annotator.fps
    b.Annotation.Annotator.fps;
  Alcotest.(check int) (what ^ ": total_frames")
    a.Annotation.Annotator.total_frames b.Annotation.Annotator.total_frames;
  Alcotest.(check (array int)) (what ^ ": max_track")
    a.Annotation.Annotator.max_track b.Annotation.Annotator.max_track;
  Alcotest.(check (array (float 0.))) (what ^ ": mean_track")
    a.Annotation.Annotator.mean_track b.Annotation.Annotator.mean_track;
  Alcotest.(check int) (what ^ ": histogram count")
    (Array.length a.Annotation.Annotator.histograms)
    (Array.length b.Annotation.Annotator.histograms);
  Array.iteri
    (fun i ha ->
      Alcotest.(check (array int))
        (Printf.sprintf "%s: histogram %d" what i)
        (Image.Histogram.to_array ha)
        (Image.Histogram.to_array b.Annotation.Annotator.histograms.(i)))
    a.Annotation.Annotator.histograms

let render profile =
  Video.Clip_gen.render ~width:32 ~height:24 ~fps:8. profile

let test_profile_jobs_invariant () =
  List.iter
    (fun profile ->
      let clip = render profile in
      let sequential = Annotation.Annotator.profile clip in
      List.iter
        (fun jobs ->
          if jobs > 1 then
            Pool.with_pool ~domains:jobs (fun pool ->
                check_profiled_equal
                  ~what:
                    (Printf.sprintf "%s at %d jobs" profile.Video.Profile.name
                       jobs)
                  sequential
                  (Annotation.Annotator.profile ~pool clip)))
        job_counts)
    [ Video.Workloads.themovie; Video.Workloads.officexp ]

let test_profile_channel_max_invariant () =
  let clip = render Video.Workloads.catwoman in
  let sequential = Annotation.Annotator.profile ~plane:`Channel_max clip in
  Pool.with_pool ~domains:4 (fun pool ->
      check_profiled_equal ~what:"channel_max plane" sequential
        (Annotation.Annotator.profile ~plane:`Channel_max ~pool clip))

let prop_profile_parametric_invariant =
  QCheck2.Test.make ~count:5
    ~name:"profile ~pool = profile on generated clips, any domain count"
    QCheck2.Gen.(
      triple (0 -- 220) (10 -- 255) (float_range 1.0 3.0))
    (fun (base_level, highlight_peak, seconds) ->
      let profile =
        Video.Workloads.parametric ~seconds ~base_level ~highlight_peak ()
      in
      let clip = render profile in
      let sequential = Annotation.Annotator.profile clip in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~domains:jobs (fun pool ->
              let par = Annotation.Annotator.profile ~pool clip in
              sequential.Annotation.Annotator.max_track
                = par.Annotation.Annotator.max_track
              && sequential.Annotation.Annotator.mean_track
                 = par.Annotation.Annotator.mean_track
              && Array.for_all2
                   (fun a b ->
                     Image.Histogram.to_array a = Image.Histogram.to_array b)
                   sequential.Annotation.Annotator.histograms
                   par.Annotation.Annotator.histograms))
        [ 2; 4; 8 ])

let test_annotate_with_pool_identical_track () =
  let clip = render Video.Workloads.returnoftheking in
  let device = Display.Device.ipaq_h5555 in
  let quality = Annotation.Quality_level.Loss_10 in
  let sequential = Annotation.Annotator.annotate ~device ~quality clip in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Annotation.Annotator.annotate ~pool ~device ~quality clip in
      Alcotest.(check string) "encoded tracks are byte-identical"
        (Annotation.Encoding.encode sequential)
        (Annotation.Encoding.encode par))

let () =
  Alcotest.run "par"
    [
      ( "parallel_for",
        [
          Alcotest.test_case "covers the range once" `Quick
            test_parallel_for_covers_range;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "distinct slot writes" `Quick
            test_parallel_for_distinct_slots;
        ] );
      ( "map_reduce",
        [
          Alcotest.test_case "matches sequential fold" `Quick
            test_map_reduce_matches_fold;
          Alcotest.test_case "non-commutative reduce is stable" `Quick
            test_map_reduce_non_commutative;
          Alcotest.test_case "empty range" `Quick test_map_reduce_empty_range;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "lowest failing index wins" `Quick
            test_lowest_failing_index_wins;
          Alcotest.test_case "pool survives a failed op" `Quick
            test_pool_survives_failure;
        ] );
      ( "map",
        [
          Alcotest.test_case "map_array order" `Quick test_map_array_order;
          Alcotest.test_case "map_array applies once" `Quick
            test_map_array_applies_once;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "domains reported" `Quick test_domains_reported;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "env_jobs" `Quick test_env_jobs_default;
          Alcotest.test_case "normalize_jobs boundaries" `Quick
            test_normalize_jobs_boundaries;
        ] );
      ( "profiling determinism",
        Alcotest.test_case "workload clips, jobs in {1,2,4,8}" `Quick
          test_profile_jobs_invariant
        :: Alcotest.test_case "channel-max plane" `Quick
             test_profile_channel_max_invariant
        :: Alcotest.test_case "annotate ~pool encodes identically" `Quick
             test_annotate_with_pool_identical_track
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_profile_parametric_invariant ] );
    ]
