(* Chaos tests for the fault-injection layer and the hardened
   annotation path: fault models, partial FEC recovery, CRC-protected
   records, the NACK loop, and per-scene degradation in the session. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let flt = Alcotest.float 1e-9

let device = Display.Device.ipaq_h5555

(* Six crisp scenes alternating dark and bright, so the annotation
   track has several entries with genuinely different registers. *)
let six_scene_clip () =
  let scene level =
    Video.Profile.scene ~seconds:0.75 ~noise_sigma:0. (Video.Profile.Flat level)
  in
  let profile =
    {
      Video.Profile.name = "chaos-test";
      seed = 11;
      scenes = [ scene 40; scene 200; scene 60; scene 180; scene 50; scene 220 ];
    }
  in
  Video.Clip_gen.render ~width:48 ~height:32 ~fps:8. profile

let run_session config clip =
  match Streaming.Session.run config clip with
  | Ok r -> r
  | Error e -> Alcotest.fail e

(* --- fault profiles ------------------------------------------------------ *)

let test_profile_parse () =
  (match Streaming.Fault.parse "model = bernoulli\nrate = 0.25\n" with
  | Error e -> Alcotest.fail e
  | Ok f -> (
    match f.Streaming.Fault.loss with
    | Streaming.Fault.Bernoulli r -> check flt "rate" 0.25 r
    | _ -> Alcotest.fail "expected bernoulli"));
  match
    Streaming.Fault.parse
      "# comment\nmodel = gilbert\nmean_loss = 0.1\nburst_length = 4\n\
       corrupt = 0.001\nreorder = 0.02\njitter_ms = 5\ncollapse_at = 0.5\n\
       collapse_factor = 0.25  # tail comment\n"
  with
  | Error e -> Alcotest.fail e
  | Ok f ->
    (match f.Streaming.Fault.loss with
    | Streaming.Fault.Gilbert { p_enter_bad; p_exit_bad; _ } ->
      check flt "exit = 1/burst" 0.25 p_exit_bad;
      (* enter = exit * pi / (1 - pi) with pi = 0.1 *)
      check (Alcotest.float 1e-6) "enter" (0.25 *. 0.1 /. 0.9) p_enter_bad
    | _ -> Alcotest.fail "expected gilbert");
    check flt "corrupt" 0.001 f.Streaming.Fault.corrupt_rate;
    check flt "reorder" 0.02 f.Streaming.Fault.reorder_rate;
    check flt "jitter" 0.005 f.Streaming.Fault.jitter_s;
    (match f.Streaming.Fault.collapse with
    | Some c ->
      check flt "collapse at" 0.5 c.Streaming.Fault.at_fraction;
      check flt "collapse factor" 0.25 c.Streaming.Fault.factor
    | None -> Alcotest.fail "expected collapse");
    check flt "factor before" 1.
      (Streaming.Fault.bandwidth_factor f ~progress:0.3);
    check flt "factor after" 0.25
      (Streaming.Fault.bandwidth_factor f ~progress:0.7)

let test_profile_rejects_garbage () =
  let bad text = check bool text true (Result.is_error (Streaming.Fault.parse text)) in
  bad "model = warp\n";
  bad "model = bernoulli\n";               (* rate missing *)
  bad "model = gilbert\nmean_loss = 0.1\n" (* burst missing *);
  bad "model = bernoulli\nrate = 1.5\n";
  bad "rate = 0.1\n";                      (* loss params without a model *)
  bad "model = gilbert\nmean_loss = 0.1\nburst_length = 0.5\n";
  bad "collapse_at = 0.5\n";               (* factor missing *)
  bad "model=bernoulli\nrate=0.1\ncollapse_at=0.5\ncollapse_factor=0\n";
  bad "frobnicate = 1\n";
  bad "just some words\n";
  (* load goes through the same parser; exercise the file plumbing. *)
  let path = Filename.temp_file "fault" ".fault" in
  let oc = open_out path in
  output_string oc "model = gilbert\nmean_loss = 0.10\nburst_length = 4\n";
  close_out oc;
  check bool "profile file loads" true
    (Result.is_ok (Streaming.Fault.load ~path));
  Sys.remove path;
  check bool "missing file is an error" true
    (Result.is_error (Streaming.Fault.load ~path:"/nonexistent/x.fault"))

let test_loss_mask_edges () =
  let none = Streaming.Fault.none in
  check bool "no loss" true
    (Array.for_all not (Streaming.Fault.loss_mask none ~seed:1 ~n:500));
  let all = Streaming.Fault.bernoulli ~rate:1. in
  check bool "total loss" true
    (Array.for_all (fun b -> b) (Streaming.Fault.loss_mask all ~seed:1 ~n:500));
  check int "empty train" 0 (Array.length (Streaming.Fault.loss_mask all ~seed:1 ~n:0))

let test_gilbert_statistics () =
  let f = Streaming.Fault.gilbert ~mean_loss:0.1 ~burst_length:4. () in
  let n = 40_000 in
  let mask = Streaming.Fault.loss_mask f ~seed:7 ~n in
  let losses = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
  let mean = float_of_int losses /. float_of_int n in
  check bool "mean loss near 10%" true (mean > 0.07 && mean < 0.13);
  (* Burstiness: mean run length of consecutive losses well above the
     i.i.d. value (1 / (1 - rate) ~ 1.11 at 10%). *)
  let runs = ref 0 and prev = ref false in
  Array.iter
    (fun b ->
      if b && not !prev then incr runs;
      prev := b)
    mask;
  let mean_burst = float_of_int losses /. float_of_int (max 1 !runs) in
  check bool "bursty" true (mean_burst > 2.);
  (* Determinism: same seed, same mask; different seed, different mask. *)
  check bool "deterministic" true (mask = Streaming.Fault.loss_mask f ~seed:7 ~n);
  check bool "seed-sensitive" true (mask <> Streaming.Fault.loss_mask f ~seed:8 ~n)

let test_apply_corruption () =
  let f = { Streaming.Fault.none with Streaming.Fault.corrupt_rate = 1. } in
  let packets = [| "hello"; "world" |] in
  let out = Streaming.Fault.apply f ~seed:3 packets in
  Array.iteri
    (fun i p ->
      match p with
      | None -> Alcotest.fail "corruption must not drop packets"
      | Some s ->
        check int "length preserved" (String.length packets.(i)) (String.length s);
        check bool "every byte flipped" true
          (String.to_seq s |> Seq.zip (String.to_seq packets.(i))
          |> Seq.for_all (fun (a, b) -> a <> b)))
    out;
  (* Zero corruption shares the input strings untouched. *)
  let clean = Streaming.Fault.apply Streaming.Fault.none ~seed:3 packets in
  check bool "clean passthrough" true (clean = [| Some "hello"; Some "world" |]);
  (* Reorder displaces (drops) some deliveries without corrupting others. *)
  let r = { Streaming.Fault.none with Streaming.Fault.reorder_rate = 0.5 } in
  let out = Streaming.Fault.apply r ~seed:5 (Array.make 200 "x") in
  let dropped = Array.fold_left (fun a p -> if p = None then a + 1 else a) 0 out in
  check bool "reorder drops some" true (dropped > 50 && dropped < 150)

let test_delay_and_collapse () =
  let f = { Streaming.Fault.none with Streaming.Fault.jitter_s = 0.01 } in
  let d = Streaming.Fault.delay_s f ~seed:1 ~index:42 in
  check bool "jitter in range" true (d >= 0. && d < 0.01);
  check flt "random access deterministic" d
    (Streaming.Fault.delay_s f ~seed:1 ~index:42);
  check flt "no jitter" 0. (Streaming.Fault.delay_s Streaming.Fault.none ~seed:1 ~index:0);
  check flt "no collapse" 1.
    (Streaming.Fault.bandwidth_factor Streaming.Fault.none ~progress:0.9)

(* --- FEC: recover_detail and the exhaustive single/double loss grid ----- *)

let random_payload rng n =
  String.init n (fun _ -> Char.chr (Image.Prng.int rng 256))

(* Satellite: for every group layout, every single-loss position
   recovers byte-identically and every double-loss-in-group fails,
   empty payload included. *)
let test_fec_loss_grid () =
  let rng = Image.Prng.create ~seed:99 in
  List.iter
    (fun packet_size ->
      List.iter
        (fun group_size ->
          List.iter
            (fun len ->
              let payload = random_payload rng len in
              let t = Streaming.Fec.protect ~packet_size ~group_size payload in
              let n = Array.length t.Streaming.Fec.packets in
              let all_present () = Array.map Option.some t.Streaming.Fec.packets in
              (* Nothing lost. *)
              (match Streaming.Fec.recover t ~present:(all_present ()) with
              | Ok p -> check bool "intact" true (p = payload)
              | Error e -> Alcotest.fail e);
              (* Every single loss (data or parity) recovers. *)
              for i = 0 to n - 1 do
                let present = all_present () in
                present.(i) <- None;
                match Streaming.Fec.recover t ~present with
                | Ok p ->
                  check bool
                    (Printf.sprintf "single loss %d (ps %d gs %d len %d)" i
                       packet_size group_size len)
                    true (p = payload)
                | Error e -> Alcotest.fail e
              done;
              (* Every double loss inside one group fails. *)
              let data = t.Streaming.Fec.data_packets in
              for i = 0 to data - 1 do
                for j = i + 1 to data - 1 do
                  if i / group_size = j / group_size then begin
                    let present = all_present () in
                    present.(i) <- None;
                    present.(j) <- None;
                    check bool
                      (Printf.sprintf "double loss %d %d errors" i j)
                      true
                      (Result.is_error (Streaming.Fec.recover t ~present));
                    (* recover_detail salvages everything else. *)
                    let r = Streaming.Fec.recover_detail t ~present in
                    check bool "failed group listed" true
                      (r.Streaming.Fec.failed_groups = [ i / group_size ]);
                    (* byte_ok distrusts exactly the unrecoverable
                       packets; delivered packets in the failed group
                       are still intact data. *)
                    String.iteri
                      (fun b ok_c ->
                        let pkt = b / packet_size in
                        let ok = r.Streaming.Fec.byte_ok.(b) in
                        check bool "byte_ok marks lost packets"
                          (pkt <> i && pkt <> j) ok;
                        if ok then
                          check bool "intact bytes identical" true
                            (ok_c = payload.[b])
                        else
                          check bool "lost bytes zero-filled" true
                            (ok_c = '\000'))
                      r.Streaming.Fec.payload
                  end
                done
              done)
            [ 0; 1; 7; 24; 25 ])
        [ 1; 2; 3 ])
    [ 1; 3; 8 ]

let test_fec_recover_detail_clean () =
  let payload = random_payload (Image.Prng.create ~seed:5) 100 in
  let t = Streaming.Fec.protect ~packet_size:24 ~group_size:3 payload in
  let r =
    Streaming.Fec.recover_detail t
      ~present:(Array.map Option.some t.Streaming.Fec.packets)
  in
  check bool "payload identical" true (r.Streaming.Fec.payload = payload);
  check bool "all bytes ok" true (Array.for_all (fun b -> b) r.Streaming.Fec.byte_ok);
  check bool "no failed groups" true (r.Streaming.Fec.failed_groups = []);
  check int "nothing repaired" 0 r.Streaming.Fec.repaired_packets;
  (* A single loss is repaired and counted. *)
  let present = Array.map Option.some t.Streaming.Fec.packets in
  present.(1) <- None;
  let r = Streaming.Fec.recover_detail t ~present in
  check bool "repaired payload identical" true (r.Streaming.Fec.payload = payload);
  check int "one repair" 1 r.Streaming.Fec.repaired_packets

(* --- Encoding v2: CRC records and partial decode ------------------------ *)

let sample_track () =
  let entry ~first ~count ~register ~eff =
    {
      Annotation.Track.first_frame = first;
      frame_count = count;
      register;
      compensation = 255. /. float_of_int (max 1 eff);
      effective_max = eff;
    }
  in
  Annotation.Track.make ~clip_name:"chaos" ~device_name:"ipaq_h5555"
    ~quality:Annotation.Quality_level.Loss_10 ~fps:8. ~total_frames:100
    [|
      (* Adjacent entries must differ or run-merging fuses them. *)
      entry ~first:0 ~count:20 ~register:120 ~eff:150;
      entry ~first:20 ~count:20 ~register:255 ~eff:255;
      entry ~first:40 ~count:20 ~register:120 ~eff:150;
      entry ~first:60 ~count:20 ~register:90 ~eff:120;
      entry ~first:80 ~count:20 ~register:200 ~eff:230;
    |]

let test_crc32_vector () =
  (* The classic IEEE 802.3 check value. *)
  check int "crc32(123456789)" 0xCBF43926 (Annotation.Encoding.crc32 "123456789")

let test_v1_compat () =
  let t = sample_track () in
  let v1 = Annotation.Encoding.encode_v1 t in
  check int "v1 marker" 1 (Char.code v1.[4]);
  (match Annotation.Encoding.decode v1 with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check (array int))
      "v1 registers survive"
      (Annotation.Track.register_track t)
      (Annotation.Track.register_track t'));
  let v2 = Annotation.Encoding.encode t in
  check int "v2 marker" 2 (Char.code v2.[4]);
  check bool "v2 self-describing records cost more" true
    (String.length v2 > String.length v1)

let test_decode_partial_classification () =
  let t = sample_track () in
  let data = Annotation.Encoding.encode t in
  let n = String.length data in
  let record_size = 15 in
  let records_start = n - (5 * record_size) in
  (* Intact payload: every record survives. *)
  (match Annotation.Encoding.decode_partial data with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check int "all intact" 5
      (Array.fold_left (fun a e -> if e = None then a else a + 1) 0
         p.Annotation.Encoding.entries);
    check int "no corrupt" 0 p.Annotation.Encoding.corrupt_records;
    check int "no missing" 0 p.Annotation.Encoding.missing_records);
  (* Flip a byte inside record 2: CRC catches it, everything else
     survives. *)
  let mutated = Bytes.of_string data in
  let pos = records_start + (2 * record_size) + 3 in
  Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0x40));
  (match Annotation.Encoding.decode_partial (Bytes.to_string mutated) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check int "one corrupt" 1 p.Annotation.Encoding.corrupt_records;
    check bool "record 2 dropped" true (p.Annotation.Encoding.entries.(2) = None);
    check bool "record 1 kept" true (p.Annotation.Encoding.entries.(1) <> None));
  (* Mark record 3's bytes as lost in transit: missing, not corrupt. *)
  let byte_ok = Array.make n true in
  Array.fill byte_ok (records_start + (3 * record_size)) record_size false;
  (match Annotation.Encoding.decode_partial ~byte_ok data with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check int "one missing" 1 p.Annotation.Encoding.missing_records;
    check bool "record 3 dropped" true (p.Annotation.Encoding.entries.(3) = None));
  (* A lost header is fatal. *)
  let byte_ok = Array.make n true in
  byte_ok.(2) <- false;
  check bool "lost header is an error" true
    (Result.is_error (Annotation.Encoding.decode_partial ~byte_ok data));
  (* Strict decode refuses any record corruption outright. *)
  check bool "strict decode rejects mutation" true
    (Result.is_error (Annotation.Encoding.decode (Bytes.to_string mutated)))

let test_decode_partial_v1_all_or_nothing () =
  let t = sample_track () in
  let v1 = Annotation.Encoding.encode_v1 t in
  (match Annotation.Encoding.decode_partial v1 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check int "v1 fully intact" 5
      (Array.fold_left (fun a e -> if e = None then a else a + 1) 0
         p.Annotation.Encoding.entries));
  let byte_ok = Array.make (String.length v1) true in
  byte_ok.(String.length v1 - 1) <- false;
  check bool "damaged v1 unusable" true
    (Result.is_error (Annotation.Encoding.decode_partial ~byte_ok v1))

(* --- patch_partial: the degradation policy ------------------------------ *)

let partial_of_track ?(drop = []) t =
  let t = Annotation.Track.merge_runs t in
  {
    Annotation.Encoding.clip_name = t.Annotation.Track.clip_name;
    device_name = t.Annotation.Track.device_name;
    quality = t.Annotation.Track.quality;
    fps = t.Annotation.Track.fps;
    total_frames = t.Annotation.Track.total_frames;
    entries =
      Array.mapi
        (fun i e -> if List.mem i drop then None else Some e)
        t.Annotation.Track.entries;
    corrupt_records = 0;
    missing_records = List.length drop;
  }

let test_patch_full_backlight () =
  let t = sample_track () in
  let patched, degraded =
    Streaming.Session.patch_partial Streaming.Session.Full_backlight
      (partial_of_track ~drop:[ 1; 3 ] t)
  in
  check int "two degraded" 2 degraded;
  check int "frames covered" 100
    (Array.fold_left
       (fun a (e : Annotation.Track.entry) -> a + e.Annotation.Track.frame_count)
       0 patched.Annotation.Track.entries);
  let regs = Annotation.Track.register_track patched in
  let orig = Annotation.Track.register_track t in
  for i = 0 to 99 do
    if i >= 20 && i < 40 then check int "gap at full backlight" 255 regs.(i)
    else if i >= 60 && i < 80 then check int "gap at full backlight" 255 regs.(i)
    else check int "intact scenes keep dimming" orig.(i) regs.(i)
  done

let test_patch_neighbour_clamp () =
  let t = sample_track () in
  (* Scene 3 sits between scenes 2 and 4... but scenes 2 and 4 differ,
     so even Neighbour_clamp refuses to guess for it. Scene 3's twin
     case: drop only entry 3 whose neighbours (2, 4) disagree ->
     full backlight; drop nothing else. *)
  let patched, degraded =
    Streaming.Session.patch_partial Streaming.Session.Neighbour_clamp
      (partial_of_track ~drop:[ 3 ] t)
  in
  check int "one degraded" 1 degraded;
  let regs = Annotation.Track.register_track patched in
  for i = 60 to 79 do
    check int "disagreeing neighbours: no guess" 255 regs.(i)
  done;
  (* Drop entry 1 (between two identical 120-register scenes): the
     clamp adopts the agreed level. *)
  let t2 =
    Annotation.Track.make ~clip_name:"c" ~device_name:"d"
      ~quality:Annotation.Quality_level.Loss_10 ~fps:8. ~total_frames:60
      [|
        { Annotation.Track.first_frame = 0; frame_count = 20; register = 120;
          compensation = 1.7; effective_max = 150 };
        { Annotation.Track.first_frame = 20; frame_count = 20; register = 30;
          compensation = 2.5; effective_max = 100 };
        { Annotation.Track.first_frame = 40; frame_count = 20; register = 120;
          compensation = 1.7; effective_max = 150 };
      |]
  in
  let patched, degraded =
    Streaming.Session.patch_partial Streaming.Session.Neighbour_clamp
      (partial_of_track ~drop:[ 1 ] t2)
  in
  check int "one degraded" 1 degraded;
  let regs = Annotation.Track.register_track patched in
  for i = 20 to 39 do
    check int "agreeing neighbours clamp the gap" 120 regs.(i)
  done;
  (* The same drop under Full_backlight stays at 255: clamping saves
     strictly more energy, conservatively. *)
  let fb, _ =
    Streaming.Session.patch_partial Streaming.Session.Full_backlight
      (partial_of_track ~drop:[ 1 ] t2)
  in
  check int "full backlight for comparison" 255
    (Annotation.Track.register_track fb).(25);
  (* Leading and trailing gaps have only one neighbour: never guessed. *)
  let patched, _ =
    Streaming.Session.patch_partial Streaming.Session.Neighbour_clamp
      (partial_of_track ~drop:[ 0; 2 ] t2)
  in
  let regs = Annotation.Track.register_track patched in
  check int "leading gap safe" 255 regs.(0);
  check int "trailing gap safe" 255 regs.(59)

(* --- NACK / retransmit loop --------------------------------------------- *)

let test_nack_repairs_within_budget () =
  let fault = Streaming.Fault.bernoulli ~rate:0.5 in
  let packets = Array.init 12 (fun i -> String.make 24 (Char.chr (65 + i))) in
  let arrival = Streaming.Fault.apply fault ~seed:21 packets in
  let missing_before =
    Array.fold_left (fun a p -> if p = None then a + 1 else a) 0 arrival
  in
  check bool "something to repair" true (missing_before > 0);
  let repaired, stats =
    Streaming.Transport.nack_retransmit ~fault:Streaming.Fault.none
      ~link:Streaming.Netsim.wlan_80211b ~budget_s:0.5 ~seed:4 ~packets arrival
  in
  (* A clean retransmission channel with a generous budget repairs
     everything in one round. *)
  check bool "all repaired" true (Array.for_all (fun p -> p <> None) repaired);
  check int "one round" 1 stats.Streaming.Transport.nack_rounds;
  check int "retransmitted = missing" missing_before
    stats.Streaming.Transport.packets_retransmitted;
  check bool "arrival not mutated" true
    (missing_before
     = Array.fold_left (fun a p -> if p = None then a + 1 else a) 0 arrival);
  check bool "time accounted" true (stats.Streaming.Transport.nack_time_s > 0.);
  check bool "budget not exhausted" true
    (not stats.Streaming.Transport.budget_exhausted)

let test_nack_budget_zero_and_exhaustion () =
  let fault = Streaming.Fault.bernoulli ~rate:0.5 in
  let packets = Array.init 12 (fun i -> String.make 24 (Char.chr (65 + i))) in
  let arrival = Streaming.Fault.apply fault ~seed:21 packets in
  let _, stats =
    Streaming.Transport.nack_retransmit ~fault ~link:Streaming.Netsim.wlan_80211b
      ~budget_s:0. ~seed:4 ~packets arrival
  in
  check int "budget 0: no rounds" 0 stats.Streaming.Transport.nack_rounds;
  check bool "budget 0: exhausted" true stats.Streaming.Transport.budget_exhausted;
  (* A lossy channel under a small budget: the exponential backoff
     bounds the number of rounds. *)
  let lossy = Streaming.Fault.bernoulli ~rate:0.95 in
  let arrival = Streaming.Fault.apply lossy ~seed:2 packets in
  let _, stats =
    Streaming.Transport.nack_retransmit ~fault:lossy
      ~link:Streaming.Netsim.wlan_80211b ~budget_s:0.05 ~seed:4 ~packets arrival
  in
  check bool "rounds bounded by backoff" true
    (stats.Streaming.Transport.nack_rounds <= 4);
  check bool "gave up" true stats.Streaming.Transport.budget_exhausted

(* --- end-to-end session chaos ------------------------------------------- *)

let clean_report clip =
  run_session
    { (Streaming.Session.default_config ~device) with
      Streaming.Session.fault = Some Streaming.Fault.none }
    clip

let test_session_fault_none_matches_legacy () =
  let clip = six_scene_clip () in
  let legacy = run_session (Streaming.Session.default_config ~device) clip in
  let faulted = clean_report clip in
  check bool "survived" true faulted.Streaming.Session.annotations_survived;
  check int "no degraded scenes" 0 faulted.Streaming.Session.degraded_scenes;
  check int "no retransmissions" 0 faulted.Streaming.Session.retransmissions;
  check int "no corrupt records" 0 faulted.Streaming.Session.corrupt_records;
  check flt "same backlight savings"
    legacy.Streaming.Session.backlight_savings
    faulted.Streaming.Session.backlight_savings;
  check flt "same device energy"
    legacy.Streaming.Session.device_energy_mj
    faulted.Streaming.Session.device_energy_mj;
  check flt "same psnr" legacy.Streaming.Session.video_mean_psnr
    faulted.Streaming.Session.video_mean_psnr

let chaos_profiles =
  [
    ("burst", Streaming.Fault.gilbert ~mean_loss:0.15 ~burst_length:4. ());
    ( "corrupting",
      { (Streaming.Fault.bernoulli ~rate:0.1) with
        Streaming.Fault.corrupt_rate = 0.01 } );
    ( "kitchen-sink",
      {
        (Streaming.Fault.gilbert ~mean_loss:0.2 ~burst_length:3. ()) with
        Streaming.Fault.corrupt_rate = 0.005;
        reorder_rate = 0.05;
        jitter_s = 0.004;
        collapse = Some { Streaming.Fault.at_fraction = 0.5; factor = 0.5 };
      } );
  ]

let test_session_chaos_sweep () =
  let clip = six_scene_clip () in
  let clean = clean_report clip in
  List.iter
    (fun (name, fault) ->
      for seed = 1 to 8 do
        let config =
          { (Streaming.Session.default_config ~device) with
            Streaming.Session.fault = Some fault; seed }
        in
        match Streaming.Session.run config clip with
        | Error e -> Alcotest.fail (Printf.sprintf "%s seed %d: %s" name seed e)
        | Ok r ->
          let ctx what = Printf.sprintf "%s seed %d: %s" name seed what in
          check bool (ctx "savings in range") true
            (r.Streaming.Session.backlight_savings >= -1e-9
             && r.Streaming.Session.backlight_savings <= 1.);
          check bool (ctx "counters non-negative") true
            (r.Streaming.Session.degraded_scenes >= 0
             && r.Streaming.Session.retransmissions >= 0
             && r.Streaming.Session.corrupt_records >= 0);
          (* Quality is never risked on a guess: degradation can only
             cost savings, never add any. *)
          check bool (ctx "savings monotone in surviving scenes") true
            (r.Streaming.Session.backlight_savings
             <= clean.Streaming.Session.backlight_savings +. 1e-9);
          if not r.Streaming.Session.annotations_survived then
            check flt (ctx "total loss: full backlight") 0.
              r.Streaming.Session.backlight_savings;
          if
            r.Streaming.Session.annotations_survived
            && r.Streaming.Session.degraded_scenes = 0
          then
            check flt (ctx "undamaged run matches clean savings")
              clean.Streaming.Session.backlight_savings
              r.Streaming.Session.backlight_savings;
          (* Determinism: the same chaos twice is the same session. *)
          let again = run_session config clip in
          check bool (ctx "deterministic") true (again = r)
      done)
    chaos_profiles

(* The acceptance scenario: a burst kills one FEC group outright (no
   NACK budget), yet the session dims every surviving scene — strictly
   better than the old whole-clip fallback's 0 %. *)
let test_session_partial_survival_beats_whole_clip_fallback () =
  let clip = six_scene_clip () in
  let clean = clean_report clip in
  let fault = Streaming.Fault.gilbert ~mean_loss:0.25 ~burst_length:4. () in
  let rec find seed =
    if seed > 300 then Alcotest.fail "no partial-survival seed found"
    else begin
      let config =
        { (Streaming.Session.default_config ~device) with
          Streaming.Session.fault = Some fault; nack_budget_s = 0.; seed }
      in
      let r = run_session config clip in
      if
        r.Streaming.Session.annotations_survived
        && r.Streaming.Session.degraded_scenes >= 1
      then r
      else find (seed + 1)
    end
  in
  let r = find 1 in
  check bool "some scenes degraded" true (r.Streaming.Session.degraded_scenes >= 1);
  check bool "but not all: partial survival" true r.Streaming.Session.annotations_survived;
  check bool "strictly beats whole-clip fallback" true
    (r.Streaming.Session.backlight_savings > 0.);
  check bool "costs something vs clean" true
    (r.Streaming.Session.backlight_savings
     < clean.Streaming.Session.backlight_savings +. 1e-9)

let test_session_nack_rescues_savings () =
  (* With retransmission budget the same hostile channel recovers more
     scenes (or at least never fewer) than without. *)
  let clip = six_scene_clip () in
  let fault = Streaming.Fault.gilbert ~mean_loss:0.25 ~burst_length:4. () in
  let run ~budget seed =
    run_session
      { (Streaming.Session.default_config ~device) with
        Streaming.Session.fault = Some fault; nack_budget_s = budget; seed }
      clip
  in
  let rescued = ref false in
  for seed = 1 to 12 do
    let without = run ~budget:0. seed in
    let with_nack = run ~budget:0.1 seed in
    check bool "nack never degrades more" true
      (with_nack.Streaming.Session.degraded_scenes
       <= without.Streaming.Session.degraded_scenes);
    if
      with_nack.Streaming.Session.degraded_scenes
      < without.Streaming.Session.degraded_scenes
      || (with_nack.Streaming.Session.annotations_survived
         && not without.Streaming.Session.annotations_survived)
    then rescued := true
  done;
  check bool "retransmission rescued at least one session" true !rescued

let () =
  Alcotest.run "fault"
    [
      ( "profiles",
        [
          Alcotest.test_case "parse" `Quick test_profile_parse;
          Alcotest.test_case "rejects garbage" `Quick test_profile_rejects_garbage;
        ] );
      ( "models",
        [
          Alcotest.test_case "loss mask edges" `Quick test_loss_mask_edges;
          Alcotest.test_case "gilbert statistics" `Quick test_gilbert_statistics;
          Alcotest.test_case "corruption and reorder" `Quick test_apply_corruption;
          Alcotest.test_case "delay and collapse" `Quick test_delay_and_collapse;
        ] );
      ( "fec",
        [
          Alcotest.test_case "single/double loss grid" `Quick test_fec_loss_grid;
          Alcotest.test_case "recover_detail" `Quick test_fec_recover_detail_clean;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "v1 compatibility" `Quick test_v1_compat;
          Alcotest.test_case "partial classification" `Quick
            test_decode_partial_classification;
          Alcotest.test_case "v1 all-or-nothing" `Quick
            test_decode_partial_v1_all_or_nothing;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "full backlight fill" `Quick test_patch_full_backlight;
          Alcotest.test_case "neighbour clamp" `Quick test_patch_neighbour_clamp;
        ] );
      ( "nack",
        [
          Alcotest.test_case "repairs within budget" `Quick
            test_nack_repairs_within_budget;
          Alcotest.test_case "budget zero and exhaustion" `Quick
            test_nack_budget_zero_and_exhaustion;
        ] );
      ( "session",
        [
          Alcotest.test_case "fault none matches legacy" `Quick
            test_session_fault_none_matches_legacy;
          Alcotest.test_case "chaos sweep" `Quick test_session_chaos_sweep;
          Alcotest.test_case "partial survival beats fallback" `Quick
            test_session_partial_survival_beats_whole_clip_fallback;
          Alcotest.test_case "nack rescues savings" `Quick
            test_session_nack_rescues_savings;
        ] );
    ]
