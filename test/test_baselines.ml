(* Tests for the baseline strategies and the uniform evaluation
   harness (ablations A1 and A2). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let device = Display.Device.ipaq_h5555
let quality = Annotation.Quality_level.Loss_10

(* A clip with a hard scene change: dark first half, bright second —
   the worst case for history prediction. *)
let cut_clip () =
  let profile =
    {
      Video.Profile.name = "cut";
      seed = 17;
      scenes =
        [
          Video.Profile.scene ~seconds:1.5 ~noise_sigma:0. (Video.Profile.Flat 50);
          Video.Profile.scene ~seconds:1.5 ~noise_sigma:0. (Video.Profile.Flat 230);
        ];
    }
  in
  Video.Clip_gen.render ~width:24 ~height:18 ~fps:8. profile

let profiled = lazy (Annotation.Annotator.profile (cut_clip ()))

let run strategy =
  Baselines.Runner.run ~device ~quality (Lazy.force profiled) strategy

(* --- Strategy metadata --------------------------------------------------- *)

let test_strategy_names_unique () =
  let names = List.map Baselines.Strategy.name Baselines.Runner.standard_lineup in
  check int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_strategy_overheads () =
  check (Alcotest.float 1e-12) "annotated has no client overhead" 0.
    (Baselines.Strategy.cpu_overhead_fraction
       (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params));
  check bool "client analysis has overhead" true
    (Baselines.Strategy.cpu_overhead_fraction
       (Baselines.Strategy.Client_analysis { cpu_overhead_fraction = 0.2 })
     > 0.)

let test_strategy_clairvoyance () =
  check bool "annotated is clairvoyant" true
    (Baselines.Strategy.is_clairvoyant
       (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params));
  check bool "history is not" false
    (Baselines.Strategy.is_clairvoyant
       (Baselines.Strategy.History_prediction { window = 1 }))

(* --- Decide -------------------------------------------------------------- *)

let test_full_backlight_registers () =
  let o = run Baselines.Strategy.Full_backlight in
  Array.iter (fun r -> check int "always 255" 255 r) o.Baselines.Runner.registers;
  check (Alcotest.float 1e-9) "no savings" 0.
    o.Baselines.Runner.report.Streaming.Playback.backlight_savings;
  check int "no violations" 0 o.Baselines.Runner.violations

let test_static_dim_registers () =
  let o = run (Baselines.Strategy.Static_dim 100) in
  Array.iter (fun r -> check int "always 100" 100 r) o.Baselines.Runner.registers;
  (* A static dim on a clip with a bright scene must violate quality. *)
  check bool "violations on bright scene" true (o.Baselines.Runner.violations > 0)

let test_annotated_no_violation_on_stable_scenes () =
  let o = run (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params) in
  check int "no violations on crisp scenes" 0 o.Baselines.Runner.violations;
  check bool "saves power" true
    (o.Baselines.Runner.report.Streaming.Playback.backlight_savings > 0.1)

let test_history_violates_at_cut () =
  (* Frame at the cut uses stale dark-scene knowledge: the register is
     far too low for the bright frame, so clipping exceeds budget. *)
  let o = run (Baselines.Strategy.History_prediction { window = 6 }) in
  check bool "at least one violation" true (o.Baselines.Runner.violations >= 1);
  check bool "violation is severe" true (o.Baselines.Runner.worst_excess_clip > 0.3)

let test_client_analysis_matches_per_frame_annotation () =
  (* Decode-then-analyse sees the true per-frame histogram, so its
     registers equal the per-frame annotated ones; only the power cost
     differs. *)
  let a = run Baselines.Strategy.Annotated_per_frame in
  let c = run (Baselines.Strategy.Client_analysis { cpu_overhead_fraction = 0.2 }) in
  Alcotest.(check (array int))
    "same registers" a.Baselines.Runner.registers c.Baselines.Runner.registers;
  check bool "client analysis total savings lower" true
    (c.Baselines.Runner.report.Streaming.Playback.total_savings
     < a.Baselines.Runner.report.Streaming.Playback.total_savings)

let test_per_frame_beats_scene_on_power () =
  (* Ablation A1: per-frame annotation saves at least as much backlight
     power as scene-level, at the cost of more switches. *)
  let scene = run (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params) in
  let frame = run Baselines.Strategy.Annotated_per_frame in
  check bool "per-frame saves at least as much" true
    (frame.Baselines.Runner.report.Streaming.Playback.backlight_savings
     >= scene.Baselines.Runner.report.Streaming.Playback.backlight_savings -. 1e-9)

let test_qabs_limits_slew () =
  let o = run (Baselines.Strategy.Qabs_smoothed { max_step = 4 }) in
  let regs = o.Baselines.Runner.registers in
  let ok = ref true in
  for i = 1 to Array.length regs - 1 do
    (* Dimming steps are limited; brightening may jump (quality
       protection). *)
    if regs.(i) < regs.(i - 1) && regs.(i - 1) - regs.(i) > 4 then ok := false
  done;
  check bool "dimming slew-rate limited" true !ok;
  check int "quality protected (no violations)" 0 o.Baselines.Runner.violations

let test_annotation_bytes_accounting () =
  let annotated = run (Baselines.Strategy.Annotated Annotation.Scene_detect.default_params) in
  let client = run (Baselines.Strategy.Client_analysis { cpu_overhead_fraction = 0.2 }) in
  check bool "annotated ships bytes" true (annotated.Baselines.Runner.annotation_bytes > 0);
  check int "client-side ships none" 0 client.Baselines.Runner.annotation_bytes

let test_clipped_fraction_trace_full_backlight_zero () =
  let p = Lazy.force profiled in
  let regs = Array.make p.Annotation.Annotator.total_frames 255 in
  let trace = Baselines.Runner.clipped_fraction_trace ~device p regs in
  Array.iter (fun c -> check (Alcotest.float 1e-12) "no clipping at 255" 0. c) trace

let test_runner_register_length_mismatch () =
  let p = Lazy.force profiled in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Runner: register track does not match clip") (fun () ->
      ignore (Baselines.Runner.clipped_fraction_trace ~device p [| 255 |]))

let test_standard_lineup_runs () =
  List.iter
    (fun s ->
      let o = run s in
      check bool
        (Baselines.Strategy.name s ^ " savings in range")
        true
        (o.Baselines.Runner.report.Streaming.Playback.backlight_savings >= -1e-9
         && o.Baselines.Runner.report.Streaming.Playback.backlight_savings <= 1.))
    Baselines.Runner.standard_lineup

(* --- Hebs ------------------------------------------------------------------ *)

let histogram_of_levels levels =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) levels;
  h

let test_hebs_map_monotone_and_bounded () =
  let hist = histogram_of_levels [ 10; 10; 40; 90; 200; 250 ] in
  List.iter
    (fun lambda ->
      let map = Baselines.Hebs.equalisation_map hist ~lambda in
      check int "256 entries" 256 (Array.length map);
      for y = 1 to 255 do
        check bool "monotone" true (map.(y) >= map.(y - 1));
        check bool "in range" true (map.(y) >= 0 && map.(y) <= 255)
      done)
    [ 0.; 0.3; 0.7; 1. ]

let test_hebs_lambda_zero_is_identity () =
  let hist = histogram_of_levels [ 5; 100; 180 ] in
  let map = Baselines.Hebs.equalisation_map hist ~lambda:0. in
  Alcotest.(check (array int)) "identity" (Array.init 256 Fun.id) map;
  let sol = Baselines.Hebs.solve ~device ~lambda:0. hist in
  check bool "near-full backlight at identity" true
    (sol.Baselines.Hebs.register >= 250);
  check bool "negligible error" true (sol.Baselines.Hebs.mean_error < 0.02)

let test_hebs_error_grows_with_lambda () =
  let hist = histogram_of_levels (List.init 50 (fun i -> 30 + (i mod 80))) in
  let err lambda = (Baselines.Hebs.solve ~device ~lambda hist).Baselines.Hebs.mean_error in
  check bool "more equalisation, more distortion" true (err 1.0 > err 0.3)

let test_hebs_dark_content_dims () =
  let hist = histogram_of_levels (List.init 90 (fun _ -> 40) @ [ 250; 250 ]) in
  let sol = Baselines.Hebs.solve ~device ~lambda:1.0 hist in
  check bool "dark scene dimmed" true (sol.Baselines.Hebs.register < 200)

let test_hebs_apply_map () =
  let hist = histogram_of_levels [ 0; 128; 255 ] in
  let map = Baselines.Hebs.equalisation_map hist ~lambda:1. in
  let frame = Image.Raster.create ~width:2 ~height:1 in
  Image.Raster.set frame ~x:0 ~y:0 (Image.Pixel.gray 128);
  let mapped = Baselines.Hebs.apply_map map frame in
  check int "pixel remapped" map.(128) (Image.Raster.get mapped ~x:0 ~y:0).Image.Pixel.r

let test_hebs_validation () =
  let hist = histogram_of_levels [ 1 ] in
  Alcotest.check_raises "bad lambda" (Invalid_argument "Hebs: lambda out of [0, 1]")
    (fun () -> ignore (Baselines.Hebs.equalisation_map hist ~lambda:2.));
  Alcotest.check_raises "empty histogram" (Invalid_argument "Hebs: empty histogram")
    (fun () ->
      ignore
        (Baselines.Hebs.equalisation_map (Image.Histogram.create ()) ~lambda:0.5))

let prop_all_strategies_cover_clip =
  QCheck2.Test.make ~name:"every strategy emits one register per frame"
    (QCheck2.Gen.oneofl Baselines.Runner.standard_lineup) (fun s ->
      let p = Lazy.force profiled in
      Array.length (Baselines.Runner.decide ~device ~quality p s)
      = p.Annotation.Annotator.total_frames)

let () =
  Alcotest.run "baselines"
    [
      ( "strategy",
        [
          Alcotest.test_case "unique names" `Quick test_strategy_names_unique;
          Alcotest.test_case "overheads" `Quick test_strategy_overheads;
          Alcotest.test_case "clairvoyance" `Quick test_strategy_clairvoyance;
        ] );
      ( "runner",
        [
          Alcotest.test_case "full backlight" `Quick test_full_backlight_registers;
          Alcotest.test_case "static dim" `Quick test_static_dim_registers;
          Alcotest.test_case "annotated clean" `Quick
            test_annotated_no_violation_on_stable_scenes;
          Alcotest.test_case "history misprediction" `Quick test_history_violates_at_cut;
          Alcotest.test_case "client analysis vs per-frame" `Quick
            test_client_analysis_matches_per_frame_annotation;
          Alcotest.test_case "per-frame vs scene (A1)" `Quick
            test_per_frame_beats_scene_on_power;
          Alcotest.test_case "qabs slew limit" `Quick test_qabs_limits_slew;
          Alcotest.test_case "annotation bytes" `Quick test_annotation_bytes_accounting;
          Alcotest.test_case "no clipping at 255" `Quick
            test_clipped_fraction_trace_full_backlight_zero;
          Alcotest.test_case "length mismatch" `Quick test_runner_register_length_mismatch;
          Alcotest.test_case "standard lineup runs" `Quick test_standard_lineup_runs;
        ] );
      ( "hebs",
        [
          Alcotest.test_case "map monotone" `Quick test_hebs_map_monotone_and_bounded;
          Alcotest.test_case "lambda zero identity" `Quick test_hebs_lambda_zero_is_identity;
          Alcotest.test_case "error grows with lambda" `Quick
            test_hebs_error_grows_with_lambda;
          Alcotest.test_case "dark content dims" `Quick test_hebs_dark_content_dims;
          Alcotest.test_case "apply map" `Quick test_hebs_apply_map;
          Alcotest.test_case "validation" `Quick test_hebs_validation;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_all_strategies_cover_clip ] );
    ]
