(* Unit and property tests for the image substrate. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let float_eps = Alcotest.float 1e-9

let raster_gen ~max_dim =
  (* Small random rasters with varied content. *)
  let open QCheck2.Gen in
  let* width = 1 -- max_dim in
  let* height = 1 -- max_dim in
  let* seed = 0 -- 10_000 in
  let rng = Image.Prng.create ~seed in
  return
    (Image.Raster.init ~width ~height (fun ~x ~y ->
         ignore x;
         ignore y;
         Image.Pixel.v (Image.Prng.int rng 256) (Image.Prng.int rng 256)
           (Image.Prng.int rng 256)))

(* --- Pixel ------------------------------------------------------------ *)

let test_pixel_clamping () =
  check int "negative clamps to 0" 0 (Image.Pixel.v (-5) 0 0).Image.Pixel.r;
  check int "overflow clamps to 255" 255 (Image.Pixel.v 300 0 0).Image.Pixel.r;
  check int "in-range unchanged" 127 (Image.Pixel.v 127 0 0).Image.Pixel.r

let test_pixel_luminance_extremes () =
  check int "black has luma 0" 0 (Image.Pixel.luminance Image.Pixel.black);
  check int "white has luma 255" 255 (Image.Pixel.luminance Image.Pixel.white)

let test_pixel_luminance_gray_identity () =
  (* The fixed-point weights sum to 65536, so grays are exact. *)
  for l = 0 to 255 do
    check int
      (Printf.sprintf "gray %d luma" l)
      l
      (Image.Pixel.luminance (Image.Pixel.gray l))
  done

let test_pixel_luminance_weights () =
  (* Pure channels reflect the BT.601 weights. *)
  let red = Image.Pixel.luminance (Image.Pixel.v 255 0 0) in
  let green = Image.Pixel.luminance (Image.Pixel.v 0 255 0) in
  let blue = Image.Pixel.luminance (Image.Pixel.v 0 0 255) in
  check bool "green heaviest" true (green > red && red > blue);
  let sum = red + green + blue in
  check bool "weights sum to white (within rounding)" true
    (sum >= 254 && sum <= 256)

let test_pixel_scale_clips () =
  let p = Image.Pixel.v 200 10 10 in
  let scaled = Image.Pixel.scale 2. p in
  check int "saturates at 255" 255 scaled.Image.Pixel.r;
  check int "scales small channels" 20 scaled.Image.Pixel.g;
  check bool "detects clipping" true (Image.Pixel.is_clipped_by_scale 2. p);
  check bool "no clipping below threshold" false
    (Image.Pixel.is_clipped_by_scale 1.2 p)

let test_pixel_add () =
  let p = Image.Pixel.add 30 (Image.Pixel.v 240 100 0) in
  check int "clamps high" 255 p.Image.Pixel.r;
  check int "adds mid" 130 p.Image.Pixel.g;
  check int "adds low" 30 p.Image.Pixel.b;
  let q = Image.Pixel.add (-50) (Image.Pixel.v 40 100 200) in
  check int "clamps low" 0 q.Image.Pixel.r

let prop_scale_monotone =
  QCheck2.Test.make ~name:"pixel scale is monotone in k"
    QCheck2.Gen.(triple (0 -- 255) (float_bound_inclusive 2.) (float_bound_inclusive 2.))
    (fun (c, k1, k2) ->
      let k_lo = Float.min k1 k2 and k_hi = Float.max k1 k2 in
      let p = Image.Pixel.gray c in
      (Image.Pixel.scale k_lo p).Image.Pixel.r
      <= (Image.Pixel.scale k_hi p).Image.Pixel.r)

(* --- Raster ----------------------------------------------------------- *)

let test_raster_create_black () =
  let img = Image.Raster.create ~width:4 ~height:3 in
  check int "width" 4 (Image.Raster.width img);
  check int "height" 3 (Image.Raster.height img);
  check int "pixel count" 12 (Image.Raster.pixel_count img);
  Image.Raster.iter
    (fun ~x:_ ~y:_ p -> check bool "black" true (Image.Pixel.equal p Image.Pixel.black))
    img

let test_raster_bad_dimensions () =
  Alcotest.check_raises "zero width" (Invalid_argument
    "Raster.create: dimensions must be positive") (fun () ->
      ignore (Image.Raster.create ~width:0 ~height:3))

let test_raster_get_set_roundtrip () =
  let img = Image.Raster.create ~width:5 ~height:5 in
  let p = Image.Pixel.v 12 200 99 in
  Image.Raster.set img ~x:3 ~y:4 p;
  check bool "get returns set" true (Image.Pixel.equal p (Image.Raster.get img ~x:3 ~y:4));
  check bool "neighbour untouched" true
    (Image.Pixel.equal Image.Pixel.black (Image.Raster.get img ~x:2 ~y:4))

let test_raster_out_of_bounds () =
  let img = Image.Raster.create ~width:2 ~height:2 in
  Alcotest.check_raises "get oob" (Invalid_argument "Raster: out of bounds")
    (fun () -> ignore (Image.Raster.get img ~x:2 ~y:0));
  Alcotest.check_raises "set oob" (Invalid_argument "Raster: out of bounds")
    (fun () -> Image.Raster.set img ~x:0 ~y:(-1) Image.Pixel.white)

let test_raster_copy_independent () =
  let img = Image.Raster.create ~width:2 ~height:2 in
  let dup = Image.Raster.copy img in
  Image.Raster.set dup ~x:0 ~y:0 Image.Pixel.white;
  check bool "original unchanged" true
    (Image.Pixel.equal Image.Pixel.black (Image.Raster.get img ~x:0 ~y:0))

let test_raster_fill_and_mean () =
  let img = Image.Raster.create ~width:8 ~height:8 in
  Image.Raster.fill img (Image.Pixel.gray 77);
  check (Alcotest.float 1e-6) "mean luminance" 77. (Image.Raster.mean_luminance img);
  check int "max luminance" 77 (Image.Raster.max_luminance img)

let test_raster_luminance_plane () =
  let img = Image.Raster.init ~width:3 ~height:1 (fun ~x ~y ->
      ignore y;
      Image.Pixel.gray (x * 100))
  in
  let plane = Image.Raster.luminance_plane img in
  check int "plane length" 3 (Bytes.length plane);
  check int "first" 0 (Char.code (Bytes.get plane 0));
  check int "second" 100 (Char.code (Bytes.get plane 1));
  check int "third" 200 (Char.code (Bytes.get plane 2))

let prop_map_identity =
  QCheck2.Test.make ~name:"raster map with identity preserves equality"
    (raster_gen ~max_dim:12) (fun img ->
      Image.Raster.equal img (Image.Raster.map Fun.id img))

let prop_blit_equal =
  QCheck2.Test.make ~name:"raster blit copies exactly" (raster_gen ~max_dim:12)
    (fun img ->
      let dst =
        Image.Raster.create ~width:(Image.Raster.width img)
          ~height:(Image.Raster.height img)
      in
      Image.Raster.blit ~src:img ~dst;
      Image.Raster.equal img dst)

let prop_fold_counts_pixels =
  QCheck2.Test.make ~name:"raster fold visits every pixel once"
    (raster_gen ~max_dim:12) (fun img ->
      Image.Raster.fold (fun acc _ -> acc + 1) 0 img = Image.Raster.pixel_count img)

(* --- Histogram -------------------------------------------------------- *)

let test_histogram_of_raster_total () =
  let img = Image.Raster.create ~width:10 ~height:7 in
  let h = Image.Histogram.of_raster img in
  check int "total equals pixels" 70 (Image.Histogram.total h);
  check int "all in bin 0" 70 (Image.Histogram.count h 0)

let test_histogram_mean_range () =
  let h = Image.Histogram.create () in
  Image.Histogram.add_sample h 10;
  Image.Histogram.add_sample h 20;
  Image.Histogram.add_sample h 30;
  check (Alcotest.float 1e-9) "mean" 20. (Image.Histogram.mean h);
  check int "min" 10 (Image.Histogram.min_level h);
  check int "max" 30 (Image.Histogram.max_level h);
  check int "dynamic range" 20 (Image.Histogram.dynamic_range h)

let test_histogram_empty_raises () =
  let h = Image.Histogram.create () in
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Histogram.mean: empty histogram") (fun () ->
      ignore (Image.Histogram.mean h))

let test_histogram_clip_level_zero_loss () =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) [ 5; 50; 200; 200; 255 ];
  check int "0%% loss keeps max" 255 (Image.Histogram.clip_level h ~allowed_loss:0.)

let test_histogram_clip_level_budget () =
  let h = Image.Histogram.create () in
  (* 90 dark pixels, 10 bright. *)
  for _ = 1 to 90 do Image.Histogram.add_sample h 40 done;
  for _ = 1 to 10 do Image.Histogram.add_sample h 250 done;
  check int "10%% loss clips the bright tail" 40
    (Image.Histogram.clip_level h ~allowed_loss:0.10);
  check int "9%% loss keeps the tail" 250
    (Image.Histogram.clip_level h ~allowed_loss:0.09);
  check int "100%% loss clips everything" 0
    (Image.Histogram.clip_level h ~allowed_loss:1.)

let test_histogram_samples_above () =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) [ 0; 128; 128; 255 ];
  check int "above 127" 3 (Image.Histogram.samples_above h 127);
  check int "above 128" 1 (Image.Histogram.samples_above h 128);
  check int "above 255" 0 (Image.Histogram.samples_above h 255);
  check int "above -1 counts all" 4 (Image.Histogram.samples_above h (-1))

let test_histogram_merge () =
  let a = Image.Histogram.create () and b = Image.Histogram.create () in
  Image.Histogram.add_sample a 1;
  Image.Histogram.add_sample b 1;
  Image.Histogram.add_sample b 2;
  let m = Image.Histogram.merge a b in
  check int "merged total" 3 (Image.Histogram.total m);
  check int "merged bin 1" 2 (Image.Histogram.count m 1)

let test_histogram_distances_identity () =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) [ 3; 99; 200 ];
  check float_eps "L1 to self" 0. (Image.Histogram.l1_distance h h);
  check float_eps "chi2 to self" 0. (Image.Histogram.chi_square h h);
  check float_eps "intersection with self" 1. (Image.Histogram.intersection h h)

let test_histogram_distance_disjoint () =
  let a = Image.Histogram.create () and b = Image.Histogram.create () in
  Image.Histogram.add_sample a 0;
  Image.Histogram.add_sample b 255;
  check float_eps "L1 disjoint" 2. (Image.Histogram.l1_distance a b);
  check float_eps "intersection disjoint" 0. (Image.Histogram.intersection a b)

let test_histogram_emd () =
  let shifted_by k =
    let h = Image.Histogram.create () in
    List.iter (fun l -> Image.Histogram.add_sample h (l + k)) [ 10; 20; 30; 40 ];
    h
  in
  let base = shifted_by 0 in
  check float_eps "EMD to self" 0. (Image.Histogram.earth_movers_distance base base);
  check float_eps "EMD of uniform +5 shift" 5.
    (Image.Histogram.earth_movers_distance base (shifted_by 5));
  (* Extremes: all mass moves the full range. *)
  let lo = Image.Histogram.create () and hi = Image.Histogram.create () in
  Image.Histogram.add_sample lo 0;
  Image.Histogram.add_sample hi 255;
  check float_eps "EMD of extremes" 255. (Image.Histogram.earth_movers_distance lo hi);
  (* EMD is robust where bin-wise L1 saturates: a one-level shift. *)
  check float_eps "one-level shift is EMD 1" 1.
    (Image.Histogram.earth_movers_distance base (shifted_by 1));
  check float_eps "but saturates L1" 2.
    (Image.Histogram.l1_distance base (shifted_by 1))

let test_histogram_percentile () =
  let h = Image.Histogram.create () in
  for l = 0 to 99 do Image.Histogram.add_sample h l done;
  check int "median" 49 (Image.Histogram.percentile_level h 0.5);
  check int "p100 = max" 99 (Image.Histogram.percentile_level h 1.)

let test_histogram_percentile_edges () =
  (* Regression: p = 0 used to return bin 0 even when level 0 held no
     samples; the floor of the distribution is its lowest populated
     level. *)
  let h = Image.Histogram.create () in
  for l = 40 to 99 do
    Image.Histogram.add_sample h l
  done;
  check int "p0 is the lowest populated level" 40
    (Image.Histogram.percentile_level h 0.);
  check int "p0 = min_level" (Image.Histogram.min_level h)
    (Image.Histogram.percentile_level h 0.);
  check int "p1 = max_level" (Image.Histogram.max_level h)
    (Image.Histogram.percentile_level h 1.);
  (* A single-bin histogram answers that bin at every percentile. *)
  let single = Image.Histogram.create () in
  Image.Histogram.add_sample single 137;
  List.iter
    (fun p ->
      check int
        (Printf.sprintf "single bin at p = %g" p)
        137
        (Image.Histogram.percentile_level single p))
    [ 0.; 0.25; 0.5; 1. ]

let test_histogram_of_counts_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Histogram.of_counts: need 256 bins") (fun () ->
      ignore (Image.Histogram.of_counts [| 1; 2 |]))

let prop_histogram_mass_conserved =
  QCheck2.Test.make ~name:"histogram mass equals pixel count"
    (raster_gen ~max_dim:16) (fun img ->
      Image.Histogram.total (Image.Histogram.of_raster img)
      = Image.Raster.pixel_count img)

let prop_clip_level_respects_budget =
  QCheck2.Test.make ~name:"clip level respects loss budget"
    QCheck2.Gen.(pair (raster_gen ~max_dim:16) (float_bound_inclusive 1.))
    (fun (img, loss) ->
      let h = Image.Histogram.of_raster img in
      let level = Image.Histogram.clip_level h ~allowed_loss:loss in
      let lost = Image.Histogram.samples_above h level in
      float_of_int lost <= (loss *. float_of_int (Image.Histogram.total h)) +. 1e-9)

let prop_clip_level_is_tight =
  QCheck2.Test.make ~name:"clip level is the lowest admissible level"
    QCheck2.Gen.(pair (raster_gen ~max_dim:16) (float_bound_inclusive 0.5))
    (fun (img, loss) ->
      let h = Image.Histogram.of_raster img in
      let level = Image.Histogram.clip_level h ~allowed_loss:loss in
      level = 0
      || float_of_int (Image.Histogram.samples_above h (level - 1))
         > loss *. float_of_int (Image.Histogram.total h))

let prop_l1_symmetric =
  QCheck2.Test.make ~name:"histogram L1 distance is symmetric"
    QCheck2.Gen.(pair (raster_gen ~max_dim:10) (raster_gen ~max_dim:10))
    (fun (a, b) ->
      let ha = Image.Histogram.of_raster a and hb = Image.Histogram.of_raster b in
      abs_float
        (Image.Histogram.l1_distance ha hb -. Image.Histogram.l1_distance hb ha)
      < 1e-12)

(* --- Ops -------------------------------------------------------------- *)

let test_contrast_enhance_identity () =
  let img = Image.Raster.init ~width:4 ~height:4 (fun ~x ~y ->
      Image.Pixel.gray ((x + y) * 20))
  in
  check bool "k=1 is identity" true
    (Image.Raster.equal img (Image.Ops.contrast_enhance ~k:1. img))

let test_contrast_enhance_doubles () =
  let img = Image.Raster.create ~width:2 ~height:1 in
  Image.Raster.set img ~x:0 ~y:0 (Image.Pixel.gray 60);
  Image.Raster.set img ~x:1 ~y:0 (Image.Pixel.gray 200);
  let out = Image.Ops.contrast_enhance ~k:2. img in
  check int "doubles" 120 (Image.Raster.get out ~x:0 ~y:0).Image.Pixel.r;
  check int "saturates" 255 (Image.Raster.get out ~x:1 ~y:0).Image.Pixel.r

let test_clipped_fraction () =
  let img = Image.Raster.create ~width:10 ~height:1 in
  for x = 0 to 9 do
    Image.Raster.set img ~x ~y:0 (Image.Pixel.gray (if x < 3 then 200 else 50))
  done;
  check (Alcotest.float 1e-9) "three clip at k=2" 0.3
    (Image.Ops.clipped_fraction ~k:2. img)

let test_brightness_compensate () =
  let img = Image.Raster.create ~width:1 ~height:1 in
  Image.Raster.set img ~x:0 ~y:0 (Image.Pixel.v 250 100 0);
  let out = Image.Ops.brightness_compensate ~delta:20 img in
  let p = Image.Raster.get out ~x:0 ~y:0 in
  check int "r clamps" 255 p.Image.Pixel.r;
  check int "g adds" 120 p.Image.Pixel.g;
  check int "b adds" 20 p.Image.Pixel.b

let test_downsample_mean () =
  let img = Image.Raster.init ~width:4 ~height:4 (fun ~x ~y ->
      Image.Pixel.gray (if (x + y) mod 2 = 0 then 100 else 200))
  in
  let out = Image.Ops.downsample ~factor:2 img in
  check int "downsampled width" 2 (Image.Raster.width out);
  check int "block mean" 150 (Image.Raster.get out ~x:0 ~y:0).Image.Pixel.r

let test_downsample_bad_factor () =
  let img = Image.Raster.create ~width:4 ~height:4 in
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Ops.downsample: dimensions not divisible by factor")
    (fun () -> ignore (Image.Ops.downsample ~factor:3 img))

let prop_contrast_matches_pixel_scale =
  QCheck2.Test.make ~name:"contrast enhance equals per-pixel scale"
    QCheck2.Gen.(pair (raster_gen ~max_dim:10) (float_bound_inclusive 3.))
    (fun (img, k) ->
      Image.Raster.equal
        (Image.Ops.contrast_enhance ~k img)
        (Image.Raster.map (Image.Pixel.scale k) img))

let prop_display_sim_darkens =
  QCheck2.Test.make ~name:"display simulation never brightens"
    QCheck2.Gen.(pair (raster_gen ~max_dim:10) (float_bound_inclusive 1.))
    (fun (img, gain) ->
      let out = Image.Ops.simulate_display ~backlight_gain:gain img in
      Image.Raster.fold (fun ok p -> ok && p.Image.Pixel.r <= 255) true out
      && Image.Raster.mean_luminance out <= Image.Raster.mean_luminance img +. 0.5)

(* --- Metrics ---------------------------------------------------------- *)

let test_metrics_identical () =
  let img = Image.Raster.init ~width:6 ~height:6 (fun ~x ~y ->
      Image.Pixel.gray ((x * y) mod 256))
  in
  check (Alcotest.float 1e-12) "mse 0" 0. (Image.Metrics.mse img img);
  check bool "psnr infinite" true (Image.Metrics.psnr img img = infinity);
  check int "max abs 0" 0 (Image.Metrics.max_absolute_error img img)

let test_metrics_known_mse () =
  let a = Image.Raster.create ~width:1 ~height:1 in
  let b = Image.Raster.create ~width:1 ~height:1 in
  Image.Raster.set b ~x:0 ~y:0 (Image.Pixel.v 3 0 0);
  (* One channel off by 3: mse = 9/3. *)
  check (Alcotest.float 1e-9) "mse" 3. (Image.Metrics.mse a b);
  check int "max abs" 3 (Image.Metrics.max_absolute_error a b)

let test_metrics_dimension_mismatch () =
  let a = Image.Raster.create ~width:2 ~height:2 in
  let b = Image.Raster.create ~width:3 ~height:2 in
  Alcotest.check_raises "mse mismatch"
    (Invalid_argument "Metrics.mse: dimension mismatch") (fun () ->
      ignore (Image.Metrics.mse a b))

let test_ssim_identical () =
  let img = Image.Raster.init ~width:16 ~height:16 (fun ~x ~y ->
      Image.Pixel.gray ((x * 16) + y))
  in
  check (Alcotest.float 1e-9) "ssim of identical" 1. (Image.Metrics.ssim img img)

let test_ssim_degrades_with_noise () =
  let img = Image.Raster.init ~width:32 ~height:32 (fun ~x ~y ->
      Image.Pixel.gray (((x + y) * 5) mod 256))
  in
  let noisy sigma =
    let out = Image.Raster.copy img in
    Image.Draw.add_noise out ~rng:(Image.Prng.create ~seed:3) ~sigma;
    out
  in
  let light = Image.Metrics.ssim img (noisy 3.) in
  let heavy = Image.Metrics.ssim img (noisy 30.) in
  check bool "light noise near 1" true (light > 0.9);
  check bool "heavy noise lower" true (heavy < light)

let test_ssim_structure_sensitive () =
  (* A constant brightness offset hurts SSIM far less than scrambling
     the structure at equal MSE. *)
  let img = Image.Raster.init ~width:32 ~height:32 (fun ~x ~y ->
      Image.Pixel.gray (100 + (((x / 4) + (y / 4)) mod 2 * 40)))
  in
  let shifted = Image.Raster.map (Image.Pixel.add 20) img in
  let rng = Image.Prng.create ~seed:8 in
  let scrambled =
    Image.Raster.map
      (fun p -> if Image.Prng.bool rng then Image.Pixel.add 20 p else Image.Pixel.add (-20) p)
      img
  in
  check bool "comparable MSE" true
    (abs_float (Image.Metrics.mse img shifted -. Image.Metrics.mse img scrambled)
     < 0.3 *. Image.Metrics.mse img shifted);
  check bool "shift tolerated more than scramble" true
    (Image.Metrics.ssim img shifted > Image.Metrics.ssim img scrambled)

let test_ssim_too_small () =
  let img = Image.Raster.create ~width:4 ~height:4 in
  Alcotest.check_raises "below window"
    (Invalid_argument "Metrics.ssim: image smaller than the window") (fun () ->
      ignore (Image.Metrics.ssim img img))

let prop_psnr_decreases_with_noise =
  QCheck2.Test.make ~name:"stronger noise lowers PSNR" (raster_gen ~max_dim:12)
    (fun img ->
      let noisy sigma =
        let out = Image.Raster.copy img in
        Image.Draw.add_noise out ~rng:(Image.Prng.create ~seed:7) ~sigma;
        out
      in
      Image.Metrics.psnr img (noisy 2.) >= Image.Metrics.psnr img (noisy 25.))

(* --- Draw ------------------------------------------------------------- *)

let test_draw_gradient_endpoints () =
  let img = Image.Raster.create ~width:3 ~height:5 in
  Image.Draw.fill_vertical_gradient img ~top:(Image.Pixel.gray 10)
    ~bottom:(Image.Pixel.gray 250);
  check int "top row" 10 (Image.Raster.get img ~x:1 ~y:0).Image.Pixel.r;
  check int "bottom row" 250 (Image.Raster.get img ~x:1 ~y:4).Image.Pixel.r

let test_draw_rect_cropped () =
  let img = Image.Raster.create ~width:4 ~height:4 in
  Image.Draw.rect img ~x:2 ~y:2 ~w:10 ~h:10 Image.Pixel.white;
  check bool "inside painted" true
    (Image.Pixel.equal Image.Pixel.white (Image.Raster.get img ~x:3 ~y:3));
  check bool "outside untouched" true
    (Image.Pixel.equal Image.Pixel.black (Image.Raster.get img ~x:0 ~y:0))

let test_draw_disc_radius () =
  let img = Image.Raster.create ~width:9 ~height:9 in
  Image.Draw.disc img ~cx:4 ~cy:4 ~radius:2 Image.Pixel.white;
  check bool "centre painted" true
    (Image.Pixel.equal Image.Pixel.white (Image.Raster.get img ~x:4 ~y:4));
  check bool "corner untouched" true
    (Image.Pixel.equal Image.Pixel.black (Image.Raster.get img ~x:0 ~y:0));
  check bool "just outside radius untouched" true
    (Image.Pixel.equal Image.Pixel.black (Image.Raster.get img ~x:7 ~y:4))

let test_draw_glow_brightens_centre () =
  let img = Image.Raster.create ~width:9 ~height:9 in
  Image.Draw.glow img ~cx:4 ~cy:4 ~radius:3 ~intensity:100;
  check int "centre boosted" 100 (Image.Raster.get img ~x:4 ~y:4).Image.Pixel.r;
  check bool "falloff" true
    ((Image.Raster.get img ~x:6 ~y:4).Image.Pixel.r < 100)

let test_draw_vignette_darkens_corners () =
  let img = Image.Raster.create ~width:9 ~height:9 in
  Image.Raster.fill img (Image.Pixel.gray 200);
  Image.Draw.vignette img ~strength:0.5;
  let corner = (Image.Raster.get img ~x:0 ~y:0).Image.Pixel.r in
  let centre = (Image.Raster.get img ~x:4 ~y:4).Image.Pixel.r in
  check bool "corner darker than centre" true (corner < centre);
  check int "centre untouched" 200 centre

let test_channel_max_plane () =
  let img = Image.Raster.create ~width:2 ~height:1 in
  Image.Raster.set img ~x:0 ~y:0 (Image.Pixel.v 220 30 10);
  Image.Raster.set img ~x:1 ~y:0 (Image.Pixel.v 5 90 40);
  let plane = Image.Raster.channel_max_plane img in
  check int "red pixel channel max" 220 (Char.code (Bytes.get plane 0));
  check int "green pixel channel max" 90 (Char.code (Bytes.get plane 1))

let prop_channel_max_predicts_clipping =
  QCheck2.Test.make ~name:"channel-max histogram predicts clipping exactly"
    QCheck2.Gen.(pair (raster_gen ~max_dim:12) (oneofl [ 1.3; 1.7; 2.2; 2.9 ]))
    (fun (img, k) ->
      let hist =
        Image.Histogram.of_luminance_plane (Image.Raster.channel_max_plane img)
      in
      (* A pixel clips when k*c > 255.5 (see Pixel.is_clipped_by_scale),
         i.e. when c exceeds floor(255.5/k). *)
      let threshold = int_of_float (255.5 /. k) in
      let predicted =
        float_of_int (Image.Histogram.samples_above hist threshold)
        /. float_of_int (Image.Histogram.total hist)
      in
      abs_float (predicted -. Image.Ops.clipped_fraction ~k img) < 1e-9)

(* --- Ppm -------------------------------------------------------------- *)

let test_ppm_roundtrip () =
  let rng = Image.Prng.create ~seed:55 in
  let img = Image.Raster.init ~width:7 ~height:5 (fun ~x:_ ~y:_ ->
      Image.Pixel.v (Image.Prng.int rng 256) (Image.Prng.int rng 256)
        (Image.Prng.int rng 256))
  in
  (match Image.Ppm.of_string (Image.Ppm.to_string img) with
  | Ok back -> check bool "roundtrip exact" true (Image.Raster.equal img back)
  | Error e -> Alcotest.fail e)

let test_ppm_header_comments () =
  let img = Image.Raster.create ~width:2 ~height:2 in
  Image.Raster.fill img (Image.Pixel.gray 9);
  let serialised = Image.Ppm.to_string img in
  (* Inject a comment line after the magic. *)
  let with_comment =
    "P6\n# a viewer comment\n" ^ String.sub serialised 3 (String.length serialised - 3)
  in
  match Image.Ppm.of_string with_comment with
  | Ok back -> check bool "comments skipped" true (Image.Raster.equal img back)
  | Error e -> Alcotest.fail e

let test_ppm_rejects_malformed () =
  check bool "garbage" true (Result.is_error (Image.Ppm.of_string "not a ppm"));
  check bool "wrong magic" true (Result.is_error (Image.Ppm.of_string "P3\n1 1\n255\n..."));
  let img = Image.Raster.create ~width:4 ~height:4 in
  let valid = Image.Ppm.to_string img in
  let truncated = String.sub valid 0 (String.length valid - 5) in
  check bool "truncated pixels" true (Result.is_error (Image.Ppm.of_string truncated))

let test_ppm_file_io () =
  let img = Image.Raster.init ~width:6 ~height:4 (fun ~x ~y ->
      Image.Pixel.gray ((x * 40) + y))
  in
  let path = Filename.temp_file "annotation-power" ".ppm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Image.Ppm.write ~path img;
      match Image.Ppm.read ~path with
      | Ok back -> check bool "file roundtrip" true (Image.Raster.equal img back)
      | Error e -> Alcotest.fail e);
  check bool "missing file is an error" true
    (Result.is_error (Image.Ppm.read ~path:"/nonexistent/nope.ppm"))

(* --- Roi -------------------------------------------------------------- *)

let test_roi_membership () =
  let roi = Image.Roi.of_rects [ { Image.Roi.x = 2; y = 3; w = 4; h = 2 } ] in
  check bool "inside" true (Image.Roi.contains roi ~x:2 ~y:3);
  check bool "inside far corner" true (Image.Roi.contains roi ~x:5 ~y:4);
  check bool "outside right" false (Image.Roi.contains roi ~x:6 ~y:3);
  check bool "outside below" false (Image.Roi.contains roi ~x:2 ~y:5);
  check bool "empty contains nothing" false (Image.Roi.contains Image.Roi.empty ~x:0 ~y:0)

let test_roi_pixel_count_overlap () =
  (* Two overlapping rects: overlap counted once. *)
  let roi =
    Image.Roi.of_rects
      [
        { Image.Roi.x = 0; y = 0; w = 4; h = 4 };
        { Image.Roi.x = 2; y = 2; w = 4; h = 4 };
      ]
  in
  check int "union size" 28 (Image.Roi.pixel_count roi ~width:10 ~height:10)

let test_roi_center_band () =
  let roi = Image.Roi.center_band ~width:10 ~height:10 ~fraction:0.4 in
  check int "band pixels" 40 (Image.Roi.pixel_count roi ~width:10 ~height:10);
  check bool "centre row inside" true (Image.Roi.contains roi ~x:5 ~y:5);
  check bool "top row outside" false (Image.Roi.contains roi ~x:5 ~y:0)

let test_roi_split_histograms () =
  let img = Image.Raster.create ~width:4 ~height:4 in
  Image.Raster.fill img (Image.Pixel.gray 50);
  Image.Raster.set img ~x:0 ~y:0 (Image.Pixel.gray 200);
  let roi = Image.Roi.of_rects [ { Image.Roi.x = 0; y = 0; w = 2; h = 2 } ] in
  let inside = Image.Histogram.create () and outside = Image.Histogram.create () in
  Image.Roi.split_histograms roi img ~inside ~outside;
  check int "inside total" 4 (Image.Histogram.total inside);
  check int "outside total" 12 (Image.Histogram.total outside);
  check int "bright pixel in inside" 1 (Image.Histogram.count inside 200);
  check int "no bright pixel outside" 0 (Image.Histogram.count outside 200)

let test_roi_validation () =
  Alcotest.check_raises "negative rect"
    (Invalid_argument "Roi.of_rects: negative dimensions") (fun () ->
      ignore (Image.Roi.of_rects [ { Image.Roi.x = 0; y = 0; w = -1; h = 1 } ]))

(* --- Prng ------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Image.Prng.create ~seed:9 and b = Image.Prng.create ~seed:9 in
  for _ = 1 to 100 do
    check bool "same stream" true (Image.Prng.bits64 a = Image.Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Image.Prng.create ~seed:1 and b = Image.Prng.create ~seed:2 in
  check bool "different seeds differ" true (Image.Prng.bits64 a <> Image.Prng.bits64 b)

let test_prng_int_bounds () =
  let rng = Image.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Image.Prng.int rng 7 in
    check bool "in range" true (v >= 0 && v < 7)
  done

let test_prng_gaussian_moments () =
  let rng = Image.Prng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let v = Image.Prng.gaussian rng ~mu:10. ~sigma:3. in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check bool "mean near 10" true (abs_float (mean -. 10.) < 0.2);
  check bool "variance near 9" true (abs_float (var -. 9.) < 0.5)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_scale_monotone;
      prop_map_identity;
      prop_blit_equal;
      prop_fold_counts_pixels;
      prop_histogram_mass_conserved;
      prop_clip_level_respects_budget;
      prop_clip_level_is_tight;
      prop_l1_symmetric;
      prop_contrast_matches_pixel_scale;
      prop_display_sim_darkens;
      prop_psnr_decreases_with_noise;
      prop_channel_max_predicts_clipping;
    ]

let () =
  Alcotest.run "image"
    [
      ( "pixel",
        [
          Alcotest.test_case "clamping" `Quick test_pixel_clamping;
          Alcotest.test_case "luminance extremes" `Quick test_pixel_luminance_extremes;
          Alcotest.test_case "gray identity" `Quick test_pixel_luminance_gray_identity;
          Alcotest.test_case "bt601 weights" `Quick test_pixel_luminance_weights;
          Alcotest.test_case "scale clips" `Quick test_pixel_scale_clips;
          Alcotest.test_case "brightness add" `Quick test_pixel_add;
        ] );
      ( "raster",
        [
          Alcotest.test_case "create black" `Quick test_raster_create_black;
          Alcotest.test_case "bad dimensions" `Quick test_raster_bad_dimensions;
          Alcotest.test_case "get/set roundtrip" `Quick test_raster_get_set_roundtrip;
          Alcotest.test_case "out of bounds" `Quick test_raster_out_of_bounds;
          Alcotest.test_case "copy independence" `Quick test_raster_copy_independent;
          Alcotest.test_case "fill and mean" `Quick test_raster_fill_and_mean;
          Alcotest.test_case "luminance plane" `Quick test_raster_luminance_plane;
          Alcotest.test_case "channel max plane" `Quick test_channel_max_plane;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "total" `Quick test_histogram_of_raster_total;
          Alcotest.test_case "mean and range" `Quick test_histogram_mean_range;
          Alcotest.test_case "empty raises" `Quick test_histogram_empty_raises;
          Alcotest.test_case "clip level lossless" `Quick test_histogram_clip_level_zero_loss;
          Alcotest.test_case "clip level budget" `Quick test_histogram_clip_level_budget;
          Alcotest.test_case "samples above" `Quick test_histogram_samples_above;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "distance identity" `Quick test_histogram_distances_identity;
          Alcotest.test_case "distance disjoint" `Quick test_histogram_distance_disjoint;
          Alcotest.test_case "earth mover's distance" `Quick test_histogram_emd;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "percentile edges" `Quick
            test_histogram_percentile_edges;
          Alcotest.test_case "of_counts validation" `Quick test_histogram_of_counts_validation;
        ] );
      ( "ops",
        [
          Alcotest.test_case "identity gain" `Quick test_contrast_enhance_identity;
          Alcotest.test_case "doubling" `Quick test_contrast_enhance_doubles;
          Alcotest.test_case "clipped fraction" `Quick test_clipped_fraction;
          Alcotest.test_case "brightness compensate" `Quick test_brightness_compensate;
          Alcotest.test_case "downsample mean" `Quick test_downsample_mean;
          Alcotest.test_case "downsample bad factor" `Quick test_downsample_bad_factor;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "identical" `Quick test_metrics_identical;
          Alcotest.test_case "known mse" `Quick test_metrics_known_mse;
          Alcotest.test_case "dimension mismatch" `Quick test_metrics_dimension_mismatch;
          Alcotest.test_case "ssim identical" `Quick test_ssim_identical;
          Alcotest.test_case "ssim vs noise" `Quick test_ssim_degrades_with_noise;
          Alcotest.test_case "ssim structure" `Quick test_ssim_structure_sensitive;
          Alcotest.test_case "ssim window size" `Quick test_ssim_too_small;
        ] );
      ( "draw",
        [
          Alcotest.test_case "gradient endpoints" `Quick test_draw_gradient_endpoints;
          Alcotest.test_case "rect cropping" `Quick test_draw_rect_cropped;
          Alcotest.test_case "disc radius" `Quick test_draw_disc_radius;
          Alcotest.test_case "glow centre" `Quick test_draw_glow_brightens_centre;
          Alcotest.test_case "vignette corners" `Quick test_draw_vignette_darkens_corners;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "roundtrip" `Quick test_ppm_roundtrip;
          Alcotest.test_case "header comments" `Quick test_ppm_header_comments;
          Alcotest.test_case "rejects malformed" `Quick test_ppm_rejects_malformed;
          Alcotest.test_case "file io" `Quick test_ppm_file_io;
        ] );
      ( "roi",
        [
          Alcotest.test_case "membership" `Quick test_roi_membership;
          Alcotest.test_case "overlap counting" `Quick test_roi_pixel_count_overlap;
          Alcotest.test_case "center band" `Quick test_roi_center_band;
          Alcotest.test_case "split histograms" `Quick test_roi_split_histograms;
          Alcotest.test_case "validation" `Quick test_roi_validation;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed separation" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ("properties", qtests);
    ]
