(* Tests for the paper's core contribution: quality levels, scene
   detection, the backlight solver, annotation tracks, the binary
   encoding and the full annotator pipeline. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let device = Display.Device.ipaq_h5555

let histogram_of_levels levels =
  let h = Image.Histogram.create () in
  List.iter (Image.Histogram.add_sample h) levels;
  h

(* --- Quality_level ------------------------------------------------------ *)

let test_quality_grid () =
  check int "five levels" 5 (List.length Annotation.Quality_level.standard_grid);
  Alcotest.(check (list (float 1e-12)))
    "paper budgets"
    [ 0.; 0.05; 0.10; 0.15; 0.20 ]
    (List.map Annotation.Quality_level.allowed_loss Annotation.Quality_level.standard_grid)

let test_quality_of_percent () =
  check bool "10 maps to Loss_10" true
    (Annotation.Quality_level.of_percent 10. = Annotation.Quality_level.Loss_10);
  check bool "7 maps to custom" true
    (match Annotation.Quality_level.of_percent 7. with
    | Annotation.Quality_level.Custom f -> abs_float (f -. 0.07) < 1e-12
    | _ -> false)

let test_quality_labels () =
  Alcotest.(check (list string))
    "labels"
    [ "0%"; "5%"; "10%"; "15%"; "20%" ]
    (List.map Annotation.Quality_level.label Annotation.Quality_level.standard_grid)

let test_quality_custom_validation () =
  Alcotest.check_raises "loss above 1"
    (Invalid_argument "Quality_level: custom loss out of [0, 1]") (fun () ->
      ignore (Annotation.Quality_level.allowed_loss (Annotation.Quality_level.Custom 1.5)))

(* --- Scene_detect ------------------------------------------------------- *)

let test_scene_single_scene () =
  let track = Array.make 20 100 in
  let scenes = Annotation.Scene_detect.segment Annotation.Scene_detect.default_params track in
  check int "one scene" 1 (List.length scenes);
  (match scenes with
  | [ s ] ->
    check int "starts at 0" 0 s.Annotation.Scene_detect.first;
    check int "ends at last" 19 s.Annotation.Scene_detect.last
  | _ -> Alcotest.fail "expected one scene")

let test_scene_detects_cut () =
  (* 10 dark frames then 10 bright frames: one cut. *)
  let track = Array.init 20 (fun i -> if i < 10 then 50 else 200) in
  let scenes = Annotation.Scene_detect.segment Annotation.Scene_detect.default_params track in
  check int "two scenes" 2 (List.length scenes);
  (match scenes with
  | [ a; b ] ->
    check int "cut position" 9 a.Annotation.Scene_detect.last;
    check int "second starts" 10 b.Annotation.Scene_detect.first
  | _ -> Alcotest.fail "expected two scenes")

let test_scene_threshold_hysteresis () =
  (* A 5% wobble must not trigger a cut at the 10% threshold. *)
  let track = Array.init 30 (fun i -> if i mod 2 = 0 then 200 else 192) in
  let scenes = Annotation.Scene_detect.segment Annotation.Scene_detect.default_params track in
  check int "wobble ignored" 1 (List.length scenes)

let test_scene_min_interval_suppresses_flicker () =
  (* Alternating black/white every frame: without the minimum interval
     this would cut every frame; with it, scenes last at least
     min_scene_frames. *)
  let track = Array.init 24 (fun i -> if i mod 2 = 0 then 20 else 250) in
  let params =
    {
      Annotation.Scene_detect.change_threshold = 0.10;
      min_scene_frames = 6;
      mean_change_threshold = infinity;
    }
  in
  let scenes = Annotation.Scene_detect.segment params track in
  List.iter
    (fun s ->
      let len = s.Annotation.Scene_detect.last - s.Annotation.Scene_detect.first + 1 in
      (* The final scene may be a remainder shorter than the interval. *)
      if s.Annotation.Scene_detect.last <> 23 then
        check bool "scene respects min length" true (len >= 6))
    scenes

let test_scene_per_frame_mode () =
  let track = Array.make 7 123 in
  let scenes = Annotation.Scene_detect.segment Annotation.Scene_detect.per_frame_params track in
  check int "every frame its own scene" 7 (List.length scenes);
  check int "switches" 6 (Annotation.Scene_detect.switches scenes)

let test_scene_empty_track () =
  check int "no scenes for empty track" 0
    (List.length (Annotation.Scene_detect.segment Annotation.Scene_detect.default_params [||]))

let test_scene_max () =
  let track = [| 10; 50; 30 |] in
  let s = { Annotation.Scene_detect.first = 0; last = 2 } in
  check int "scene max" 50 (Annotation.Scene_detect.scene_max track s)

let test_scene_params_validation () =
  Alcotest.check_raises "bad min length"
    (Invalid_argument "Scene_detect: min scene length must be at least 1") (fun () ->
      ignore
        (Annotation.Scene_detect.segment
           {
             Annotation.Scene_detect.change_threshold = 0.1;
             min_scene_frames = 0;
             mean_change_threshold = infinity;
           }
           [| 1 |]))

let prop_scene_partition =
  QCheck2.Test.make ~name:"scene detection yields a partition"
    QCheck2.Gen.(
      pair
        (array_size (1 -- 60) (0 -- 255))
        (pair (float_bound_inclusive 0.5) (1 -- 10)))
    (fun (track, (threshold, min_frames)) ->
      let params =
        {
          Annotation.Scene_detect.change_threshold = threshold;
          min_scene_frames = min_frames;
          mean_change_threshold = infinity;
        }
      in
      let scenes = Annotation.Scene_detect.segment params track in
      let rec covers expected = function
        | [] -> expected = Array.length track
        | s :: rest ->
          s.Annotation.Scene_detect.first = expected
          && s.Annotation.Scene_detect.last >= s.Annotation.Scene_detect.first
          && covers (s.Annotation.Scene_detect.last + 1) rest
      in
      covers 0 scenes)

(* --- Backlight_solver --------------------------------------------------- *)

let test_solver_bright_scene_no_dimming () =
  let hist = histogram_of_levels (List.init 100 (fun _ -> 255)) in
  let sol = Annotation.Backlight_solver.solve ~device ~quality:Annotation.Quality_level.Lossless hist in
  check int "effective max is 255" 255 sol.Annotation.Backlight_solver.effective_max;
  check int "full register" 255 sol.Annotation.Backlight_solver.register;
  check (Alcotest.float 1e-9) "no compensation" 1. sol.Annotation.Backlight_solver.compensation

let test_solver_dark_scene_dims () =
  let hist = histogram_of_levels (List.init 100 (fun _ -> 60)) in
  let sol = Annotation.Backlight_solver.solve ~device ~quality:Annotation.Quality_level.Lossless hist in
  check int "effective max 60" 60 sol.Annotation.Backlight_solver.effective_max;
  check bool "register well below full" true (sol.Annotation.Backlight_solver.register < 128);
  check bool "compensates upward" true (sol.Annotation.Backlight_solver.compensation > 1.)

let test_solver_clipping_budget_used () =
  (* 95 pixels at 80, 5 bright outliers at 250. *)
  let hist =
    histogram_of_levels
      (List.init 95 (fun _ -> 80) @ List.init 5 (fun _ -> 250))
  in
  let lossless =
    Annotation.Backlight_solver.solve ~device ~quality:Annotation.Quality_level.Lossless hist
  in
  let lossy =
    Annotation.Backlight_solver.solve ~device ~quality:Annotation.Quality_level.Loss_5 hist
  in
  check int "lossless keeps outliers" 250 lossless.Annotation.Backlight_solver.effective_max;
  check int "5%% budget clips outliers" 80 lossy.Annotation.Backlight_solver.effective_max;
  check bool "budget honoured" true
    (lossy.Annotation.Backlight_solver.clipped_fraction <= 0.05 +. 1e-9);
  check bool "lossy register lower" true
    (lossy.Annotation.Backlight_solver.register < lossless.Annotation.Backlight_solver.register)

let test_solver_black_scene () =
  let hist = histogram_of_levels (List.init 50 (fun _ -> 0)) in
  let sol = Annotation.Backlight_solver.solve ~device ~quality:Annotation.Quality_level.Lossless hist in
  check int "effective max 0" 0 sol.Annotation.Backlight_solver.effective_max;
  check (Alcotest.float 1e-9) "no compensation for black" 1.
    sol.Annotation.Backlight_solver.compensation

let test_solver_realised_gain_covers_desired () =
  let hist = histogram_of_levels [ 10; 90; 130; 200; 200 ] in
  List.iter
    (fun q ->
      let sol = Annotation.Backlight_solver.solve ~device ~quality:q hist in
      check bool "realised >= desired" true
        (sol.Annotation.Backlight_solver.realised_gain
         >= sol.Annotation.Backlight_solver.desired_gain -. 1e-12))
    Annotation.Quality_level.standard_grid

let test_solver_compensation_never_overclips () =
  (* compensation * realised gain <= 1 + rounding: brightening never
     exceeds what the dimmed backlight calls for. *)
  let hist = histogram_of_levels [ 40; 80; 120; 160; 230 ] in
  List.iter
    (fun q ->
      let sol = Annotation.Backlight_solver.solve ~device ~quality:q hist in
      check bool "k * g <= 1" true
        (sol.Annotation.Backlight_solver.compensation
         *. sol.Annotation.Backlight_solver.realised_gain
         <= 1. +. 1e-9))
    Annotation.Quality_level.standard_grid

let prop_solver_monotone_in_quality =
  QCheck2.Test.make ~name:"register is non-increasing in allowed loss"
    QCheck2.Gen.(array_size (10 -- 60) (0 -- 255))
    (fun levels ->
      let hist = histogram_of_levels (Array.to_list levels) in
      let registers =
        List.map
          (fun q -> (Annotation.Backlight_solver.solve ~device ~quality:q hist).Annotation.Backlight_solver.register)
          Annotation.Quality_level.standard_grid
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing registers)

let prop_solver_respects_budget =
  QCheck2.Test.make ~name:"predicted clipping within budget"
    QCheck2.Gen.(pair (array_size (10 -- 60) (0 -- 255)) (float_bound_inclusive 0.3))
    (fun (levels, loss) ->
      let hist = histogram_of_levels (Array.to_list levels) in
      let q = Annotation.Quality_level.Custom loss in
      let sol = Annotation.Backlight_solver.solve ~device ~quality:q hist in
      sol.Annotation.Backlight_solver.clipped_fraction <= loss +. 1e-9)

(* --- Operator ------------------------------------------------------------ *)

let test_operator_contrast_exact_when_lossless () =
  (* With no clipping, contrast enhancement preserves every level up to
     register rounding. *)
  let hist = histogram_of_levels [ 20; 60; 60; 100; 140 ] in
  let sol =
    Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Lossless
      Annotation.Operator.Contrast_enhancement hist
  in
  check bool
    (Format.asprintf "error tiny: %a" Annotation.Operator.pp sol)
    true
    (sol.Annotation.Operator.mean_error < 0.01)

let test_operator_brightness_has_residual () =
  (* A spread of levels: the additive offset cannot restore them all. *)
  let hist = histogram_of_levels [ 10; 40; 80; 120; 160 ] in
  let contrast =
    Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Lossless
      Annotation.Operator.Contrast_enhancement hist
  in
  let brightness =
    Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Lossless
      Annotation.Operator.Brightness_compensation hist
  in
  check bool "contrast strictly more faithful" true
    (contrast.Annotation.Operator.mean_error < brightness.Annotation.Operator.mean_error)

let test_operator_brightness_respects_budget () =
  let hist =
    histogram_of_levels (List.init 95 (fun _ -> 70) @ List.init 5 (fun _ -> 240))
  in
  let sol =
    Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Loss_5
      Annotation.Operator.Brightness_compensation hist
  in
  check bool "clipping within budget" true
    (sol.Annotation.Operator.clipped_fraction <= 0.05 +. 1e-9);
  (* delta = 255 - 70: the offset uses the whole budgeted headroom. *)
  check (Alcotest.float 1e-9) "delta" 185. sol.Annotation.Operator.parameter

let test_operator_apply_matches_ops () =
  let frame = Image.Raster.create ~width:4 ~height:4 in
  Image.Raster.fill frame (Image.Pixel.gray 80);
  let hist = Image.Histogram.of_raster frame in
  let contrast =
    Annotation.Operator.solve ~device ~quality:Annotation.Quality_level.Lossless
      Annotation.Operator.Contrast_enhancement hist
  in
  let applied = Annotation.Operator.apply contrast frame in
  check bool "brightened" true
    (Image.Raster.mean_luminance applied > Image.Raster.mean_luminance frame)

(* --- Track -------------------------------------------------------------- *)

let entry ~first ~count ~register ~comp ~eff =
  {
    Annotation.Track.first_frame = first;
    frame_count = count;
    register;
    compensation = comp;
    effective_max = eff;
  }

let sample_track () =
  Annotation.Track.make ~clip_name:"c" ~device_name:"d"
    ~quality:Annotation.Quality_level.Loss_10 ~fps:12. ~total_frames:10
    [|
      entry ~first:0 ~count:4 ~register:200 ~comp:1.2 ~eff:210;
      entry ~first:4 ~count:3 ~register:100 ~comp:2.0 ~eff:128;
      entry ~first:7 ~count:3 ~register:200 ~comp:1.2 ~eff:210;
    |]

let test_track_lookup () =
  let t = sample_track () in
  check int "frame 0" 200 (Annotation.Track.lookup t 0).Annotation.Track.register;
  check int "frame 3" 200 (Annotation.Track.lookup t 3).Annotation.Track.register;
  check int "frame 4" 100 (Annotation.Track.lookup t 4).Annotation.Track.register;
  check int "frame 6" 100 (Annotation.Track.lookup t 6).Annotation.Track.register;
  check int "frame 9" 200 (Annotation.Track.lookup t 9).Annotation.Track.register;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Track.lookup: frame out of range") (fun () ->
      ignore (Annotation.Track.lookup t 10))

let test_track_register_track () =
  let t = sample_track () in
  Alcotest.(check (array int))
    "expanded"
    [| 200; 200; 200; 200; 100; 100; 100; 200; 200; 200 |]
    (Annotation.Track.register_track t)

let test_track_switch_count () =
  check int "two switches" 2 (Annotation.Track.switch_count (sample_track ()))

let test_track_merge_runs () =
  let t =
    Annotation.Track.make ~clip_name:"c" ~device_name:"d"
      ~quality:Annotation.Quality_level.Lossless ~fps:10. ~total_frames:6
      [|
        entry ~first:0 ~count:2 ~register:90 ~comp:1.5 ~eff:128;
        entry ~first:2 ~count:2 ~register:90 ~comp:1.5 ~eff:128;
        entry ~first:4 ~count:2 ~register:30 ~comp:3.0 ~eff:60;
      |]
  in
  let merged = Annotation.Track.merge_runs t in
  check int "merged entries" 2 (Annotation.Track.entry_count merged);
  Alcotest.(check (array int))
    "same expansion"
    (Annotation.Track.register_track t)
    (Annotation.Track.register_track merged)

let test_track_validation () =
  let bad_gap () =
    ignore
      (Annotation.Track.make ~clip_name:"c" ~device_name:"d"
         ~quality:Annotation.Quality_level.Lossless ~fps:10. ~total_frames:4
         [|
           entry ~first:0 ~count:2 ~register:10 ~comp:1. ~eff:20;
           entry ~first:3 ~count:1 ~register:10 ~comp:1. ~eff:20;
         |])
  in
  Alcotest.check_raises "gap rejected"
    (Invalid_argument "Track.make: entries not contiguous") bad_gap;
  let bad_coverage () =
    ignore
      (Annotation.Track.make ~clip_name:"c" ~device_name:"d"
         ~quality:Annotation.Quality_level.Lossless ~fps:10. ~total_frames:5
         [| entry ~first:0 ~count:2 ~register:10 ~comp:1. ~eff:20 |])
  in
  Alcotest.check_raises "short coverage rejected"
    (Invalid_argument "Track.make: entries do not cover the clip") bad_coverage;
  let bad_comp () =
    ignore
      (Annotation.Track.make ~clip_name:"c" ~device_name:"d"
         ~quality:Annotation.Quality_level.Lossless ~fps:10. ~total_frames:1
         [| entry ~first:0 ~count:1 ~register:10 ~comp:0.5 ~eff:20 |])
  in
  Alcotest.check_raises "compensation below 1 rejected"
    (Invalid_argument "Track.make: invalid entry") bad_comp

let test_track_empty_clip () =
  let t =
    Annotation.Track.make ~clip_name:"c" ~device_name:"d"
      ~quality:Annotation.Quality_level.Lossless ~fps:10. ~total_frames:0 [||]
  in
  check int "no switches" 0 (Annotation.Track.switch_count t);
  Alcotest.(check (array int)) "empty register track" [||] (Annotation.Track.register_track t)

(* --- Encoding ----------------------------------------------------------- *)

let test_encoding_roundtrip () =
  let t = sample_track () in
  let encoded = Annotation.Encoding.encode t in
  match Annotation.Encoding.decode encoded with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    check bool "clip name" true (t'.Annotation.Track.clip_name = "c");
    check bool "device name" true (t'.Annotation.Track.device_name = "d");
    check bool "quality" true
      (Annotation.Quality_level.compare t'.Annotation.Track.quality t.Annotation.Track.quality = 0);
    check (Alcotest.float 1e-6) "fps" 12. t'.Annotation.Track.fps;
    Alcotest.(check (array int))
      "registers preserved"
      (Annotation.Track.register_track t)
      (Annotation.Track.register_track t');
    Array.iteri
      (fun i (e : Annotation.Track.entry) ->
        let e' = t'.Annotation.Track.entries.(i) in
        check bool "compensation close" true
          (abs_float (e.Annotation.Track.compensation -. e'.Annotation.Track.compensation)
           < 0.001))
      t.Annotation.Track.entries

let test_encoding_compact () =
  (* §4.3: annotations are "in the order of hundreds of bytes". A
     10-entry track must be well under 200 bytes. *)
  let entries =
    Array.init 10 (fun i ->
        entry ~first:(i * 30) ~count:30 ~register:(50 + (i * 10))
          ~comp:(1. +. (0.1 *. float_of_int i))
          ~eff:(100 + (i * 10)))
  in
  let t =
    Annotation.Track.make ~clip_name:"clip" ~device_name:"ipaq_h5555"
      ~quality:Annotation.Quality_level.Loss_10 ~fps:12. ~total_frames:300 entries
  in
  check bool "compact" true (Annotation.Encoding.encoded_size t < 200)

let test_encoding_rejects_garbage () =
  check bool "garbage" true (Result.is_error (Annotation.Encoding.decode "garbage"));
  check bool "empty" true (Result.is_error (Annotation.Encoding.decode ""));
  let valid = Annotation.Encoding.encode (sample_track ()) in
  let truncated = String.sub valid 0 (String.length valid - 3) in
  check bool "truncated" true (Result.is_error (Annotation.Encoding.decode truncated));
  let extended = valid ^ "x" in
  check bool "trailing bytes" true (Result.is_error (Annotation.Encoding.decode extended))

let test_encoding_mutation_fuzz () =
  (* Corrupted annotation bytes must yield Error, never an exception —
     the client falls back to full backlight on a bad side channel. *)
  let valid = Annotation.Encoding.encode (sample_track ()) in
  let rng = Image.Prng.create ~seed:77 in
  for _ = 1 to 300 do
    let mutated = Bytes.of_string valid in
    let pos = Image.Prng.int rng (Bytes.length mutated) in
    Bytes.set mutated pos (Char.chr (Image.Prng.int rng 256));
    match Annotation.Encoding.decode (Bytes.to_string mutated) with
    | Ok _ | Error _ -> ()
  done;
  check bool "no escaped exceptions over 300 mutations" true true

(* A contiguous track whose later runs start past 2^24 frames — more
   than the fixed v2 record's u24 slots can hold. Distinct registers
   keep merge_runs from coalescing the runs away. *)
let huge_track () =
  let run = 0x900000 in
  Annotation.Track.make ~clip_name:"long" ~device_name:"d"
    ~quality:Annotation.Quality_level.Loss_10 ~fps:12. ~total_frames:(3 * run)
    [|
      entry ~first:0 ~count:run ~register:200 ~comp:1.5 ~eff:210;
      entry ~first:run ~count:run ~register:100 ~comp:1.5 ~eff:128;
      entry ~first:(2 * run) ~count:run ~register:50 ~comp:1.5 ~eff:90;
    |]

let test_encode_rejects_u24_overflow () =
  (* Regression: a first_frame past 2^24 - 1 must raise a field-named
     Invalid_argument instead of wrapping into bytes that still CRC as
     valid. *)
  Alcotest.check_raises "first_frame overflow"
    (Invalid_argument
       (Printf.sprintf "Encoding: first_frame %d out of u24 range"
          (2 * 0x900000)))
    (fun () -> ignore (Annotation.Encoding.encode (huge_track ())))

let test_encode_rejects_gain_overflow () =
  (* The 12.12 fixed point carries gains below 4096; a pathological
     compensation must be rejected, not truncated. *)
  let t =
    Annotation.Track.make ~clip_name:"c" ~device_name:"d"
      ~quality:Annotation.Quality_level.Loss_10 ~fps:12. ~total_frames:4
      [| entry ~first:0 ~count:4 ~register:10 ~comp:5000. ~eff:255 |]
  in
  Alcotest.check_raises "compensation gain overflow"
    (Invalid_argument
       (Printf.sprintf "Encoding: compensation gain %d out of u24 range"
          (int_of_float ((5000. *. 4096.) +. 0.5))))
    (fun () -> ignore (Annotation.Encoding.encode t))

let test_encode_v1_handles_long_clips () =
  (* v1 packs varints, so the same >2^24-frame track round-trips — the
     fixed-slot limit is specific to v2 records. *)
  let t = huge_track () in
  match Annotation.Encoding.decode (Annotation.Encoding.encode_v1 t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    check int "entry count" 3 (Array.length t'.Annotation.Track.entries);
    check bool "total frames" true
      (t'.Annotation.Track.total_frames = t.Annotation.Track.total_frames);
    Array.iteri
      (fun i (e : Annotation.Track.entry) ->
        let e' = t'.Annotation.Track.entries.(i) in
        check int
          (Printf.sprintf "entry %d first_frame" i)
          e.Annotation.Track.first_frame e'.Annotation.Track.first_frame;
        check int
          (Printf.sprintf "entry %d register" i)
          e.Annotation.Track.register e'.Annotation.Track.register)
      t.Annotation.Track.entries

let test_encoding_rejects_bad_version () =
  let valid = Bytes.of_string (Annotation.Encoding.encode (sample_track ())) in
  Bytes.set valid 4 '\xFF';
  check bool "bad version" true
    (Result.is_error (Annotation.Encoding.decode (Bytes.to_string valid)))

let prop_encoding_roundtrip =
  (* Random (but valid) tracks survive encode/decode. *)
  let track_gen =
    let open QCheck2.Gen in
    let* n_entries = 1 -- 12 in
    let* counts = list_size (return n_entries) (1 -- 50) in
    let* registers = list_size (return n_entries) (0 -- 255) in
    let* effs = list_size (return n_entries) (0 -- 255) in
    let entries =
      List.map2
        (fun c (r, e) ->
          (* Compensation quantised to the wire fixed point so
             round-trips are exact. *)
          let comp = 1. +. (float_of_int (r mod 7) /. 8.) in
          let comp = Float.round (comp *. 4096.) /. 4096. in
          (c, r, e, comp))
        counts (List.combine registers effs)
    in
    let _, with_offsets =
      List.fold_left
        (fun (next, acc) (c, r, e, comp) ->
          ( next + c,
            entry ~first:next ~count:c ~register:r ~comp ~eff:e :: acc ))
        (0, []) entries
    in
    let entries_arr = Array.of_list (List.rev with_offsets) in
    let total = Array.fold_left (fun a e -> a + e.Annotation.Track.frame_count) 0 entries_arr in
    return
      (Annotation.Track.make ~clip_name:"gen" ~device_name:"dev"
         ~quality:Annotation.Quality_level.Loss_15 ~fps:12. ~total_frames:total entries_arr)
  in
  QCheck2.Test.make ~name:"encoding round-trips arbitrary tracks" track_gen
    (fun t ->
      match Annotation.Encoding.decode (Annotation.Encoding.encode t) with
      | Error _ -> false
      | Ok t' ->
        Annotation.Track.register_track t = Annotation.Track.register_track t'
        && t'.Annotation.Track.total_frames = t.Annotation.Track.total_frames)

(* --- Compensate / Annotator ---------------------------------------------- *)

let dark_bright_clip () =
  (* 8 dark frames then 8 bright frames, no noise: two crisp scenes. *)
  let profile =
    {
      Video.Profile.name = "two-scene";
      seed = 5;
      scenes =
        [
          Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 60);
          Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 220);
        ];
    }
  in
  Video.Clip_gen.render ~width:24 ~height:18 ~fps:8. profile

let test_annotator_two_scenes () =
  let clip = dark_bright_clip () in
  let track =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip
  in
  check int "two entries" 2 (Annotation.Track.entry_count track);
  let dark = Annotation.Track.lookup track 0 and bright = Annotation.Track.lookup track 15 in
  check bool "dark scene dimmed" true
    (dark.Annotation.Track.register < bright.Annotation.Track.register);
  check int "dark effective max" 60 dark.Annotation.Track.effective_max;
  check int "bright effective max" 220 bright.Annotation.Track.effective_max

let test_annotator_perceived_intensity_preserved () =
  (* End-to-end §4.1 check: the compensated frame at the annotated
     register must look like the original at full backlight. *)
  let clip = dark_bright_clip () in
  let track =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip
  in
  let original = clip.Video.Clip.render 2 in
  let compensated = Annotation.Compensate.frame track 2 original in
  let entry = Annotation.Track.lookup track 2 in
  let err =
    Annotation.Compensate.perceived_error ~device ~original ~compensated
      ~register:entry.Annotation.Track.register
  in
  check bool (Printf.sprintf "perceived error %.4f < 2%%" err) true (err < 0.02)

let test_annotator_lossless_never_clips () =
  let clip = dark_bright_clip () in
  let track =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip
  in
  (* At lossless quality no pixel may saturate under compensation. *)
  Video.Clip.iter_frames
    (fun i frame ->
      let entry = Annotation.Track.lookup track i in
      let clipped =
        Image.Ops.clipped_fraction ~k:entry.Annotation.Track.compensation frame
      in
      check (Alcotest.float 1e-9) (Printf.sprintf "frame %d" i) 0. clipped)
    clip

let test_annotator_quality_budget_on_scenes () =
  (* On scene-stable content the per-frame clipping stays within the
     budget for every quality level. *)
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  List.iter
    (fun q ->
      let track = Annotation.Annotator.annotate_profiled ~device ~quality:q profiled in
      Video.Clip.iter_frames
        (fun i frame ->
          let entry = Annotation.Track.lookup track i in
          let clipped =
            Image.Ops.clipped_fraction ~k:entry.Annotation.Track.compensation frame
          in
          check bool
            (Printf.sprintf "%s frame %d clipped %.3f" (Annotation.Quality_level.label q) i clipped)
            true
            (clipped <= Annotation.Quality_level.allowed_loss q +. 1e-9))
        clip)
    Annotation.Quality_level.standard_grid

let test_annotator_compensated_clip () =
  let clip = dark_bright_clip () in
  let track =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip
  in
  let compensated = Annotation.Compensate.clip clip track in
  (* The dark scene is brightened in the stream the client receives. *)
  check bool "stream pre-brightened" true
    (Image.Raster.mean_luminance (compensated.Video.Clip.render 0)
     > Image.Raster.mean_luminance (clip.Video.Clip.render 0));
  check bool "name tagged" true
    (compensated.Video.Clip.name = "two-scene+compensated")

let test_annotator_profile_caching_consistency () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let direct = Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip in
  let cached =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10 profiled
  in
  Alcotest.(check (array int))
    "same registers either way"
    (Annotation.Track.register_track direct)
    (Annotation.Track.register_track cached)

let test_annotator_device_specific_registers () =
  (* §2: "Our scheme allows us to tailor the technique to each PDA" —
     the same clip and quality must give different registers on LED vs
     CCFL devices. *)
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let led =
    Annotation.Annotator.annotate_profiled ~device:Display.Device.ipaq_h5555
      ~quality:Annotation.Quality_level.Lossless profiled
  in
  let ccfl =
    Annotation.Annotator.annotate_profiled ~device:Display.Device.ipaq_h3650
      ~quality:Annotation.Quality_level.Lossless profiled
  in
  check bool "registers differ across devices" true
    (Annotation.Track.register_track led <> Annotation.Track.register_track ccfl)

let test_annotator_channel_max_plane_conservative () =
  (* A saturated-red frame: luma profiling under-estimates clipping,
     channel-max profiling raises the registers to prevent it. *)
  let frame = Image.Raster.create ~width:16 ~height:12 in
  Image.Raster.fill frame (Image.Pixel.gray 40);
  Image.Draw.rect frame ~x:0 ~y:0 ~w:8 ~h:12 (Image.Pixel.v 230 30 30);
  let clip = Video.Clip.of_frames ~name:"red" ~fps:8. (Array.make 8 frame) in
  let register plane =
    let profiled = Annotation.Annotator.profile ~plane clip in
    let track =
      Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Lossless
        profiled
    in
    (Annotation.Track.lookup track 0).Annotation.Track.register
  in
  let luma_register = register `Luma in
  let chan_register = register `Channel_max in
  check bool "channel-max register higher" true (chan_register > luma_register);
  (* And the channel-max register really is lossless on the pixels. *)
  let gain = Display.Device.backlight_gain device chan_register in
  check (Alcotest.float 1e-9) "no pixel clips" 0.
    (Image.Ops.clipped_fraction ~k:(1. /. gain) frame)

(* --- Neutral (client-mapped) annotation ------------------------------------ *)

let test_neutral_track_is_generic () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let neutral = Annotation.Neutral.annotate ~quality:Annotation.Quality_level.Lossless profiled in
  check bool "generic device name" true
    (neutral.Annotation.Track.device_name = Annotation.Neutral.generic_device_name);
  (* Neutral "registers" are the effective maxima themselves. *)
  Array.iter
    (fun (e : Annotation.Track.entry) ->
      check int "wire gain equals effective max" e.Annotation.Track.effective_max
        e.Annotation.Track.register)
    neutral.Annotation.Track.entries

let test_neutral_mapping_matches_server_side () =
  (* Client-side mapping of a neutral track lands on the same registers
     as direct server-side annotation for that device. *)
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let neutral = Annotation.Neutral.annotate ~quality:Annotation.Quality_level.Loss_10 profiled in
  List.iter
    (fun dev ->
      let mapped = Annotation.Neutral.map_to_device dev neutral in
      let direct =
        Annotation.Annotator.annotate_profiled ~device:dev
          ~quality:Annotation.Quality_level.Loss_10 profiled
      in
      check bool (dev.Display.Device.name ^ " name set") true
        (mapped.Annotation.Track.device_name = dev.Display.Device.name);
      Alcotest.(check (array int))
        (dev.Display.Device.name ^ " registers agree")
        (Annotation.Track.register_track direct)
        (Annotation.Track.register_track mapped))
    Display.Device.all

let test_neutral_roundtrips_the_wire () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let neutral = Annotation.Neutral.annotate ~quality:Annotation.Quality_level.Loss_10 profiled in
  match Annotation.Encoding.decode (Annotation.Encoding.encode neutral) with
  | Error e -> Alcotest.fail e
  | Ok wire ->
    let mapped = Annotation.Neutral.map_to_device device wire in
    Alcotest.(check (array int))
      "wire neutral maps identically"
      (Annotation.Track.register_track (Annotation.Neutral.map_to_device device neutral))
      (Annotation.Track.register_track mapped)

(* --- Live (windowed) annotation ------------------------------------------- *)

let test_live_full_window_equals_offline () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let offline =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
      profiled
  in
  let live =
    Annotation.Live.annotate ~lookahead:clip.Video.Clip.frame_count ~device
      ~quality:Annotation.Quality_level.Loss_10 profiled
  in
  Alcotest.(check (array int))
    "identical registers"
    (Annotation.Track.register_track offline)
    (Annotation.Track.register_track live)

let test_live_windows_never_span () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let lookahead = 5 in
  let track =
    Annotation.Live.annotate ~lookahead ~device ~quality:Annotation.Quality_level.Loss_10 profiled
  in
  Array.iter
    (fun (e : Annotation.Track.entry) ->
      let window_of i = i / lookahead in
      check int "entry stays in one window"
        (window_of e.Annotation.Track.first_frame)
        (window_of (e.Annotation.Track.first_frame + e.Annotation.Track.frame_count - 1)))
    track.Annotation.Track.entries

let test_live_savings_close_to_offline () =
  let clip = dark_bright_clip () in
  let profiled = Annotation.Annotator.profile clip in
  let mean_reg track =
    let regs = Annotation.Track.register_track track in
    float_of_int (Array.fold_left ( + ) 0 regs) /. float_of_int (Array.length regs)
  in
  let offline =
    mean_reg
      (Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
         profiled)
  in
  let live =
    mean_reg
      (Annotation.Live.annotate ~lookahead:6 ~device ~quality:Annotation.Quality_level.Loss_10
         profiled)
  in
  (* A 6-frame window on a 16-frame clip straddles the cut (the
     hysteresis cannot fire inside so short a window), so live runs a
     few frames at the merged-window register. It must stay in the
     same ballpark, and err on the bright (conservative) side. *)
  check bool "mean register within 40 of offline" true (abs_float (offline -. live) < 40.);
  check bool "live never dims below offline here" true (live >= offline -. 1e-9)

let test_live_latency () =
  check (Alcotest.float 1e-9) "latency" 3.
    (Annotation.Live.added_latency_s ~lookahead:36 ~fps:12.);
  Alcotest.check_raises "bad lookahead"
    (Invalid_argument "Live: lookahead must be positive") (fun () ->
      ignore (Annotation.Live.added_latency_s ~lookahead:0 ~fps:12.))

(* --- Protected (ROI) ------------------------------------------------------ *)

(* A dark clip with a bright band of "text" in the middle. *)
let credits_like_clip () =
  let width = 32 and height = 24 in
  let frames =
    Array.init 12 (fun _ ->
        let img = Image.Raster.create ~width ~height in
        Image.Raster.fill img (Image.Pixel.gray 10);
        Image.Draw.rect img ~x:4 ~y:10 ~w:24 ~h:3 (Image.Pixel.gray 230);
        img)
  in
  (Video.Clip.of_frames ~name:"credits-like" ~fps:6. frames, width, height)

let test_protected_solve_scene_respects_roi () =
  let inside = histogram_of_levels [ 230; 230; 10 ] in
  let outside = histogram_of_levels (List.init 100 (fun _ -> 10)) in
  let sol =
    Annotation.Protected.solve_scene ~device ~quality:Annotation.Quality_level.Loss_20 ~inside
      ~outside
  in
  check int "effective max covers the ROI" 230 sol.Annotation.Backlight_solver.effective_max

let test_protected_annotate_zero_roi_clipping () =
  let clip, width, height = credits_like_clip () in
  let roi = Image.Roi.center_band ~width ~height ~fraction:0.4 in
  let profiled = Annotation.Protected.profile ~roi clip in
  let track =
    Annotation.Protected.annotate ~device ~quality:Annotation.Quality_level.Loss_20 profiled
  in
  check (Alcotest.float 1e-9) "text never clips" 0.
    (Annotation.Protected.roi_clipped_fraction ~device profiled track)

let test_protected_vs_unprotected_tradeoff () =
  let clip, width, height = credits_like_clip () in
  let roi = Image.Roi.center_band ~width ~height ~fraction:0.4 in
  let profiled = Annotation.Protected.profile ~roi clip in
  let unprotected =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_20 clip
  in
  let protected_track =
    Annotation.Protected.annotate ~device ~quality:Annotation.Quality_level.Loss_20 profiled
  in
  (* Unprotected clips the text; protection costs registers. *)
  check bool "unprotected damages text" true
    (Annotation.Protected.roi_clipped_fraction ~device profiled unprotected > 0.01);
  let mean_reg track =
    let regs = Annotation.Track.register_track track in
    float_of_int (Array.fold_left ( + ) 0 regs) /. float_of_int (Array.length regs)
  in
  check bool "protection raises the registers" true
    (mean_reg protected_track > mean_reg unprotected)

let test_protected_empty_roi_matches_unprotected () =
  let clip, _, _ = credits_like_clip () in
  let profiled = Annotation.Protected.profile ~roi:Image.Roi.empty clip in
  let protected_track =
    Annotation.Protected.annotate ~device ~quality:Annotation.Quality_level.Loss_10 profiled
  in
  let unprotected =
    Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Loss_10 clip
  in
  Alcotest.(check (array int))
    "identical registers with empty region"
    (Annotation.Track.register_track unprotected)
    (Annotation.Track.register_track protected_track)

(* Random valid tracks for structural properties. *)
let arbitrary_track_gen =
  let open QCheck2.Gen in
  let* n_entries = 1 -- 15 in
  let* specs =
    list_size (return n_entries)
      (triple (1 -- 40) (0 -- 255) (0 -- 255))
  in
  let _, entries =
    List.fold_left
      (fun (next, acc) (count, register, eff) ->
        ( next + count,
          entry ~first:next ~count ~register ~comp:(1. +. (float_of_int (eff mod 5) /. 4.))
            ~eff
          :: acc ))
      (0, []) specs
  in
  let entries = Array.of_list (List.rev entries) in
  let total = Array.fold_left (fun a e -> a + e.Annotation.Track.frame_count) 0 entries in
  return
    (Annotation.Track.make ~clip_name:"prop" ~device_name:"dev"
       ~quality:Annotation.Quality_level.Loss_10 ~fps:10. ~total_frames:total entries)

let prop_merge_runs_idempotent =
  QCheck2.Test.make ~name:"merge_runs is idempotent and preserves expansion"
    arbitrary_track_gen (fun track ->
      let once = Annotation.Track.merge_runs track in
      let twice = Annotation.Track.merge_runs once in
      Annotation.Track.entry_count once = Annotation.Track.entry_count twice
      && Annotation.Track.register_track track = Annotation.Track.register_track once)

let prop_switches_bounded_by_entries =
  QCheck2.Test.make ~name:"switch count below entry count" arbitrary_track_gen
    (fun track ->
      Annotation.Track.switch_count track < max 1 (Annotation.Track.entry_count track))

let prop_lookup_consistent_with_expansion =
  QCheck2.Test.make ~name:"lookup agrees with the expanded register track"
    arbitrary_track_gen (fun track ->
      let regs = Annotation.Track.register_track track in
      let ok = ref true in
      Array.iteri
        (fun i r ->
          if (Annotation.Track.lookup track i).Annotation.Track.register <> r then ok := false)
        regs;
      !ok)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_scene_partition;
      prop_solver_monotone_in_quality;
      prop_solver_respects_budget;
      prop_encoding_roundtrip;
      prop_merge_runs_idempotent;
      prop_switches_bounded_by_entries;
      prop_lookup_consistent_with_expansion;
    ]

let () =
  Alcotest.run "annot"
    [
      ( "quality_level",
        [
          Alcotest.test_case "grid" `Quick test_quality_grid;
          Alcotest.test_case "of_percent" `Quick test_quality_of_percent;
          Alcotest.test_case "labels" `Quick test_quality_labels;
          Alcotest.test_case "custom validation" `Quick test_quality_custom_validation;
        ] );
      ( "scene_detect",
        [
          Alcotest.test_case "single scene" `Quick test_scene_single_scene;
          Alcotest.test_case "detects cut" `Quick test_scene_detects_cut;
          Alcotest.test_case "threshold hysteresis" `Quick test_scene_threshold_hysteresis;
          Alcotest.test_case "min interval" `Quick test_scene_min_interval_suppresses_flicker;
          Alcotest.test_case "per-frame mode" `Quick test_scene_per_frame_mode;
          Alcotest.test_case "empty track" `Quick test_scene_empty_track;
          Alcotest.test_case "scene max" `Quick test_scene_max;
          Alcotest.test_case "params validation" `Quick test_scene_params_validation;
        ] );
      ( "backlight_solver",
        [
          Alcotest.test_case "bright scene" `Quick test_solver_bright_scene_no_dimming;
          Alcotest.test_case "dark scene" `Quick test_solver_dark_scene_dims;
          Alcotest.test_case "clipping budget" `Quick test_solver_clipping_budget_used;
          Alcotest.test_case "black scene" `Quick test_solver_black_scene;
          Alcotest.test_case "realised covers desired" `Quick
            test_solver_realised_gain_covers_desired;
          Alcotest.test_case "never overclips" `Quick
            test_solver_compensation_never_overclips;
        ] );
      ( "operator",
        [
          Alcotest.test_case "contrast exact" `Quick test_operator_contrast_exact_when_lossless;
          Alcotest.test_case "brightness residual" `Quick
            test_operator_brightness_has_residual;
          Alcotest.test_case "brightness budget" `Quick
            test_operator_brightness_respects_budget;
          Alcotest.test_case "apply" `Quick test_operator_apply_matches_ops;
        ] );
      ( "track",
        [
          Alcotest.test_case "lookup" `Quick test_track_lookup;
          Alcotest.test_case "register track" `Quick test_track_register_track;
          Alcotest.test_case "switch count" `Quick test_track_switch_count;
          Alcotest.test_case "merge runs" `Quick test_track_merge_runs;
          Alcotest.test_case "validation" `Quick test_track_validation;
          Alcotest.test_case "empty clip" `Quick test_track_empty_clip;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_encoding_roundtrip;
          Alcotest.test_case "compact" `Quick test_encoding_compact;
          Alcotest.test_case "rejects garbage" `Quick test_encoding_rejects_garbage;
          Alcotest.test_case "rejects bad version" `Quick test_encoding_rejects_bad_version;
          Alcotest.test_case "rejects u24 overflow" `Quick
            test_encode_rejects_u24_overflow;
          Alcotest.test_case "rejects gain overflow" `Quick
            test_encode_rejects_gain_overflow;
          Alcotest.test_case "v1 carries long clips" `Quick
            test_encode_v1_handles_long_clips;
          Alcotest.test_case "mutation fuzz" `Quick test_encoding_mutation_fuzz;
        ] );
      ( "annotator",
        [
          Alcotest.test_case "two scenes" `Quick test_annotator_two_scenes;
          Alcotest.test_case "perceived intensity" `Quick
            test_annotator_perceived_intensity_preserved;
          Alcotest.test_case "lossless never clips" `Quick test_annotator_lossless_never_clips;
          Alcotest.test_case "quality budget" `Quick test_annotator_quality_budget_on_scenes;
          Alcotest.test_case "compensated clip" `Quick test_annotator_compensated_clip;
          Alcotest.test_case "profile caching" `Quick
            test_annotator_profile_caching_consistency;
          Alcotest.test_case "device specific" `Quick test_annotator_device_specific_registers;
          Alcotest.test_case "channel-max plane" `Quick
            test_annotator_channel_max_plane_conservative;
        ] );
      ( "neutral",
        [
          Alcotest.test_case "generic track" `Quick test_neutral_track_is_generic;
          Alcotest.test_case "mapping matches server-side" `Quick
            test_neutral_mapping_matches_server_side;
          Alcotest.test_case "wire roundtrip" `Quick test_neutral_roundtrips_the_wire;
        ] );
      ( "live",
        [
          Alcotest.test_case "full window = offline" `Quick
            test_live_full_window_equals_offline;
          Alcotest.test_case "windows never span" `Quick test_live_windows_never_span;
          Alcotest.test_case "savings close to offline" `Quick
            test_live_savings_close_to_offline;
          Alcotest.test_case "latency" `Quick test_live_latency;
        ] );
      ( "protected",
        [
          Alcotest.test_case "solve respects ROI" `Quick
            test_protected_solve_scene_respects_roi;
          Alcotest.test_case "zero ROI clipping" `Quick
            test_protected_annotate_zero_roi_clipping;
          Alcotest.test_case "trade-off vs unprotected" `Quick
            test_protected_vs_unprotected_tradeoff;
          Alcotest.test_case "empty ROI equivalence" `Quick
            test_protected_empty_roi_matches_unprotected;
        ] );
      ("properties", qtests);
    ]
