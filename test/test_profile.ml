(* Energy-attribution profiler and the time-series store beneath it:
   the bucket-merge algebra (QCheck properties: associativity, sum
   preservation, order/chunking independence), the cardinality guard
   and its registry surfacing, profiler totals against the meter's own
   integral, session attribution against the session report, the
   behaviour-neutrality guarantee (reports byte-identical with the
   profiler on and off), and the OpenMetrics / Chrome-trace
   conformance fixes that ride along. *)

module Ts = Obs.Timeseries

let check = Alcotest.check
let flt = Alcotest.float 1e-9

(* Run [f] with observability on and a fresh profiler installed;
   always uninstalls, so test order cannot leak an instance. *)
let with_profiler ?interval_s ?max_series f =
  Obs.with_enabled @@ fun () ->
  let p = Obs.Profile.create ?interval_s ?max_series () in
  Obs.Profile.install p;
  Fun.protect ~finally:Obs.Profile.uninstall (fun () -> f p)

(* --- Timeseries: unit behaviour ---------------------------------------- *)

let test_bucketing () =
  let t = Ts.create ~interval_s:1. ~capacity:8 () in
  let se = Option.get (Ts.series t "energy_mj" [ ("component", "lcd") ]) in
  Ts.observe se ~t_s:0.2 1.;
  Ts.observe se ~t_s:0.7 2.;
  Ts.observe se ~t_s:3.1 5.;
  match Ts.snapshot t with
  | [ sn ] ->
    check (Alcotest.list (Alcotest.pair flt flt)) "buckets"
      [ (0., 3.); (3., 5.) ]
      (List.map (fun p -> (p.Ts.t_s, p.Ts.sum)) sn.Ts.sn_points);
    check flt "total" 8. (Ts.total sn)
  | sns -> Alcotest.failf "expected one series, got %d" (List.length sns)

let test_compaction_doubles_interval () =
  let t = Ts.create ~interval_s:1. ~capacity:4 () in
  let se = Option.get (Ts.series t "s" []) in
  List.iter (fun t_s -> Ts.observe se ~t_s 1.) [ 0.5; 1.5; 2.5; 3.5 ];
  check flt "initial interval" 1. (Ts.interval_s se);
  (* t = 9.0 lands past a 4-bucket window at 1 s and also past 2 s;
     the series must double twice to cover it. *)
  Ts.observe se ~t_s:9.0 1.;
  check flt "interval doubled to 4 s" 4. (Ts.interval_s se);
  check Alcotest.int "two compactions" 2 (Ts.downsamples se);
  match Ts.snapshot t with
  | [ sn ] ->
    check flt "mass preserved" 5. (Ts.total sn);
    check (Alcotest.list (Alcotest.pair flt flt)) "recoarsened buckets"
      [ (0., 4.); (8., 1.) ]
      (List.map (fun p -> (p.Ts.t_s, p.Ts.sum)) sn.Ts.sn_points)
  | _ -> Alcotest.fail "expected one series"

let test_hostile_samples () =
  let t = Ts.create ~interval_s:1. ~capacity:4 () in
  let se = Option.get (Ts.series t "s" []) in
  Ts.observe se ~t_s:0. Float.nan;
  Ts.observe se ~t_s:0. Float.infinity;
  (match Ts.snapshot t with
  | [ sn ] ->
    check Alcotest.int "non-finite samples dropped" 0
      (List.length sn.Ts.sn_points)
  | _ -> Alcotest.fail "expected the one (empty) series");
  Ts.observe se ~t_s:(-5.) 1.;
  Ts.observe se ~t_s:Float.nan 2.;
  match Ts.snapshot t with
  | [ sn ] ->
    check (Alcotest.list (Alcotest.pair flt flt)) "hostile times clamp to t=0"
      [ (0., 3.) ]
      (List.map (fun p -> (p.Ts.t_s, p.Ts.sum)) sn.Ts.sn_points)
  | _ -> Alcotest.fail "expected one series"

let test_merge_modes () =
  let t = Ts.create ~interval_s:10. ~capacity:4 () in
  let avg = Option.get (Ts.series t ~merge:Ts.Avg "a" []) in
  let max_se = Option.get (Ts.series t ~merge:Ts.Max "m" []) in
  List.iter
    (fun v ->
      Ts.observe avg ~t_s:1. v;
      Ts.observe max_se ~t_s:1. v)
    [ 2.; 4.; 9. ];
  (match Ts.snapshot t with
  | [ a; m ] ->
    check flt "avg bucket" 5. (Ts.total a);
    check flt "max bucket" 9. (Ts.total m)
  | _ -> Alcotest.fail "expected two series");
  Alcotest.check_raises "merge-mode conflict"
    (Invalid_argument "Timeseries: a is a avg series, requested as max")
    (fun () -> ignore (Ts.series t ~merge:Ts.Max "a" []))

let test_labels_canonical () =
  let t = Ts.create () in
  let a = Option.get (Ts.series t "s" [ ("b", "2"); ("a", "1") ]) in
  let b = Option.get (Ts.series t "s" [ ("a", "1"); ("b", "2") ]) in
  check Alcotest.bool "label order does not split the series" true (a == b);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "labels key-sorted"
    [ ("a", "1"); ("b", "2") ]
    (Ts.series_labels a)

let test_cardinality_guard () =
  let before_global = Ts.dropped_total () in
  let t = Ts.create ~max_series:2 () in
  ignore (Option.get (Ts.series t "a" []));
  ignore (Option.get (Ts.series t "b" []));
  check Alcotest.bool "third series refused" true (Ts.series t "c" [] = None);
  (* Re-opening an existing key is not a creation and must still work
     at capacity. *)
  check Alcotest.bool "existing key still served" true
    (Ts.series t "a" [] <> None);
  check Alcotest.int "local refusal counted" 1 (Ts.dropped t);
  check Alcotest.int "global refusal counted" (before_global + 1)
    (Ts.dropped_total ());
  (* The default registry surfaces the process-wide count as a
     synthetic counter family. *)
  let snap = Obs.Registry.snapshot () in
  let fam =
    List.find
      (fun f -> f.Obs.Registry.family = "obs_series_dropped_total")
      snap
  in
  match fam.Obs.Registry.series with
  | [ { Obs.Registry.value = Obs.Registry.Counter_v n; _ } ] ->
    check Alcotest.bool "registry exposes the refusals" true
      (n >= before_global + 1)
  | _ -> Alcotest.fail "obs_series_dropped_total has unexpected shape"

let test_diff () =
  let t = Ts.create ~interval_s:1. ~capacity:8 () in
  let a = Option.get (Ts.series t "e" [ ("c", "lcd") ]) in
  Ts.observe a ~t_s:0. 2.;
  let before = Ts.snapshot t in
  Ts.observe a ~t_s:1. 3.;
  let b = Option.get (Ts.series t "e" [ ("c", "cpu") ]) in
  Ts.observe b ~t_s:1. 7.;
  let after = Ts.snapshot t in
  let changes = Ts.diff ~before ~after in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string flt))
    "per-series deltas, label-sorted"
    [ ("cpu", 7.); ("lcd", 3.) ]
    (List.map
       (fun c -> (List.assoc "c" c.Ts.c_labels, Ts.delta c))
       changes)

(* --- Timeseries: QCheck properties ------------------------------------- *)

(* Integer-valued samples keep float addition exact, so the algebraic
   properties hold with equality instead of a tolerance. *)
let sample_gen = QCheck2.Gen.(map float_of_int (0 -- 1000))
let time_gen = QCheck2.Gen.(map (fun t -> float_of_int t /. 4.) (0 -- 4000))
let feed_gen = QCheck2.Gen.(list_size (1 -- 80) (pair time_gen sample_gen))

let point_gen =
  QCheck2.Gen.(
    map
      (fun (c, (s, m)) ->
        { Ts.p_count = c; p_sum = float_of_int s; p_max = float_of_int m })
      (pair (1 -- 5) (pair (0 -- 100) (0 -- 100))))

let total_sum t =
  List.fold_left (fun acc sn -> acc +. Ts.total sn) 0. (Ts.snapshot t)

let feed t feed_list =
  let se = Option.get (Ts.series t "s" []) in
  List.iter (fun (t_s, v) -> Ts.observe se ~t_s v) feed_list

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"merge_points is associative"
        QCheck2.Gen.(triple point_gen point_gen point_gen)
        (fun (a, b, c) ->
          Ts.merge_points (Ts.merge_points a b) c
          = Ts.merge_points a (Ts.merge_points b c));
      QCheck2.Test.make ~name:"merge_points is commutative with identity"
        QCheck2.Gen.(pair point_gen point_gen)
        (fun (a, b) ->
          Ts.merge_points a b = Ts.merge_points b a
          && Ts.merge_points a Ts.empty_point = a
          && Ts.merge_points Ts.empty_point a = a);
      QCheck2.Test.make ~name:"downsampling preserves the sum" feed_gen
        (fun samples ->
          (* Tiny capacity forces many compactions; the grand total
             must still equal the plain sum of the feed. *)
          let t = Ts.create ~interval_s:0.5 ~capacity:4 () in
          feed t samples;
          total_sum t
          = List.fold_left (fun acc (_, v) -> acc +. v) 0. samples);
      QCheck2.Test.make ~name:"snapshot independent of arrival order"
        feed_gen
        (fun samples ->
          let run order =
            let t = Ts.create ~interval_s:0.5 ~capacity:4 () in
            feed t order;
            Ts.snapshot t
          in
          run samples
          = run
              (List.sort
                 (fun (t1, v1) (t2, v2) -> compare (t2, v2) (t1, v1))
                 samples));
      QCheck2.Test.make ~name:"snapshot independent of flush boundaries"
        QCheck2.Gen.(pair feed_gen (1 -- 10))
        (fun (samples, k) ->
          (* Feeding through two stores and through one store must
             agree bucket-for-bucket once the same multiset went in;
             splitting at an arbitrary index stands in for arbitrary
             flush boundaries in the profiler. *)
          let one = Ts.create ~interval_s:0.5 ~capacity:4 () in
          feed one samples;
          let cut = k mod (List.length samples + 1) in
          let head = List.filteri (fun i _ -> i < cut) samples in
          let tail = List.filteri (fun i _ -> i >= cut) samples in
          let two = Ts.create ~interval_s:0.5 ~capacity:4 () in
          feed two head;
          feed two tail;
          Ts.snapshot one = Ts.snapshot two);
    ]

(* --- Profiler ----------------------------------------------------------- *)

let test_attribution_paths () =
  with_profiler @@ fun p ->
  Obs.Trace.with_span "session.playback" (fun () ->
      Obs.Profile.record ~t_s:0. ~scene:3 ~component:"backlight" 10.;
      Obs.Profile.record ~t_s:1. ~scene:3 ~component:"backlight" 5.;
      Obs.Profile.record ~t_s:1. ~component:"decode" 2.);
  Obs.Profile.record ~component:"radio" 1.;
  check
    (Alcotest.list (Alcotest.pair (Alcotest.list Alcotest.string) flt))
    "stacks sorted by path"
    [
      ([ "radio" ], 1.);
      ([ "session.playback"; "decode" ], 2.);
      ([ "session.playback"; "scene.3"; "backlight" ], 15.);
    ]
    (Obs.Profile.stacks p);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string flt))
    "per-component totals"
    [ ("backlight", 15.); ("decode", 2.); ("radio", 1.) ]
    (Obs.Profile.by_component p);
  check flt "grand total" 18. (Obs.Profile.total_mj p);
  check Alcotest.int "every sample kept" 4 (Obs.Profile.samples p)

let test_record_requires_install () =
  Obs.with_enabled @@ fun () ->
  let p = Obs.Profile.create () in
  Obs.Profile.record ~component:"lcd" 5.;
  check flt "uninstalled profiler sees nothing" 0. (Obs.Profile.total_mj p);
  Obs.Profile.install p;
  Fun.protect ~finally:Obs.Profile.uninstall (fun () ->
      Obs.Profile.record ~component:"lcd" Float.nan;
      Obs.Profile.record ~component:"lcd" 5.);
  check flt "finite sample attributed, NaN dropped" 5.
    (Obs.Profile.total_mj p)

let test_flamegraph_format () =
  with_profiler @@ fun p ->
  Obs.Trace.with_span "session.playback" (fun () ->
      Obs.Profile.record ~scene:0 ~component:"backlight" 1.5;
      (* Hostile component names must not corrupt the collapsed-stack
         separators. *)
      Obs.Profile.record ~component:"weird name;here" 2.);
  check Alcotest.string "collapsed stacks in integer microjoules"
    "session.playback;scene.0;backlight 1500\n\
     session.playback;weird_name_here 2000\n"
    (Obs.Profile.flamegraph p)

let test_profiler_matches_meter () =
  (* The tentpole invariant: total attributed energy equals the
     meter's own integral to 1e-9 J (= 1e-6 mJ). *)
  with_profiler @@ fun p ->
  let meter = Power.Meter.create ~sample_rate_hz:500. () in
  let r1 =
    Power.Meter.measure ~component:"lcd" meter ~duration_s:2. (fun t ->
        100. +. (25. *. t))
  in
  let r2 =
    Power.Meter.measure_trace ~component:"cpu" meter ~dt_s:0.01
      (Array.init 100 (fun i -> 50. +. float_of_int (i mod 7)))
  in
  check Alcotest.bool "meter totals reproduced within 1e-9 J" true
    (Float.abs
       (Obs.Profile.total_mj p
       -. (r1.Power.Meter.energy_mj +. r2.Power.Meter.energy_mj))
    < 1e-6)

let test_counter_track () =
  with_profiler @@ fun p ->
  Obs.Profile.record ~component:"backlight" 10.;
  Obs.Profile.record ~component:"decode" 4.;
  Obs.Profile.record ~component:"backlight" 1.;
  let events = Obs.Profile.counter_events p in
  check Alcotest.int "one counter sample per recording" 3
    (List.length events);
  let last = List.nth events 2 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string flt))
    "cumulative per-component values, name-sorted"
    [ ("backlight", 11.); ("decode", 4.) ]
    last.Obs.Trace.c_values;
  check Alcotest.bool "timestamps monotone" true
    (List.for_all2
       (fun a b -> Int64.compare a.Obs.Trace.c_ts_ns b.Obs.Trace.c_ts_ns <= 0)
       [ List.nth events 0; List.nth events 1 ]
       [ List.nth events 1; List.nth events 2 ])

let test_chrome_interleave () =
  (* Counter events must interleave with span events in timestamp
     order in the combined Chrome stream. *)
  Obs.with_enabled @@ fun () ->
  Obs.Trace.reset ();
  let p = Obs.Profile.create () in
  Obs.Profile.install p;
  Fun.protect ~finally:Obs.Profile.uninstall (fun () ->
      Obs.Trace.with_span "stage.a" (fun () ->
          Obs.Profile.record ~component:"lcd" 1.);
      Obs.Trace.with_span "stage.b" (fun () ->
          Obs.Profile.record ~component:"lcd" 2.);
      let json =
        Obs.Trace.to_chrome_json ~counters:(Obs.Profile.counter_events p) ()
      in
      match json with
      | Obs.Json.List events ->
        let str j = match j with Obs.Json.String s -> s | _ -> "?" in
        let num j =
          match j with
          | Obs.Json.Float f -> f
          | Obs.Json.Int i -> float_of_int i
          | _ -> Float.nan
        in
        let phases =
          List.map
            (fun e ->
              match e with
              | Obs.Json.Obj f ->
                (str (List.assoc "ph" f), num (List.assoc "ts" f))
              | _ -> Alcotest.fail "event is not an object")
            events
        in
        check Alcotest.int "two spans and two counter samples" 4
          (List.length phases);
        check (Alcotest.list Alcotest.string) "phases interleaved"
          [ "X"; "C"; "X"; "C" ]
          (List.map fst phases);
        check Alcotest.bool "stream sorted by timestamp" true
          (let ts = List.map snd phases in
           List.for_all2 (fun a b -> a <= b) ts (List.tl ts @ [ Float.max_float ]))
      | _ -> Alcotest.fail "chrome json is not an event list")

(* --- Session attribution ------------------------------------------------ *)

let device = Display.Device.ipaq_h5555

let clip =
  Video.Clip_gen.render ~width:48 ~height:36 ~fps:12. Video.Workloads.themovie

let run_session () =
  match Streaming.Session.run (Streaming.Session.default_config ~device) clip with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_session_attribution_total () =
  (* Attributed joules must reproduce the session report's
     device_energy_mj: backlight + display + decode + radio is the
     whole device. *)
  with_profiler @@ fun p ->
  let report = run_session () in
  check Alcotest.bool "components cover the device total" true
    (Float.abs (Obs.Profile.total_mj p -. report.Streaming.Session.device_energy_mj)
    < 1e-6);
  let components = List.map fst (Obs.Profile.by_component p) in
  check (Alcotest.list Alcotest.string) "all four components present"
    [ "backlight"; "decode"; "display"; "radio" ]
    components;
  (* Scene segments appear in the stacks. *)
  check Alcotest.bool "scene-level attribution present" true
    (List.exists
       (fun (path, _) ->
         List.exists
           (fun seg -> String.length seg > 6 && String.sub seg 0 6 = "scene.")
           path)
       (Obs.Profile.stacks p))

let test_profiling_is_behaviour_neutral () =
  (* The acceptance bar: with the profiler installed and without,
     session reports are byte-identical — attribution is read-only.
     Compare rendered reports; the config inside the record holds a
     link simulator that structural equality cannot traverse. *)
  let render r = Format.asprintf "%a" Streaming.Session.pp_report r in
  let plain = render (run_session ()) in
  let profiled = with_profiler (fun _ -> render (run_session ())) in
  check Alcotest.string "reports byte-identical with profiler on" plain
    profiled

(* --- OpenMetrics conformance (satellite regressions) -------------------- *)

let render_families families = Obs.Openmetrics.render families

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  n = 0 || go 0

let gauge_family name v =
  {
    Obs.Registry.family = name;
    help = "h";
    kind = Obs.Registry.Gauge;
    series = [ { Obs.Registry.labels = []; value = Obs.Registry.Gauge_v v } ];
  }

let test_openmetrics_nonfinite () =
  let text =
    render_families
      [
        gauge_family "a" Float.infinity;
        gauge_family "b" Float.neg_infinity;
        gauge_family "c" Float.nan;
      ]
  in
  let has = contains text in
  check Alcotest.bool "+Inf spelled per spec" true (has "a +Inf");
  check Alcotest.bool "-Inf spelled per spec" true (has "b -Inf");
  check Alcotest.bool "NaN spelled per spec" true (has "c NaN");
  check Alcotest.bool "no bare printf inf leaks" false (has " inf")

let test_openmetrics_unit_line () =
  let text =
    render_families
      [ gauge_family "profile_energy_mj" 1.; gauge_family "plain" 2. ]
  in
  let has = contains text in
  check Alcotest.bool "# UNIT emitted for suffixed family" true
    (has "# UNIT profile_energy_mj mj");
  check Alcotest.bool "no unit line without a suffix" false (has "# UNIT plain")

let test_openmetrics_escaping () =
  let fam =
    {
      Obs.Registry.family = "esc";
      help = "line\nbreak and \\slash";
      kind = Obs.Registry.Gauge;
      series =
        [
          {
            Obs.Registry.labels = [ ("k", "quote\" back\\ nl\n") ];
            value = Obs.Registry.Gauge_v 1.;
          };
        ];
    }
  in
  let text = render_families [ fam ] in
  let has = contains text in
  check Alcotest.bool "help newline escaped" true (has "line\\nbreak");
  check Alcotest.bool "help backslash escaped" true (has "and \\\\slash");
  check Alcotest.bool "label value escaped" true
    (has "{k=\"quote\\\" back\\\\ nl\\n\"}")

let () =
  Alcotest.run "profile"
    [
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_bucketing;
          Alcotest.test_case "compaction doubles interval" `Quick
            test_compaction_doubles_interval;
          Alcotest.test_case "hostile samples" `Quick test_hostile_samples;
          Alcotest.test_case "merge modes" `Quick test_merge_modes;
          Alcotest.test_case "labels canonical" `Quick test_labels_canonical;
          Alcotest.test_case "cardinality guard" `Quick test_cardinality_guard;
          Alcotest.test_case "diff" `Quick test_diff;
        ] );
      ("timeseries properties", qtests);
      ( "profiler",
        [
          Alcotest.test_case "attribution paths" `Quick test_attribution_paths;
          Alcotest.test_case "record requires install" `Quick
            test_record_requires_install;
          Alcotest.test_case "flamegraph format" `Quick test_flamegraph_format;
          Alcotest.test_case "matches the meter" `Quick
            test_profiler_matches_meter;
          Alcotest.test_case "counter track" `Quick test_counter_track;
          Alcotest.test_case "chrome interleave" `Quick test_chrome_interleave;
        ] );
      ( "session attribution",
        [
          Alcotest.test_case "covers device total" `Quick
            test_session_attribution_total;
          Alcotest.test_case "behaviour neutral" `Quick
            test_profiling_is_behaviour_neutral;
        ] );
      ( "openmetrics conformance",
        [
          Alcotest.test_case "non-finite spellings" `Quick
            test_openmetrics_nonfinite;
          Alcotest.test_case "unit line" `Quick test_openmetrics_unit_line;
          Alcotest.test_case "escaping" `Quick test_openmetrics_escaping;
        ] );
    ]
