(* Tests for the online health-monitoring layer: quantile sketches,
   sliding windows, the SLO engine and the OpenMetrics exposition. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let flt = Alcotest.float 1e-9

let with_monitoring f =
  Obs.with_enabled @@ fun () ->
  Obs.enable_monitoring ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable_monitoring ();
      Obs.Monitor.uninstall ())

(* --- quantile sketch ----------------------------------------------------- *)

(* Deterministic pseudo-random stream (LCG) so the "shuffled" data set
   is identical on every run. *)
let lcg_stream n =
  let state = ref 123456789 in
  Array.init n (fun _ ->
      state := (1103515245 * !state) + 12345;
      float_of_int (abs !state mod 1_000_000) /. 1000.)

(* The GK guarantee: the returned value's rank is within eps*n of the
   requested rank. The value is always an observed sample, so its true
   rank range is [#(< v), #(<= v)]. *)
let assert_rank_error ~eps ~label data =
  let n = Array.length data in
  let sketch = Obs.Sketch.create ~epsilon:eps () in
  Array.iter (Obs.Sketch.observe sketch) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      match Obs.Sketch.quantile sketch q with
      | None -> Alcotest.failf "%s: no quantile for q=%g" label q
      | Some v ->
        let below = ref 0 and at_or_below = ref 0 in
        Array.iter
          (fun x ->
            if x < v then incr below;
            if x <= v then incr at_or_below)
          sorted;
        let target = q *. float_of_int n in
        let slack = (eps *. float_of_int n) +. 1. in
        let lo = float_of_int !below -. slack
        and hi = float_of_int !at_or_below +. slack in
        if not (target >= lo && target <= hi) then
          Alcotest.failf
            "%s: q=%g returned %g with rank range [%d,%d], target %.1f \
             outside +/- %.1f"
            label q v !below !at_or_below target slack)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99 ]

let test_sketch_accuracy () =
  List.iter
    (fun n ->
      assert_rank_error ~eps:0.01 ~label:(Printf.sprintf "ascending n=%d" n)
        (Array.init n float_of_int);
      assert_rank_error ~eps:0.01 ~label:(Printf.sprintf "descending n=%d" n)
        (Array.init n (fun i -> float_of_int (n - i)));
      assert_rank_error ~eps:0.01 ~label:(Printf.sprintf "shuffled n=%d" n)
        (lcg_stream n);
      assert_rank_error ~eps:0.05 ~label:(Printf.sprintf "eps=.05 n=%d" n)
        (lcg_stream n);
      (* Heavy duplication: a clip whose metric pins to few values. *)
      assert_rank_error ~eps:0.01 ~label:(Printf.sprintf "clustered n=%d" n)
        (Array.init n (fun i -> float_of_int (i mod 7))))
    [ 10; 100; 1_000; 20_000 ]

let test_sketch_min_max_exact () =
  let sketch = Obs.Sketch.create () in
  Array.iter (Obs.Sketch.observe sketch) (lcg_stream 5_000);
  let sorted = lcg_stream 5_000 in
  Array.sort compare sorted;
  check (Alcotest.option flt) "q=0 is the exact minimum" (Some sorted.(0))
    (Obs.Sketch.quantile sketch 0.);
  check (Alcotest.option flt) "q=1 is the exact maximum" (Some sorted.(4999))
    (Obs.Sketch.quantile sketch 1.);
  (* Out-of-range q clamps rather than raising. *)
  check (Alcotest.option flt) "q<0 clamps to min" (Some sorted.(0))
    (Obs.Sketch.quantile sketch (-3.));
  check (Alcotest.option flt) "q>1 clamps to max" (Some sorted.(4999))
    (Obs.Sketch.quantile sketch 7.)

let test_sketch_empty_and_nan () =
  let sketch = Obs.Sketch.create () in
  check (Alcotest.option flt) "empty sketch has no quantiles" None
    (Obs.Sketch.quantile sketch 0.5);
  Obs.Sketch.observe sketch Float.nan;
  check int "NaN is dropped" 0 (Obs.Sketch.count sketch);
  Obs.Sketch.observe sketch 1.5;
  Obs.Sketch.observe sketch (-2.5);
  check int "negatives are legal at sketch level" 2 (Obs.Sketch.count sketch);
  check (Alcotest.option flt) "min is the negative" (Some (-2.5))
    (Obs.Sketch.quantile sketch 0.);
  Obs.Sketch.reset sketch;
  check int "reset empties" 0 (Obs.Sketch.count sketch);
  check (Alcotest.option flt) "reset drops quantiles" None
    (Obs.Sketch.quantile sketch 0.5)

let test_sketch_epsilon_validation () =
  Alcotest.check_raises "zero epsilon"
    (Invalid_argument "Obs.Sketch.create: epsilon must be in (0, 0.5)")
    (fun () -> ignore (Obs.Sketch.create ~epsilon:0. ()));
  Alcotest.check_raises "huge epsilon"
    (Invalid_argument "Obs.Sketch.create: epsilon must be in (0, 0.5)")
    (fun () -> ignore (Obs.Sketch.create ~epsilon:0.6 ()))

let test_sketch_sublinear_space () =
  let n = 50_000 in
  let sketch = Obs.Sketch.create ~epsilon:0.01 () in
  Array.iter (Obs.Sketch.observe sketch) (lcg_stream n);
  ignore (Obs.Sketch.quantile sketch 0.5);
  check int "sees every sample" n (Obs.Sketch.count sketch);
  let tuples = Obs.Sketch.tuple_count sketch in
  if tuples > n / 10 then
    Alcotest.failf "sketch kept %d tuples for %d samples - not compressing"
      tuples n

(* --- sliding windows ----------------------------------------------------- *)

let test_window_ring_eviction () =
  let w = Obs.Window.create ~history:4 () in
  for i = 0 to 5 do
    Obs.Window.add w (float_of_int (i + 1));
    ignore
      (Obs.Window.close w ~index:i ~start_s:(float_of_int i) ~duration_s:1.)
  done;
  check int "six windows closed" 6 (Obs.Window.closed_count w);
  let slots = Obs.Window.recent w in
  check int "ring keeps only the last four" 4 (List.length slots);
  check (Alcotest.list int) "oldest first, earliest evicted" [ 2; 3; 4; 5 ]
    (List.map (fun (s : Obs.Window.slot) -> s.Obs.Window.index) slots);
  check flt "totals travel with their slot" 3.
    (List.hd slots).Obs.Window.total;
  check flt "lifetime total spans evictions" 21. (Obs.Window.lifetime_total w)

let test_window_gauge_carries_over () =
  let w = Obs.Window.create () in
  Obs.Window.set w 42.;
  let s1 = Obs.Window.close w ~index:0 ~start_s:0. ~duration_s:1. in
  let s2 = Obs.Window.close w ~index:1 ~start_s:1. ~duration_s:1. in
  check (Alcotest.option flt) "gauge visible in its window" (Some 42.)
    s1.Obs.Window.last;
  check (Alcotest.option flt) "gauge carries into the next" (Some 42.)
    s2.Obs.Window.last;
  check flt "counter does not carry" 0. s2.Obs.Window.total;
  Alcotest.check_raises "zero duration rejected"
    (Invalid_argument "Obs.Window.close: duration must be positive")
    (fun () -> ignore (Obs.Window.close w ~index:2 ~start_s:2. ~duration_s:0.))

(* --- SLO parsing --------------------------------------------------------- *)

let rule_of s =
  match Obs.Slo.parse_line s with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "rule %S parsed to nothing" s
  | Error e -> Alcotest.failf "rule %S rejected: %s" s e

let test_slo_selectors () =
  let r = rule_of "streaming_frame_latency_seconds_p99 < 0.25" in
  check string "quantile metric" "streaming_frame_latency_seconds" r.Obs.Slo.metric;
  (match r.Obs.Slo.stat with
  | Obs.Slo.Quantile q -> check flt "p99" 0.99 q
  | _ -> Alcotest.fail "expected quantile stat");
  (match (rule_of "x_p999 <= 1").Obs.Slo.stat with
  | Obs.Slo.Quantile q -> check flt "p999" 0.999 q
  | _ -> Alcotest.fail "expected quantile stat");
  (match (rule_of "x_p5 <= 1").Obs.Slo.stat with
  | Obs.Slo.Quantile q -> check flt "p5 means 0.5" 0.5 q
  | _ -> Alcotest.fail "expected quantile stat");
  let r = rule_of "backlight_switches_per_s < 6" in
  check string "rate metric strips suffix" "backlight_switches" r.Obs.Slo.metric;
  check bool "rate stat" true (r.Obs.Slo.stat = Obs.Slo.Rate_per_s);
  let r = rule_of "deadline_miss_rate >= 0" in
  check string "ratio metric strips suffix" "deadline_miss" r.Obs.Slo.metric;
  check bool "ratio stat" true (r.Obs.Slo.stat = Obs.Slo.Ratio_per_frame);
  let r = rule_of "power_cpu_mj < 2000" in
  check string "gauge keeps full name" "power_cpu_mj" r.Obs.Slo.metric;
  check bool "gauge stat" true (r.Obs.Slo.stat = Obs.Slo.Last);
  check flt "threshold parsed" 2000. r.Obs.Slo.threshold

let test_slo_document_parse () =
  let doc =
    "# a comment\n\n  deadline_miss_rate < 0.05  # trailing comment\n\
     backlight_switches_per_s < 6\n"
  in
  (match Obs.Slo.parse doc with
  | Ok rules -> check int "two rules survive comments/blanks" 2 (List.length rules)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Obs.Slo.parse "x < 1\ny !! 2\n" with
  | Error e ->
    check bool "error carries 1-based line number" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "bad operator accepted");
  (match Obs.Slo.parse_line "x < pony" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad threshold accepted");
  (match Obs.Slo.parse_line "x < 1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extra tokens accepted");
  check int "defaults cover the paper gates" 4
    (List.length (Obs.Slo.defaults ~quality:0.1))

(* --- monitor windows and verdicts ---------------------------------------- *)

(* Drive a synthetic 3-second feed at 10 frames/s: a clean second, a
   second with 4 deadline misses, a clean second with 3 switches. *)
let feed_synthetic m =
  for i = 0 to 29 do
    let second = i / 10 in
    Obs.Monitor.incr m Obs.Monitor.frames_series;
    if second = 1 && i mod 10 < 4 then Obs.Monitor.incr m "deadline_miss";
    if second = 2 && i mod 10 < 3 then Obs.Monitor.incr m "backlight_switches";
    Obs.Monitor.tick m ~now_s:(float_of_int (i + 1) /. 10.)
  done

let test_monitor_burn_rate () =
  let rules =
    [
      Obs.Slo.of_string_exn "deadline_miss_rate < 0.2";
      Obs.Slo.of_string_exn "backlight_switches_per_s < 10";
    ]
  in
  let m = Obs.Monitor.create ~registry:(Obs.Registry.create ()) ~rules () in
  feed_synthetic m;
  let report = Obs.Monitor.report m in
  check int "three windows closed" 3 report.Obs.Monitor.windows;
  check flt "duration covered" 3. report.Obs.Monitor.duration_s;
  (match report.Obs.Monitor.verdicts with
  | [ miss; switch ] ->
    check int "miss rule evaluated every window" 3 miss.Obs.Monitor.evaluated;
    check int "exactly the bad window breached" 1 miss.Obs.Monitor.breached;
    check (Alcotest.option flt) "worst window is the 40% one" (Some 0.4)
      miss.Obs.Monitor.worst;
    (* Lifetime: 4 misses over 30 frames. *)
    check (Alcotest.option flt) "final is the lifetime ratio"
      (Some (4. /. 30.))
      miss.Obs.Monitor.final;
    check bool "final within budget" false miss.Obs.Monitor.final_breach;
    check bool "windowed breach still fails the rule" false
      (Obs.Monitor.verdict_ok miss);
    (match miss.Obs.Monitor.breaches with
    | [ b ] ->
      check int "breach annotated with its window" 1 b.Obs.Monitor.window;
      check flt "breach annotated with its close time" 2. b.Obs.Monitor.at_s;
      check flt "breach carries the reading" 0.4 b.Obs.Monitor.value
    | l -> Alcotest.failf "expected 1 breach annotation, got %d" (List.length l));
    check int "switch rule clean" 0 switch.Obs.Monitor.breached;
    check (Alcotest.option flt) "switch worst window" (Some 3.)
      switch.Obs.Monitor.worst;
    check bool "switch rule ok" true (Obs.Monitor.verdict_ok switch)
  | l -> Alcotest.failf "expected 2 verdicts, got %d" (List.length l));
  check bool "report unhealthy on any breach" false (Obs.Monitor.healthy report)

let test_monitor_scene_cut_short_window () =
  let rules = [ Obs.Slo.of_string_exn "backlight_switches_per_s < 3" ] in
  let m = Obs.Monitor.create ~registry:(Obs.Registry.create ()) ~rules () in
  (* Two switches in the first half-second, then a scene cut: the
     0.5 s window must divide by its own duration (4/s, breach), not
     the nominal second. *)
  Obs.Monitor.incr m "backlight_switches";
  Obs.Monitor.incr m "backlight_switches";
  Obs.Monitor.cut m ~now_s:0.5;
  Obs.Monitor.tick m ~now_s:1.5;
  let report = Obs.Monitor.report m in
  match report.Obs.Monitor.verdicts with
  | [ v ] ->
    check int "short window plus the rest" 2 v.Obs.Monitor.evaluated;
    check int "short window breached" 1 v.Obs.Monitor.breached;
    check (Alcotest.option flt) "rate uses the real 0.5s duration" (Some 4.)
      v.Obs.Monitor.worst
  | l -> Alcotest.failf "expected 1 verdict, got %d" (List.length l)

let test_monitor_final_only_evaluation () =
  (* Gauge and quantile rules still gate a run that never ticks the
     clock (annotate-style runs have no playback loop). *)
  with_monitoring @@ fun () ->
  let registry = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~registry ~buckets:[| 0.1; 1. |] "lat_seconds" [] in
  for i = 1 to 100 do
    Obs.Metrics.Histogram.observe h (float_of_int i /. 100.)
  done;
  let rules =
    [
      Obs.Slo.of_string_exn "power_cpu_mj < 100";
      Obs.Slo.of_string_exn "lat_seconds_p50 < 0.1";
    ]
  in
  let m = Obs.Monitor.create ~registry ~rules () in
  Obs.Monitor.set_gauge m "power_cpu_mj" 150.;
  let report = Obs.Monitor.report m in
  check int "no windows ever closed" 0 report.Obs.Monitor.windows;
  (match report.Obs.Monitor.verdicts with
  | [ gauge_v; q_v ] ->
    check int "no windowed evaluations" 0 gauge_v.Obs.Monitor.evaluated;
    check bool "gauge breaches on the final pass" true
      gauge_v.Obs.Monitor.final_breach;
    check (Alcotest.option flt) "final carries the gauge reading" (Some 150.)
      gauge_v.Obs.Monitor.final;
    check bool "median of 0.01..1.0 breaches < 0.1" true
      q_v.Obs.Monitor.final_breach
  | l -> Alcotest.failf "expected 2 verdicts, got %d" (List.length l));
  check bool "unhealthy" false (Obs.Monitor.healthy report)

let test_monitor_determinism_and_json () =
  let run () =
    let rules = Obs.Slo.defaults ~quality:0.1 in
    let m = Obs.Monitor.create ~registry:(Obs.Registry.create ()) ~rules () in
    feed_synthetic m;
    Obs.Json.to_string (Obs.Monitor.report_to_json (Obs.Monitor.report m))
  in
  let a = run () and b = run () in
  check string "identical feeds render identical reports" a b;
  match Obs.Json.of_string a with
  | Error e -> Alcotest.failf "report JSON unparseable: %s" e
  | Ok json ->
    check bool "healthy flag serialised" true
      (Obs.Json.member "healthy" json <> None);
    check bool "rules serialised" true (Obs.Json.member "rules" json <> None)

let test_monitor_install_helpers_noop_when_absent () =
  Obs.with_enabled @@ fun () ->
  Obs.Monitor.uninstall ();
  (* Must be safe to call from instrumented code with no monitor. *)
  Obs.Monitor.count "frames";
  Obs.Monitor.gauge "power_cpu_mj" 1.;
  Obs.Monitor.advance ~now_s:1.;
  Obs.Monitor.scene_cut ~now_s:2.;
  check bool "nothing installed" true (Obs.Monitor.installed () = None);
  let m = Obs.Monitor.create ~registry:(Obs.Registry.create ()) () in
  Obs.Monitor.install m;
  check bool "install flips the monitor switch" true (Obs.monitoring ());
  Obs.Monitor.count "frames";
  Obs.Monitor.advance ~now_s:1.5;
  Obs.Monitor.uninstall ();
  check bool "uninstall flips it back" false (Obs.monitoring ());
  let report = Obs.Monitor.report m in
  check bool "the installed feed landed" true (report.Obs.Monitor.windows >= 1)

(* --- NaN/negative guard (satellite) -------------------------------------- *)

let test_histogram_nan_guard () =
  Obs.with_enabled @@ fun () ->
  Obs.Registry.reset ();
  let before = Obs.Metrics.dropped_samples_total () in
  let h =
    Obs.histogram ~buckets:[| 1.; 2. |] "guard_test_seconds"
      [ ("case", "nan") ]
  in
  Obs.Metrics.Histogram.observe h Float.nan;
  Obs.Metrics.Histogram.observe h (-3.);
  Obs.Metrics.Histogram.observe h 1.5;
  check int "count includes clamped samples" 3 (Obs.Metrics.Histogram.count h);
  check flt "clamped samples add 0 to the sum" 1.5 (Obs.Metrics.Histogram.sum h);
  check int "two drops recorded" (before + 2) (Obs.Metrics.dropped_samples_total ());
  (* The default-registry snapshot surfaces the synthetic family. *)
  let snap = Obs.Registry.snapshot () in
  (match
     List.find_opt
       (fun (f : Obs.Registry.family_snapshot) ->
         f.Obs.Registry.family = "obs_dropped_samples_total")
       snap
   with
  | Some f -> (
    match f.Obs.Registry.series with
    | [ { Obs.Registry.value = Obs.Registry.Counter_v n; _ } ] ->
      check bool "synthetic counter carries the drops" true (n >= 2)
    | _ -> Alcotest.fail "unexpected synthetic family shape")
  | None -> Alcotest.fail "obs_dropped_samples_total missing from snapshot");
  (* Reset clears it so later snapshot tests see a clean registry. *)
  Obs.Registry.reset ();
  check int "reset clears the drop count" 0 (Obs.Metrics.dropped_samples_total ())

(* --- OpenMetrics exposition ---------------------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let assert_contains ~label text needle =
  if not (contains ~needle text) then
    Alcotest.failf "%s: missing %S in:\n%s" label needle text

let test_openmetrics_format () =
  with_monitoring @@ fun () ->
  let registry = Obs.Registry.create () in
  let c =
    Obs.Registry.counter ~registry ~help:"Things done" "things_done_total"
      [ ("kind", "weird \"quoted\"\\slash\nnewline") ]
  in
  Obs.Metrics.Counter.incr c ~by:2;
  let g = Obs.Registry.gauge ~registry ~help:"A level" "level" [] in
  Obs.Metrics.Gauge.set g 1.5;
  let h =
    Obs.Registry.histogram ~registry ~help:"Latency" ~buckets:[| 0.1; 0.5; 1. |]
      "lat_seconds" []
  in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0.05; 0.3; 0.7; 2.0 ];
  let text =
    Obs.Openmetrics.render
      ~quantiles:(Obs.Registry.quantiles ~registry ())
      (Obs.Registry.snapshot ~registry ())
  in
  assert_contains ~label:"counter TYPE drops _total" text
    "# TYPE things_done counter";
  assert_contains ~label:"counter sample keeps _total" text "things_done_total{";
  assert_contains ~label:"label escaping" text
    "kind=\"weird \\\"quoted\\\"\\\\slash\\nnewline\"";
  assert_contains ~label:"counter value" text "} 2\n";
  assert_contains ~label:"gauge" text "# TYPE level gauge";
  assert_contains ~label:"gauge value" text "level 1.5";
  assert_contains ~label:"histogram TYPE" text "# TYPE lat_seconds histogram";
  (* Buckets must be cumulative: 1, 2, 3 then +Inf carrying the count. *)
  assert_contains ~label:"cumulative b1" text "lat_seconds_bucket{le=\"0.1\"} 1";
  assert_contains ~label:"cumulative b2" text "lat_seconds_bucket{le=\"0.5\"} 2";
  assert_contains ~label:"cumulative b3" text "lat_seconds_bucket{le=\"1\"} 3";
  assert_contains ~label:"+Inf is total count" text
    "lat_seconds_bucket{le=\"+Inf\"} 4";
  assert_contains ~label:"sum" text "lat_seconds_sum 3.05";
  assert_contains ~label:"count" text "lat_seconds_count 4";
  assert_contains ~label:"summary section" text
    "# TYPE lat_seconds_quantiles summary";
  assert_contains ~label:"p50 series" text
    "lat_seconds_quantiles{quantile=\"0.5\"}";
  check bool "ends with EOF marker" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n")

let test_openmetrics_deterministic () =
  with_monitoring @@ fun () ->
  let build () =
    let registry = Obs.Registry.create () in
    let c = Obs.Registry.counter ~registry "reqs_total" [ ("op", "r") ] in
    Obs.Metrics.Counter.incr c;
    let h = Obs.Registry.histogram ~registry ~buckets:[| 1. |] "t_seconds" [] in
    List.iter (Obs.Metrics.Histogram.observe h) [ 0.5; 1.5; 0.25 ];
    Obs.Openmetrics.render
      ~quantiles:(Obs.Registry.quantiles ~registry ())
      (Obs.Registry.snapshot ~registry ())
  in
  check string "byte-identical across runs" (build ()) (build ())

(* --- end-to-end through Session.run -------------------------------------- *)

let small_clip () =
  Video.Clip_gen.render ~width:32 ~height:24 ~fps:8. Video.Workloads.officexp

let run_session_with_rules rules =
  with_monitoring @@ fun () ->
  Obs.Registry.reset ();
  Obs.Trace.reset ();
  let m = Obs.Monitor.create ~rules () in
  Obs.Monitor.install m;
  Fun.protect ~finally:(fun () -> Obs.Monitor.uninstall ()) @@ fun () ->
  let config =
    Streaming.Session.default_config ~device:Display.Device.ipaq_h5555
  in
  (match Streaming.Session.run config (small_clip ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "session failed: %s" e);
  Obs.Monitor.report m

let test_session_monitored_healthy () =
  let report = run_session_with_rules (Obs.Slo.defaults ~quality:0.10) in
  check bool "windows were closed" true (report.Obs.Monitor.windows > 0)
  ;
  (match
     List.find_opt
       (fun (v : Obs.Monitor.verdict) ->
         v.Obs.Monitor.rule.Obs.Slo.metric = "streaming_frame_latency_seconds")
       report.Obs.Monitor.verdicts
   with
  | Some v ->
    check bool "latency sketch produced a final p99" true
      (v.Obs.Monitor.final <> None)
  | None -> Alcotest.fail "latency rule missing from report");
  (match
     List.find_opt
       (fun (v : Obs.Monitor.verdict) ->
         v.Obs.Monitor.rule.Obs.Slo.metric = "annot_clip_fraction")
       report.Obs.Monitor.verdicts
   with
  | Some v ->
    (* The solver guarantees clip fraction <= budget, and the sketch
       only returns observed values, so this cannot breach. *)
    check bool "clip-fraction p95 within the quality budget" true
      (Obs.Monitor.verdict_ok v)
  | None -> Alcotest.fail "clip-fraction rule missing from report");
  check bool "default SLOs hold on the seeded session" true
    (Obs.Monitor.healthy report)

let test_session_monitored_breach () =
  (* frames_per_s is ~8 by construction, so this rule must breach in
     every window - the deliberate-breach path of the acceptance
     criteria. *)
  let report =
    run_session_with_rules [ Obs.Slo.of_string_exn "frames_per_s < 1" ]
  in
  (match report.Obs.Monitor.verdicts with
  | [ v ] ->
    check bool "every window breaches" true
      (v.Obs.Monitor.breached = v.Obs.Monitor.evaluated
      && v.Obs.Monitor.evaluated > 0);
    check bool "final rate also breaches" true v.Obs.Monitor.final_breach;
    check bool "annotations capped at 8" true
      (List.length v.Obs.Monitor.breaches <= 8)
  | l -> Alcotest.failf "expected 1 verdict, got %d" (List.length l));
  check bool "unhealthy" false (Obs.Monitor.healthy report)

let test_session_deadline_counter_registered () =
  ignore (run_session_with_rules []);
  (* The deadline-miss counter family exists (possibly at zero). *)
  Obs.with_enabled @@ fun () ->
  let snap = Obs.Registry.snapshot () in
  check bool "streaming_deadline_misses_total family present" true
    (List.exists
       (fun (f : Obs.Registry.family_snapshot) ->
         f.Obs.Registry.family = "streaming_deadline_misses_total")
       snap)

let test_sketches_off_without_monitoring () =
  Obs.with_enabled @@ fun () ->
  Obs.disable_monitoring ();
  let registry = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~registry ~buckets:[| 1. |] "plain_seconds" [] in
  Obs.Metrics.Histogram.observe h 0.5;
  check int "bucket path still counts" 1 (Obs.Metrics.Histogram.count h);
  check int "sketch untouched while monitoring is off" 0
    (Obs.Metrics.Histogram.sketch_count h);
  check (Alcotest.option flt) "no quantiles without monitoring" None
    (Obs.Metrics.Histogram.quantile h 0.5)

let () =
  Alcotest.run "monitor"
    [
      ( "sketch",
        [
          Alcotest.test_case "rank error within epsilon" `Quick
            test_sketch_accuracy;
          Alcotest.test_case "exact min/max, clamped q" `Quick
            test_sketch_min_max_exact;
          Alcotest.test_case "empty, NaN, reset" `Quick test_sketch_empty_and_nan;
          Alcotest.test_case "epsilon validation" `Quick
            test_sketch_epsilon_validation;
          Alcotest.test_case "sublinear space" `Quick test_sketch_sublinear_space;
        ] );
      ( "window",
        [
          Alcotest.test_case "ring eviction and ordering" `Quick
            test_window_ring_eviction;
          Alcotest.test_case "gauge carry-over" `Quick
            test_window_gauge_carries_over;
        ] );
      ( "slo",
        [
          Alcotest.test_case "selector suffixes" `Quick test_slo_selectors;
          Alcotest.test_case "document parse and errors" `Quick
            test_slo_document_parse;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "burn-rate verdicts" `Quick test_monitor_burn_rate;
          Alcotest.test_case "scene cut closes short windows" `Quick
            test_monitor_scene_cut_short_window;
          Alcotest.test_case "final-only evaluation" `Quick
            test_monitor_final_only_evaluation;
          Alcotest.test_case "deterministic report JSON" `Quick
            test_monitor_determinism_and_json;
          Alcotest.test_case "global install helpers" `Quick
            test_monitor_install_helpers_noop_when_absent;
        ] );
      ( "guard",
        [
          Alcotest.test_case "NaN/negative clamp and synthetic family" `Quick
            test_histogram_nan_guard;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "format and escaping" `Quick test_openmetrics_format;
          Alcotest.test_case "deterministic rendering" `Quick
            test_openmetrics_deterministic;
        ] );
      ( "session",
        [
          Alcotest.test_case "default SLOs hold, sketches feed" `Quick
            test_session_monitored_healthy;
          Alcotest.test_case "deliberate breach fails" `Quick
            test_session_monitored_breach;
          Alcotest.test_case "deadline counter registered" `Quick
            test_session_deadline_counter_registered;
          Alcotest.test_case "sketches off without monitoring" `Quick
            test_sketches_off_without_monitoring;
        ] );
    ]
