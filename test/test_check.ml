(* The static-verification layer: linter rules against their negative
   fixtures, the diagnostic JSON schema, and the artifact verifier
   against a corruption corpus built from pristine encodings. *)

module Diagnostic = Check.Diagnostic
module Lint = Check_lint.Lint
module Artifact = Check.Artifact
module Encoding = Annotation.Encoding

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)
let error_codes ds = codes (List.filter Diagnostic.is_error ds)

let check_codes what expected ds =
  Alcotest.(check (list string)) what expected (codes ds)

(* --- linter fixtures --------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let lint_fixture ?in_lib ?has_mli name =
  let path = Filename.concat "fixtures/lint" name in
  Lint.lint_source ?in_lib ?has_mli ~path (read_file path)

let test_fixtures_fire_once () =
  List.iter
    (fun (name, in_lib, has_mli, code) ->
      let ds = lint_fixture ~in_lib ~has_mli name in
      Alcotest.(check int) (name ^ " fires exactly once") 1 (List.length ds);
      check_codes name [ code ] ds)
    [
      ("l001_clock.ml", false, true, "L001");
      ("l002_random.ml", false, true, "L002");
      ("l003_hashtbl.ml", false, true, "L003");
      ("l004_swallow.ml", false, true, "L004");
      ("l005_print.ml", true, true, "L005");
      ("l006_no_mli.ml", true, false, "L006");
      ("l007_float_eq.ml", false, true, "L007");
      ("l008_bare_allow.ml", false, true, "L008");
      ("l009_domain.ml", false, true, "L009");
      ("l010_meter.ml", false, true, "L010");
      ("l011_journal.ml", false, true, "L011");
      ("l012_resilience.ml", false, true, "L012");
    ]

let test_clean_fixture () =
  check_codes "clean.ml is clean" [] (lint_fixture ~in_lib:true ~has_mli:true "clean.ml")

let test_l009_pool_exempt () =
  (* The pool implementation itself is the one sanctioned spawn site;
     the same source is clean when attributed to lib/par. *)
  let source = read_file "fixtures/lint/l009_domain.ml" in
  check_codes "lib/par path is exempt" []
    (Lint.lint_source ~path:"lib/par/pool.ml" source);
  check_codes "explicit in_par is exempt" []
    (Lint.lint_source ~in_par:true ~path:"fixtures/lint/l009_domain.ml" source)

let test_l010_meter_exempt () =
  (* The meter's own library and the profiler that consumes it are the
     sanctioned sampling sites; the same source is clean there, and a
     reasoned allow-comment silences the rule anywhere else. *)
  let source = read_file "fixtures/lint/l010_meter.ml" in
  check_codes "lib/power path is exempt" []
    (Lint.lint_source ~path:"lib/power/calibrate.ml" source);
  check_codes "lib/obs path is exempt" []
    (Lint.lint_source ~path:"lib/obs/profile.ml" source);
  check_codes "explicit in_power is exempt" []
    (Lint.lint_source ~in_power:true ~path:"fixtures/lint/l010_meter.ml" source);
  let allowed =
    "(* lint: allow L010 test rig owns its meter *)\n\
     let m = Power.Meter.create ()\n"
  in
  check_codes "reasoned allow silences L010" []
    (Lint.lint_source ~path:"lib/streaming/x.ml" allowed)

let test_l011_journal_exempt () =
  (* The journal library itself and the five sanctioned pipeline hook
     files may emit events; everywhere else needs a reasoned allow. *)
  let source = read_file "fixtures/lint/l011_journal.ml" in
  check_codes "lib/obs path is exempt" []
    (Lint.lint_source ~path:"lib/obs/journal.ml" source);
  check_codes "session hook is exempt" []
    (Lint.lint_source ~path:"lib/streaming/session.ml" source);
  check_codes "annotator hook is exempt" []
    (Lint.lint_source ~path:"lib/annot/annotator.ml" source);
  check_codes "explicit in_journal is exempt" []
    (Lint.lint_source ~in_journal:true ~path:"fixtures/lint/l011_journal.ml"
       source);
  let allowed =
    "(* lint: allow L011 bench instruments its own harness *)\n\
     let () = Obs.Journal.record (Obs.Journal.Scene_cut { scene = 0; frame = 0 })\n"
  in
  check_codes "reasoned allow silences L011" []
    (Lint.lint_source ~path:"lib/streaming/x.ml" allowed)

let test_l012_resilience_exempt () =
  (* The control plane itself and the four reviewed streaming
     integration files may flip breaker/ladder state; everywhere else
     needs a reasoned allow. *)
  let source = read_file "fixtures/lint/l012_resilience.ml" in
  check_codes "lib/resilience path is exempt" []
    (Lint.lint_source ~path:"lib/resilience/breaker.ml" source);
  check_codes "transport hook is exempt" []
    (Lint.lint_source ~path:"lib/streaming/transport.ml" source);
  check_codes "session hook is exempt" []
    (Lint.lint_source ~path:"lib/streaming/session.ml" source);
  check_codes "explicit in_resilience is exempt" []
    (Lint.lint_source ~in_resilience:true
       ~path:"fixtures/lint/l012_resilience.ml" source);
  let allowed =
    "(* lint: allow L012 chaos harness trips breakers on purpose *)\n\
     let trip b = Resilience.Breaker.record b ~now_s:0. ~ok:false\n"
  in
  check_codes "reasoned allow silences L012" []
    (Lint.lint_source ~path:"bench/chaos.ml" allowed)

let test_every_rule_has_a_fixture () =
  (* L000 is the parse-failure code, not a rule with a fixture. *)
  let covered =
    [
      "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L007"; "L008"; "L009";
      "L010"; "L011"; "L012";
    ]
  in
  Alcotest.(check (list string))
    "rule registry matches fixture corpus" covered
    (List.map (fun r -> r.Lint.code) Lint.rules)

let test_unparsable_is_l000 () =
  check_codes "garbage yields L000" [ "L000" ]
    (Lint.lint_source ~path:"broken.ml" "let let let = = =")

(* --- concurrency fixtures ---------------------------------------------- *)

module Callgraph = Check_lint.Callgraph
module Concurrency = Check_lint.Concurrency

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let conc_source name ~path =
  Lint.of_string ~path (read_file (Filename.concat "fixtures/lint" name))

let conc_fixture name ~path =
  let src = conc_source name ~path in
  let g = Callgraph.build [ src ] in
  Concurrency.check g [ src ]

let test_c_fixtures_fire_once () =
  List.iter
    (fun (name, path, code) ->
      let ds = conc_fixture name ~path in
      Alcotest.(check int) (name ^ " fires exactly once") 1 (List.length ds);
      check_codes name [ code ] ds)
    [
      ("c001_state.ml", "lib/par/c001_state.ml", "C001");
      ("c002_cache.ml", "lib/par/c002_cache.ml", "C002");
      ("c003_leak.ml", "lib/par/c003_leak.ml", "C003");
      ("c004_nested.ml", "lib/par/c004_nested.ml", "C004");
      ("c005_cycle.ml", "lib/par/c005_cycle.ml", "C005");
      ("c006_primitive.ml", "lib/annot/c006_primitive.ml", "C006");
    ]

let test_c_clean_fixture () =
  check_codes "c_clean.ml is clean" []
    (conc_fixture "c_clean.ml" ~path:"lib/par/c_clean.ml")

let test_c001_scope () =
  (* The same mutable state is quiet outside the par-linked tree
     (though the raw Atomic use still needs a sanctioned home). *)
  Alcotest.(check bool) "no C001 on a bench path" true
    (not
       (List.mem "C001"
          (codes (conc_fixture "c001_state.ml" ~path:"bench/c001_state.ml"))))

let test_every_c_rule_has_a_fixture () =
  Alcotest.(check (list string))
    "concurrency registry matches fixture corpus"
    [ "C001"; "C002"; "C003"; "C004"; "C005"; "C006" ]
    (List.map (fun r -> r.Lint.code) Concurrency.rules)

let test_c_deterministic_order () =
  (* Same diagnostics, same order, whatever order the sources arrive
     in — the contract `lint --json` relies on. *)
  let s1 = conc_source "c001_state.ml" ~path:"lib/par/c001_state.ml" in
  let s2 = conc_source "c003_leak.ml" ~path:"lib/par/c003_leak.ml" in
  let run srcs = Concurrency.check (Callgraph.build srcs) srcs in
  let a = run [ s1; s2 ] and b = run [ s2; s1 ] in
  Alcotest.(check bool) "order-insensitive" true (a = b);
  Alcotest.(check bool) "sorted" true (List.sort Diagnostic.compare a = a)

(* --- call graph -------------------------------------------------------- *)

let graph_of sources =
  Callgraph.build (List.map (fun (path, text) -> Lint.of_string ~path text) sources)

let internal_callee g ~def ~target =
  List.exists
    (fun (c, _) -> c = Callgraph.Internal target)
    (Callgraph.callees g def)

let test_callgraph_cross_module () =
  (* Sibling units of the same library resolve through the module
     name; another library resolves through its public name. *)
  let g =
    graph_of
      [
        ("lib/x/a.ml", "let tick () = 1\n");
        ("lib/x/b.ml", "let run () = A.tick ()\n");
        ("lib/streaming/server.ml", "let prepare () = 2\n");
        ("lib/y/c.ml", "let go () = Streaming.Server.prepare ()\n");
      ]
  in
  Alcotest.(check bool) "sibling unit" true
    (internal_callee g
       ~def:(Callgraph.node_id "lib/x/b.ml" "run")
       ~target:(Callgraph.node_id "lib/x/a.ml" "tick"));
  Alcotest.(check bool) "library-qualified" true
    (internal_callee g
       ~def:(Callgraph.node_id "lib/y/c.ml" "go")
       ~target:(Callgraph.node_id "lib/streaming/server.ml" "prepare"))

let test_callgraph_shadowing () =
  let g =
    graph_of
      [
        ( "lib/x/s.ml",
          "let f () = 1\nlet g () = f ()\nlet f () = 2\nlet h () = f ()\n" );
      ]
  in
  let callee_of name =
    match Callgraph.callees g (Callgraph.node_id "lib/x/s.ml" name) with
    | [ (Callgraph.Internal id, _) ] -> id
    | _ -> Alcotest.fail ("unexpected callees for " ^ name)
  in
  Alcotest.(check bool) "g and h bind different f's" true
    (callee_of "g" <> callee_of "h")

let test_callgraph_local_shadowing () =
  (* A locally rebound name must not create an edge to the top-level
     binding it shadows. *)
  let g =
    graph_of
      [ ("lib/x/l.ml", "let f () = 1\n\nlet s x =\n  let f y = y in\n  f x\n") ]
  in
  let cs = Callgraph.callees g (Callgraph.node_id "lib/x/l.ml" "s") in
  Alcotest.(check bool) "local f suppresses the edge" true
    (not
       (List.exists
          (fun (c, _) ->
            match c with
            | Callgraph.Internal id -> Callgraph.display_name id = "f"
            | Callgraph.External _ -> false)
          cs))

let test_callgraph_local_open () =
  let g =
    graph_of
      [
        ( "lib/x/o.ml",
          "module M = struct\n  let inner () = 7\nend\n\n\
           let use () =\n  let open M in\n  inner ()\n" );
      ]
  in
  Alcotest.(check bool) "let open resolves inner" true
    (internal_callee g
       ~def:(Callgraph.node_id "lib/x/o.ml" "use")
       ~target:(Callgraph.node_id "lib/x/o.ml" "M.inner"))

let test_transitive_effects () =
  (* The entry point is flagged with a witness chain; the direct
     caller is the per-file pass's finding, not repeated here. *)
  let g =
    graph_of
      [
        ("lib/x/clock.ml", "let tick () = Unix.gettimeofday ()\n");
        ("lib/x/entry.ml", "let run () = Clock.tick ()\n");
      ]
  in
  match Callgraph.transitive_effects g with
  | [ d ] ->
    Alcotest.(check string) "code" "L001" d.Diagnostic.code;
    Alcotest.(check string) "flagged at the entry" "lib/x/entry.ml"
      d.Diagnostic.file;
    Alcotest.(check bool) "witness names the chain" true
      (contains d.Diagnostic.message "tick"
      && contains d.Diagnostic.message "Unix.gettimeofday")
  | ds ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one transitive finding, got %d"
         (List.length ds))

let test_transitive_effects_allow_cut () =
  (* A reasoned allow at the intermediate call site is a trust
     boundary: propagation stops there. *)
  let g =
    graph_of
      [
        ("lib/x/clock.ml", "let tick () = Unix.gettimeofday ()\n");
        ( "lib/x/entry.ml",
          "let run () =\n\
           \  (* lint: allow L001 replay harness reads the wall clock *)\n\
           \  Clock.tick ()\n" );
      ]
  in
  check_codes "allow cuts the chain" [] (Callgraph.transitive_effects g)

let test_allows_listing () =
  let src =
    Lint.of_string ~path:"lib/x/a.ml"
      "(* lint: allow L001 bench rig owns its clock *)\n\
       let t () = Unix.gettimeofday ()\n"
  in
  match Lint.allows src with
  | [ a ] ->
    Alcotest.(check string) "code" "L001" a.Lint.a_code;
    Alcotest.(check string) "reason" "bench rig owns its clock" a.Lint.a_reason
  | l ->
    Alcotest.fail (Printf.sprintf "expected one allow, got %d" (List.length l))

(* --- diagnostic JSON schema -------------------------------------------- *)

let sample_diags =
  [
    Diagnostic.v ~code:"L004" ~severity:Diagnostic.Error ~file:"lib/x.ml"
      ~line:12 ~col:4 "swallowed";
    Diagnostic.v ~code:"V106" ~severity:Diagnostic.Warning ~file:"t.bin"
      "off-grid quality";
  ]

let test_json_round_trip () =
  List.iter
    (fun d ->
      match Diagnostic.of_json (Diagnostic.to_json d) with
      | Ok d' -> Alcotest.(check bool) "round trip" true (d = d')
      | Error msg -> Alcotest.fail msg)
    sample_diags

let test_json_wire_round_trip () =
  (* The same path `lint --json` output takes: render to a string,
     re-parse, decode each element. *)
  let rendered =
    Obs.Json.to_string (Obs.Json.List (List.map Diagnostic.to_json sample_diags))
  in
  match Obs.Json.of_string rendered with
  | Error msg -> Alcotest.fail msg
  | Ok (Obs.Json.List items) ->
    let decoded =
      List.map
        (fun j ->
          match Diagnostic.of_json j with
          | Ok d -> d
          | Error msg -> Alcotest.fail msg)
        items
    in
    Alcotest.(check bool) "wire round trip" true (decoded = sample_diags)
  | Ok _ -> Alcotest.fail "expected a JSON array"

(* --- annotation corpus ------------------------------------------------- *)

let entry ~first_frame ~frame_count ~register =
  {
    Annotation.Track.first_frame;
    frame_count;
    register;
    compensation = 1.25;
    effective_max = 200;
  }

(* Three runs with distinct registers so merge_runs keeps all three. *)
let track =
  Annotation.Track.make ~clip_name:"clip" ~device_name:"ipaq_h5555"
    ~quality:Annotation.Quality_level.Loss_10 ~fps:12. ~total_frames:90
    [|
      entry ~first_frame:0 ~frame_count:30 ~register:40;
      entry ~first_frame:30 ~frame_count:30 ~register:200;
      entry ~first_frame:60 ~frame_count:30 ~register:90;
    |]

let n_records = 3
let blob = Encoding.encode track
let rsize = Encoding.record_size
let records_offset b = String.length b - (n_records * rsize)
let hcrc_offset b = records_offset b - 4

let set_u24 b off v =
  for k = 0 to 2 do
    Bytes.set_uint8 b (off + k) ((v lsr (8 * k)) land 0xff)
  done

let set_u32 b off v =
  for k = 0 to 3 do
    Bytes.set_uint8 b (off + k) ((v lsr (8 * k)) land 0xff)
  done

(* Tamper with the blob, then (optionally) recompute the CRCs an
   attacker in control of the bytes could also recompute — so the
   *semantic* checks are exercised, not just the checksums. *)
let patched ?(fix_record = -1) ?(fix_header = false) f =
  let b = Bytes.of_string blob in
  f b;
  if fix_record >= 0 then begin
    let off = records_offset blob + (fix_record * rsize) in
    set_u32 b (off + 11)
      (Encoding.crc32_sub (Bytes.to_string b) ~pos:off ~len:(rsize - 4))
  end;
  if fix_header then
    set_u32 b (hcrc_offset blob)
      (Encoding.crc32_sub (Bytes.to_string b) ~pos:0 ~len:(hcrc_offset blob));
  Bytes.to_string b

let check = Artifact.check_annotation ~file:"t.bin"

let test_pristine_v2 () = check_codes "pristine v2" [] (check blob)
let test_pristine_v1 () =
  check_codes "pristine v1" [] (check (Encoding.encode_v1 track))

let test_bad_magic () =
  check_codes "V101" [ "V101" ] (check ("XXXX" ^ String.sub blob 4 (String.length blob - 4)))

let test_bad_version () =
  let b = patched ~fix_header:true (fun b -> Bytes.set_uint8 b 4 7) in
  check_codes "V102" [ "V102" ] (check b)

let test_header_truncated () =
  check_codes "V103" [ "V103" ] (check (String.sub blob 0 8))

let test_header_crc () =
  (* Flip a clip-name byte without fixing the CRC: framing stays
     parsable, the checksum catches the lie. *)
  let b = patched (fun b -> Bytes.set_uint8 b 10 (Bytes.get_uint8 b 10 lxor 0xff)) in
  check_codes "V104" [ "V104" ] (check b)

let test_record_crc () =
  let b =
    patched (fun b ->
        let off = records_offset blob + rsize + 6 in
        Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0x01))
  in
  check_codes "V108" [ "V108" ] (check b)

let test_truncated_records () =
  check_codes "V107" [ "V107" ]
    (check (String.sub blob 0 (String.length blob - 7)))

let test_monotonicity () =
  let b =
    patched ~fix_record:1 (fun b ->
        set_u24 b (records_offset blob + rsize) 31)
  in
  check_codes "V109" [ "V109" ] (check b)

let test_frame_span () =
  let b =
    patched ~fix_record:2 (fun b ->
        set_u24 b (records_offset blob + (2 * rsize) + 3) 99)
  in
  check_codes "V110" [ "V110" ] (check b)

let test_compensation () =
  let b =
    patched ~fix_record:0 (fun b -> set_u24 b (records_offset blob + 7) 100)
  in
  check_codes "V111" [ "V111" ] (check b)

let test_backlight_range () =
  let tiny = { Display.Device.ipaq_h5555 with Display.Device.backlight_levels = 8 } in
  let ds =
    Artifact.check_annotation ~find_device:(fun _ -> Some tiny) ~file:"t.bin" blob
  in
  check_codes "V112" [ "V112" ] ds

let test_trailing_bytes_v1 () =
  check_codes "V113" [ "V113" ] (check (Encoding.encode_v1 track ^ "xx"))

let test_coverage () =
  (* Drop the last record and adjust the count; header CRC fixed up,
     so only the coverage check can object. *)
  let shorter = String.sub blob 0 (String.length blob - rsize) in
  let b = Bytes.of_string shorter in
  Bytes.set_uint8 b (hcrc_offset blob - 1) 2;
  set_u32 b (hcrc_offset blob)
    (Encoding.crc32_sub (Bytes.to_string b) ~pos:0 ~len:(hcrc_offset blob));
  check_codes "V114" [ "V114" ] (check (Bytes.to_string b))

let test_off_grid_quality () =
  (* Quality permille 100 -> 99: still a 1-byte varint, CRC fixed up;
     an off-grid but in-range quality is a warning, not an error. *)
  let b = patched ~fix_header:true (fun b -> Bytes.set_uint8 b 5 99) in
  let ds = check b in
  check_codes "V106" [ "V106" ] ds;
  Alcotest.(check int) "warning only" 0 (Diagnostic.errors ds)

(* Hand-built header declaring 2^40 records over an empty payload,
   with a *valid* CRC — the case that must be caught by arithmetic,
   not checksum. *)
let huge_count_blob =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "ANPW";
  Buffer.add_char buf '\002';
  let varint n =
    let n = ref n in
    let continue = ref true in
    while !continue do
      let b = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        Buffer.add_char buf (Char.chr b);
        continue := false
      end
      else Buffer.add_char buf (Char.chr (b lor 0x80))
    done
  in
  varint 100;
  varint 12_000;
  varint 90;
  varint 4;
  Buffer.add_string buf "clip";
  varint 6;
  Buffer.add_string buf "device";
  varint (1 lsl 40);
  let header = Buffer.contents buf in
  let crc = Encoding.crc32 header in
  let b = Bytes.create 4 in
  set_u32 b 0 crc;
  header ^ Bytes.to_string b

let test_huge_count_flagged () =
  check_codes "V107 on huge count" [ "V107" ] (check huge_count_blob)

(* --- encoding hardening regressions ------------------------------------ *)

let is_error = function Error _ -> true | Ok _ -> false

let test_decode_rejects_huge_count () =
  Alcotest.(check bool) "decode returns Error, no exception" true
    (is_error (Encoding.decode huge_count_blob));
  Alcotest.(check bool) "decode_partial returns Error, no exception" true
    (is_error (Encoding.decode_partial huge_count_blob))

let test_decode_rejects_truncation () =
  let cut = String.sub blob 0 (String.length blob - 7) in
  Alcotest.(check bool) "decode" true (is_error (Encoding.decode cut));
  Alcotest.(check bool) "decode_partial" true
    (is_error (Encoding.decode_partial cut))

let test_decode_rejects_varint_overflow () =
  let b = "ANPW\002" ^ String.make 9 '\xff' in
  Alcotest.(check bool) "decode" true (is_error (Encoding.decode b))

(* --- SLO files ---------------------------------------------------------- *)

let known =
  {
    Artifact.histograms = [ "streaming_frame_latency_seconds" ];
    names = [ "frames"; "deadline_miss"; "power_cpu_mj" ];
  }

let slo = Artifact.check_slo ~known ~file:"t.slo"

let test_slo_valid () =
  check_codes "valid slo" []
    (slo
       "# latency gate\n\
        streaming_frame_latency_seconds_p99 < 0.25\n\
        deadline_miss_rate < 0.05\n\
        power_cpu_mj < 2000\n")

let test_slo_parse_error () =
  check_codes "V201" [ "V201" ] (slo "power_cpu_mj <\n")

let test_slo_unknown_metric () =
  check_codes "V202" [ "V202" ] (slo "made_up_series_p99 < 1\n");
  check_codes "V202 gauge" [ "V202" ] (slo "made_up_gauge < 1\n")

let test_slo_contradiction () =
  check_codes "V203" [ "V203" ] (slo "power_cpu_mj < 5\npower_cpu_mj > 10\n");
  check_codes "feasible band is fine" []
    (slo "power_cpu_mj > 5\npower_cpu_mj < 10\n")

let test_slo_duplicate () =
  let ds = slo "power_cpu_mj < 5\npower_cpu_mj < 5\n" in
  check_codes "V204" [ "V204" ] ds;
  Alcotest.(check int) "warning only" 0 (Diagnostic.errors ds)

let test_slo_empty () =
  let ds = slo "# nothing here\n" in
  check_codes "V205" [ "V205" ] ds;
  Alcotest.(check int) "warning only" 0 (Diagnostic.errors ds)

let test_slo_live_catalog () =
  (* The defaults shipped in examples/default.slo must validate against
     the live metric catalog of this very process. *)
  let ds = Artifact.check_slo ~file:"default.slo" (read_file "../examples/default.slo") in
  Alcotest.(check (list string)) "examples/default.slo" [] (error_codes ds)

(* --- fault profiles ----------------------------------------------------- *)

let test_fault_valid () =
  check_codes "gilbert profile" []
    (Artifact.check_fault ~file:"t.fault"
       "model = gilbert\nmean_loss = 0.10\nburst_length = 4\n")

let test_fault_parse_error () =
  check_codes "V301" [ "V301" ]
    (Artifact.check_fault ~file:"t.fault" "model = banana\n")

let test_fault_noop () =
  let ds = Artifact.check_fault ~file:"t.fault" "# nothing\n" in
  check_codes "V302" [ "V302" ] ds;
  Alcotest.(check int) "warning only" 0 (Diagnostic.errors ds)

(* --- resilience profiles ------------------------------------------------- *)

let res = Artifact.check_resilience ~file:"t.resilience"

let test_resilience_shipped_profiles () =
  check_codes "examples/default.resilience" []
    (res (read_file "../examples/default.resilience"));
  check_codes "examples/aggressive.resilience" []
    (res (read_file "../examples/aggressive.resilience"))

let test_resilience_parse_error () =
  check_codes "V501 unknown key" [ "V501" ] (res "frobnicate = 1\n");
  check_codes "V501 unknown rung" [ "V501" ] (res "ladder = fresh, sideways\n");
  check_codes "V501 bad number" [ "V501" ] (res "retry_budget_s = lots\n")

let test_resilience_nonpositive () =
  check_codes "V502 retry budget" [ "V502" ] (res "retry_budget_s = 0\n");
  check_codes "V502 bulkhead capacity" [ "V502" ]
    (res "bulkhead_capacity = -1\n");
  check_codes "V502 watchdog" [ "V502" ] (res "stage_deadline_ms = 0\n")

let test_resilience_ladder_order () =
  (* The rungs parse; the shallowest-first convention is the
     verifier's: clamp before stale is a walk that would skip back. *)
  check_codes "V503" [ "V503" ] (res "ladder = fresh, clamp, stale, full\n")

let test_resilience_threshold_range () =
  check_codes "V504 above one" [ "V504" ] (res "breaker_threshold = 1.5\n");
  check_codes "V504 negative" [ "V504" ] (res "breaker_threshold = -0.1\n")

let test_resilience_noop () =
  let ds = res "# nothing configured\n" in
  check_codes "V505" [ "V505" ] ds;
  Alcotest.(check int) "warning only" 0 (Diagnostic.errors ds)

let () =
  Alcotest.run "check"
    [
      ( "lint rules",
        [
          Alcotest.test_case "fixtures fire once" `Quick test_fixtures_fire_once;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
          Alcotest.test_case "lib/par exempt from L009" `Quick test_l009_pool_exempt;
          Alcotest.test_case "lib/power exempt from L010" `Quick test_l010_meter_exempt;
          Alcotest.test_case "hooks exempt from L011" `Quick test_l011_journal_exempt;
          Alcotest.test_case "hooks exempt from L012" `Quick test_l012_resilience_exempt;
          Alcotest.test_case "registry covered" `Quick test_every_rule_has_a_fixture;
          Alcotest.test_case "unparsable" `Quick test_unparsable_is_l000;
        ] );
      ( "concurrency rules",
        [
          Alcotest.test_case "fixtures fire once" `Quick test_c_fixtures_fire_once;
          Alcotest.test_case "clean fixture" `Quick test_c_clean_fixture;
          Alcotest.test_case "scoped to par-linked" `Quick test_c001_scope;
          Alcotest.test_case "registry covered" `Quick
            test_every_c_rule_has_a_fixture;
          Alcotest.test_case "deterministic order" `Quick
            test_c_deterministic_order;
        ] );
      ( "call graph",
        [
          Alcotest.test_case "cross-module" `Quick test_callgraph_cross_module;
          Alcotest.test_case "shadowing" `Quick test_callgraph_shadowing;
          Alcotest.test_case "local shadowing" `Quick
            test_callgraph_local_shadowing;
          Alcotest.test_case "local open" `Quick test_callgraph_local_open;
          Alcotest.test_case "transitive effects" `Quick test_transitive_effects;
          Alcotest.test_case "allow cuts the chain" `Quick
            test_transitive_effects_allow_cut;
          Alcotest.test_case "allows listing" `Quick test_allows_listing;
        ] );
      ( "diagnostic json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "wire round trip" `Quick test_json_wire_round_trip;
        ] );
      ( "annotation corpus",
        [
          Alcotest.test_case "pristine v2" `Quick test_pristine_v2;
          Alcotest.test_case "pristine v1" `Quick test_pristine_v1;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "header truncated" `Quick test_header_truncated;
          Alcotest.test_case "header crc" `Quick test_header_crc;
          Alcotest.test_case "record crc" `Quick test_record_crc;
          Alcotest.test_case "truncated records" `Quick test_truncated_records;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "frame span" `Quick test_frame_span;
          Alcotest.test_case "compensation" `Quick test_compensation;
          Alcotest.test_case "backlight range" `Quick test_backlight_range;
          Alcotest.test_case "trailing bytes v1" `Quick test_trailing_bytes_v1;
          Alcotest.test_case "coverage" `Quick test_coverage;
          Alcotest.test_case "off-grid quality" `Quick test_off_grid_quality;
          Alcotest.test_case "huge count" `Quick test_huge_count_flagged;
        ] );
      ( "encoding hardening",
        [
          Alcotest.test_case "huge count" `Quick test_decode_rejects_huge_count;
          Alcotest.test_case "truncation" `Quick test_decode_rejects_truncation;
          Alcotest.test_case "varint overflow" `Quick test_decode_rejects_varint_overflow;
        ] );
      ( "slo",
        [
          Alcotest.test_case "valid" `Quick test_slo_valid;
          Alcotest.test_case "parse error" `Quick test_slo_parse_error;
          Alcotest.test_case "unknown metric" `Quick test_slo_unknown_metric;
          Alcotest.test_case "contradiction" `Quick test_slo_contradiction;
          Alcotest.test_case "duplicate" `Quick test_slo_duplicate;
          Alcotest.test_case "empty" `Quick test_slo_empty;
          Alcotest.test_case "live catalog" `Quick test_slo_live_catalog;
        ] );
      ( "fault",
        [
          Alcotest.test_case "valid" `Quick test_fault_valid;
          Alcotest.test_case "parse error" `Quick test_fault_parse_error;
          Alcotest.test_case "no-op" `Quick test_fault_noop;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "shipped profiles" `Quick
            test_resilience_shipped_profiles;
          Alcotest.test_case "parse error" `Quick test_resilience_parse_error;
          Alcotest.test_case "non-positive budgets" `Quick
            test_resilience_nonpositive;
          Alcotest.test_case "ladder order" `Quick test_resilience_ladder_order;
          Alcotest.test_case "threshold range" `Quick
            test_resilience_threshold_range;
          Alcotest.test_case "no-op" `Quick test_resilience_noop;
        ] );
    ]
