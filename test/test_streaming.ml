(* Tests for the streaming system model: network, negotiation, server
   and the playback simulator. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let device = Display.Device.ipaq_h5555

let two_scene_clip () =
  let profile =
    {
      Video.Profile.name = "stream-test";
      seed = 8;
      scenes =
        [
          Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 50);
          Video.Profile.scene ~seconds:1. ~noise_sigma:0. (Video.Profile.Flat 210);
        ];
    }
  in
  Video.Clip_gen.render ~width:24 ~height:18 ~fps:8. profile

(* --- Netsim ------------------------------------------------------------- *)

let test_netsim_packet_count () =
  let link = Streaming.Netsim.wlan_80211b in
  check int "empty payload" 0 (Streaming.Netsim.packet_count link 0);
  check int "one byte" 1 (Streaming.Netsim.packet_count link 1);
  check int "exactly one packet" 1 (Streaming.Netsim.packet_count link 1400);
  check int "one byte over" 2 (Streaming.Netsim.packet_count link 1401)

let test_netsim_wire_bytes () =
  let link =
    Streaming.Netsim.make ~bandwidth_bps:1_000_000. ~packet_payload_bytes:100
      ~per_packet_overhead_bytes:10
  in
  check int "wire bytes" 330 (Streaming.Netsim.wire_bytes link 300);
  check (Alcotest.float 1e-9) "transfer time" (330. *. 8. /. 1_000_000.)
    (Streaming.Netsim.transfer_time_s link 300)

let test_netsim_annotation_overhead_small () =
  (* A few-hundred-byte annotation on a megabyte video: well under 1%. *)
  let link = Streaming.Netsim.wlan_80211b in
  let ratio =
    Streaming.Netsim.annotation_overhead_ratio link ~video_bytes:2_000_000
      ~annotation_bytes:300
  in
  check bool "overhead below 0.1%" true (ratio < 0.001)

let test_netsim_validation () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Netsim.make: bandwidth must be positive") (fun () ->
      ignore
        (Streaming.Netsim.make ~bandwidth_bps:0. ~packet_payload_bytes:100
           ~per_packet_overhead_bytes:0))

(* --- Negotiation -------------------------------------------------------- *)

let test_negotiation_accepts_grid_quality () =
  let hello =
    {
      Streaming.Negotiation.device;
      requested_quality = Annotation.Quality_level.Loss_10;
    }
  in
  match Streaming.Negotiation.negotiate hello with
  | Error e -> Alcotest.fail e
  | Ok session ->
    check bool "same quality" true
      (session.Streaming.Negotiation.quality = Annotation.Quality_level.Loss_10);
    check bool "server-side by default" true
      (session.Streaming.Negotiation.mapping = Streaming.Negotiation.Server_side)

let test_negotiation_snaps_custom_quality () =
  let hello =
    {
      Streaming.Negotiation.device;
      requested_quality = Annotation.Quality_level.Custom 0.12;
    }
  in
  match Streaming.Negotiation.negotiate hello with
  | Error e -> Alcotest.fail e
  | Ok session ->
    (* 12% snaps to the nearest advertised level (10% or 15%). *)
    check bool "snapped to grid" true
      (List.exists
         (fun q -> Annotation.Quality_level.compare q session.Streaming.Negotiation.quality = 0)
         Streaming.Negotiation.offer_qualities)

let test_negotiation_client_side_mapping () =
  let hello =
    {
      Streaming.Negotiation.device;
      requested_quality = Annotation.Quality_level.Lossless;
    }
  in
  match
    Streaming.Negotiation.negotiate ~prefer:Streaming.Negotiation.Client_side hello
  with
  | Error e -> Alcotest.fail e
  | Ok session ->
    check bool "client-side honoured" true
      (session.Streaming.Negotiation.mapping = Streaming.Negotiation.Client_side)

(* --- Server ------------------------------------------------------------- *)

let make_session quality =
  { Streaming.Negotiation.device; quality; mapping = Streaming.Negotiation.Server_side }

let test_server_catalog () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  Alcotest.(check (list string)) "names" [ "stream-test" ] (Streaming.Server.clip_names server);
  check bool "unknown clip" true
    (Result.is_error
       (Streaming.Server.prepare server ~name:"nope"
          ~session:(make_session Annotation.Quality_level.Lossless)))

let test_server_prepare () =
  let server = Streaming.Server.create () in
  let clip = two_scene_clip () in
  Streaming.Server.add_clip server clip;
  match
    Streaming.Server.prepare server ~name:"stream-test"
      ~session:(make_session Annotation.Quality_level.Lossless)
  with
  | Error e -> Alcotest.fail e
  | Ok prepared ->
    check bool "track covers clip" true
      (prepared.Streaming.Server.track.Annotation.Track.total_frames
       = clip.Video.Clip.frame_count);
    check bool "annotations non-empty" true
      (String.length prepared.Streaming.Server.annotation_bytes > 0);
    (* Annotation side-channel decodes back to the same registers. *)
    (match Annotation.Encoding.decode prepared.Streaming.Server.annotation_bytes with
    | Error e -> Alcotest.fail e
    | Ok decoded ->
      Alcotest.(check (array int))
        "wire track matches"
        (Annotation.Track.register_track prepared.Streaming.Server.track)
        (Annotation.Track.register_track decoded));
    (* The compensated stream brightens the dark scene. *)
    check bool "compensated stream brighter" true
      (Image.Raster.mean_luminance
         (prepared.Streaming.Server.compensated.Video.Clip.render 0)
       > Image.Raster.mean_luminance (clip.Video.Clip.render 0))

let test_server_client_side_mapping () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  let session =
    {
      Streaming.Negotiation.device;
      quality = Annotation.Quality_level.Loss_10;
      mapping = Streaming.Negotiation.Client_side;
    }
  in
  match Streaming.Server.prepare server ~name:"stream-test" ~session with
  | Error e -> Alcotest.fail e
  | Ok prepared ->
    check bool "track is device-neutral" true
      (prepared.Streaming.Server.track.Annotation.Track.device_name
       = Annotation.Neutral.generic_device_name);
    (* The client finishes the mapping and lands on the same registers
       a server-mapped session would have shipped. *)
    let mapped =
      Annotation.Neutral.map_to_device device prepared.Streaming.Server.track
    in
    let server_side =
      match
        Streaming.Server.prepare server ~name:"stream-test"
          ~session:(make_session Annotation.Quality_level.Loss_10)
      with
      | Ok p -> p.Streaming.Server.track
      | Error e -> Alcotest.fail e
    in
    Alcotest.(check (array int))
      "same registers either way"
      (Annotation.Track.register_track server_side)
      (Annotation.Track.register_track mapped)

let test_server_profile_cached () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  let p1 = Streaming.Server.profile server "stream-test" in
  let p2 = Streaming.Server.profile server "stream-test" in
  match (p1, p2) with
  | Ok a, Ok b -> check bool "same cached profile" true (a == b)
  | _ -> Alcotest.fail "profiling failed"

let test_server_cache_hit_miss () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  let prepare quality =
    match
      Streaming.Server.prepare server ~name:"stream-test"
        ~session:(make_session quality)
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let first = prepare Annotation.Quality_level.Loss_10 in
  Alcotest.(check (pair int int)) "first prepare misses" (0, 1)
    (Streaming.Server.cache_stats server);
  let again = prepare Annotation.Quality_level.Loss_10 in
  Alcotest.(check (pair int int)) "identical session hits" (1, 1)
    (Streaming.Server.cache_stats server);
  check bool "hit serves the cached stream" true (first == again);
  ignore (prepare Annotation.Quality_level.Loss_5);
  Alcotest.(check (pair int int)) "new quality misses" (1, 2)
    (Streaming.Server.cache_stats server);
  check int "two distinct streams cached" 2 (Streaming.Server.cache_size server);
  (* A cached prepare must serve the same bytes a fresh server builds. *)
  let fresh = Streaming.Server.create () in
  Streaming.Server.add_clip fresh (two_scene_clip ());
  (match
     Streaming.Server.prepare fresh ~name:"stream-test"
       ~session:(make_session Annotation.Quality_level.Loss_10)
   with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check string) "cached = fresh annotation bytes"
      p.Streaming.Server.annotation_bytes
      again.Streaming.Server.annotation_bytes);
  (* Replacing the clip evicts its prepared streams. *)
  Streaming.Server.add_clip server (two_scene_clip ());
  check int "re-adding the clip evicts" 0 (Streaming.Server.cache_size server)

let test_server_scene_params_bypass_cache () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  (match
     Streaming.Server.prepare server
       ~scene_params:Annotation.Scene_detect.per_frame_params
       ~name:"stream-test"
       ~session:(make_session Annotation.Quality_level.Loss_10)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (pair int int))
    "explicit scene_params never touch the cache" (0, 0)
    (Streaming.Server.cache_stats server);
  check int "nothing cached" 0 (Streaming.Server.cache_size server)

let test_server_prepare_many_stress () =
  (* Hammer one clip from four domains: the profile must run exactly
     once, every result must be Ok, and the streams must be the ones a
     sequential server would have built. *)
  Obs.with_enabled @@ fun () ->
  let profiles = Obs.counter "annot_profiles_total" [] in
  let before = Obs.Metrics.Counter.value profiles in
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  let qualities =
    [
      Annotation.Quality_level.Lossless;
      Annotation.Quality_level.Loss_5;
      Annotation.Quality_level.Loss_10;
      Annotation.Quality_level.Loss_15;
    ]
  in
  let specs =
    List.concat_map
      (fun q -> List.init 8 (fun _ -> ("stream-test", make_session q)))
      qualities
  in
  let results =
    Par.Pool.with_pool ~domains:4 (fun pool ->
        Streaming.Server.prepare_many ~pool server specs)
  in
  check int "one result per spec" (List.length specs) (List.length results);
  let bytes_of = function
    | Ok p -> p.Streaming.Server.annotation_bytes
    | Error e -> Alcotest.fail e
  in
  let results = List.map bytes_of results in
  check int "clip profiled exactly once under contention" 1
    (Obs.Metrics.Counter.value profiles - before);
  let sequential =
    let fresh = Streaming.Server.create () in
    Streaming.Server.add_clip fresh (two_scene_clip ());
    List.map bytes_of (Streaming.Server.prepare_many fresh specs)
  in
  check bool "parallel batch = sequential batch" true
    (List.equal String.equal results sequential);
  (* Racing sessions on a cold key may each count a miss (the build
     runs outside the cache lock, first insert wins), so the exact
     split is load-dependent — but every lookup is counted and the
     cache converges on one entry per key. *)
  let hits, misses = Streaming.Server.cache_stats server in
  check int "every spec counted once" (List.length specs) (hits + misses);
  check bool "at least one miss per distinct key" true
    (misses >= List.length qualities);
  check int "one cached stream per distinct key" (List.length qualities)
    (Streaming.Server.cache_size server)

let test_server_prepare_many_bulkhead_stress () =
  (* 64 racing sessions from eight domains through a saturated
     bulkhead: cache hits are served regardless, every cold build is
     shed to the passthrough and never cached, and the clip is still
     profiled exactly once. Saturating the compartment by hand (one
     un-released admission, queue limit 0) makes the shed decisions
     deterministic — a racing batch alone could in principle never
     overlap. *)
  Obs.with_enabled @@ fun () ->
  let profiles = Obs.counter "annot_profiles_total" [] in
  let before = Obs.Metrics.Counter.value profiles in
  let server = Streaming.Server.create () in
  let clip = two_scene_clip () in
  Streaming.Server.add_clip server clip;
  (* Pre-warm one key so the batch mixes hits with shed misses. *)
  (match
     Streaming.Server.prepare server ~name:"stream-test"
       ~session:(make_session Annotation.Quality_level.Loss_10)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let bulkhead =
    Resilience.Bulkhead.create
      ~config:{ Resilience.Bulkhead.capacity = 1; queue_limit = 0 }
      ~name:"test-prepare" ()
  in
  let occupied = Resilience.Bulkhead.enter bulkhead in
  Alcotest.(check bool) "saturating admission admitted" true
    (occupied.Resilience.Bulkhead.decision = Resilience.Bulkhead.Admitted);
  let qualities =
    [
      Annotation.Quality_level.Lossless;
      Annotation.Quality_level.Loss_5;
      Annotation.Quality_level.Loss_10;
      Annotation.Quality_level.Loss_15;
    ]
  in
  let specs =
    List.concat_map
      (fun q -> List.init 16 (fun _ -> ("stream-test", make_session q)))
      qualities
  in
  let results =
    Par.Pool.with_pool ~domains:8 (fun pool ->
        Streaming.Server.prepare_many ~pool ~bulkhead server specs)
  in
  check int "one result per spec" (List.length specs) (List.length results);
  let ok =
    List.map (function Ok p -> p | Error e -> Alcotest.fail e) results
  in
  (* A passthrough shares the stored clip; a real build compensates a
     copy. The pre-warmed quality is served from the cache even though
     the compartment is full; every other quality is shed. *)
  let shed, served =
    List.partition (fun p -> p.Streaming.Server.compensated == clip) ok
  in
  check int "48 cold builds shed" 48 (List.length shed);
  check int "16 warm lookups served from cache" 16 (List.length served);
  List.iter
    (fun p ->
      check bool "served results are the pre-warmed quality" true
        (p.Streaming.Server.session.Streaming.Negotiation.quality
        = Annotation.Quality_level.Loss_10))
    served;
  check int "shed results never cached" 1 (Streaming.Server.cache_size server);
  check int "profiled exactly once (the pre-warm)" 1
    (Obs.Metrics.Counter.value profiles - before);
  let hits, misses = Streaming.Server.cache_stats server in
  check int "every lookup counted" 65 (hits + misses);
  check int "warm lookups hit" 16 (hits - 0);
  (* Free the compartment: the next prepare is admitted, builds for
     real and enters the cache. *)
  Resilience.Bulkhead.release bulkhead;
  (match
     Streaming.Server.prepare server ~bulkhead ~name:"stream-test"
       ~session:(make_session Annotation.Quality_level.Loss_5)
   with
  | Ok p ->
    check bool "admitted build is a real stream" true
      (not (p.Streaming.Server.compensated == clip))
  | Error e -> Alcotest.fail e);
  check int "admitted build is cached" 2 (Streaming.Server.cache_size server);
  let admitted, queued, shed_total = Resilience.Bulkhead.stats bulkhead in
  check int "one saturating + one final admission" 2 admitted;
  check int "nothing ever queued" 0 queued;
  check int "48 sheds counted" 48 shed_total

let test_server_encode_video () =
  let server = Streaming.Server.create () in
  Streaming.Server.add_clip server (two_scene_clip ());
  match Streaming.Server.encode_video server ~name:"stream-test" with
  | Error e -> Alcotest.fail e
  | Ok encoded ->
    check bool "stream non-trivial" true (Codec.Encoder.total_bytes encoded > 100)

(* --- Playback ----------------------------------------------------------- *)

let test_playback_full_backlight_baseline () =
  (* With registers pinned at 255 there are no savings. *)
  let registers = Array.make 16 255 in
  let report =
    Streaming.Playback.run_with_registers ~device
      ~quality:Annotation.Quality_level.Lossless ~clip_name:"c" ~fps:8.
      ~annotation_bytes:0 registers
  in
  check (Alcotest.float 1e-9) "no backlight savings" 0.
    report.Streaming.Playback.backlight_savings;
  check (Alcotest.float 1e-9) "no total savings" 0.
    report.Streaming.Playback.total_savings;
  check int "no switches" 0 report.Streaming.Playback.switch_count

let test_playback_dimmed_saves () =
  let registers = Array.make 16 64 in
  let report =
    Streaming.Playback.run_with_registers ~device
      ~quality:Annotation.Quality_level.Loss_10 ~clip_name:"c" ~fps:8.
      ~annotation_bytes:0 registers
  in
  check bool "backlight savings positive" true
    (report.Streaming.Playback.backlight_savings > 0.5);
  check bool "total savings positive but smaller" true
    (report.Streaming.Playback.total_savings > 0.
     && report.Streaming.Playback.total_savings
        < report.Streaming.Playback.backlight_savings)

let test_playback_total_tracks_backlight_share () =
  (* Total savings should approximate backlight savings times the
     backlight share of device power. *)
  let registers = Array.make 16 0 in
  let report =
    Streaming.Playback.run_with_registers ~device
      ~quality:Annotation.Quality_level.Loss_20 ~clip_name:"c" ~fps:8.
      ~annotation_bytes:0 registers
  in
  let share = Power.Model.backlight_share device Power.State.playback_full in
  let expected = report.Streaming.Playback.backlight_savings *. share in
  check bool
    (Printf.sprintf "total %.3f tracks backlight*share %.3f"
       report.Streaming.Playback.total_savings expected)
    true
    (abs_float (report.Streaming.Playback.total_savings -. expected) < 0.08)

let test_playback_run_on_clip () =
  let clip = two_scene_clip () in
  let report =
    Streaming.Playback.run ~device ~quality:Annotation.Quality_level.Lossless clip
  in
  check int "frames" clip.Video.Clip.frame_count report.Streaming.Playback.frames;
  check bool "savings positive on dark scene" true
    (report.Streaming.Playback.backlight_savings > 0.1);
  check bool "annotations counted" true (report.Streaming.Playback.annotation_bytes > 0);
  check (Alcotest.float 1e-9) "duration" 2. report.Streaming.Playback.duration_s

let test_playback_instantaneous_savings () =
  let clip = two_scene_clip () in
  let track = Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip in
  let series = Streaming.Playback.instantaneous_backlight_savings ~device track in
  check int "one value per frame" clip.Video.Clip.frame_count (Array.length series);
  (* Dark scene saves more than bright scene. *)
  check bool "dark saves more" true (series.(0) > series.(15));
  Array.iter (fun s -> check bool "in [0,1]" true (s >= 0. && s <= 1.)) series

let test_playback_quality_evaluation () =
  let clip = two_scene_clip () in
  let track = Annotation.Annotator.annotate ~device ~quality:Annotation.Quality_level.Lossless clip in
  let rig = Camera.Snapshot.noiseless_rig device in
  let verdicts =
    Streaming.Playback.evaluate_quality ~rig ~device ~clip ~track ~sample_every:4
  in
  check int "four samples" 4 (List.length verdicts);
  List.iter
    (fun (i, v) ->
      check bool
        (Format.asprintf "frame %d acceptable: %a" i Camera.Quality.pp_verdict v)
        true
        (Camera.Quality.acceptable v))
    verdicts

let test_playback_empty_rejected () =
  Alcotest.check_raises "empty registers"
    (Invalid_argument "Playback: empty register track") (fun () ->
      ignore
        (Streaming.Playback.run_with_registers ~device
           ~quality:Annotation.Quality_level.Lossless ~clip_name:"c" ~fps:8.
           ~annotation_bytes:0 [||]))

(* --- Dvfs_playback ------------------------------------------------------- *)

(* A cycle track with quiet P-frame stretches and periodic I-frame
   spikes, like a real gop structure. *)
let spiky_cycles ~frames ~gop ~quiet ~spike =
  Array.init frames (fun i -> if i mod gop = 0 then spike else quiet)

let test_dvfs_annotated_meets_deadlines () =
  let cycles = spiky_cycles ~frames:60 ~gop:12 ~quiet:4e6 ~spike:25e6 in
  let r =
    Streaming.Dvfs_playback.run ~fps:12. cycles
      Streaming.Dvfs_playback.Annotated_workload
  in
  check int "no misses" 0 r.Streaming.Dvfs_playback.deadline_misses;
  check bool "meaningful savings" true (r.Streaming.Dvfs_playback.savings > 0.3)

let test_dvfs_history_misses_spikes () =
  let cycles = spiky_cycles ~frames:60 ~gop:12 ~quiet:4e6 ~spike:25e6 in
  let r =
    Streaming.Dvfs_playback.run ~fps:12. cycles
      (Streaming.Dvfs_playback.History_max { window = 6; margin = 1.1 })
  in
  (* Every spike follows 11 quiet frames: the 6-frame window forgets
     the previous spike, so every gop boundary misses. *)
  check bool "misses at spikes" true (r.Streaming.Dvfs_playback.deadline_misses >= 4)

let test_dvfs_full_speed_baseline () =
  let cycles = spiky_cycles ~frames:24 ~gop:12 ~quiet:4e6 ~spike:25e6 in
  let r =
    Streaming.Dvfs_playback.run ~fps:12. cycles Streaming.Dvfs_playback.Always_full
  in
  check int "no misses at full speed" 0 r.Streaming.Dvfs_playback.deadline_misses;
  check (Alcotest.float 1e-9) "zero savings" 0. r.Streaming.Dvfs_playback.savings;
  check (Alcotest.float 1e-9) "mean frequency is top" 400.
    r.Streaming.Dvfs_playback.mean_frequency_mhz

let test_dvfs_annotated_beats_history_energy () =
  let cycles = spiky_cycles ~frames:120 ~gop:12 ~quiet:4e6 ~spike:25e6 in
  let run p = Streaming.Dvfs_playback.run ~fps:12. cycles p in
  let annotated = run Streaming.Dvfs_playback.Annotated_workload in
  let history =
    run (Streaming.Dvfs_playback.History_max { window = 6; margin = 1.1 })
  in
  check bool "annotated at most history energy" true
    (annotated.Streaming.Dvfs_playback.cpu_energy_mj
     <= history.Streaming.Dvfs_playback.cpu_energy_mj +. 1e-9)

let test_dvfs_decode_cycles_reflect_frame_sizes () =
  let profile =
    {
      Video.Profile.name = "dvfs-test";
      seed = 33;
      scenes =
        [
          Video.Profile.scene ~seconds:2.
            ~subjects:
              [
                { Video.Profile.level = 200; size = 150; speed = 12.; vertical_phase = 0.5 };
              ]
            ~noise_sigma:2.
            (Video.Profile.Vertical { top = 30; bottom = 90 });
        ];
    }
  in
  let clip = Video.Clip_gen.render ~width:48 ~height:32 ~fps:8. profile in
  let encoded =
    Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with gop = 8 } clip
  in
  let cycles = Streaming.Dvfs_playback.decode_cycles encoded in
  check int "one estimate per frame" clip.Video.Clip.frame_count (Array.length cycles);
  Array.iter (fun c -> check bool "positive cost" true (c > 0.)) cycles;
  (* The I frame must cost more than the following P frame. *)
  check bool "I costs more than P" true (cycles.(0) > cycles.(1))

let test_dvfs_annotation_bytes_small () =
  let cycles = spiky_cycles ~frames:300 ~gop:12 ~quiet:4e6 ~spike:25e6 in
  let bytes = Streaming.Dvfs_playback.annotation_bytes cycles in
  check bool "couple of bytes per frame" true (bytes > 300 && bytes < 4 * 300)

let test_dvfs_validation () =
  Alcotest.check_raises "empty track"
    (Invalid_argument "Dvfs_playback.run: empty cycle track") (fun () ->
      ignore
        (Streaming.Dvfs_playback.run ~fps:12. [||]
           Streaming.Dvfs_playback.Always_full))

(* --- Adaptive -------------------------------------------------------------------- *)

(* A clip whose quality levels genuinely differ (bright tails to clip),
   long enough for multiple scenes. *)
let adaptive_profiled =
  lazy
    (let profile =
       {
         Video.Profile.name = "adaptive-test";
         seed = 61;
         scenes =
           [
             Video.Profile.scene ~seconds:2. ~noise_sigma:2.
               ~highlights:{ Video.Profile.count = 3; peak = 200; radius = 40; drift = 0. }
               (Video.Profile.Flat 40);
             Video.Profile.scene ~seconds:2. ~noise_sigma:2.
               (Video.Profile.Flat 180);
             Video.Profile.scene ~seconds:2. ~noise_sigma:2.
               ~highlights:{ Video.Profile.count = 3; peak = 190; radius = 40; drift = 0. }
               (Video.Profile.Flat 30);
           ];
       }
     in
     Annotation.Annotator.profile (Video.Clip_gen.render ~width:32 ~height:24 ~fps:8. profile))

let test_adaptive_generous_battery_stays_lossless () =
  let o =
    Streaming.Adaptive.run ~device ~battery_mwh:10_000. (Lazy.force adaptive_profiled)
  in
  check bool "completed" true o.Streaming.Adaptive.completed;
  check (Alcotest.float 1e-12) "no quality lost" 0.
    o.Streaming.Adaptive.mean_quality_loss;
  check int "every frame played"
    (Lazy.force adaptive_profiled).Annotation.Annotator.total_frames
    o.Streaming.Adaptive.frames_played

let test_adaptive_tight_battery_escalates () =
  let profiled = Lazy.force adaptive_profiled in
  (* Battery sized between the lossless and most-aggressive needs. *)
  let energy quality =
    let track = Annotation.Annotator.annotate_profiled ~device ~quality profiled in
    let power =
      Streaming.Playback.power_trace ~device ~cpu_busy_fraction:0.6
        ~registers:(Annotation.Track.register_track track)
    in
    Array.fold_left ( +. ) 0. power /. 8. (* dt = 1/8 s *)
  in
  let lossless_mj = energy Annotation.Quality_level.Lossless in
  let aggressive_mj = energy Annotation.Quality_level.Loss_20 in
  check bool "levels differ on this content" true (aggressive_mj < lossless_mj *. 0.95);
  let battery_mwh = (lossless_mj +. aggressive_mj) /. 2. /. 3600. in
  let o = Streaming.Adaptive.run ~device ~battery_mwh profiled in
  check bool "completed by escalating" true o.Streaming.Adaptive.completed;
  check bool "some quality traded" true (o.Streaming.Adaptive.mean_quality_loss > 0.)

let test_adaptive_impossible_battery_dies () =
  let o =
    Streaming.Adaptive.run ~device ~battery_mwh:0.05 (Lazy.force adaptive_profiled)
  in
  check bool "did not complete" false o.Streaming.Adaptive.completed;
  check bool "partial playback" true
    (o.Streaming.Adaptive.frames_played
     < (Lazy.force adaptive_profiled).Annotation.Annotator.total_frames)

let test_adaptive_steps_contiguous () =
  let o =
    Streaming.Adaptive.run ~device ~battery_mwh:10_000. (Lazy.force adaptive_profiled)
  in
  let rec contiguous expected = function
    | [] -> true
    | s :: rest ->
      s.Streaming.Adaptive.first_frame = expected
      && contiguous (expected + s.Streaming.Adaptive.frame_count) rest
  in
  check bool "steps tile the clip" true (contiguous 0 o.Streaming.Adaptive.steps)

(* --- Session -------------------------------------------------------------------- *)

let moving_clip () =
  let profile =
    {
      Video.Profile.name = "transport-test";
      seed = 41;
      scenes =
        [
          Video.Profile.scene ~seconds:3. ~noise_sigma:1.5
            ~subjects:
              [
                { Video.Profile.level = 210; size = 160; speed = 12.; vertical_phase = 0.5 };
              ]
            (Video.Profile.Vertical { top = 30; bottom = 80 });
        ];
    }
  in
  Video.Clip_gen.render ~width:48 ~height:32 ~fps:8. profile


let test_session_clean_run () =
  let clip = moving_clip () in
  let config = Streaming.Session.default_config ~device in
  match Streaming.Session.run config clip with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check bool "annotations survived" true r.Streaming.Session.annotations_survived;
    check int "nothing concealed" 0 r.Streaming.Session.concealed_frames;
    check bool "backlight saves" true (r.Streaming.Session.backlight_savings > 0.1);
    check bool "cpu saves" true (r.Streaming.Session.cpu_savings > 0.1);
    check bool "radio saves" true (r.Streaming.Session.radio_savings > 0.1);
    check bool "device savings combine" true
      (r.Streaming.Session.device_savings > 0.15
       && r.Streaming.Session.device_savings < 0.9);
    check bool "energy consistent" true
      (r.Streaming.Session.device_energy_mj < r.Streaming.Session.baseline_energy_mj)

let test_session_lossy_run () =
  let clip = moving_clip () in
  let config =
    { (Streaming.Session.default_config ~device) with
      Streaming.Session.loss_rate = 0.05 }
  in
  match Streaming.Session.run config clip with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check bool "some frames concealed" true (r.Streaming.Session.concealed_frames > 0);
    check bool "psnr degraded but finite" true
      (r.Streaming.Session.video_mean_psnr > 20.
       && r.Streaming.Session.video_mean_psnr < 99.)

let test_session_annotation_loss_falls_back () =
  let clip = moving_clip () in
  (* A brutal side-channel loss rate: FEC cannot recover, the client
     must fall back to full backlight rather than guess. *)
  let rec find_failing_seed seed =
    if seed > 200 then Alcotest.fail "no failing seed found"
    else begin
      let config =
        { (Streaming.Session.default_config ~device) with
          Streaming.Session.loss_rate = 0.6; seed }
      in
      match Streaming.Session.run config clip with
      | Ok r when not r.Streaming.Session.annotations_survived -> r
      | Ok _ | Error _ -> find_failing_seed (seed + 1)
    end
  in
  let r = find_failing_seed 1 in
  check (Alcotest.float 1e-9) "no dimming without annotations" 0.
    r.Streaming.Session.backlight_savings

let test_session_client_mapping_equivalent () =
  let clip = moving_clip () in
  let run mapping =
    let config =
      { (Streaming.Session.default_config ~device) with Streaming.Session.mapping }
    in
    match Streaming.Session.run config clip with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let server = run Streaming.Negotiation.Server_side in
  let client = run Streaming.Negotiation.Client_side in
  check (Alcotest.float 1e-9) "same backlight savings either mapping"
    server.Streaming.Session.backlight_savings
    client.Streaming.Session.backlight_savings

let test_session_ramp_option () =
  let clip = moving_clip () in
  let config =
    { (Streaming.Session.default_config ~device) with
      Streaming.Session.ramp_step = Some 8 }
  in
  match Streaming.Session.run config clip with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* Ramping only ever raises registers: savings shrink or hold. *)
    let plain =
      match Streaming.Session.run (Streaming.Session.default_config ~device) clip with
      | Ok p -> p
      | Error e -> Alcotest.fail e
    in
    check bool "ramp never increases savings" true
      (r.Streaming.Session.backlight_savings
       <= plain.Streaming.Session.backlight_savings +. 1e-9)

(* --- Fec ---------------------------------------------------------------------- *)

let sample_payload n =
  String.init n (fun i -> Char.chr ((i * 37) mod 256))

let test_fec_no_loss_roundtrip () =
  let payload = sample_payload 300 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
  Alcotest.(check (result string string))
    "identity" (Ok payload)
    (Streaming.Fec.recover protected_payload ~present)

let test_fec_single_loss_per_group_recovers () =
  let payload = sample_payload 300 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  (* Lose one data packet in each group (indices 0 and 4). *)
  let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
  present.(0) <- None;
  present.(4) <- None;
  Alcotest.(check (result string string))
    "recovered" (Ok payload)
    (Streaming.Fec.recover protected_payload ~present)

let test_fec_recovers_short_tail_packet () =
  (* 130 bytes at 64-byte packets: the last packet is 2 bytes; losing
     it exercises the trim on reconstruction. *)
  let payload = sample_payload 130 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
  present.(2) <- None;
  Alcotest.(check (result string string))
    "tail recovered" (Ok payload)
    (Streaming.Fec.recover protected_payload ~present)

let test_fec_double_loss_fails () =
  let payload = sample_payload 300 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
  present.(0) <- None;
  present.(1) <- None;
  check bool "two losses in a group unrecoverable" true
    (Result.is_error (Streaming.Fec.recover protected_payload ~present))

let test_fec_parity_loss_harmless () =
  let payload = sample_payload 300 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
  (* Lose only parity packets. *)
  for i = protected_payload.Streaming.Fec.data_packets
        to Array.length present - 1 do
    present.(i) <- None
  done;
  Alcotest.(check (result string string))
    "data alone suffices" (Ok payload)
    (Streaming.Fec.recover protected_payload ~present)

let test_fec_overhead_bounded () =
  let payload = sample_payload 1024 in
  let protected_payload = Streaming.Fec.protect ~packet_size:64 ~group_size:4 payload in
  (* One 64-byte parity per 4 x 64-byte data: 25% overhead. *)
  check bool "overhead about a quarter" true
    (Streaming.Fec.overhead_ratio protected_payload < 0.3)

let prop_fec_any_single_loss_recovers =
  QCheck2.Test.make ~name:"fec recovers any single packet loss"
    QCheck2.Gen.(pair (1 -- 500) (0 -- 100))
    (fun (len, salt) ->
      let payload = sample_payload len in
      let protected_payload = Streaming.Fec.protect ~packet_size:32 ~group_size:3 payload in
      let n = Array.length protected_payload.Streaming.Fec.packets in
      let lost_index = salt mod n in
      let present = Array.map Option.some protected_payload.Streaming.Fec.packets in
      present.(lost_index) <- None;
      Streaming.Fec.recover protected_payload ~present = Ok payload)

(* --- Transport -------------------------------------------------------------- *)

let packetized_clip ?(gop = 8) () =
  let clip = moving_clip () in
  let encoded =
    Codec.Encoder.encode_clip ~params:{ Codec.Stream.default_params with gop } clip
  in
  let clean = Codec.Decoder.decode_exn encoded.Codec.Encoder.data in
  match Streaming.Transport.packetize encoded with
  | Ok p -> (p, clean)
  | Error e -> Alcotest.fail e

let test_transport_lossless_matches_plain_decode () =
  let packetized, clean = packetized_clip () in
  let lost = Array.make (Array.length packetized.Streaming.Transport.payloads) false in
  match Streaming.Transport.decode_with_concealment packetized ~lost with
  | Error e -> Alcotest.fail e
  | Ok received ->
    check int "nothing concealed" 0 received.Streaming.Transport.concealed;
    check int "nothing drifted" 0 received.Streaming.Transport.drifted;
    Array.iteri
      (fun i picture ->
        check bool
          (Printf.sprintf "frame %d identical" i)
          true
          (Image.Raster.equal picture clean.Codec.Decoder.frames.(i)))
      received.Streaming.Transport.pictures

let test_transport_concealment_recovers_at_i_frame () =
  let packetized, clean = packetized_clip ~gop:8 () in
  let n = Array.length packetized.Streaming.Transport.payloads in
  let lost = Array.make n false in
  lost.(3) <- true;
  match Streaming.Transport.decode_with_concealment packetized ~lost with
  | Error e -> Alcotest.fail e
  | Ok received ->
    check int "one concealed" 1 received.Streaming.Transport.concealed;
    (* Frames 4-7 drift; frame 8 is the next I-frame and recovers. *)
    check int "drift until the next I" 4 received.Streaming.Transport.drifted;
    let psnr i =
      Image.Metrics.psnr clean.Codec.Decoder.frames.(i)
        received.Streaming.Transport.pictures.(i)
    in
    check bool "pre-loss frame intact" true (psnr 2 = infinity);
    check bool "drifting frame degraded" true (psnr 5 < 50.);
    check bool "recovered at I frame" true (psnr 8 = infinity)

let test_transport_first_frame_loss_fails () =
  let packetized, _ = packetized_clip () in
  let n = Array.length packetized.Streaming.Transport.payloads in
  let lost = Array.make n false in
  lost.(0) <- true;
  check bool "unbootstrappable session rejected" true
    (Result.is_error (Streaming.Transport.decode_with_concealment packetized ~lost))

let test_transport_bernoulli_deterministic () =
  let a = Streaming.Transport.bernoulli_loss ~rate:0.3 ~seed:5 ~frames:100 in
  let b = Streaming.Transport.bernoulli_loss ~rate:0.3 ~seed:5 ~frames:100 in
  check bool "same seed, same mask" true (a = b);
  let none = Streaming.Transport.bernoulli_loss ~rate:0. ~seed:5 ~frames:50 in
  check bool "zero rate loses nothing" true (Array.for_all not none)

let test_transport_random_loss_never_crashes () =
  let packetized, _ = packetized_clip () in
  let n = Array.length packetized.Streaming.Transport.payloads in
  for seed = 0 to 20 do
    let lost = Streaming.Transport.bernoulli_loss ~rate:0.3 ~seed ~frames:n in
    lost.(0) <- false;
    match Streaming.Transport.decode_with_concealment packetized ~lost with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("unexpected decode failure: " ^ e)
  done

(* --- Planner --------------------------------------------------------------- *)

(* Quality levels only differentiate when scenes have bright tails the
   budget can clip. *)
let dark_profiled =
  lazy
    (let profile =
       {
         Video.Profile.name = "planner-test";
         seed = 23;
         scenes =
           [
             Video.Profile.scene ~seconds:2. ~noise_sigma:2.
               ~highlights:{ Video.Profile.count = 3; peak = 200; radius = 40; drift = 0. }
               (Video.Profile.Flat 40);
           ];
       }
     in
     Annotation.Annotator.profile (Video.Clip_gen.render ~width:32 ~height:24 ~fps:8. profile))

let test_planner_lossless_when_easy () =
  (* A huge battery or a tiny target: the least lossy level wins. *)
  let battery = Power.Battery.make ~capacity_mwh:100_000. in
  match
    Streaming.Planner.plan ~battery ~target_hours:1. ~device (Lazy.force dark_profiled)
  with
  | Ok p ->
    check bool "lossless suffices" true
      (p.Streaming.Planner.quality = Annotation.Quality_level.Lossless)
  | Error _ -> Alcotest.fail "plan should succeed"

let test_planner_escalates_quality () =
  (* Pick a target between the lossless and max-loss runtimes: the
     planner must escalate past lossless but still succeed. *)
  let profiled = Lazy.force dark_profiled in
  let battery = Power.Battery.ipaq_standard in
  let runtime quality =
    Power.Battery.runtime_hours battery
      ~average_power_mw:(Streaming.Planner.project ~device ~quality profiled)
  in
  let lossless_h = runtime Annotation.Quality_level.Lossless in
  let aggressive_h = runtime Annotation.Quality_level.Loss_20 in
  check bool "losing quality buys runtime" true (aggressive_h > lossless_h);
  let target = (lossless_h +. aggressive_h) /. 2. in
  match Streaming.Planner.plan ~battery ~target_hours:target ~device profiled with
  | Ok p ->
    check bool "escalated beyond lossless" true
      (Annotation.Quality_level.compare p.Streaming.Planner.quality
         Annotation.Quality_level.Lossless
       > 0);
    check bool "meets target" true
      (p.Streaming.Planner.projected_runtime_hours >= target)
  | Error _ -> Alcotest.fail "target between endpoints must be plannable"

let test_planner_reports_shortfall () =
  let battery = Power.Battery.make ~capacity_mwh:10. in
  match
    Streaming.Planner.plan ~battery ~target_hours:100. ~device
      (Lazy.force dark_profiled)
  with
  | Ok _ -> Alcotest.fail "impossible target must fail"
  | Error best ->
    check bool "best effort is the most aggressive level" true
      (best.Streaming.Planner.quality = Annotation.Quality_level.Loss_20)

let test_planner_validation () =
  Alcotest.check_raises "bad target"
    (Invalid_argument "Planner.plan: target must be positive") (fun () ->
      ignore
        (Streaming.Planner.plan ~battery:Power.Battery.ipaq_standard ~target_hours:0.
           ~device (Lazy.force dark_profiled)))

(* --- Ramp ----------------------------------------------------------------- *)

let test_ramp_limits_dimming () =
  let registers = [| 200; 200; 40; 40; 40; 40; 40 |] in
  let smoothed = Streaming.Ramp.slew_limit ~max_dim_step:50 registers in
  Alcotest.(check (array int))
    "ramped descent"
    [| 200; 200; 150; 100; 50; 40; 40 |]
    smoothed;
  check int "largest step bounded" 50 (Streaming.Ramp.largest_dim_step smoothed);
  check int "original step" 160 (Streaming.Ramp.largest_dim_step registers)

let test_ramp_brightening_immediate () =
  let registers = [| 40; 240; 240 |] in
  let smoothed = Streaming.Ramp.slew_limit ~max_dim_step:10 registers in
  Alcotest.(check (array int)) "jump up untouched" registers smoothed

let test_ramp_never_below_target () =
  let registers = [| 250; 10; 250; 10; 10 |] in
  let smoothed = Streaming.Ramp.slew_limit ~max_dim_step:30 registers in
  Array.iteri
    (fun i r -> check bool "pointwise at least target" true (r >= registers.(i)))
    smoothed

let test_ramp_cost_small () =
  (* Scene-length plateaus with moderate drops: the regime the
     annotator produces. *)
  let registers = Array.init 120 (fun i -> if i / 40 mod 2 = 0 then 220 else 150) in
  let cost = Streaming.Ramp.smoothing_cost ~device ~max_dim_step:8 registers in
  check bool "energy overhead below 5%" true
    (cost.Streaming.Ramp.extra_energy_fraction < 0.05);
  check bool "step reduced" true
    (cost.Streaming.Ramp.smoothed_largest_dim_step
     < cost.Streaming.Ramp.original_largest_dim_step)

let test_ramp_validation () =
  Alcotest.check_raises "bad step" (Invalid_argument "Ramp.slew_limit: step must be positive")
    (fun () -> ignore (Streaming.Ramp.slew_limit ~max_dim_step:0 [| 1 |]))

(* --- Proxy ---------------------------------------------------------------- *)

let test_proxy_transcode_shrinks_stream () =
  let clip = two_scene_clip () in
  let original = Codec.Encoder.encode_clip clip in
  match
    Streaming.Proxy.transcode
      ~params:{ Codec.Stream.default_params with qp = 24 } original
  with
  | Error e -> Alcotest.fail e
  | Ok coarser ->
    check bool "coarser quantiser shrinks the stream" true
      (Codec.Encoder.total_bytes coarser < Codec.Encoder.total_bytes original);
    check int "frame count preserved" original.Codec.Encoder.frame_count
      coarser.Codec.Encoder.frame_count

let test_proxy_transcode_rejects_garbage () =
  let fake =
    {
      Codec.Encoder.data = "garbage";
      width = 8;
      height = 8;
      fps = 10.;
      frame_count = 1;
      params = Codec.Stream.default_params;
      frame_sizes_bits = [| 8 |];
      frame_types = [| Codec.Stream.I_frame |];
    }
  in
  check bool "corrupt input rejected" true
    (Result.is_error
       (Streaming.Proxy.transcode ~params:Codec.Stream.default_params fake))

let test_proxy_live_session () =
  let clip = two_scene_clip () in
  let session =
    Streaming.Proxy.annotate_live ~lookahead:8 ~device
      ~quality:Annotation.Quality_level.Loss_10 clip
  in
  check (Alcotest.float 1e-9) "latency" 1. session.Streaming.Proxy.added_latency_s;
  check bool "annotations decode" true
    (Result.is_ok (Annotation.Encoding.decode session.Streaming.Proxy.annotation_bytes));
  check int "track covers clip" clip.Video.Clip.frame_count
    session.Streaming.Proxy.track.Annotation.Track.total_frames

(* --- Radio ---------------------------------------------------------------- *)

let radio_link = Streaming.Netsim.wlan_80211b

(* Streams with small P frames and a periodic large I frame. *)
let spiky_bytes ~frames ~gop ~quiet ~spike =
  Array.init frames (fun i -> if i mod gop = 0 then spike else quiet)

let test_radio_gop_bytes () =
  let bytes = Streaming.Radio.gop_bytes ~gop:3 [| 1; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check (array int)) "grouped" [| 6; 15; 7 |] bytes;
  Alcotest.check_raises "bad gop" (Invalid_argument "Radio.gop_bytes: gop must be positive")
    (fun () -> ignore (Streaming.Radio.gop_bytes ~gop:0 [| 1 |]))

let test_radio_always_on_baseline () =
  let frame_bytes = spiky_bytes ~frames:48 ~gop:12 ~quiet:400 ~spike:4000 in
  let r =
    Streaming.Radio.run ~link:radio_link ~fps:12. ~gop:12 ~frame_bytes
      Streaming.Radio.Always_on
  in
  check (Alcotest.float 1e-9) "no savings" 0. r.Streaming.Radio.savings;
  check int "never late" 0 r.Streaming.Radio.late_frames;
  check (Alcotest.float 1e-9) "never dozes" 0. r.Streaming.Radio.sleep_fraction

let test_radio_annotated_sleeps_without_lateness () =
  let frame_bytes = spiky_bytes ~frames:48 ~gop:12 ~quiet:400 ~spike:4000 in
  let r =
    Streaming.Radio.run ~link:radio_link ~fps:12. ~gop:12 ~frame_bytes
      Streaming.Radio.Annotated_bursts
  in
  check int "never late" 0 r.Streaming.Radio.late_frames;
  check bool "sleeps most of the time" true (r.Streaming.Radio.sleep_fraction > 0.8);
  check bool "large savings" true (r.Streaming.Radio.savings > 0.5)

let test_radio_history_late_frames () =
  (* Burst sizes alternate hugely between GOPs, so the previous-burst
     window always under-provisions the big ones. *)
  let frame_bytes =
    Array.init 96 (fun i -> if i / 12 mod 2 = 0 then 200 else 5000)
  in
  let r =
    Streaming.Radio.run ~link:radio_link ~fps:12. ~gop:12 ~frame_bytes
      (Streaming.Radio.History_bursts { margin = 1.1 })
  in
  check bool "late frames at big bursts" true (r.Streaming.Radio.late_frames > 0)

let test_radio_energy_ordering () =
  let frame_bytes = spiky_bytes ~frames:96 ~gop:12 ~quiet:400 ~spike:4000 in
  let run p = Streaming.Radio.run ~link:radio_link ~fps:12. ~gop:12 ~frame_bytes p in
  let on = run Streaming.Radio.Always_on in
  let annotated = run Streaming.Radio.Annotated_bursts in
  let history = run (Streaming.Radio.History_bursts { margin = 1.2 }) in
  check bool "annotated cheapest" true
    (annotated.Streaming.Radio.radio_energy_mj
     <= history.Streaming.Radio.radio_energy_mj +. 1e-9);
  check bool "history cheaper than always-on" true
    (history.Streaming.Radio.radio_energy_mj < on.Streaming.Radio.radio_energy_mj)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"lower registers never reduce savings"
        QCheck2.Gen.(pair (1 -- 50) (0 -- 200))
        (fun (frames, r) ->
          let report reg =
            Streaming.Playback.run_with_registers ~device
              ~quality:Annotation.Quality_level.Lossless ~clip_name:"c" ~fps:8.
              ~annotation_bytes:0
              (Array.make frames reg)
          in
          (report r).Streaming.Playback.backlight_savings
          >= (report (r + 55)).Streaming.Playback.backlight_savings -. 1e-9);
      QCheck2.Test.make ~name:"wire bytes monotone in payload"
        QCheck2.Gen.(pair (0 -- 100_000) (0 -- 100_000))
        (fun (a, b) ->
          let link = Streaming.Netsim.wlan_80211b in
          let lo = min a b and hi = max a b in
          Streaming.Netsim.wire_bytes link lo <= Streaming.Netsim.wire_bytes link hi);
    ]

(* --- Session tick machine ------------------------------------------------- *)

(* [Session.run] is reimplemented on the poll-able machine; these pin
   the equivalence the refactor promised — stepping by hand produces
   the same printed report and the same decision journal, byte for
   byte, as the one-shot entry point. *)

let with_session_journal f =
  Obs.enable ();
  let j = Obs.Journal.create () in
  Obs.Journal.install j;
  let r = Fun.protect ~finally:Obs.Journal.uninstall f in
  (r, Obs.Journal.to_string j, Obs.Journal.events j)

let test_session_machine_equals_run () =
  let clip = moving_clip () in
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.loss_rate = 0.03;
    }
  in
  let run_report, run_journal, _ =
    with_session_journal (fun () -> Streaming.Session.run config clip)
  in
  let machine_report, machine_journal, _ =
    with_session_journal (fun () ->
        let m = Streaming.Session.create config clip in
        let steps = ref 0 in
        let rec drive () =
          incr steps;
          match Streaming.Session.step m with `Running -> drive () | `Done -> ()
        in
        drive ();
        check bool "a tick per frame plus setup and finalize" true
          (!steps >= Streaming.Session.frames m + 2);
        match Streaming.Session.result m with
        | Some r -> r
        | None -> Alcotest.fail "machine reported `Done without a result")
  in
  (match (run_report, machine_report) with
  | Ok a, Ok b ->
    check Alcotest.string "byte-identical printed reports"
      (Format.asprintf "%a" Streaming.Session.pp_report a)
      (Format.asprintf "%a" Streaming.Session.pp_report b)
  | Error e, _ | _, Error e -> Alcotest.fail e);
  check Alcotest.string "byte-identical journals" run_journal machine_journal

let test_session_machine_progress_order () =
  let clip = two_scene_clip () in
  let m = Streaming.Session.create (Streaming.Session.default_config ~device) clip in
  check bool "starts in setup" true
    (match Streaming.Session.progress m with `Setup -> true | _ -> false);
  let saw_frame = ref false and saw_finalize = ref false in
  let rec drive () =
    (match Streaming.Session.progress m with
    | `Frame _ -> saw_frame := true
    | `Finalize -> saw_finalize := true
    | `Setup | `Complete -> ());
    match Streaming.Session.step m with `Running -> drive () | `Done -> ()
  in
  drive ();
  check bool "visited the frame loop" true !saw_frame;
  check bool "visited finalize" true !saw_finalize;
  check bool "complete at the end" true
    (match Streaming.Session.progress m with `Complete -> true | _ -> false);
  check bool "result available" true (Streaming.Session.result m <> None)

(* The clamp regressions: hostile numeric inputs (fps 0, fps nan, a
   negative stage deadline) must journal as clamped non-negative
   integers instead of crashing int_of_float on nan/overflow. *)

let session_start_fps_milli clip =
  let config = Streaming.Session.default_config ~device in
  (* Downstream stages may legitimately reject a degenerate fps
     (Track.make raises on 0.); the clamp under test is at the
     journaling site, which records Session_start first. *)
  let _, _, events =
    with_session_journal (fun () ->
        try ignore (Streaming.Session.run config clip)
        with Invalid_argument _ -> ())
  in
  match
    List.find_map
      (fun (e : Obs.Journal.event) ->
        match e.Obs.Journal.kind with
        | Obs.Journal.Session_start { fps_milli; _ } -> Some fps_milli
        | _ -> None)
      events
  with
  | Some v -> v
  | None -> Alcotest.fail "no Session_start event journaled"

let test_session_fps_zero_clamps () =
  let clip = { (two_scene_clip ()) with Video.Clip.fps = 0. } in
  check int "fps 0 journals as 0" 0 (session_start_fps_milli clip)

let test_session_fps_nan_clamps () =
  let clip = { (two_scene_clip ()) with Video.Clip.fps = Float.nan } in
  check int "fps nan journals as 0" 0 (session_start_fps_milli clip)

let test_session_negative_deadline_clamps () =
  let clip = two_scene_clip () in
  let profile =
    {
      Resilience.Profile.empty with
      Resilience.Profile.stage_deadline_s = Some (-0.01);
    }
  in
  let config =
    {
      (Streaming.Session.default_config ~device) with
      Streaming.Session.fault = Some (Streaming.Fault.bernoulli ~rate:0.3);
      resilience = Some profile;
    }
  in
  let report, _, events =
    with_session_journal (fun () -> Streaming.Session.run config clip)
  in
  (match report with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("session aborted: " ^ e));
  match
    List.find_map
      (fun (e : Obs.Journal.event) ->
        match e.Obs.Journal.kind with
        | Obs.Journal.Watchdog_trip { budget_us; over_us; _ } ->
          Some (budget_us, over_us)
        | _ -> None)
      events
  with
  | None ->
    Alcotest.fail "negative deadline never tripped the watchdog"
  | Some (budget_us, over_us) ->
    check int "negative budget clamps to 0" 0 budget_us;
    check bool "overrun is non-negative" true (over_us >= 0)

(* --- Ramp zero-denominator cost ------------------------------------------- *)

let test_ramp_cost_all_off_zero_floor () =
  (* A backlight that truly draws nothing when fully off: the old
     fraction-only cost divided by zero here. *)
  let zero_floor =
    { device with Display.Device.backlight_power_floor_mw = 0. }
  in
  let cost =
    Streaming.Ramp.smoothing_cost ~device:zero_floor ~max_dim_step:8
      (Array.make 48 0)
  in
  check (Alcotest.float 0.) "fraction is exactly zero, not nan" 0.
    cost.Streaming.Ramp.extra_energy_fraction;
  check (Alcotest.float 0.) "no absolute extra energy" 0.
    cost.Streaming.Ramp.extra_energy_mj

let test_ramp_cost_absolute_energy () =
  let registers = Array.init 96 (fun i -> if i < 48 then 230 else 40) in
  let cost = Streaming.Ramp.smoothing_cost ~device ~max_dim_step:4 registers in
  check bool "smoothing costs absolute energy" true
    (Float.is_finite cost.Streaming.Ramp.extra_energy_mj
    && cost.Streaming.Ramp.extra_energy_mj > 0.);
  check bool "fraction finite alongside" true
    (Float.is_finite cost.Streaming.Ramp.extra_energy_fraction
    && cost.Streaming.Ramp.extra_energy_fraction > 0.)

let test_ramp_cost_fps_validation () =
  Alcotest.check_raises "nan fps"
    (Invalid_argument "Ramp.smoothing_cost: fps must be positive") (fun () ->
      ignore
        (Streaming.Ramp.smoothing_cost ~fps:Float.nan ~device ~max_dim_step:8
           (Array.make 8 100)));
  Alcotest.check_raises "zero fps"
    (Invalid_argument "Ramp.smoothing_cost: fps must be positive") (fun () ->
      ignore
        (Streaming.Ramp.smoothing_cost ~fps:0. ~device ~max_dim_step:8
           (Array.make 8 100)))

let () =
  Alcotest.run "streaming"
    [
      ( "netsim",
        [
          Alcotest.test_case "packet count" `Quick test_netsim_packet_count;
          Alcotest.test_case "wire bytes" `Quick test_netsim_wire_bytes;
          Alcotest.test_case "annotation overhead" `Quick
            test_netsim_annotation_overhead_small;
          Alcotest.test_case "validation" `Quick test_netsim_validation;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "accepts grid quality" `Quick
            test_negotiation_accepts_grid_quality;
          Alcotest.test_case "snaps custom quality" `Quick
            test_negotiation_snaps_custom_quality;
          Alcotest.test_case "client-side mapping" `Quick
            test_negotiation_client_side_mapping;
        ] );
      ( "server",
        [
          Alcotest.test_case "catalog" `Quick test_server_catalog;
          Alcotest.test_case "prepare" `Quick test_server_prepare;
          Alcotest.test_case "client-side mapping" `Quick test_server_client_side_mapping;
          Alcotest.test_case "profile cached" `Quick test_server_profile_cached;
          Alcotest.test_case "cache hit/miss" `Quick test_server_cache_hit_miss;
          Alcotest.test_case "scene params bypass cache" `Quick
            test_server_scene_params_bypass_cache;
          Alcotest.test_case "prepare_many stress" `Quick
            test_server_prepare_many_stress;
          Alcotest.test_case "prepare_many bulkhead stress" `Quick
            test_server_prepare_many_bulkhead_stress;
          Alcotest.test_case "encode video" `Quick test_server_encode_video;
        ] );
      ( "playback",
        [
          Alcotest.test_case "full backlight baseline" `Quick
            test_playback_full_backlight_baseline;
          Alcotest.test_case "dimming saves" `Quick test_playback_dimmed_saves;
          Alcotest.test_case "total tracks share" `Quick
            test_playback_total_tracks_backlight_share;
          Alcotest.test_case "run on clip" `Quick test_playback_run_on_clip;
          Alcotest.test_case "instantaneous savings" `Quick
            test_playback_instantaneous_savings;
          Alcotest.test_case "quality evaluation" `Quick test_playback_quality_evaluation;
          Alcotest.test_case "empty rejected" `Quick test_playback_empty_rejected;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "generous battery lossless" `Quick
            test_adaptive_generous_battery_stays_lossless;
          Alcotest.test_case "tight battery escalates" `Quick
            test_adaptive_tight_battery_escalates;
          Alcotest.test_case "impossible battery dies" `Quick
            test_adaptive_impossible_battery_dies;
          Alcotest.test_case "steps contiguous" `Quick test_adaptive_steps_contiguous;
        ] );
      ( "session",
        [
          Alcotest.test_case "clean run" `Quick test_session_clean_run;
          Alcotest.test_case "lossy run" `Quick test_session_lossy_run;
          Alcotest.test_case "annotation loss fallback" `Quick
            test_session_annotation_loss_falls_back;
          Alcotest.test_case "client mapping equivalent" `Quick
            test_session_client_mapping_equivalent;
          Alcotest.test_case "ramp option" `Quick test_session_ramp_option;
        ] );
      ( "session machine",
        [
          Alcotest.test_case "run equals stepped machine" `Quick
            test_session_machine_equals_run;
          Alcotest.test_case "progress order" `Quick
            test_session_machine_progress_order;
          Alcotest.test_case "fps 0 clamps in journal" `Quick
            test_session_fps_zero_clamps;
          Alcotest.test_case "fps nan clamps in journal" `Quick
            test_session_fps_nan_clamps;
          Alcotest.test_case "negative stage deadline clamps" `Quick
            test_session_negative_deadline_clamps;
        ] );
      ( "fec",
        [
          Alcotest.test_case "no loss roundtrip" `Quick test_fec_no_loss_roundtrip;
          Alcotest.test_case "single loss per group" `Quick
            test_fec_single_loss_per_group_recovers;
          Alcotest.test_case "short tail packet" `Quick test_fec_recovers_short_tail_packet;
          Alcotest.test_case "double loss fails" `Quick test_fec_double_loss_fails;
          Alcotest.test_case "parity loss harmless" `Quick test_fec_parity_loss_harmless;
          Alcotest.test_case "overhead bounded" `Quick test_fec_overhead_bounded;
          QCheck_alcotest.to_alcotest prop_fec_any_single_loss_recovers;
        ] );
      ( "transport",
        [
          Alcotest.test_case "lossless equals plain decode" `Quick
            test_transport_lossless_matches_plain_decode;
          Alcotest.test_case "recovery at I frame" `Quick
            test_transport_concealment_recovers_at_i_frame;
          Alcotest.test_case "first-frame loss rejected" `Quick
            test_transport_first_frame_loss_fails;
          Alcotest.test_case "deterministic loss" `Quick
            test_transport_bernoulli_deterministic;
          Alcotest.test_case "random loss never crashes" `Quick
            test_transport_random_loss_never_crashes;
        ] );
      ( "planner",
        [
          Alcotest.test_case "lossless when easy" `Quick test_planner_lossless_when_easy;
          Alcotest.test_case "escalates quality" `Quick test_planner_escalates_quality;
          Alcotest.test_case "reports shortfall" `Quick test_planner_reports_shortfall;
          Alcotest.test_case "validation" `Quick test_planner_validation;
        ] );
      ( "ramp",
        [
          Alcotest.test_case "limits dimming" `Quick test_ramp_limits_dimming;
          Alcotest.test_case "brightening immediate" `Quick test_ramp_brightening_immediate;
          Alcotest.test_case "never below target" `Quick test_ramp_never_below_target;
          Alcotest.test_case "cost small" `Quick test_ramp_cost_small;
          Alcotest.test_case "validation" `Quick test_ramp_validation;
          Alcotest.test_case "all-off zero-floor cost" `Quick
            test_ramp_cost_all_off_zero_floor;
          Alcotest.test_case "absolute extra energy" `Quick
            test_ramp_cost_absolute_energy;
          Alcotest.test_case "fps validation" `Quick
            test_ramp_cost_fps_validation;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "transcode shrinks" `Quick test_proxy_transcode_shrinks_stream;
          Alcotest.test_case "transcode rejects garbage" `Quick
            test_proxy_transcode_rejects_garbage;
          Alcotest.test_case "live session" `Quick test_proxy_live_session;
        ] );
      ( "radio",
        [
          Alcotest.test_case "gop grouping" `Quick test_radio_gop_bytes;
          Alcotest.test_case "always-on baseline" `Quick test_radio_always_on_baseline;
          Alcotest.test_case "annotated sleeps" `Quick
            test_radio_annotated_sleeps_without_lateness;
          Alcotest.test_case "history lateness" `Quick test_radio_history_late_frames;
          Alcotest.test_case "energy ordering" `Quick test_radio_energy_ordering;
        ] );
      ( "dvfs_playback",
        [
          Alcotest.test_case "annotated meets deadlines" `Quick
            test_dvfs_annotated_meets_deadlines;
          Alcotest.test_case "history misses spikes" `Quick test_dvfs_history_misses_spikes;
          Alcotest.test_case "full-speed baseline" `Quick test_dvfs_full_speed_baseline;
          Alcotest.test_case "annotated beats history" `Quick
            test_dvfs_annotated_beats_history_energy;
          Alcotest.test_case "decode cycle estimates" `Quick
            test_dvfs_decode_cycles_reflect_frame_sizes;
          Alcotest.test_case "annotation bytes" `Quick test_dvfs_annotation_bytes_small;
          Alcotest.test_case "validation" `Quick test_dvfs_validation;
        ] );
      ("properties", qtests);
    ]
