(* Tests for the observability layer: instrument semantics (including
   concurrent updates), registry snapshots and their JSON round-trip,
   span nesting and timing, the log ring buffer, and the contract that
   instrumentation never changes what the simulation reports. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let flt = Alcotest.float 1e-9

(* Every test that records runs inside [Obs.with_enabled] and uses a
   fresh registry where possible, so tests stay independent of each
   other and of the process-global default registry. *)

(* --- counters ----------------------------------------------------------- *)

let test_counter_basic () =
  Obs.with_enabled @@ fun () ->
  let c = Obs.Metrics.Counter.create () in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.incr c ~by:41;
  check int "accumulated" 42 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.incr c ~by:(-5);
  check int "negative increment dropped" 42 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.reset c;
  check int "reset" 0 (Obs.Metrics.Counter.value c)

let test_counter_disabled_is_dropped () =
  Obs.disable ();
  let c = Obs.Metrics.Counter.create () in
  Obs.Metrics.Counter.incr c ~by:1000;
  check int "update dropped while disabled" 0 (Obs.Metrics.Counter.value c)

let test_counter_concurrent () =
  Obs.with_enabled @@ fun () ->
  let c = Obs.Metrics.Counter.create () in
  let per_domain = 10_000 and domains = 4 in
  let spawned =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join spawned;
  check int "no lost increments" (domains * per_domain)
    (Obs.Metrics.Counter.value c)

(* --- gauges ------------------------------------------------------------- *)

let test_gauge () =
  Obs.with_enabled @@ fun () ->
  let g = Obs.Metrics.Gauge.create () in
  Obs.Metrics.Gauge.set g 3.5;
  check flt "set" 3.5 (Obs.Metrics.Gauge.value g);
  Obs.Metrics.Gauge.add g (-1.25);
  check flt "add" 2.25 (Obs.Metrics.Gauge.value g);
  Obs.Metrics.Gauge.reset g;
  check flt "reset" 0. (Obs.Metrics.Gauge.value g)

let test_gauge_concurrent_add () =
  Obs.with_enabled @@ fun () ->
  let g = Obs.Metrics.Gauge.create () in
  let per_domain = 5_000 and domains = 4 in
  let spawned =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.Gauge.add g 1.
            done))
  in
  List.iter Domain.join spawned;
  check flt "CAS add loses nothing"
    (float_of_int (domains * per_domain))
    (Obs.Metrics.Gauge.value g)

(* --- histograms --------------------------------------------------------- *)

let test_histogram_buckets () =
  Obs.with_enabled @@ fun () ->
  let h = Obs.Metrics.Histogram.create ~buckets:[| 1.; 2.; 5. |] in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0.5; 1.; 1.5; 10. ];
  check int "count" 4 (Obs.Metrics.Histogram.count h);
  check flt "sum" 13. (Obs.Metrics.Histogram.sum h);
  let counts = Obs.Metrics.Histogram.bucket_counts h in
  (* Bounds are inclusive: 1.0 lands in the <=1 bucket. *)
  check int "bucket <=1" 2 (snd counts.(0));
  check int "bucket <=2" 1 (snd counts.(1));
  check int "bucket <=5" 0 (snd counts.(2));
  check int "overflow" 1 (Obs.Metrics.Histogram.overflow h);
  Obs.Metrics.Histogram.reset h;
  check int "reset count" 0 (Obs.Metrics.Histogram.count h);
  check flt "reset sum" 0. (Obs.Metrics.Histogram.sum h)

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Obs histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Obs.Metrics.Histogram.create ~buckets:[| 1.; 1. |]));
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Obs histogram: no buckets") (fun () ->
      ignore (Obs.Metrics.Histogram.create ~buckets:[||]))

(* --- registry ----------------------------------------------------------- *)

let test_registry_get_or_create () =
  Obs.with_enabled @@ fun () ->
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter ~registry:r "requests_total" [ ("op", "read") ] in
  let c2 = Obs.Registry.counter ~registry:r "requests_total" [ ("op", "read") ] in
  Obs.Metrics.Counter.incr c1;
  Obs.Metrics.Counter.incr c2;
  check int "same series behind both handles" 2 (Obs.Metrics.Counter.value c1);
  ignore (Obs.Registry.counter ~registry:r "requests_total" [ ("op", "write") ]);
  ignore (Obs.Registry.gauge ~registry:r "depth" []);
  check int "two families" 2 (Obs.Registry.family_count ~registry:r ())

let test_registry_kind_mismatch () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry:r "thing" []);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.Registry: thing is a counter, requested as gauge")
    (fun () -> ignore (Obs.Registry.gauge ~registry:r "thing" []))

let test_registry_snapshot_and_reset () =
  Obs.with_enabled @@ fun () ->
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry:r "events_total" [] in
  let g = Obs.Registry.gauge ~registry:r "level" [] in
  Obs.Metrics.Counter.incr c ~by:7;
  Obs.Metrics.Gauge.set g 1.5;
  (match Obs.Registry.snapshot ~registry:r () with
  | [ events; level ] ->
    check string "sorted by family name" "events_total" events.Obs.Registry.family;
    check string "second family" "level" level.Obs.Registry.family;
    (match (events.Obs.Registry.series, level.Obs.Registry.series) with
    | [ { value = Obs.Registry.Counter_v n; _ } ],
      [ { value = Obs.Registry.Gauge_v v; _ } ] ->
      check int "counter value" 7 n;
      check flt "gauge value" 1.5 v
    | _ -> Alcotest.fail "unexpected series shape")
  | snap -> Alcotest.failf "expected 2 families, got %d" (List.length snap));
  Obs.Registry.reset ~registry:r ();
  check int "counter zeroed in place" 0 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.incr c;
  check int "handle still live after reset" 1 (Obs.Metrics.Counter.value c)

let test_registry_json_roundtrip () =
  Obs.with_enabled @@ fun () ->
  let r = Obs.Registry.create () in
  Obs.Metrics.Counter.incr
    (Obs.Registry.counter ~registry:r ~help:"sessions" "sessions_total"
       [ ("outcome", "ok") ])
    ~by:3;
  Obs.Metrics.Gauge.set (Obs.Registry.gauge ~registry:r "energy_mj" []) 1234.5678;
  let h =
    Obs.Registry.histogram ~registry:r ~buckets:[| 0.001; 0.01; 0.1 |]
      "latency_seconds" []
  in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0.0005; 0.05; 2.7 ];
  let snap = Obs.Registry.snapshot ~registry:r () in
  (match Obs.Registry.of_json (Obs.Registry.to_json snap) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok decoded -> check bool "snapshot round-trips exactly" true (decoded = snap));
  (* The rendered text must also be parseable JSON at the string level. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Registry.to_json snap)) with
  | Error e -> Alcotest.failf "rendered JSON unparseable: %s" e
  | Ok reparsed ->
    check bool "string round-trip" true (reparsed = Obs.Registry.to_json snap)

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting_and_timing () =
  Obs.with_enabled @@ fun () ->
  Obs.Trace.reset ();
  let result =
    Obs.Trace.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Obs.Trace.with_span "inner_a" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.Trace.with_span "inner_b" (fun () -> 17))
  in
  check int "with_span returns callback result" 17 result;
  match Obs.Trace.roots () with
  | [ outer ] ->
    check string "root name" "outer" outer.Obs.Trace.name;
    check bool "attrs kept" true (outer.Obs.Trace.attrs = [ ("k", "v") ]);
    (match outer.Obs.Trace.children with
    | [ a; b ] ->
      check string "children in start order" "inner_a" a.Obs.Trace.name;
      check string "second child" "inner_b" b.Obs.Trace.name;
      let open Int64 in
      check bool "durations non-negative" true
        (outer.Obs.Trace.duration_ns >= 0L && a.Obs.Trace.duration_ns >= 0L);
      check bool "child starts after parent" true
        (a.Obs.Trace.start_ns >= outer.Obs.Trace.start_ns);
      check bool "children start in order" true
        (b.Obs.Trace.start_ns >= a.Obs.Trace.start_ns);
      check bool "child interval inside parent" true
        (add b.Obs.Trace.start_ns b.Obs.Trace.duration_ns
         <= add outer.Obs.Trace.start_ns outer.Obs.Trace.duration_ns)
    | kids -> Alcotest.failf "expected 2 children, got %d" (List.length kids));
    check int "span_count counts the whole tree" 3 (Obs.Trace.span_count ())
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_span_exception_safe () =
  Obs.with_enabled @@ fun () ->
  Obs.Trace.reset ();
  (try Obs.Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Obs.Trace.roots () with
  | [ s ] -> check string "span recorded despite raise" "boom" s.Obs.Trace.name
  | _ -> Alcotest.fail "raising span was not recorded"

let test_span_disabled_records_nothing () =
  Obs.disable ();
  Obs.with_enabled (fun () -> Obs.Trace.reset ());
  check string "disabled span still runs callback" "x"
    (Obs.Trace.with_span "ghost" (fun () -> "x"));
  Obs.with_enabled (fun () ->
      check int "nothing recorded while disabled" 0 (Obs.Trace.span_count ()))

let test_chrome_export () =
  Obs.with_enabled @@ fun () ->
  Obs.Trace.reset ();
  Obs.Trace.with_span "parent" ~attrs:[ ("clip", "test") ] (fun () ->
      Obs.Trace.with_span "child" (fun () -> ()));
  let json = Obs.Trace.to_chrome_json () in
  (* Must survive a print/parse cycle — what chrome://tracing loads. *)
  (match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "chrome trace unparseable: %s" e
  | Ok reparsed -> check bool "parses back" true (reparsed = json));
  match json with
  | Obs.Json.List events ->
    check int "one event per span" (Obs.Trace.span_count ()) (List.length events);
    List.iter
      (fun e ->
        check bool "complete event" true
          (Obs.Json.member "ph" e = Some (Obs.Json.String "X"));
        check bool "has name" true (Obs.Json.member "name" e <> None);
        check bool "has ts" true (Obs.Json.member "ts" e <> None);
        check bool "has dur" true (Obs.Json.member "dur" e <> None))
      events
  | _ -> Alcotest.fail "chrome trace must be a JSON array"

(* --- logging ------------------------------------------------------------ *)

let test_ring_buffer_ordering () =
  Obs.with_enabled @@ fun () ->
  let id, read = Obs.Log.attach_ring ~capacity:3 in
  Fun.protect ~finally:(fun () -> Obs.Log.detach id) @@ fun () ->
  for i = 1 to 5 do
    Obs.Log.emit Obs.Log.Info ~scope:"test" (Printf.sprintf "event %d" i)
  done;
  let messages = List.map (fun e -> e.Obs.Log.message) (read ()) in
  check bool "keeps last capacity events oldest-first" true
    (messages = [ "event 3"; "event 4"; "event 5" ])

let test_log_level_threshold () =
  Obs.with_enabled @@ fun () ->
  let id, read = Obs.Log.attach_ring ~capacity:8 in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.detach id;
      Obs.Log.set_level Obs.Log.Info)
  @@ fun () ->
  Obs.Log.set_level Obs.Log.Warn;
  let evaluated = ref false in
  Obs.Log.debug ~scope:"test" (fun () ->
      evaluated := true;
      ("below threshold", []));
  Obs.Log.warn ~scope:"test" (fun () -> ("kept", []));
  check bool "suppressed closure never runs" false !evaluated;
  check int "only the warn got through" 1 (List.length (read ()))

let test_log_event_json () =
  Obs.with_enabled @@ fun () ->
  let id, read = Obs.Log.attach_ring ~capacity:1 in
  Fun.protect ~finally:(fun () -> Obs.Log.detach id) @@ fun () ->
  Obs.Log.emit Obs.Log.Error ~scope:"codec"
    ~fields:[ ("frame", Obs.Json.Int 12) ]
    "bad macroblock";
  match read () with
  | [ e ] ->
    let json = Obs.Log.event_to_json e in
    check bool "level serialised" true
      (Obs.Json.member "level" json = Some (Obs.Json.String "error"));
    check bool "fields serialised" true
      (match Obs.Json.member "fields" json with
      | Some fields -> Obs.Json.member "frame" fields = Some (Obs.Json.Int 12)
      | None -> false)
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let test_ring_buffer_multi_wrap () =
  Obs.with_enabled @@ fun () ->
  let id, read = Obs.Log.attach_ring ~capacity:3 in
  Fun.protect ~finally:(fun () -> Obs.Log.detach id) @@ fun () ->
  (* Several full wraps: ordering must survive arbitrary wrap counts,
     not just the first. *)
  for i = 1 to 10 do
    Obs.Log.emit Obs.Log.Info ~scope:"test" (Printf.sprintf "event %d" i)
  done;
  let messages = List.map (fun e -> e.Obs.Log.message) (read ()) in
  check bool "oldest-first after three wraps" true
    (messages = [ "event 8"; "event 9"; "event 10" ])

let test_jsonl_escaping () =
  Obs.with_enabled @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  let id = Obs.Log.attach_jsonl ~path in
  let nasty = "quote \" backslash \\ tab \t newline \n bell \007 end" in
  Obs.Log.emit Obs.Log.Warn ~scope:"esc"
    ~fields:[ ("raw", Obs.Json.String nasty) ]
    nasty;
  Obs.Log.emit Obs.Log.Info ~scope:"esc" "second line";
  Obs.Log.detach id;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  check int "one JSON object per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "JSONL line unparseable (%s): %s" e line
      | Ok _ -> ())
    lines;
  (* Control characters and quotes must round-trip exactly. *)
  match Obs.Json.of_string (List.hd lines) with
  | Ok json ->
    check bool "message round-trips control chars" true
      (Obs.Json.member "message" json = Some (Obs.Json.String nasty));
    (match Obs.Json.member "fields" json with
    | Some fields ->
      check bool "field string round-trips" true
        (Obs.Json.member "raw" fields = Some (Obs.Json.String nasty))
    | None -> Alcotest.fail "fields missing")
  | Error e -> Alcotest.failf "unreachable: %s" e

let test_log_level_filtering_edges () =
  Obs.with_enabled @@ fun () ->
  let id, read = Obs.Log.attach_ring ~capacity:16 in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.detach id;
      Obs.Log.set_level Obs.Log.Info)
  @@ fun () ->
  (* Most permissive: everything passes. *)
  Obs.Log.set_level Obs.Log.Debug;
  check bool "debug level reported back" true
    (Obs.Log.get_level () = Obs.Log.Debug);
  Obs.Log.debug ~scope:"t" (fun () -> ("d", []));
  Obs.Log.info ~scope:"t" (fun () -> ("i", []));
  Obs.Log.warn ~scope:"t" (fun () -> ("w", []));
  Obs.Log.error ~scope:"t" (fun () -> ("e", []));
  check int "all four levels pass at Debug" 4 (List.length (read ()));
  (* Most restrictive: only Error survives, and an event exactly at
     the threshold is kept (>=, not >). *)
  Obs.Log.set_level Obs.Log.Error;
  Obs.Log.warn ~scope:"t" (fun () -> ("w2", []));
  Obs.Log.error ~scope:"t" (fun () -> ("e2", []));
  let messages = List.map (fun e -> e.Obs.Log.message) (read ()) in
  check bool "warn suppressed, threshold-level error kept" true
    (List.mem "e2" messages && not (List.mem "w2" messages))

let test_would_log_requires_sink () =
  Obs.with_enabled @@ fun () ->
  check bool "no sink, no work" false (Obs.Log.would_log Obs.Log.Error);
  let id, _ = Obs.Log.attach_ring ~capacity:1 in
  Fun.protect ~finally:(fun () -> Obs.Log.detach id) @@ fun () ->
  check bool "sink attached" true (Obs.Log.would_log Obs.Log.Error);
  Obs.disable ();
  check bool "disabled wins over sinks" false (Obs.Log.would_log Obs.Log.Error);
  Obs.enable ()

(* --- behaviour neutrality ----------------------------------------------- *)

(* The whole layer is opt-in: a session must report byte-for-byte the
   same numbers whether or not observability is recording. This is the
   contract that lets instrumentation live permanently in the hot
   path. *)
let test_session_report_unchanged_by_obs () =
  let clip =
    Video.Clip_gen.render ~width:32 ~height:24 ~fps:8.
      Video.Workloads.officexp
  in
  let config =
    { (Streaming.Session.default_config ~device:Display.Device.ipaq_h5555) with
      Streaming.Session.loss_rate = 0.05 }
  in
  let report_string () =
    match Streaming.Session.run config clip with
    | Error e -> Alcotest.failf "session failed: %s" e
    | Ok r -> Format.asprintf "%a" Streaming.Session.pp_report r
  in
  Obs.disable ();
  let plain = report_string () in
  let observed = Obs.with_enabled report_string in
  check string "byte-identical report with obs on" plain observed;
  Obs.disable ();
  check string "and again with obs back off" plain (report_string ())

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basic semantics" `Quick test_counter_basic;
          Alcotest.test_case "disabled drops updates" `Quick
            test_counter_disabled_is_dropped;
          Alcotest.test_case "concurrent increments" `Quick test_counter_concurrent;
        ] );
      ( "gauge",
        [
          Alcotest.test_case "set/add/reset" `Quick test_gauge;
          Alcotest.test_case "concurrent add" `Quick test_gauge_concurrent_add;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket semantics" `Quick test_histogram_buckets;
          Alcotest.test_case "rejects bad buckets" `Quick
            test_histogram_rejects_bad_buckets;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "snapshot and reset" `Quick
            test_registry_snapshot_and_reset;
          Alcotest.test_case "JSON round-trip" `Quick test_registry_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and timing" `Quick
            test_span_nesting_and_timing;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ( "log",
        [
          Alcotest.test_case "ring buffer ordering" `Quick
            test_ring_buffer_ordering;
          Alcotest.test_case "ring buffer multi-wrap" `Quick
            test_ring_buffer_multi_wrap;
          Alcotest.test_case "JSONL escaping round-trip" `Quick
            test_jsonl_escaping;
          Alcotest.test_case "level filtering edges" `Quick
            test_log_level_filtering_edges;
          Alcotest.test_case "level threshold" `Quick test_log_level_threshold;
          Alcotest.test_case "event JSON" `Quick test_log_event_json;
          Alcotest.test_case "would_log gating" `Quick test_would_log_requires_sink;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "session report identical with obs on/off" `Quick
            test_session_report_unchanged_by_obs;
        ] );
    ]
