# Convenience targets; dune does the real work.

.PHONY: all build test check bench clean slo-smoke

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles, every suite is green, and a
# monitored playback run meets the default SLOs.
check:
	dune build && dune runtest && $(MAKE) slo-smoke

# End-to-end health gate: monitored playback of a seeded clip against
# the default SLO file must print a clean report and exit 0.
slo-smoke:
	dune exec bin/playback.exe -- -c theincredibles-tlr2 --monitor \
	  --slo examples/default.slo > /dev/null

bench:
	dune exec bench/main.exe

clean:
	dune clean

# Formatting: the tree is hand-formatted in ocamlformat's default
# style, but `dune build @fmt` is NOT part of `check` because the
# toolchain image ships no ocamlformat binary. If you have one
# locally, add an .ocamlformat with a pinned version before running
# it, so CI and local runs agree.
