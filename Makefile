# Convenience targets; dune does the real work.

.PHONY: all build test check bench clean slo-smoke fleet-smoke chaos chaos-ladder lint verify-fixtures gate baseline

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles, every suite is green (once
# sequentially, once with a 4-domain pool — PAR_JOBS feeds the CLIs'
# --jobs default, and the parallel suites pick it up too), the
# sources pass the determinism linter, the shipped artifacts verify
# cleanly, a monitored playback run meets the default SLOs, and the
# CLIs survive hostile fault profiles.
check:
	dune build && dune runtest && PAR_JOBS=4 dune runtest --force \
	  && $(MAKE) lint && $(MAKE) verify-fixtures \
	  && $(MAKE) slo-smoke && $(MAKE) fleet-smoke \
	  && $(MAKE) chaos && $(MAKE) chaos-ladder \
	  && $(MAKE) gate

# Static gate 1: the determinism linter over the library and tool
# sources (rules L001-L012 plus the transitive effect closure, see
# README "Static checks") and the concurrency-safety analyzer (rules
# C001-C006 over the cross-module call graph). Exits 1 on any finding
# without a reasoned `lint: allow` comment.
lint:
	dune exec bin/lint.exe -- sources lib bin
	dune exec bin/lint.exe -- concurrency lib bin

# Static gate 2: the offline artifact verifier over everything the
# repo ships — the example SLO and fault profiles, a freshly encoded
# annotation track (codes V1xx/V2xx/V3xx), and a freshly recorded
# decision journal (codes V4xx).
verify-fixtures:
	dune build
	dune exec bin/annotate.exe -- -c theincredibles-tlr2 \
	  -o _build/verify-track.bin > /dev/null
	dune exec bin/playback.exe -- -c theincredibles-tlr2 \
	  --journal _build/verify-session.journal > /dev/null
	dune exec bin/lint.exe -- verify _build/verify-track.bin \
	  _build/verify-session.journal \
	  examples/default.slo examples/*.fault examples/*.resilience

# End-to-end health gate: monitored playback of a seeded clip against
# the default SLO file must print a clean report and exit 0.
slo-smoke:
	dune exec bin/playback.exe -- -c theincredibles-tlr2 --monitor \
	  --slo examples/default.slo > /dev/null

# Fleet health gate: a small fleet through the shard scheduler CLI
# must meet the fleet SLOs (no failed sessions, non-negative savings)
# and leave a decision journal that passes the offline V4xx audit.
fleet-smoke:
	dune build
	dune exec bin/fleet_cli.exe -- --sessions 150 --width 16 --height 12 \
	  --monitor --journal _build/fleet-smoke.journal -j 4 > /dev/null
	dune exec bin/lint.exe -- verify _build/fleet-smoke.journal > /dev/null

# Chaos gate: every CLI must survive the example fault profiles
# (burst loss, corruption, reorder, jitter, bandwidth collapse)
# without crashing. Exit codes are asserted, output is discarded —
# the chaos test suite (test/test_fault.ml) checks the behaviour.
chaos:
	dune build
	dune exec bin/playback.exe -- -c theincredibles-tlr2 \
	  --fault-profile examples/burst.fault > /dev/null
	dune exec bin/playback.exe -- -c theincredibles-tlr2 \
	  --fault-profile examples/chaos.fault > /dev/null
	dune exec bin/playback.exe -- -c theincredibles-tlr2 \
	  --loss-model gilbert --loss 0.08 --burst 3 > /dev/null
	dune exec bin/plan.exe -- -c theincredibles-tlr2 -t 2 \
	  --fault-profile examples/burst.fault > /dev/null
	dune exec bin/annotate.exe -- -c theincredibles-tlr2 \
	  --fault-profile examples/chaos.fault > /dev/null
	dune exec bin/characterize.exe -- --monitor --slo examples/default.slo \
	  > /dev/null

# Chaos × resilience gate: the same hostile channel with the control
# plane on. Every CLI must exit 0 under both shipped profiles — a
# breaker that opens or a ladder that bottoms out degrades the session,
# it never aborts it. The journaled run is audited offline (V4xx/V5xx
# behaviour lives in test/test_resilience.ml; this asserts exit codes).
chaos-ladder:
	dune build
	for p in examples/default.resilience examples/aggressive.resilience; do \
	  dune exec bin/playback.exe -- -c theincredibles-tlr2 \
	    --fault-profile examples/chaos.fault --resilience $$p \
	    --journal _build/chaos-ladder.journal > /dev/null || exit 1; \
	  dune exec bin/lint.exe -- verify _build/chaos-ladder.journal \
	    > /dev/null || exit 1; \
	  dune exec bin/plan.exe -- -c theincredibles-tlr2 -t 2 \
	    --fault-profile examples/chaos.fault --resilience $$p \
	    > /dev/null || exit 1; \
	  dune exec bin/annotate.exe -- -c theincredibles-tlr2 \
	    --fault-profile examples/chaos.fault --resilience $$p \
	    > /dev/null || exit 1; \
	  dune exec bin/characterize.exe -- --resilience $$p \
	    > /dev/null || exit 1; \
	done

bench:
	dune exec bench/main.exe

# Energy + resilience + fleet regression gate: the committed baseline
# must reproduce within tolerance (the energy rows, the chaos-ladder
# counts and the fleet scheduler counts), and a synthetic 10% energy
# regression must trip the gate. Runs in _build/gate so the committed
# BENCH_*.json artifacts are not overwritten by the partial reports
# these runs produce.
gate:
	dune build
	mkdir -p _build/gate
	cd _build/gate && ../default/bench/main.exe energy resilience-ladder \
	  fleet --baseline ../../BENCH_baseline.json --gate > /dev/null
	cd _build/gate && ../default/bin/lint.exe verify BENCH_session.journal \
	  BENCH_ladder.journal BENCH_fleet.journal > /dev/null
	cd _build/gate && ! ../default/bench/main.exe energy resilience-ladder \
	  fleet --baseline ../../BENCH_baseline.json --gate \
	  --inject-regression 10 > /dev/null
	@echo "gate: baseline reproduces; injected 10% regression trips it;"
	@echo "gate: the bench journals pass the offline V4xx audit"

# Regenerate the committed bench baseline (energy rows, chaos-ladder
# counts, fleet scheduler counts). Do this ONLY alongside a reasoned
# diff in the PR: state what moved, by how much, and why the new
# numbers are correct — the gate exists to make silent drift
# impossible.
baseline:
	dune build
	mkdir -p _build/gate
	cd _build/gate && ../default/bench/main.exe energy resilience-ladder \
	  fleet --write-baseline ../../BENCH_baseline.json
	@echo
	@echo "BENCH_baseline.json regenerated. Commit it together with a"
	@echo "reasoned diff (what moved, by how much, why it is correct)."

clean:
	dune clean

# Formatting: the tree is hand-formatted in ocamlformat's default
# style, but `dune build @fmt` is NOT part of `check` because the
# toolchain image ships no ocamlformat binary. If you have one
# locally, add an .ocamlformat with a pinned version before running
# it, so CI and local runs agree.
