# Convenience targets; dune does the real work.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and every suite is green.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean

# Formatting: the tree is hand-formatted in ocamlformat's default
# style, but `dune build @fmt` is NOT part of `check` because the
# toolchain image ships no ocamlformat binary. If you have one
# locally, add an .ocamlformat with a pinned version before running
# it, so CI and local runs agree.
