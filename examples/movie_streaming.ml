(* The full system model of the paper's Fig 1: a server stores movies
   and annotates them; a client negotiates a session, receives the
   compensated stream plus the annotation side channel over a WLAN
   link, decodes, and adjusts its backlight from the annotations.

   Run with:  dune exec examples/movie_streaming.exe

   The observability layer is switched on so the run ends with
   stage-by-stage statistics: what the codec, annotator, FEC and
   playback each did, and how long every pipeline stage took. *)

let () =
  Obs.enable ();
  let device = Display.Device.ipaq_h5555 in

  (* Server side: a catalog of clips. *)
  let server = Streaming.Server.create () in
  List.iter
    (fun profile ->
      Streaming.Server.add_clip server
        (Video.Clip_gen.render ~width:96 ~height:72 ~fps:10. profile))
    [ Video.Workloads.catwoman; Video.Workloads.ice_age ];
  Printf.printf "server catalog: %s\n\n"
    (String.concat ", " (Streaming.Server.clip_names server));

  (* Client side: negotiate and stream each clip. *)
  let link = Streaming.Netsim.wlan_80211b in
  List.iter
    (fun name ->
      let hello =
        { Streaming.Negotiation.device; requested_quality = Annotation.Quality_level.Loss_10 }
      in
      let session =
        match Streaming.Negotiation.negotiate hello with
        | Ok s -> s
        | Error e -> failwith e
      in
      let prepared =
        match Streaming.Server.prepare server ~name ~session with
        | Ok p -> p
        | Error e -> failwith e
      in
      (* Ship the video through the codec to size the stream. *)
      let encoded =
        match Streaming.Server.encode_video server ~name with
        | Ok e -> e
        | Error e -> failwith e
      in
      let video_bytes = Codec.Encoder.total_bytes encoded in
      let annotation_bytes = String.length prepared.Streaming.Server.annotation_bytes in
      Printf.printf "%s:\n" name;
      Printf.printf "  video %d bytes, annotations %d bytes (%.4f%% overhead)\n"
        video_bytes annotation_bytes
        (100.
         *. Streaming.Netsim.annotation_overhead_ratio link ~video_bytes
              ~annotation_bytes);
      Printf.printf "  transfer time over 802.11b: %.2f s\n"
        (Streaming.Netsim.transfer_time_s link (video_bytes + annotation_bytes));
      (* The client decodes the annotations and plays back. *)
      let track =
        match Annotation.Encoding.decode prepared.Streaming.Server.annotation_bytes with
        | Ok t -> t
        | Error e -> failwith e
      in
      let report =
        Streaming.Playback.run_with_registers ~device
          ~quality:session.Streaming.Negotiation.quality ~clip_name:name
          ~fps:10. ~annotation_bytes
          (Annotation.Track.register_track track)
      in
      Printf.printf "  backlight saved %.1f%%, device saved %.1f%%, %d switches\n\n"
        (100. *. report.Streaming.Playback.backlight_savings)
        (100. *. report.Streaming.Playback.total_savings)
        report.Streaming.Playback.switch_count)
    (Streaming.Server.clip_names server);

  (* One full end-to-end session over a lossy hop, reported together
     with the per-stage observability summary. *)
  let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:10. Video.Workloads.catwoman in
  let config =
    { (Streaming.Session.default_config ~device) with
      Streaming.Session.loss_rate = 0.05 }
  in
  match Streaming.Session.run config clip with
  | Error e -> failwith e
  | Ok report ->
    Printf.printf "end-to-end session (5%% loss):\n";
    Format.printf "%a@." Streaming.Session.pp_report_obs report
