(* Quality/power trade-off: sweep the clipping budget on one clip and
   validate each point with the camera rig, reproducing the user-facing
   decision of §4.2 ("The user decides if some quality can be traded
   for more power savings").

   Run with:  dune exec examples/quality_tradeoff.exe *)

let () =
  let device = Display.Device.ipaq_h5555 in
  let clip =
    Video.Clip_gen.render ~width:96 ~height:72 ~fps:10. Video.Workloads.spiderman2
  in
  let profiled = Annotation.Annotator.profile clip in
  let rig = Camera.Snapshot.default_rig device in
  Printf.printf "%-8s %-12s %-12s %-14s %-12s %s\n" "quality" "backlight"
    "device" "mean shift" "EMD" "verdict";
  print_endline (String.make 72 '-');
  List.iter
    (fun quality ->
      let track = Annotation.Annotator.annotate_profiled ~device ~quality profiled in
      let report = Streaming.Playback.run_profiled ~device ~quality profiled in
      (* Validate the middle of the dimmest contentful scene. *)
      let verdicts =
        Streaming.Playback.evaluate_quality ~rig ~device ~clip ~track
          ~sample_every:(max 1 (clip.Video.Clip.frame_count / 6))
      in
      let worst =
        List.fold_left
          (fun acc (_, v) -> if v.Camera.Quality.emd > acc.Camera.Quality.emd then v else acc)
          (snd (List.hd verdicts))
          verdicts
      in
      Printf.printf "%-8s %-12s %-12s %+-14.1f %-12.1f %s\n"
        (Annotation.Quality_level.label quality)
        (Printf.sprintf "%.1f%%" (100. *. report.Streaming.Playback.backlight_savings))
        (Printf.sprintf "%.1f%%" (100. *. report.Streaming.Playback.total_savings))
        worst.Camera.Quality.mean_shift worst.Camera.Quality.emd
        (if Camera.Quality.acceptable worst then "hardly noticeable" else "visible loss"))
    (Annotation.Quality_level.standard_grid
    @ [ Annotation.Quality_level.Custom 0.3; Annotation.Quality_level.Custom 0.5 ])
