(* A live videoconference through the proxy: the full §3 story in one
   session. The proxy annotates the stream on the fly with a bounded
   lookahead (no offline profiling exists for live content), transcodes
   it to fit the wireless hop, and the client exploits all three
   annotation applications at once: backlight scaling, CPU frequency
   scaling, and radio sleep scheduling.

   Run with:  dune exec examples/live_conference.exe *)

let () =
  let device = Display.Device.ipaq_h5555 in
  let fps = 12. in
  (* A "conference" clip: a talking head (slow subject) in a lamp-lit
     room — dark enough for the backlight to matter. *)
  let conference =
    {
      Video.Profile.name = "conference";
      seed = 2026;
      scenes =
        [
          Video.Profile.scene ~seconds:20. ~noise_sigma:2.5 ~vignette:0.3
            ~subjects:
              [
                { Video.Profile.level = 150; size = 260; speed = 0.8; vertical_phase = 0.55 };
              ]
            ~highlights:{ Video.Profile.count = 2; peak = 180; radius = 30; drift = 0. }
            (Video.Profile.Radial { center = 70; edge = 30 });
        ];
    }
  in
  let clip = Video.Clip_gen.render ~width:160 ~height:120 ~fps conference in

  (* 1. The proxy annotates live with half a second of lookahead. *)
  let lookahead = 6 in
  let session =
    Streaming.Proxy.annotate_live ~lookahead ~device
      ~quality:Annotation.Quality_level.Loss_10 clip
  in
  Printf.printf "live annotation: %d bytes, %.2f s added latency\n"
    (String.length session.Streaming.Proxy.annotation_bytes)
    session.Streaming.Proxy.added_latency_s;

  (* 2. The proxy transcodes to fit a congested 802.11b hop at half
     rate. *)
  let slow_link =
    Streaming.Netsim.make ~bandwidth_bps:400_000. ~packet_payload_bytes:1400
      ~per_packet_overhead_bytes:54
  in
  let encoded = Codec.Encoder.encode_clip clip in
  (match Streaming.Proxy.transcode_for_link ~link:slow_link encoded with
  | Error e -> failwith e
  | Ok outcome ->
    Printf.printf "transcode: %d KB -> %d KB (qp %d, fits: %b)\n"
      (Codec.Encoder.total_bytes encoded / 1024)
      (Codec.Encoder.total_bytes outcome.Codec.Rate_control.encoded / 1024)
      outcome.Codec.Rate_control.encoded.Codec.Encoder.params.Codec.Stream.qp
      outcome.Codec.Rate_control.fits;

    let shipped = outcome.Codec.Rate_control.encoded in

    (* 3a. Backlight scaling from the live annotations. *)
    let backlight_report =
      Streaming.Playback.run_with_registers ~device
        ~quality:Annotation.Quality_level.Loss_10 ~clip_name:"conference" ~fps
        ~annotation_bytes:(String.length session.Streaming.Proxy.annotation_bytes)
        (Annotation.Track.register_track session.Streaming.Proxy.track)
    in
    Printf.printf "backlight: %.1f%% saved (device: %.1f%%)\n"
      (100. *. backlight_report.Streaming.Playback.backlight_savings)
      (100. *. backlight_report.Streaming.Playback.total_savings);

    (* 3b. CPU scaling from per-frame workload annotations. *)
    let cycles = Streaming.Dvfs_playback.decode_cycles shipped in
    let dvfs =
      Streaming.Dvfs_playback.run ~fps cycles
        Streaming.Dvfs_playback.Annotated_workload
    in
    Printf.printf "cpu: %.1f%% saved at %d deadline misses (mean %.0f MHz)\n"
      (100. *. dvfs.Streaming.Dvfs_playback.savings)
      dvfs.Streaming.Dvfs_playback.deadline_misses
      dvfs.Streaming.Dvfs_playback.mean_frequency_mhz;

    (* 3c. Radio sleep scheduling from burst-size annotations. *)
    let frame_bytes =
      Array.map (fun bits -> (bits + 7) / 8) shipped.Codec.Encoder.frame_sizes_bits
    in
    let radio =
      Streaming.Radio.run ~link:slow_link ~fps ~gop:12 ~frame_bytes
        Streaming.Radio.Annotated_bursts
    in
    Printf.printf "radio: %.1f%% saved, dozing %.0f%% of the session\n"
      (100. *. radio.Streaming.Radio.savings)
      (100. *. radio.Streaming.Radio.sleep_fraction))
