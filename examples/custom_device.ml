(* Bringing your own hardware: define a device as text, watch its
   backlight wear out, and re-characterise it with the camera rig so
   the annotations stay accurate — the §2 "tailor the technique to
   each PDA" loop on a device the library has never seen.

   Run with:  dune exec examples/custom_device.exe *)

let profile_text =
  "# a hypothetical CCFL handheld\n\
   name = voyager_vx\n\
   panel = reflective\n\
   technology = ccfl\n\
   transfer = ccfl\n\
   white_gamma = 1.1\n\
   screen = 240x160\n\
   backlight_full_mw = 620\n\
   backlight_floor_mw = 95\n\
   cpu_busy_mw = 540\n\
   base_mw = 200\n"

let () =
  let device =
    match Display.Device_config.of_string profile_text with
    | Ok d -> d
    | Error e -> failwith e
  in
  Format.printf "device: %a@." Display.Device.pp device;

  let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:10. Video.Workloads.i_robot in
  let profiled = Annotation.Annotator.profile clip in
  let savings d =
    (Streaming.Playback.run_profiled ~device:d ~quality:Annotation.Quality_level.Loss_10
       profiled)
      .Streaming.Playback.backlight_savings
  in
  Printf.printf "fresh panel, factory curve  : %.1f%% backlight saved\n"
    (100. *. savings device);

  (* Three thousand hours later the tube has worn: the factory curve
     now under-lights every scene. *)
  let aged = Display.Device.with_aged_backlight ~hours:3000. device in
  let stale_track =
    Annotation.Annotator.annotate_profiled ~device ~quality:Annotation.Quality_level.Loss_10
      profiled
  in
  let worst_underlight =
    Array.fold_left
      (fun acc (e : Annotation.Track.entry) ->
        let wanted = float_of_int e.Annotation.Track.effective_max /. 255. in
        let got = Display.Device.backlight_gain aged e.Annotation.Track.register in
        Float.max acc (wanted -. got))
      0. stale_track.Annotation.Track.entries
  in
  Printf.printf "after 3000 h, stale curve   : scenes up to %.0f%% dimmer than intended\n"
    (100. *. worst_underlight);

  (* Re-characterise through the camera and rebuild the device. *)
  let rig = Camera.Snapshot.default_rig aged in
  let recovered =
    Display.Characterize.recover_transfer ~steps:24
      (Camera.Snapshot.measure_patch rig aged)
  in
  let recalibrated =
    {
      aged with
      Display.Device.name = device.Display.Device.name ^ "+recal";
      panel = { aged.Display.Device.panel with Display.Panel.transfer = recovered };
    }
  in
  Printf.printf "recalibrated                : %.1f%% backlight saved, accurate again\n"
    (100. *. savings recalibrated)
