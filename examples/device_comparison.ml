(* Device comparison: the same clip and quality level on the paper's
   three PDAs. LED and CCFL backlights have different transfer curves
   and power floors, so the registers — and the savings — differ per
   device, which is why the negotiation phase ships device
   characteristics (§4.3).

   Run with:  dune exec examples/device_comparison.exe *)

let () =
  let clip = Video.Clip_gen.render ~width:96 ~height:72 ~fps:10. Video.Workloads.i_robot in
  let profiled = Annotation.Annotator.profile clip in
  let quality = Annotation.Quality_level.Loss_10 in
  Printf.printf "clip %s at %s quality\n\n" clip.Video.Clip.name
    (Annotation.Quality_level.label quality);
  Printf.printf "%-16s %-14s %-12s %-14s %-12s %s\n" "device" "technology"
    "mean reg" "backlight" "device" "runtime";
  print_endline (String.make 82 '-');
  List.iter
    (fun device ->
      let report = Streaming.Playback.run_profiled ~device ~quality profiled in
      let baseline_power =
        report.Streaming.Playback.total_baseline_mj
        /. report.Streaming.Playback.duration_s
      in
      let optimised_power =
        report.Streaming.Playback.total_energy_mj
        /. report.Streaming.Playback.duration_s
      in
      Printf.printf "%-16s %-14s %-12.1f %-13s %-11s %+.1f%%\n"
        device.Display.Device.name
        (Format.asprintf "%a/%a" Display.Panel.pp_panel_type
           device.Display.Device.panel.Display.Panel.panel_type
           Display.Panel.pp_technology
           device.Display.Device.panel.Display.Panel.technology)
        report.Streaming.Playback.mean_register
        (Printf.sprintf "%.1f%%" (100. *. report.Streaming.Playback.backlight_savings))
        (Printf.sprintf "%.1f%%" (100. *. report.Streaming.Playback.total_savings))
        (100.
         *. Power.Battery.extension_ratio ~baseline_power_mw:baseline_power
              ~optimized_power_mw:optimised_power))
    Display.Device.all;
  (* The CCFL strike threshold shows up as a floor on the registers the
     solver may choose on very dark scenes. *)
  Printf.printf "\nregister for 5%% luminance: %s\n"
    (String.concat ", "
       (List.map
          (fun d ->
            Printf.sprintf "%s=%d" d.Display.Device.name
              (Display.Device.register_for_gain d 0.05))
          Display.Device.all))
