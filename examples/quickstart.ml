(* Quickstart: annotate a clip and play it back, in about twenty lines.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A clip. Workloads ship with the library; your own clips can be
     wrapped with Video.Clip.of_frames or Video.Clip.make. *)
  let clip = Video.Clip_gen.render Video.Workloads.themovie in

  (* 2. A target device and a quality level: allow 10 % of the very
     bright pixels to clip. *)
  let device = Display.Device.ipaq_h5555 in
  let quality = Annotation.Quality_level.Loss_10 in

  (* 3. Annotate: one pixel pass over the clip, scene detection, one
     backlight solution per scene. *)
  let track = Annotation.Annotator.annotate ~device ~quality clip in
  Format.printf "annotation track: %a@." Annotation.Track.pp track;
  Format.printf "wire size: %d bytes@." (Annotation.Encoding.encoded_size track);

  (* 4. Play back and compare against full backlight. *)
  let report = Streaming.Playback.run ~device ~quality clip in
  Format.printf "%a@." Streaming.Playback.pp_report report;
  Format.printf "backlight power saved: %.1f%%, whole device: %.1f%%@."
    (100. *. report.Streaming.Playback.backlight_savings)
    (100. *. report.Streaming.Playback.total_savings)
