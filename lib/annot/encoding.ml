let version = 2

let magic = "ANPW"

let gain_fixed_point = 4096.

let record_size = 15
(* first_frame u24, frame_count u24, register u8, compensation u24,
   effective u8, crc32 u32 — see the .mli layout. *)

(* --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub data ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code data.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let crc32 data = crc32_sub data ~pos:0 ~len:(String.length data)

(* --- writing ---------------------------------------------------------- *)

let put_varint buf n =
  if n < 0 then invalid_arg "Encoding: negative varint";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

(* Fixed-width fields reject out-of-range values by name instead of
   wrapping: a clip past ~16.7M frames or a compensation gain
   overflowing the fixed point must fail the encode loudly — wrapped
   bytes would still CRC as valid and decode into garbage. *)
let put_u24 buf ~field n =
  if n < 0 || n > 0xffffff then
    invalid_arg (Printf.sprintf "Encoding: %s %d out of u24 range" field n);
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff))

let put_u8 buf ~field n =
  if n < 0 || n > 0xff then
    invalid_arg (Printf.sprintf "Encoding: %s %d out of u8 range" field n);
  Buffer.add_char buf (Char.chr n)

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let quality_permille q =
  int_of_float ((Quality_level.allowed_loss q *. 1000.) +. 0.5)

let obs_tracks =
  Obs.counter ~help:"Annotation tracks serialised to the wire format"
    "annot_tracks_encoded_total" []

let obs_track_bytes =
  Obs.counter ~help:"Bytes of serialised annotation tracks"
    "annot_track_bytes_total" []

let obs_corrupt_records =
  Obs.counter ~help:"Annotation records rejected by their CRC32"
    "annot_records_corrupt_total" []

let obs_missing_records =
  Obs.counter ~help:"Annotation records unreadable because their bytes were lost"
    "annot_records_missing_total" []

let put_header buf track count =
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_varint buf (quality_permille track.Track.quality);
  put_varint buf (int_of_float ((track.Track.fps *. 1000.) +. 0.5));
  put_varint buf track.Track.total_frames;
  put_string buf track.Track.clip_name;
  put_string buf track.Track.device_name;
  put_varint buf count;
  put_u32 buf (crc32_sub (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf))

let encode track =
  let track = Track.merge_runs track in
  let buf = Buffer.create 256 in
  put_header buf track (Array.length track.Track.entries);
  let record = Buffer.create record_size in
  Array.iter
    (fun (e : Track.entry) ->
      Buffer.clear record;
      put_u24 record ~field:"first_frame" e.first_frame;
      put_u24 record ~field:"frame_count" e.frame_count;
      put_u8 record ~field:"register" e.register;
      put_u24 record ~field:"compensation gain"
        (int_of_float ((e.compensation *. gain_fixed_point) +. 0.5));
      put_u8 record ~field:"effective_max" e.effective_max;
      put_u32 record (crc32 (Buffer.contents record));
      Buffer.add_buffer buf record)
    track.Track.entries;
  Obs.Metrics.Counter.incr obs_tracks;
  Obs.Metrics.Counter.incr obs_track_bytes ~by:(Buffer.length buf);
  Buffer.contents buf

let encode_v1 track =
  let track = Track.merge_runs track in
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr 1);
  put_varint buf (quality_permille track.Track.quality);
  put_varint buf (int_of_float ((track.Track.fps *. 1000.) +. 0.5));
  put_varint buf track.Track.total_frames;
  put_string buf track.Track.clip_name;
  put_string buf track.Track.device_name;
  put_varint buf (Array.length track.Track.entries);
  Array.iter
    (fun (e : Track.entry) ->
      put_varint buf e.frame_count;
      put_u8 buf ~field:"register" e.register;
      put_varint buf (int_of_float ((e.compensation *. gain_fixed_point) +. 0.5));
      put_u8 buf ~field:"effective_max" e.effective_max)
    track.Track.entries;
  Obs.Metrics.Counter.incr obs_tracks;
  Obs.Metrics.Counter.incr obs_track_bytes ~by:(Buffer.length buf);
  Buffer.contents buf

let encoded_size track = String.length (encode track)

(* --- reading ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { data : string; mutable pos : int (* owned_by: the decoding call; a cursor never escapes it *) }

let need c n =
  if c.pos + n > String.length c.data then raise (Parse_error "truncated input")

let get_byte c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec loop shift acc =
    if shift > 56 then raise (Parse_error "varint too long");
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then raise (Parse_error "varint overflow");
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_string c =
  let n = get_varint c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_u24 c =
  need c 3;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) in
  c.pos <- c.pos + 3;
  v

let get_u32 c =
  need c 4;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let quality_of_permille p =
  match p with
  | 0 -> Quality_level.Lossless
  | 50 -> Quality_level.Loss_5
  | 100 -> Quality_level.Loss_10
  | 150 -> Quality_level.Loss_15
  | 200 -> Quality_level.Loss_20
  | p -> Quality_level.Custom (float_of_int p /. 1000.)

type header = {
  h_quality : Quality_level.t;
  h_fps : float;
  h_total_frames : int;
  h_clip_name : string;
  h_device_name : string;
  h_count : int;
  h_version : int;
}

(* Reads the common header; for v2 also checks the header CRC. The
   cursor is left at the first entry byte. *)
let get_header c =
  need c 4;
  if String.sub c.data 0 4 <> magic then raise (Parse_error "bad magic");
  c.pos <- 4;
  let v = get_byte c in
  if v <> 1 && v <> version then
    raise (Parse_error (Printf.sprintf "unsupported version %d" v));
  let h_quality = quality_of_permille (get_varint c) in
  let h_fps = float_of_int (get_varint c) /. 1000. in
  let h_total_frames = get_varint c in
  let h_clip_name = get_string c in
  let h_device_name = get_string c in
  let h_count = get_varint c in
  if v = version then begin
    let covered = c.pos in
    let stored = get_u32 c in
    if stored <> crc32_sub c.data ~pos:0 ~len:covered then
      raise (Parse_error "header CRC mismatch")
  end;
  { h_quality; h_fps; h_total_frames; h_clip_name; h_device_name; h_count;
    h_version = v }

(* Rejects a header whose declared record count cannot match the bytes
   that follow, *before* anything walks (or allocates for) the
   records: a truncated or tampered header must not trigger an
   unbounded [Array.make] or a CRC walk off the end of the payload.
   Division keeps the comparison overflow-safe for adversarial
   counts. *)
let check_count_fits h c =
  let remaining = String.length c.data - c.pos in
  if h.h_version = 1 then begin
    (* v1 entries are variable-length but at least 4 bytes each. *)
    if h.h_count > remaining / 4 then
      raise (Parse_error "record count disagrees with payload length")
  end
  else if remaining mod record_size <> 0 || h.h_count <> remaining / record_size
  then raise (Parse_error "record section length mismatch")

let dummy_entry =
  { Track.first_frame = 0; frame_count = 1; register = 0; compensation = 1.;
    effective_max = 0 }

let get_entries_v1 c count =
  let entries = Array.make count dummy_entry in
  let next = ref 0 in
  for i = 0 to count - 1 do
    let frame_count = get_varint c in
    let register = get_byte c in
    let compensation = float_of_int (get_varint c) /. gain_fixed_point in
    let effective_max = get_byte c in
    entries.(i) <-
      { Track.first_frame = !next; frame_count; register; compensation; effective_max };
    next := !next + frame_count
  done;
  entries

(* Parses one v2 record body (CRC already verified). *)
let get_entry_v2 c =
  let first_frame = get_u24 c in
  let frame_count = get_u24 c in
  let register = get_byte c in
  let compensation = float_of_int (get_u24 c) /. gain_fixed_point in
  let effective_max = get_byte c in
  { Track.first_frame; frame_count; register; compensation; effective_max }

let get_entries_v2 c count =
  let entries = Array.make count dummy_entry in
  for i = 0 to count - 1 do
    let body_pos = c.pos in
    let entry = get_entry_v2 c in
    let stored = get_u32 c in
    if stored <> crc32_sub c.data ~pos:body_pos ~len:(record_size - 4) then begin
      Obs.Metrics.Counter.incr obs_corrupt_records;
      raise (Parse_error "record CRC mismatch")
    end;
    entries.(i) <- entry
  done;
  entries

let decode data =
  let c = { data; pos = 0 } in
  try
    let h = get_header c in
    check_count_fits h c;
    let entries =
      if h.h_version = 1 then get_entries_v1 c h.h_count
      else get_entries_v2 c h.h_count
    in
    if c.pos <> String.length data then raise (Parse_error "trailing bytes");
    (try
       Ok
         (Track.make ~clip_name:h.h_clip_name ~device_name:h.h_device_name
            ~quality:h.h_quality ~fps:h.h_fps ~total_frames:h.h_total_frames
            entries)
     with Invalid_argument msg -> Error msg)
  with Parse_error msg -> Error msg

(* --- partial decode --------------------------------------------------- *)

type partial = {
  clip_name : string;
  device_name : string;
  quality : Quality_level.t;
  fps : float;
  total_frames : int;
  entries : Track.entry option array;
  corrupt_records : int;
  missing_records : int;
}

let span_ok byte_ok ~pos ~len =
  match byte_ok with
  | None -> true
  | Some ok ->
    let good = ref true in
    for i = pos to pos + len - 1 do
      if not ok.(i) then good := false
    done;
    !good

let decode_partial ?byte_ok data =
  (match byte_ok with
  | Some ok when Array.length ok <> String.length data ->
    invalid_arg "Encoding.decode_partial: byte_ok length mismatch"
  | _ -> ());
  let c = { data; pos = 0 } in
  try
    let h = get_header c in
    if not (span_ok byte_ok ~pos:0 ~len:c.pos) then
      raise (Parse_error "header bytes lost in transit");
    if h.h_version = 1 then begin
      (* v1 has no per-record framing: it is all-or-nothing. *)
      if not (span_ok byte_ok ~pos:0 ~len:(String.length data)) then
        raise (Parse_error "v1 payload incomplete");
      match decode data with
      | Error msg -> Error msg
      | Ok track ->
        Ok
          {
            clip_name = track.Track.clip_name;
            device_name = track.Track.device_name;
            quality = track.Track.quality;
            fps = track.Track.fps;
            total_frames = track.Track.total_frames;
            entries = Array.map Option.some track.Track.entries;
            corrupt_records = 0;
            missing_records = 0;
          }
    end
    else begin
      check_count_fits h c;
      let corrupt = ref 0 and missing = ref 0 in
      let next = ref 0 in
      let entries = Array.make h.h_count None in
      for i = 0 to h.h_count - 1 do
        let pos = c.pos in
        if not (span_ok byte_ok ~pos ~len:record_size) then begin
          c.pos <- pos + record_size;
          incr missing;
          Obs.Metrics.Counter.incr obs_missing_records
        end
        else begin
          let entry = get_entry_v2 c in
          let stored = get_u32 c in
          let valid =
            stored = crc32_sub data ~pos ~len:(record_size - 4)
            && entry.Track.frame_count > 0
            && entry.Track.compensation >= 1.
            && entry.Track.first_frame >= !next
            && entry.Track.first_frame + entry.Track.frame_count
               <= h.h_total_frames
          in
          if valid then begin
            next := entry.Track.first_frame + entry.Track.frame_count;
            entries.(i) <- Some entry
          end
          else begin
            incr corrupt;
            Obs.Metrics.Counter.incr obs_corrupt_records
          end
        end
      done;
      Ok
        {
          clip_name = h.h_clip_name;
          device_name = h.h_device_name;
          quality = h.h_quality;
          fps = h.h_fps;
          total_frames = h.h_total_frames;
          entries;
          corrupt_records = !corrupt;
          missing_records = !missing;
        }
    end
  with Parse_error msg -> Error msg
