let version = 1

let magic = "ANPW"

let gain_fixed_point = 4096.

(* --- writing ---------------------------------------------------------- *)

let put_varint buf n =
  if n < 0 then invalid_arg "Encoding: negative varint";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let quality_permille q =
  int_of_float ((Quality_level.allowed_loss q *. 1000.) +. 0.5)

let obs_tracks =
  Obs.counter ~help:"Annotation tracks serialised to the wire format"
    "annot_tracks_encoded_total" []

let obs_track_bytes =
  Obs.counter ~help:"Bytes of serialised annotation tracks"
    "annot_track_bytes_total" []

let encode track =
  let track = Track.merge_runs track in
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_varint buf (quality_permille track.Track.quality);
  put_varint buf (int_of_float ((track.Track.fps *. 1000.) +. 0.5));
  put_varint buf track.Track.total_frames;
  put_string buf track.Track.clip_name;
  put_string buf track.Track.device_name;
  put_varint buf (Array.length track.Track.entries);
  Array.iter
    (fun (e : Track.entry) ->
      put_varint buf e.frame_count;
      Buffer.add_char buf (Char.chr e.register);
      put_varint buf (int_of_float ((e.compensation *. gain_fixed_point) +. 0.5));
      Buffer.add_char buf (Char.chr e.effective_max))
    track.Track.entries;
  Obs.Metrics.Counter.incr obs_tracks;
  Obs.Metrics.Counter.incr obs_track_bytes ~by:(Buffer.length buf);
  Buffer.contents buf

let encoded_size track = String.length (encode track)

(* --- reading ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then raise (Parse_error "truncated input")

let get_byte c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec loop shift acc =
    if shift > 56 then raise (Parse_error "varint too long");
    let b = get_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_string c =
  let n = get_varint c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let quality_of_permille p =
  match p with
  | 0 -> Quality_level.Lossless
  | 50 -> Quality_level.Loss_5
  | 100 -> Quality_level.Loss_10
  | 150 -> Quality_level.Loss_15
  | 200 -> Quality_level.Loss_20
  | p -> Quality_level.Custom (float_of_int p /. 1000.)

let decode data =
  let c = { data; pos = 0 } in
  try
    need c 4;
    if String.sub data 0 4 <> magic then raise (Parse_error "bad magic");
    c.pos <- 4;
    let v = get_byte c in
    if v <> version then raise (Parse_error (Printf.sprintf "unsupported version %d" v));
    let quality = quality_of_permille (get_varint c) in
    let fps = float_of_int (get_varint c) /. 1000. in
    let total_frames = get_varint c in
    let clip_name = get_string c in
    let device_name = get_string c in
    let count = get_varint c in
    let entries = Array.make count
        { Track.first_frame = 0; frame_count = 1; register = 0;
          compensation = 1.; effective_max = 0 } in
    let next = ref 0 in
    for i = 0 to count - 1 do
      let frame_count = get_varint c in
      let register = get_byte c in
      let compensation = float_of_int (get_varint c) /. gain_fixed_point in
      let effective_max = get_byte c in
      entries.(i) <-
        { Track.first_frame = !next; frame_count; register; compensation; effective_max };
      next := !next + frame_count
    done;
    if c.pos <> String.length data then raise (Parse_error "trailing bytes");
    (try
       Ok (Track.make ~clip_name ~device_name ~quality ~fps ~total_frames entries)
     with Invalid_argument msg -> Error msg)
  with Parse_error msg -> Error msg
