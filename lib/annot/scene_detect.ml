type params = {
  change_threshold : float;
  min_scene_frames : int;
  mean_change_threshold : float;
}

let default_params =
  { change_threshold = 0.10; min_scene_frames = 6; mean_change_threshold = 0.40 }

let per_frame_params =
  { change_threshold = 0.; min_scene_frames = 1; mean_change_threshold = 0. }

type scene = { first : int; last : int }

let validate params =
  if params.change_threshold < 0. then
    invalid_arg "Scene_detect: negative change threshold";
  if params.mean_change_threshold < 0. then
    invalid_arg "Scene_detect: negative mean change threshold";
  if params.min_scene_frames < 1 then
    invalid_arg "Scene_detect: min scene length must be at least 1"

let relative_change previous current =
  let p = Float.max previous 1. in
  abs_float (current -. previous) /. p

(* A cut opens when a track departs from the previous frame by its
   threshold (hard cuts), or has drifted by the threshold since the
   scene began (fades and slow pans, whose per-frame steps are all
   sub-threshold); either way the minimum scene length gates the cut so
   the backlight cannot flicker. The mean criterion catches flashes
   whose maximum stays pinned while the content brightens wholesale. *)
let segment_general params ~n ~signals =
  validate params;
  if n = 0 then []
  else begin
    let scenes = ref [] in
    let start = ref 0 in
    let departs (value, threshold) i =
      threshold <= 0.
      || relative_change (value (i - 1)) (value i) >= threshold
      || relative_change (value !start) (value i) >= threshold
    in
    for i = 1 to n - 1 do
      let long_enough = i - !start >= params.min_scene_frames in
      if long_enough && List.exists (fun s -> departs s i) signals then begin
        scenes := { first = !start; last = i - 1 } :: !scenes;
        start := i
      end
    done;
    scenes := { first = !start; last = n - 1 } :: !scenes;
    List.rev !scenes
  end

let segment params track =
  let max_signal i = float_of_int track.(i) in
  segment_general params ~n:(Array.length track)
    ~signals:[ (max_signal, params.change_threshold) ]

let segment_with_means params ~max_track ~mean_track =
  if Array.length max_track <> Array.length mean_track then
    invalid_arg "Scene_detect: track length mismatch";
  let max_signal i = float_of_int max_track.(i) in
  let mean_signal i = mean_track.(i) in
  let signals =
    (max_signal, params.change_threshold)
    ::
    (if params.mean_change_threshold = infinity then []
     else [ (mean_signal, params.mean_change_threshold) ])
  in
  segment_general params ~n:(Array.length max_track) ~signals

let scene_count params track = List.length (segment params track)

let scene_max track s =
  let best = ref 0 in
  for i = s.first to s.last do
    if track.(i) > !best then best := track.(i)
  done;
  !best

let switches scenes = max 0 (List.length scenes - 1)

let pp_scene ppf s = Format.fprintf ppf "[%d..%d]" s.first s.last
