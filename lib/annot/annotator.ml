type profiled = {
  clip_name : string;
  fps : float;
  total_frames : int;
  histograms : Image.Histogram.t array;
  max_track : int array;
  mean_track : float array;
}

let obs_profiles =
  Obs.counter ~help:"Clips profiled into luminance histograms"
    "annot_profiles_total" []

let obs_scenes =
  Obs.counter ~help:"Scenes detected during annotation"
    "annot_scenes_detected_total" []

let profile ?plane ?pool clip =
  Obs.Trace.with_span "annot.profile"
    ~attrs:[ ("clip", clip.Video.Clip.name) ]
  @@ fun () ->
  Obs.Metrics.Counter.incr obs_profiles;
  let histograms =
    match pool with
    | None -> Video.Clip.histogram_track ?plane clip
    | Some pool ->
      (* The expensive pass: one render + pixel walk per frame. Each
         frame writes its own slot, so the memory image — and thus the
         whole [profiled] record — is bit-identical to the sequential
         walk at any domain count. *)
      let n = clip.Video.Clip.frame_count in
      let histograms = Array.make n (Image.Histogram.create ()) in
      Par.Pool.parallel_for pool ~lo:0 ~hi:(n - 1) (fun i ->
          histograms.(i) <- Video.Clip.frame_histogram ?plane clip i);
      histograms
  in
  let max_track =
    Array.map
      (fun h -> if Image.Histogram.total h = 0 then 0 else Image.Histogram.max_level h)
      histograms
  in
  let mean_track =
    Array.map
      (fun h -> if Image.Histogram.total h = 0 then 0. else Image.Histogram.mean h)
      histograms
  in
  {
    clip_name = clip.Video.Clip.name;
    fps = clip.Video.Clip.fps;
    total_frames = clip.Video.Clip.frame_count;
    histograms;
    max_track;
    mean_track;
  }

let scene_histogram profiled (scene : Scene_detect.scene) =
  let merged = Image.Histogram.create () in
  for i = scene.Scene_detect.first to scene.Scene_detect.last do
    Image.Histogram.merge_into ~dst:merged profiled.histograms.(i)
  done;
  merged

let annotate_profiled ?(scene_params = Scene_detect.default_params) ~device
    ~quality profiled =
  Obs.Trace.with_span "annot.annotate"
    ~attrs:
      [
        ("clip", profiled.clip_name);
        ("quality", Quality_level.label quality);
      ]
  @@ fun () ->
  let scenes =
    Scene_detect.segment_with_means scene_params ~max_track:profiled.max_track
      ~mean_track:profiled.mean_track
  in
  Obs.Metrics.Counter.incr obs_scenes ~by:(List.length scenes);
  (* Journaling must not disturb the solver's own observability
     ([solve] bumps counters), so the per-grid candidate registers are
     recomputed through the pure clip-level -> register path. *)
  let journal_decision i (scene : Scene_detect.scene) hist
      (sol : Backlight_solver.solution) =
    if Obs.enabled () && Obs.Journal.installed () then begin
      let pure_register q =
        let em =
          Image.Histogram.clip_level hist
            ~allowed_loss:(Quality_level.allowed_loss q)
        in
        Display.Device.register_for_gain device
          (if em = 0 then 0. else float_of_int em /. 255.)
      in
      Obs.Journal.record
        ~t_s:(float_of_int scene.Scene_detect.first /. profiled.fps)
        (Obs.Journal.Scene_decision
           {
             scene = i;
             first_frame = scene.Scene_detect.first;
             frame_count = scene.Scene_detect.last - scene.Scene_detect.first + 1;
             register = sol.Backlight_solver.register;
             effective_max = sol.Backlight_solver.effective_max;
             compensation_fp =
               int_of_float
                 (Float.round (sol.Backlight_solver.compensation *. 4096.));
             clipped_permille =
               int_of_float
                 (Float.round (sol.Backlight_solver.clipped_fraction *. 1000.));
             quality_permille =
               int_of_float
                 (Float.round (Quality_level.allowed_loss quality *. 1000.));
             candidates = List.map pure_register Quality_level.standard_grid;
           })
    end
  in
  let entries =
    List.mapi
      (fun i (scene : Scene_detect.scene) ->
        let hist = scene_histogram profiled scene in
        let sol = Backlight_solver.solve ~device ~quality hist in
        journal_decision i scene hist sol;
        {
          Track.first_frame = scene.Scene_detect.first;
          frame_count = scene.Scene_detect.last - scene.Scene_detect.first + 1;
          register = sol.Backlight_solver.register;
          compensation = sol.Backlight_solver.compensation;
          effective_max = sol.Backlight_solver.effective_max;
        })
      scenes
  in
  Track.make ~clip_name:profiled.clip_name
    ~device_name:device.Display.Device.name ~quality ~fps:profiled.fps
    ~total_frames:profiled.total_frames (Array.of_list entries)

let annotate ?scene_params ?pool ~device ~quality clip =
  annotate_profiled ?scene_params ~device ~quality (profile ?pool clip)
