type solution = {
  effective_max : int;
  desired_gain : float;
  register : int;
  realised_gain : float;
  compensation : float;
  clipped_fraction : float;
}

let of_effective_max ~device ~effective_max ~clipped_fraction =
  if effective_max < 0 || effective_max > 255 then
    invalid_arg "Backlight_solver: effective max out of [0, 255]";
  if effective_max = 0 then
    (* Scene is black (after clipping): any visible backlight works and
       no compensation is meaningful. *)
    let register = Display.Device.register_for_gain device 0. in
    {
      effective_max;
      desired_gain = 0.;
      register;
      realised_gain = Display.Device.backlight_gain device register;
      compensation = 1.;
      clipped_fraction;
    }
  else begin
    let desired_gain = float_of_int effective_max /. 255. in
    let register = Display.Device.register_for_gain device desired_gain in
    let realised_gain = Display.Device.backlight_gain device register in
    (* Discretisation can only raise the gain; never brighten the image
       beyond what the realised backlight requires. *)
    let compensation = if realised_gain > 0. then 1. /. realised_gain else 1. in
    let compensation = Float.max 1. compensation in
    { effective_max; desired_gain; register; realised_gain; compensation; clipped_fraction }
  end

let obs_solutions =
  Obs.counter ~help:"Backlight solver invocations" "annot_solver_solutions_total"
    []

let obs_clip_fraction =
  Obs.histogram ~help:"Distribution of clipped-pixel fractions chosen"
    ~buckets:Obs.Metrics.default_fraction_buckets "annot_clip_fraction" []

let solve ~device ~quality hist =
  let allowed = Quality_level.allowed_loss quality in
  let effective_max = Image.Histogram.clip_level hist ~allowed_loss:allowed in
  let total = Image.Histogram.total hist in
  let clipped_fraction =
    float_of_int (Image.Histogram.samples_above hist effective_max)
    /. float_of_int total
  in
  Obs.Metrics.Counter.incr obs_solutions;
  Obs.Metrics.Histogram.observe obs_clip_fraction clipped_fraction;
  of_effective_max ~device ~effective_max ~clipped_fraction

let backlight_power_fraction s = float_of_int s.register /. 255.

let pp ppf s =
  Format.fprintf ppf
    "<eff-max %d gain %.3f->%.3f reg %d comp x%.2f clip %.2f%%>" s.effective_max
    s.desired_gain s.realised_gain s.register s.compensation
    (100. *. s.clipped_fraction)
