(** Binary wire format for annotation tracks.

    §4.3: "The annotations are RLE compressed, so the overhead is
    minimal, in the order of hundreds of bytes for our video clips
    which are on the order of a few megabytes."

    Version 2 layout (varints are LEB128; u24/u32 little-endian):

    {v
    magic   "ANPW"            4 bytes
    version u8                currently 2
    quality varint            allowed loss in permille
    fps     varint            fps * 1000
    frames  varint            total frame count
    names   2 x (len varint, bytes)   clip name, device name
    count   varint            entry count (after run merging)
    hcrc    u32               CRC32 over every byte above
    records count x 15 bytes:
            first_frame u24, frame_count u24, register u8,
            compensation u24 (gain * 4096), effective u8,
            crc u32 (CRC32 over the record's first 11 bytes)
    v}

    Records are fixed-size and self-describing (they carry their own
    [first_frame]), so a client that loses or corrupts part of the
    payload can still place every surviving record — see
    {!decode_partial}. Version 1 (varint-packed entries, no CRCs, no
    explicit [first_frame]) is still read by {!decode}. *)

val encode : Track.t -> string
(** [encode track] serialises after {!Track.merge_runs} in the current
    (v2) format. Raises [Invalid_argument] naming the field when a
    value does not fit its fixed-width slot — [first_frame] /
    [frame_count] past 2^24 - 1 frames (a ~16.7M-frame clip) or a
    compensation gain overflowing the 12.12 fixed point — rather than
    wrapping into bytes that would still CRC as valid. *)

val encode_v1 : Track.t -> string
(** Legacy v1 writer, kept so decoder compatibility stays testable and
    old captures can be regenerated. Varint-packed, so long clips
    fit; u8 fields reject out-of-range values like {!encode}. *)

val decode : string -> (Track.t, string) result
(** [decode bytes] parses and re-validates; any corruption (including
    any CRC mismatch in a v2 payload) yields [Error] with a
    human-readable reason, never an exception. Reads versions 1
    and 2. *)

type partial = {
  clip_name : string;
  device_name : string;
  quality : Quality_level.t;
  fps : float;
  total_frames : int;
  entries : Track.entry option array;
      (** one slot per encoded record; [None] where the record was
          lost or failed its CRC *)
  corrupt_records : int;  (** records whose bytes arrived but lied *)
  missing_records : int;  (** records overlapping lost bytes *)
}

val decode_partial : ?byte_ok:bool array -> string -> (partial, string) result
(** [decode_partial ?byte_ok bytes] salvages what it can from a
    damaged v2 payload. [byte_ok.(i) = false] marks byte [i] as lost
    in transit (e.g. an unrecovered FEC group zero-filled by
    {!Streaming.Fec}); defaults to all-true. The header must survive
    intact (else [Error]); each record is then classified
    independently: missing when it overlaps lost bytes, corrupt when
    its CRC or sanity checks fail (bad frame span, overlap with an
    earlier record, compensation below 1), intact otherwise. A v1
    payload is all-or-nothing: fully intact or [Error]. Raises
    [Invalid_argument] when [byte_ok] does not match [bytes] in
    length. *)

val encoded_size : Track.t -> int
(** [encoded_size track] is [String.length (encode track)] — the
    overhead the bench reports against the encoded video size. *)

val crc32 : string -> int
(** CRC32 (IEEE 802.3) of a whole string —
    [crc32 "123456789" = 0xCBF43926]. Exposed for tests and tooling. *)

val crc32_sub : string -> pos:int -> len:int -> int
(** CRC32 of a substring, without copying — what the offline verifier
    ({!Check.Artifact}) uses to re-derive header and record checksums
    at their true offsets. *)

val record_size : int
(** Size in bytes of one fixed v2 record (currently 15). *)

val version : int
