(** The offline annotation pipeline.

    "The video clips available for streaming at the servers are first
    profiled, processed and annotated with data characterizing the
    luminance levels during various scenes" (§4). The pipeline makes a
    single pixel pass over the clip (collecting per-frame histograms),
    detects scenes, solves each scene's backlight, and assembles the
    annotation track. Profiling is separated from solving so a
    multi-quality, multi-device sweep (Fig 9/10) profiles each clip
    once. *)

type profiled = {
  clip_name : string;
  fps : float;
  total_frames : int;
  histograms : Image.Histogram.t array;  (** one per frame *)
  max_track : int array;  (** per-frame maximum luminance *)
  mean_track : float array;  (** per-frame mean luminance *)
}

val profile :
  ?plane:[ `Luma | `Channel_max ] ->
  ?pool:Par.Pool.t ->
  Video.Clip.t ->
  profiled
(** Single-pass profiling of a clip. The default [`Luma] plane is the
    paper's metric; [`Channel_max] makes the clipping budget exact on
    saturated-colour content at the cost of slightly conservative
    registers (channel max is at least luma, never below).

    With [pool], the per-frame histogram pass is chunked across the
    pool's domains; every frame still fills its own slot, so the
    result is bit-identical to the sequential pass — the determinism
    tests assert [profile ~pool] = [profile] field for field. *)

val annotate_profiled :
  ?scene_params:Scene_detect.params ->
  device:Display.Device.t ->
  quality:Quality_level.t ->
  profiled ->
  Track.t
(** Scene detection + per-scene solving on a cached profile. Default
    scene parameters are {!Scene_detect.default_params}. *)

val annotate :
  ?scene_params:Scene_detect.params ->
  ?pool:Par.Pool.t ->
  device:Display.Device.t ->
  quality:Quality_level.t ->
  Video.Clip.t ->
  Track.t
(** [annotate ~device ~quality clip] = profile then annotate; [pool]
    parallelises the profiling pass as in {!profile}. *)

val scene_histogram : profiled -> Scene_detect.scene -> Image.Histogram.t
(** Merged histogram of all frames in a scene. *)
