type rig = {
  response : Response.t;
  exposure : float;
  noise_sigma : float;
  seed : int;
}

(* Exposure such that a white pixel at full backlight lands at relative
   radiance ~0.97: bright but unsaturated, as a photographer would
   meter it. *)
let calibrated_exposure (device : Display.Device.t) =
  let white_lum =
    Display.Panel.emitted_luminance device.Display.Device.panel
      ~backlight_register:255 ~image_level:255
  in
  0.97 /. white_lum

let default_rig device =
  {
    response = Response.s_curve;
    exposure = calibrated_exposure device;
    noise_sigma = 1.2;
    seed = 424242;
  }

let noiseless_rig device =
  {
    response = Response.linear;
    exposure = calibrated_exposure device;
    noise_sigma = 0.;
    seed = 0;
  }

(* The sensor sees panel radiance for the pixel's luma. Tabulating the
   256 possible lumas once per capture keeps the per-pixel cost at one
   table access. *)
let level_table rig (device : Display.Device.t) ~backlight_register =
  Array.init 256 (fun luma ->
      let radiance =
        Display.Panel.emitted_luminance device.Display.Device.panel
          ~backlight_register ~image_level:luma
        *. rig.exposure
      in
      Response.apply rig.response radiance)

let capture rig device ~backlight_register frame =
  let table = level_table rig device ~backlight_register in
  let rng = Image.Prng.create ~seed:rig.seed in
  let noisy v =
    if rig.noise_sigma <= 0. then v
    else
      Image.Pixel.clamp_channel
        (v + int_of_float (Image.Prng.gaussian rng ~mu:0. ~sigma:rig.noise_sigma))
  in
  Image.Raster.map
    (fun p -> Image.Pixel.gray (noisy table.(Image.Pixel.luminance p)))
    frame

let capture_histogram rig device ~backlight_register frame =
  let table = level_table rig device ~backlight_register in
  let rng = Image.Prng.create ~seed:rig.seed in
  let hist = Image.Histogram.create () in
  let plane = Image.Raster.luminance_plane frame in
  let noisy v =
    if rig.noise_sigma <= 0. then v
    else
      Image.Pixel.clamp_channel
        (v + int_of_float (Image.Prng.gaussian rng ~mu:0. ~sigma:rig.noise_sigma))
  in
  Bytes.iter
    (fun c -> Image.Histogram.add_sample hist (noisy table.(Char.code c)))
    plane;
  hist

let measure_patch rig device ~backlight ~white =
  let table = level_table rig device ~backlight_register:backlight in
  float_of_int table.(Image.Pixel.clamp_channel white)
