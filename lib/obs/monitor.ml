type breach = { window : int; at_s : float; value : float }

type verdict = {
  rule : Slo.rule;
  evaluated : int;
  breached : int;
  worst : float option;
  final : float option;
  final_breach : bool;
  breaches : breach list;
}

type report = {
  window_s : float;
  windows : int;
  duration_s : float;
  verdicts : verdict list;
}

let max_breaches = 8

(* Known window-series names, declared by the instrumentation sites
   that feed them; the offline SLO checker reads this back. *)
(* guarded_by: declared_mutex *)
let declared : (string, unit) Hashtbl.t = Hashtbl.create 16
let declared_mutex = Mutex.create ()

let declare_series name =
  Mutex.lock declared_mutex;
  Hashtbl.replace declared name ();
  Mutex.unlock declared_mutex;
  name

let declared_series () =
  Mutex.lock declared_mutex;
  let names =
    Hashtbl.fold (fun name () acc -> name :: acc) declared []
    |> List.sort String.compare
  in
  Mutex.unlock declared_mutex;
  names

let frames_series = declare_series "frames"

(* The monitor mutex is held across every mutation below, but by the
   *public* entry points (tick/cut/report/incr/set_gauge): the
   internal helpers (window_reading, evaluate_window, seal_window)
   are lock-required functions, so the fields are declared owned
   rather than guarded — the ownership argument is the call
   discipline, not a per-access lock witness. *)
type rule_stats = {
  mutable evaluated : int;  (* owned_by: lock-required helpers under t.mutex *)
  mutable breached : int;  (* owned_by: lock-required helpers under t.mutex *)
  mutable worst : float option;  (* owned_by: lock-required helpers under t.mutex *)
  mutable breaches_rev : breach list;
      (* owned_by: lock-required helpers under t.mutex; newest first, capped *)
}

type t = {
  window_len : float;
  history : int;
  registry : Registry.t;
  rule_list : Slo.rule list;
  stats : rule_stats array;
  series : (string, Window.t) Hashtbl.t;  (* owned_by: lock-required helpers under t.mutex *)
  mutable now_s : float;  (* owned_by: lock-required helpers under t.mutex *)
  mutable window_start_s : float;  (* owned_by: lock-required helpers under t.mutex *)
  mutable window_index : int;  (* owned_by: lock-required helpers under t.mutex *)
  mutex : Mutex.t;
}

let create ?(window_s = 1.0) ?(history = 64) ?(registry = Registry.default)
    ?(rules = []) () =
  if window_s <= 0. then
    invalid_arg "Obs.Monitor.create: window_s must be positive";
  if history <= 0 then invalid_arg "Obs.Monitor.create: history must be positive";
  {
    window_len = window_s;
    history;
    registry;
    rule_list = rules;
    stats =
      Array.init (List.length rules) (fun _ ->
          { evaluated = 0; breached = 0; worst = None; breaches_rev = [] });
    series = Hashtbl.create 16;
    now_s = 0.;
    window_start_s = 0.;
    window_index = 0;
    mutex = Mutex.create ();
  }

let rules t = t.rule_list
let window_s t = t.window_len

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some w -> w
  | None ->
    let w = Window.create ~history:t.history () in
    Hashtbl.add t.series name w;
    w

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr t ?(by = 1) name =
  with_lock t (fun () -> Window.add (series t name) (float_of_int by))

let set_gauge t name v = with_lock t (fun () -> Window.set (series t name) v)

(* A window is "worse" the further it moves against the operator: for
   upper bounds (< / <=) that is the maximum reading, for lower bounds
   the minimum, and for equality the reading furthest from the
   target. *)
let worse_of (rule : Slo.rule) prev v =
  match prev with
  | None -> Some v
  | Some w -> (
    match rule.Slo.op with
    | Slo.Lt | Slo.Le -> Some (Float.max w v)
    | Slo.Gt | Slo.Ge -> Some (Float.min w v)
    | Slo.Eq ->
      if Float.abs (v -. rule.Slo.threshold) >= Float.abs (w -. rule.Slo.threshold)
      then Some v
      else Some w)

(* Reading of [rule] over the just-finished window, before its series
   are sealed. [None] means the rule has nothing to say this window. *)
let window_reading t (rule : Slo.rule) ~duration_s =
  match rule.stat with
  | Slo.Quantile q -> Registry.quantile_of_family ~registry:t.registry rule.metric q
  | Slo.Rate_per_s -> (
    match Hashtbl.find_opt t.series rule.metric with
    | None -> Some 0.
    | Some w -> Some (Window.current w /. duration_s))
  | Slo.Ratio_per_frame -> (
    match Hashtbl.find_opt t.series frames_series with
    | None -> None
    | Some frames ->
      let n = Window.current frames in
      if n <= 0. then None
      else
        let c =
          match Hashtbl.find_opt t.series rule.metric with
          | None -> 0.
          | Some w -> Window.current w
        in
        Some (c /. n))
  | Slo.Last -> (
    match Hashtbl.find_opt t.series rule.metric with
    | None -> None
    | Some w -> Window.last_value w)

let evaluate_window t ~at_s ~duration_s =
  List.iteri
    (fun i (rule : Slo.rule) ->
      match window_reading t rule ~duration_s with
      | None -> ()
      | Some v ->
        let s = t.stats.(i) in
        s.evaluated <- s.evaluated + 1;
        s.worst <- worse_of rule s.worst v;
        if not (Slo.holds rule.op ~value:v ~threshold:rule.threshold) then begin
          s.breached <- s.breached + 1;
          if List.length s.breaches_rev < max_breaches then
            s.breaches_rev <-
              { window = t.window_index; at_s; value = v } :: s.breaches_rev;
          Journal.record ~t_s:at_s
            (Journal.Slo_breach
               {
                 rule = rule.Slo.source;
                 window = t.window_index;
                 value_milli =
                   (if Float.is_finite v then
                      int_of_float (Float.round (v *. 1000.))
                    else 0);
                 window_us = int_of_float (Float.round (duration_s *. 1e6));
               });
          Log.warn ~scope:"monitor" (fun () ->
              ( "SLO breach: " ^ rule.Slo.source,
                [
                  ("rule", Json.String rule.Slo.source);
                  ("window", Json.Int t.window_index);
                  ("value", Json.Float v);
                  ("threshold", Json.Float rule.threshold);
                  ("at_s", Json.Float at_s);
                ] ))
        end)
    t.rule_list

let seal_window t ~close_at =
  let duration_s = close_at -. t.window_start_s in
  evaluate_window t ~at_s:close_at ~duration_s;
  (* lint: allow L003 closes every live window; visit order cannot reach output *)
  Hashtbl.iter
    (fun _ w ->
      ignore
        (Window.close w ~index:t.window_index ~start_s:t.window_start_s
           ~duration_s))
    t.series;
  t.window_index <- t.window_index + 1;
  t.window_start_s <- close_at

let tick t ~now_s =
  with_lock t (fun () ->
      if now_s > t.now_s then t.now_s <- now_s;
      while t.now_s -. t.window_start_s >= t.window_len do
        (* lint: allow C004 sealing must be atomic with window rotation;
           the registry/journal/log mutexes it reaches are leaf locks *)
        seal_window t ~close_at:(t.window_start_s +. t.window_len)
      done)

let cut t ~now_s =
  tick t ~now_s;
  with_lock t (fun () ->
      (* lint: allow C004 sealing must be atomic with window rotation; the locks it reaches are leaf locks *)
      if t.now_s > t.window_start_s then seal_window t ~close_at:t.now_s)

(* End-of-session reading over the whole run, for the FINAL column. *)
let final_reading t (rule : Slo.rule) ~duration_s =
  match rule.stat with
  | Slo.Quantile q -> Registry.quantile_of_family ~registry:t.registry rule.metric q
  | Slo.Rate_per_s ->
    if duration_s <= 0. then None
    else
      let total =
        match Hashtbl.find_opt t.series rule.metric with
        | None -> 0.
        | Some w -> Window.lifetime_total w
      in
      Some (total /. duration_s)
  | Slo.Ratio_per_frame -> (
    match Hashtbl.find_opt t.series frames_series with
    | None -> None
    | Some frames ->
      let n = Window.lifetime_total frames in
      if n <= 0. then None
      else
        let c =
          match Hashtbl.find_opt t.series rule.metric with
          | None -> 0.
          | Some w -> Window.lifetime_total w
        in
        Some (c /. n))
  | Slo.Last -> (
    match Hashtbl.find_opt t.series rule.metric with
    | None -> None
    | Some w -> Window.last_value w)

let report t =
  with_lock t (fun () ->
      (* lint: allow C004 sealing must be atomic with window rotation; the locks it reaches are leaf locks *)
      if t.now_s > t.window_start_s then seal_window t ~close_at:t.now_s;
      let duration_s = t.now_s in
      let verdicts =
        List.mapi
          (fun i rule ->
            let s = t.stats.(i) in
            (* lint: allow C004 whole-run reading under the report lock: the registry mutex it takes is a leaf lock *)
            let final = final_reading t rule ~duration_s in
            let final_breach =
              match final with
              | None -> false
              | Some v ->
                not (Slo.holds rule.Slo.op ~value:v ~threshold:rule.Slo.threshold)
            in
            {
              rule;
              evaluated = s.evaluated;
              breached = s.breached;
              worst = s.worst;
              final;
              final_breach;
              breaches = List.rev s.breaches_rev;
            })
          t.rule_list
      in
      { window_s = t.window_len; windows = t.window_index; duration_s; verdicts })

let verdict_ok (v : verdict) = v.breached = 0 && not v.final_breach

let healthy r = List.for_all verdict_ok r.verdicts

let float_str v = Printf.sprintf "%.6g" v

let opt_str = function None -> "-" | Some v -> float_str v

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>";
  fprintf ppf "=== health report ===@,";
  fprintf ppf "simulated %.6gs covered, %d windows of %.6gs, %d rules@,"
    r.duration_s r.windows r.window_s (List.length r.verdicts);
  if r.verdicts = [] then fprintf ppf "(no rules loaded)@,"
  else begin
    let rows =
      List.map
        (fun v ->
          ( v.rule.Slo.source,
            Printf.sprintf "%d/%d" v.breached v.evaluated,
            opt_str v.worst,
            opt_str v.final,
            (if verdict_ok v then "ok" else "BREACH") ))
        r.verdicts
    in
    let w1 =
      List.fold_left (fun acc (a, _, _, _, _) -> max acc (String.length a)) 4 rows
    in
    let w2 =
      List.fold_left (fun acc (_, b, _, _, _) -> max acc (String.length b)) 7 rows
    in
    let w3 =
      List.fold_left (fun acc (_, _, c, _, _) -> max acc (String.length c)) 5 rows
    in
    let w4 =
      List.fold_left (fun acc (_, _, _, d, _) -> max acc (String.length d)) 5 rows
    in
    fprintf ppf "%-*s  %*s  %*s  %*s  %s@," w1 "rule" w2 "breach" w3 "worst" w4
      "final" "verdict";
    List.iter
      (fun (a, b, c, d, e) ->
        fprintf ppf "%-*s  %*s  %*s  %*s  %s@," w1 a w2 b w3 c w4 d e)
      rows;
    List.iter
      (fun v ->
        List.iter
          (fun b ->
            fprintf ppf "  breach: %s -> %s in window %d @@ %.6gs@,"
              v.rule.Slo.source (float_str b.value) b.window b.at_s)
          v.breaches;
        if v.final_breach then
          fprintf ppf "  breach: %s -> %s over the whole session@,"
            v.rule.Slo.source (opt_str v.final))
      r.verdicts
  end;
  if healthy r then fprintf ppf "overall: OK"
  else
    fprintf ppf "overall: BREACH (%d of %d rules)"
      (List.length (List.filter (fun v -> not (verdict_ok v)) r.verdicts))
      (List.length r.verdicts);
  fprintf ppf "@]"

let report_to_json r =
  let fopt = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("window_s", Json.Float r.window_s);
      ("windows", Json.Int r.windows);
      ("duration_s", Json.Float r.duration_s);
      ("healthy", Json.Bool (healthy r));
      ( "rules",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("rule", Json.String v.rule.Slo.source);
                   ("evaluated", Json.Int v.evaluated);
                   ("breached", Json.Int v.breached);
                   ("worst", fopt v.worst);
                   ("final", fopt v.final);
                   ("ok", Json.Bool (verdict_ok v));
                   ( "breaches",
                     Json.List
                       (List.map
                          (fun b ->
                            Json.Obj
                              [
                                ("window", Json.Int b.window);
                                ("at_s", Json.Float b.at_s);
                                ("value", Json.Float b.value);
                              ])
                          v.breaches) );
                 ])
             r.verdicts) );
    ]

let instance : t option Atomic.t = Atomic.make None

let install t =
  Atomic.set instance (Some t);
  Control.set_monitor true

let uninstall () =
  Atomic.set instance None;
  Control.set_monitor false

let installed () = Atomic.get instance

let count ?by name =
  if Control.on () then
    match Atomic.get instance with
    | Some t -> incr t ?by name
    | None -> ()

let gauge name v =
  if Control.on () then
    match Atomic.get instance with
    | Some t -> set_gauge t name v
    | None -> ()

let advance ~now_s =
  if Control.on () then
    match Atomic.get instance with Some t -> tick t ~now_s | None -> ()

let scene_cut ~now_s =
  if Control.on () then
    match Atomic.get instance with Some t -> cut t ~now_s | None -> ()
