(** Streaming quantile sketch (Greenwald–Khanna / CKMS family).

    A bounded-memory summary of a stream of floats answering rank
    queries with a uniform guarantee: for a stream of [n] samples,
    [quantile t q] returns an {e observed} sample whose exact rank is
    within [epsilon * n] of [q * n]. Space is O((1/ε)·log(εn))
    tuples; inserts are buffered and merged in sorted batches, so the
    amortised per-sample cost is a comparison sort over a small
    buffer plus an occasional linear merge.

    The sketch is deterministic: the same observation sequence always
    yields the same summary and the same answers, which is what lets
    monitor reports on the simulated clock be reproduced bit-for-bit.
    It is not thread-safe; callers serialise access (the registry
    histograms guard theirs with a mutex). *)

type t

val create : ?epsilon:float -> unit -> t
(** [create ?epsilon ()] — default ε is 0.01 (ranks within 1 % of
    [n]). Raises [Invalid_argument] unless ε is in (0, 0.5). *)

val epsilon : t -> float

val observe : t -> float -> unit
(** Add one sample. NaN samples are dropped (they have no rank). *)

val count : t -> int
(** Samples observed (excluding dropped NaNs). *)

val quantile : t -> float -> float option
(** [quantile t q] for [q] in [0, 1] (clamped): an observed value
    whose rank is within [epsilon * count] of [q * count]; [None] on
    an empty sketch. [quantile t 0.] is the exact minimum and
    [quantile t 1.] the exact maximum. *)

val tuple_count : t -> int
(** Summary tuples currently held — the space the sketch actually
    uses; exposed so tests can pin the compression. *)

val reset : t -> unit
