(** Global observability switch.

    Every recording primitive (counter increments, span timing, log
    emission) checks this single atomic flag first, so a disabled
    build pays one load-and-branch per instrumentation site and
    nothing else — the "zero cost when disabled" contract. *)

val set : bool -> unit
val on : unit -> bool
