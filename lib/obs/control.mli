(** Global observability switches.

    Every recording primitive (counter increments, span timing, log
    emission) checks the main atomic flag first, so a disabled build
    pays one load-and-branch per instrumentation site and nothing
    else — the "zero cost when disabled" contract.

    The monitoring layer (quantile sketches attached to histograms,
    windowed series, SLO evaluation) has its own flag on top: it only
    records when {e both} flags are on, so enabling plain metrics
    never pays the sketch-maintenance cost. *)

val set : bool -> unit
val on : unit -> bool

val set_monitor : bool -> unit

val monitor_on : unit -> bool
(** True only when the main switch {e and} the monitor switch are on. *)
