(** Turning a decision journal back into a causal story.

    Three pure readbacks over {!Journal.event} lists, shared by the
    [inspect] CLI and the tests:

    - {!pp_timeline} renders a per-session, per-scene decision
      timeline, optionally joined with per-scene energy from a
      {!Profile.flamegraph} collapsed-stack file;
    - {!diff} aligns two journals index by index (deterministic runs
      agree event for event until the first divergent decision) and
      summarises the causal suffix on each side;
    - {!explain} walks back from every recorded SLO breach to the
      decision events inside the breached window and ranks likely
      causes by how often each decision kind fired there.

    Everything here reads events only — nothing feeds back into the
    pipeline. *)

val kind_label : Journal.kind -> string
(** Stable short label ("scene-decision", "nack-round", …) used in
    diffs, cause rankings and tests. *)

val pp_event : Format.formatter -> Journal.event -> unit
(** One-line human rendering of an event, timestamp included. *)

(** {1 Timeline} *)

val scene_energy_of_folded : string -> (int * int) list
(** [scene_energy_of_folded text] parses a collapsed-stack energy
    flame graph (the [--energy-profile] output: [seg;seg;... µJ]
    lines) and sums the microjoules filed under each [scene.N]
    segment, sorted by scene. Lines without a scene segment are
    ignored; malformed lines are skipped. *)

val pp_timeline :
  ?scene_energy_uj:(int * int) list ->
  Format.formatter ->
  Journal.event list ->
  unit
(** Sessions in order; per session the scene decisions (with energy
    context when provided), then the transmit and playback story. *)

(** {1 Run diff} *)

type divergence = {
  index : int;  (** position of the first differing event *)
  left : Journal.event option;  (** [None]: the left journal ended here *)
  right : Journal.event option;
  left_tail : (string * int) list;
      (** kind-label histogram of the left suffix from [index] on *)
  right_tail : (string * int) list;
}

val diff : Journal.event list -> Journal.event list -> divergence option
(** [None] when the journals are identical. Deterministic runs align
    index for index, so the first mismatch *is* the first divergent
    decision; the tails summarise everything downstream of it. *)

val pp_diff : Format.formatter -> divergence option -> unit

(** {1 Breach explanation} *)

type breach_explanation = {
  b_rule : string;
  b_window : int;
  b_at_us : int;
  b_value_milli : int;
  b_causes : (string * int) list;
      (** decision kinds ranked by occurrence count, likeliest first *)
  b_window_events : Journal.event list;
      (** playback decisions inside the breached window *)
  b_session_events : Journal.event list;
      (** session-scope decisions (degradations, FEC, NACK, DVFS) that
          preceded the breach in the same session *)
}

val explain : ?rules:string list -> Journal.event list -> breach_explanation list
(** One explanation per recorded [Slo_breach], in journal order.
    [rules] restricts the walk to breaches of the named rules
    (sources as written in the SLO file). Causes inside the window
    count double relative to session-scope context, so a breach that
    coincides with deadline misses ranks them above a session-wide
    DVFS choice. *)

val pp_explain : Format.formatter -> breach_explanation list -> unit
