(** Declarative service-level objectives over monitored series.

    A rule is one line of the [.slo] format:

    {v
    # comment                      blank lines and #-comments ignored
    streaming_frame_latency_seconds_p99 < 0.25
    annot_clip_fraction_p95 <= 0.10
    deadline_miss_rate < 0.05
    backlight_switches_per_s < 6.0
    power_cpu_mj < 2000
    v}

    The left-hand selector is a metric name plus an optional stat
    suffix deciding where the reading comes from:

    - [_pNN] — quantile NN of the registry histogram family of that
      name ([_p50] → 0.50, [_p99] → 0.99, [_p999] → 0.999), read from
      the sketches monitoring attaches; the worst labelled series is
      gated.
    - [_per_s] — windowed counter of that name divided by the window
      duration in simulated seconds.
    - [_rate] — windowed counter divided by the windowed [frames]
      counter (a per-frame miss ratio); skipped in windows with no
      frames.
    - no suffix — the monitor gauge of that name, most recent value.

    Operators: [<], [<=], [>], [>=], [==] (exact equality, for
    integer-valued counters like [annot_records_corrupt_total == 0]).
    The rule holds when [reading op threshold] is true. *)

type stat =
  | Quantile of float
  | Rate_per_s
  | Ratio_per_frame
  | Last

type op = Lt | Le | Gt | Ge | Eq

type rule = {
  metric : string;  (** base name, stat suffix stripped *)
  stat : stat;
  op : op;
  threshold : float;
  source : string;  (** the line as written, for reports *)
}

val parse_line : string -> (rule option, string) result
(** [Ok None] for blank lines and comments. *)

val parse : string -> (rule list, string) result
(** Whole-document parse; errors carry 1-based line numbers. *)

val load : path:string -> (rule list, string) result

val of_string_exn : string -> rule
(** Parse one rule, raising [Invalid_argument] — for building rule
    lists in code. *)

val defaults : quality:float -> rule list
(** The built-in gate used when no [--slo] file is given: frame
    latency p99, clip-fraction p95 against the session's
    clipped-pixel budget [quality] (a fraction), deadline-miss rate
    and backlight switch rate. *)

val op_name : op -> string

val holds : op -> value:float -> threshold:float -> bool

val pp : Format.formatter -> rule -> unit
