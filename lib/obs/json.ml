type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that parses back to the same float; JSON has no
   infinities, so clamp the non-finite cases to null-ish strings the
   reader understands. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Keep the token float-shaped: a huge integral value can render as
       bare digits, which would read back as an Int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then
      (* NaN / infinities are not representable in JSON. *)
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        render buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf key;
        Buffer.add_char buf ':';
        render buf value)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  render buf json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_string json)

(* --- reader -------------------------------------------------------------- *)

exception Parse_error of string

type reader = { text : string; mutable pos : int (* owned_by: the parsing call; a reader never escapes it *) }

let peek r = if r.pos < String.length r.text then Some r.text.[r.pos] else None

let advance r = r.pos <- r.pos + 1

let skip_ws r =
  let continue = ref true in
  while !continue do
    match peek r with
    | Some (' ' | '\t' | '\n' | '\r') -> advance r
    | _ -> continue := false
  done

let expect r c =
  match peek r with
  | Some got when got = c -> advance r
  | Some got -> raise (Parse_error (Printf.sprintf "expected %C, got %C" c got))
  | None -> raise (Parse_error (Printf.sprintf "expected %C, got end of input" c))

let parse_literal r word value =
  String.iter (fun c -> expect r c) word;
  value

let parse_string_body r =
  expect r '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek r with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance r
    | Some '\\' ->
      advance r;
      (match peek r with
      | Some '"' -> Buffer.add_char buf '"'; advance r
      | Some '\\' -> Buffer.add_char buf '\\'; advance r
      | Some '/' -> Buffer.add_char buf '/'; advance r
      | Some 'n' -> Buffer.add_char buf '\n'; advance r
      | Some 'r' -> Buffer.add_char buf '\r'; advance r
      | Some 't' -> Buffer.add_char buf '\t'; advance r
      | Some 'b' -> Buffer.add_char buf '\b'; advance r
      | Some 'f' -> Buffer.add_char buf '\012'; advance r
      | Some 'u' ->
        advance r;
        if r.pos + 4 > String.length r.text then
          raise (Parse_error "truncated \\u escape");
        let hex = String.sub r.text r.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> raise (Parse_error ("bad \\u escape " ^ hex))
        in
        r.pos <- r.pos + 4;
        (* The renderer only emits \u for control characters; decode
           the BMP code point as UTF-8 for completeness. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
      | Some c -> raise (Parse_error (Printf.sprintf "bad escape \\%C" c))
      | None -> raise (Parse_error "unterminated escape"));
      loop ()
    | Some c ->
      advance r;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number r =
  let start = r.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek r with Some c -> is_number_char c | None -> false) do
    advance r
  done;
  let text = String.sub r.text start (r.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> raise (Parse_error ("bad number " ^ text)))

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> raise (Parse_error "unexpected end of input")
  | Some 'n' -> parse_literal r "null" Null
  | Some 't' -> parse_literal r "true" (Bool true)
  | Some 'f' -> parse_literal r "false" (Bool false)
  | Some '"' -> String (parse_string_body r)
  | Some '[' ->
    advance r;
    skip_ws r;
    if peek r = Some ']' then begin
      advance r;
      List []
    end
    else begin
      let items = ref [ parse_value r ] in
      skip_ws r;
      while peek r = Some ',' do
        advance r;
        items := parse_value r :: !items;
        skip_ws r
      done;
      expect r ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance r;
    skip_ws r;
    if peek r = Some '}' then begin
      advance r;
      Obj []
    end
    else begin
      let field () =
        skip_ws r;
        let key = parse_string_body r in
        skip_ws r;
        expect r ':';
        let value = parse_value r in
        (key, value)
      in
      let fields = ref [ field () ] in
      skip_ws r;
      while peek r = Some ',' do
        advance r;
        fields := field () :: !fields;
        skip_ws r
      done;
      expect r '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number r
  | Some c -> raise (Parse_error (Printf.sprintf "unexpected %C" c))

let of_string text =
  let r = { text; pos = 0 } in
  match parse_value r with
  | value ->
    skip_ws r;
    if r.pos <> String.length text then Error "trailing garbage after value"
    else Ok value
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
