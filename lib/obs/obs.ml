(* lint: allow L006 umbrella namespace of aliases; contracts live in the member .mlis *)
(* Umbrella module: the public face of the observability layer.

   The layer observes the *simulator* — wall-clock stage timings,
   packet/frame/scene counts, solver behaviour — which is disjoint
   from Power.Meter, which accounts *simulated* energy inside the
   model. Keeping them separate means instrumentation can never leak
   into the physics (see DESIGN.md). *)

module Json = Json
module Clock = Clock
module Metrics = Metrics
module Registry = Registry
module Trace = Trace
module Log = Log
module Sketch = Sketch
module Window = Window
module Slo = Slo
module Monitor = Monitor
module Openmetrics = Openmetrics
module Timeseries = Timeseries
module Profile = Profile
module Journal = Journal
module Explain = Explain

let enable () = Control.set true

let disable () = Control.set false

let enabled () = Control.on ()

(* Monitoring (quantile sketches + windowed SLO evaluation) is a
   second switch on top of [enable]: it only takes effect while
   observability itself is on. *)
let enable_monitoring () = Control.set_monitor true

let disable_monitoring () = Control.set_monitor false

let monitoring () = Control.monitor_on ()

let with_enabled f =
  let was = Control.on () in
  Control.set true;
  Fun.protect ~finally:(fun () -> Control.set was) f

(* Shorthands for the common get-or-create calls, so instrumented
   libraries read [Obs.counter "..." []] instead of the full path. *)
let counter = Registry.counter ?registry:None

let gauge = Registry.gauge ?registry:None

let histogram = Registry.histogram ?registry:None

let timed h f =
  if Control.on () then begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Metrics.Histogram.observe h (Clock.ns_to_s (Clock.elapsed_ns ~since:t0)))
      f
  end
  else f ()

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* The installed profiler's counter track rides along with the spans,
   so one Perfetto load shows time and energy on the same timeline. *)
let write_chrome_trace ~path =
  let counters =
    match Profile.current () with
    | Some p -> Profile.counter_events p
    | None -> []
  in
  write_file ~path (Json.to_string (Trace.to_chrome_json ~counters ()))

let pp_summary ppf () =
  let snap = Registry.snapshot () in
  Format.fprintf ppf "@[<v>--- obs metrics ---@,%a@]" Registry.pp_text snap;
  if Trace.span_count () > 0 then
    Format.fprintf ppf "@[<v>--- obs spans ---@,%a@]" Trace.pp_flame ()
