type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  duration_ns : int64;
  children : span list;
}

(* Span under construction: children accumulate in reverse. *)
type building = {
  b_name : string;
  b_attrs : (string * string) list;
  b_start_ns : int64;
  mutable b_children : span list;
      (* owned_by: the domain building the span; the open-span stack is
         domain-confined (see below) *)
}

(* The collector is process-global. The open-span stack is not
   shared across domains — concurrent instrumented work from several
   domains is not a workload this simulator has — but the mutex keeps
   the completed-roots list coherent if it ever happens. *)
let mutex = Mutex.create ()

(* owned_by: the instrumenting domain; the open-span stack is not
   shared across domains (see the note above) *)
let stack : building list ref = ref []

(* guarded_by: mutex *)
let completed_roots : span list ref = ref []

let recorded = Atomic.make 0

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let finish b =
  let duration_ns = Clock.elapsed_ns ~since:b.b_start_ns in
  {
    name = b.b_name;
    attrs = b.b_attrs;
    start_ns = b.b_start_ns;
    duration_ns;
    children = List.rev b.b_children;
  }

let with_span ?(attrs = []) name f =
  if not (Control.on ()) then f ()
  else begin
    let b =
      { b_name = name; b_attrs = attrs; b_start_ns = Clock.now_ns (); b_children = [] }
    in
    with_lock (fun () -> stack := b :: !stack);
    Fun.protect
      ~finally:(fun () ->
        let span = finish b in
        Atomic.incr recorded;
        with_lock (fun () ->
            (match !stack with
            | top :: rest when top == b -> stack := rest
            | _ ->
              (* A span escaped its dynamic extent (effects, exotic
                 control flow): drop back to the roots rather than
                 corrupting the stack. *)
              stack := List.filter (fun s -> not (s == b)) !stack);
            match !stack with
            | parent :: _ -> parent.b_children <- span :: parent.b_children
            | [] -> completed_roots := span :: !completed_roots))
      f
  end

let roots () = with_lock (fun () -> List.rev !completed_roots)

let current_path () =
  with_lock (fun () -> List.rev_map (fun b -> b.b_name) !stack)

let reset () =
  with_lock (fun () ->
      stack := [];
      completed_roots := []);
  Atomic.set recorded 0

let span_count () = Atomic.get recorded

let rec find name = function
  | [] -> None
  | s :: rest ->
    if s.name = name then Some s
    else (
      match find name s.children with
      | Some _ as hit -> hit
      | None -> find name rest)

let total_ns name =
  let rec sum acc spans =
    List.fold_left
      (fun acc s ->
        let acc = if s.name = name then Int64.add acc s.duration_ns else acc in
        sum acc s.children)
      acc spans
  in
  sum 0L (roots ())

type hotspot = {
  h_name : string;
  h_count : int;
  h_total_ns : int64;
  h_max_ns : int64;
}

let critical_path ?(top = 10) () =
  let tbl : (string, int * int64 * int64) Hashtbl.t = Hashtbl.create 16 in
  let rec visit s =
    let c, tot, mx =
      Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0L, 0L)
    in
    Hashtbl.replace tbl s.name
      ( c + 1,
        Int64.add tot s.duration_ns,
        if Int64.compare s.duration_ns mx > 0 then s.duration_ns else mx );
    List.iter visit s.children
  in
  List.iter visit (roots ());
  Hashtbl.fold
    (fun name (c, tot, mx) acc ->
      { h_name = name; h_count = c; h_total_ns = tot; h_max_ns = mx } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int64.compare b.h_total_ns a.h_total_ns with
         | 0 -> String.compare a.h_name b.h_name
         | c -> c)
  |> List.filteri (fun i _ -> i < top)

let hotspots_to_json hotspots =
  Json.List
    (List.map
       (fun h ->
         Json.Obj
           [
             ("span", Json.String h.h_name);
             ("count", Json.Int h.h_count);
             ("total_ms", Json.Float (Clock.ns_to_s h.h_total_ns *. 1e3));
             ("max_ms", Json.Float (Clock.ns_to_s h.h_max_ns *. 1e3));
           ])
       hotspots)

let pp_flame ppf () =
  let rec pp_span ~indent ~parent_ns s =
    let ms = Clock.ns_to_s s.duration_ns *. 1e3 in
    let share =
      if Int64.compare parent_ns 0L > 0 then
        Printf.sprintf " (%.0f%%)"
          (100. *. Int64.to_float s.duration_ns /. Int64.to_float parent_ns)
      else ""
    in
    let attrs =
      match s.attrs with
      | [] -> ""
      | attrs ->
        " [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs) ^ "]"
    in
    Format.fprintf ppf "%s%s %.3f ms%s%s@," (String.make indent ' ') s.name ms
      share attrs;
    List.iter (pp_span ~indent:(indent + 2) ~parent_ns:s.duration_ns) s.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp_span ~indent:0 ~parent_ns:0L) (roots ());
  Format.fprintf ppf "@]"

type counter = {
  c_name : string;
  c_ts_ns : int64;
  c_values : (string * float) list;
}

let to_chrome_json ?(counters = []) () =
  (* Perfetto tolerates out-of-order "X" events but renders "C"
     counter tracks against the running timeline, so the combined
     stream must be in timestamp order. Tag every event with its
     start and stable-sort at the end — DFS emission order alone only
     covers the span-only case. *)
  let events = ref [] in
  let rec emit s =
    events :=
      ( s.start_ns,
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String "obs");
            ("ph", Json.String "X");
            ("ts", Json.Float (Clock.ns_to_us s.start_ns));
            ("dur", Json.Float (Clock.ns_to_us s.duration_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ( "args",
              Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs) );
          ] )
      :: !events;
    List.iter emit s.children
  in
  List.iter emit (roots ());
  List.iter
    (fun c ->
      events :=
        ( c.c_ts_ns,
          Json.Obj
            [
              ("name", Json.String c.c_name);
              ("cat", Json.String "obs");
              ("ph", Json.String "C");
              ("ts", Json.Float (Clock.ns_to_us c.c_ts_ns));
              ("pid", Json.Int 1);
              ( "args",
                Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) c.c_values)
              );
            ] )
        :: !events)
    counters;
  List.rev !events
  |> List.stable_sort (fun (a, _) (b, _) -> Int64.compare a b)
  |> List.map snd
  |> fun sorted -> Json.List sorted
