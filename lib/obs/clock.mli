(** Monotone wall-clock for span timing.

    Readings are non-decreasing across the process even if the
    underlying wall clock steps backwards, so span durations and
    nesting invariants (child intervals inside the parent interval)
    always hold. *)

val now_ns : unit -> int64
(** Current time in nanoseconds, monotone non-decreasing. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since] is [now_ns () - since], never negative. *)

val ns_to_s : int64 -> float

val ns_to_us : int64 -> float
