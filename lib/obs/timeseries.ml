(* Label-keyed, fixed-interval time series on the *simulated* clock.

   Each series is a bounded array of buckets covering [0, capacity *
   interval). When an observation lands past the window, adjacent
   bucket pairs merge and the interval doubles until it fits — the
   downsample keeps memory constant over arbitrarily long sessions
   while the stored state stays a pure function of the observation
   multiset: the per-bucket merge (count/sum/max) is commutative and
   associative, so neither arrival order nor how the feed was chunked
   can show in a snapshot. The store refuses new (name, labels) pairs
   past [max_series] and counts the refusals, so a runaway label set
   (thousands of fleet sessions, say) degrades into a counter instead
   of an unbounded registry. *)

type merge = Sum | Avg | Max

let merge_name = function Sum -> "sum" | Avg -> "avg" | Max -> "max"

type point = { p_count : int; p_sum : float; p_max : float }

let empty_point = { p_count = 0; p_sum = 0.; p_max = neg_infinity }

let point_of_sample v = { p_count = 1; p_sum = v; p_max = v }

let merge_points a b =
  if a.p_count = 0 then b
  else if b.p_count = 0 then a
  else
    {
      p_count = a.p_count + b.p_count;
      p_sum = a.p_sum +. b.p_sum;
      p_max = Float.max a.p_max b.p_max;
    }

let point_value merge p =
  if p.p_count = 0 then None
  else
    Some
      (match merge with
      | Sum -> p.p_sum
      | Avg -> p.p_sum /. float_of_int p.p_count
      | Max -> p.p_max)

type series = {
  s_name : string;
  s_labels : (string * string) list;
  s_merge : merge;
  mutable s_interval_s : float;
      (* owned_by: the series' owner; observe/compact run under the
         owner's lock (the profiler's mutex), never concurrently *)
  s_buckets : point array;
  mutable s_downsamples : int;  (* owned_by: same discipline as s_interval_s *)
}

let series_name s = s.s_name

let series_labels s = s.s_labels

let series_merge s = s.s_merge

let interval_s s = s.s_interval_s

let downsamples s = s.s_downsamples

(* Pairwise merge into the lower half, doubling the interval. The
   capacity is forced even at creation, so no bucket straddles the
   fold. *)
let compact se =
  let n = Array.length se.s_buckets in
  for k = 0 to (n / 2) - 1 do
    se.s_buckets.(k) <- merge_points se.s_buckets.(2 * k) se.s_buckets.((2 * k) + 1)
  done;
  for k = n / 2 to n - 1 do
    se.s_buckets.(k) <- empty_point
  done;
  se.s_interval_s <- se.s_interval_s *. 2.;
  se.s_downsamples <- se.s_downsamples + 1

let rec bucket_index se t =
  let i = int_of_float (t /. se.s_interval_s) in
  if i < Array.length se.s_buckets then max 0 i
  else begin
    compact se;
    bucket_index se t
  end

let observe se ~t_s v =
  (* Non-finite samples would poison every later merge; drop them, as
     the histogram NaN guard does. Non-finite timestamps clamp to the
     origin rather than looping the compactor forever. *)
  if Float.is_finite v then begin
    let t = if Float.is_finite t_s then Float.max 0. t_s else 0. in
    let i = bucket_index se t in
    se.s_buckets.(i) <- merge_points se.s_buckets.(i) (point_of_sample v)
  end

(* --- the store --------------------------------------------------------- *)

type t = {
  mutex : Mutex.t;
  interval_s : float;
  capacity : int;
  max_series : int;
  tbl : (string * (string * string) list, series) Hashtbl.t;  (* guarded_by: mutex *)
  mutable dropped : int;  (* guarded_by: mutex *)
}

(* Process-wide refusal count, surfaced by the default registry as the
   synthetic [obs_series_dropped_total] family so any export shows
   when a store hit its cardinality guard. *)
let global_dropped = Atomic.make 0

let dropped_total () = Atomic.get global_dropped

let create ?(max_series = 64) ?(interval_s = 1.) ?(capacity = 256) () =
  if interval_s <= 0. then invalid_arg "Timeseries.create: interval must be positive";
  if capacity < 2 then invalid_arg "Timeseries.create: capacity must be at least 2";
  if max_series < 1 then invalid_arg "Timeseries.create: max_series must be positive";
  {
    mutex = Mutex.create ();
    interval_s;
    capacity = (capacity + 1) / 2 * 2 (* even, see [compact] *);
    max_series;
    tbl = Hashtbl.create 16;
    dropped = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let normalise_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let series t ?(merge = Sum) name labels =
  let labels = normalise_labels labels in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl (name, labels) with
      | Some se ->
        if se.s_merge <> merge then
          invalid_arg
            (Printf.sprintf "Timeseries: %s is a %s series, requested as %s" name
               (merge_name se.s_merge) (merge_name merge));
        Some se
      | None ->
        if Hashtbl.length t.tbl >= t.max_series then begin
          t.dropped <- t.dropped + 1;
          Atomic.incr global_dropped;
          None
        end
        else begin
          let se =
            {
              s_name = name;
              s_labels = labels;
              s_merge = merge;
              s_interval_s = t.interval_s;
              s_buckets = Array.make t.capacity empty_point;
              s_downsamples = 0;
            }
          in
          Hashtbl.add t.tbl (name, labels) se;
          Some se
        end)

let dropped t = with_lock t (fun () -> t.dropped)

let series_count t = with_lock t (fun () -> Hashtbl.length t.tbl)

(* --- snapshots ---------------------------------------------------------- *)

type snap_point = { t_s : float; count : int; sum : float; max_v : float }

type snap = {
  sn_name : string;
  sn_labels : (string * string) list;
  sn_merge : merge;
  sn_interval_s : float;
  sn_points : snap_point list;  (* non-empty buckets, ascending time *)
}

let compare_labels a b =
  compare
    (List.map (fun (k, v) -> k ^ "\000" ^ v) a)
    (List.map (fun (k, v) -> k ^ "\000" ^ v) b)

let snapshot_series se =
  let points = ref [] in
  let n = Array.length se.s_buckets in
  for i = n - 1 downto 0 do
    let p = se.s_buckets.(i) in
    if p.p_count > 0 then
      points :=
        {
          t_s = float_of_int i *. se.s_interval_s;
          count = p.p_count;
          sum = p.p_sum;
          max_v = p.p_max;
        }
        :: !points
  done;
  {
    sn_name = se.s_name;
    sn_labels = se.s_labels;
    sn_merge = se.s_merge;
    sn_interval_s = se.s_interval_s;
    sn_points = !points;
  }

let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ se acc -> snapshot_series se :: acc) t.tbl []
      |> List.sort (fun a b ->
             match String.compare a.sn_name b.sn_name with
             | 0 -> compare_labels a.sn_labels b.sn_labels
             | c -> c))

let snap_value merge (p : snap_point) =
  match
    point_value merge { p_count = p.count; p_sum = p.sum; p_max = p.max_v }
  with
  | Some v -> v
  | None -> 0.

(* Whole-series roll-up under the series' own merge: total for [Sum],
   overall mean for [Avg], running max for [Max]. *)
let total (s : snap) =
  let folded =
    List.fold_left
      (fun acc p ->
        merge_points acc { p_count = p.count; p_sum = p.sum; p_max = p.max_v })
      empty_point s.sn_points
  in
  match point_value s.sn_merge folded with Some v -> v | None -> 0.

(* --- diff ---------------------------------------------------------------- *)

type change = {
  c_name : string;
  c_labels : (string * string) list;
  c_before : float option;  (* None: series absent on that side *)
  c_after : float option;
}

let delta c =
  Option.value c.c_after ~default:0. -. Option.value c.c_before ~default:0.

let diff ~before ~after =
  let key (s : snap) = (s.sn_name, s.sn_labels) in
  let changes = ref [] in
  List.iter
    (fun (b : snap) ->
      let a = List.find_opt (fun a -> key a = key b) after in
      changes :=
        {
          c_name = b.sn_name;
          c_labels = b.sn_labels;
          c_before = Some (total b);
          c_after = Option.map total a;
        }
        :: !changes)
    before;
  List.iter
    (fun (a : snap) ->
      if not (List.exists (fun b -> key b = key a) before) then
        changes :=
          {
            c_name = a.sn_name;
            c_labels = a.sn_labels;
            c_before = None;
            c_after = Some (total a);
          }
          :: !changes)
    after;
  List.sort
    (fun a b ->
      match String.compare a.c_name b.c_name with
      | 0 -> compare_labels a.c_labels b.c_labels
      | c -> c)
    !changes

(* --- rendering ----------------------------------------------------------- *)

let snap_to_json (s : snap) =
  Json.Obj
    [
      ("name", Json.String s.sn_name);
      ( "labels",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.sn_labels) );
      ("merge", Json.String (merge_name s.sn_merge));
      ("interval_s", Json.Float s.sn_interval_s);
      ( "points",
        Json.List
          (List.map
             (fun (p : snap_point) ->
               Json.Obj
                 [
                   ("t_s", Json.Float p.t_s);
                   ("value", Json.Float (snap_value s.sn_merge p));
                   ("count", Json.Int p.count);
                 ])
             s.sn_points) );
    ]

let to_json t = Json.List (List.map snap_to_json (snapshot t))
