(** Structured, leveled event logging with pluggable sinks.

    An event carries a level, a scope (subsystem name), a message and
    optional structured fields. Nothing is formatted or allocated
    unless observability is enabled, the level clears the threshold
    {e and} at least one sink is attached — the lazy [debug]/[info]/…
    entry points take a closure so disabled call sites cost one check. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

type event = {
  ts_ns : int64;
  level : level;
  scope : string;
  message : string;
  fields : (string * Json.t) list;
}

val event_to_json : event -> Json.t

(** {1 Sinks} *)

type sink_id

val attach : (event -> unit) -> sink_id
(** Attach a custom sink; it receives every event that clears the
    level threshold. *)

val detach : sink_id -> unit
val detach_all : unit -> unit

val attach_stderr : unit -> sink_id
(** Human-readable one-line-per-event sink on stderr. *)

val attach_jsonl : path:string -> sink_id
(** JSONL file sink; each event is one JSON object per line, flushed
    on write. Detaching closes the file. *)

val attach_ring : capacity:int -> sink_id * (unit -> event list)
(** In-memory ring buffer keeping the last [capacity] events, oldest
    first on read — intended for tests. *)

(** {1 Emission} *)

val set_level : level -> unit
(** Minimum level that reaches the sinks; default [Info]. *)

val get_level : unit -> level

val would_log : level -> bool
(** True when an event at this level would reach at least one sink. *)

val emit : level -> scope:string -> ?fields:(string * Json.t) list -> string -> unit

val debug : scope:string -> (unit -> string * (string * Json.t) list) -> unit
val info : scope:string -> (unit -> string * (string * Json.t) list) -> unit
val warn : scope:string -> (unit -> string * (string * Json.t) list) -> unit
val error : scope:string -> (unit -> string * (string * Json.t) list) -> unit
