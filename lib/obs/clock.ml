(* The wall clock can step backwards (NTP); a CAS loop pins readings
   to the latest value observed so far, which makes the clock monotone
   without needing a platform monotonic-clock binding. *)
let last = Atomic.make 0L

let rec now_ns () =
  (* lint: allow L001 this shim is the one sanctioned ambient-clock reader *)
  let raw = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Atomic.get last in
  if Int64.compare raw prev <= 0 then prev
  else if Atomic.compare_and_set last prev raw then raw
  else now_ns ()

let elapsed_ns ~since =
  let d = Int64.sub (now_ns ()) since in
  if Int64.compare d 0L < 0 then 0L else d

let ns_to_s ns = Int64.to_float ns /. 1e9

let ns_to_us ns = Int64.to_float ns /. 1e3
