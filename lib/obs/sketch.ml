(* Greenwald–Khanna quantile summary with the CKMS-style simplified
   band condition: every tuple keeps g (count of samples it absorbs)
   and delta (rank uncertainty), compress merges a tuple into its
   right neighbour while g_i + g_{i+1} + delta_{i+1} <= floor(2*eps*n),
   and interior inserts take delta = floor(2*eps*n). The two
   endpoints are never merged away, so q = 0 / q = 1 stay exact. *)

type tuple = { v : float; g : int; delta : int }

(* A sketch never synchronizes itself: each one is a private member
   of a histogram, which serialises access through its sketch_mutex. *)
type t = {
  epsilon : float;
  mutable n : int;  (* owned_by: Histogram via sketch_mutex; samples already merged *)
  mutable tuples : tuple array;  (* owned_by: Histogram via sketch_mutex; sorted ascending by v *)
  buffer : float array;  (* pending samples, unsorted *)
  mutable buf_len : int;  (* owned_by: Histogram via sketch_mutex *)
}

let create ?(epsilon = 0.01) () =
  if not (epsilon > 0. && epsilon < 0.5) then
    invalid_arg "Obs.Sketch.create: epsilon must be in (0, 0.5)";
  let cap = max 16 (int_of_float (ceil (1. /. (2. *. epsilon)))) in
  { epsilon; n = 0; tuples = [||]; buffer = Array.make cap 0.; buf_len = 0 }

let epsilon t = t.epsilon

let count t = t.n + t.buf_len

let band t = int_of_float (2. *. t.epsilon *. float_of_int t.n)

let compress t =
  let s = Array.length t.tuples in
  if s > 2 then begin
    let thr = band t in
    (* Right-to-left pass writing the survivors into the tail of a
       scratch array; tuple 0 (the minimum) is excluded from merging. *)
    let out = Array.make s t.tuples.(0) in
    let k = ref (s - 1) in
    out.(!k) <- t.tuples.(s - 1);
    for i = s - 2 downto 1 do
      let next = out.(!k) in
      if t.tuples.(i).g + next.g + next.delta <= thr then
        out.(!k) <- { next with g = next.g + t.tuples.(i).g }
      else begin
        decr k;
        out.(!k) <- t.tuples.(i)
      end
    done;
    decr k;
    out.(!k) <- t.tuples.(0);
    t.tuples <- Array.sub out !k (s - !k)
  end

let flush t =
  if t.buf_len > 0 then begin
    let fresh = Array.sub t.buffer 0 t.buf_len in
    t.buf_len <- 0;
    Array.sort Float.compare fresh;
    let old = t.tuples in
    let s = Array.length old and b = Array.length fresh in
    let merged = Array.make (s + b) { v = 0.; g = 0; delta = 0 } in
    let oi = ref 0 and bi = ref 0 in
    for k = 0 to s + b - 1 do
      if !bi >= b || (!oi < s && old.(!oi).v <= fresh.(!bi)) then begin
        merged.(k) <- old.(!oi);
        incr oi
      end
      else begin
        t.n <- t.n + 1;
        (* A sample below the current minimum or above the current
           maximum has an exactly known rank; interior inserts carry
           the band's worth of uncertainty. *)
        let delta = if !oi = 0 || !oi = s then 0 else band t in
        merged.(k) <- { v = fresh.(!bi); g = 1; delta };
        incr bi
      end
    done;
    t.tuples <- merged;
    compress t
  end

let observe t v =
  if not (Float.is_nan v) then begin
    t.buffer.(t.buf_len) <- v;
    t.buf_len <- t.buf_len + 1;
    if t.buf_len = Array.length t.buffer then flush t
  end

let quantile t q =
  flush t;
  let s = Array.length t.tuples in
  if s = 0 then None
  else if s = 1 then Some t.tuples.(0).v
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let nf = float_of_int t.n in
    let target = q *. nf in
    let allowed = t.epsilon *. nf in
    (* Return the last tuple whose successor could still overshoot the
       allowed rank window — the standard GK query. *)
    let rec go i rmin =
      if i = s - 1 then t.tuples.(s - 1).v
      else begin
        let rmin = rmin + t.tuples.(i).g in
        let next = t.tuples.(i + 1) in
        if float_of_int (rmin + next.g + next.delta) > target +. allowed then
          t.tuples.(i).v
        else go (i + 1) rmin
      end
    in
    Some (go 0 0)
  end

let tuple_count t =
  flush t;
  Array.length t.tuples

let reset t =
  t.n <- 0;
  t.tuples <- [||];
  t.buf_len <- 0
