(** OpenMetrics / Prometheus text exposition.

    Renders a registry snapshot in the OpenMetrics text format:
    [# HELP] / [# TYPE] headers per family — plus a [# UNIT] line
    when the family name ends in a recognised unit suffix
    ([_seconds], [_mj], [_joules], ...) — cumulative
    [_bucket{le="..."}] series plus [_sum] / [_count] for histograms,
    and a closing [# EOF]. Counter families are exposed under the
    spec-mandated [_total] sample name (the [# TYPE] line carries the
    base name). Non-finite values render as the spec's [+Inf] /
    [-Inf] / [NaN] spellings.

    Optionally appended to the scrape:
    - quantile summaries — one [<family>_quantiles] summary family
      per histogram family with sketch data, series labelled
      [quantile="0.5"] etc.;
    - the trace critical path — [trace_span_seconds{span=...,stat=...}]
      and [trace_span_count{span=...}] gauges, top stages by total
      recorded time.

    Everything is rendered from deterministic snapshots, so two runs
    of a seeded session produce byte-identical scrapes (modulo the
    wall-clock trace section). *)

val render :
  ?quantiles:Registry.quantile_series list ->
  ?critical_path:Trace.hotspot list ->
  Registry.snapshot ->
  string
(** Render an existing snapshot (plus optional extras) to a complete
    exposition ending in [# EOF]. *)

val of_registry :
  ?registry:Registry.t ->
  ?qs:float list ->
  ?trace_top:int ->
  unit ->
  string
(** One-call scrape: snapshots [registry] (default the process-global
    one), reads its quantile sketches at [qs] (default
    {!Registry.default_quantiles}) and summarises the trace critical
    path ([trace_top] stages, default 10; pass [0] to omit the trace
    section). *)

val write_file : path:string -> string -> (unit, string) result
(** Write an exposition to [path]; errors carry the [Sys_error]
    message. *)
