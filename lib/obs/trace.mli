(** Span tracing.

    [with_span] times a region on the monotone clock and records it in
    a per-run trace tree; nested calls become child spans. When
    observability is disabled the callback runs directly — no clock
    reads, no allocation. The accumulated tree renders as a
    flame-style text dump or exports as Chrome [trace_event] JSON
    (load the file at chrome://tracing or https://ui.perfetto.dev). *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  duration_ns : int64;
  children : span list;  (** in start order *)
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the callback inside a new span. Exception-safe: the span is
    closed and recorded even if the callback raises. *)

val roots : unit -> span list
(** Completed top-level spans, in start order. *)

val current_path : unit -> string list
(** Names of the spans currently open on this domain's stack,
    outermost first — the attribution prefix the energy profiler
    files samples under. Empty outside any span. *)

val reset : unit -> unit
(** Drop all recorded spans (start of a fresh run). *)

val span_count : unit -> int
(** Total spans recorded, including children. *)

val find : string -> span list -> span option
(** Depth-first search by name. *)

val total_ns : string -> int64
(** Summed duration of every recorded span with the given name. *)

(** {1 Critical path} *)

type hotspot = {
  h_name : string;  (** span / stage name *)
  h_count : int;  (** occurrences across the trace *)
  h_total_ns : int64;
  h_max_ns : int64;  (** slowest single occurrence *)
}

val critical_path : ?top:int -> unit -> hotspot list
(** The [top] (default 10) stages by total recorded time, worst
    first — a per-stage summary of where the run's wall clock went.
    Ties break on name so the order is deterministic. *)

val hotspots_to_json : hotspot list -> Json.t

val pp_flame : Format.formatter -> unit -> unit
(** Indented tree of the recorded spans with durations and each
    child's share of its parent. *)

(** {1 Chrome export} *)

type counter = {
  c_name : string;  (** counter track name *)
  c_ts_ns : int64;
  c_values : (string * float) list;  (** one stacked value per key *)
}
(** A Chrome [trace_event] counter ("ph":"C") sample — Perfetto draws
    each one as a point on a stacked counter track. *)

val to_chrome_json : ?counters:counter list -> unit -> Json.t
(** The recorded tree as a Chrome [trace_event] array of complete
    ("ph":"X") events; attrs become event [args]. [counters] are
    interleaved as "ph":"C" events, and the combined stream is sorted
    by timestamp so counter tracks render correctly in Perfetto. *)
