(** Energy-attribution profiler.

    Answers "where do the joules go?" the way the span tracer answers
    "where does the time go?". Metering sites ({!Power.Meter.publish},
    the streaming session's per-scene attribution hook) report
    (component, millijoules) samples; the profiler files each under
    the attribution path formed by the currently open span stack,
    an optional scene segment, and the component name — yielding a
    session → stage → scene → component hierarchy. The same sample
    also feeds a per-component {!Timeseries} on the simulated clock,
    a cumulative [profile_energy_mj{component}] registry gauge, and a
    Chrome [trace_event] counter track.

    Attribution is observational only: no consumer of the profiler
    influences pipeline behaviour, and when no profiler is installed
    (or observability is off) {!record} is a no-op, so session
    reports are byte-identical with and without profiling. *)

type t

val create : ?interval_s:float -> ?max_series:int -> unit -> t
(** Defaults: 1 s time-series buckets, at most 64 series. *)

(** {1 Process-global instance}

    Mirrors {!Monitor}: one profiler may be installed process-wide;
    instrumentation sites feed it through {!record}, which no-ops
    when nothing is installed. *)

val install : t -> unit

val uninstall : unit -> unit

val current : unit -> t option

val installed : unit -> bool

val record : ?t_s:float -> ?scene:int -> component:string -> float -> unit
(** [record ~component mj] attributes [mj] millijoules to [component]
    under the currently open span path on the installed profiler.
    [t_s] places the sample on the simulated clock for the time
    series (default 0); [scene] inserts a [scene.N] path segment
    between the span stack and the component. No-op when
    observability is off or no profiler is installed; non-finite
    samples are dropped. *)

(** {1 Readbacks}

    All deterministic: sorted by path / component name. *)

val samples : t -> int

val stacks : t -> (string list * float) list
(** Attributed millijoules per full path, sorted by path. *)

val by_component : t -> (string * float) list

val total_mj : t -> float

val counter_events : t -> Trace.counter list
(** One Chrome counter sample per recording (cumulative per-component
    totals), oldest first — pass to {!Trace.to_chrome_json}. *)

val timeseries : t -> Timeseries.t

(** {1 Rendering} *)

val flamegraph : t -> string
(** Collapsed-stack text ([path;to;component value] lines, one per
    attribution path, values in integer microjoules) — feed to any
    flamegraph.pl-compatible renderer or speedscope. *)

val to_json : t -> Json.t

val pp_summary : Format.formatter -> t -> unit
