type kind = Counter | Gauge | Histogram

type instrument =
  | C of Metrics.Counter.t
  | G of Metrics.Gauge.t
  | H of Metrics.Histogram.t

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_buckets : float array;  (* histograms only *)
  f_series : ((string * string) list, instrument) Hashtbl.t;  (* guarded_by: mutex *)
}

type t = {
  mutex : Mutex.t;
  families : (string, family) Hashtbl.t;  (* guarded_by: mutex *)
}

let create () = { mutex = Mutex.create (); families = Hashtbl.create 32 }

let default = create ()

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let normalise_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Get-or-create the series for [labels] in family [name]; [make]
   builds a fresh instrument of the right kind. *)
let series t ~name ~help ~kind ~buckets ~labels ~make =
  let labels = normalise_labels labels in
  with_lock t (fun () ->
      let family =
        match Hashtbl.find_opt t.families name with
        | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s is a %s, requested as %s" name
                 (kind_name f.f_kind) (kind_name kind));
          f
        | None ->
          let f =
            {
              f_name = name;
              f_help = help;
              f_kind = kind;
              f_buckets = buckets;
              f_series = Hashtbl.create 4;
            }
          in
          Hashtbl.add t.families name f;
          f
      in
      match Hashtbl.find_opt family.f_series labels with
      | Some i -> i
      | None ->
        let i = make family in
        Hashtbl.add family.f_series labels i;
        i)

let counter ?(registry = default) ?(help = "") name labels =
  match
    series registry ~name ~help ~kind:Counter ~buckets:[||] ~labels
      ~make:(fun _ -> C (Metrics.Counter.create ()))
  with
  | C c -> c
  | _ -> assert false

let gauge ?(registry = default) ?(help = "") name labels =
  match
    series registry ~name ~help ~kind:Gauge ~buckets:[||] ~labels
      ~make:(fun _ -> G (Metrics.Gauge.create ()))
  with
  | G g -> g
  | _ -> assert false

let histogram ?(registry = default) ?(help = "")
    ?(buckets = Metrics.default_time_buckets) name labels =
  match
    series registry ~name ~help ~kind:Histogram ~buckets ~labels
      ~make:(fun f -> H (Metrics.Histogram.create ~buckets:f.f_buckets))
  with
  | H h -> h
  | _ -> assert false

(* --- snapshots ----------------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      buckets : (float * int) list;
      overflow : int;
      count : int;
      sum : float;
    }

type series = { labels : (string * string) list; value : value }

type family_snapshot = {
  family : string;
  help : string;
  kind : kind;
  series : series list;
}

type snapshot = family_snapshot list

let value_of_instrument = function
  | C c -> Counter_v (Metrics.Counter.value c)
  | G g -> Gauge_v (Metrics.Gauge.value g)
  | H h ->
    Histogram_v
      {
        buckets = Array.to_list (Metrics.Histogram.bucket_counts h);
        overflow = Metrics.Histogram.overflow h;
        count = Metrics.Histogram.count h;
        sum = Metrics.Histogram.sum h;
      }

let compare_labels a b =
  compare
    (List.map (fun (k, v) -> k ^ "\000" ^ v) a)
    (List.map (fun (k, v) -> k ^ "\000" ^ v) b)

(* The histogram NaN/negative guard counts its clamps in a process
   global (see Metrics); the default registry surfaces it as a
   synthetic read-only family so every snapshot and export shows it.
   It only appears once at least one sample was clamped, keeping
   snapshots of untouched registries unchanged. *)
let dropped_family () =
  let dropped = Metrics.dropped_samples_total () in
  if dropped = 0 then []
  else
    [
      {
        family = "obs_dropped_samples_total";
        help = "Histogram samples clamped to 0 by the NaN/negative guard";
        kind = Counter;
        series = [ { labels = []; value = Counter_v dropped } ];
      };
    ]

(* Same pattern for the time-series cardinality guard: creations the
   [Timeseries] stores refused show up on the default registry as
   [obs_series_dropped_total]. *)
let series_dropped_family () =
  let dropped = Timeseries.dropped_total () in
  if dropped = 0 then []
  else
    [
      {
        family = "obs_series_dropped_total";
        help = "Time-series creations refused by the cardinality guard";
        kind = Counter;
        series = [ { labels = []; value = Counter_v dropped } ];
      };
    ]

let snapshot ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.fold
        (fun _ f acc ->
          let series =
            Hashtbl.fold
              (fun labels i acc ->
                { labels; value = value_of_instrument i } :: acc)
              f.f_series []
            |> List.sort (fun a b -> compare_labels a.labels b.labels)
          in
          { family = f.f_name; help = f.f_help; kind = f.f_kind; series } :: acc)
        registry.families
        (if registry == default then dropped_family () @ series_dropped_family ()
         else [])
      |> List.sort (fun a b -> String.compare a.family b.family))

let reset ?(registry = default) () =
  with_lock registry (fun () ->
      if registry == default then Metrics.reset_dropped_samples ();
      (* lint: allow L003 resets every instrument; visit order is immaterial *)
      Hashtbl.iter
        (fun _ f ->
          (* lint: allow L003 resets every instrument; visit order is immaterial *)
          Hashtbl.iter
            (fun _ i ->
              match i with
              | C c -> Metrics.Counter.reset c
              | G g -> Metrics.Gauge.reset g
              (* lint: allow C004 histogram sketch_mutex is a leaf lock
                 below the registry mutex; the order is global *)
              | H h -> Metrics.Histogram.reset h)
            f.f_series)
        registry.families)

(* --- quantiles ----------------------------------------------------------- *)

type quantile_series = {
  q_family : string;
  q_labels : (string * string) list;
  q_count : int;
  q_values : (float * float) list;
}

let default_quantiles = [ 0.5; 0.9; 0.99 ]

let quantiles ?(registry = default) ?(qs = default_quantiles) () =
  with_lock registry (fun () ->
      Hashtbl.fold
        (fun _ f acc ->
          if f.f_kind <> Histogram then acc
          else
            Hashtbl.fold
              (fun labels i acc ->
                match i with
                (* lint: allow C004 histogram sketch_mutex is a leaf lock
                   below the registry mutex; the order is global *)
                | H h when Metrics.Histogram.sketch_count h > 0 ->
                  let values =
                    List.filter_map
                      (fun q ->
                        (* lint: allow C004 same leaf-lock order as the
                           sketch_count probe above *)
                        Option.map (fun v -> (q, v)) (Metrics.Histogram.quantile h q))
                      qs
                  in
                  {
                    q_family = f.f_name;
                    q_labels = labels;
                    q_count = Metrics.Histogram.sketch_count h;
                    q_values = values;
                  }
                  :: acc
                | _ -> acc)
              f.f_series acc)
        registry.families []
      |> List.sort (fun a b ->
             match String.compare a.q_family b.q_family with
             | 0 -> compare_labels a.q_labels b.q_labels
             | c -> c))

let quantile_of_family ?(registry = default) name q =
  let series =
    with_lock registry (fun () ->
        match Hashtbl.find_opt registry.families name with
        | None -> []
        (* lint: allow L003 folded into a Float.max below, which commutes *)
        | Some f -> Hashtbl.fold (fun _ i acc -> i :: acc) f.f_series [])
  in
  List.fold_left
    (fun acc i ->
      match i with
      | H h -> (
        match Metrics.Histogram.quantile h q with
        | Some v -> Some (match acc with None -> v | Some w -> Float.max v w)
        | None -> acc)
      | _ -> acc)
    None series

let family_count ?(registry = default) () =
  with_lock registry (fun () -> Hashtbl.length registry.families)

(* --- renderers ----------------------------------------------------------- *)

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let pp_value ppf = function
  | Counter_v n -> Format.fprintf ppf "%d" n
  | Gauge_v v -> Format.fprintf ppf "%.3f" v
  | Histogram_v { count; sum; _ } ->
    if count = 0 then Format.fprintf ppf "count=0"
    else
      Format.fprintf ppf "count=%d sum=%.6g mean=%.6g" count sum
        (sum /. float_of_int count)

let pp_text ppf (snap : snapshot) =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          Format.fprintf ppf "%-52s %a@,"
            (f.family ^ label_string s.labels)
            pp_value s.value)
        f.series)
    snap;
  Format.fprintf ppf "@]"

let kind_of_string = function
  | "counter" -> Ok Counter
  | "gauge" -> Ok Gauge
  | "histogram" -> Ok Histogram
  | other -> Error ("unknown metric kind " ^ other)

let json_of_value = function
  | Counter_v n -> Json.Obj [ ("counter", Json.Int n) ]
  | Gauge_v v -> Json.Obj [ ("gauge", Json.Float v) ]
  | Histogram_v { buckets; overflow; count; sum } ->
    Json.Obj
      [
        ( "histogram",
          Json.Obj
            [
              ( "buckets",
                Json.List
                  (List.map
                     (fun (bound, n) ->
                       Json.Obj [ ("le", Json.Float bound); ("count", Json.Int n) ])
                     buckets) );
              ("overflow", Json.Int overflow);
              ("count", Json.Int count);
              ("sum", Json.Float sum);
            ] );
      ]

let to_json (snap : snapshot) =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           [
             ("name", Json.String f.family);
             ("help", Json.String f.help);
             ("kind", Json.String (kind_name f.kind));
             ( "series",
               Json.List
                 (List.map
                    (fun s ->
                      Json.Obj
                        [
                          ( "labels",
                            Json.Obj
                              (List.map (fun (k, v) -> (k, Json.String v)) s.labels)
                          );
                          ("value", json_of_value s.value);
                        ])
                    f.series) );
           ])
       snap)

(* A tiny applicative decoding layer keeps of_json readable. *)
let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error ("missing field " ^ name)

let as_string = function
  | Json.String s -> Ok s
  | _ -> Error "expected string"

let as_int = function Json.Int i -> Ok i | _ -> Error "expected int"

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected number"

let as_list = function Json.List l -> Ok l | _ -> Error "expected list"

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let value_of_json json =
  match json with
  | Json.Obj [ ("counter", Json.Int n) ] -> Ok (Counter_v n)
  | Json.Obj [ ("gauge", v) ] ->
    let* v = as_float v in
    Ok (Gauge_v v)
  | Json.Obj [ ("histogram", h) ] ->
    let* buckets = field "buckets" h in
    let* buckets = as_list buckets in
    let* buckets =
      map_result
        (fun b ->
          let* le = field "le" b in
          let* le = as_float le in
          let* count = field "count" b in
          let* count = as_int count in
          Ok (le, count))
        buckets
    in
    let* overflow = Result.bind (field "overflow" h) as_int in
    let* count = Result.bind (field "count" h) as_int in
    let* sum = Result.bind (field "sum" h) as_float in
    Ok (Histogram_v { buckets; overflow; count; sum })
  | _ -> Error "bad metric value"

let series_of_json json =
  let* labels = field "labels" json in
  let* labels =
    match labels with
    | Json.Obj fields ->
      map_result
        (fun (k, v) ->
          let* v = as_string v in
          Ok (k, v))
        fields
    | _ -> Error "labels must be an object"
  in
  let* value = Result.bind (field "value" json) value_of_json in
  Ok { labels; value }

let of_json json =
  let* families = as_list json in
  map_result
    (fun f ->
      let* family = Result.bind (field "name" f) as_string in
      let* help = Result.bind (field "help" f) as_string in
      let* kind = Result.bind (Result.bind (field "kind" f) as_string) kind_of_string in
      let* series = Result.bind (field "series" f) as_list in
      let* series = map_result series_of_json series in
      Ok { family; help; kind; series })
    families
